// Package trips is a from-scratch implementation of TRIPS — "a system for
// Translating Raw Indoor Positioning data into mobility Semantics" (Li, Lu,
// Shi, Chen, Chen, Shou; PVLDB 11(12), 2018).
//
// TRIPS turns noisy, discrete indoor positioning records such as
//
//	oi, (5.1, 12.7, 3F), 1:02:05pm
//
// into concise mobility semantics such as
//
//	(stay, Adidas, 1:02:05–1:18:15pm)
//
// through three components: a Configurator (data selection rules, a
// floorplan-to-DSM Space Modeler, an Event Editor for training data), a
// Translator (a three-layer framework: cleaning against the indoor
// topology, density-based splitting + learning-based annotation, and
// Markov/MAP complementing of gaps), and a Viewer (a unified map/timeline
// rendering of every sequence involved in a translation).
//
// This package is the public facade. The System type bundles a venue model
// with an event model and the configured pipeline:
//
//	model, _ := trips.LoadDSM("mall.json")
//	sys := trips.NewSystem(model)
//	sys.Editor().Designate(trips.EventStay, seq, 0, 40)   // label segments
//	sys.Editor().Designate(trips.EventPassBy, seq, 40, 55)
//	if err := sys.Train(""); err != nil { ... }            // fit identifier
//	results := sys.Translate(dataset)                      // run pipeline
//	fmt.Println(results[0].Final)                          // Table-1 output
//
// Substrate helpers (the simulator standing in for the paper's proprietary
// mall dataset, the floorplan tracer, the viewer) are re-exported from
// their internal packages.
package trips

import (
	"context"
	"errors"
	"fmt"
	"image"

	"trips/internal/analytics"
	"trips/internal/annotation"
	"trips/internal/config"
	"trips/internal/core"
	"trips/internal/dsm"
	"trips/internal/events"
	"trips/internal/floorplan"
	"trips/internal/geom"
	"trips/internal/online"
	"trips/internal/position"
	"trips/internal/semantics"
	"trips/internal/simul"
	"trips/internal/storage"
	"trips/internal/tripstore"
	"trips/internal/viewer"
)

// Re-exported core types. Aliases keep the internal packages as the single
// definition while giving downstream users one import path.
type (
	// Model is the Digital Space Model of a venue.
	Model = dsm.Model
	// Entity is one indoor entity (room, door, wall, staircase, ...).
	Entity = dsm.Entity
	// SemanticRegion is a tagged region ("Nike", "Center Hall").
	SemanticRegion = dsm.SemanticRegion
	// Location is a point pinned to a floor.
	Location = dsm.Location
	// FloorID numbers floors (1 = ground, negative = basement).
	FloorID = dsm.FloorID
	// Point is a planar coordinate in meters.
	Point = geom.Point

	// Record is one raw positioning record.
	Record = position.Record
	// Sequence is a device's time-ordered positioning records.
	Sequence = position.Sequence
	// Dataset groups sequences per device.
	Dataset = position.Dataset
	// DeviceID identifies a positioned object.
	DeviceID = position.DeviceID
	// Stream is a live feed of positioning records.
	Stream = position.Stream

	// OnlineEngine is the streaming translation engine: sharded
	// per-device sessions running the three-layer pipeline incrementally.
	OnlineEngine = online.Engine
	// OnlineConfig parameterizes the online engine.
	OnlineConfig = online.Config
	// OnlineResult is one finalized triplet leaving the online engine.
	OnlineResult = online.Emission
	// OnlineEmitter is the online engine's output sink.
	OnlineEmitter = online.Emitter
	// OnlineStats snapshots the online engine's counters and shard lag.
	OnlineStats = online.Stats
	// OnlineSnapshot is the live view of one device's session.
	OnlineSnapshot = online.Snapshot

	// Warehouse is the queryable trip warehouse: indexed, durable storage
	// for translated trips behind the batch and online engines.
	Warehouse = tripstore.Warehouse
	// Trip is one warehoused mobility-semantics triplet.
	Trip = tripstore.Trip
	// TripQuery selects warehoused trips by device, region, time range,
	// and semantic labels.
	TripQuery = tripstore.QuerySpec
	// TripPage is one page of warehouse query results.
	TripPage = tripstore.Page
	// WarehouseStats describes the warehouse contents.
	WarehouseStats = tripstore.Stats

	// AnalyticsEngine is the incremental mobility-analytics engine:
	// sharded materialized views (occupancy, flows, dwell, windowed
	// popularity) over the sealed-triplet stream, with live subscriptions
	// and durable view snapshots (SaveSnapshot / LoadSnapshot /
	// StartAutoSnapshot).
	AnalyticsEngine = analytics.Engine
	// AnalyticsConfig parameterizes the analytics engine.
	AnalyticsConfig = analytics.Config
	// AnalyticsStoreOptions locates an engine's durable view snapshot on a
	// backend store.
	AnalyticsStoreOptions = analytics.StoreOptions
	// AnalyticsStats are the analytics engine's diagnostic counters.
	AnalyticsStats = analytics.Stats
	// BackendStore is the JSON document store the durability layers ride
	// on (the warehouse's segment log, the analytics view snapshots).
	BackendStore = storage.Store
	// AnalyticsSnapshot is the canonical full dump of every analytics view.
	AnalyticsSnapshot = analytics.Snapshot
	// AnalyticsDelta is one view update pushed to live subscribers.
	AnalyticsDelta = analytics.Delta
	// AnalyticsSubscription is one live view-delta subscriber.
	AnalyticsSubscription = analytics.Subscription
	// RegionOccupancy is one row of the live occupancy view.
	RegionOccupancy = analytics.RegionOccupancy
	// RegionFlow is one directed region→region transition count.
	RegionFlow = analytics.Flow
	// DwellStats is the dwell-time summary of one region.
	DwellStats = analytics.DwellStats
	// RegionCount is one row of the windowed popularity (top-k) view.
	RegionCount = analytics.RegionCount

	// Semantics is a device's mobility semantics sequence.
	Semantics = semantics.Sequence
	// Triplet is one mobility semantics (event, region, period).
	Triplet = semantics.Triplet
	// Event names a mobility event pattern.
	Event = semantics.Event
	// MatchReport scores generated semantics against ground truth.
	MatchReport = semantics.MatchReport

	// Config is the declarative Configurator document.
	Config = config.Config
	// Result is the per-device translation output.
	Result = core.Result
	// View is the Viewer state for one device.
	View = viewer.View
	// Editor is the Event Editor.
	Editor = events.Editor
	// LabeledSegment is one designated training segment.
	LabeledSegment = events.LabeledSegment
	// EventPattern is a user-defined mobility event pattern.
	EventPattern = events.Pattern

	// Canvas is the Space Modeler drawing surface.
	Canvas = floorplan.Canvas
	// EntityKind classifies indoor entities.
	EntityKind = dsm.EntityKind
	// RegionID identifies a semantic region.
	RegionID = dsm.RegionID

	// MallSpec configures the synthetic mall generator.
	MallSpec = simul.MallSpec
	// Visit is one itinerary leg of the simulator.
	Visit = simul.Visit
	// Sim is the Wi-Fi positioning simulator.
	Sim = simul.Sim
	// Truth is a simulated device's ground truth.
	Truth = simul.Truth
	// ErrorModel is the Wi-Fi error model of the simulator.
	ErrorModel = simul.ErrorModel
)

// Built-in mobility events.
const (
	EventStay    = semantics.EventStay
	EventPassBy  = semantics.EventPassBy
	EventUnknown = semantics.EventUnknown
)

// Indoor entity kinds.
const (
	KindRoom      = dsm.KindRoom
	KindHallway   = dsm.KindHallway
	KindDoor      = dsm.KindDoor
	KindWall      = dsm.KindWall
	KindStaircase = dsm.KindStaircase
	KindElevator  = dsm.KindElevator
	KindObstacle  = dsm.KindObstacle
)

// Viewer source kinds.
const (
	SourceRaw       = viewer.SourceRaw
	SourceCleaned   = viewer.SourceCleaned
	SourceTruth     = viewer.SourceTruth
	SourceSemantics = viewer.SourceSemantics
)

// Pt is shorthand for a Point.
func Pt(x, y float64) Point { return geom.Pt(x, y) }

// LoadDSM reads and freezes a Digital Space Model from a JSON file.
func LoadDSM(path string) (*Model, error) { return dsm.Load(path) }

// LoadDataset reads a positioning dataset from a .csv or .jsonl file.
func LoadDataset(path string) (*Dataset, error) { return position.LoadFile(path) }

// NewDataset returns an empty positioning dataset.
func NewDataset() *Dataset { return position.NewDataset() }

// NewStream returns an open live feed of positioning records.
func NewStream() *Stream { return position.NewStream() }

// NewOnlineChanEmitter returns a buffered channel sink for the online
// engine; the engine closes the channel when it shuts down.
func NewOnlineChanEmitter(buf int) *online.ChanEmitter { return online.NewChanEmitter(buf) }

// OnlineEmitterFunc adapts a callback to the online engine's sink
// interface.
func OnlineEmitterFunc(f func(OnlineResult)) OnlineEmitter { return online.EmitterFunc(f) }

// NewWarehouse returns a memory-only trip warehouse.
func NewWarehouse() (*Warehouse, error) { return tripstore.New(tripstore.Options{}) }

// OpenWarehouse opens a durable trip warehouse rooted at a backend store
// directory, replaying the persisted segment log and snapshot so it
// answers queries exactly as it did before the restart.
func OpenWarehouse(dir string) (*Warehouse, error) {
	st, err := storage.Open(dir)
	if err != nil {
		return nil, err
	}
	return tripstore.New(tripstore.Options{Log: &tripstore.LogOptions{Store: st}})
}

// NewAnalytics returns an incremental mobility-analytics engine with empty
// views. Attach it to a System (AttachAnalytics) or feed it directly via
// Ingest / Bootstrap / the Emitter tee.
func NewAnalytics(cfg AnalyticsConfig) *AnalyticsEngine { return analytics.New(cfg) }

// OpenBackendStore opens (creating if necessary) a backend document store
// rooted at dir — the handle AnalyticsStoreOptions and the warehouse log
// ride on.
func OpenBackendStore(dir string) (*BackendStore, error) { return storage.Open(dir) }

// OpenAnalytics returns a durable analytics engine rooted at dir: the
// latest persisted view snapshot (if any, and compatible with cfg) loads
// into the views, so a subsequent AttachAnalytics / Bootstrap over the
// warehouse replays only the tail past the snapshot's fold frontiers —
// boot cost O(tail), not O(stored trips). An incompatible or corrupt
// snapshot is ignored (the engine starts empty and the next Bootstrap is a
// full replay). The returned store locates the same snapshot for
// SaveSnapshot / StartAutoSnapshot; pass the warehouse's Flush as
// AnalyticsStoreOptions.Sync so snapshots never cover trips the trip log
// hasn't made durable.
func OpenAnalytics(cfg AnalyticsConfig, dir string) (*AnalyticsEngine, *BackendStore, error) {
	st, err := storage.Open(dir)
	if err != nil {
		return nil, nil, err
	}
	a := analytics.New(cfg)
	if _, err := a.LoadSnapshot(AnalyticsStoreOptions{Store: st}); err != nil &&
		!errors.Is(err, analytics.ErrIncompatibleSnapshot) {
		return nil, nil, err
	}
	return a, st, nil
}

// SaveDataset writes a dataset to a .csv or .jsonl file.
func SaveDataset(path string, ds *Dataset) error { return position.SaveFile(path, ds) }

// LoadConfig reads and validates a Configurator document.
func LoadConfig(path string) (*Config, error) { return config.Load(path) }

// NewCanvas opens a Space Modeler drawing canvas for a floor.
func NewCanvas(floor FloorID) *Canvas { return floorplan.NewCanvas(floor) }

// TraceFloorplan extracts a Canvas from a floorplan image (dark = wall,
// light = free space, mid-gray = door openings).
func TraceFloorplan(img image.Image, floor FloorID) (*Canvas, error) {
	return floorplan.Trace(img, floor, floorplan.DefaultTraceOptions())
}

// BuildDSM compiles drawn canvases into a frozen model.
func BuildDSM(name string, canvases ...*Canvas) (*Model, error) {
	return floorplan.Build(name, floorplan.BuildOptions{}, canvases...)
}

// BuildMall generates the synthetic shopping-mall venue that substitutes
// for the paper's proprietary dataset venue.
func BuildMall(spec MallSpec) (*Model, error) { return simul.BuildMall(spec) }

// DefaultMallSpec mirrors the paper's 7-floor mall.
func DefaultMallSpec() MallSpec { return simul.DefaultMallSpec() }

// NewSim creates a deterministic shopper/Wi-Fi simulator over a venue.
func NewSim(m *Model, seed int64) *Sim { return simul.NewSim(m, seed) }

// DefaultErrorModel returns the standard Wi-Fi error characteristics.
func DefaultErrorModel() ErrorModel { return simul.DefaultErrorModel() }

// Compare scores a generated semantics sequence against ground truth.
func Compare(got, want *Semantics) MatchReport {
	return semantics.Compare(got, want, 0)
}

// System bundles a venue with an Event Editor, a trained identification
// model and the translation pipeline. Create one per venue, label training
// data (or import saved Event Editor state), Train, then Translate.
type System struct {
	model  *Model
	editor *events.Editor
	em     *annotation.EventModel
	tr     *core.Translator
	wh     *tripstore.Warehouse
	an     *analytics.Engine

	// Pipeline configuration applied at Train time.
	CleanerConfig      config.CleanerConfig
	AnnotatorConfig    config.AnnotatorConfig
	ComplementorConfig config.ComplementorConfig
}

// NewSystem creates a System over a frozen model with a fresh Event Editor
// (stay and pass-by patterns predefined).
func NewSystem(m *Model) *System {
	return &System{model: m, editor: events.NewEditor()}
}

// Model returns the venue model.
func (s *System) Model() *Model { return s.model }

// Editor returns the Event Editor for defining patterns and designating
// training segments.
func (s *System) Editor() *Editor { return s.editor }

// SetEditor replaces the editor (e.g. with state loaded from the backend
// store).
func (s *System) SetEditor(e *Editor) { s.editor = e }

// AttachWarehouse connects a trip warehouse to the system: every batch
// Translate result ingests into it, and online engines created afterwards
// fan their sealed triplets into it before reaching the configured
// emitter. Pass nil to detach.
func (s *System) AttachWarehouse(w *Warehouse) { s.wh = w }

// Warehouse returns the attached trip warehouse, or nil.
func (s *System) Warehouse() *Warehouse { return s.wh }

// AttachAnalytics connects an analytics engine to the system: every batch
// Translate result folds into its views, and online engines created
// afterwards tee their sealed triplets through it. When a warehouse is
// already attached, the engine first bootstraps from it — replaying the
// persisted trips so a cold start over an existing store reaches the same
// views live ingestion would have built. The bootstrap is frontier-bounded:
// an engine pre-populated from a durable snapshot (OpenAnalytics) replays
// only the warehouse tail past each device's fold frontier. Pass nil to
// detach.
//
// The views are an incremental, order-dependent fold: a later Translate
// that backfills a device's past (trips starting behind that device's
// analytics frontier) still lands in the warehouse, but the fold drops it
// (counted in AnalyticsStats.OutOfOrder, which raises RebuildRecommended).
// After a backfill, rebuild the views with AnalyticsEngine.Rebuild (which
// keeps live subscribers) or by attaching a fresh engine.
func (s *System) AttachAnalytics(a *AnalyticsEngine) error {
	if a != nil && s.wh != nil {
		if err := a.Bootstrap(s.wh); err != nil {
			return err
		}
	}
	s.an = a
	return nil
}

// Analytics returns the attached analytics engine, or nil.
func (s *System) Analytics() *AnalyticsEngine { return s.an }

// Train fits the identification model on the editor's training set using
// the named classifier ("" = gaussian-nb, or logistic-regression /
// decision-tree) and assembles the pipeline.
func (s *System) Train(classifier string) error {
	if classifier != "" {
		s.AnnotatorConfig.Classifier = classifier
	}
	em, err := core.TrainEventModel(s.editor.TrainingSet(), s.AnnotatorConfig)
	if err != nil {
		return fmt.Errorf("trips: train: %w", err)
	}
	tr, err := core.NewTranslator(s.model, em, s.CleanerConfig, s.AnnotatorConfig, s.ComplementorConfig)
	if err != nil {
		return err
	}
	s.em, s.tr = em, tr
	return nil
}

// Trained reports whether Train has succeeded.
func (s *System) Trained() bool { return s.tr != nil }

// Translate runs the full two-phase pipeline over the dataset. It requires
// a successful Train. With a warehouse or analytics engine attached, every
// result ingests into them before returning.
func (s *System) Translate(ds *Dataset) ([]Result, error) {
	if s.tr == nil {
		return nil, fmt.Errorf("trips: Translate before Train")
	}
	var sinks []core.ResultSink
	if s.wh != nil {
		sinks = append(sinks, s.wh)
	}
	if s.an != nil {
		sinks = append(sinks, s.an)
	}
	if len(sinks) > 0 {
		return s.tr.TranslateTo(ds, core.MultiSink(sinks...))
	}
	return s.tr.Translate(ds), nil
}

// NewOnline starts a streaming translation engine over the trained
// pipeline. It requires a successful Train. Feed the engine with Ingest
// (or attach a Stream via System.Stream) and Close it to seal every open
// session. With a warehouse or analytics engine attached, sealed triplets
// fan through them before reaching cfg.Emitter (which may then be nil:
// the attached subsystems become the sink). The warehouse tee runs first
// so the analytics fold always sees a trip its durable twin has stored.
func (s *System) NewOnline(cfg OnlineConfig) (*OnlineEngine, error) {
	if s.tr == nil {
		return nil, fmt.Errorf("trips: NewOnline before Train")
	}
	if s.an != nil {
		cfg.Emitter = s.an.Emitter(cfg.Emitter)
	}
	if s.wh != nil {
		cfg.Emitter = s.wh.Emitter(cfg.Emitter)
	}
	return s.tr.NewOnline(cfg)
}

// Stream starts an online engine subscribed to a live feed: records
// published on st translate incrementally until the stream closes or ctx
// is canceled, at which point the engine closes itself (sealing every open
// session; a channel emitter's channel closes last). The engine is
// returned immediately for stats, snapshots, and additional Ingest calls.
func (s *System) Stream(ctx context.Context, st *Stream, cfg OnlineConfig) (*OnlineEngine, error) {
	eng, err := s.NewOnline(cfg)
	if err != nil {
		return nil, err
	}
	// Subscribe before returning so records published right after this
	// call cannot be missed.
	ch, cancel := st.Subscribe(256)
	go func() {
		defer cancel()
		eng.ConsumeChan(ctx, ch)
		eng.Close()
	}()
	return eng, nil
}

// TranslateSequence runs the pipeline on one sequence without cross-device
// knowledge (the Complementor falls back to the uniform topology prior).
func (s *System) TranslateSequence(seq *Sequence) (Result, error) {
	if s.tr == nil {
		return Result{}, fmt.Errorf("trips: Translate before Train")
	}
	return s.tr.TranslateOne(seq, nil), nil
}

// NewView assembles a Viewer over a translation result, installing the
// raw, cleaned and semantics sources (plus ground truth when available).
func (s *System) NewView(r Result, truth *Truth) *View {
	v := viewer.NewView(s.model)
	v.SetSource(viewer.SourceRaw, viewer.FromPositioning(viewer.SourceRaw, r.Raw))
	v.SetSource(viewer.SourceCleaned, viewer.FromPositioning(viewer.SourceCleaned, r.Cleaned))
	v.SetSource(viewer.SourceSemantics, viewer.FromSemantics(r.Final))
	if truth != nil {
		v.SetSource(viewer.SourceTruth, viewer.FromPositioning(viewer.SourceTruth, truth.Records))
	}
	return v
}

// RenderMapSVG renders a view's current floor as an SVG document.
func RenderMapSVG(v *View) string {
	return viewer.RenderSVG(v, viewer.RenderOptions{})
}

// RenderTimelineSVG renders a view's timeline as an SVG document.
func RenderTimelineSVG(v *View) string {
	return viewer.RenderTimelineSVG(v, 900)
}
