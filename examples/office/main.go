// Office demonstrates TRIPS on the second venue class the paper's
// introduction motivates — an office building — with a hand-drawn DSM, a
// custom "meeting" event pattern defined in the Event Editor, and the
// periodic-pattern selector rule picking out staff devices.
//
//	go run ./examples/office
package main

import (
	"fmt"
	"log"
	"time"

	"trips"
	"trips/internal/selector"
)

func main() {
	log.SetFlags(0)

	// --- Space Modeler: draw the office floor by hand.
	c := trips.NewCanvas(1)
	must := func(id int, err error) int {
		if err != nil {
			log.Fatal(err)
		}
		return id
	}
	must(c.DrawRect(trips.KindHallway, "corridor", trips.Pt(0, 0), trips.Pt(50, 6)))
	offices := []struct {
		name     string
		x0, x1   float64
		category string
	}{
		{"Office A", 0, 12, "office"},
		{"Office B", 12, 24, "office"},
		{"Meeting Room", 24, 36, "meeting"},
		{"Kitchen", 36, 44, "break"},
		{"Print Room", 44, 50, "service"},
	}
	must(c.DrawRect(trips.KindWall, "wall", trips.Pt(0, 6), trips.Pt(50, 6.4)))
	for _, o := range offices {
		id := must(c.DrawRect(trips.KindRoom, o.name, trips.Pt(o.x0, 6.4), trips.Pt(o.x1, 16)))
		mid := (o.x0 + o.x1) / 2
		must(c.DrawRect(trips.KindDoor, "door "+o.name, trips.Pt(mid-1, 6), trips.Pt(mid+1, 6.4)))
		if err := c.AssignTag(id, o.name, o.category); err != nil {
			log.Fatal(err)
		}
	}
	model, err := trips.BuildDSM("office-hq", c)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("drawn DSM: %d entities, %d regions\n", len(model.Entities), len(model.Regions))

	// --- Simulate a week: staff return daily, a visitor shows up once.
	sim := trips.NewSim(model, 5)
	// Office APs are dense: less noise, no multi-minute dropouts.
	em := trips.DefaultErrorModel()
	em.NoiseSigma = 1.5
	em.DropoutProb = 0
	raw := trips.NewDataset()
	truths := map[trips.DeviceID]trips.Truth{}
	day0 := time.Date(2017, 1, 2, 9, 0, 0, 0, time.UTC)
	// Meetings are deliberately much longer than ordinary desk dwells so
	// the duration feature separates the custom event class.
	itinerary := func() []trips.Visit {
		return []trips.Visit{
			{Region: model.RegionByTag("Office A").ID, Stay: 12 * time.Minute},
			{Region: model.RegionByTag("Meeting Room").ID, Stay: 45 * time.Minute},
			{Region: model.RegionByTag("Kitchen").ID, Stay: 5 * time.Minute},
			{Region: model.RegionByTag("Office A").ID, Stay: 10 * time.Minute},
		}
	}
	for day := 0; day < 5; day++ {
		start := day0.Add(time.Duration(day) * 24 * time.Hour)
		truth, err := sim.SimulateVisit("staff-1", start, itinerary())
		if err != nil {
			log.Fatal(err)
		}
		merge(raw, sim.Observe(truth, em))
		mergeTruth(truths, "staff-1", truth)
	}
	visitorTruth, err := sim.SimulateVisit("visitor-9", day0.Add(26*time.Hour), []trips.Visit{
		{Region: model.RegionByTag("Meeting Room").ID, Stay: 40 * time.Minute},
	})
	if err != nil {
		log.Fatal(err)
	}
	merge(raw, sim.Observe(visitorTruth, em))
	mergeTruth(truths, "visitor-9", visitorTruth)

	// --- Data Selector: the periodic rule isolates staff devices.
	staffRule := selector.Periodic{MinDays: 3}
	staff := selector.Select(raw, staffRule)
	fmt.Printf("selector %q: %d of %d devices are staff\n",
		staffRule.Describe(), staff.NumDevices(), raw.NumDevices())

	// --- Event Editor: built-ins plus a custom long-dwell pattern.
	sys := trips.NewSystem(model)
	sys.Editor().DefinePattern(trips.EventPattern{
		Event:       "meeting",
		Description: "long collaborative dwell in a meeting region",
		MinDuration: 20 * time.Minute,
	})
	for dev, truth := range truths {
		seq := raw.Sequence(dev)
		for _, tr := range truth.Semantics.Triplets {
			w := seq.TimeWindow(tr.From, tr.To)
			if w.Len() < 4 {
				continue
			}
			ev := tr.Event
			// Long dwells inside the meeting region exemplify "meeting".
			if ev == trips.EventStay && tr.Region == "Meeting Room" && tr.To.Sub(tr.From) >= 25*time.Minute {
				ev = "meeting"
			}
			recs := append([]trips.Record(nil), w.Records...)
			_ = sys.Editor().AddSegment(trips.LabeledSegment{Event: ev, Device: dev, Records: recs})
		}
	}
	if err := sys.Train("decision-tree"); err != nil {
		log.Fatal(err)
	}

	// --- Translate the staff data and report.
	results, err := sys.Translate(staff)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range results {
		fmt.Printf("\n%s: %d records → %d triplets (%.1f rec/triplet)\n",
			r.Device, r.Raw.Len(), r.Final.Len(), r.Conciseness.RecordsPerTriplet)
		meetings := 0
		for _, t := range r.Final.Triplets {
			if t.Event == "meeting" {
				meetings++
			}
		}
		fmt.Printf("  identified %d meeting events over the week\n", meetings)
		for i, t := range r.Final.Triplets {
			if i >= 6 {
				fmt.Printf("  ... (%d more)\n", r.Final.Len()-i)
				break
			}
			fmt.Printf("  %s\n", t)
		}
	}
}

// merge appends src's sequences into dst.
func merge(dst *trips.Dataset, src *trips.Sequence) {
	for _, r := range src.Records {
		dst.Add(r)
	}
}

// mergeTruth concatenates per-day truths for a device.
func mergeTruth(truths map[trips.DeviceID]trips.Truth, dev trips.DeviceID, t trips.Truth) {
	cur, ok := truths[dev]
	if !ok {
		truths[dev] = t
		return
	}
	for _, r := range t.Records.Records {
		cur.Records.Append(r)
	}
	for _, tr := range t.Semantics.Triplets {
		cur.Semantics.Append(tr)
	}
	truths[dev] = cur
}
