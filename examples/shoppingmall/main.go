// Shoppingmall reproduces the paper's Section 4 walk-through: the five-step
// workflow of TRIPS in the shopping-mall scenario (Figs. 5–6).
//
//	(1) Data Selector   — select sequences within operating hours 10–22
//	(2) Space Modeler   — load/create the DSM (generated mall here)
//	(3) Event Editor    — define patterns, designate training segments
//	(4) Translator      — submit the translation task
//	(5) Viewer          — export SVG views and browse the result
//
// Artifacts (result JSON per device, map.svg, timeline.svg) are written to a
// temporary directory; the backend store keeps the DSM and event state for
// reuse, exactly as the paper describes.
//
//	go run ./examples/shoppingmall
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"trips"
	"trips/internal/selector"
	"trips/internal/storage"
)

func main() {
	log.SetFlags(0)
	out, err := os.MkdirTemp("", "trips-mall-*")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workspace: %s\n\n", out)

	// --- Step (2) first in code order: the venue must exist before data.
	model, err := trips.BuildMall(trips.MallSpec{Floors: 3, ShopsPerFloor: 6})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("(2) Space Modeler: DSM %q — %d entities, %d regions, %d floors\n",
		model.Name, len(model.Entities), len(model.Regions), len(model.Floors()))

	// The backend store keeps the DSM for reuse in later tasks.
	store, err := storage.Open(filepath.Join(out, "backend"))
	if err != nil {
		log.Fatal(err)
	}
	dsmPath := filepath.Join(out, "mall.json")
	if err := model.Save(dsmPath); err != nil {
		log.Fatal(err)
	}
	if err := store.Put("tasks", "mall-demo", map[string]string{"dsm": dsmPath}); err != nil {
		log.Fatal(err)
	}

	// Simulated mall traffic, including pre-opening noise to select away.
	sim := trips.NewSim(model, 2017)
	day := time.Date(2017, 1, 1, 8, 0, 0, 0, time.UTC)
	raw, truths, err := sim.Population(15, day, 12*time.Hour, trips.DefaultErrorModel())
	if err != nil {
		log.Fatal(err)
	}

	// --- Step (1): Data Selector — operating hours and minimum activity.
	rule := selector.And{
		selector.DailyWindow{StartHour: 10, EndHour: 22},
		selector.MinRecords{N: 30},
	}
	selected := selector.Select(raw, rule)
	fmt.Printf("(1) Data Selector: %s → %d of %d devices\n",
		rule.Describe(), selected.NumDevices(), raw.NumDevices())

	// --- Step (3): Event Editor — designate pass-by and stay segments.
	sys := trips.NewSystem(model)
	designated := 0
	for dev, truth := range truths {
		seq := raw.Sequence(dev)
		for _, tr := range truth.Semantics.Triplets {
			w := seq.TimeWindow(tr.From, tr.To)
			if w.Len() < 4 {
				continue
			}
			recs := append([]trips.Record(nil), w.Records...)
			if err := sys.Editor().AddSegment(trips.LabeledSegment{Event: tr.Event, Device: dev, Records: recs}); err == nil {
				designated++
			}
		}
	}
	counts := sys.Editor().TrainingSet().Counts()
	fmt.Printf("(3) Event Editor: %d segments designated (stay=%d, pass-by=%d)\n",
		designated, counts[trips.EventStay], counts[trips.EventPassBy])
	if err := sys.Editor().Save(filepath.Join(out, "events.json")); err != nil {
		log.Fatal(err)
	}

	// --- Step (4): Translator.
	if err := sys.Train(""); err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	results, err := sys.Translate(selected)
	if err != nil {
		log.Fatal(err)
	}
	var triplets, inferred, repairs int
	for _, r := range results {
		triplets += r.Final.Len()
		inferred += r.Inserted
		repairs += r.Clean.Modified()
		if err := r.Final.Save(filepath.Join(out, string(r.Device)+".json")); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("(4) Translator: %d devices → %d triplets (%d inferred), %d records repaired, %s\n",
		len(results), triplets, inferred, repairs, time.Since(start).Round(time.Millisecond))

	// --- Step (5): Viewer — export the first device's views.
	r := results[0]
	truth := truths[r.Device]
	v := sys.NewView(r, &truth)
	if err := os.WriteFile(filepath.Join(out, "map.svg"), []byte(trips.RenderMapSVG(v)), 0o644); err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(out, "timeline.svg"), []byte(trips.RenderTimelineSVG(v)), 0o644); err != nil {
		log.Fatal(err)
	}
	rep := trips.Compare(r.Final, truth.Semantics)
	fmt.Printf("(5) Viewer: exported map.svg + timeline.svg for %s; truth agreement %.0f%%\n",
		r.Device, 100*rep.TimeAgreement)

	fmt.Printf("\ndevice %s mobility semantics:\n%s", r.Device, r.Final)
	fmt.Printf("\nall artifacts under %s\n", out)
}
