// Quickstart: the smallest end-to-end TRIPS run.
//
// It builds a synthetic mall, simulates one shopper with a Wi-Fi error
// model, trains the event identification model from labeled segments, runs
// the three-layer translation, and prints the paper's Table 1: raw records
// on the left, mobility semantics on the right.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"trips"
)

func main() {
	log.SetFlags(0)

	// 1. Venue: a synthetic mall stands in for the paper's 7-floor venue.
	model, err := trips.BuildMall(trips.MallSpec{Floors: 2, ShopsPerFloor: 4})
	if err != nil {
		log.Fatal(err)
	}

	// 2. Data: simulate a shopper and observe them through Wi-Fi errors.
	sim := trips.NewSim(model, 7)
	start := time.Date(2017, 1, 1, 13, 2, 5, 0, time.UTC)
	truth, err := sim.SimulateVisit("oi", start, []trips.Visit{
		{Region: model.RegionByTag("Adidas").ID, Stay: 16 * time.Minute},
		{Region: model.RegionByTag("Nike").ID, Stay: 2 * time.Minute},
		{Region: model.RegionByTag("Cashier").ID, Stay: 4 * time.Minute},
	})
	if err != nil {
		log.Fatal(err)
	}
	raw := sim.Observe(truth, trips.DefaultErrorModel())
	fmt.Printf("raw positioning data: %d records over %s\n\n", raw.Len(), raw.Duration().Round(time.Second))

	// 3. Training data: label segments from a small background population
	// (the Event Editor step, done programmatically).
	sys := trips.NewSystem(model)
	bg, truths, err := sim.Population(6, start.Add(-2*time.Hour), time.Hour, trips.DefaultErrorModel())
	if err != nil {
		log.Fatal(err)
	}
	for dev, tr := range truths {
		seq := bg.Sequence(dev)
		for _, t := range tr.Semantics.Triplets {
			w := seq.TimeWindow(t.From, t.To)
			if w.Len() >= 4 {
				recs := append([]trips.Record(nil), w.Records...)
				if err := sys.Editor().AddSegment(trips.LabeledSegment{
					Event: t.Event, Device: dev, Records: recs,
				}); err != nil {
					log.Fatal(err)
				}
			}
		}
	}
	if err := sys.Train(""); err != nil {
		log.Fatal(err)
	}

	// 4. Translate.
	res, err := sys.TranslateSequence(raw)
	if err != nil {
		log.Fatal(err)
	}

	// 5. Table 1.
	fmt.Println("Raw Positioning Records        | Mobility Semantics")
	fmt.Println("-------------------------------+------------------------------------------")
	n := res.Final.Len()
	for i := 0; i < n || i < 3; i++ {
		left := ""
		if i < raw.Len() {
			left = raw.Records[i].String()
		}
		if i == n-1 && raw.Len() > n {
			left = fmt.Sprintf("... (%d more)", raw.Len()-i)
		}
		right := ""
		if i < n {
			right = res.Final.Triplets[i].String()
		}
		fmt.Printf("%-31s| %s\n", left, right)
	}
	fmt.Printf("\nconciseness: %.1f records per triplet, %.1fx byte compression\n",
		res.Conciseness.RecordsPerTriplet, res.Conciseness.ByteRatio)
	fmt.Printf("cleaning: %d records repaired (%d floor fixes, %d interpolations)\n",
		res.Clean.Modified(), res.Clean.FloorFixed, res.Clean.Interpolated)

	rep := trips.Compare(res.Final, truth.Semantics)
	fmt.Printf("assessment vs ground truth: %.0f%% time agreement, F1 %.2f\n",
		100*rep.TimeAgreement, rep.F1)
}
