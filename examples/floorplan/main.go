// Floorplan demonstrates the Space Modeler's two creation paths (paper
// Fig. 2): semi-automatic raster tracing of a floorplan image, followed by
// interactive refinement — tag assignment, styling, undo/redo — and DSM
// compilation.
//
//	go run ./examples/floorplan
package main

import (
	"fmt"
	"image"
	"image/color"
	"image/png"
	"log"
	"os"
	"path/filepath"

	"trips"
	"trips/internal/dsm"
	"trips/internal/viewer"
)

func main() {
	log.SetFlags(0)

	// Step 1 — "import the floorplan image": paint one programmatically
	// (a corridor with four rooms, door gaps in mid-gray) and save it so
	// the example is inspectable.
	img := paintFloorplan(360, 200)
	dir, err := os.MkdirTemp("", "trips-floorplan-*")
	if err != nil {
		log.Fatal(err)
	}
	f, err := os.Create(filepath.Join(dir, "floorplan.png"))
	if err != nil {
		log.Fatal(err)
	}
	if err := png.Encode(f, img); err != nil {
		log.Fatal(err)
	}
	f.Close()

	// Step 2 — "trace the floorplan image": the raster tracer extracts the
	// corridor, rooms and doors as drawn shapes.
	canvas, err := trips.TraceFloorplan(img, 1)
	if err != nil {
		log.Fatal(err)
	}
	shapes := canvas.Shapes()
	fmt.Printf("traced %d shapes from the image:\n", len(shapes))
	for _, s := range shapes {
		fmt.Printf("  #%d %-8s %-9s area %.1f m²\n", s.ID, s.EntityKind, s.Kind, s.Polygon.Area())
	}

	// Step 3 — "load and attach the semantic tags": refine the traced
	// canvas interactively.
	tags := []struct{ tag, cat string }{
		{"Reception", "service"}, {"Showroom", "shop"}, {"Workshop", "service"}, {"Storage", "logistics"},
	}
	i := 0
	for _, s := range shapes {
		switch {
		case s.EntityKind == trips.KindHallway:
			if err := canvas.AssignTag(s.ID, "Corridor", "hall"); err != nil {
				log.Fatal(err)
			}
		case s.EntityKind == trips.KindRoom && i < len(tags):
			if err := canvas.AssignTag(s.ID, tags[i].tag, tags[i].cat); err != nil {
				log.Fatal(err)
			}
			if err := canvas.SetStyle(s.ID, "fill", "#ffe8c0"); err != nil {
				log.Fatal(err)
			}
			i++
		}
	}
	// Editing conveniences: a mistaken extra shape, undone.
	id, err := canvas.DrawCircle(trips.KindObstacle, "oops", trips.Pt(5, 5), 1)
	if err != nil {
		log.Fatal(err)
	}
	_ = id
	canvas.Undo()
	fmt.Printf("tagged %d rooms; undid the accidental pillar\n", i)

	// Compile and inspect the DSM.
	model, err := trips.BuildDSM("traced-venue", canvas)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nDSM %q: %d entities, %d regions\n", model.Name, len(model.Entities), len(model.Regions))
	for _, tg := range tags {
		r := model.RegionByTag(tg.tag)
		if r == nil {
			log.Fatalf("region %s missing", tg.tag)
		}
		adj := model.AdjacentRegions(r.ID)
		names := make([]string, 0, len(adj))
		for _, a := range adj {
			names = append(names, model.Region(a).Tag)
		}
		fmt.Printf("  %-10s floor %v, center %v, adjacent: %v\n", r.Tag, r.Floor, r.Center(), names)
	}

	// Topology check: walking distance between the two farthest rooms.
	a := model.RegionByTag("Reception")
	b := model.RegionByTag("Storage")
	d, ok := model.WalkingDistance(
		dsm.Location{P: a.Center(), Floor: a.Floor},
		dsm.Location{P: b.Center(), Floor: b.Floor},
	)
	if !ok {
		log.Fatal("traced venue is not connected")
	}
	fmt.Printf("\nindoor walking distance %s → %s: %.1f m (euclidean %.1f m)\n",
		a.Tag, b.Tag, d, a.Center().Dist(b.Center()))

	// Render the venue map.
	v := viewer.NewView(model)
	svgPath := filepath.Join(dir, "venue.svg")
	if err := os.WriteFile(svgPath, []byte(viewer.RenderSVG(v, viewer.RenderOptions{})), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("artifacts: %s/floorplan.png, %s\n", dir, svgPath)
}

// paintFloorplan draws the raster: black walls, white free space, gray
// door gaps. Scale: 0.25 m/px.
func paintFloorplan(w, h int) *image.Gray {
	img := image.NewGray(image.Rect(0, 0, w, h))
	fill := func(x0, y0, x1, y1 int, v uint8) {
		for y := y0; y < y1 && y < h; y++ {
			for x := x0; x < x1 && x < w; x++ {
				img.SetGray(x, y, color.Gray{Y: v})
			}
		}
	}
	corridorTop := h / 3
	fill(4, 4, w-4, corridorTop, 255)
	rooms := 4
	rw := (w - 8) / rooms
	for i := 0; i < rooms; i++ {
		x0 := 4 + i*rw
		fill(x0+4, corridorTop+4, x0+rw-4, h-4, 255)
		fill(x0+rw/2-6, corridorTop, x0+rw/2+6, corridorTop+4, 128)
	}
	return img
}
