package trips

import (
	"context"
	"reflect"
	"sort"
	"sync"
	"testing"
	"time"

	"trips/internal/simul"
)

// onlineTestSystem builds a trained system over a small mall plus a
// gap-free simulated population (no dropouts, so no record gap exceeds the
// sampling period and the online engine's bit-exact path is in force).
func onlineTestSystem(t *testing.T, devices int, window time.Duration) (*System, *Dataset) {
	t.Helper()
	model, err := BuildMall(MallSpec{Floors: 3, ShopsPerFloor: 6})
	if err != nil {
		t.Fatal(err)
	}
	sim := NewSim(model, 42)
	em := DefaultErrorModel()
	em.DropoutProb = 0
	start := time.Date(2017, 1, 1, 10, 0, 0, 0, time.UTC)
	ds, truths, err := sim.Population(devices, start, window, em)
	if err != nil {
		t.Fatal(err)
	}
	sys := NewSystem(model)
	for _, es := range simul.TrainingSegments(ds, truths, 30) {
		for _, recs := range es.Segments {
			if err := sys.Editor().AddSegment(LabeledSegment{Event: es.Event, Device: recs[0].Device, Records: recs}); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := sys.Train(""); err != nil {
		t.Fatal(err)
	}
	return sys, ds
}

// timeOrdered flattens a dataset into the global arrival order a live
// venue feed would deliver.
func timeOrdered(ds *Dataset) []Record {
	var all []Record
	for _, seq := range ds.Sequences() {
		all = append(all, seq.Records...)
	}
	sort.SliceStable(all, func(i, j int) bool { return all[i].At.Before(all[j].At) })
	return all
}

// TestOnlineMatchesBatchPopulation is the subsystem's acceptance test: for
// a gap-free simulated mall population, the online engine emits the
// identical triplet sequence per device as the batch System.Translate.
func TestOnlineMatchesBatchPopulation(t *testing.T) {
	sys, ds := onlineTestSystem(t, 8, 2*time.Hour)

	batch, err := sys.Translate(ds)
	if err != nil {
		t.Fatal(err)
	}
	want := make(map[DeviceID][]Triplet, len(batch))
	for _, r := range batch {
		want[r.Device] = r.Final.Triplets
	}

	var mu sync.Mutex
	got := make(map[DeviceID][]Triplet)
	eng, err := sys.NewOnline(OnlineConfig{
		Shards:        4,
		FlushEvery:    64,
		FlushInterval: -1,
		IdleTimeout:   -1,
		Emitter: OnlineEmitterFunc(func(e OnlineResult) {
			mu.Lock()
			got[e.Device] = append(got[e.Device], e.Triplet)
			mu.Unlock()
		}),
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range timeOrdered(ds) {
		if err := eng.Ingest(r); err != nil {
			t.Fatal(err)
		}
	}
	eng.Flush()
	sealedEarly := eng.Stats().TripletsOut
	eng.Close()

	if sealedEarly == 0 {
		t.Error("no triplet sealed before Close; the incremental path went untested")
	}
	st := eng.Stats()
	if st.RecordsIn != int64(ds.NumRecords()) || st.Late != 0 {
		t.Errorf("stats = %+v, want %d records in and 0 late", st, ds.NumRecords())
	}
	if len(got) != len(want) {
		t.Fatalf("online saw %d devices, batch %d", len(got), len(want))
	}
	for dev, wt := range want {
		gt := got[dev]
		if len(gt) != len(wt) {
			t.Errorf("device %s: online %d triplets, batch %d", dev, len(gt), len(wt))
			continue
		}
		for i := range wt {
			if !reflect.DeepEqual(gt[i], wt[i]) {
				t.Errorf("device %s triplet %d:\nonline: %+v\nbatch:  %+v", dev, i, gt[i], wt[i])
				break
			}
		}
	}
}

// TestSystemStream drives the online engine through the live-feed
// entrance: records published on a Stream translate incrementally, and
// closing the stream seals every session and closes the channel sink.
func TestSystemStream(t *testing.T) {
	sys, ds := onlineTestSystem(t, 4, time.Hour)

	batch, err := sys.Translate(ds)
	if err != nil {
		t.Fatal(err)
	}
	wantTotal := 0
	for _, r := range batch {
		wantTotal += r.Final.Len()
	}

	sink := NewOnlineChanEmitter(256)
	st := NewStream()
	eng, err := sys.Stream(context.Background(), st, OnlineConfig{
		Shards:        2,
		FlushInterval: -1,
		IdleTimeout:   -1,
		Emitter:       sink,
	})
	if err != nil {
		t.Fatal(err)
	}
	got := make(map[DeviceID][]Triplet)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for e := range sink.Results() {
			got[e.Device] = append(got[e.Device], e.Triplet)
		}
	}()
	for _, r := range timeOrdered(ds) {
		st.Publish(r)
	}
	st.Close()
	<-done // engine closed itself once the stream drained

	total := 0
	for _, ts := range got {
		total += len(ts)
	}
	if total != wantTotal {
		t.Errorf("streamed %d triplets, batch produced %d", total, wantTotal)
	}
	if eng.Stats().Sessions != int64(ds.NumDevices()) {
		t.Errorf("sessions = %d, want %d", eng.Stats().Sessions, ds.NumDevices())
	}
	fresh := NewSystem(sys.Model())
	if _, err := fresh.NewOnline(OnlineConfig{Emitter: NewOnlineChanEmitter(1)}); err == nil {
		t.Error("NewOnline before Train succeeded")
	}
}
