package trips

import (
	"reflect"
	"sort"
	"testing"
)

// TestGoldenAnalyticsBootstrapMatchesLive is the acceptance property of the
// analytics subsystem: on the golden corpus, (1) live incremental ingestion
// through the online engine's emitter tee, (2) a cold-start bootstrap
// replaying the warehouse the same engine filled, and (3) the batch
// Translate sink all produce identical analytics views.
func TestGoldenAnalyticsBootstrapMatchesLive(t *testing.T) {
	cfg := AnalyticsConfig{Shards: 4}

	// (1) Live: the online engine tees sealed triplets into the views
	// while the warehouse stores them.
	sys, ds := goldenSystem(t)
	w, err := NewWarehouse()
	if err != nil {
		t.Fatal(err)
	}
	sys.AttachWarehouse(w)
	live := NewAnalytics(cfg)
	if err := sys.AttachAnalytics(live); err != nil {
		t.Fatal(err)
	}
	eng, err := sys.NewOnline(OnlineConfig{
		Shards: 4, FlushEvery: 64, FlushInterval: -1, IdleTimeout: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	var all []Record
	for _, seq := range ds.Sequences() {
		all = append(all, seq.Records...)
	}
	sort.SliceStable(all, func(i, j int) bool { return all[i].At.Before(all[j].At) })
	for _, r := range all {
		if err := eng.Ingest(r); err != nil {
			t.Fatal(err)
		}
	}
	eng.Close()

	liveSnap := live.Snapshot()
	if liveSnap.Trips == 0 || len(liveSnap.Occupancy) == 0 || len(liveSnap.Dwell) == 0 {
		t.Fatalf("degenerate live views: %+v", liveSnap)
	}

	// (2) Bootstrap: a fresh engine cold-started over the warehouse the
	// online run filled must reach the same state.
	boot := NewAnalytics(cfg)
	if err := boot.Bootstrap(w); err != nil {
		t.Fatal(err)
	}
	if bootSnap := boot.Snapshot(); !reflect.DeepEqual(liveSnap, bootSnap) {
		t.Errorf("bootstrap views diverge from live ingestion:\nlive: %+v\nboot: %+v", liveSnap, bootSnap)
	}

	// (3) Batch: the golden corpus translates bit-identically through the
	// batch engine (TestGoldenBatch ⋂ TestGoldenOnline), so the batch
	// result sink must fold to the same views too.
	sys2, ds2 := goldenSystem(t)
	batch := NewAnalytics(cfg)
	if err := sys2.AttachAnalytics(batch); err != nil {
		t.Fatal(err)
	}
	if _, err := sys2.Translate(ds2); err != nil {
		t.Fatal(err)
	}
	if batchSnap := batch.Snapshot(); !reflect.DeepEqual(liveSnap, batchSnap) {
		t.Errorf("batch-sink views diverge from live ingestion:\nlive:  %+v\nbatch: %+v", liveSnap, batchSnap)
	}
}

// TestAttachAnalyticsBootstrapsFromWarehouse covers the cold-start path the
// server uses: attach to a system whose warehouse already holds trips and
// the views arrive pre-populated.
func TestAttachAnalyticsBootstrapsFromWarehouse(t *testing.T) {
	sys, ds := goldenSystem(t)
	w, err := NewWarehouse()
	if err != nil {
		t.Fatal(err)
	}
	sys.AttachWarehouse(w)
	if _, err := sys.Translate(ds); err != nil {
		t.Fatal(err)
	}

	a := NewAnalytics(AnalyticsConfig{})
	if err := sys.AttachAnalytics(a); err != nil {
		t.Fatal(err)
	}
	if sys.Analytics() != a {
		t.Fatal("Analytics() does not return the attached engine")
	}
	if st := a.Stats(); st.Trips == 0 || st.Trips != int64(w.Stats().Trips) {
		t.Errorf("bootstrap folded %d trips, warehouse holds %d", st.Trips, w.Stats().Trips)
	}
	if err := sys.AttachAnalytics(nil); err != nil {
		t.Fatal(err)
	}
	if sys.Analytics() != nil {
		t.Error("detach failed")
	}
}
