package trips

import (
	"bytes"
	"encoding/json"
	"reflect"
	"sort"
	"testing"
)

// TestGoldenAnalyticsBootstrapMatchesLive is the acceptance property of the
// analytics subsystem: on the golden corpus, (1) live incremental ingestion
// through the online engine's emitter tee, (2) a cold-start bootstrap
// replaying the warehouse the same engine filled, and (3) the batch
// Translate sink all produce identical analytics views.
func TestGoldenAnalyticsBootstrapMatchesLive(t *testing.T) {
	cfg := AnalyticsConfig{Shards: 4}

	// (1) Live: the online engine tees sealed triplets into the views
	// while the warehouse stores them.
	sys, ds := goldenSystem(t)
	w, err := NewWarehouse()
	if err != nil {
		t.Fatal(err)
	}
	sys.AttachWarehouse(w)
	live := NewAnalytics(cfg)
	if err := sys.AttachAnalytics(live); err != nil {
		t.Fatal(err)
	}
	eng, err := sys.NewOnline(OnlineConfig{
		Shards: 4, FlushEvery: 64, FlushInterval: -1, IdleTimeout: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	var all []Record
	for _, seq := range ds.Sequences() {
		all = append(all, seq.Records...)
	}
	sort.SliceStable(all, func(i, j int) bool { return all[i].At.Before(all[j].At) })
	for _, r := range all {
		if err := eng.Ingest(r); err != nil {
			t.Fatal(err)
		}
	}
	eng.Close()

	liveSnap := live.Snapshot()
	if liveSnap.Trips == 0 || len(liveSnap.Occupancy) == 0 || len(liveSnap.Dwell) == 0 {
		t.Fatalf("degenerate live views: %+v", liveSnap)
	}

	// (2) Bootstrap: a fresh engine cold-started over the warehouse the
	// online run filled must reach the same state.
	boot := NewAnalytics(cfg)
	if err := boot.Bootstrap(w); err != nil {
		t.Fatal(err)
	}
	if bootSnap := boot.Snapshot(); !reflect.DeepEqual(liveSnap, bootSnap) {
		t.Errorf("bootstrap views diverge from live ingestion:\nlive: %+v\nboot: %+v", liveSnap, bootSnap)
	}

	// (3) Batch: the golden corpus translates bit-identically through the
	// batch engine (TestGoldenBatch ⋂ TestGoldenOnline), so the batch
	// result sink must fold to the same views too.
	sys2, ds2 := goldenSystem(t)
	batch := NewAnalytics(cfg)
	if err := sys2.AttachAnalytics(batch); err != nil {
		t.Fatal(err)
	}
	if _, err := sys2.Translate(ds2); err != nil {
		t.Fatal(err)
	}
	if batchSnap := batch.Snapshot(); !reflect.DeepEqual(liveSnap, batchSnap) {
		t.Errorf("batch-sink views diverge from live ingestion:\nlive:  %+v\nbatch: %+v", liveSnap, batchSnap)
	}
}

// TestAttachAnalyticsBootstrapsFromWarehouse covers the cold-start path the
// server uses: attach to a system whose warehouse already holds trips and
// the views arrive pre-populated.
func TestAttachAnalyticsBootstrapsFromWarehouse(t *testing.T) {
	sys, ds := goldenSystem(t)
	w, err := NewWarehouse()
	if err != nil {
		t.Fatal(err)
	}
	sys.AttachWarehouse(w)
	if _, err := sys.Translate(ds); err != nil {
		t.Fatal(err)
	}

	a := NewAnalytics(AnalyticsConfig{})
	if err := sys.AttachAnalytics(a); err != nil {
		t.Fatal(err)
	}
	if sys.Analytics() != a {
		t.Fatal("Analytics() does not return the attached engine")
	}
	if st := a.Stats(); st.Trips == 0 || st.Trips != int64(w.Stats().Trips) {
		t.Errorf("bootstrap folded %d trips, warehouse holds %d", st.Trips, w.Stats().Trips)
	}
	if err := sys.AttachAnalytics(nil); err != nil {
		t.Fatal(err)
	}
	if sys.Analytics() != nil {
		t.Error("detach failed")
	}
}

// TestGoldenAnalyticsSnapshotBootMatchesBootstrap is the acceptance
// property of the durability layer: on the golden corpus, booting from a
// mid-ingestion durable snapshot plus a frontier-bounded warehouse tail
// replay is byte-identical (marshaled view state) to both a fresh
// warehouse Bootstrap and the live-teed engine that wrote the snapshot.
func TestGoldenAnalyticsSnapshotBootMatchesBootstrap(t *testing.T) {
	cfg := AnalyticsConfig{Shards: 4}

	// Live: online ingestion tees into the views while the warehouse
	// stores the sealed trips; a durable snapshot is cut midway.
	sys, ds := goldenSystem(t)
	w, err := NewWarehouse()
	if err != nil {
		t.Fatal(err)
	}
	sys.AttachWarehouse(w)
	live := NewAnalytics(cfg)
	if err := sys.AttachAnalytics(live); err != nil {
		t.Fatal(err)
	}
	eng, err := sys.NewOnline(OnlineConfig{
		Shards: 4, FlushEvery: 64, FlushInterval: -1, IdleTimeout: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	var all []Record
	for _, seq := range ds.Sequences() {
		all = append(all, seq.Records...)
	}
	sort.SliceStable(all, func(i, j int) bool { return all[i].At.Before(all[j].At) })

	st, err := OpenBackendStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	opts := AnalyticsStoreOptions{Store: st, Sync: w.Flush}
	for i, r := range all {
		if err := eng.Ingest(r); err != nil {
			t.Fatal(err)
		}
		if i == len(all)/2 {
			eng.Flush() // seal what the watermark allows, then snapshot mid-stream
			if err := live.SaveSnapshot(opts); err != nil {
				t.Fatal(err)
			}
		}
	}
	eng.Close()

	total := int64(w.Stats().Trips)
	if total == 0 {
		t.Fatal("empty warehouse")
	}

	// Snapshot boot: load the mid-stream snapshot, replay only the tail.
	boot := NewAnalytics(cfg)
	ok, err := boot.LoadSnapshot(opts)
	if err != nil || !ok {
		t.Fatalf("LoadSnapshot = %v, %v", ok, err)
	}
	preloaded := boot.Stats().Trips
	if preloaded == 0 || preloaded == total {
		t.Fatalf("mid-stream snapshot covers %d of %d trips — no tail to replay", preloaded, total)
	}
	if err := boot.Bootstrap(w); err != nil {
		t.Fatal(err)
	}
	t.Logf("snapshot covered %d trips, tail replay folded %d", preloaded, total-preloaded)

	// Fresh full rebuild.
	fresh := NewAnalytics(cfg)
	if err := fresh.Bootstrap(w); err != nil {
		t.Fatal(err)
	}

	marshal := func(label string, a *AnalyticsEngine) []byte {
		t.Helper()
		b, err := json.Marshal(a.Snapshot())
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		return b
	}
	liveBytes := marshal("live", live)
	if !bytes.Equal(liveBytes, marshal("boot", boot)) {
		t.Error("snapshot+tail boot diverges from the live-teed views")
	}
	if !bytes.Equal(liveBytes, marshal("fresh", fresh)) {
		t.Error("fresh Bootstrap diverges from the live-teed views")
	}
	if stats := boot.Stats(); stats.Trips != total || stats.OutOfOrder != 0 {
		t.Errorf("boot stats = %+v, want %d trips, no drops", stats, total)
	}
}
