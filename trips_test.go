package trips

import (
	"strings"
	"testing"
	"time"
)

var t0 = time.Date(2017, 1, 2, 10, 0, 0, 0, time.UTC)

// newTrainedSystem builds a mall, simulates a population, trains from the
// simulator's ground truth and returns everything a test needs.
func newTrainedSystem(t testing.TB, devices int) (*System, *Dataset, map[DeviceID]Truth) {
	t.Helper()
	model, err := BuildMall(MallSpec{Floors: 2, ShopsPerFloor: 4})
	if err != nil {
		t.Fatal(err)
	}
	sim := NewSim(model, 777)
	ds, truths, err := sim.Population(devices, t0, time.Hour, DefaultErrorModel())
	if err != nil {
		t.Fatal(err)
	}
	sys := NewSystem(model)
	if sys.Trained() {
		t.Fatal("untrained system claims training")
	}
	// Designate training segments from the truth, as the Event Editor
	// walk-through does interactively.
	for dev, truth := range truths {
		seq := ds.Sequence(dev)
		for _, tr := range truth.Semantics.Triplets {
			w := seq.TimeWindow(tr.From, tr.To)
			if w.Len() < 4 {
				continue
			}
			lo, hi := indexRange(seq, tr.From, tr.To)
			_ = sys.Editor().Designate(tr.Event, seq, lo, hi) // duration hints may reject; fine
		}
	}
	if err := sys.Train(""); err != nil {
		t.Fatalf("Train: %v", err)
	}
	return sys, ds, truths
}

func indexRange(seq *Sequence, from, to time.Time) (int, int) {
	lo, hi := -1, -1
	for i, r := range seq.Records {
		if !r.At.Before(from) && r.At.Before(to) {
			if lo < 0 {
				lo = i
			}
			hi = i + 1
		}
	}
	if lo < 0 {
		return 0, 0
	}
	return lo, hi
}

func TestSystemWalkthrough(t *testing.T) {
	sys, ds, truths := newTrainedSystem(t, 5)
	results, err := sys.Translate(ds)
	if err != nil {
		t.Fatalf("Translate: %v", err)
	}
	if len(results) != 5 {
		t.Fatalf("results = %d", len(results))
	}
	r := results[0]
	if r.Final.Len() == 0 {
		t.Fatal("no mobility semantics produced")
	}
	// Table-1 shaped output.
	text := r.Final.String()
	if !strings.Contains(text, string(r.Device)) || !strings.Contains(text, "(") {
		t.Errorf("semantics text = %q", text)
	}
	// Viewer integration.
	truth := truths[r.Device]
	v := sys.NewView(r, &truth)
	svg := RenderMapSVG(v)
	if !strings.Contains(svg, "<svg") {
		t.Error("map SVG malformed")
	}
	tl := RenderTimelineSVG(v)
	if !strings.Contains(tl, "<svg") {
		t.Error("timeline SVG malformed")
	}
	// Assessment against ground truth.
	rep := Compare(r.Final, truth.Semantics)
	if rep.TimeAgreement <= 0 {
		t.Errorf("no agreement with truth: %+v", rep)
	}
}

func TestTranslateBeforeTrainFails(t *testing.T) {
	model, err := BuildMall(MallSpec{Floors: 1, ShopsPerFloor: 2})
	if err != nil {
		t.Fatal(err)
	}
	sys := NewSystem(model)
	if _, err := sys.Translate(NewDataset()); err == nil {
		t.Error("Translate before Train accepted")
	}
	if _, err := sys.TranslateSequence(&Sequence{}); err == nil {
		t.Error("TranslateSequence before Train accepted")
	}
}

func TestTranslateSequence(t *testing.T) {
	sys, ds, _ := newTrainedSystem(t, 3)
	dev := ds.Devices()[0]
	res, err := sys.TranslateSequence(ds.Sequence(dev))
	if err != nil {
		t.Fatal(err)
	}
	if res.Device != dev || res.Final == nil {
		t.Errorf("result = %+v", res)
	}
}

func TestDrawAndTranslateOnDrawnVenue(t *testing.T) {
	// End-to-end over a hand-drawn venue instead of the generator.
	c := NewCanvas(1)
	if _, err := c.DrawRect("hallway", "hall", Pt(0, 0), Pt(30, 8)); err != nil {
		t.Fatal(err)
	}
	s1, _ := c.DrawRect("room", "shop-a", Pt(0, 8.4), Pt(15, 16))
	s2, _ := c.DrawRect("room", "shop-b", Pt(15, 8.4), Pt(30, 16))
	c.DrawRect("wall", "wall", Pt(0, 8), Pt(30, 8.4))
	c.DrawRect("door", "da", Pt(6, 8), Pt(8, 8.4))
	c.DrawRect("door", "db", Pt(21, 8), Pt(23, 8.4))
	if err := c.AssignTag(s1, "Adidas", "shop"); err != nil {
		t.Fatal(err)
	}
	if err := c.AssignTag(s2, "Nike", "shop"); err != nil {
		t.Fatal(err)
	}
	model, err := BuildDSM("drawn", c)
	if err != nil {
		t.Fatalf("BuildDSM: %v", err)
	}
	if model.RegionByTag("Adidas") == nil {
		t.Fatal("drawn region missing")
	}
	// Simulate on the drawn venue: the drawn DSM drives the agent.
	sim := NewSim(model, 9)
	truth, err := sim.SimulateVisit("dev", t0, []Visit{
		{Region: model.RegionByTag("Adidas").ID, Stay: 5 * time.Minute},
		{Region: model.RegionByTag("Nike").ID, Stay: 5 * time.Minute},
	})
	if err != nil {
		t.Fatalf("SimulateVisit on drawn venue: %v", err)
	}
	if truth.Records.Empty() || truth.Semantics.Len() < 2 {
		t.Errorf("drawn-venue truth = %d records, %d triplets",
			truth.Records.Len(), truth.Semantics.Len())
	}
}
