package main

import (
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"trips/internal/experiments"
	"trips/internal/obs/trace"
	"trips/internal/online"
	"trips/internal/position"
)

// The -online mode measures the online translation engine's hot paths with
// testing.Benchmark and writes the results as machine-readable JSON — the
// perf-trajectory artifact (BENCH_online.json) CI uploads on every run so
// regressions in the ingest path show up as a diffable number, not a
// feeling. Workloads:
//
//   - long-session-1k / long-session-8k: one device streaming a continuous
//     multi-dwell journey with no hard break, flushed every 16 records.
//     Flush cost must track the tail's unstable suffix, so ns_per_record
//     should hold roughly flat between the two tail lengths.
//   - population-1h: 16 devices over an hour of mall traffic on one shard,
//     the sustained-throughput shape of BenchmarkOnlineTranslate.
//
// With -traced, two extra workloads measure the tracing tentpole's cost on
// the 1k long session (informational, never ratcheted): trace-off-1k runs
// with a tracer configured but the request unsampled — the overhead of
// having tracing compiled into the hot path — and trace-on-1k forces a
// sampled trace through every record, the worst-case fully-traced stream.

// onlineBenchResult is one workload's measurement.
type onlineBenchResult struct {
	Name        string  `json:"name"`
	Records     int     `json:"records"`
	NsPerOp     int64   `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	NsPerRecord float64 `json:"ns_per_record"`
	RecordsPerS float64 `json:"records_per_s"`
	// TripsPerS is the rate of emitted (sealed) triplets.
	TripsPerS float64 `json:"trips_per_s"`
}

// onlineBenchFile is the BENCH_online.json schema. The run metadata —
// commit, GOMAXPROCS, wall-clock timestamp — makes two artifacts
// comparable: a regression diff is only meaningful when the commits and
// the parallelism that produced the numbers are known.
type onlineBenchFile struct {
	Suite      string              `json:"suite"`
	Go         string              `json:"go"`
	Cpus       int                 `json:"cpus"`
	Gomaxprocs int                 `json:"gomaxprocs"`
	Commit     string              `json:"commit,omitempty"`
	Timestamp  string              `json:"timestamp"`
	Benchmarks []onlineBenchResult `json:"benchmarks"`
}

// benchCommit resolves the commit the numbers describe: git first, the CI
// environment as fallback for builds from an exported tree.
func benchCommit() string {
	if out, err := exec.Command("git", "rev-parse", "HEAD").Output(); err == nil {
		return strings.TrimSpace(string(out))
	}
	return os.Getenv("GITHUB_SHA")
}

// traceMode selects how a workload interacts with the tracer.
type traceMode int

const (
	traceNone traceMode = iota // no tracer configured (the committed baselines)
	traceOff                   // tracer configured, request unsampled: the rate-0 overhead
	traceOn                    // tracer configured, every stream fully sampled
)

// runOnlineBench measures the workloads and writes outPath.
func runOnlineBench(outPath string, traced bool) error {
	spec := experiments.DefaultEnvSpec()
	spec.Devices = 16
	spec.Window = time.Hour
	env, err := experiments.NewEnv(spec)
	if err != nil {
		return err
	}

	file := onlineBenchFile{
		Suite:      "online",
		Go:         runtime.Version(),
		Cpus:       runtime.NumCPU(),
		Gomaxprocs: runtime.GOMAXPROCS(0),
		Commit:     benchCommit(),
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
	}
	for _, n := range []int{1000, 8000} {
		recs := experiments.LongSessionRecords(env, "long", n)
		file.Benchmarks = append(file.Benchmarks,
			measureOnline(fmt.Sprintf("long-session-%dk", n/1000), env, recs, traceNone))
	}
	var population []position.Record
	for _, seq := range env.Raw.Sequences() {
		population = append(population, seq.Records...)
	}
	file.Benchmarks = append(file.Benchmarks, measureOnline("population-1h", env, population, traceNone))
	if traced {
		recs := experiments.LongSessionRecords(env, "long", 1000)
		file.Benchmarks = append(file.Benchmarks,
			measureOnline("trace-off-1k", env, recs, traceOff),
			measureOnline("trace-on-1k", env, recs, traceOn))
	}

	out, err := json.MarshalIndent(file, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if err := os.WriteFile(outPath, out, 0o644); err != nil {
		return err
	}
	for _, b := range file.Benchmarks {
		fmt.Printf("%-16s %8d records  %10.0f ns/record  %8.0f records/s  %8.0f trips/s  %6d allocs/op\n",
			b.Name, b.Records, b.NsPerRecord, b.RecordsPerS, b.TripsPerS, b.AllocsPerOp)
	}
	fmt.Printf("wrote %s\n", outPath)
	return nil
}

// measureOnline runs one full engine pass (start, ingest every record,
// close) per benchmark op and derives the per-record rates. traceOff and
// traceOn attach a tracer to the engine; traceOn additionally samples a
// fresh trace per op and threads it through every ingest — span recording
// rides the lock-free slot buffers, so overflow past the buffered window
// drops spans rather than slowing the path (the realistic steady state).
func measureOnline(name string, env *experiments.Env, recs []position.Record, mode traceMode) onlineBenchResult {
	var tracer *trace.Tracer
	if mode != traceNone {
		tracer = trace.New(trace.Config{SampleRate: 1})
	}
	var emittedPerOp int64
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var emitted atomic.Int64
			eng, err := env.Trans.NewOnline(online.Config{
				Shards:        1,
				FlushEvery:    16,
				FlushInterval: -1,
				IdleTimeout:   -1,
				Tracer:        tracer,
				Emitter: online.EmitterFunc(func(online.Emission) {
					emitted.Add(1)
				}),
			})
			if err != nil {
				b.Fatal(err)
			}
			var tc trace.Ctx
			if mode == traceOn {
				tc = tracer.Sample()
			}
			if mode == traceNone {
				for _, r := range recs {
					if err := eng.Ingest(r); err != nil {
						b.Fatal(err)
					}
				}
			} else {
				for _, r := range recs {
					if err := eng.IngestTraced(r, tc); err != nil {
						b.Fatal(err)
					}
				}
			}
			eng.Close()
			if emitted.Load() == 0 {
				b.Fatal("no semantics emitted")
			}
			emittedPerOp = emitted.Load()
		}
	})
	nsPerOp := res.NsPerOp()
	secPerOp := float64(nsPerOp) / 1e9
	return onlineBenchResult{
		Name:        name,
		Records:     len(recs),
		NsPerOp:     nsPerOp,
		BytesPerOp:  res.AllocedBytesPerOp(),
		AllocsPerOp: res.AllocsPerOp(),
		NsPerRecord: float64(nsPerOp) / float64(len(recs)),
		RecordsPerS: float64(len(recs)) / secPerOp,
		TripsPerS:   float64(emittedPerOp) / secPerOp,
	}
}
