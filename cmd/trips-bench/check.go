package main

import (
	"encoding/json"
	"fmt"
	"os"
)

// The -check mode is the online-engine perf ratchet: compare a fresh
// -online run against the committed BENCH_online.json and fail when a
// long-session workload regresses past the tolerance on any ratcheted
// axis — ns/record, bytes/op, or allocs/op. The long-session benchmarks
// are the ratcheted series because they are the ones whose per-record
// cost must hold flat as the tail grows — a time regression there means
// the incremental flush path slipped back toward O(tail) work, and a
// memory regression means a reused buffer or interned id quietly went
// back to allocating per flush. population-1h stays informational: its
// record mix shifts with simulator changes, so it moves for non-perf
// reasons.

// readOnlineBench loads a BENCH_online.json artifact.
func readOnlineBench(path string) (*onlineBenchFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f onlineBenchFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("parse %s: %w", path, err)
	}
	if f.Suite != "online" {
		return nil, fmt.Errorf("%s is a %q artifact, want suite \"online\"", path, f.Suite)
	}
	return &f, nil
}

// isRatcheted reports whether a benchmark participates in the ratchet.
func isRatcheted(name string) bool {
	return len(name) >= len("long-session") && name[:len("long-session")] == "long-session"
}

// compareOnline gates current against baseline: every ratcheted baseline
// workload must exist in the current run with ns_per_record, bytes_per_op,
// and allocs_per_op each no more than (1+tol) times the committed number.
// Returns one message per violation.
func compareOnline(baseline, current *onlineBenchFile, tol float64) []string {
	cur := make(map[string]onlineBenchResult, len(current.Benchmarks))
	for _, b := range current.Benchmarks {
		cur[b.Name] = b
	}
	var fails []string
	ratcheted := 0
	for _, base := range baseline.Benchmarks {
		if !isRatcheted(base.Name) {
			continue
		}
		ratcheted++
		got, ok := cur[base.Name]
		if !ok {
			fails = append(fails, fmt.Sprintf("%s: missing from the current run — the ratchet cannot drop workloads", base.Name))
			continue
		}
		if ceil := base.NsPerRecord * (1 + tol); got.NsPerRecord > ceil {
			fails = append(fails, fmt.Sprintf("%s: %.0f ns/record exceeds the ratchet %.0f (baseline %.0f +%.0f%%)",
				base.Name, got.NsPerRecord, ceil, base.NsPerRecord, tol*100))
		}
		if ceil := float64(base.BytesPerOp) * (1 + tol); float64(got.BytesPerOp) > ceil {
			fails = append(fails, fmt.Sprintf("%s: %d bytes/op exceeds the ratchet %.0f (baseline %d +%.0f%%)",
				base.Name, got.BytesPerOp, ceil, base.BytesPerOp, tol*100))
		}
		if ceil := float64(base.AllocsPerOp) * (1 + tol); float64(got.AllocsPerOp) > ceil {
			fails = append(fails, fmt.Sprintf("%s: %d allocs/op exceeds the ratchet %.0f (baseline %d +%.0f%%)",
				base.Name, got.AllocsPerOp, ceil, base.AllocsPerOp, tol*100))
		}
	}
	if ratcheted == 0 {
		fails = append(fails, "baseline carries no long-session workloads; nothing to ratchet against")
	}
	return fails
}
