package main

import (
	"strings"
	"testing"
)

// benchResult builds one workload result with all three ratcheted axes
// populated. Memory numbers default to a fixed footprint scaled off the
// time so the green-path tests exercise every axis without each call
// spelling out six values.
func benchResult(name string, nsPerRecord float64, bytesPerOp, allocsPerOp int64) onlineBenchResult {
	return onlineBenchResult{Name: name, NsPerRecord: nsPerRecord, BytesPerOp: bytesPerOp, AllocsPerOp: allocsPerOp}
}

func benchFile(longSession1k, longSession8k, population float64) *onlineBenchFile {
	return &onlineBenchFile{
		Suite: "online",
		Benchmarks: []onlineBenchResult{
			benchResult("long-session-1k", longSession1k, int64(longSession1k)*100, int64(longSession1k)/10),
			benchResult("long-session-8k", longSession8k, int64(longSession8k)*100, int64(longSession8k)/10),
			benchResult("population-1h", population, int64(population)*100, int64(population)/10),
		},
	}
}

// TestCompareOnlinePasses is the ratchet's green path: identical numbers
// and in-tolerance drift both pass, and the informational population
// workload may move freely.
func TestCompareOnlinePasses(t *testing.T) {
	base := benchFile(12000, 17000, 22000)
	if fails := compareOnline(base, benchFile(12000, 17000, 22000), 0.15); len(fails) != 0 {
		t.Fatalf("identical run failed the ratchet: %v", fails)
	}
	// 10% slower is inside the 15% ratchet (the helper scales bytes and
	// allocs with the time, so those axes drift 10% too); population 3x
	// slower is not ratcheted at all.
	if fails := compareOnline(base, benchFile(13200, 18700, 66000), 0.15); len(fails) != 0 {
		t.Fatalf("in-tolerance run failed the ratchet: %v", fails)
	}
	// Getting faster and leaner always passes.
	if fails := compareOnline(base, benchFile(8000, 9000, 10000), 0.15); len(fails) != 0 {
		t.Fatalf("faster run failed the ratchet: %v", fails)
	}
}

// TestCompareOnlineFailsOnRegression injects a >15% long-session
// regression and demands the ratchet names the workload — the acceptance
// criterion that -check demonstrably fails on a regressed artifact.
func TestCompareOnlineFailsOnRegression(t *testing.T) {
	base := benchFile(12000, 17000, 22000)
	cur := benchFile(12000, 21000, 22000) // 8k +23.5% on every axis
	fails := compareOnline(base, cur, 0.15)
	if len(fails) != 3 {
		t.Fatalf("ratchet returned %d failures, want the 8k regression on all three axes: %v", len(fails), fails)
	}
	for i, axis := range []string{"ns/record", "bytes/op", "allocs/op"} {
		if !strings.Contains(fails[i], "long-session-8k") || !strings.Contains(fails[i], axis) {
			t.Errorf("failure %d does not name the regressed workload and axis %s: %q", i, axis, fails[i])
		}
	}
}

// TestCompareOnlineFailsOnMemoryRegression regresses memory while time
// holds flat — the exact shape of a reused buffer quietly going back to
// allocating per flush, which a time-only ratchet would wave through.
func TestCompareOnlineFailsOnMemoryRegression(t *testing.T) {
	base := &onlineBenchFile{Suite: "online", Benchmarks: []onlineBenchResult{
		benchResult("long-session-1k", 12000, 800000, 400),
	}}

	bytesUp := &onlineBenchFile{Suite: "online", Benchmarks: []onlineBenchResult{
		benchResult("long-session-1k", 12000, 1000000, 400), // +25% bytes
	}}
	fails := compareOnline(base, bytesUp, 0.15)
	if len(fails) != 1 || !strings.Contains(fails[0], "bytes/op") {
		t.Fatalf("bytes/op regression not caught: %v", fails)
	}

	allocsUp := &onlineBenchFile{Suite: "online", Benchmarks: []onlineBenchResult{
		benchResult("long-session-1k", 12000, 800000, 600), // +50% allocs
	}}
	fails = compareOnline(base, allocsUp, 0.15)
	if len(fails) != 1 || !strings.Contains(fails[0], "allocs/op") {
		t.Fatalf("allocs/op regression not caught: %v", fails)
	}
}

// TestCompareOnlineFailsOnMissingWorkload keeps the ratchet honest: a
// current run that silently drops a ratcheted benchmark fails rather
// than passing by omission.
func TestCompareOnlineFailsOnMissingWorkload(t *testing.T) {
	base := benchFile(12000, 17000, 22000)
	current := &onlineBenchFile{Suite: "online", Benchmarks: []onlineBenchResult{
		benchResult("long-session-1k", 12000, 1200000, 1200),
		benchResult("population-1h", 22000, 2200000, 2200),
	}}
	fails := compareOnline(base, current, 0.15)
	if len(fails) != 1 || !strings.Contains(fails[0], "long-session-8k") {
		t.Fatalf("dropped workload not caught: %v", fails)
	}
	// And a baseline with nothing ratcheted is itself an error.
	empty := &onlineBenchFile{Suite: "online", Benchmarks: []onlineBenchResult{
		benchResult("population-1h", 22000, 2200000, 2200),
	}}
	if fails := compareOnline(empty, current, 0.15); len(fails) != 1 {
		t.Fatalf("empty ratchet baseline not caught: %v", fails)
	}
}
