package main

import (
	"strings"
	"testing"
)

func benchFile(longSession1k, longSession8k, population float64) *onlineBenchFile {
	return &onlineBenchFile{
		Suite: "online",
		Benchmarks: []onlineBenchResult{
			{Name: "long-session-1k", NsPerRecord: longSession1k},
			{Name: "long-session-8k", NsPerRecord: longSession8k},
			{Name: "population-1h", NsPerRecord: population},
		},
	}
}

// TestCompareOnlinePasses is the ratchet's green path: identical numbers
// and in-tolerance drift both pass, and the informational population
// workload may move freely.
func TestCompareOnlinePasses(t *testing.T) {
	base := benchFile(12000, 17000, 22000)
	if fails := compareOnline(base, benchFile(12000, 17000, 22000), 0.15); len(fails) != 0 {
		t.Fatalf("identical run failed the ratchet: %v", fails)
	}
	// 10% slower is inside the 15% ratchet; population 3x slower is
	// not ratcheted at all.
	if fails := compareOnline(base, benchFile(13200, 18700, 66000), 0.15); len(fails) != 0 {
		t.Fatalf("in-tolerance run failed the ratchet: %v", fails)
	}
	// Getting faster always passes.
	if fails := compareOnline(base, benchFile(8000, 9000, 10000), 0.15); len(fails) != 0 {
		t.Fatalf("faster run failed the ratchet: %v", fails)
	}
}

// TestCompareOnlineFailsOnRegression injects a >15% long-session
// regression and demands the ratchet names the workload — the acceptance
// criterion that -check demonstrably fails on a regressed artifact.
func TestCompareOnlineFailsOnRegression(t *testing.T) {
	base := benchFile(12000, 17000, 22000)
	fails := compareOnline(base, benchFile(12000, 21000, 22000), 0.15) // 8k +23.5%
	if len(fails) != 1 {
		t.Fatalf("ratchet returned %d failures, want exactly the 8k regression: %v", len(fails), fails)
	}
	if !strings.Contains(fails[0], "long-session-8k") || !strings.Contains(fails[0], "ns/record") {
		t.Errorf("failure does not name the regressed workload: %q", fails[0])
	}
}

// TestCompareOnlineFailsOnMissingWorkload keeps the ratchet honest: a
// current run that silently drops a ratcheted benchmark fails rather
// than passing by omission.
func TestCompareOnlineFailsOnMissingWorkload(t *testing.T) {
	base := benchFile(12000, 17000, 22000)
	current := &onlineBenchFile{Suite: "online", Benchmarks: []onlineBenchResult{
		{Name: "long-session-1k", NsPerRecord: 12000},
		{Name: "population-1h", NsPerRecord: 22000},
	}}
	fails := compareOnline(base, current, 0.15)
	if len(fails) != 1 || !strings.Contains(fails[0], "long-session-8k") {
		t.Fatalf("dropped workload not caught: %v", fails)
	}
	// And a baseline with nothing ratcheted is itself an error.
	empty := &onlineBenchFile{Suite: "online", Benchmarks: []onlineBenchResult{
		{Name: "population-1h", NsPerRecord: 22000},
	}}
	if fails := compareOnline(empty, current, 0.15); len(fails) != 1 {
		t.Fatalf("empty ratchet baseline not caught: %v", fails)
	}
}
