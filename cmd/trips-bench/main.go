// Command trips-bench runs the reproduction experiments indexed in
// DESIGN.md §4 — one per paper artifact (Table 1, Figures 1–6) — and prints
// their report tables. EXPERIMENTS.md records the output.
//
// Usage:
//
//	trips-bench              # all experiments
//	trips-bench -exp e4      # one experiment (e1|e2|e3|e4|e5|e6)
//	trips-bench -devices 40 -floors 7 -shops 8 -seed 3
//	trips-bench -online -out BENCH_online.json   # online-engine perf JSON
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"trips/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("trips-bench: ")
	var (
		exp      = flag.String("exp", "all", "experiment id: e1..e6 or all")
		devices  = flag.Int("devices", 20, "simulated devices")
		floors   = flag.Int("floors", 3, "mall floors")
		shops    = flag.Int("shops", 6, "shops per floor")
		seed     = flag.Int64("seed", 1, "random seed")
		onlineB  = flag.Bool("online", false, "run the online-engine benchmarks and emit machine-readable JSON")
		tracedB  = flag.Bool("traced", false, "with -online: add traced-vs-untraced overhead workloads (informational, never ratcheted)")
		outPath  = flag.String("out", "BENCH_online.json", "output path for -online results")
		check    = flag.Bool("check", false, "with -online: ratchet the fresh numbers against -baseline and exit non-zero on regression")
		baseline = flag.String("baseline", "BENCH_online.json", "committed baseline for -check")
		tol      = flag.Float64("tolerance", 0.15, "allowed fractional growth in ns/record, bytes/op, and allocs/op for -check")
	)
	flag.Parse()

	if *onlineB {
		// The baseline loads before the benchmarks run, so a bad -baseline
		// path fails fast instead of after the measurement.
		var base *onlineBenchFile
		if *check {
			var err error
			if base, err = readOnlineBench(*baseline); err != nil {
				log.Fatalf("baseline: %v", err)
			}
		}
		if err := runOnlineBench(*outPath, *tracedB); err != nil {
			log.Fatal(err)
		}
		if *check {
			fresh, err := readOnlineBench(*outPath)
			if err != nil {
				log.Fatal(err)
			}
			if fails := compareOnline(base, fresh, *tol); len(fails) != 0 {
				for _, f := range fails {
					log.Printf("PERF FAIL: %s", f)
				}
				os.Exit(1)
			}
			fmt.Printf("perf ratchet passed against %s (tolerance %.0f%%)\n", *baseline, *tol*100)
		}
		return
	}

	spec := experiments.DefaultEnvSpec()
	spec.Devices = *devices
	spec.Floors = *floors
	spec.Shops = *shops
	spec.Seed = *seed

	st := time.Now()
	env, err := experiments.NewEnv(spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("env: %d floors × %d shops, %d devices, %d raw records (setup %s)\n\n",
		spec.Floors, spec.Shops, spec.Devices, env.Raw.NumRecords(), time.Since(st).Round(time.Millisecond))

	type runner struct {
		id string
		fn func() (experiments.Report, error)
	}
	runners := []runner{
		{"e1", func() (experiments.Report, error) { return experiments.E1(env) }},
		{"e2", func() (experiments.Report, error) { return experiments.E2(env) }},
		{"e3", func() (experiments.Report, error) { return experiments.E3() }},
		{"e4a", func() (experiments.Report, error) { return experiments.E4a(env) }},
		{"e4b", func() (experiments.Report, error) { return experiments.E4b(env) }},
		{"e4c", func() (experiments.Report, error) { return experiments.E4c(env) }},
		{"e5", func() (experiments.Report, error) { return experiments.E5(env) }},
		{"e6", func() (experiments.Report, error) { return experiments.E6(env) }},
	}
	want := strings.ToLower(*exp)
	ran := 0
	for _, r := range runners {
		if want != "all" && !strings.HasPrefix(r.id, want) {
			continue
		}
		rep, err := r.fn()
		if err != nil {
			log.Fatalf("%s: %v", r.id, err)
		}
		fmt.Println(rep)
		ran++
	}
	if ran == 0 {
		log.Fatalf("unknown experiment %q (use e1..e6 or all)", *exp)
	}
}
