// Command trips-load is the closed-loop load harness: it drives a running
// trips-server over HTTP with simulated shoppers under production-shaped
// stress (bursty batches, reconnect storms, bounded out-of-order and
// duplicate delivery, slow SSE subscribers), scrapes /metrics for the
// system-level numbers — ingest→seal→analytics-visible freshness p50/p99,
// sustained records/s, 429 push-back, heap ceiling — and writes them as
// BENCH_system.json.
//
// With -check it additionally gates the fresh run against a committed
// baseline (-baseline, default BENCH_system.json) under the SLO
// tolerances and exits non-zero on a regression — the CI perf gate.
//
// With -trace-check it forces an end-to-end trace on every 4th batch per
// sender (X-Trace-Id), records the slowest kept trace's span tree as the
// report's slowest_trace block, and exits non-zero if the server kept
// none — proof the ingest→fold lineage held together under load.
//
// Usage:
//
//	trips-server -demo &                       # the system under test
//	trips-load                                 # smoke run, writes BENCH_system.json
//	trips-load -profile standard -devices 48   # heavier, overridden fleet
//	trips-load -out /tmp/new.json -check -baseline BENCH_system.json
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"trips/internal/loadgen"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("trips-load: ")
	var (
		addr     = flag.String("addr", "http://127.0.0.1:8765", "trips-server base URL")
		profile  = flag.String("profile", "smoke", "load profile: smoke|standard")
		devices  = flag.Int("devices", 0, "override the profile's device count")
		visits   = flag.Int("visits", 0, "override the profile's itinerary length")
		seed     = flag.Int64("seed", 0, "override the profile's workload seed")
		slowSubs = flag.Int("slow-subscribers", -1, "override the profile's slow SSE subscriber count")
		settle   = flag.Duration("settle", 0, "override the profile's post-send settle timeout")
		timeout  = flag.Duration("timeout", 5*time.Minute, "abort the run after this long")
		out      = flag.String("out", "BENCH_system.json", "output path for the run report")
		check    = flag.Bool("check", false, "gate the run against -baseline and exit non-zero on regression")
		baseline = flag.String("baseline", "BENCH_system.json", "baseline report for -check")
		traceChk = flag.Bool("trace-check", false,
			"force a trace on every 4th batch, record the slowest kept trace as slowest_trace, and fail if the server kept none")

		tolThroughput = flag.Float64("tol-throughput", loadgen.DefaultTolerances().Throughput,
			"allowed fractional records/s drop vs baseline")
		tolP99 = flag.Float64("tol-p99", loadgen.DefaultTolerances().P99Frac,
			"allowed fractional freshness-p99 growth vs baseline")
		tolP99Slack = flag.Float64("tol-p99-slack", loadgen.DefaultTolerances().P99SlackS,
			"absolute freshness-p99 slack in seconds")
		tolHeap = flag.Float64("tol-heap", loadgen.DefaultTolerances().HeapFrac,
			"allowed fractional heap-ceiling growth vs baseline")
		tolHeapSlack = flag.Int64("tol-heap-slack", loadgen.DefaultTolerances().HeapSlackBytes,
			"absolute heap-ceiling slack in bytes")
	)
	flag.Parse()

	var p loadgen.Profile
	switch *profile {
	case "smoke":
		p = loadgen.Smoke()
	case "standard":
		p = loadgen.Standard()
	default:
		log.Fatalf("unknown profile %q (smoke|standard)", *profile)
	}
	if *devices > 0 {
		p.Devices = *devices
	}
	if *visits > 0 {
		p.Visits = *visits
	}
	if *seed != 0 {
		p.Seed = *seed
	}
	if *slowSubs >= 0 {
		p.SlowSubscribers = *slowSubs
	}
	if *settle > 0 {
		p.SettleTimeout = *settle
	}
	if *traceChk && p.TraceEvery == 0 {
		p.TraceEvery = 4
	}

	// The -check baseline loads before the run: a missing or malformed
	// baseline should fail in seconds, not after minutes of load.
	var base *loadgen.File
	if *check {
		var err error
		if base, err = loadgen.ReadFile(*baseline); err != nil {
			log.Fatalf("baseline: %v", err)
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	ctx, cancel := context.WithTimeout(ctx, *timeout)
	defer cancel()

	runner := &loadgen.Runner{Addr: *addr, Profile: p, Logf: log.Printf}
	res, err := runner.Run(ctx)
	if err != nil {
		log.Fatal(err)
	}
	file := loadgen.NewFile(p, res)
	if err := file.Write(*out); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("profile %-10s %8d records  %8.0f records/s  freshness p50 %.2fs p99 %.2fs (%d sealed paths)\n",
		p.Name, res.RecordsSent, res.RecordsPerS, res.FreshnessP50S, res.FreshnessP99S, res.FreshnessCount)
	fmt.Printf("requests %d  429s %d  retries %d  reconnects %d  http-errors %d\n",
		res.IngestRequests, res.Rejected429, res.Retries, res.Reconnects, res.HTTPErrors)
	fmt.Printf("late %d  duplicates %d  backlogged %d  sealed %d  folded %d  evictions %d  heap-max %.1f MB\n",
		res.LateRecords, res.DuplicateRecords, res.BackloggedRecords, res.TripletsSealed,
		res.TripsFolded, res.SubscriberEvictions, float64(res.HeapMaxBytes)/(1<<20))
	fmt.Printf("wrote %s\n", *out)

	if *traceChk {
		if res.SlowestTrace == nil {
			log.Fatal("trace-check: the server kept no end-to-end traces")
		}
		st := res.SlowestTrace
		fmt.Printf("slowest trace %s: %.1f ms, %d spans, complete=%v, device %s\n",
			st.ID, st.DurationMs, len(st.Spans), st.Complete, st.Device)
	}

	if *check {
		tol := loadgen.Tolerances{
			Throughput:     *tolThroughput,
			P99Frac:        *tolP99,
			P99SlackS:      *tolP99Slack,
			HeapFrac:       *tolHeap,
			HeapSlackBytes: *tolHeapSlack,
		}
		if fails := loadgen.Check(base, file, tol); len(fails) != 0 {
			for _, f := range fails {
				log.Printf("SLO FAIL: %s", f)
			}
			os.Exit(1)
		}
		fmt.Printf("SLO gate passed against %s\n", *baseline)
	}
}
