package main

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"trips/internal/obs"
	"trips/internal/online"
	"trips/internal/position"
)

// TestIngestBackpressure429 proves the bounded-admission contract end to
// end over HTTP: with a stalled seal path (the emitter blocks) and a
// 1-slot shard inbox, POST /ingest stops mid-stream with 429 +
// Retry-After and reports how many records made it in — instead of the
// old behavior, which parked the request goroutine on the shard channel
// until the stall cleared. After the stall releases, ingest recovers.
func TestIngestBackpressure429(t *testing.T) {
	release := make(chan struct{})
	var relOnce sync.Once
	unstall := func() { relOnce.Do(func() { close(release) }) }
	emitting := make(chan struct{})
	var once sync.Once
	s, err := load(loadOptions{demo: true, tuneOnline: func(c online.Config) online.Config {
		inner := c.Emitter
		c.Shards = 1
		c.QueueLen = 1
		c.FlushEvery = 1
		c.FlushInterval = -1
		c.IdleTimeout = -1
		c.Emitter = online.EmitterFunc(func(em online.Emission) {
			once.Do(func() { close(emitting) })
			<-release // stall the shard worker inside the seal
			inner.Emit(em)
		})
		return c
	}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { unstall(); s.engine.Close() })
	mux := s.mux()

	// Replay a demo journey as a new device, one record per POST, the way
	// a closed-loop sender does: a 429 means retry the same record. Before
	// the first seal any 429 is transient (the feeder outran the worker's
	// per-record flush), so the loop just retries; once the wrapped emitter
	// stalls the only shard worker, the 1-slot inbox fills for good and the
	// refusal becomes deterministic.
	src := s.results[s.devices[0]].Raw
	recs := make([]position.Record, 0, src.Len())
	for _, r := range src.Records {
		r.Device = "bp-live"
		recs = append(recs, r)
	}
	postOne := func(r position.Record) *httptest.ResponseRecorder {
		ds := position.NewDataset()
		ds.Add(r)
		var body bytes.Buffer
		if err := position.WriteCSV(&body, ds); err != nil {
			t.Fatal(err)
		}
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/ingest", &body))
		return rec
	}
	i, stalled := 0, false
feed:
	for ; i < len(recs) && !stalled; i++ {
		for {
			select {
			case <-emitting:
				stalled = true
				break feed
			default:
			}
			rec := postOne(recs[i])
			if rec.Code == http.StatusOK {
				break
			}
			if rec.Code != http.StatusTooManyRequests {
				t.Fatalf("ingest status = %d: %s", rec.Code, rec.Body.String())
			}
			runtime.Gosched() // transient backlog: the worker is mid-flush
		}
	}
	if !stalled {
		t.Fatal("journey never sealed a triplet; the workload must cross the horizon")
	}
	if i >= len(recs)-2 {
		t.Fatalf("seal happened only at record %d of %d; no records left to overflow with", i, len(recs))
	}

	// Worker blocked, inbox capacity 1: at most one more record is
	// admitted, then the endpoint must answer 429 + Retry-After.
	var got *httptest.ResponseRecorder
	rejected := false
	for attempt := 0; attempt < 2 && !rejected; attempt++ {
		got = postOne(recs[i])
		i++
		switch got.Code {
		case http.StatusTooManyRequests:
			rejected = true
		case http.StatusOK:
		default:
			t.Fatalf("ingest status = %d: %s", got.Code, got.Body.String())
		}
	}
	if !rejected {
		t.Fatal("full shard inbox with a stalled worker did not yield a 429")
	}
	if ra := got.Result().Header.Get("Retry-After"); ra != ingestRetryAfter {
		t.Errorf("Retry-After = %q, want %q", ra, ingestRetryAfter)
	}
	msg := got.Body.String()
	if !strings.Contains(msg, "backlogged") || !strings.Contains(msg, "records ingested") {
		t.Errorf("429 body lacks backpressure context: %q", msg)
	}

	// The push-back is visible on /metrics: the server-side rejection
	// counter and the engine's backlogged counter both moved.
	mrec := httptest.NewRecorder()
	mux.ServeHTTP(mrec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	samples, err := obs.ParseExposition(mrec.Body)
	if err != nil {
		t.Fatal(err)
	}
	if v := samples["trips_ingest_rejected_total"]; v < 1 {
		t.Errorf("trips_ingest_rejected_total = %v, want >= 1", v)
	}
	if v := samples["trips_online_backlogged_total"]; v < 1 {
		t.Errorf("trips_online_backlogged_total = %v, want >= 1", v)
	}

	// Closed-loop recovery: once the stall clears, the same client retrying
	// eventually gets a 200 — 429 marks pressure, not a poisoned session.
	// The worker drains its backlog first, so honor the Retry-After
	// contract and keep retrying.
	unstall()
	retry := "device,x,y,floor,time\n" +
		"bp-live,5.0,5.0,1F,2017-01-02T10:00:00Z\n" +
		"bp-live,5.1,5.0,1F,2017-01-02T10:00:05Z\n"
	deadline := time.Now().Add(30 * time.Second)
	for {
		rec2 := httptest.NewRecorder()
		mux.ServeHTTP(rec2, httptest.NewRequest(http.MethodPost, "/ingest", strings.NewReader(retry)))
		if rec2.Code == http.StatusOK {
			break
		}
		if rec2.Code != http.StatusTooManyRequests {
			t.Fatalf("post-release ingest status = %d: %s", rec2.Code, rec2.Body.String())
		}
		if time.Now().After(deadline) {
			t.Fatal("ingest still backlogged 30s after the stall released")
		}
		time.Sleep(time.Millisecond)
	}
}
