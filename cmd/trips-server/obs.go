package main

import (
	"log/slog"
	"net/http"
	"net/http/pprof"
	"sync"
	"sync/atomic"
	"time"

	"trips/internal/analytics"
	"trips/internal/obs"
	"trips/internal/obs/trace"
	"trips/internal/online"
	"trips/internal/tripstore"
)

// serverObs is the server's observability surface: one registry backing
// GET /metrics, the per-layer instrument bundles handed to the subsystem
// constructors, the request middleware instruments, and the readiness
// flag. Counters the subsystems already maintain (engine/warehouse/
// analytics stats) are not duplicated here — registerBridges exposes them
// as pull-time CounterFunc/GaugeFunc bridges, so the hot paths stay
// untouched and /metrics can never drift from /stats.
type serverObs struct {
	reg  *obs.Registry
	http *obs.HTTPMetrics

	// tracer is the sampled end-to-end tracer behind /debug/traces; every
	// subsystem that records spans (middleware, ingest, online engine,
	// warehouse, analytics, SSE) shares this one instance.
	tracer *trace.Tracer

	online    *online.Metrics
	store     *tripstore.Metrics
	analytics *analytics.Metrics

	ingestRecords  *obs.Counter
	ingestErrors   *obs.Counter
	ingestRejected *obs.Counter
	ingestSeconds  *obs.Histogram

	autoRebuilds *obs.Counter

	// ready flips once load() finished translating the dataset, replaying
	// the warehouse, and bootstrapping the views — the /readyz gate.
	ready atomic.Bool
}

func newServerObs(tc trace.Config) *serverObs {
	reg := obs.NewRegistry()
	obs.RegisterRuntimeMetrics(reg, "trips")
	tracer := trace.New(tc)
	registerTraceBridges(reg, tracer)
	return &serverObs{
		reg:       reg,
		http:      obs.NewHTTPMetrics(reg, "trips"),
		tracer:    tracer,
		online:    online.NewMetrics(reg),
		store:     tripstore.NewMetrics(reg),
		analytics: analytics.NewMetrics(reg),
		ingestRecords: reg.Counter("trips_ingest_records_total",
			"Positioning records accepted by POST /ingest (parsed and routed to the engine)."),
		ingestErrors: reg.Counter("trips_ingest_errors_total",
			"POST /ingest requests rejected mid-stream (parse error, body cap, closed engine)."),
		ingestRejected: reg.Counter("trips_ingest_rejected_total",
			"POST /ingest requests pushed back with 429 + Retry-After on a full shard inbox."),
		ingestSeconds: reg.Histogram("trips_ingest_request_seconds",
			"POST /ingest end-to-end latency: body streaming, parsing, and engine routing.", nil),
		autoRebuilds: reg.Counter("trips_analytics_auto_rebuilds_total",
			"Automatic view rebuilds triggered by -auto-rebuild."),
	}
}

// registerTraceBridges exposes the tracer's own counters on /metrics.
// Tracer.Stats does not drain the span buffers, so a scrape stays cheap.
func registerTraceBridges(r *obs.Registry, t *trace.Tracer) {
	r.CounterFunc("trips_trace_sampled_total",
		"Requests head-sampled (or forced via X-Trace-Id) into the tracer.",
		func() int64 { return t.Stats().Sampled })
	r.CounterFunc("trips_trace_kept_total",
		"Traces finalized into the in-memory ring.",
		func() int64 { return t.Stats().Kept })
	r.CounterFunc("trips_trace_evicted_total",
		"Completed traces evicted from the ring to make room.",
		func() int64 { return t.Stats().Evicted })
	r.CounterFunc("trips_trace_dropped_spans_total",
		"Spans overwritten before a drain could collect them (buffer overflow).",
		func() int64 { return t.Stats().DroppedSpans })
	r.GaugeFunc("trips_trace_ring_traces",
		"Completed traces currently held in the ring.",
		func() float64 { return float64(t.Stats().Ring) })
	r.GaugeFunc("trips_trace_pending_traces",
		"Traces with drained spans still awaiting their terminal span or linger window.",
		func() float64 { return float64(t.Stats().Pending) })
}

// anStatsCache caches one merged analytics snapshot per second: a scrape
// reads a dozen analytics gauges, and each Stats()/Occupancy() call merges
// every shard, so the bridges share one fetch instead of re-merging per
// sample.
type anStatsCache struct {
	mu        sync.Mutex
	at        time.Time
	st        analytics.Stats
	occupancy int64
}

func (s *server) cachedAnStats() (analytics.Stats, int64) {
	c := &s.anCache
	c.mu.Lock()
	defer c.mu.Unlock()
	//trips:allow wallclock: stats cache freshness check, operational only
	if c.at.IsZero() || time.Since(c.at) > time.Second {
		an := s.analytics()
		c.st = an.Stats()
		c.occupancy = 0
		for _, r := range an.Occupancy(0) {
			c.occupancy += int64(r.Occupancy)
		}
		//trips:allow wallclock: stats cache timestamp, operational only
		c.at = time.Now()
	}
	return c.st, c.occupancy
}

// registerBridges exposes the subsystems' own counters on /metrics; call
// once, after load() built the engine, warehouse, and analytics views.
// Every bridge reads through the server so the analytics gauges follow a
// /analytics/rebuild swap automatically.
func (s *server) registerBridges() {
	r := s.obs.reg
	eng := s.engine
	wh := s.wh

	// Online translation engine.
	r.CounterFunc("trips_online_records_total",
		"Records admitted by the online engine.",
		func() int64 { return eng.Stats().RecordsIn })
	r.CounterFunc("trips_online_late_records_total",
		"Records dropped for arriving behind the seal frontier.",
		func() int64 { return eng.Stats().Late })
	r.CounterFunc("trips_online_duplicate_records_total",
		"Redelivered records (same device, same instant) collapsed to exactly-once.",
		func() int64 { return eng.Stats().Duplicates })
	r.CounterFunc("trips_online_backlogged_total",
		"TryIngest rejections on a full shard inbox (each became a 429 upstream).",
		func() int64 { return eng.Stats().Backlogged })
	r.CounterFunc("trips_online_triplets_total",
		"Sealed triplets emitted (complemented gap inferences included).",
		func() int64 { return eng.Stats().TripletsOut })
	r.CounterFunc("trips_online_inferred_triplets_total",
		"Emitted triplets produced by gap complementing.",
		func() int64 { return eng.Stats().Inferred })
	r.CounterFunc("trips_online_flushes_total",
		"Session flushes (clean+annotate recomputes over a tail).",
		func() int64 { return eng.Stats().Flushes })
	r.CounterFunc("trips_online_incremental_flushes_total",
		"Flushes that reused a stable cleaned prefix; divide by flushes_total for the cache-hit rate.",
		func() int64 { return eng.Stats().IncrementalFlushes })
	r.CounterFunc("trips_online_trims_total",
		"Hard-break tail trims.",
		func() int64 { return eng.Stats().Trims })
	r.CounterFunc("trips_online_forced_trims_total",
		"MaxTail-forced tail trims (exactness sacrificed for bounded memory).",
		func() int64 { return eng.Stats().ForcedTrims })
	r.CounterFunc("trips_online_forced_seals_total",
		"MaxTail horizon seals of sessions that never sealed naturally.",
		func() int64 { return eng.Stats().ForcedSeals })
	r.CounterFunc("trips_online_idle_finalized_total",
		"Sessions finalized and evicted by the idle timeout.",
		func() int64 { return eng.Stats().IdleFinalized })
	r.CounterFunc("trips_online_sessions_total",
		"Device sessions ever created.",
		func() int64 { return eng.Stats().Sessions })
	r.GaugeFunc("trips_online_shard_backlog_records",
		"Records queued in shard inboxes, summed — the ingest lag proxy.",
		func() float64 {
			var sum int
			for _, d := range eng.Stats().ShardDepth {
				sum += d
			}
			return float64(sum)
		})

	// Trip warehouse.
	r.CounterFunc("trips_store_trips_total",
		"Trips stored in the warehouse.",
		func() int64 { return int64(wh.Stats().Trips) })
	r.CounterFunc("trips_store_duplicates_total",
		"Duplicate (device, start) inserts dropped by the warehouse.",
		func() int64 { return int64(wh.Stats().Duplicates) })
	r.CounterFunc("trips_store_dropped_emissions_total",
		"Online emissions lost to a closed warehouse (nonzero = shutdown ordering bug).",
		func() int64 { return int64(wh.Stats().DroppedEmissions) })
	r.GaugeFunc("trips_store_devices",
		"Distinct devices with at least one warehoused trip.",
		func() float64 { return float64(wh.Stats().Devices) })
	r.GaugeFunc("trips_store_segments",
		"Un-snapshotted segment-log files on disk (0 for memory-only).",
		func() float64 { return float64(wh.Stats().Segments) })
	r.GaugeFunc("trips_store_pending_log_records",
		"Trips buffered for the next segment write (0 for memory-only).",
		func() float64 { return float64(wh.Stats().PendingLog) })

	// Analytics views. All bridges read the 1s-cached merged snapshot.
	r.CounterFunc("trips_analytics_trips_folded_total",
		"Sealed triplets folded into the materialized views.",
		func() int64 { st, _ := s.cachedAnStats(); return st.Trips })
	r.CounterFunc("trips_analytics_out_of_order_total",
		"Folds dropped for violating per-device order — the backfill signal behind rebuild_recommended.",
		func() int64 { st, _ := s.cachedAnStats(); return st.OutOfOrder })
	r.CounterFunc("trips_analytics_late_buckets_total",
		"Triplets landing below the popularity ring's pruned frontier.",
		func() int64 { st, _ := s.cachedAnStats(); return st.LateBuckets })
	r.CounterFunc("trips_analytics_device_leaves_total",
		"Explicit departure signals folded (idle-finalized sessions).",
		func() int64 { st, _ := s.cachedAnStats(); return st.DeviceLeaves })
	r.CounterFunc("trips_analytics_subscriber_evictions_total",
		"Live subscribers evicted for not draining their delta buffer.",
		func() int64 { st, _ := s.cachedAnStats(); return st.Evicted })
	r.CounterFunc("trips_analytics_snapshot_errors_total",
		"Failed periodic view-snapshot writes.",
		func() int64 { st, _ := s.cachedAnStats(); return st.SnapshotErrors })
	r.GaugeFunc("trips_analytics_devices",
		"Devices tracked by the views.",
		func() float64 { st, _ := s.cachedAnStats(); return float64(st.Devices) })
	r.GaugeFunc("trips_analytics_subscribers",
		"Live SSE subscribers attached to the delta hub.",
		func() float64 { st, _ := s.cachedAnStats(); return float64(st.Subscribers) })
	r.GaugeFunc("trips_analytics_rebuild_recommended",
		"1 when the views dropped a backfill and POST /analytics/rebuild (or -auto-rebuild) should run.",
		func() float64 {
			if st, _ := s.cachedAnStats(); st.RebuildRecommended {
				return 1
			}
			return 0
		})
	r.GaugeFunc("trips_analytics_occupancy_devices",
		"Devices currently inside any region, merged across every fold shard (the engine-wide total Delta.Occupancy is not).",
		func() float64 { _, occ := s.cachedAnStats(); return float64(occ) })
	r.GaugeFunc("trips_analytics_watermark_seconds",
		"Event-time view watermark (max folded triplet end) as a Unix timestamp; 0 before anything folded.",
		func() float64 {
			st, _ := s.cachedAnStats()
			if st.Watermark.IsZero() {
				return 0
			}
			return float64(st.Watermark.UnixMilli()) / 1000
		})
	r.GaugeFunc("trips_analytics_watermark_age_seconds",
		"Watermark lag: now minus the event-time watermark. Large by design when replaying historical datasets.",
		func() float64 {
			st, _ := s.cachedAnStats()
			if st.Watermark.IsZero() {
				return 0
			}
			//trips:allow wallclock: watermark-lag gauge deliberately compares wall time to event time
			return time.Since(st.Watermark).Seconds()
		})
	r.GaugeFunc("trips_analytics_snapshot_age_seconds",
		"Age of the newest durable view snapshot; 0 when snapshots are disabled or none exists.",
		func() float64 { st, _ := s.cachedAnStats(); return st.SnapshotAgeSeconds })
}

// checkRebuild inspects the views' RebuildRecommended signal once: it logs
// a warning on the false→true transition (either way), and with auto set
// it triggers the same path as POST /analytics/rebuild. The warning latch
// resets when the signal clears (a successful rebuild starts a fresh
// engine with zero dropped folds).
func (s *server) checkRebuild(auto bool) {
	st := s.analytics().Stats()
	if !st.RebuildRecommended {
		s.rebuildWarned.Store(false)
		return
	}
	if !s.rebuildWarned.Swap(true) {
		slog.Warn("analytics views dropped a backfill; rebuild recommended",
			"outOfOrder", st.OutOfOrder, "autoRebuild", auto)
	}
	if !auto {
		return
	}
	//trips:allow wallclock: auto-rebuild duration metric
	start := time.Now()
	fresh, err := s.rebuildAnalytics()
	if err != nil {
		slog.Error("auto-rebuild failed", "error", err)
		return
	}
	s.obs.autoRebuilds.Inc()
	s.rebuildWarned.Store(false)
	slog.Info("analytics views rebuilt automatically",
		"droppedFolds", st.OutOfOrder,
		"tripsFolded", fresh.Stats().Trips,
		//trips:allow wallclock: auto-rebuild duration metric
		"duration", time.Since(start))
}

// watchRebuild polls checkRebuild until the context ends.
func (s *server) watchRebuild(done <-chan struct{}, every time.Duration, auto bool) {
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-done:
			return
		case <-t.C:
			s.checkRebuild(auto)
		}
	}
}

// debugMux serves net/http/pprof on the -debug-addr listener, kept off the
// public mux so profiling endpoints never ship to the serving port.
func debugMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
