package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"trips/internal/position"
)

func demoServer(t *testing.T) *server {
	t.Helper()
	s, err := load(true, "", "", "")
	if err != nil {
		t.Fatalf("load demo: %v", err)
	}
	t.Cleanup(s.engine.Close)
	return s
}

func TestLoadRequiresInputs(t *testing.T) {
	if _, err := load(false, "", "", ""); err == nil {
		t.Error("missing inputs accepted")
	}
}

func TestIndexPage(t *testing.T) {
	s := demoServer(t)
	rec := httptest.NewRecorder()
	s.handleIndex(rec, httptest.NewRequest(http.MethodGet, "/", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	body := rec.Body.String()
	if !strings.Contains(body, "TRIPS") || !strings.Contains(body, "/device/") {
		t.Errorf("index body missing content")
	}
	// Non-root paths 404.
	rec2 := httptest.NewRecorder()
	s.handleIndex(rec2, httptest.NewRequest(http.MethodGet, "/nope", nil))
	if rec2.Code != http.StatusNotFound {
		t.Errorf("non-root status = %d", rec2.Code)
	}
}

func TestDevicePage(t *testing.T) {
	s := demoServer(t)
	dev := string(s.devices[0])
	rec := httptest.NewRecorder()
	s.handleDevice(rec, httptest.NewRequest(http.MethodGet, "/device/"+dev, nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	body := rec.Body.String()
	for _, want := range []string{"<svg", "Timeline", "Mobility semantics", dev} {
		if !strings.Contains(body, want) {
			t.Errorf("device page missing %q", want)
		}
	}
	// Unknown device 404s.
	rec2 := httptest.NewRecorder()
	s.handleDevice(rec2, httptest.NewRequest(http.MethodGet, "/device/ghost", nil))
	if rec2.Code != http.StatusNotFound {
		t.Errorf("unknown device status = %d", rec2.Code)
	}
}

func TestIngestAndLive(t *testing.T) {
	s := demoServer(t)
	mux := s.mux()

	// Replay one demo device's raw records as a fresh live device.
	src := s.results[s.devices[0]].Raw
	ds := position.NewDataset()
	for _, r := range src.Records {
		r.Device = "live-1"
		ds.Add(r)
	}
	var body bytes.Buffer
	if err := position.WriteCSV(&body, ds); err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/ingest", &body))
	if rec.Code != http.StatusOK {
		t.Fatalf("ingest status = %d: %s", rec.Code, rec.Body.String())
	}
	var resp map[string]int
	if err := json.NewDecoder(rec.Body).Decode(&resp); err != nil {
		t.Fatal(err)
	}
	if resp["records"] != src.Len() {
		t.Errorf("ingested %d records, want %d", resp["records"], src.Len())
	}

	// The live view must show the device immediately (provisional
	// annotation recomputes on demand, no flush needed).
	rec2 := httptest.NewRecorder()
	mux.ServeHTTP(rec2, httptest.NewRequest(http.MethodGet, "/live/live-1", nil))
	if rec2.Code != http.StatusOK {
		t.Fatalf("live status = %d", rec2.Code)
	}
	var view liveView
	if err := json.NewDecoder(rec2.Body).Decode(&view); err != nil {
		t.Fatal(err)
	}
	if view.TailRecords == 0 && len(view.Sealed) == 0 {
		t.Errorf("live view empty: %+v", view)
	}
	if len(view.Sealed)+len(view.Provisional) == 0 {
		t.Error("no triplets, sealed or provisional")
	}

	// Unknown device 404s; wrong method 405s; bad payload 400s.
	rec3 := httptest.NewRecorder()
	mux.ServeHTTP(rec3, httptest.NewRequest(http.MethodGet, "/live/ghost", nil))
	if rec3.Code != http.StatusNotFound {
		t.Errorf("unknown live device status = %d", rec3.Code)
	}
	rec4 := httptest.NewRecorder()
	mux.ServeHTTP(rec4, httptest.NewRequest(http.MethodGet, "/ingest", nil))
	if rec4.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET /ingest status = %d", rec4.Code)
	}
	rec5 := httptest.NewRecorder()
	mux.ServeHTTP(rec5, httptest.NewRequest(http.MethodPost, "/ingest",
		strings.NewReader("not,a,record\n")))
	if rec5.Code != http.StatusBadRequest {
		t.Errorf("bad payload status = %d", rec5.Code)
	}
}

func TestStatsEndpoint(t *testing.T) {
	s := demoServer(t)
	rec := httptest.NewRecorder()
	s.mux().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/stats", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("stats status = %d", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "recordsIn") {
		t.Errorf("stats body missing counters: %s", rec.Body.String())
	}
}

func TestDevicePageFloorAndHide(t *testing.T) {
	s := demoServer(t)
	dev := string(s.devices[0])
	rec := httptest.NewRecorder()
	s.handleDevice(rec, httptest.NewRequest(http.MethodGet,
		"/device/"+dev+"?floor=2F&hide=raw,truth", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	body := rec.Body.String()
	if !strings.Contains(body, "floor 2F") {
		t.Error("floor switch not applied")
	}
	if !strings.Contains(body, "☐ raw") {
		t.Error("hidden source not reflected in toggles")
	}
	if !strings.Contains(body, "☑ cleaned") {
		t.Error("visible source not reflected in toggles")
	}
}
