package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
	"time"

	"trips/internal/position"
	"trips/internal/tripstore"
)

func demoServer(t *testing.T) *server {
	t.Helper()
	s, err := load(loadOptions{demo: true})
	if err != nil {
		t.Fatalf("load demo: %v", err)
	}
	t.Cleanup(s.engine.Close)
	return s
}

func TestLoadRequiresInputs(t *testing.T) {
	if _, err := load(loadOptions{}); err == nil {
		t.Error("missing inputs accepted")
	}
}

func TestIndexPage(t *testing.T) {
	s := demoServer(t)
	rec := httptest.NewRecorder()
	s.handleIndex(rec, httptest.NewRequest(http.MethodGet, "/", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	body := rec.Body.String()
	if !strings.Contains(body, "TRIPS") || !strings.Contains(body, "/device/") {
		t.Errorf("index body missing content")
	}
	// Non-root paths 404.
	rec2 := httptest.NewRecorder()
	s.handleIndex(rec2, httptest.NewRequest(http.MethodGet, "/nope", nil))
	if rec2.Code != http.StatusNotFound {
		t.Errorf("non-root status = %d", rec2.Code)
	}
}

func TestDevicePage(t *testing.T) {
	s := demoServer(t)
	dev := string(s.devices[0])
	rec := httptest.NewRecorder()
	s.handleDevice(rec, httptest.NewRequest(http.MethodGet, "/device/"+dev, nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	body := rec.Body.String()
	for _, want := range []string{"<svg", "Timeline", "Mobility semantics", dev} {
		if !strings.Contains(body, want) {
			t.Errorf("device page missing %q", want)
		}
	}
	// Unknown device 404s.
	rec2 := httptest.NewRecorder()
	s.handleDevice(rec2, httptest.NewRequest(http.MethodGet, "/device/ghost", nil))
	if rec2.Code != http.StatusNotFound {
		t.Errorf("unknown device status = %d", rec2.Code)
	}
}

func TestIngestAndLive(t *testing.T) {
	s := demoServer(t)
	mux := s.mux()

	// Replay one demo device's raw records as a fresh live device.
	src := s.results[s.devices[0]].Raw
	ds := position.NewDataset()
	for _, r := range src.Records {
		r.Device = "live-1"
		ds.Add(r)
	}
	var body bytes.Buffer
	if err := position.WriteCSV(&body, ds); err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/ingest", &body))
	if rec.Code != http.StatusOK {
		t.Fatalf("ingest status = %d: %s", rec.Code, rec.Body.String())
	}
	var resp map[string]int
	if err := json.NewDecoder(rec.Body).Decode(&resp); err != nil {
		t.Fatal(err)
	}
	if resp["records"] != src.Len() {
		t.Errorf("ingested %d records, want %d", resp["records"], src.Len())
	}

	// The live view must show the device immediately (provisional
	// annotation recomputes on demand, no flush needed).
	rec2 := httptest.NewRecorder()
	mux.ServeHTTP(rec2, httptest.NewRequest(http.MethodGet, "/live/live-1", nil))
	if rec2.Code != http.StatusOK {
		t.Fatalf("live status = %d", rec2.Code)
	}
	var view liveView
	if err := json.NewDecoder(rec2.Body).Decode(&view); err != nil {
		t.Fatal(err)
	}
	if view.TailRecords == 0 && len(view.Sealed) == 0 {
		t.Errorf("live view empty: %+v", view)
	}
	if len(view.Sealed)+len(view.Provisional) == 0 {
		t.Error("no triplets, sealed or provisional")
	}

	// Unknown device 404s; wrong method 405s; bad payload 400s.
	rec3 := httptest.NewRecorder()
	mux.ServeHTTP(rec3, httptest.NewRequest(http.MethodGet, "/live/ghost", nil))
	if rec3.Code != http.StatusNotFound {
		t.Errorf("unknown live device status = %d", rec3.Code)
	}
	rec4 := httptest.NewRecorder()
	mux.ServeHTTP(rec4, httptest.NewRequest(http.MethodGet, "/ingest", nil))
	if rec4.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET /ingest status = %d", rec4.Code)
	}
	rec5 := httptest.NewRecorder()
	mux.ServeHTTP(rec5, httptest.NewRequest(http.MethodPost, "/ingest",
		strings.NewReader("not,a,record\n")))
	if rec5.Code != http.StatusBadRequest {
		t.Errorf("bad payload status = %d", rec5.Code)
	}
}

// TestIngestStreamsUntilBadRow: ingest streams records into the engine as
// they parse, so a malformed row mid-stream fails the request with the row
// number and the count already ingested — and the valid prefix is really
// in the engine.
func TestIngestStreamsUntilBadRow(t *testing.T) {
	s := demoServer(t)
	mux := s.mux()
	before := s.engine.Stats().RecordsIn
	body := "device,x,y,floor,time\n" +
		"stream-1,5.0,5.0,1F,2017-01-01T15:00:00Z\n" +
		"stream-1,5.2,5.1,1F,2017-01-01T15:00:05Z\n" +
		"stream-1,bogus,5.2,1F,2017-01-01T15:00:10Z\n" +
		"stream-1,5.4,5.3,1F,2017-01-01T15:00:15Z\n"
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/ingest", strings.NewReader(body)))
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", rec.Code)
	}
	msg := rec.Body.String()
	if !strings.Contains(msg, "row 4") || !strings.Contains(msg, "2 records ingested") {
		t.Errorf("error lacks row number or ingested count: %q", msg)
	}
	s.engine.Flush() // barrier: drain the shard inboxes before reading stats
	if got := s.engine.Stats().RecordsIn - before; got != 2 {
		t.Errorf("engine ingested %d records, want the 2 before the bad row", got)
	}
}

func TestStatsEndpoint(t *testing.T) {
	s := demoServer(t)
	rec := httptest.NewRecorder()
	s.mux().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/stats", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("stats status = %d", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "recordsIn") {
		t.Errorf("stats body missing counters: %s", rec.Body.String())
	}
}

func TestTripsEndpoints(t *testing.T) {
	s := demoServer(t)
	mux := s.mux()
	get := func(t *testing.T, path string, wantCode int) tripstore.Page {
		t.Helper()
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
		if rec.Code != wantCode {
			t.Fatalf("GET %s status = %d, want %d: %s", path, rec.Code, wantCode, rec.Body.String())
		}
		var page tripstore.Page
		if wantCode == http.StatusOK {
			if err := json.NewDecoder(rec.Body).Decode(&page); err != nil {
				t.Fatalf("GET %s: %v", path, err)
			}
		}
		return page
	}

	// The batch translation landed in the warehouse at startup.
	all := get(t, "/trips?limit=1000", http.StatusOK)
	if len(all.Trips) == 0 {
		t.Fatal("warehouse empty after startup translation")
	}
	wantTotal := 0
	for _, res := range s.results {
		wantTotal += res.Final.Len()
	}
	if len(all.Trips) != wantTotal {
		t.Errorf("GET /trips returned %d trips, batch produced %d", len(all.Trips), wantTotal)
	}

	// Pagination walks the same set.
	var walked int
	path := "/trips?limit=7"
	for {
		page := get(t, path, http.StatusOK)
		walked += len(page.Trips)
		if page.Next == "" {
			break
		}
		path = "/trips?limit=7&cursor=" + page.Next
	}
	if walked != wantTotal {
		t.Errorf("paginated walk saw %d trips, want %d", walked, wantTotal)
	}

	// Device endpoint matches the device's batch result.
	dev := s.devices[0]
	devPage := get(t, "/trips/"+string(dev)+"?limit=1000", http.StatusOK)
	if want := s.results[dev].Final.Len(); len(devPage.Trips) != want {
		t.Errorf("GET /trips/%s returned %d trips, want %d", dev, len(devPage.Trips), want)
	}
	for _, tr := range devPage.Trips {
		if tr.Device != dev {
			t.Fatalf("foreign device %s in /trips/%s", tr.Device, dev)
		}
	}

	// Time-filtered region query: pick the region and span of a real trip
	// and expect at least that trip back, every hit overlapping the range
	// and in the region.
	ref := all.Trips[len(all.Trips)/2]
	region := ref.Triplet.Region
	since := ref.Triplet.From.UTC().Format(time.RFC3339)
	until := ref.Triplet.To.UTC().Format(time.RFC3339)
	q := "/trips?region=" + url.QueryEscape(region) + "&since=" + url.QueryEscape(since) + "&until=" + url.QueryEscape(until)
	page := get(t, q, http.StatusOK)
	if len(page.Trips) == 0 {
		t.Fatalf("region+time query %s returned nothing", q)
	}
	found := false
	for _, tr := range page.Trips {
		if tr.Triplet.Region != region {
			t.Errorf("region query returned %q trip", tr.Triplet.Region)
		}
		if !tr.Triplet.Overlaps(ref.Triplet.From, ref.Triplet.To) {
			t.Errorf("trip %v outside [%s, %s)", tr.Triplet, since, until)
		}
		if tr.Device == ref.Device && tr.Seq == ref.Seq {
			found = true
		}
	}
	if !found {
		t.Error("region+time query missed the reference trip")
	}

	// /regions/{id}/visits accepts the region ID and the semantic tag.
	if id := ref.Triplet.RegionID; id != "" {
		byID := get(t, "/regions/"+url.PathEscape(string(id))+"/visits?limit=1000", http.StatusOK)
		if len(byID.Trips) == 0 {
			t.Errorf("/regions/%s/visits empty", id)
		}
	}
	byTag := get(t, "/regions/"+url.PathEscape(region)+"/visits?limit=1000", http.StatusOK)
	if len(byTag.Trips) == 0 {
		t.Errorf("/regions/%s/visits (tag) empty", region)
	}
	// A ?device= filter narrows visits to that device.
	byDev := get(t, "/regions/"+url.PathEscape(region)+"/visits?device="+url.QueryEscape(string(ref.Device))+"&limit=1000", http.StatusOK)
	if len(byDev.Trips) == 0 || len(byDev.Trips) > len(byTag.Trips) {
		t.Errorf("device-filtered visits = %d of %d; filter not applied", len(byDev.Trips), len(byTag.Trips))
	}
	for _, tr := range byDev.Trips {
		if tr.Device != ref.Device {
			t.Errorf("visits?device=%s returned %s", ref.Device, tr.Device)
		}
	}

	// Warehouse stats counts what /trips returned.
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/warehouse", nil))
	var st tripstore.Stats
	if err := json.NewDecoder(rec.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Trips != wantTotal || st.Devices != len(s.devices) {
		t.Errorf("warehouse stats = %+v, want %d trips over %d devices", st, wantTotal, len(s.devices))
	}

	// Bad inputs: malformed params 400, unknown region 404, POST 405.
	get(t, "/trips?since=yesterday", http.StatusBadRequest)
	get(t, "/trips?limit=-3", http.StatusBadRequest)
	get(t, "/trips?cursor=!!!", http.StatusBadRequest)
	get(t, "/regions/no-such-region/visits", http.StatusNotFound)
	get(t, "/regions/oops", http.StatusNotFound)
	rec2 := httptest.NewRecorder()
	mux.ServeHTTP(rec2, httptest.NewRequest(http.MethodPost, "/trips", nil))
	if rec2.Code != http.StatusMethodNotAllowed {
		t.Errorf("POST /trips status = %d", rec2.Code)
	}
}

// TestOnlineIngestReachesWarehouse replays records through POST /ingest
// and expects the engine's sealed triplets to become queryable.
func TestOnlineIngestReachesWarehouse(t *testing.T) {
	s := demoServer(t)
	mux := s.mux()

	src := s.results[s.devices[0]].Raw
	ds := position.NewDataset()
	for _, r := range src.Records {
		r.Device = "wh-live"
		ds.Add(r)
	}
	var body bytes.Buffer
	if err := position.WriteCSV(&body, ds); err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/ingest", &body))
	if rec.Code != http.StatusOK {
		t.Fatalf("ingest status = %d", rec.Code)
	}
	s.engine.Close() // seal every open session → warehouse

	rec2 := httptest.NewRecorder()
	mux.ServeHTTP(rec2, httptest.NewRequest(http.MethodGet, "/trips/wh-live", nil))
	var page tripstore.Page
	if err := json.NewDecoder(rec2.Body).Decode(&page); err != nil {
		t.Fatal(err)
	}
	if len(page.Trips) == 0 {
		t.Error("online-sealed triplets not in warehouse")
	}
	for i, tr := range page.Trips {
		if tr.Seq != i {
			t.Errorf("trip %d has seq %d; warehouse order broken", i, tr.Seq)
		}
	}
}

// TestLiveTripsForBatchDevice regression-tests the dedupe identity: a
// device already warehoused by the startup batch translation keeps
// accumulating NEW live trips (the online engine's seq restarts at 0, so
// seq-keyed dedupe would silently drop them all).
func TestLiveTripsForBatchDevice(t *testing.T) {
	s := demoServer(t)
	mux := s.mux()
	dev := s.devices[0]
	batchCount := s.results[dev].Final.Len()

	// Replay the device's own records shifted well past the batch
	// window: same device ID, genuinely new trips.
	ds := position.NewDataset()
	for _, r := range s.results[dev].Raw.Records {
		r.At = r.At.Add(24 * time.Hour)
		ds.Add(r)
	}
	var body bytes.Buffer
	if err := position.WriteCSV(&body, ds); err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/ingest", &body))
	if rec.Code != http.StatusOK {
		t.Fatalf("ingest status = %d", rec.Code)
	}
	s.engine.Close() // seal → warehouse

	rec2 := httptest.NewRecorder()
	mux.ServeHTTP(rec2, httptest.NewRequest(http.MethodGet, "/trips/"+string(dev)+"?limit=1000", nil))
	var page tripstore.Page
	if err := json.NewDecoder(rec2.Body).Decode(&page); err != nil {
		t.Fatal(err)
	}
	if len(page.Trips) <= batchCount {
		t.Errorf("device %s has %d warehoused trips after live ingest, batch alone had %d — live trips were dropped",
			dev, len(page.Trips), batchCount)
	}
}

// TestWarehousePersistsAcrossRestart boots the server with -store, kills
// it, boots a second instance over the same directory, and expects the
// same answers — without rerunning any translation.
func TestWarehousePersistsAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	s1, err := load(loadOptions{demo: true, storeDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	q := "/trips?limit=1000"
	rec := httptest.NewRecorder()
	s1.mux().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, q, nil))
	var first tripstore.Page
	if err := json.NewDecoder(rec.Body).Decode(&first); err != nil {
		t.Fatal(err)
	}
	s1.engine.Close()
	if err := s1.wh.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := load(loadOptions{demo: true, storeDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s2.engine.Close(); s2.wh.Close() })
	rec2 := httptest.NewRecorder()
	s2.mux().ServeHTTP(rec2, httptest.NewRequest(http.MethodGet, q, nil))
	var second tripstore.Page
	if err := json.NewDecoder(rec2.Body).Decode(&second); err != nil {
		t.Fatal(err)
	}
	if len(first.Trips) == 0 || len(first.Trips) != len(second.Trips) {
		t.Fatalf("restart changed the answer: %d trips then %d", len(first.Trips), len(second.Trips))
	}
	// The demo re-translates at startup; dedupe must have absorbed the
	// re-ingestion rather than doubling the warehouse.
	if st := s2.wh.Stats(); st.Duplicates == 0 {
		t.Error("expected re-ingested duplicates to be counted, not stored")
	}
}

func TestDevicePageFloorAndHide(t *testing.T) {
	s := demoServer(t)
	dev := string(s.devices[0])
	rec := httptest.NewRecorder()
	s.handleDevice(rec, httptest.NewRequest(http.MethodGet,
		"/device/"+dev+"?floor=2F&hide=raw,truth", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	body := rec.Body.String()
	if !strings.Contains(body, "floor 2F") {
		t.Error("floor switch not applied")
	}
	if !strings.Contains(body, "☐ raw") {
		t.Error("hidden source not reflected in toggles")
	}
	if !strings.Contains(body, "☑ cleaned") {
		t.Error("visible source not reflected in toggles")
	}
}
