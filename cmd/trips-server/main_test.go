package main

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func demoServer(t *testing.T) *server {
	t.Helper()
	s, err := load(true, "", "", "")
	if err != nil {
		t.Fatalf("load demo: %v", err)
	}
	return s
}

func TestLoadRequiresInputs(t *testing.T) {
	if _, err := load(false, "", "", ""); err == nil {
		t.Error("missing inputs accepted")
	}
}

func TestIndexPage(t *testing.T) {
	s := demoServer(t)
	rec := httptest.NewRecorder()
	s.handleIndex(rec, httptest.NewRequest(http.MethodGet, "/", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	body := rec.Body.String()
	if !strings.Contains(body, "TRIPS") || !strings.Contains(body, "/device/") {
		t.Errorf("index body missing content")
	}
	// Non-root paths 404.
	rec2 := httptest.NewRecorder()
	s.handleIndex(rec2, httptest.NewRequest(http.MethodGet, "/nope", nil))
	if rec2.Code != http.StatusNotFound {
		t.Errorf("non-root status = %d", rec2.Code)
	}
}

func TestDevicePage(t *testing.T) {
	s := demoServer(t)
	dev := string(s.devices[0])
	rec := httptest.NewRecorder()
	s.handleDevice(rec, httptest.NewRequest(http.MethodGet, "/device/"+dev, nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	body := rec.Body.String()
	for _, want := range []string{"<svg", "Timeline", "Mobility semantics", dev} {
		if !strings.Contains(body, want) {
			t.Errorf("device page missing %q", want)
		}
	}
	// Unknown device 404s.
	rec2 := httptest.NewRecorder()
	s.handleDevice(rec2, httptest.NewRequest(http.MethodGet, "/device/ghost", nil))
	if rec2.Code != http.StatusNotFound {
		t.Errorf("unknown device status = %d", rec2.Code)
	}
}

func TestDevicePageFloorAndHide(t *testing.T) {
	s := demoServer(t)
	dev := string(s.devices[0])
	rec := httptest.NewRecorder()
	s.handleDevice(rec, httptest.NewRequest(http.MethodGet,
		"/device/"+dev+"?floor=2F&hide=raw,truth", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	body := rec.Body.String()
	if !strings.Contains(body, "floor 2F") {
		t.Error("floor switch not applied")
	}
	if !strings.Contains(body, "☐ raw") {
		t.Error("hidden source not reflected in toggles")
	}
	if !strings.Contains(body, "☑ cleaned") {
		t.Error("visible source not reflected in toggles")
	}
}
