package main

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"trips/internal/obs"
	"trips/internal/position"
	"trips/internal/semantics"
)

// ingestDemoReplay replays one demo device's raw records through
// POST /ingest under a fresh device name, so the online engine sees live
// traffic whose sealing behaviour matches the batch translation.
func ingestDemoReplay(t *testing.T, s *server, mux http.Handler, dev string) int {
	t.Helper()
	src := s.results[s.devices[0]].Raw
	ds := position.NewDataset()
	for _, r := range src.Records {
		r.Device = position.DeviceID(dev)
		ds.Add(r)
	}
	var body bytes.Buffer
	if err := position.WriteCSV(&body, ds); err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/ingest", &body))
	if rec.Code != http.StatusOK {
		t.Fatalf("ingest status = %d: %s", rec.Code, rec.Body.String())
	}
	return src.Len()
}

// scrape fetches /metrics through the full middleware-wrapped mux and
// parses it with the strict exposition validator.
func scrape(t *testing.T, mux http.Handler) map[string]float64 {
	t.Helper()
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/metrics status = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("/metrics Content-Type = %q, want text/plain", ct)
	}
	samples, err := obs.ParseExposition(rec.Body)
	if err != nil {
		t.Fatalf("/metrics is not valid Prometheus text: %v", err)
	}
	return samples
}

// TestMetricsEndpoint is the end-to-end observability check: after live
// ingest and a forced flush, /metrics must expose every layer — HTTP,
// ingest, online translation, flush stages, warehouse, analytics — with
// the key series non-zero, and the whole exposition must parse strictly.
func TestMetricsEndpoint(t *testing.T) {
	s := demoServer(t)
	mux := s.mux()

	want := ingestDemoReplay(t, s, mux, "live-obs")
	s.engine.Flush() // seal, so freshness observations reach the analytics tee

	samples := scrape(t, mux)
	if got := samples["trips_ingest_records_total"]; got != float64(want) {
		t.Errorf("trips_ingest_records_total = %v, want %d", got, want)
	}
	// Series that must be present and non-zero after demo load + ingest.
	mustNonZero := []string{
		"trips_online_records_total",
		"trips_online_triplets_total",
		"trips_online_flushes_total",
		"trips_online_sessions_total",
		"trips_online_flush_stage_seconds_count{stage=\"clean\"}",
		"trips_online_flush_stage_seconds_count{stage=\"annotate\"}",
		"trips_online_flush_stage_seconds_count{stage=\"seal\"}",
		"trips_store_trips_total",
		"trips_store_devices",
		"trips_analytics_trips_folded_total",
		"trips_analytics_devices",
		"trips_freshness_seconds_count",
		"trips_analytics_fold_seconds_count",
		"trips_ingest_request_seconds_count",
		"trips_http_request_seconds_count",
		"trips_http_requests_total{code=\"2xx\"}",
	}
	for _, name := range mustNonZero {
		v, ok := samples[name]
		if !ok {
			t.Errorf("series %s missing from /metrics", name)
			continue
		}
		if v <= 0 {
			t.Errorf("%s = %v, want > 0", name, v)
		}
	}
	// Series that must exist even at zero.
	for _, name := range []string{
		"trips_ingest_errors_total",
		"trips_online_late_records_total",
		"trips_analytics_rebuild_recommended",
		"trips_analytics_auto_rebuilds_total",
		"trips_analytics_watermark_seconds",
		"trips_analytics_occupancy_devices",
		"trips_store_segment_write_seconds_count",
	} {
		if _, ok := samples[name]; !ok {
			t.Errorf("series %s missing from /metrics", name)
		}
	}
	// The demo replays a historical dataset, so the watermark lags now by
	// design — the gauge must reflect that, not clamp to zero.
	if v := samples["trips_analytics_watermark_age_seconds"]; v <= 0 {
		t.Errorf("trips_analytics_watermark_age_seconds = %v, want > 0 for a historical replay", v)
	}

	// A warehouse query observes the store query histogram.
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/trips?limit=1", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/trips status = %d", rec.Code)
	}
	if v := scrape(t, mux)["trips_store_query_seconds_count"]; v <= 0 {
		t.Errorf("trips_store_query_seconds_count = %v, want > 0 after /trips", v)
	}

	// /metrics is read-only: POST must be rejected and counted as 4xx.
	rec2 := httptest.NewRecorder()
	mux.ServeHTTP(rec2, httptest.NewRequest(http.MethodPost, "/metrics", nil))
	if rec2.Code != http.StatusMethodNotAllowed {
		t.Errorf("POST /metrics status = %d, want 405", rec2.Code)
	}
}

// TestHealthEndpoints proves liveness and readiness through the public mux:
// the demo server finishes load() before serving, so both gates are open.
func TestHealthEndpoints(t *testing.T) {
	s := demoServer(t)
	mux := s.mux()
	for _, path := range []string{"/healthz", "/readyz"} {
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
		if rec.Code != http.StatusOK {
			t.Errorf("%s status = %d, want 200", path, rec.Code)
		}
	}
	// An unready server must fail /readyz with 503 so load balancers hold
	// traffic until load() completes.
	s.obs.ready.Store(false)
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/readyz", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Errorf("/readyz while loading status = %d, want 503", rec.Code)
	}
	s.obs.ready.Store(true)
}

// TestConcurrentIngestAndScrape hammers /ingest and /metrics from parallel
// goroutines — the race detector is the assertion: lock-free instrument
// writes, pull-time bridges, and the cached analytics snapshot must all be
// clean under concurrent scrape load.
func TestConcurrentIngestAndScrape(t *testing.T) {
	s := demoServer(t)
	mux := s.mux()
	src := s.results[s.devices[0]].Raw

	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ds := position.NewDataset()
			for _, r := range src.Records {
				r.Device = position.DeviceID(fmt.Sprintf("race-%d", i))
				ds.Add(r)
			}
			var body bytes.Buffer
			if err := position.WriteCSV(&body, ds); err != nil {
				t.Error(err)
				return
			}
			// Bounded admission may push back mid-stream under the race
			// detector's slowdown; the closed-loop contract is to re-send
			// the whole batch — the engine's duplicate collapse makes the
			// retry exactly-once.
			payload := body.Bytes()
			for {
				rec := httptest.NewRecorder()
				mux.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/ingest", bytes.NewReader(payload)))
				if rec.Code == http.StatusOK {
					return
				}
				if rec.Code != http.StatusTooManyRequests {
					t.Errorf("ingest status = %d", rec.Code)
					return
				}
				time.Sleep(time.Millisecond)
			}
		}(i)
	}
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 25; j++ {
				rec := httptest.NewRecorder()
				mux.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
				if rec.Code != http.StatusOK {
					t.Errorf("/metrics status = %d", rec.Code)
					return
				}
			}
		}()
	}
	wg.Wait()
	s.engine.Flush()
	if _, err := obs.ParseExposition(strings.NewReader(scrapeRaw(t, mux))); err != nil {
		t.Fatalf("final exposition does not parse: %v", err)
	}
}

func scrapeRaw(t *testing.T, mux http.Handler) string {
	t.Helper()
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/metrics status = %d", rec.Code)
	}
	return rec.Body.String()
}

// TestCheckRebuild drives the RebuildRecommended watcher both ways: without
// -auto-rebuild it only warns (and exports the gauge), with it the watcher
// runs the same rebuild path as POST /analytics/rebuild and the signal
// clears.
func TestCheckRebuild(t *testing.T) {
	s := demoServer(t)
	mux := s.mux()

	// Force a dropped backfill: fold a triplet, then one behind the
	// device's fold frontier.
	base := time.Date(2017, 1, 1, 10, 0, 0, 0, time.UTC)
	mk := func(at time.Time) semantics.Triplet {
		return semantics.Triplet{Event: semantics.EventStay, Region: "Nike",
			RegionID: "obs-test-region", From: at, To: at.Add(time.Minute)}
	}
	s.analytics().Ingest("ooo-dev", mk(base.Add(time.Hour)))
	s.analytics().Ingest("ooo-dev", mk(base)) // behind the frontier: dropped
	if st := s.analytics().Stats(); !st.RebuildRecommended {
		t.Fatal("out-of-order fold did not set RebuildRecommended")
	}

	// The exported gauge reflects it (bypassing the 1s stats cache).
	s.anCache.at = time.Time{}
	if v := scrape(t, mux)["trips_analytics_rebuild_recommended"]; v != 1 {
		t.Errorf("trips_analytics_rebuild_recommended = %v, want 1", v)
	}

	// Warn-only mode: the signal persists, nothing rebuilds.
	s.checkRebuild(false)
	if got := s.obs.autoRebuilds.Value(); got != 0 {
		t.Errorf("auto rebuilds after warn-only check = %d, want 0", got)
	}
	if !s.analytics().Stats().RebuildRecommended {
		t.Error("warn-only check cleared RebuildRecommended")
	}
	if !s.rebuildWarned.Load() {
		t.Error("warn latch not set after warn-only check")
	}

	// Auto mode: the rebuild runs, the signal clears, the counter ticks.
	s.checkRebuild(true)
	if got := s.obs.autoRebuilds.Value(); got != 1 {
		t.Errorf("auto rebuilds = %d, want 1", got)
	}
	if st := s.analytics().Stats(); st.RebuildRecommended {
		t.Errorf("RebuildRecommended still set after auto-rebuild: %+v", st)
	}
	if s.rebuildWarned.Load() {
		t.Error("warn latch not reset after successful auto-rebuild")
	}
	s.anCache.at = time.Time{}
	if v := scrape(t, mux)["trips_analytics_rebuild_recommended"]; v != 0 {
		t.Errorf("trips_analytics_rebuild_recommended after rebuild = %v, want 0", v)
	}
	if v := scrape(t, mux)["trips_analytics_auto_rebuilds_total"]; v != 1 {
		t.Errorf("trips_analytics_auto_rebuilds_total = %v, want 1", v)
	}

	// A clean engine: checkRebuild is a no-op either way.
	s.checkRebuild(true)
	if got := s.obs.autoRebuilds.Value(); got != 1 {
		t.Errorf("auto rebuilds after clean check = %d, want 1", got)
	}
}
