package main

import (
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"trips/internal/obs/trace"
	"trips/internal/online"
	"trips/internal/position"
	"trips/internal/tripstore"
)

// The trace endpoints serve the sampled end-to-end tracer and per-device
// lineage:
//
//	GET /debug/traces             kept traces, newest first
//	                              (?min_ms=, ?device=, ?err=true, ?limit=)
//	GET /debug/traces/{id}        one trace's full span tree
//	GET /debug/device/{id}        pipeline lineage: live session state,
//	                              last-flush breakdown, recent traces
//
// They live on the public mux (unlike pprof) because they answer the
// operational question "where did this request's time go" — the trace ID
// comes back on every response as X-Trace-Id.

// tracesResponse is the GET /debug/traces body. The list view omits span
// trees (fetch /debug/traces/{id} for one); Stats summarize tracer
// activity so the page is self-describing about sampling and eviction.
type tracesResponse struct {
	Stats  trace.Stats       `json:"stats"`
	Traces []trace.TraceView `json:"traces"`
}

func (s *server) handleTraces(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	q := r.URL.Query()
	f := trace.Filter{Device: q.Get("device")}
	if v := q.Get("min_ms"); v != "" {
		ms, err := strconv.ParseFloat(v, 64)
		if err != nil || ms < 0 {
			http.Error(w, fmt.Sprintf("min_ms: bad value %q", v), http.StatusBadRequest)
			return
		}
		f.MinDuration = time.Duration(ms * float64(time.Millisecond))
	}
	if v := q.Get("err"); v != "" {
		b, err := strconv.ParseBool(v)
		if err != nil {
			http.Error(w, fmt.Sprintf("err: bad value %q", v), http.StatusBadRequest)
			return
		}
		f.Err = b
	}
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			http.Error(w, fmt.Sprintf("limit: bad value %q", v), http.StatusBadRequest)
			return
		}
		f.Limit = min(n, 1000)
	}
	traces := s.obs.tracer.Traces(f)
	views := make([]trace.TraceView, 0, len(traces))
	for _, t := range traces {
		v := t.View()
		v.Spans = nil
		views = append(views, v)
	}
	writeJSON(w, tracesResponse{Stats: s.obs.tracer.Stats(), Traces: views})
}

func (s *server) handleTraceByID(w http.ResponseWriter, r *http.Request) {
	raw := strings.TrimPrefix(r.URL.Path, "/debug/traces/")
	id, ok := trace.ParseTraceID(raw)
	if !ok {
		http.Error(w, fmt.Sprintf("bad trace id %q (want 32 hex digits)", raw), http.StatusBadRequest)
		return
	}
	tr, ok := s.obs.tracer.Get(id)
	if !ok {
		http.NotFound(w, r)
		return
	}
	writeJSON(w, tr.View())
}

// deviceLineageView is the GET /debug/device/{id} body: where one device's
// data currently sits in the pipeline. Live is present while the online
// engine holds a session for the device; Warehoused reports whether any
// sealed trip reached the store; RecentTraces lists kept trace IDs
// attributed to the device, newest first.
type deviceLineageView struct {
	Device       position.DeviceID `json:"device"`
	Live         *online.Lineage   `json:"live,omitempty"`
	Warehoused   bool              `json:"warehoused"`
	RecentTraces []string          `json:"recentTraces,omitempty"`
}

func (s *server) handleDeviceLineage(w http.ResponseWriter, r *http.Request) {
	raw := strings.TrimPrefix(r.URL.Path, "/debug/device/")
	if raw == "" || strings.Contains(raw, "/") {
		http.NotFound(w, r)
		return
	}
	dev := position.DeviceID(raw)
	view := deviceLineageView{Device: dev}
	if lin, ok := s.engine.Lineage(dev); ok {
		view.Live = &lin
	}
	if page, err := s.wh.Query(tripstore.QuerySpec{Device: dev, Limit: 1}); err == nil {
		view.Warehoused = len(page.Trips) > 0
	}
	for _, t := range s.obs.tracer.Traces(trace.Filter{Device: raw, Limit: 5}) {
		view.RecentTraces = append(view.RecentTraces, t.ID.String())
	}
	if view.Live == nil && !view.Warehoused && len(view.RecentTraces) == 0 {
		http.NotFound(w, r)
		return
	}
	writeJSON(w, view)
}
