package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"trips/internal/obs/trace"
)

// smokeTraceCSV mirrors the CI restart-smoke payload: a short dwell, then a
// second dwell ~15 minutes of event time later so the first stay is past
// the seal horizon and a single Flush seals and emits it end to end.
const smokeTraceCSV = "device,x,y,floor,time\n" +
	"trace-dev,5.0,5.0,1F,2017-01-01T15:00:00Z\n" +
	"trace-dev,5.2,5.1,1F,2017-01-01T15:00:05Z\n" +
	"trace-dev,5.1,4.9,1F,2017-01-01T15:00:10Z\n" +
	"trace-dev,20.0,20.0,1F,2017-01-01T15:15:00Z\n" +
	"trace-dev,20.1,20.0,1F,2017-01-01T15:15:05Z\n"

// TestEndToEndTraceSpanTree is the acceptance test for the tracing
// tentpole: one forced ingest must come back from /debug/traces/{id} as a
// kept, complete trace whose span tree covers the whole pipeline —
// ingest → enqueue → clean → annotate → seal → warehouse_append →
// analytics_fold — with parent links intact and stage durations consistent
// with the measured wall time. Run under -race it also exercises the
// lock-free span buffers against the shard pool.
func TestEndToEndTraceSpanTree(t *testing.T) {
	s := demoServer(t)
	mux := s.mux()
	const tid = "00112233445566778899aabbccddeeff"

	start := time.Now()
	req := httptest.NewRequest(http.MethodPost, "/ingest", strings.NewReader(smokeTraceCSV))
	req.Header.Set("Content-Type", "text/csv")
	req.Header.Set("X-Trace-Id", tid)
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("ingest status = %d: %s", rec.Code, rec.Body.String())
	}
	if got := rec.Header().Get("X-Trace-Id"); got != tid {
		t.Fatalf("X-Trace-Id echoed %q, want %q", got, tid)
	}
	// The flush seals the first dwell (the second sits 15 min past it) and
	// the emitter chain runs inline: warehouse append, analytics fold.
	s.engine.Flush()
	wallMs := float64(time.Since(start)) / float64(time.Millisecond)

	rec2 := httptest.NewRecorder()
	mux.ServeHTTP(rec2, httptest.NewRequest(http.MethodGet, "/debug/traces/"+tid, nil))
	if rec2.Code != http.StatusOK {
		t.Fatalf("GET /debug/traces/%s status = %d: %s", tid, rec2.Code, rec2.Body.String())
	}
	var view trace.TraceView
	if err := json.NewDecoder(rec2.Body).Decode(&view); err != nil {
		t.Fatal(err)
	}
	if view.ID != tid {
		t.Errorf("trace id = %q, want %q", view.ID, tid)
	}
	if !view.Complete {
		t.Errorf("trace not complete: the analytics_fold terminal span never arrived (spans: %+v)", view.Spans)
	}
	if !view.Pinned {
		t.Error("forced trace not pinned")
	}
	if view.Device != "trace-dev" {
		t.Errorf("trace device = %q, want trace-dev", view.Device)
	}

	byName := map[string]trace.SpanView{}
	for _, sp := range view.Spans {
		if _, dup := byName[sp.Name]; !dup {
			byName[sp.Name] = sp
		}
	}
	pipeline := []string{"ingest", "enqueue", "clean", "annotate", "seal", "warehouse_append", "analytics_fold"}
	for _, name := range pipeline {
		if _, ok := byName[name]; !ok {
			t.Fatalf("span %q missing from trace (got %v)", name, spanNames(view.Spans))
		}
		if view.Stages[name] < 0 {
			t.Errorf("stage %q has negative duration %f ms", name, view.Stages[name])
		}
	}

	// Parent links: the request's root span fathers the shard-side stages,
	// and the seal span fathers the emission consumers.
	root := byName["ingest"]
	if root.Parent != "" {
		t.Errorf("ingest span has parent %q, want none", root.Parent)
	}
	for _, name := range []string{"enqueue", "clean", "annotate", "seal"} {
		if p := byName[name].Parent; p != root.ID {
			t.Errorf("%s span parent = %q, want ingest root %q", name, p, root.ID)
		}
	}
	seal := byName["seal"]
	for _, name := range []string{"warehouse_append", "analytics_fold"} {
		if p := byName[name].Parent; p != seal.ID {
			t.Errorf("%s span parent = %q, want seal span %q", name, p, seal.ID)
		}
	}
	if sh := byName["enqueue"].Shard; sh < 0 {
		t.Errorf("enqueue span shard = %d, want a worker shard", sh)
	}

	// Durations must be consistent with the wall clock: the whole trace —
	// and so every per-stage rollup — fits inside the POST..Flush window
	// the test measured around it.
	if view.DurationMs > wallMs {
		t.Errorf("trace duration %.3f ms exceeds measured wall time %.3f ms", view.DurationMs, wallMs)
	}
	for name, ms := range view.Stages {
		if ms > wallMs {
			t.Errorf("stage %s rollup %.3f ms exceeds wall time %.3f ms", name, ms, wallMs)
		}
	}

	// The list view carries the trace (sans spans) and honors filters.
	rec3 := httptest.NewRecorder()
	mux.ServeHTTP(rec3, httptest.NewRequest(http.MethodGet, "/debug/traces?device=trace-dev", nil))
	if rec3.Code != http.StatusOK {
		t.Fatalf("GET /debug/traces status = %d", rec3.Code)
	}
	var list tracesResponse
	if err := json.NewDecoder(rec3.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, tr := range list.Traces {
		if tr.ID == tid {
			found = true
			if len(tr.Spans) != 0 {
				t.Error("list view must omit span trees")
			}
		}
	}
	if !found {
		t.Errorf("trace %s missing from /debug/traces?device=trace-dev", tid)
	}
	if list.Stats.Kept == 0 {
		t.Error("tracer stats report zero kept traces")
	}

	// Device lineage ties the trace to the pipeline state it flowed through.
	rec4 := httptest.NewRecorder()
	mux.ServeHTTP(rec4, httptest.NewRequest(http.MethodGet, "/debug/device/trace-dev", nil))
	if rec4.Code != http.StatusOK {
		t.Fatalf("GET /debug/device/trace-dev status = %d: %s", rec4.Code, rec4.Body.String())
	}
	var lineage deviceLineageView
	if err := json.NewDecoder(rec4.Body).Decode(&lineage); err != nil {
		t.Fatal(err)
	}
	if !lineage.Warehoused {
		t.Error("lineage does not show the sealed trip in the warehouse")
	}
	if lineage.Live == nil {
		t.Error("lineage missing the live session (tail records still open)")
	} else {
		if lineage.Live.LastFlush == nil || lineage.Live.LastFlush.Sealed == 0 {
			t.Errorf("lineage last flush = %+v, want a sealing breakdown", lineage.Live.LastFlush)
		}
	}
	foundTrace := false
	for _, id := range lineage.RecentTraces {
		if id == tid {
			foundTrace = true
		}
	}
	if !foundTrace {
		t.Errorf("lineage recentTraces %v missing %s", lineage.RecentTraces, tid)
	}
}

// TestTraceEndpointsBadInputs pins the debug surface's failure modes.
func TestTraceEndpointsBadInputs(t *testing.T) {
	s := demoServer(t)
	mux := s.mux()
	get := func(path string) *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
		return rec
	}
	if rec := get("/debug/traces/not-hex"); rec.Code != http.StatusBadRequest {
		t.Errorf("malformed trace id status = %d, want 400", rec.Code)
	}
	if rec := get("/debug/traces/ffffffffffffffffffffffffffffffff"); rec.Code != http.StatusNotFound {
		t.Errorf("unknown trace id status = %d, want 404", rec.Code)
	}
	if rec := get("/debug/traces?min_ms=-1"); rec.Code != http.StatusBadRequest {
		t.Errorf("negative min_ms status = %d, want 400", rec.Code)
	}
	if rec := get("/debug/traces?err=maybe"); rec.Code != http.StatusBadRequest {
		t.Errorf("bad err filter status = %d, want 400", rec.Code)
	}
	if rec := get("/debug/traces?limit=0"); rec.Code != http.StatusBadRequest {
		t.Errorf("zero limit status = %d, want 400", rec.Code)
	}
	if rec := get("/debug/device/ghost-device"); rec.Code != http.StatusNotFound {
		t.Errorf("unknown device lineage status = %d, want 404", rec.Code)
	}
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/debug/traces", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("POST /debug/traces status = %d, want 405", rec.Code)
	}
}

func spanNames(spans []trace.SpanView) []string {
	names := make([]string, len(spans))
	for i, sp := range spans {
		names[i] = sp.Name
	}
	return names
}
