// Command trips-server serves the TRIPS Viewer in a web browser — the demo
// deployment of the paper ("The audience can interact with TRIPS in a web
// browser"). It translates a dataset at startup and serves, per device, the
// interactive map view and timeline (Figs. 4–6): floor switching, source
// visibility toggles, and timeline-driven selection. It also runs the
// online translation engine: POST /ingest feeds live positioning records,
// and GET /live/{device} serves the incrementally-built semantics.
//
// Usage:
//
//	trips-server -demo                   # self-generated mall dataset
//	trips-server -dsm mall.json -data raw.csv -events events.json
//	trips-server -addr :8765 -demo
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"html/template"
	"log"
	"net/http"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"trips/internal/config"
	"trips/internal/core"
	"trips/internal/dsm"
	"trips/internal/events"
	"trips/internal/online"
	"trips/internal/position"
	"trips/internal/semantics"
	"trips/internal/simul"
	"trips/internal/viewer"
)

type server struct {
	model   *dsm.Model
	results map[position.DeviceID]core.Result
	truths  map[position.DeviceID]simul.Truth
	devices []position.DeviceID

	engine *online.Engine

	// live accumulates the triplets the online engine has sealed, per
	// device, for /live/{device}.
	liveMu sync.Mutex
	live   map[position.DeviceID]*semantics.Sequence
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("trips-server: ")
	var (
		addr       = flag.String("addr", "127.0.0.1:8765", "listen address")
		demo       = flag.Bool("demo", false, "self-generate a demo mall dataset")
		dsmPath    = flag.String("dsm", "", "DSM JSON path")
		dataPath   = flag.String("data", "", "positioning dataset")
		eventsPath = flag.String("events", "", "Event Editor state")
	)
	flag.Parse()

	s, err := load(*demo, *dsmPath, *dataPath, *eventsPath)
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{
		Addr:              *addr,
		Handler:           s.mux(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() {
		log.Printf("serving %d devices on http://%s/", len(s.devices), *addr)
		errc <- srv.ListenAndServe()
	}()
	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
	}
	log.Print("shutting down")
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		log.Print(err)
	}
	s.engine.Close() // seal and emit every open session
}

// mux wires all routes: the batch Viewer pages plus the online endpoints.
func (s *server) mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/", s.handleIndex)
	mux.HandleFunc("/device/", s.handleDevice)
	mux.HandleFunc("/ingest", s.handleIngest)
	mux.HandleFunc("/live/", s.handleLive)
	mux.HandleFunc("/stats", s.handleStats)
	return mux
}

func load(demo bool, dsmPath, dataPath, eventsPath string) (*server, error) {
	var (
		model  *dsm.Model
		ds     *position.Dataset
		ed     *events.Editor
		truths map[position.DeviceID]simul.Truth
		err    error
	)
	if demo {
		model, err = simul.BuildMall(simul.MallSpec{Floors: 3, ShopsPerFloor: 6})
		if err != nil {
			return nil, err
		}
		sim := simul.NewSim(model, 42)
		start := time.Date(2017, 1, 1, 10, 0, 0, 0, time.UTC)
		ds, truths, err = sim.Population(12, start, 4*time.Hour, simul.DefaultErrorModel())
		if err != nil {
			return nil, err
		}
		ed = events.NewEditor()
		for ev, list := range simul.TrainingSegments(ds, truths, 30) {
			for _, recs := range list {
				if err := ed.AddSegment(events.LabeledSegment{Event: ev, Device: recs[0].Device, Records: recs}); err != nil {
					return nil, err
				}
			}
		}
	} else {
		if dsmPath == "" || dataPath == "" || eventsPath == "" {
			return nil, fmt.Errorf("need -demo or all of -dsm/-data/-events")
		}
		if model, err = dsm.Load(dsmPath); err != nil {
			return nil, err
		}
		if ds, err = position.LoadFile(dataPath); err != nil {
			return nil, err
		}
		if ed, err = events.Load(eventsPath); err != nil {
			return nil, err
		}
	}
	em, err := core.TrainEventModel(ed.TrainingSet(), config.AnnotatorConfig{})
	if err != nil {
		return nil, err
	}
	tr, err := core.NewTranslator(model, em, config.CleanerConfig{}, config.AnnotatorConfig{}, config.ComplementorConfig{})
	if err != nil {
		return nil, err
	}
	s := &server{
		model:   model,
		results: make(map[position.DeviceID]core.Result),
		truths:  truths,
		live:    make(map[position.DeviceID]*semantics.Sequence),
	}
	for _, r := range tr.Translate(ds) {
		s.results[r.Device] = r
		s.devices = append(s.devices, r.Device)
	}
	sort.Slice(s.devices, func(i, j int) bool { return s.devices[i] < s.devices[j] })

	// The online engine serves the live-ingest endpoints with the same
	// trained pipeline.
	s.engine, err = tr.NewOnline(online.Config{Emitter: online.EmitterFunc(s.record)})
	if err != nil {
		return nil, err
	}
	return s, nil
}

// record is the engine's callback sink: it files every sealed triplet
// under its device for /live.
func (s *server) record(e online.Emission) {
	s.liveMu.Lock()
	defer s.liveMu.Unlock()
	seq, ok := s.live[e.Device]
	if !ok {
		seq = semantics.NewSequence(string(e.Device))
		s.live[e.Device] = seq
	}
	seq.Append(e.Triplet)
}

// handleIngest accepts positioning records (CSV rows or JSON lines, the
// same formats the Data Selector reads from files) and feeds them to the
// online engine.
func (s *server) handleIngest(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var (
		ds  *position.Dataset
		err error
	)
	if strings.Contains(r.Header.Get("Content-Type"), "json") {
		ds, err = position.ReadJSONL(r.Body)
	} else {
		ds, err = position.ReadCSV(r.Body)
	}
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	n := 0
	for _, seq := range ds.Sequences() {
		for _, rec := range seq.Records {
			if err := s.engine.Ingest(rec); err != nil {
				http.Error(w, err.Error(), http.StatusServiceUnavailable)
				return
			}
			n++
		}
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]int{"records": n})
}

// liveView is the /live/{device} response: what has sealed plus the open
// window.
type liveView struct {
	Device      position.DeviceID   `json:"device"`
	Sealed      []semantics.Triplet `json:"sealed"`
	Provisional []semantics.Triplet `json:"provisional,omitempty"`
	Watermark   time.Time           `json:"watermark,omitzero"`
	TailRecords int                 `json:"tailRecords"`
}

// handleLive serves the incrementally-built semantics of one device.
func (s *server) handleLive(w http.ResponseWriter, r *http.Request) {
	dev := position.DeviceID(strings.TrimPrefix(r.URL.Path, "/live/"))
	view := liveView{Device: dev}
	// Snapshot first, sealed store second: a triplet sealing between the
	// two reads then shows up in both (and is filtered below) instead of
	// in neither.
	snap, ok := s.engine.Snapshot(dev)
	if ok {
		view.Provisional = snap.Provisional
		view.Watermark = snap.Watermark
		view.TailRecords = snap.TailRecords
	}
	s.liveMu.Lock()
	if seq, ok := s.live[dev]; ok {
		view.Sealed = append(view.Sealed, seq.Triplets...)
	}
	s.liveMu.Unlock()
	if n := len(view.Sealed); n > 0 {
		lastSealed := view.Sealed[n-1].From
		for len(view.Provisional) > 0 && !view.Provisional[0].From.After(lastSealed) {
			view.Provisional = view.Provisional[1:]
		}
	}
	if !ok && view.Sealed == nil {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(view)
}

// handleStats serves the online engine's counters.
func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(s.engine.Stats())
}

var indexTmpl = template.Must(template.New("index").Parse(`<!DOCTYPE html>
<html><head><title>TRIPS</title></head><body>
<h1>TRIPS — Translation Results</h1>
<table border="1" cellpadding="4">
<tr><th>device</th><th>records</th><th>repairs</th><th>triplets</th><th>inferred</th><th>rec/triplet</th></tr>
{{range .Rows}}<tr>
<td><a href="/device/{{.Device}}">{{.Device}}</a></td>
<td>{{.Records}}</td><td>{{.Repairs}}</td><td>{{.Triplets}}</td>
<td>{{.Inferred}}</td><td>{{printf "%.1f" .Ratio}}</td>
</tr>{{end}}
</table></body></html>`))

type indexRow struct {
	Device   position.DeviceID
	Records  int
	Repairs  int
	Triplets int
	Inferred int
	Ratio    float64
}

func (s *server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	var rows []indexRow
	for _, dev := range s.devices {
		res := s.results[dev]
		rows = append(rows, indexRow{dev, res.Raw.Len(), res.Clean.Modified(),
			res.Final.Len(), res.Inserted, res.Conciseness.RecordsPerTriplet})
	}
	if err := indexTmpl.Execute(w, map[string]interface{}{"Rows": rows}); err != nil {
		log.Print(err)
	}
}

var deviceTmpl = template.Must(template.New("device").Parse(`<!DOCTYPE html>
<html><head><title>TRIPS — {{.Device}}</title></head><body>
<p><a href="/">&larr; devices</a></p>
<h1>{{.Device}}</h1>
<p>floors:
{{range .Floors}} <a href="?floor={{.}}&hide={{$.HideParam}}">{{.}}</a>{{end}}
&nbsp; toggle:
{{range .Toggles}} <a href="?floor={{$.Floor}}&hide={{.Param}}">{{.Label}}</a>{{end}}
</p>
<div>{{.MapSVG}}</div>
<h2>Timeline</h2>
<div>{{.TimelineSVG}}</div>
<h2>Mobility semantics</h2>
<pre>{{.SemText}}</pre>
</body></html>`))

func (s *server) handleDevice(w http.ResponseWriter, r *http.Request) {
	dev := position.DeviceID(strings.TrimPrefix(r.URL.Path, "/device/"))
	res, ok := s.results[dev]
	if !ok {
		http.NotFound(w, r)
		return
	}
	v := viewer.NewView(s.model)
	v.SetSource(viewer.SourceRaw, viewer.FromPositioning(viewer.SourceRaw, res.Raw))
	v.SetSource(viewer.SourceCleaned, viewer.FromPositioning(viewer.SourceCleaned, res.Cleaned))
	v.SetSource(viewer.SourceSemantics, viewer.FromSemantics(res.Final))
	if s.truths != nil {
		if truth, ok := s.truths[dev]; ok {
			v.SetSource(viewer.SourceTruth, viewer.FromPositioning(viewer.SourceTruth, truth.Records))
		}
	}

	hidden := map[viewer.SourceKind]bool{}
	hideParam := r.URL.Query().Get("hide")
	for _, h := range strings.Split(hideParam, ",") {
		if h != "" {
			k := viewer.SourceKind(h)
			hidden[k] = true
			if v.Visible(k) {
				v.Toggle(k)
			}
		}
	}
	if f := r.URL.Query().Get("floor"); f != "" {
		if n, err := strconv.Atoi(strings.TrimSuffix(strings.TrimPrefix(f, "B"), "F")); err == nil {
			floor := dsm.FloorID(n)
			if strings.HasPrefix(f, "B") {
				floor = -floor
			}
			_ = v.SwitchFloor(floor)
		}
	}

	// Toggle links flip one source each.
	var toggles []map[string]string
	for _, kind := range v.Sources() {
		next := make([]string, 0, 4)
		for k := range hidden {
			if k != kind {
				next = append(next, string(k))
			}
		}
		if !hidden[kind] {
			next = append(next, string(kind))
		}
		sort.Strings(next)
		label := string(kind)
		if hidden[kind] {
			label = "☐ " + label
		} else {
			label = "☑ " + label
		}
		toggles = append(toggles, map[string]string{
			"Param": strings.Join(next, ","), "Label": label,
		})
	}

	data := map[string]interface{}{
		"Device":      dev,
		"Floors":      s.model.Floors(),
		"Floor":       v.Floor(),
		"HideParam":   hideParam,
		"Toggles":     toggles,
		"MapSVG":      template.HTML(viewer.RenderSVG(v, viewer.RenderOptions{})),
		"TimelineSVG": template.HTML(viewer.RenderTimelineSVG(v, 900)),
		"SemText":     res.Final.String(),
	}
	if err := deviceTmpl.Execute(w, data); err != nil {
		log.Print(err)
	}
}
