// Command trips-server serves the TRIPS Viewer in a web browser — the demo
// deployment of the paper ("The audience can interact with TRIPS in a web
// browser"). It translates a dataset at startup and serves, per device, the
// interactive map view and timeline (Figs. 4–6): floor switching, source
// visibility toggles, and timeline-driven selection. It also runs the
// online translation engine: POST /ingest feeds live positioning records,
// and GET /live/{device} serves the incrementally-built semantics.
//
// Every translated trip — batch results at startup and online-sealed
// triplets as they emit — lands in the trip warehouse, queryable through
// GET /trips, GET /trips/{device}, and GET /regions/{id}/visits with
// device/region/event/since/until/limit/cursor parameters. With -store the
// warehouse persists (segment log + snapshot) and survives restarts.
//
// The same trip stream feeds the incremental analytics views — live
// occupancy, region flows, dwell times, windowed popularity — served under
// GET /analytics/* with an SSE continuous-query endpoint at
// GET /analytics/subscribe (see analytics.go). On startup the views
// bootstrap from the warehouse; with -analytics-store they additionally
// persist as periodic snapshots, so a restart loads the snapshot and
// replays only the warehouse tail instead of re-folding the whole store,
// and POST /analytics/rebuild swaps in freshly bootstrapped views after a
// backfill.
//
// Usage:
//
//	trips-server -demo                   # self-generated mall dataset
//	trips-server -dsm mall.json -data raw.csv -events events.json
//	trips-server -addr :8765 -demo -store warehouse/ -analytics-store views/
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"html/template"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"trips/internal/analytics"
	"trips/internal/config"
	"trips/internal/core"
	"trips/internal/dsm"
	"trips/internal/events"
	"trips/internal/obs"
	"trips/internal/obs/trace"
	"trips/internal/online"
	"trips/internal/position"
	"trips/internal/semantics"
	"trips/internal/simul"
	"trips/internal/storage"
	"trips/internal/tripstore"
	"trips/internal/viewer"
)

type server struct {
	model   *dsm.Model
	results map[position.DeviceID]core.Result
	truths  map[position.DeviceID]simul.Truth
	devices []position.DeviceID

	engine *online.Engine
	wh     *tripstore.Warehouse

	// an is swapped atomically by POST /analytics/rebuild; handlers read
	// it through analytics(), live emissions route through tee so they
	// buffer across a swap instead of folding into a discarded engine.
	an        atomic.Pointer[analytics.Engine]
	tee       *analyticsTee
	rebuildMu sync.Mutex

	// anOpts locates the durable view snapshot (-analytics-store);
	// stopSnap halts the periodic writer and saves the final snapshot.
	// Both are zero when snapshots are disabled.
	anOpts   analytics.StoreOptions
	stopSnap func() error

	// obs is the metrics registry and per-layer instruments behind
	// GET /metrics; anCache amortizes the merged analytics snapshot the
	// gauge bridges read; rebuildWarned latches the rebuild-recommended
	// warning so the watcher logs each episode once.
	obs           *serverObs
	anCache       anStatsCache
	rebuildWarned atomic.Bool
}

// analytics returns the current analytics engine.
func (s *server) analytics() *analytics.Engine { return s.an.Load() }

func main() {
	var (
		addr        = flag.String("addr", "127.0.0.1:8765", "listen address")
		demo        = flag.Bool("demo", false, "self-generate a demo mall dataset")
		dsmPath     = flag.String("dsm", "", "DSM JSON path")
		dataPath    = flag.String("data", "", "positioning dataset")
		eventsPath  = flag.String("events", "", "Event Editor state")
		storeDir    = flag.String("store", "", "warehouse directory (empty = in-memory only)")
		anDir       = flag.String("analytics-store", "", "analytics view-snapshot directory (empty = rebuild views at every boot)")
		ingestQueue = flag.Int("ingest-queue", 0, "online shard inbox capacity in records (0 = engine default); POST /ingest answers 429 when a shard's inbox is full")
		anInterval  = flag.Duration("analytics-snapshot", time.Minute, "interval between periodic analytics snapshots (with -analytics-store)")
		debugAddr   = flag.String("debug-addr", "", "separate listen address for net/http/pprof (empty = disabled)")
		autoRebuild = flag.Bool("auto-rebuild", false, "rebuild the analytics views automatically when they drop a backfill")
		logJSON     = flag.Bool("log-json", false, "emit structured logs as JSON instead of key=value text")
		traceSample = flag.Float64("trace-sample", 0.01, "fraction of requests head-sampled into /debug/traces (0 disables sampling; X-Trace-Id still forces a trace)")
		traceSlow   = flag.Duration("trace-slow", 250*time.Millisecond, "tail-keep threshold: sampled traces at least this slow are pinned against ring eviction")
		traceRing   = flag.Int("trace-ring", 256, "completed traces retained in memory for /debug/traces")
	)
	flag.Parse()

	var handler slog.Handler = slog.NewTextHandler(os.Stderr, nil)
	if *logJSON {
		handler = slog.NewJSONHandler(os.Stderr, nil)
	}
	slog.SetDefault(slog.New(handler))

	s, err := load(loadOptions{
		demo:         *demo,
		dsmPath:      *dsmPath,
		dataPath:     *dataPath,
		eventsPath:   *eventsPath,
		storeDir:     *storeDir,
		analyticsDir: *anDir,
		queueLen:     *ingestQueue,
		trace: trace.Config{
			SampleRate: *traceSample,
			KeepOver:   *traceSlow,
			RingSize:   *traceRing,
		},
	})
	if err != nil {
		slog.Error("startup failed", "error", err)
		os.Exit(1)
	}
	if s.anOpts.Store != nil {
		// The indirection over s.analytics keeps the writer on the live
		// engine across /analytics/rebuild swaps.
		s.stopSnap = analytics.AutoSnapshot(s.analytics, s.anOpts, *anInterval)
	}
	srv := &http.Server{
		Addr:              *addr,
		Handler:           s.mux(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	if *debugAddr != "" {
		go func() {
			slog.Info("pprof listening", "addr", *debugAddr)
			if err := http.ListenAndServe(*debugAddr, debugMux()); err != nil {
				slog.Error("pprof server failed", "error", err)
			}
		}()
	}
	// The watcher warns when the views drop a backfill and — with
	// -auto-rebuild — triggers the rebuild path itself.
	go s.watchRebuild(ctx.Done(), 15*time.Second, *autoRebuild)
	errc := make(chan error, 1)
	go func() {
		slog.Info("serving", "devices", len(s.devices), "addr", *addr)
		errc <- srv.ListenAndServe()
	}()
	select {
	case err := <-errc:
		slog.Error("server failed", "error", err)
		os.Exit(1)
	case <-ctx.Done():
	}
	slog.Info("shutting down")
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		slog.Error("shutdown", "error", err)
	}
	s.engine.Close() // seal and emit every open session (flushes the warehouse log)
	if s.stopSnap != nil {
		// Final analytics snapshot, after the engine close so the views it
		// persists cover the shutdown-sealed triplets, before the warehouse
		// close so the Sync flush still works.
		if err := s.stopSnap(); err != nil {
			slog.Error("final analytics snapshot", "error", err)
		}
	}
	if err := s.wh.Close(); err != nil {
		slog.Error("warehouse close", "error", err)
	}
}

// mux wires all routes — the batch Viewer pages, the online endpoints, and
// the observability endpoints — behind the request middleware that feeds
// the HTTP metrics and the structured access log.
func (s *server) mux() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", s.handleIndex)
	mux.HandleFunc("/device/", s.handleDevice)
	mux.HandleFunc("/ingest", s.handleIngest)
	mux.HandleFunc("/live/", s.handleLive)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/trips", s.handleTrips)
	mux.HandleFunc("/trips/", s.handleDeviceTrips)
	mux.HandleFunc("/regions/", s.handleRegionVisits)
	mux.HandleFunc("/warehouse", s.handleWarehouseStats)
	mux.HandleFunc("/analytics", s.handleAnalyticsStats)
	mux.HandleFunc("/analytics/rebuild", s.handleRebuild)
	mux.HandleFunc("/analytics/occupancy", s.handleOccupancy)
	mux.HandleFunc("/analytics/flows", s.handleFlows)
	mux.HandleFunc("/analytics/dwell/", s.handleDwell)
	mux.HandleFunc("/analytics/topk", s.handleTopK)
	mux.HandleFunc("/analytics/subscribe", s.handleSubscribe)
	mux.HandleFunc("/debug/traces", s.handleTraces)
	mux.HandleFunc("/debug/traces/", s.handleTraceByID)
	mux.HandleFunc("/debug/device/", s.handleDeviceLineage)
	mux.Handle("/metrics", s.obs.reg.Handler())
	mux.Handle("/healthz", obs.HealthHandler())
	mux.Handle("/readyz", obs.ReadyHandler(s.obs.ready.Load))
	return obs.Middleware(s.obs.http, slog.Default(), s.obs.tracer, mux)
}

// loadOptions configures server assembly. The struct form (rather than
// positional arguments) exists because the ingest path is now tunable —
// queueLen bounds admission — and tests need to reach the online engine's
// configuration without threading every knob through a widening signature.
type loadOptions struct {
	demo         bool
	dsmPath      string
	dataPath     string
	eventsPath   string
	storeDir     string
	analyticsDir string
	// queueLen is the online shard inbox capacity (0 = engine default).
	// When a shard's inbox fills, POST /ingest rejects with 429 instead of
	// queueing unboundedly.
	queueLen int
	// trace configures the end-to-end tracer (-trace-sample / -trace-slow /
	// -trace-ring); the zero value keeps tracing assembled but samples
	// nothing unless a request forces itself with X-Trace-Id.
	trace trace.Config
	// tuneOnline, when set, adjusts the assembled online.Config just before
	// the engine starts — a test seam for wrapping the emitter or shrinking
	// flush windows; production callers leave it nil.
	tuneOnline func(online.Config) online.Config
}

func load(opts loadOptions) (*server, error) {
	demo := opts.demo
	dsmPath, dataPath, eventsPath := opts.dsmPath, opts.dataPath, opts.eventsPath
	storeDir, analyticsDir := opts.storeDir, opts.analyticsDir
	var (
		model  *dsm.Model
		ds     *position.Dataset
		ed     *events.Editor
		truths map[position.DeviceID]simul.Truth
		err    error
	)
	if demo {
		model, err = simul.BuildMall(simul.MallSpec{Floors: 3, ShopsPerFloor: 6})
		if err != nil {
			return nil, err
		}
		sim := simul.NewSim(model, 42)
		start := time.Date(2017, 1, 1, 10, 0, 0, 0, time.UTC)
		ds, truths, err = sim.Population(12, start, 4*time.Hour, simul.DefaultErrorModel())
		if err != nil {
			return nil, err
		}
		ed = events.NewEditor()
		for _, es := range simul.TrainingSegments(ds, truths, 30) {
			for _, recs := range es.Segments {
				if err := ed.AddSegment(events.LabeledSegment{Event: es.Event, Device: recs[0].Device, Records: recs}); err != nil {
					return nil, err
				}
			}
		}
	} else {
		if dsmPath == "" || dataPath == "" || eventsPath == "" {
			return nil, fmt.Errorf("need -demo or all of -dsm/-data/-events")
		}
		if model, err = dsm.Load(dsmPath); err != nil {
			return nil, err
		}
		if ds, err = position.LoadFile(dataPath); err != nil {
			return nil, err
		}
		if ed, err = events.Load(eventsPath); err != nil {
			return nil, err
		}
	}
	em, err := core.TrainEventModel(ed.TrainingSet(), config.AnnotatorConfig{})
	if err != nil {
		return nil, err
	}
	tr, err := core.NewTranslator(model, em, config.CleanerConfig{}, config.AnnotatorConfig{}, config.ComplementorConfig{})
	if err != nil {
		return nil, err
	}
	// The observability registry exists before the subsystems so their
	// constructors can take the per-layer instrument bundles.
	so := newServerObs(opts.trace)

	// The warehouse stores every translated trip behind both engines;
	// with -store it persists across restarts (segment log + snapshot).
	var wh *tripstore.Warehouse
	if storeDir != "" {
		st, err := storage.Open(storeDir)
		if err != nil {
			return nil, err
		}
		if wh, err = tripstore.New(tripstore.Options{Log: &tripstore.LogOptions{Store: st}, Metrics: so.store, Tracer: so.tracer}); err != nil {
			return nil, err
		}
	} else if wh, err = tripstore.New(tripstore.Options{Metrics: so.store, Tracer: so.tracer}); err != nil {
		return nil, err
	}

	s := &server{
		model:   model,
		results: make(map[position.DeviceID]core.Result),
		truths:  truths,
		wh:      wh,
		obs:     so,
	}
	results, err := tr.TranslateTo(ds, wh)
	if err != nil {
		return nil, err
	}
	for _, r := range results {
		s.results[r.Device] = r
		s.devices = append(s.devices, r.Device)
	}
	sort.Slice(s.devices, func(i, j int) bool { return s.devices[i] < s.devices[j] })

	// The analytics engine bootstraps from the warehouse — which at this
	// point holds the startup batch translation plus anything a previous
	// -store run persisted — so its views match what live ingestion of the
	// same trips would have built. With -analytics-store, the persisted
	// view snapshot loads first and the bootstrap replays only the
	// warehouse tail past its fold frontiers: boot cost O(tail), not
	// O(stored trips).
	an := analytics.New(analytics.Config{Metrics: so.analytics, Tracer: so.tracer})
	if analyticsDir != "" {
		if storeDir == "" {
			slog.Warn("-analytics-store without -store: snapshots may cover trips a restart cannot replay")
		}
		anStore, err := storage.Open(analyticsDir)
		if err != nil {
			return nil, err
		}
		s.anOpts = analytics.StoreOptions{Store: anStore, Sync: wh.Flush}
		if ok, err := an.LoadSnapshot(analytics.StoreOptions{Store: anStore}); err != nil {
			if !errors.Is(err, analytics.ErrIncompatibleSnapshot) {
				return nil, err
			}
			slog.Warn("ignoring analytics snapshot", "error", err)
		} else if ok {
			slog.Info("analytics views loaded from snapshot; replaying warehouse tail")
		}
	}
	if err := an.Bootstrap(wh); err != nil {
		return nil, err
	}
	s.an.Store(an)
	s.tee = &analyticsTee{s: s}

	// The online engine serves the live-ingest endpoints with the same
	// trained pipeline; the warehouse is its sink and the single sealed
	// store — /live reads sealed triplets back from it, so the server
	// keeps no second per-device copy that idle-session eviction can't
	// reclaim (MAC-randomized device churn would grow it forever). Sealed
	// emissions tee through the analytics views on their way in; the tee
	// is an indirection over s.an so a rebuild can swap engines under it.
	onlineCfg := online.Config{
		Emitter:  wh.Emitter(s.tee),
		Metrics:  so.online,
		Tracer:   so.tracer,
		QueueLen: opts.queueLen,
	}
	if opts.tuneOnline != nil {
		onlineCfg = opts.tuneOnline(onlineCfg)
	}
	s.engine, err = tr.NewOnline(onlineCfg)
	if err != nil {
		return nil, err
	}
	// Everything the query surface depends on exists now: dataset
	// translated, warehouse replayed, views bootstrapped, engines running.
	// Register the pull-time metric bridges over them and open /readyz.
	s.registerBridges()
	so.ready.Store(true)
	return s, nil
}

// ingestRetryAfter is the Retry-After hint on 429 responses. One second is
// the engine's flush cadence: by the time a well-behaved client retries,
// the backed-up shard has had at least one drain pass.
const ingestRetryAfter = "1"

// handleIngest accepts positioning records (CSV rows or JSON lines, the
// same formats the Data Selector reads from files) and streams them into
// the online engine as they parse: O(1) memory per request instead of
// materializing the dataset, so the 64MB body cap bounds the wire size,
// not the server's heap. Error accounting stays per-record: a malformed
// row stops the stream with its row number, and the response reports how
// many records had already been ingested by then.
//
// Admission is bounded: records route through TryIngest, so a full shard
// inbox fails the request with 429 + Retry-After instead of parking it on
// the channel. Under overload the old blocking path accumulated one goroutine
// + request body per stalled POST with no signal to the client — now the
// client owns the retry (closed-loop senders back off, records already
// streamed stay ingested and the response says how many).
func (s *server) handleIngest(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	//trips:allow wallclock: ingest request latency metric, not event-time logic
	start := time.Now()
	// The middleware made the sampling decision; the ingest root span covers
	// this request's parse+route work, and its context rides on every record
	// so the engine can adopt the trace. Both are inert (zero context, no
	// buffer writes) when the request is unsampled.
	rootSp := s.obs.tracer.Start(trace.FromContext(r.Context()), "ingest")
	recCtx := rootSp.Ctx()
	body := http.MaxBytesReader(w, r.Body, 64<<20)
	// The per-record closure stays bare: request-level accounting happens
	// once below, keeping the record route at zero added allocations (the
	// engine's AllocsPerRun test guards the rest of the path).
	ingest := func(rec position.Record) error { return s.engine.TryIngestTraced(rec, recCtx) }
	var (
		n   int
		err error
	)
	if strings.Contains(r.Header.Get("Content-Type"), "json") {
		n, err = position.StreamJSONL(body, ingest)
	} else {
		n, err = position.StreamCSV(body, ingest)
	}
	s.obs.ingestRecords.Add(int64(n))
	if recCtx.Sampled() {
		//trips:allow wallclock: ingest request latency metric, not event-time logic
		s.obs.ingestSeconds.ObserveTraced(time.Since(start), recCtx.Trace.String())
	} else {
		s.obs.ingestSeconds.ObserveSince(start)
	}
	if err != nil {
		rootSp.SetErr()
		rootSp.End()
		if errors.Is(err, online.ErrBacklogged) {
			// Backpressure, not failure: don't count it as an ingest error
			// (the trace still errors — a 429 is exactly what tail sampling
			// should keep).
			s.obs.ingestRejected.Inc()
			w.Header().Set("Retry-After", ingestRetryAfter)
			http.Error(w, fmt.Sprintf("ingest backlogged (%d records ingested before the push-back); retry after %ss", n, ingestRetryAfter),
				http.StatusTooManyRequests)
			return
		}
		s.obs.ingestErrors.Inc()
		code := http.StatusBadRequest
		if errors.Is(err, online.ErrClosed) {
			code = http.StatusServiceUnavailable
		}
		http.Error(w, fmt.Sprintf("%v (%d records ingested before the error)", err, n), code)
		return
	}
	rootSp.End()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]int{"records": n})
}

// liveView is the /live/{device} response: what has sealed plus the open
// window.
type liveView struct {
	Device      position.DeviceID   `json:"device"`
	Sealed      []semantics.Triplet `json:"sealed"`
	Provisional []semantics.Triplet `json:"provisional,omitempty"`
	Watermark   time.Time           `json:"watermark,omitzero"`
	TailRecords int                 `json:"tailRecords"`
}

// handleLive serves the incrementally-built semantics of one device:
// sealed triplets come back from the warehouse (the engine's sink), the
// open window from the engine snapshot.
func (s *server) handleLive(w http.ResponseWriter, r *http.Request) {
	dev := position.DeviceID(strings.TrimPrefix(r.URL.Path, "/live/"))
	view := liveView{Device: dev}
	// Snapshot first, sealed store second: a triplet sealing between the
	// two reads then shows up in both (and is filtered below) instead of
	// in neither.
	snap, ok := s.engine.Snapshot(dev)
	if ok {
		view.Provisional = snap.Provisional
		view.Watermark = snap.Watermark
		view.TailRecords = snap.TailRecords
	}
	page, err := s.wh.Query(tripstore.QuerySpec{Device: dev})
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	for _, tr := range page.Trips {
		view.Sealed = append(view.Sealed, tr.Triplet)
	}
	if n := len(view.Sealed); n > 0 {
		lastSealed := view.Sealed[n-1].From
		for len(view.Provisional) > 0 && !view.Provisional[0].From.After(lastSealed) {
			view.Provisional = view.Provisional[1:]
		}
	}
	if !ok && view.Sealed == nil {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(view)
}

// parseTripQuery reads the warehouse query parameters shared by the
// /trips and /regions endpoints: device, region (semantic tag), regionId,
// event, since/until (RFC3339 or unix milliseconds), inferred,
// limit (default 100, capped at 1000), cursor.
func parseTripQuery(r *http.Request) (tripstore.QuerySpec, error) {
	q := r.URL.Query()
	spec := tripstore.QuerySpec{
		Device:   position.DeviceID(q.Get("device")),
		Region:   q.Get("region"),
		RegionID: dsm.RegionID(q.Get("regionId")),
		Event:    semantics.Event(q.Get("event")),
		Cursor:   q.Get("cursor"),
		Limit:    100,
	}
	if v := q.Get("since"); v != "" {
		t, err := position.ParseTime(v)
		if err != nil {
			return spec, fmt.Errorf("since: %w", err)
		}
		spec.Since = t
	}
	if v := q.Get("until"); v != "" {
		t, err := position.ParseTime(v)
		if err != nil {
			return spec, fmt.Errorf("until: %w", err)
		}
		spec.Until = t
	}
	if v := q.Get("inferred"); v != "" {
		b, err := strconv.ParseBool(v)
		if err != nil {
			return spec, fmt.Errorf("inferred: %w", err)
		}
		spec.Inferred = &b
	}
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			return spec, fmt.Errorf("limit: bad value %q", v)
		}
		spec.Limit = n
	}
	if spec.Limit > 1000 {
		spec.Limit = 1000
	}
	return spec, nil
}

func (s *server) serveTripQuery(w http.ResponseWriter, r *http.Request, spec tripstore.QuerySpec) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	page, err := s.wh.Query(spec)
	if err != nil {
		// A closed warehouse is a server-side condition (shutdown race),
		// not a malformed request; only cursor errors are the client's.
		code := http.StatusBadRequest
		if errors.Is(err, tripstore.ErrClosed) {
			code = http.StatusServiceUnavailable
		}
		http.Error(w, err.Error(), code)
		return
	}
	if page.Trips == nil {
		page.Trips = []tripstore.Trip{} // JSON [] rather than null
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(page)
}

// handleTrips serves GET /trips: the warehouse query endpoint.
func (s *server) handleTrips(w http.ResponseWriter, r *http.Request) {
	spec, err := parseTripQuery(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	s.serveTripQuery(w, r, spec)
}

// handleDeviceTrips serves GET /trips/{device}: one device's warehoused
// timeline, same filter parameters as /trips.
func (s *server) handleDeviceTrips(w http.ResponseWriter, r *http.Request) {
	dev := position.DeviceID(strings.TrimPrefix(r.URL.Path, "/trips/"))
	if dev == "" || strings.Contains(string(dev), "/") {
		http.NotFound(w, r)
		return
	}
	spec, err := parseTripQuery(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	spec.Device = dev
	s.serveTripQuery(w, r, spec)
}

// handleRegionVisits serves GET /regions/{id}/visits: every trip that
// touched the region, by region ID with a semantic-tag fallback.
func (s *server) handleRegionVisits(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/regions/")
	id, action, ok := strings.Cut(rest, "/")
	if !ok || id == "" || action != "visits" {
		http.NotFound(w, r)
		return
	}
	spec, err := parseTripQuery(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	// A ?device= filter narrows the visits; only the region predicates
	// are owned by the path.
	spec.RegionID, spec.Region = "", ""
	// The path segment resolves against the DSM: a region ID first, a
	// semantic tag second, so /regions/Nike/visits works as naturally as
	// /regions/shop-1F-3/visits. Resolution is model-driven (not
	// data-driven), so pagination cursors stay on one plan.
	switch {
	case s.model.Region(dsm.RegionID(id)) != nil:
		spec.RegionID = dsm.RegionID(id)
	case s.model.RegionByTag(id) != nil:
		spec.Region = id
	default:
		http.NotFound(w, r)
		return
	}
	s.serveTripQuery(w, r, spec)
}

// handleWarehouseStats serves the warehouse counters.
func (s *server) handleWarehouseStats(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(s.wh.Stats())
}

// handleStats serves the online engine's counters.
func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(s.engine.Stats())
}

var indexTmpl = template.Must(template.New("index").Parse(`<!DOCTYPE html>
<html><head><title>TRIPS</title></head><body>
<h1>TRIPS — Translation Results</h1>
<table border="1" cellpadding="4">
<tr><th>device</th><th>records</th><th>repairs</th><th>triplets</th><th>inferred</th><th>rec/triplet</th></tr>
{{range .Rows}}<tr>
<td><a href="/device/{{.Device}}">{{.Device}}</a></td>
<td>{{.Records}}</td><td>{{.Repairs}}</td><td>{{.Triplets}}</td>
<td>{{.Inferred}}</td><td>{{printf "%.1f" .Ratio}}</td>
</tr>{{end}}
</table></body></html>`))

type indexRow struct {
	Device   position.DeviceID
	Records  int
	Repairs  int
	Triplets int
	Inferred int
	Ratio    float64
}

func (s *server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	var rows []indexRow
	for _, dev := range s.devices {
		res := s.results[dev]
		rows = append(rows, indexRow{dev, res.Raw.Len(), res.Clean.Modified(),
			res.Final.Len(), res.Inserted, res.Conciseness.RecordsPerTriplet})
	}
	if err := indexTmpl.Execute(w, map[string]interface{}{"Rows": rows}); err != nil {
		slog.Error("render index", "error", err)
	}
}

var deviceTmpl = template.Must(template.New("device").Parse(`<!DOCTYPE html>
<html><head><title>TRIPS — {{.Device}}</title></head><body>
<p><a href="/">&larr; devices</a></p>
<h1>{{.Device}}</h1>
<p>floors:
{{range .Floors}} <a href="?floor={{.}}&hide={{$.HideParam}}">{{.}}</a>{{end}}
&nbsp; toggle:
{{range .Toggles}} <a href="?floor={{$.Floor}}&hide={{.Param}}">{{.Label}}</a>{{end}}
</p>
<div>{{.MapSVG}}</div>
<h2>Timeline</h2>
<div>{{.TimelineSVG}}</div>
<h2>Mobility semantics</h2>
<pre>{{.SemText}}</pre>
</body></html>`))

func (s *server) handleDevice(w http.ResponseWriter, r *http.Request) {
	dev := position.DeviceID(strings.TrimPrefix(r.URL.Path, "/device/"))
	res, ok := s.results[dev]
	if !ok {
		http.NotFound(w, r)
		return
	}
	v := viewer.NewView(s.model)
	v.SetSource(viewer.SourceRaw, viewer.FromPositioning(viewer.SourceRaw, res.Raw))
	v.SetSource(viewer.SourceCleaned, viewer.FromPositioning(viewer.SourceCleaned, res.Cleaned))
	v.SetSource(viewer.SourceSemantics, viewer.FromSemantics(res.Final))
	if s.truths != nil {
		if truth, ok := s.truths[dev]; ok {
			v.SetSource(viewer.SourceTruth, viewer.FromPositioning(viewer.SourceTruth, truth.Records))
		}
	}

	hidden := map[viewer.SourceKind]bool{}
	hideParam := r.URL.Query().Get("hide")
	for _, h := range strings.Split(hideParam, ",") {
		if h != "" {
			k := viewer.SourceKind(h)
			hidden[k] = true
			if v.Visible(k) {
				v.Toggle(k)
			}
		}
	}
	if f := r.URL.Query().Get("floor"); f != "" {
		if n, err := strconv.Atoi(strings.TrimSuffix(strings.TrimPrefix(f, "B"), "F")); err == nil {
			floor := dsm.FloorID(n)
			if strings.HasPrefix(f, "B") {
				floor = -floor
			}
			_ = v.SwitchFloor(floor)
		}
	}

	// Toggle links flip one source each.
	var toggles []map[string]string
	for _, kind := range v.Sources() {
		next := make([]string, 0, 4)
		//trips:commutative key collection; iteration order is erased by the sort below
		for k := range hidden {
			if k != kind {
				next = append(next, string(k))
			}
		}
		if !hidden[kind] {
			next = append(next, string(kind))
		}
		sort.Strings(next)
		label := string(kind)
		if hidden[kind] {
			label = "☐ " + label
		} else {
			label = "☑ " + label
		}
		toggles = append(toggles, map[string]string{
			"Param": strings.Join(next, ","), "Label": label,
		})
	}

	data := map[string]interface{}{
		"Device":      dev,
		"Floors":      s.model.Floors(),
		"Floor":       v.Floor(),
		"HideParam":   hideParam,
		"Toggles":     toggles,
		"MapSVG":      template.HTML(viewer.RenderSVG(v, viewer.RenderOptions{})),
		"TimelineSVG": template.HTML(viewer.RenderTimelineSVG(v, 900)),
		"SemText":     res.Final.String(),
	}
	if err := deviceTmpl.Execute(w, data); err != nil {
		slog.Error("render device view", "error", err, "device", dev)
	}
}
