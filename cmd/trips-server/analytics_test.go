package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"trips/internal/analytics"
	"trips/internal/dsm"
	"trips/internal/online"
	"trips/internal/position"
	"trips/internal/semantics"
)

func TestAnalyticsEndpoints(t *testing.T) {
	s := demoServer(t)
	mux := s.mux()
	get := func(t *testing.T, path string, wantCode int, into any) {
		t.Helper()
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
		if rec.Code != wantCode {
			t.Fatalf("GET %s status = %d, want %d: %s", path, rec.Code, wantCode, rec.Body.String())
		}
		if into != nil && wantCode == http.StatusOK {
			if err := json.NewDecoder(rec.Body).Decode(into); err != nil {
				t.Fatalf("GET %s: %v", path, err)
			}
		}
	}

	// The startup batch translation bootstrapped the views: occupancy rows
	// exist and their visit total matches the warehouse.
	var occ occupancyView
	get(t, "/analytics/occupancy", http.StatusOK, &occ)
	if len(occ.Regions) == 0 || occ.Watermark.IsZero() {
		t.Fatalf("empty occupancy after bootstrap: %+v", occ)
	}
	var visits int64
	for _, r := range occ.Regions {
		visits += r.Visits
	}
	var st analytics.Stats
	get(t, "/analytics", http.StatusOK, &st)
	if st.Trips == 0 || st.Trips != int64(s.wh.Stats().Trips) {
		t.Errorf("analytics folded %d trips, warehouse has %d", st.Trips, s.wh.Stats().Trips)
	}
	if visits+st.Regionless != st.Trips {
		t.Errorf("visits %d + regionless %d ≠ trips %d", visits, st.Regionless, st.Trips)
	}

	// Flows: shoppers move between regions, so the demo must have some.
	var flows []analytics.Flow
	get(t, "/analytics/flows", http.StatusOK, &flows)
	if len(flows) == 0 {
		t.Fatal("no flows in the demo corpus")
	}
	var filtered []analytics.Flow
	get(t, "/analytics/flows?region="+url.QueryEscape(string(flows[0].From))+"&limit=5", http.StatusOK, &filtered)
	if len(filtered) == 0 || len(filtered) > 5 {
		t.Errorf("filtered flows = %d rows", len(filtered))
	}
	for _, f := range filtered {
		if f.From != flows[0].From && f.To != flows[0].From {
			t.Errorf("flow %v does not touch %s", f, flows[0].From)
		}
	}

	// Dwell by region ID and by semantic tag.
	ref := occ.Regions[0]
	var dwell analytics.DwellStats
	get(t, "/analytics/dwell/"+url.PathEscape(string(ref.RegionID)), http.StatusOK, &dwell)
	if dwell.Count == 0 || dwell.P50 <= 0 || dwell.P50 > dwell.P99 {
		t.Errorf("dwell by ID = %+v", dwell)
	}
	if ref.Region != "" {
		var byTag analytics.DwellStats
		get(t, "/analytics/dwell/"+url.PathEscape(ref.Region), http.StatusOK, &byTag)
		if byTag.RegionID != ref.RegionID {
			t.Errorf("dwell by tag resolved to %s, want %s", byTag.RegionID, ref.RegionID)
		}
	}

	// Top-k: full window covers the corpus; a k cap truncates.
	var top []analytics.RegionCount
	get(t, "/analytics/topk?k=3", http.StatusOK, &top)
	if len(top) == 0 || len(top) > 3 {
		t.Errorf("topk = %+v", top)
	}
	var windowed []analytics.RegionCount
	get(t, "/analytics/topk?window=1m", http.StatusOK, &windowed)
	var whole []analytics.RegionCount
	get(t, "/analytics/topk?k=1000", http.StatusOK, &whole)
	sum := func(rs []analytics.RegionCount) (n int64) {
		for _, r := range rs {
			n += r.Count
		}
		return
	}
	if sum(windowed) >= sum(whole) {
		t.Errorf("1-minute window counted %d of %d total visits — window not applied",
			sum(windowed), sum(whole))
	}

	// Bad inputs 400, unknown regions 404.
	get(t, "/analytics/occupancy?activeWithin=yesterday", http.StatusBadRequest, nil)
	get(t, "/analytics/flows?limit=0", http.StatusBadRequest, nil)
	get(t, "/analytics/flows?region=no-such-region", http.StatusNotFound, nil)
	get(t, "/analytics/topk?k=-1", http.StatusBadRequest, nil)
	get(t, "/analytics/topk?window=0s", http.StatusBadRequest, nil)
	get(t, "/analytics/dwell/no-such-region", http.StatusNotFound, nil)
	get(t, "/analytics/dwell/", http.StatusNotFound, nil)
}

// sseClient reads one SSE stream, decoding data frames into deltas until
// the context ends, the stream closes, or maxDeltas arrive.
func sseClient(ctx context.Context, url string, maxDeltas int) (deltas []analytics.Delta, evicted bool, err error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, false, err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, false, fmt.Errorf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		return nil, false, fmt.Errorf("content-type %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "event: evicted":
			evicted = true
		case strings.HasPrefix(line, "data: "):
			var d analytics.Delta
			if err := json.Unmarshal([]byte(line[len("data: "):]), &d); err != nil {
				return deltas, evicted, fmt.Errorf("bad delta %q: %w", line, err)
			}
			deltas = append(deltas, d)
			if maxDeltas > 0 && len(deltas) >= maxDeltas {
				return deltas, evicted, nil
			}
		}
	}
	// A canceled context or server-side close both end the scan; neither
	// is an error for the churn tests.
	return deltas, evicted, nil
}

// TestSSESubscribersUnderIngest runs many concurrent SSE subscribers over a
// real HTTP server while records stream through POST /ingest, with clients
// churning on and off. Under -race this is the end-to-end concurrency test
// of the subscribe endpoint.
func TestSSESubscribersUnderIngest(t *testing.T) {
	s := demoServer(t)
	srv := httptest.NewServer(s.mux())
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()

	// Steady readers: each must observe real deltas.
	const readers = 6
	var wg sync.WaitGroup
	results := make([][]analytics.Delta, readers)
	errs := make([]error, readers)
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], _, errs[i] = sseClient(ctx, srv.URL+"/analytics/subscribe", 3)
		}(i)
	}

	// Churners: connect, maybe read one delta, disconnect — while the
	// ingest below is publishing.
	var churn sync.WaitGroup
	var churned atomic.Int64
	for i := 0; i < 8; i++ {
		churn.Add(1)
		go func(i int) {
			defer churn.Done()
			for j := 0; j < 5; j++ {
				cctx, ccancel := context.WithTimeout(ctx, time.Duration(5+i)*time.Millisecond)
				sseClient(cctx, srv.URL+"/analytics/subscribe", 1)
				ccancel()
				churned.Add(1)
			}
		}(i)
	}

	// Drive live trips through the full pipeline: replay a demo device's
	// records as fresh devices until every steady reader saw its deltas.
	src := s.results[s.devices[0]].Raw
	for round := 0; ; round++ {
		ds := position.NewDataset()
		for _, r := range src.Records {
			r.Device = position.DeviceID(fmt.Sprintf("sse-%d", round))
			r.At = r.At.Add(time.Duration(round) * 24 * time.Hour)
			ds.Add(r)
		}
		var body bytes.Buffer
		if err := position.WriteCSV(&body, ds); err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(srv.URL+"/ingest", "text/csv", &body)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		// Sealing needs the engine's timer or more watermark progress;
		// nudge with a flush and check whether the readers are done.
		s.engine.Flush()
		done := make(chan struct{})
		go func() { wg.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(200 * time.Millisecond):
			if ctx.Err() != nil {
				t.Fatal("timed out waiting for SSE readers")
			}
			continue
		}
		break
	}
	churn.Wait()

	for i := 0; i < readers; i++ {
		if errs[i] != nil {
			t.Errorf("reader %d: %v", i, errs[i])
		}
		if len(results[i]) == 0 {
			t.Errorf("reader %d saw no deltas", i)
		}
		for _, d := range results[i] {
			if d.Device == "" || d.From.IsZero() {
				t.Errorf("reader %d got malformed delta %+v", i, d)
			}
		}
	}
	if churned.Load() != 40 {
		t.Errorf("churned %d connections, want 40", churned.Load())
	}

	// Every subscriber must be detached once its connection is gone.
	cancel()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if st := s.analytics().Stats(); st.Subscribers == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("subscribers leaked: %+v", s.analytics().Stats())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestSSESlowConsumerEvicted connects a subscriber that never reads and
// floods the views until the hub evicts it — the server-side protection
// against a stalled client pinning ingest. The subscriber buffer is shrunk
// so the kernel's socket buffering doesn't mask the eviction.
func TestSSESlowConsumerEvicted(t *testing.T) {
	s := demoServer(t)
	// Replace the (empty-view) analytics engine before serving; only this
	// test's direct Ingest calls feed it.
	s.an.Store(analytics.New(analytics.Config{SubscriberBuffer: 2}))
	srv := httptest.NewServer(s.mux())
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, srv.URL+"/analytics/subscribe", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	an := s.analytics()
	// Wait for the handler to attach before flooding.
	deadline := time.Now().Add(5 * time.Second)
	for an.Stats().Subscribers == 0 {
		if time.Now().After(deadline) {
			t.Fatal("subscriber never attached")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Never read resp.Body: the handler keeps writing until the socket
	// buffers fill and it blocks, the hub buffer fills behind it, and the
	// hub evicts. Deltas flow directly into the views.
	at := time.Date(2017, 1, 2, 10, 0, 0, 0, time.UTC)
	for i := 0; i < 500_000 && s.analytics().Stats().Evicted == 0; i++ {
		an.Ingest("flood", semantics.Triplet{
			Event:    semantics.EventStay,
			Region:   "Flood",
			RegionID: dsm.RegionID("flood-region"),
			From:     at,
			To:       at.Add(30 * time.Second),
		})
		at = at.Add(time.Minute)
	}
	st := s.analytics().Stats()
	if st.Evicted == 0 {
		t.Fatal("slow consumer never evicted")
	}
	if st.Subscribers != 0 {
		t.Errorf("evicted subscriber still attached: %+v", st)
	}

	// The stream must terminate for the client once it finally reads.
	got, _ := io.ReadAll(resp.Body)
	if !bytes.Contains(got, []byte("event: evicted")) && len(got) == 0 {
		t.Error("evicted stream delivered nothing")
	}
}

// TestAnalyticsRebuildEndpoint swaps in a freshly bootstrapped engine via
// POST /analytics/rebuild and proves live subscribers and the emitter tee
// survive the swap.
func TestAnalyticsRebuildEndpoint(t *testing.T) {
	s := demoServer(t)
	mux := s.mux()

	// GET is refused.
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/analytics/rebuild", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET status = %d", rec.Code)
	}

	old := s.analytics()
	before := old.Stats()
	sub := old.Subscribe(nil)
	defer sub.Close()

	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/analytics/rebuild", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("POST status = %d: %s", rec.Code, rec.Body.String())
	}
	var after analytics.Stats
	if err := json.NewDecoder(rec.Body).Decode(&after); err != nil {
		t.Fatal(err)
	}
	if s.analytics() == old {
		t.Fatal("rebuild did not swap the engine")
	}
	if after.Trips != before.Trips || after.Trips != int64(s.wh.Stats().Trips) {
		t.Errorf("rebuilt engine folded %d trips, want %d (warehouse %d)",
			after.Trips, before.Trips, s.wh.Stats().Trips)
	}

	// The tee now feeds the fresh engine, and the subscriber (attached to
	// the old engine's hub) still receives its deltas.
	tr := semantics.Triplet{
		Event:    semantics.EventStay,
		Region:   "Rebuilt",
		RegionID: dsm.RegionID("rebuilt-region"),
		From:     time.Date(2030, 1, 1, 10, 0, 0, 0, time.UTC),
		To:       time.Date(2030, 1, 1, 10, 1, 0, 0, time.UTC),
	}
	s.tee.Emit(online.Emission{Device: "post-rebuild", Seq: 0, Triplet: tr})
	select {
	case d := <-sub.C():
		if d.RegionID != "rebuilt-region" {
			t.Errorf("post-rebuild delta = %+v", d)
		}
	case <-time.After(2 * time.Second):
		t.Error("subscriber lost across rebuild")
	}
	if got := s.analytics().Stats().Trips; got != after.Trips+1 {
		t.Errorf("tee fold after rebuild: trips = %d, want %d", got, after.Trips+1)
	}
}

// TestAnalyticsSnapshotAcrossRestart boots with -store and
// -analytics-store, shuts down (final snapshot), and reboots: the views
// come back identical, loaded from the snapshot rather than a full
// re-bootstrap.
func TestAnalyticsSnapshotAcrossRestart(t *testing.T) {
	storeDir, anDir := t.TempDir(), t.TempDir()
	s1, err := load(loadOptions{demo: true, storeDir: storeDir, analyticsDir: anDir})
	if err != nil {
		t.Fatal(err)
	}
	// Periodic writer idles at this interval; stopSnap writes the final cut.
	s1.stopSnap = analytics.AutoSnapshot(s1.analytics, s1.anOpts, time.Hour)
	first := s1.analytics().Snapshot()
	s1.engine.Close()
	if err := s1.stopSnap(); err != nil {
		t.Fatal(err)
	}
	if err := s1.wh.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := load(loadOptions{demo: true, storeDir: storeDir, analyticsDir: anDir})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s2.engine.Close(); s2.wh.Close() })
	second := s2.analytics().Snapshot()
	a, _ := json.Marshal(first)
	b, _ := json.Marshal(second)
	if !bytes.Equal(a, b) {
		t.Errorf("views diverge across restart:\nbefore: %s\nafter:  %s", a, b)
	}
	if st := s2.analytics().Stats(); st.LastSnapshot.IsZero() {
		t.Error("restarted server does not report the loaded snapshot")
	}
}

// TestSlowSubscriberUnderSustainedIngest is the load-shaped companion to
// TestSSESlowConsumerEvicted: a subscriber that never drains must be
// evicted while real traffic flows through POST /ingest → seal → fold,
// without stalling ingest and without inflating the freshness SLO. The
// transport-level eviction (socket backpressure, "event: evicted"
// trailer) is covered by the SSE test; this one pins the pipeline
// contract on /metrics.
func TestSlowSubscriberUnderSustainedIngest(t *testing.T) {
	s := demoServer(t)
	// Shrink the hub buffer so a handful of folds evicts; reuse the
	// server's registered instruments so /metrics reflects this engine.
	s.an.Store(analytics.New(analytics.Config{SubscriberBuffer: 2, Metrics: s.obs.analytics}))
	mux := s.mux()

	sub := s.analytics().Subscribe(nil) // never drained: the slow consumer
	defer sub.Close()

	// Sustained load: three full demo journeys through the real ingest
	// path. ingestDemoReplay fails the test on any non-200, so a stalled
	// or pushed-back ingest (the failure eviction exists to prevent)
	// cannot pass.
	var total int
	for i := 0; i < 3; i++ {
		total += ingestDemoReplay(t, s, mux, fmt.Sprintf("slow-sub-%d", i))
	}
	s.engine.Flush() // seal with arrival stamps → folds → hub publishes

	s.anCache.at = time.Time{} // bypass the 1s stats cache for the scrape
	samples := scrape(t, mux)
	if v := samples["trips_analytics_subscriber_evictions_total"]; v < 1 {
		t.Errorf("trips_analytics_subscriber_evictions_total = %v, want >= 1", v)
	}
	for range sub.C() {
	} // the hub closed the channel; drain the buffered prefix
	if !sub.Evicted() {
		t.Error("subscriber channel closed but Evicted() = false")
	}

	// Ingest kept flowing: every replayed record was admitted.
	if v := samples["trips_online_records_total"]; v < float64(total) {
		t.Errorf("trips_online_records_total = %v, want >= %d", v, total)
	}
	// Freshness observed and bounded: the eviction means no fold ever
	// waited on the dead subscriber, so ingest→visible stays wall-clock
	// small even though the replayed event time spans hours.
	count := samples["trips_freshness_seconds_count"]
	if count <= 0 {
		t.Fatalf("trips_freshness_seconds_count = %v, want > 0", count)
	}
	if avg := samples["trips_freshness_seconds_sum"] / count; avg > 30 {
		t.Errorf("mean freshness = %vs; a slow subscriber must not back up the pipeline", avg)
	}
}
