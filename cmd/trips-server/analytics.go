package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"trips/internal/analytics"
	"trips/internal/dsm"
)

// The analytics endpoints serve the incremental materialized views — every
// answer reads folded state, never a rescan of stored trips:
//
//	GET /analytics                      engine counters
//	GET /analytics/occupancy            per-region live occupancy (?activeWithin=5m)
//	GET /analytics/flows                region→region transitions (?region=, ?limit=)
//	GET /analytics/dwell/{region}       dwell histogram + quantiles
//	GET /analytics/topk                 windowed popularity (?k=, ?window=15m)
//	GET /analytics/subscribe            SSE stream of view deltas (?regions=a,b)
//
// Region path/query parameters resolve like /regions/{id}/visits: region ID
// first, semantic tag second.

// resolveRegion maps a path or query segment onto a model region ID.
func (s *server) resolveRegion(raw string) (dsm.RegionID, bool) {
	if r := s.model.Region(dsm.RegionID(raw)); r != nil {
		return r.ID, true
	}
	if r := s.model.RegionByTag(raw); r != nil {
		return r.ID, true
	}
	return "", false
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

func (s *server) handleAnalyticsStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, s.an.Stats())
}

// occupancyView is the /analytics/occupancy response.
type occupancyView struct {
	Watermark time.Time                   `json:"watermark,omitzero"`
	Regions   []analytics.RegionOccupancy `json:"regions"`
}

func (s *server) handleOccupancy(w http.ResponseWriter, r *http.Request) {
	var activeWithin time.Duration
	if v := r.URL.Query().Get("activeWithin"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil || d < 0 {
			http.Error(w, fmt.Sprintf("activeWithin: bad duration %q", v), http.StatusBadRequest)
			return
		}
		activeWithin = d
	}
	regions := s.an.Occupancy(activeWithin)
	if regions == nil {
		regions = []analytics.RegionOccupancy{}
	}
	writeJSON(w, occupancyView{Watermark: s.an.Watermark(), Regions: regions})
}

func (s *server) handleFlows(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	var region dsm.RegionID
	if v := q.Get("region"); v != "" {
		id, ok := s.resolveRegion(v)
		if !ok {
			http.NotFound(w, r)
			return
		}
		region = id
	}
	limit := 100
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			http.Error(w, fmt.Sprintf("limit: bad value %q", v), http.StatusBadRequest)
			return
		}
		limit = min(n, 1000)
	}
	flows := s.an.Flows(region, limit)
	if flows == nil {
		flows = []analytics.Flow{}
	}
	writeJSON(w, flows)
}

func (s *server) handleDwell(w http.ResponseWriter, r *http.Request) {
	raw := strings.TrimPrefix(r.URL.Path, "/analytics/dwell/")
	if raw == "" || strings.Contains(raw, "/") {
		http.NotFound(w, r)
		return
	}
	id, ok := s.resolveRegion(raw)
	if !ok {
		http.NotFound(w, r)
		return
	}
	st, ok := s.an.Dwell(id)
	if !ok {
		// A known region with no folded trips yet: an empty summary, not
		// an error — the hot polling case for fresh deployments.
		st = analytics.DwellStats{RegionID: id}
	}
	writeJSON(w, st)
}

func (s *server) handleTopK(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	k := 10
	if v := q.Get("k"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			http.Error(w, fmt.Sprintf("k: bad value %q", v), http.StatusBadRequest)
			return
		}
		k = min(n, 1000)
	}
	var window time.Duration
	if v := q.Get("window"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil || d <= 0 {
			http.Error(w, fmt.Sprintf("window: bad duration %q", v), http.StatusBadRequest)
			return
		}
		window = d
	}
	top := s.an.TopK(k, window)
	if top == nil {
		top = []analytics.RegionCount{}
	}
	writeJSON(w, top)
}

// handleSubscribe serves the continuous-query endpoint: an SSE stream of
// analytics view deltas, optionally filtered to ?regions=a,b (IDs or
// semantic tags). Each subscriber gets its own buffered feed; one that
// stops reading is evicted by the hub rather than stalling ingestion, and
// the stream ends with an "evicted" event so clients can distinguish
// being dropped from a server shutdown.
func (s *server) handleSubscribe(w http.ResponseWriter, r *http.Request) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	var regions []dsm.RegionID
	if v := r.URL.Query().Get("regions"); v != "" {
		for _, raw := range strings.Split(v, ",") {
			raw = strings.TrimSpace(raw)
			if raw == "" {
				continue
			}
			id, ok := s.resolveRegion(raw)
			if !ok {
				http.Error(w, fmt.Sprintf("unknown region %q", raw), http.StatusNotFound)
				return
			}
			regions = append(regions, id)
		}
	}

	sub := s.an.Subscribe(regions)
	defer sub.Close()

	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("Connection", "keep-alive")
	h.Set("X-Accel-Buffering", "no") // proxies must not buffer the stream
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	enc := json.NewEncoder(w)
	// Keep-alive comments defeat idle proxy timeouts between deltas.
	keepAlive := time.NewTicker(25 * time.Second)
	defer keepAlive.Stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case <-keepAlive.C:
			if _, err := fmt.Fprint(w, ": keep-alive\n\n"); err != nil {
				return
			}
			flusher.Flush()
		case d, ok := <-sub.C():
			if !ok {
				fmt.Fprint(w, "event: evicted\ndata: {}\n\n")
				flusher.Flush()
				return
			}
			if _, err := fmt.Fprint(w, "data: "); err != nil {
				return
			}
			if err := enc.Encode(d); err != nil { // Encode appends the \n
				return
			}
			if _, err := fmt.Fprint(w, "\n"); err != nil {
				return
			}
			flusher.Flush()
		}
	}
}
