package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"trips/internal/analytics"
	"trips/internal/dsm"
	"trips/internal/obs/trace"
	"trips/internal/online"
	"trips/internal/position"
	"trips/internal/semantics"
)

// The analytics endpoints serve the incremental materialized views — every
// answer reads folded state, never a rescan of stored trips:
//
//	GET  /analytics                     engine counters (incl. snapshot age)
//	POST /analytics/rebuild             swap in a freshly bootstrapped engine
//	GET  /analytics/occupancy           per-region live occupancy (?activeWithin=5m)
//	GET  /analytics/flows               region→region transitions (?region=, ?limit=)
//	GET  /analytics/dwell/{region}      dwell histogram + quantiles
//	GET  /analytics/topk                windowed popularity (?k=, ?window=15m)
//	GET  /analytics/subscribe           SSE stream of view deltas (?regions=a,b)
//
// Region path/query parameters resolve like /regions/{id}/visits: region ID
// first, semantic tag second.

// analyticsTee routes the online engine's sealed emissions (and its idle
// "device left" finalizations) into the *current* analytics engine. During
// a rebuild it buffers instead: the fresh engine bootstraps from the
// warehouse while emissions queue here, then the queue drains into it
// before the swap becomes visible — no emission is lost across the swap,
// and one delivered both ways (stored before the bootstrap read its
// device, then drained) is deduped by the fold's per-device frontier.
type analyticsTee struct {
	s *server

	// mu is an RWMutex so concurrent shard emissions fold in parallel (the
	// engine is concurrency-safe); only the rebuild swap and the buffered
	// appends take it exclusively. Folding under the read lock still gives
	// the atomicity the rebuild needs: the swap's write lock waits out
	// in-flight folds, so a delivery is either folded into the pre-rebuild
	// engine (and was warehoused before the rebuild's bootstrap began) or
	// buffered.
	mu        sync.RWMutex
	buffering bool
	buf       []teedEvent
}

// teedEvent is one buffered delivery: an emission, or a departure signal
// when leave is set. arrivedAt carries the emission's ingest-arrival stamp
// so the freshness metric observes at fold time — the instant the triplet
// became analytics-visible — even for deliveries that buffered across a
// rebuild. tc is the emission's trace context (the seal span) so the fold
// span parents correctly even for a live delivery.
type teedEvent struct {
	dev       position.DeviceID
	tr        semantics.Triplet
	at        time.Time
	arrivedAt time.Time
	tc        trace.Ctx
	leave     bool
}

// deliver folds the event into the current engine under the read lock, or
// — during a rebuild — appends it to the buffer under the write lock.
func (t *analyticsTee) deliver(ev teedEvent) {
	t.mu.RLock()
	if !t.buffering {
		t.apply(t.s.analytics(), ev)
		t.mu.RUnlock()
		return
	}
	t.mu.RUnlock()
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.buffering { // may have drained between the two locks
		t.buf = append(t.buf, ev)
		return
	}
	t.apply(t.s.analytics(), ev)
}

func (t *analyticsTee) apply(a *analytics.Engine, ev teedEvent) {
	if ev.leave {
		a.DeviceLeft(ev.dev, ev.at)
		return
	}
	a.IngestTraced(ev.dev, ev.tr, ev.tc)
	t.observeFreshness(ev)
}

// observeFreshness closes the ingest→analytics-visible loop for one folded
// emission. Emissions without an arrival stamp (close or idle finalization
// flushes) are skipped.
func (t *analyticsTee) observeFreshness(ev teedEvent) {
	if m := t.s.obs.analytics; m != nil && !ev.arrivedAt.IsZero() {
		m.Freshness.ObserveSince(ev.arrivedAt)
	}
}

// Emit implements online.Emitter.
func (t *analyticsTee) Emit(em online.Emission) {
	t.deliver(teedEvent{dev: em.Device, tr: em.Triplet, arrivedAt: em.ArrivedAt, tc: em.Trace})
}

// FinalizeSession implements online.SessionFinalizer: idle-evicted devices
// decay occupancy by evidence.
func (t *analyticsTee) FinalizeSession(dev position.DeviceID, at time.Time) {
	t.deliver(teedEvent{dev: dev, at: at, leave: true})
}

// rebuildAnalytics swaps in a fresh engine re-bootstrapped from the
// warehouse — the recovery for RebuildRecommended (backfill the
// incremental fold dropped). Live subscribers move over with the hub
// (Engine.Rebuild), and live emissions buffer in the tee across the
// bootstrap so none fold into the discarded engine after the new one
// stopped reading the warehouse.
func (s *server) rebuildAnalytics() (*analytics.Engine, error) {
	s.rebuildMu.Lock()
	defer s.rebuildMu.Unlock()
	old := s.analytics()

	s.tee.mu.Lock()
	s.tee.buffering = true
	s.tee.mu.Unlock()

	fresh, err := old.Rebuild(s.wh)

	s.tee.mu.Lock()
	defer s.tee.mu.Unlock()
	target := old
	if err == nil {
		target = fresh
		s.an.Store(fresh)
	}
	for _, ev := range s.tee.buf {
		if ev.leave {
			target.DeviceLeft(ev.dev, ev.at)
		} else {
			// IngestReplay: a buffered emission the bootstrap already
			// replayed from the warehouse is overlap, not backfill. The
			// drain is when it became visible, so freshness observes here
			// (rebuild stall included, by design).
			target.IngestReplay(ev.dev, ev.tr)
			s.tee.observeFreshness(ev)
		}
	}
	s.tee.buf, s.tee.buffering = nil, false
	if err != nil {
		return nil, err
	}
	return fresh, nil
}

// handleRebuild serves POST /analytics/rebuild: responds with the fresh
// engine's counters.
func (s *server) handleRebuild(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	fresh, err := s.rebuildAnalytics()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	writeJSON(w, fresh.Stats())
}

// resolveRegion maps a path or query segment onto a model region ID.
func (s *server) resolveRegion(raw string) (dsm.RegionID, bool) {
	if r := s.model.Region(dsm.RegionID(raw)); r != nil {
		return r.ID, true
	}
	if r := s.model.RegionByTag(raw); r != nil {
		return r.ID, true
	}
	return "", false
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

func (s *server) handleAnalyticsStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, s.analytics().Stats())
}

// occupancyView is the /analytics/occupancy response.
type occupancyView struct {
	Watermark time.Time                   `json:"watermark,omitzero"`
	Regions   []analytics.RegionOccupancy `json:"regions"`
}

func (s *server) handleOccupancy(w http.ResponseWriter, r *http.Request) {
	var activeWithin time.Duration
	if v := r.URL.Query().Get("activeWithin"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil || d < 0 {
			http.Error(w, fmt.Sprintf("activeWithin: bad duration %q", v), http.StatusBadRequest)
			return
		}
		activeWithin = d
	}
	regions := s.analytics().Occupancy(activeWithin)
	if regions == nil {
		regions = []analytics.RegionOccupancy{}
	}
	writeJSON(w, occupancyView{Watermark: s.analytics().Watermark(), Regions: regions})
}

func (s *server) handleFlows(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	var region dsm.RegionID
	if v := q.Get("region"); v != "" {
		id, ok := s.resolveRegion(v)
		if !ok {
			http.NotFound(w, r)
			return
		}
		region = id
	}
	limit := 100
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			http.Error(w, fmt.Sprintf("limit: bad value %q", v), http.StatusBadRequest)
			return
		}
		limit = min(n, 1000)
	}
	flows := s.analytics().Flows(region, limit)
	if flows == nil {
		flows = []analytics.Flow{}
	}
	writeJSON(w, flows)
}

func (s *server) handleDwell(w http.ResponseWriter, r *http.Request) {
	raw := strings.TrimPrefix(r.URL.Path, "/analytics/dwell/")
	if raw == "" || strings.Contains(raw, "/") {
		http.NotFound(w, r)
		return
	}
	id, ok := s.resolveRegion(raw)
	if !ok {
		http.NotFound(w, r)
		return
	}
	st, ok := s.analytics().Dwell(id)
	if !ok {
		// A known region with no folded trips yet: an empty summary, not
		// an error — the hot polling case for fresh deployments.
		st = analytics.DwellStats{RegionID: id}
	}
	writeJSON(w, st)
}

func (s *server) handleTopK(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	k := 10
	if v := q.Get("k"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			http.Error(w, fmt.Sprintf("k: bad value %q", v), http.StatusBadRequest)
			return
		}
		k = min(n, 1000)
	}
	var window time.Duration
	if v := q.Get("window"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil || d <= 0 {
			http.Error(w, fmt.Sprintf("window: bad duration %q", v), http.StatusBadRequest)
			return
		}
		window = d
	}
	top := s.analytics().TopK(k, window)
	if top == nil {
		top = []analytics.RegionCount{}
	}
	writeJSON(w, top)
}

// handleSubscribe serves the continuous-query endpoint: an SSE stream of
// analytics view deltas, optionally filtered to ?regions=a,b (IDs or
// semantic tags). Each subscriber gets its own buffered feed; one that
// stops reading is evicted by the hub rather than stalling ingestion, and
// the stream ends with an "evicted" event so clients can distinguish
// being dropped from a server shutdown.
func (s *server) handleSubscribe(w http.ResponseWriter, r *http.Request) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	var regions []dsm.RegionID
	if v := r.URL.Query().Get("regions"); v != "" {
		for _, raw := range strings.Split(v, ",") {
			raw = strings.TrimSpace(raw)
			if raw == "" {
				continue
			}
			id, ok := s.resolveRegion(raw)
			if !ok {
				http.Error(w, fmt.Sprintf("unknown region %q", raw), http.StatusNotFound)
				return
			}
			regions = append(regions, id)
		}
	}

	sub := s.analytics().Subscribe(regions)
	defer sub.Close()

	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("Connection", "keep-alive")
	h.Set("X-Accel-Buffering", "no") // proxies must not buffer the stream
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	enc := json.NewEncoder(w)
	// Keep-alive comments defeat idle proxy timeouts between deltas.
	keepAlive := time.NewTicker(25 * time.Second)
	defer keepAlive.Stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case <-keepAlive.C:
			if _, err := fmt.Fprint(w, ": keep-alive\n\n"); err != nil {
				return
			}
			flusher.Flush()
		case d, ok := <-sub.C():
			if !ok {
				fmt.Fprint(w, "event: evicted\ndata: {}\n\n")
				flusher.Flush()
				return
			}
			// Inert unless the delta carries a sampled trace. The fold span
			// already completed the trace; this one absorbs in as a late
			// span, extending the lineage to the subscriber's socket. On a
			// write error the unended span is silently discarded.
			sp := s.obs.tracer.Start(d.Trace, "sse_deliver")
			if _, err := fmt.Fprint(w, "data: "); err != nil {
				return
			}
			if err := enc.Encode(d); err != nil { // Encode appends the \n
				return
			}
			if _, err := fmt.Fprint(w, "\n"); err != nil {
				return
			}
			flusher.Flush()
			sp.End()
		}
	}
}
