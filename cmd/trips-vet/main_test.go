package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildVet compiles the trips-vet binary once per test run.
func buildVet(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "trips-vet")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// scratchModule writes a throwaway module named trips (the scope maps key on
// real import paths) whose internal/annotation package holds the given
// source, and returns its root.
func scratchModule(t *testing.T, src string) string {
	t.Helper()
	root := t.TempDir()
	pkg := filepath.Join(root, "internal", "annotation")
	if err := os.MkdirAll(pkg, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(root, "go.mod"), []byte("module trips\n\ngo 1.24\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(pkg, "annotate.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return root
}

// The PR-1 bug, reduced: refineByRegion's output order follows map
// iteration, which made Annotate's labels nondeterministic across runs.
const buggyRefine = `package annotation

type RegionID string

func refineByRegion(votes map[RegionID]int) []RegionID {
	var out []RegionID
	for r := range votes {
		out = append(out, r)
	}
	return out
}
`

// The shipped fix: collect (justified), then sort.
const fixedRefine = `package annotation

import "sort"

type RegionID string

func refineByRegion(votes map[RegionID]int) []RegionID {
	out := make([]RegionID, 0, len(votes))
	//trips:commutative key collection; iteration order is erased by the sort below
	for r := range votes {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
`

// TestVetCatchesReintroducedMapOrderBug is the end-to-end gate check: a
// module that reintroduces the PR-1 refineByRegion map-range bug must make
// trips-vet exit non-zero with a mapiter diagnostic, and the sorted
// variant must pass clean — including directive validation.
func TestVetCatchesReintroducedMapOrderBug(t *testing.T) {
	bin := buildVet(t)

	buggy := scratchModule(t, buggyRefine)
	out, err := exec.Command(bin, "-C", buggy, "-stdvet=false", "./...").CombinedOutput()
	if err == nil {
		t.Fatalf("trips-vet passed the reintroduced map-order bug:\n%s", out)
	}
	if ee, ok := err.(*exec.ExitError); !ok || ee.ExitCode() != 1 {
		t.Fatalf("trips-vet: %v (want exit code 1)\n%s", err, out)
	}
	if !strings.Contains(string(out), "[mapiter]") || !strings.Contains(string(out), "range over map votes") {
		t.Fatalf("diagnostic does not name the bug:\n%s", out)
	}

	fixed := scratchModule(t, fixedRefine)
	out, err = exec.Command(bin, "-C", fixed, "-stdvet=false", "./...").CombinedOutput()
	if err != nil {
		t.Fatalf("trips-vet rejected the fixed module: %v\n%s", err, out)
	}
	if strings.TrimSpace(string(out)) != "" {
		t.Fatalf("unexpected output on clean module:\n%s", out)
	}
}

// TestVetListsRoster pins the analyzer roster the CI gate advertises.
func TestVetListsRoster(t *testing.T) {
	bin := buildVet(t)
	out, err := exec.Command(bin, "-list").CombinedOutput()
	if err != nil {
		t.Fatalf("trips-vet -list: %v\n%s", err, out)
	}
	for _, name := range []string{"mapiter", "zeroalloc", "wallclock", "atomicfield", "ctxvalue"} {
		if !strings.Contains(string(out), name) {
			t.Errorf("roster missing %s:\n%s", name, out)
		}
	}
}
