// Command trips-vet runs the TRIPS static-analysis suite over the module:
// the five custom analyzers from internal/lint (mapiter, zeroalloc,
// wallclock, atomicfield, ctxvalue) plus, by default, the stock `go vet`
// passes. It exits non-zero when any diagnostic fires, which is what makes
// it a CI gate rather than a report.
//
// Usage:
//
//	go run ./cmd/trips-vet [flags] [packages]
//
//	-run mapiter,wallclock   run a subset of the custom analyzers
//	                         (disables directive validation: a directive
//	                         consumed by an analyzer that did not run would
//	                         read as stale)
//	-stdvet=false            skip the stock go vet passes
//	-list                    print the analyzer roster and exit
//	-C dir                   module directory to analyze (default ".")
//
// With no package arguments it analyzes ./... .
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"

	"trips/internal/lint"
)

func main() {
	var (
		runFlag  = flag.String("run", "", "comma-separated subset of analyzers to run (default all; disables directive validation)")
		listFlag = flag.Bool("list", false, "list the analyzers and exit")
		stdVet   = flag.Bool("stdvet", true, "also run the stock go vet passes")
		dirFlag  = flag.String("C", ".", "module directory to analyze")
	)
	flag.Parse()

	if *listFlag {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	exitCode := 0

	if *stdVet {
		cmd := exec.Command("go", append([]string{"vet"}, patterns...)...)
		cmd.Dir = *dirFlag
		cmd.Stdout = os.Stdout
		cmd.Stderr = os.Stderr
		if err := cmd.Run(); err != nil {
			exitCode = 1
		}
	}

	analyzers := lint.Analyzers()
	validateDirectives := true
	if *runFlag != "" {
		wanted := map[string]bool{}
		for _, name := range strings.Split(*runFlag, ",") {
			wanted[strings.TrimSpace(name)] = true
		}
		var selected []*lint.Analyzer
		for _, a := range analyzers {
			if wanted[a.Name] {
				selected = append(selected, a)
				delete(wanted, a.Name)
			}
		}
		if len(wanted) > 0 {
			var unknown []string
			for name := range wanted {
				unknown = append(unknown, name)
			}
			fmt.Fprintf(os.Stderr, "trips-vet: unknown analyzer(s) %s; known: %s\n",
				strings.Join(unknown, ", "), strings.Join(lint.AnalyzerNames(), ", "))
			os.Exit(2)
		}
		analyzers = selected
		validateDirectives = false
	}

	prog, err := lint.Load(*dirFlag, patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "trips-vet: %v\n", err)
		os.Exit(2)
	}
	diags, err := lint.Run(prog, analyzers, validateDirectives)
	if err != nil {
		fmt.Fprintf(os.Stderr, "trips-vet: %v\n", err)
		os.Exit(2)
	}

	wd, _ := os.Getwd()
	for _, d := range diags {
		pos := prog.Fset.Position(d.Pos)
		name := pos.Filename
		if wd != "" {
			if rel, err := filepath.Rel(wd, name); err == nil && !strings.HasPrefix(rel, "..") {
				name = rel
			}
		}
		fmt.Printf("%s:%d:%d: [%s] %s\n", name, pos.Line, pos.Column, d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "trips-vet: %d diagnostic(s)\n", len(diags))
		exitCode = 1
	}
	os.Exit(exitCode)
}
