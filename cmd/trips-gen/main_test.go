package main

import (
	"os"
	"path/filepath"
	"testing"

	"trips/internal/dsm"
	"trips/internal/events"
	"trips/internal/position"
)

func TestGenRunProducesArtifacts(t *testing.T) {
	out := t.TempDir()
	if err := run(out, 2, 4, 5, 1, 2, 2.5, 0.03, 0.05, 0.006, 10); err != nil {
		t.Fatalf("run: %v", err)
	}
	// DSM loads and is frozen.
	m, err := dsm.Load(filepath.Join(out, "mall.json"))
	if err != nil {
		t.Fatalf("mall.json: %v", err)
	}
	if len(m.Floors()) != 2 {
		t.Errorf("floors = %d", len(m.Floors()))
	}
	// Raw dataset loads with the requested devices.
	raw, err := position.LoadFile(filepath.Join(out, "raw.csv"))
	if err != nil {
		t.Fatalf("raw.csv: %v", err)
	}
	if raw.NumDevices() != 5 {
		t.Errorf("devices = %d", raw.NumDevices())
	}
	// Truth per device.
	truthFiles, err := os.ReadDir(filepath.Join(out, "truth"))
	if err != nil || len(truthFiles) != 5 {
		t.Errorf("truth files = %d, %v", len(truthFiles), err)
	}
	// Events state loads with training segments.
	ed, err := events.Load(filepath.Join(out, "events.json"))
	if err != nil {
		t.Fatalf("events.json: %v", err)
	}
	if len(ed.Segments()) == 0 {
		t.Error("no training segments generated")
	}
}

func TestGenRunRejectsBadSpec(t *testing.T) {
	if err := run(t.TempDir(), 0, 4, 1, 1, 1, 2.5, 0, 0, 0, 5); err == nil {
		t.Error("zero floors accepted")
	}
}
