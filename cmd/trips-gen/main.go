// Command trips-gen generates the synthetic experimental substrate: a mall
// DSM, a raw Wi-Fi positioning dataset over it, the per-device ground
// truth, and Event Editor training data derived from the truth.
//
// It substitutes for the paper's proprietary "7-floor shopping mall in
// Hangzhou" dataset; see DESIGN.md §1.
//
// Usage:
//
//	trips-gen -out data/ [-floors 7] [-shops 8] [-devices 50] [-seed 1]
//	          [-hours 12] [-noise 2.5] [-floor-err 0.03] [-outliers 0.05]
//	          [-dropout 0.006]
//
// Files written under -out:
//
//	mall.json        the venue DSM
//	raw.csv          the raw positioning dataset
//	truth/<dev>.json the true mobility semantics per device
//	truth.csv        the dense ground-truth traces
//	events.json      Event Editor state with training segments
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"trips/internal/events"
	"trips/internal/position"
	"trips/internal/simul"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("trips-gen: ")

	var (
		out      = flag.String("out", "data", "output directory")
		floors   = flag.Int("floors", 7, "mall floors")
		shops    = flag.Int("shops", 8, "shops per floor")
		devices  = flag.Int("devices", 50, "simulated devices")
		seed     = flag.Int64("seed", 1, "random seed")
		hours    = flag.Float64("hours", 12, "arrival window in hours")
		noise    = flag.Float64("noise", 2.5, "planar noise sigma in meters")
		floorErr = flag.Float64("floor-err", 0.03, "floor misread probability")
		outliers = flag.Float64("outliers", 0.05, "outlier probability")
		dropout  = flag.Float64("dropout", simul.DefaultErrorModel().DropoutProb,
			"dropout probability per record (0 = gap-free feed)")
		perEvent = flag.Int("train-per-event", 40, "training segments per event")
	)
	flag.Parse()

	if err := run(*out, *floors, *shops, *devices, *seed, *hours, *noise, *floorErr, *outliers, *dropout, *perEvent); err != nil {
		log.Fatal(err)
	}
}

func run(out string, floors, shops, devices int, seed int64, hours, noise, floorErr, outliers, dropout float64, perEvent int) error {
	if err := os.MkdirAll(filepath.Join(out, "truth"), 0o755); err != nil {
		return err
	}

	model, err := simul.BuildMall(simul.MallSpec{Floors: floors, ShopsPerFloor: shops})
	if err != nil {
		return err
	}
	if err := model.Save(filepath.Join(out, "mall.json")); err != nil {
		return err
	}
	fmt.Printf("mall: %d floors, %d entities, %d regions → %s\n",
		len(model.Floors()), len(model.Entities), len(model.Regions), filepath.Join(out, "mall.json"))

	em := simul.DefaultErrorModel()
	em.NoiseSigma = noise
	em.FloorErrProb = floorErr
	em.OutlierProb = outliers
	em.DropoutProb = dropout

	sim := simul.NewSim(model, seed)
	start := time.Date(2017, 1, 1, 10, 0, 0, 0, time.UTC)
	window := time.Duration(hours * float64(time.Hour))
	raw, truths, err := sim.Population(devices, start, window, em)
	if err != nil {
		return err
	}
	if err := position.SaveFile(filepath.Join(out, "raw.csv"), raw); err != nil {
		return err
	}
	st := raw.Summarize()
	fmt.Printf("raw: %s → %s\n", st, filepath.Join(out, "raw.csv"))

	// Ground truth: dense traces and true semantics.
	truthDS := position.NewDataset()
	//trips:commutative per-device truth files are keyed by device; truth.csv is sorted by SaveFile
	for dev, truth := range truths {
		truthDS.AddSequence(truth.Records)
		if err := truth.Semantics.Save(filepath.Join(out, "truth", string(dev)+".json")); err != nil {
			return err
		}
	}
	if err := position.SaveFile(filepath.Join(out, "truth.csv"), truthDS); err != nil {
		return err
	}
	fmt.Printf("truth: %d devices → %s, %s/\n", len(truths),
		filepath.Join(out, "truth.csv"), filepath.Join(out, "truth"))

	// Event Editor state with training segments derived from the truth.
	ed := events.NewEditor()
	segs := simul.TrainingSegments(raw, truths, perEvent)
	count := 0
	for _, es := range segs {
		for _, recs := range es.Segments {
			if err := ed.AddSegment(events.LabeledSegment{Event: es.Event, Device: recs[0].Device, Records: recs}); err != nil {
				return err
			}
			count++
		}
	}
	if err := ed.Save(filepath.Join(out, "events.json")); err != nil {
		return err
	}
	fmt.Printf("events: %d training segments → %s\n", count, filepath.Join(out, "events.json"))
	return nil
}
