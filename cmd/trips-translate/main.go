// Command trips-translate runs the TRIPS Translator over a configured
// dataset and exports the mobility semantics — step (4) of the paper's
// workflow, as a batch tool.
//
// Usage (flags or a Configurator document):
//
//	trips-translate -dsm data/mall.json -data data/raw.csv \
//	                -events data/events.json -out results/ \
//	                [-classifier gaussian-nb] [-device '3a.*'] \
//	                [-open-hour 10 -close-hour 22]
//	trips-translate -config task.json -out results/
//
// For every selected device it writes results/<device>.json (the
// "translation result file" of Fig. 5(4)) and prints a summary row.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"trips/internal/config"
	"trips/internal/core"
	"trips/internal/dsm"
	"trips/internal/events"
	"trips/internal/position"
	"trips/internal/selector"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("trips-translate: ")

	var (
		cfgPath    = flag.String("config", "", "Configurator document (overrides other input flags)")
		dsmPath    = flag.String("dsm", "", "DSM JSON path")
		dataPath   = flag.String("data", "", "positioning dataset (.csv/.jsonl)")
		eventsPath = flag.String("events", "", "Event Editor state with training segments")
		out        = flag.String("out", "results", "output directory")
		classifier = flag.String("classifier", "", "gaussian-nb | logistic-regression | decision-tree")
		devGlob    = flag.String("device", "", "device ID glob filter")
		openHour   = flag.Int("open-hour", -1, "daily window start hour (with -close-hour)")
		closeHour  = flag.Int("close-hour", -1, "daily window end hour")
	)
	flag.Parse()

	cfg, err := assembleConfig(*cfgPath, *dsmPath, *dataPath, *eventsPath, *classifier, *devGlob, *openHour, *closeHour)
	if err != nil {
		log.Fatal(err)
	}
	if err := run(cfg, *out); err != nil {
		log.Fatal(err)
	}
}

// assembleConfig merges the -config document with command-line flags.
func assembleConfig(cfgPath, dsmPath, dataPath, eventsPath, classifier, devGlob string, openHour, closeHour int) (*config.Config, error) {
	var cfg *config.Config
	if cfgPath != "" {
		var err error
		cfg, err = config.Load(cfgPath)
		if err != nil {
			return nil, err
		}
	} else {
		cfg = &config.Config{Name: "cli-task"}
	}
	if dsmPath != "" {
		cfg.DSM = dsmPath
	}
	if dataPath != "" {
		cfg.Dataset = dataPath
	}
	if eventsPath != "" {
		cfg.Events = eventsPath
	}
	if classifier != "" {
		cfg.Annotator.Classifier = classifier
	}
	var extra []config.RuleConfig
	if devGlob != "" {
		extra = append(extra, config.RuleConfig{Kind: "device", Glob: devGlob})
	}
	if openHour >= 0 && closeHour > openHour {
		extra = append(extra, config.RuleConfig{Kind: "dailyWindow", StartHour: openHour, EndHour: closeHour})
	}
	if len(extra) > 0 {
		if cfg.Selector != nil {
			extra = append(extra, *cfg.Selector)
		}
		cfg.Selector = &config.RuleConfig{Kind: "and", Children: extra}
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.DSM == "" || cfg.Dataset == "" || cfg.Events == "" {
		return nil, fmt.Errorf("need -dsm, -data and -events (or a -config naming them)")
	}
	return cfg, nil
}

func run(cfg *config.Config, out string) error {
	model, err := dsm.Load(cfg.DSM)
	if err != nil {
		return fmt.Errorf("load DSM: %w", err)
	}
	ed, err := events.Load(cfg.Events)
	if err != nil {
		return fmt.Errorf("load events: %w", err)
	}
	em, err := core.TrainEventModel(ed.TrainingSet(), cfg.Annotator)
	if err != nil {
		return fmt.Errorf("train: %w", err)
	}
	tr, err := core.NewTranslator(model, em, cfg.Cleaner, cfg.Annotator, cfg.Complementor)
	if err != nil {
		return err
	}

	ds, err := position.LoadFile(cfg.Dataset)
	if err != nil {
		return fmt.Errorf("load dataset: %w", err)
	}
	rule, err := cfg.Selector.Build()
	if err != nil {
		return err
	}
	selected := selector.Select(ds, rule)
	fmt.Printf("selected %d of %d devices (%s)\n",
		selected.NumDevices(), ds.NumDevices(), rule.Describe())

	if err := os.MkdirAll(out, 0o755); err != nil {
		return err
	}
	results := tr.Translate(selected)
	fmt.Printf("%-14s %8s %8s %8s %9s %12s\n",
		"device", "records", "repairs", "triplets", "inferred", "rec/triplet")
	for _, r := range results {
		path := filepath.Join(out, string(r.Device)+".json")
		if err := r.Final.Save(path); err != nil {
			return err
		}
		fmt.Printf("%-14s %8d %8d %8d %9d %12.1f\n",
			r.Device, r.Raw.Len(), r.Clean.Modified(), r.Final.Len(),
			r.Inserted, r.Conciseness.RecordsPerTriplet)
	}
	fmt.Printf("wrote %d result files to %s/\n", len(results), out)
	return nil
}
