package main

import (
	"path/filepath"
	"testing"
	"time"

	"trips/internal/config"
	"trips/internal/events"
	"trips/internal/position"
	"trips/internal/semantics"
	"trips/internal/simul"
)

// genInputs synthesizes a dataset + DSM + events on disk.
func genInputs(t *testing.T) (dsmPath, dataPath, eventsPath string) {
	t.Helper()
	dir := t.TempDir()
	m, err := simul.BuildMall(simul.MallSpec{Floors: 2, ShopsPerFloor: 4})
	if err != nil {
		t.Fatal(err)
	}
	dsmPath = filepath.Join(dir, "mall.json")
	if err := m.Save(dsmPath); err != nil {
		t.Fatal(err)
	}
	sim := simul.NewSim(m, 3)
	start := time.Date(2017, 1, 1, 11, 0, 0, 0, time.UTC)
	raw, truths, err := sim.Population(5, start, time.Hour, simul.DefaultErrorModel())
	if err != nil {
		t.Fatal(err)
	}
	dataPath = filepath.Join(dir, "raw.csv")
	if err := position.SaveFile(dataPath, raw); err != nil {
		t.Fatal(err)
	}
	ed := events.NewEditor()
	for _, es := range simul.TrainingSegments(raw, truths, 20) {
		for _, recs := range es.Segments {
			if err := ed.AddSegment(events.LabeledSegment{Event: es.Event, Device: recs[0].Device, Records: recs}); err != nil {
				t.Fatal(err)
			}
		}
	}
	eventsPath = filepath.Join(dir, "events.json")
	if err := ed.Save(eventsPath); err != nil {
		t.Fatal(err)
	}
	return dsmPath, dataPath, eventsPath
}

func TestAssembleConfig(t *testing.T) {
	cfg, err := assembleConfig("", "m.json", "d.csv", "e.json", "decision-tree", "3a.*", 10, 22)
	if err != nil {
		t.Fatalf("assembleConfig: %v", err)
	}
	if cfg.DSM != "m.json" || cfg.Annotator.Classifier != "decision-tree" {
		t.Errorf("config = %+v", cfg)
	}
	if cfg.Selector == nil || cfg.Selector.Kind != "and" || len(cfg.Selector.Children) != 2 {
		t.Errorf("selector = %+v", cfg.Selector)
	}
	// Missing mandatory paths.
	if _, err := assembleConfig("", "", "d.csv", "e.json", "", "", -1, -1); err == nil {
		t.Error("missing dsm accepted")
	}
	// Bad classifier.
	if _, err := assembleConfig("", "m", "d", "e", "svm", "", -1, -1); err == nil {
		t.Error("bad classifier accepted")
	}
}

func TestTranslateRunEndToEnd(t *testing.T) {
	dsmPath, dataPath, eventsPath := genInputs(t)
	out := t.TempDir()
	cfg, err := assembleConfig("", dsmPath, dataPath, eventsPath, "", "", -1, -1)
	if err != nil {
		t.Fatal(err)
	}
	if err := run(cfg, out); err != nil {
		t.Fatalf("run: %v", err)
	}
	raw, _ := position.LoadFile(dataPath)
	for _, dev := range raw.Devices() {
		seq, err := semantics.Load(filepath.Join(out, string(dev)+".json"))
		if err != nil {
			t.Fatalf("result for %s: %v", dev, err)
		}
		if seq.Len() == 0 {
			t.Errorf("%s: empty semantics", dev)
		}
	}
}

func TestTranslateRunWithConfigFile(t *testing.T) {
	dsmPath, dataPath, eventsPath := genInputs(t)
	dir := t.TempDir()
	doc := &config.Config{
		Name: "from-file", DSM: dsmPath, Dataset: dataPath, Events: eventsPath,
		Selector: &config.RuleConfig{Kind: "minRecords", MinCount: 10},
	}
	cfgPath := filepath.Join(dir, "task.json")
	if err := doc.Save(cfgPath); err != nil {
		t.Fatal(err)
	}
	cfg, err := assembleConfig(cfgPath, "", "", "", "", "3a.*", -1, -1)
	if err != nil {
		t.Fatal(err)
	}
	// Flag rules wrap the file's selector.
	if cfg.Selector.Kind != "and" {
		t.Errorf("merged selector = %+v", cfg.Selector)
	}
	if err := run(cfg, filepath.Join(dir, "results")); err != nil {
		t.Fatalf("run: %v", err)
	}
}
