package trips

// Benchmarks, one per paper artifact (DESIGN.md §4) plus the ablation
// benches of §5. The same workloads back cmd/trips-bench; here they run
// under testing.B for performance tracking:
//
//	go test -bench=. -benchmem

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"trips/internal/annotation"
	"trips/internal/cleaning"
	"trips/internal/complement"
	"trips/internal/dsm"
	"trips/internal/experiments"
	"trips/internal/floorplan"
	"trips/internal/online"
	"trips/internal/position"
	"trips/internal/semantics"
	"trips/internal/simul"
	"trips/internal/storage"
	"trips/internal/tripstore"
	"trips/internal/viewer"
)

// benchEnv caches the shared environment across benchmarks; building it is
// itself measured by BenchmarkE3_DSMBuild.
var benchEnv *experiments.Env

func env(b *testing.B) *experiments.Env {
	b.Helper()
	if benchEnv == nil {
		spec := experiments.DefaultEnvSpec()
		spec.Devices = 10
		e, err := experiments.NewEnv(spec)
		if err != nil {
			b.Fatal(err)
		}
		benchEnv = e
	}
	return benchEnv
}

// oneSequence returns a single raw sequence of roughly n records.
func oneSequence(b *testing.B, e *experiments.Env, n int) *position.Sequence {
	b.Helper()
	seq := position.NewSequence("bench")
	for _, dev := range e.Raw.Devices() {
		for _, r := range e.Raw.Sequence(dev).Records {
			if seq.Len() >= n {
				return seq
			}
			rr := r
			rr.Device = "bench"
			seq.Append(rr)
		}
	}
	return seq
}

// BenchmarkE1_Translation is Table 1: the full three-layer translation of
// one device sequence (clean + annotate + complement, uniform prior).
func BenchmarkE1_Translation(b *testing.B) {
	e := env(b)
	seq := oneSequence(b, e, 500)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := e.Trans.TranslateOne(seq, nil)
		if res.Final.Len() == 0 {
			b.Fatal("no semantics")
		}
	}
	b.ReportMetric(float64(seq.Len()), "records/op")
}

// BenchmarkE2_Pipeline measures Figure 1 stage by stage.
func BenchmarkE2_Pipeline(b *testing.B) {
	e := env(b)
	seq := oneSequence(b, e, 500)
	cleaned, _ := e.Trans.Cleaner.Clean(seq)
	annotated := e.Trans.Annotator.Annotate(cleaned)
	know := complement.BuildKnowledge(e.Model, []*semantics.Sequence{annotated}, 2*time.Minute)

	b.Run("cleaning", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			e.Trans.Cleaner.Clean(seq)
		}
	})
	b.Run("annotation", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			e.Trans.Annotator.Annotate(cleaned)
		}
	})
	b.Run("knowledge", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			complement.BuildKnowledge(e.Model, []*semantics.Sequence{annotated}, 2*time.Minute)
		}
	})
	b.Run("complementing", func(b *testing.B) {
		b.ReportAllocs()
		comp := complement.NewComplementor(e.Model, know)
		for i := 0; i < b.N; i++ {
			comp.Complement(annotated)
		}
	})
}

// BenchmarkE3_DSMBuild is Figure 2: compiling and freezing a 7-floor mall
// DSM (geometry, indexes, navigation graph, region adjacency).
func BenchmarkE3_DSMBuild(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := simul.BuildMall(simul.MallSpec{Floors: 7, ShopsPerFloor: 8}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE3_Trace is Figure 2's semi-automatic path: raster floorplan
// tracing plus DSM compilation.
func BenchmarkE3_Trace(b *testing.B) {
	img := experiments.SyntheticFloorplan(400, 240)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		canvas, err := floorplan.Trace(img, 1, floorplan.DefaultTraceOptions())
		if err != nil {
			b.Fatal(err)
		}
		if _, err := floorplan.Build("traced", floorplan.BuildOptions{}, canvas); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE4_Cleaning measures the Cleaning layer and its distance-metric
// ablation (DESIGN.md §5.1): indoor walking distance vs Euclidean.
func BenchmarkE4_Cleaning(b *testing.B) {
	e := env(b)
	seq := oneSequence(b, e, 500)
	b.Run("walking-distance", func(b *testing.B) {
		cl := cleaning.New(e.Model)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			cl.Clean(seq)
		}
	})
	b.Run("euclidean-ablation", func(b *testing.B) {
		cl := cleaning.New(e.Model)
		cl.UseEuclidean = true
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			cl.Clean(seq)
		}
	})
}

// BenchmarkE4_Identify measures per-snippet event identification for each
// classifier.
func BenchmarkE4_Identify(b *testing.B) {
	e := env(b)
	seq := oneSequence(b, e, 500)
	cleaned, _ := e.Trans.Cleaner.Clean(seq)
	snippets := annotation.Split(cleaned, annotation.DefaultSplitConfig())
	if len(snippets) == 0 {
		b.Fatal("no snippets")
	}
	for _, name := range []string{"gaussian-nb", "logistic-regression", "decision-tree"} {
		b.Run(name, func(b *testing.B) {
			em := trainBenchModel(b, e, name)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				em.Identify(snippets[i%len(snippets)])
			}
		})
	}
}

func trainBenchModel(b *testing.B, e *experiments.Env, name string) *annotation.EventModel {
	b.Helper()
	var clf annotation.Classifier
	switch name {
	case "gaussian-nb":
		clf = annotation.NewGaussianNB()
	case "logistic-regression":
		clf = annotation.NewLogisticRegression()
	default:
		clf = annotation.NewDecisionTree()
	}
	em, err := annotation.TrainEventModel(e.Editor.TrainingSet(), clf)
	if err != nil {
		b.Fatal(err)
	}
	return em
}

// BenchmarkE4_Split measures the density-based splitting against the
// fixed-window ablation (DESIGN.md §5.3).
func BenchmarkE4_Split(b *testing.B) {
	e := env(b)
	seq := oneSequence(b, e, 2000)
	cleaned, _ := e.Trans.Cleaner.Clean(seq)
	b.Run("density-based", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			annotation.Split(cleaned, annotation.DefaultSplitConfig())
		}
	})
	b.Run("fixed-window-ablation", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			cleaned.SplitByGap(2 * time.Minute)
		}
	})
}

// BenchmarkE4_MAPInference measures the Complementor's MAP path search,
// learned prior vs the uniform-prior ablation (DESIGN.md §5.4).
func BenchmarkE4_MAPInference(b *testing.B) {
	e := env(b)
	results := e.Trans.Translate(e.Raw)
	var all []*semantics.Sequence
	for _, r := range results {
		all = append(all, r.Original)
	}
	know := complement.BuildKnowledge(e.Model, all, 2*time.Minute)
	gappy := semantics.NewSequence("bench")
	regs := simul.ShopRegions(e.Model)
	t0 := experiments.Start
	gappy.Append(semantics.Triplet{Event: semantics.EventStay, Region: regs[0].Tag,
		RegionID: regs[0].ID, From: t0, To: t0.Add(5 * time.Minute)})
	last := regs[len(regs)-1]
	gappy.Append(semantics.Triplet{Event: semantics.EventStay, Region: last.Tag,
		RegionID: last.ID, From: t0.Add(30 * time.Minute), To: t0.Add(35 * time.Minute)})

	b.Run("learned-prior", func(b *testing.B) {
		comp := complement.NewComplementor(e.Model, know)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			comp.Complement(gappy)
		}
	})
	b.Run("uniform-ablation", func(b *testing.B) {
		comp := complement.NewComplementor(e.Model, know)
		comp.UniformPrior = true
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			comp.Complement(gappy)
		}
	})
}

// BenchmarkE5_Render is Figure 4: unified SVG rendering of the mobility
// data sequences (map + timeline).
func BenchmarkE5_Render(b *testing.B) {
	e := env(b)
	seq := oneSequence(b, e, 1000)
	res := e.Trans.TranslateOne(seq, nil)
	v := viewer.NewView(e.Model)
	v.SetSource(viewer.SourceRaw, viewer.FromPositioning(viewer.SourceRaw, res.Raw))
	v.SetSource(viewer.SourceCleaned, viewer.FromPositioning(viewer.SourceCleaned, res.Cleaned))
	v.SetSource(viewer.SourceSemantics, viewer.FromSemantics(res.Final))
	b.Run("map", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			viewer.RenderSVG(v, viewer.RenderOptions{})
		}
	})
	b.Run("timeline", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			viewer.RenderTimelineSVG(v, 900)
		}
	})
}

// BenchmarkE6_Workflow is Figures 5–6: the end-to-end two-phase pipeline
// over the whole population, including parallel phase one.
func BenchmarkE6_Workflow(b *testing.B) {
	e := env(b)
	records := e.Raw.NumRecords()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Trans.Translate(e.Raw)
	}
	b.ReportMetric(float64(records), "records/op")
}

// onlineBenchEnv caches a larger population for the online engine bench:
// more devices than the shared env so sharding has work to spread.
var onlineBenchEnv *experiments.Env

// onlineBenchFeeds partitions the population into device-disjoint,
// time-ordered feeds — the producers of the bench, mirroring a venue with
// several positioning gateways. Per-device ordering is preserved because a
// device belongs to exactly one feed.
var onlineBenchFeeds [][]position.Record

func onlineEnv(b *testing.B) (*experiments.Env, [][]position.Record) {
	b.Helper()
	if onlineBenchEnv == nil {
		spec := experiments.DefaultEnvSpec()
		spec.Devices = 16
		spec.Window = time.Hour
		e, err := experiments.NewEnv(spec)
		if err != nil {
			b.Fatal(err)
		}
		onlineBenchEnv = e
		const producers = 4
		onlineBenchFeeds = make([][]position.Record, producers)
		for i, seq := range e.Raw.Sequences() {
			p := i % producers
			onlineBenchFeeds[p] = append(onlineBenchFeeds[p], seq.Records...)
		}
		for _, feed := range onlineBenchFeeds {
			sort.SliceStable(feed, func(i, j int) bool {
				return feed[i].At.Before(feed[j].At)
			})
		}
	}
	return onlineBenchEnv, onlineBenchFeeds
}

// BenchmarkOnlineTranslate measures the online engine's sustained ingest
// throughput at 1, 4, and 16 shards over a 16-device hour of traffic fed
// by 4 concurrent producers, plus the batch Translate of the same dataset
// as the baseline. One op = one full pass: engine start, every record
// ingested, engine closed (all sessions sealed). Shard scaling needs
// GOMAXPROCS > 1; the aggressive FlushEvery keeps the incremental
// recompute — not channel routing — the dominant cost, as in a live
// deployment with long-running sessions.
func BenchmarkOnlineTranslate(b *testing.B) {
	e, feeds := onlineEnv(b)
	records := e.Raw.NumRecords()
	for _, shards := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("shards-%d", shards), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				var emitted atomic.Int64
				eng, err := e.Trans.NewOnline(online.Config{
					Shards:        shards,
					FlushEvery:    16,
					FlushInterval: -1,
					IdleTimeout:   -1,
					Emitter: online.EmitterFunc(func(online.Emission) {
						emitted.Add(1)
					}),
				})
				if err != nil {
					b.Fatal(err)
				}
				var wg sync.WaitGroup
				for _, feed := range feeds {
					wg.Add(1)
					go func(feed []position.Record) {
						defer wg.Done()
						for _, r := range feed {
							if err := eng.Ingest(r); err != nil {
								b.Error(err)
								return
							}
						}
					}(feed)
				}
				wg.Wait()
				eng.Close()
				if emitted.Load() == 0 {
					b.Fatal("no semantics emitted")
				}
			}
			b.ReportMetric(float64(records*b.N)/b.Elapsed().Seconds(), "records/s")
		})
	}
	b.Run("batch-baseline", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			e.Trans.Translate(e.Raw)
		}
		b.ReportMetric(float64(records*b.N)/b.Elapsed().Seconds(), "records/s")
	})
	// Long-session variants: one device whose tail grows to 1k/8k records
	// without a hard break, flushed every 16 records — the workload where
	// per-flush recompute cost over the tail dominates. The acceptance
	// property is that ns/record stays roughly flat from 1k to 8k (flush
	// cost proportional to the new suffix); before the incremental flush it
	// grew linearly with the tail.
	for _, n := range []int{1000, 8000} {
		recs := experiments.LongSessionRecords(e, "long", n)
		b.Run(fmt.Sprintf("long-session-%dk", n/1000), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				var emitted atomic.Int64
				eng, err := e.Trans.NewOnline(online.Config{
					Shards:        1,
					FlushEvery:    16,
					FlushInterval: -1,
					IdleTimeout:   -1,
					Emitter: online.EmitterFunc(func(online.Emission) {
						emitted.Add(1)
					}),
				})
				if err != nil {
					b.Fatal(err)
				}
				for _, r := range recs {
					if err := eng.Ingest(r); err != nil {
						b.Fatal(err)
					}
				}
				eng.Close()
				if emitted.Load() == 0 {
					b.Fatal("no semantics emitted")
				}
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(n*b.N), "ns/record")
			b.ReportMetric(float64(n*b.N)/b.Elapsed().Seconds(), "records/s")
		})
	}
}

// warehouseBenchTrips synthesizes n trips in arrival order: 64 devices
// round-robin, 32 regions, 4-minute stays every 5 seconds — the shape a
// day of online emissions has.
func warehouseBenchTrips(n int) []tripstore.Trip {
	const devices, regions = 64, 32
	start := time.Date(2017, 1, 1, 10, 0, 0, 0, time.UTC)
	seq := make([]int, devices)
	trips := make([]tripstore.Trip, 0, n)
	for i := 0; i < n; i++ {
		d := i % devices
		r := (i * 7) % regions
		trips = append(trips, tripstore.Trip{
			Device: position.DeviceID(fmt.Sprintf("dev-%03d", d)),
			Seq:    seq[d],
			Triplet: semantics.Triplet{
				Event:    semantics.EventStay,
				Region:   fmt.Sprintf("shop-%02d", r),
				RegionID: dsm.RegionID(fmt.Sprintf("r-%02d", r)),
				From:     start.Add(time.Duration(i) * 5 * time.Second),
				To:       start.Add(time.Duration(i)*5*time.Second + 4*time.Minute),
			},
		})
		seq[d]++
	}
	return trips
}

// BenchmarkWarehouseIngest measures the warehouse write path: index
// maintenance alone (memory) and with the batched segment log underneath
// (durable).
func BenchmarkWarehouseIngest(b *testing.B) {
	for _, size := range []int{10_000, 100_000} {
		trips := warehouseBenchTrips(size)
		b.Run(fmt.Sprintf("memory-%dk", size/1000), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				w, err := tripstore.New(tripstore.Options{})
				if err != nil {
					b.Fatal(err)
				}
				for _, tr := range trips {
					if err := w.Insert(tr); err != nil {
						b.Fatal(err)
					}
				}
			}
			b.ReportMetric(float64(size*b.N)/b.Elapsed().Seconds(), "trips/s")
		})
	}
	trips := warehouseBenchTrips(10_000)
	b.Run("durable-10k", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			st, err := storage.Open(b.TempDir())
			if err != nil {
				b.Fatal(err)
			}
			w, err := tripstore.New(tripstore.Options{Log: &tripstore.LogOptions{Store: st}})
			if err != nil {
				b.Fatal(err)
			}
			for _, tr := range trips {
				if err := w.Insert(tr); err != nil {
					b.Fatal(err)
				}
			}
			if err := w.Close(); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(len(trips)*b.N)/b.Elapsed().Seconds(), "trips/s")
	})
}

// BenchmarkWarehouseQuery measures the read path per predicate class at
// 10k and 100k warehoused trips: one device's timeline, a time-range
// overlap via the interval index, and a region posting list intersected
// with a time range. Pages are capped at 100 trips, the server default.
func BenchmarkWarehouseQuery(b *testing.B) {
	for _, size := range []int{10_000, 100_000} {
		w, err := tripstore.New(tripstore.Options{})
		if err != nil {
			b.Fatal(err)
		}
		trips := warehouseBenchTrips(size)
		for _, tr := range trips {
			if err := w.Insert(tr); err != nil {
				b.Fatal(err)
			}
		}
		mid := trips[size/2].Triplet.From
		specs := []struct {
			name string
			spec tripstore.QuerySpec
		}{
			{"device", tripstore.QuerySpec{Device: "dev-007", Limit: 100}},
			{"time", tripstore.QuerySpec{Since: mid, Until: mid.Add(5 * time.Minute), Limit: 100}},
			{"region", tripstore.QuerySpec{Region: "shop-03", Since: mid, Until: mid.Add(30 * time.Minute), Limit: 100}},
		}
		for _, tc := range specs {
			b.Run(fmt.Sprintf("%s-%dk", tc.name, size/1000), func(b *testing.B) {
				page, err := w.Query(tc.spec) // warm: sorts the index once
				if err != nil {
					b.Fatal(err)
				}
				if len(page.Trips) == 0 {
					b.Fatal("empty benchmark query")
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := w.Query(tc.spec); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(len(page.Trips)), "trips/page")
			})
		}
	}
}

// analyticsBenchTrips reshapes the warehouse bench workload for the
// analytics views: same 64 devices and 32 regions, but each device walks
// through the regions (one step per trip) instead of revisiting a single
// one, so the flow matrix actually populates.
func analyticsBenchTrips(n int) []tripstore.Trip {
	trips := warehouseBenchTrips(n)
	const devices, regions = 64, 32
	for i := range trips {
		r := (i%devices*7 + i/devices) % regions
		trips[i].Triplet.Region = fmt.Sprintf("shop-%02d", r)
		trips[i].Triplet.RegionID = dsm.RegionID(fmt.Sprintf("r-%02d", r))
	}
	return trips
}

// BenchmarkAnalyticsIngest measures the analytics fold: trips/s through
// Engine.Ingest at 10k and 100k trips (the warehouse bench workload: 64
// devices, 32 regions). Per-trip cost is O(1) map work, so trips/s should
// hold flat as the corpus grows.
func BenchmarkAnalyticsIngest(b *testing.B) {
	for _, size := range []int{10_000, 100_000} {
		trips := analyticsBenchTrips(size)
		b.Run(fmt.Sprintf("%dk", size/1000), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				a := NewAnalytics(AnalyticsConfig{Shards: 4})
				for _, tr := range trips {
					a.Ingest(tr.Device, tr.Triplet)
				}
			}
			b.ReportMetric(float64(size*b.N)/b.Elapsed().Seconds(), "trips/s")
		})
	}
}

// BenchmarkAnalyticsQuery measures every materialized view's read path at
// 10k and 100k folded trips. The acceptance property of the subsystem is
// that these stay O(view) — occupancy/top-k scale with regions, flows with
// region pairs, dwell with histogram buckets — so the numbers must stay
// flat from 10k to 100k (the device and region populations are identical;
// only the trip count grows 10×).
func BenchmarkAnalyticsQuery(b *testing.B) {
	for _, size := range []int{10_000, 100_000} {
		a := NewAnalytics(AnalyticsConfig{Shards: 4})
		for _, tr := range analyticsBenchTrips(size) {
			a.Ingest(tr.Device, tr.Triplet)
		}
		queries := []struct {
			name string
			run  func() int
		}{
			{"occupancy", func() int { return len(a.Occupancy(0)) }},
			{"flows", func() int { return len(a.Flows("", 10)) }},
			{"dwell", func() int {
				st, _ := a.Dwell("r-03")
				return int(st.Count)
			}},
			{"topk", func() int { return len(a.TopK(5, 30*time.Minute)) }},
		}
		for _, q := range queries {
			b.Run(fmt.Sprintf("%s-%dk", q.name, size/1000), func(b *testing.B) {
				if q.run() == 0 {
					b.Fatal("empty benchmark query")
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					q.run()
				}
			})
		}
	}
}

// BenchmarkAnalyticsBoot compares the two analytics boot paths at 10k and
// 100k warehoused trips: a full warehouse Bootstrap (O(stored trips)) vs
// loading a durable snapshot and replaying only the 512-trip tail past its
// fold frontiers. The full numbers must grow ~10× between the sizes while
// the snapshot numbers stay nearly flat — boot cost scales with the tail,
// not the store.
func BenchmarkAnalyticsBoot(b *testing.B) {
	const tail = 512
	cfg := AnalyticsConfig{Shards: 4}
	for _, size := range []int{10_000, 100_000} {
		trips := analyticsBenchTrips(size)
		w, err := tripstore.New(tripstore.Options{})
		if err != nil {
			b.Fatal(err)
		}
		for _, tr := range trips {
			if err := w.Insert(tr); err != nil {
				b.Fatal(err)
			}
		}
		// The snapshot covers everything but the last `tail` trips, exactly
		// the state a crash mid-stream leaves behind.
		st, err := storage.Open(b.TempDir())
		if err != nil {
			b.Fatal(err)
		}
		pre := NewAnalytics(cfg)
		for _, tr := range trips[:size-tail] {
			pre.Ingest(tr.Device, tr.Triplet)
		}
		opts := AnalyticsStoreOptions{Store: st}
		if err := pre.SaveSnapshot(opts); err != nil {
			b.Fatal(err)
		}

		b.Run(fmt.Sprintf("full-%dk", size/1000), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				a := NewAnalytics(cfg)
				if err := a.Bootstrap(w); err != nil {
					b.Fatal(err)
				}
				if a.Stats().Trips != int64(size) {
					b.Fatal("incomplete bootstrap")
				}
			}
		})
		b.Run(fmt.Sprintf("snapshot-%dk", size/1000), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				a := NewAnalytics(cfg)
				if ok, err := a.LoadSnapshot(opts); err != nil || !ok {
					b.Fatalf("LoadSnapshot = %v, %v", ok, err)
				}
				if err := a.Bootstrap(w); err != nil {
					b.Fatal(err)
				}
				if a.Stats().Trips != int64(size) {
					b.Fatal("incomplete snapshot boot")
				}
			}
			b.ReportMetric(tail, "tail-trips/op")
		})
	}
}

// BenchmarkAnalyticsSubscribe measures ingest throughput with live
// subscribers attached and draining — the fan-out cost of the continuous
// query path.
func BenchmarkAnalyticsSubscribe(b *testing.B) {
	trips := analyticsBenchTrips(10_000)
	for _, subs := range []int{0, 1, 8} {
		b.Run(fmt.Sprintf("subscribers-%d", subs), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				a := NewAnalytics(AnalyticsConfig{Shards: 4, SubscriberBuffer: 1024})
				var wg sync.WaitGroup
				subsList := make([]*AnalyticsSubscription, subs)
				for s := range subsList {
					subsList[s] = a.Subscribe(nil)
					wg.Add(1)
					go func(sub *AnalyticsSubscription) {
						defer wg.Done()
						for range sub.C() {
						}
					}(subsList[s])
				}
				b.StartTimer()
				for _, tr := range trips {
					a.Ingest(tr.Device, tr.Triplet)
				}
				b.StopTimer()
				for _, sub := range subsList {
					sub.Close()
				}
				wg.Wait()
				if st := a.Stats(); st.Trips != int64(len(trips)) {
					b.Fatalf("folded %d trips", st.Trips)
				}
				b.StartTimer()
			}
			b.ReportMetric(float64(len(trips)*b.N)/b.Elapsed().Seconds(), "trips/s")
		})
	}
}

// BenchmarkWalkingDistance isolates the DSM's door-graph Dijkstra, the
// hot spot of the Cleaning layer.
func BenchmarkWalkingDistance(b *testing.B) {
	e := env(b)
	regs := simul.ShopRegions(e.Model)
	a := regs[0]
	c := regs[len(regs)-1]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := e.Model.WalkingDistance(
			locOf(a), locOf(c),
		); !ok {
			b.Fatal("unreachable")
		}
	}
}

func locOf(r *SemanticRegion) Location {
	return Location{P: r.Center(), Floor: r.Floor}
}
