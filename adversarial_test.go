package trips

import (
	"bytes"
	"fmt"
	"sort"
	"sync"
	"testing"
	"time"

	"trips/internal/simul"
)

// adversarialSchedule rewrites an in-order delivery sequence into the
// production failure shape the load harness simulates: bounded
// out-of-order arrival (block shuffle, displacement < window), duplicated
// delivery (a reconnecting sender replays its unacked tail), and
// drop-then-retry (a record misses its slot and arrives tens of positions
// later). Deterministic: the same seed always builds the same schedule.
func adversarialSchedule(recs []Record, seed uint64) (sched []Record, dups int) {
	st := seed
	next := func(mod int) int {
		st = st*6364136223846793005 + 1442695040888963407
		return int((st >> 33) % uint64(mod))
	}

	// Bounded out-of-order: Fisher-Yates within disjoint blocks of 8, so
	// no record moves more than 7 positions from its arrival slot.
	const window = 8
	shuffled := append([]Record(nil), recs...)
	for base := 0; base < len(shuffled); base += window {
		end := min(base+window, len(shuffled))
		for i := end - 1; i > base; i-- {
			j := base + next(i-base+1)
			shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
		}
	}

	// Drop-then-retry: every 13th record vacates its slot and re-arrives
	// 10–20 positions later. Work back to front so earlier reinsertions
	// don't shift the indexes still to be processed.
	for i := len(shuffled) - 13; i >= 0; i -= 13 {
		r := shuffled[i]
		rest := append([]Record(nil), shuffled[i+1:]...)
		shuffled = shuffled[:i]
		at := min(10+next(11), len(rest)) // 10..20 beyond the vacated slot
		shuffled = append(shuffled, rest[:at]...)
		shuffled = append(shuffled, r)
		shuffled = append(shuffled, rest[at:]...)
	}

	// Duplicates: every 9th record is redelivered ~5 positions later, the
	// at-least-once shape of a sender retrying after a dropped ack.
	// Insertions apply back to front so each precomputed position stays
	// valid; the earlier insertions shift both a duplicate and its
	// original by the same amount, keeping their distance ~5 slots.
	type insertion struct {
		pos int
		rec Record
	}
	var ins []insertion
	for i := len(shuffled) - 1; i >= 0; i -= 9 {
		ins = append(ins, insertion{pos: i + 5, rec: shuffled[i]})
		dups++
	}
	sched = append([]Record(nil), shuffled...)
	for _, d := range ins { // ins is already highest-position first
		pos := min(d.pos, len(sched))
		sched = append(sched[:pos], append([]Record{d.rec}, sched[pos:]...)...)
	}
	return sched, dups
}

// TestGoldenSurvivesAdversarialDelivery replays the golden corpus through
// the online engine + warehouse under adversarial delivery — bounded
// shuffle, duplication, drop-then-retry — and expects the warehouse to
// hold the byte-identical golden trip set the in-order replay produces
// (TestGoldenWarehouseOnlineIngest), with every duplicate collapsed and
// nothing dropped as late. Run under -race (CI does) this also hammers the
// engine's concurrent admission bookkeeping.
//
// FlushEvery exceeds the per-device record count on purpose. The engine's
// admission contract drops any record at or before sealedThrough+horizon —
// once a triplet seals, the reorder budget behind the watermark shrinks to
// whatever slack the seal left, which is data-dependent and can be near
// zero. A schedule that displaces records across a mid-feed seal is
// therefore *correctly* divergent (those drops are the contract, covered
// by TestLateRecordsDropped). Keeping the feed seal-free until Close keeps
// every displacement admissible and every duplicate collapsible, which is
// the strongest convergence claim the admission contract supports — and
// exactly the adversarial shapes (reconnect storms, retried batches)
// arrive inside a horizon in production.
func TestGoldenSurvivesAdversarialDelivery(t *testing.T) {
	if *updateGolden {
		t.Skip("golden file regenerating")
	}
	sys, ds := goldenSystem(t)
	var all []Record
	for _, seq := range ds.Sequences() {
		all = append(all, seq.Records...)
	}
	sort.SliceStable(all, func(i, j int) bool { return all[i].At.Before(all[j].At) })
	sched, dups := adversarialSchedule(all, 0xfeed)
	if len(sched) != len(all)+dups || dups == 0 {
		t.Fatalf("schedule has %d deliveries for %d records + %d duplicates", len(sched), len(all), dups)
	}

	w, err := NewWarehouse()
	if err != nil {
		t.Fatal(err)
	}
	sys.AttachWarehouse(w)
	eng, err := sys.NewOnline(OnlineConfig{
		Shards: 2, FlushEvery: 1024, FlushInterval: -1, IdleTimeout: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range sched {
		if err := eng.Ingest(r); err != nil {
			t.Fatal(err)
		}
	}
	eng.Close()

	st := eng.Stats()
	if st.Late != 0 {
		t.Errorf("Stats().Late = %d; the schedule's displacements stay inside the horizon, nothing may drop", st.Late)
	}
	if st.Duplicates != int64(dups) {
		t.Errorf("Stats().Duplicates = %d, want %d — every redelivery collapsed exactly once", st.Duplicates, dups)
	}
	if st.RecordsIn != int64(len(all)) {
		t.Errorf("Stats().RecordsIn = %d, want %d distinct records", st.RecordsIn, len(all))
	}

	got := make(map[DeviceID][]Triplet)
	for _, dev := range w.Devices() {
		page, err := w.Query(TripQuery{Device: dev})
		if err != nil {
			t.Fatal(err)
		}
		for _, tr := range page.Trips {
			got[tr.Device] = append(got[tr.Device], tr.Triplet)
		}
	}
	assertGolden(t, "warehouse after adversarial delivery", goldenBytes(t, got))
}

// TestOnlineMatchesBatchAdversarial is the interning differential test: on
// a venue with many regions and a gap-free population of many devices, the
// online pipeline — which carries region and device identity as interned
// small-integer ids end to end and materializes strings only at the
// emission boundary — must produce byte-identical JSON to the batch
// Translate path, under adversarial delivery (bounded shuffle, duplicates,
// drop-then-retry) across several schedule seeds. Run under -race (CI
// does) the concurrent shard flushes also exercise the intern table's
// locking. FlushEvery exceeds the per-device record count for the reason
// documented on TestGoldenSurvivesAdversarialDelivery: a seal-free feed
// keeps every displacement admissible, so convergence is exact.
func TestOnlineMatchesBatchAdversarial(t *testing.T) {
	model, err := BuildMall(MallSpec{Floors: 4, ShopsPerFloor: 8})
	if err != nil {
		t.Fatal(err)
	}
	sim := NewSim(model, 99)
	em := DefaultErrorModel()
	em.DropoutProb = 0
	start := time.Date(2017, 1, 1, 10, 0, 0, 0, time.UTC)
	ds, truths, err := sim.Population(12, start, time.Hour, em)
	if err != nil {
		t.Fatal(err)
	}
	sys := NewSystem(model)
	for _, es := range simul.TrainingSegments(ds, truths, 30) {
		for _, recs := range es.Segments {
			if err := sys.Editor().AddSegment(LabeledSegment{Event: es.Event, Device: recs[0].Device, Records: recs}); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := sys.Train(""); err != nil {
		t.Fatal(err)
	}

	batch, err := sys.Translate(ds)
	if err != nil {
		t.Fatal(err)
	}
	wantMap := make(map[DeviceID][]Triplet, len(batch))
	for _, r := range batch {
		wantMap[r.Device] = r.Final.Triplets
	}
	want := goldenBytes(t, wantMap)

	var all []Record
	maxPerDevice := 0
	for _, seq := range ds.Sequences() {
		all = append(all, seq.Records...)
		if seq.Len() > maxPerDevice {
			maxPerDevice = seq.Len()
		}
	}
	sort.SliceStable(all, func(i, j int) bool { return all[i].At.Before(all[j].At) })

	for _, seed := range []uint64{1, 0xbeef, 0x5eed} {
		t.Run(fmt.Sprintf("seed-%x", seed), func(t *testing.T) {
			sched, dups := adversarialSchedule(all, seed)
			var mu sync.Mutex
			got := make(map[DeviceID][]Triplet)
			eng, err := sys.NewOnline(OnlineConfig{
				Shards:        4,
				FlushEvery:    maxPerDevice + 1,
				FlushInterval: -1,
				IdleTimeout:   -1,
				Emitter: OnlineEmitterFunc(func(e OnlineResult) {
					mu.Lock()
					got[e.Device] = append(got[e.Device], e.Triplet)
					mu.Unlock()
				}),
			})
			if err != nil {
				t.Fatal(err)
			}
			for _, r := range sched {
				if err := eng.Ingest(r); err != nil {
					t.Fatal(err)
				}
			}
			eng.Close()

			st := eng.Stats()
			if st.Late != 0 || st.Duplicates != int64(dups) || st.RecordsIn != int64(len(all)) {
				t.Errorf("admission bookkeeping diverged: late=%d dups=%d (want %d) in=%d (want %d)",
					st.Late, st.Duplicates, dups, st.RecordsIn, len(all))
			}
			if gotBytes := goldenBytes(t, got); !bytes.Equal(gotBytes, want) {
				t.Errorf("online output diverges from batch Translate (%d vs %d bytes)", len(gotBytes), len(want))
			}
		})
	}
}
