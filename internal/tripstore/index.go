package tripstore

import (
	"sort"
	"time"
)

// posting is one index list: trip refs in the global (From, Device, Seq)
// order. Order maintenance is amortized: add appends and extends the clean
// prefix when the append is already in order (the common case — producers
// emit per-device timelines forward); an out-of-order append leaves the
// list dirty and the next reader sorts once. The refs share the Trip
// allocations with every other index, so a posting costs one pointer per
// trip.
type posting struct {
	refs  []*Trip
	clean int // length of the prefix known to be in order
}

func (p *posting) add(t *Trip) {
	if p.clean == len(p.refs) &&
		(len(p.refs) == 0 || !t.key().less(p.refs[len(p.refs)-1].key())) {
		p.clean++
	}
	p.refs = append(p.refs, t)
}

// dirty reports whether the list has an unsorted suffix.
func (p *posting) dirty() bool { return p.clean < len(p.refs) }

// sorted restores the global order; callers hold the warehouse write
// lock. Cost is O(d·log d + n) for a dirty suffix of length d — the
// suffix sorts alone and merges into the clean prefix — so steady
// ingest-then-query traffic pays linear pointer moves, not a full
// re-sort.
func (p *posting) sorted() {
	if !p.dirty() {
		return
	}
	suffix := p.refs[p.clean:]
	sort.Slice(suffix, func(i, j int) bool {
		return suffix[i].key().less(suffix[j].key())
	})
	if p.clean > 0 {
		// Everything before the suffix's smallest key is already in
		// place; merge only the overlapping tail of the clean prefix.
		lo := sort.Search(p.clean, func(i int) bool {
			return suffix[0].key().less(p.refs[i].key())
		})
		merged := make([]*Trip, 0, len(p.refs)-lo)
		i, j := lo, 0
		for i < p.clean && j < len(suffix) {
			if suffix[j].key().less(p.refs[i].key()) {
				merged = append(merged, suffix[j])
				j++
			} else {
				merged = append(merged, p.refs[i])
				i++
			}
		}
		merged = append(merged, p.refs[i:p.clean]...)
		merged = append(merged, suffix[j:]...)
		copy(p.refs[lo:], merged)
	}
	p.clean = len(p.refs)
}

// span returns the half-open index range [lo, hi) of refs that can overlap
// the period [since, until), using the interval-index bound: a trip lasts
// at most maxDur, so an overlapping trip's From lies in [since−maxDur,
// until). Zero since/until leave the respective side unbounded. The posting
// must be sorted.
func (p *posting) span(since, until time.Time, maxDur time.Duration) (lo, hi int) {
	n := len(p.refs)
	lo, hi = 0, n
	if !since.IsZero() {
		floor := since.Add(-maxDur)
		lo = sort.Search(n, func(i int) bool { return !p.refs[i].Triplet.From.Before(floor) })
	}
	if !until.IsZero() {
		hi = sort.Search(n, func(i int) bool { return !p.refs[i].Triplet.From.Before(until) })
	}
	if lo > hi {
		lo = hi
	}
	return lo, hi
}

// seek returns the first index whose key is strictly greater than k (the
// pagination resume point). The posting must be sorted.
func (p *posting) seek(k key) int {
	return sort.Search(len(p.refs), func(i int) bool { return k.less(p.refs[i].key()) })
}

// seekFrom returns the first index whose From is strictly after t (the
// replay-frontier resume point). Because the global order sorts by From
// first, every ref at or past the returned index satisfies the StartAfter
// predicate — no residual filtering needed. The posting must be sorted.
func (p *posting) seekFrom(t time.Time) int {
	return sort.Search(len(p.refs), func(i int) bool { return p.refs[i].Triplet.From.After(t) })
}
