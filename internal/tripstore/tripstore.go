// Package tripstore is the queryable trip warehouse of TRIPS: an indexed,
// concurrency-safe store for translated trips, realizing the paper's Sec. 4
// backend — translation results "stored in the backend for the reuse in
// other translation tasks in the same indoor space" — as something heavy
// read traffic can actually hit.
//
// # Data model
//
// The unit is a Trip: one finalized mobility-semantics triplet identified
// by (device, start instant) — a device's timeline has at most one trip
// starting at any instant, whichever producer emitted it. Both producers
// feed the same ingest path: the batch Translator's per-device results
// (IngestResult / IngestSequence) and the online engine's sealed emissions
// (Emitter fans them straight in). Duplicate keys are ignored (first write
// wins), which makes replay, re-ingestion, at-least-once emitters, and
// batch/online double-translation of the same records idempotent, while
// per-producer sequence numbers (which restart per engine epoch) never
// collide across producers.
//
// # In-memory layer
//
// Three indexes answer every query without a full scan:
//
//   - per-device partitions holding time-ordered triplet runs,
//   - a per-region inverted posting list (by RegionID and by semantic tag),
//   - a global interval index over trip time spans: a From-ordered list
//     plus the maximum trip duration, so the trips overlapping [since,
//     until) all lie in the From-window [since−maxDur, until), found by
//     binary search.
//
// Index order maintenance is amortized: ingest appends and marks the index
// dirty; the next query sorts once. All indexes share one global order
// (From, Device, Seq), so pagination cursors are stable across plans.
//
// # Durability layer
//
// An optional append-only segment log rides on internal/storage: ingested
// trips buffer in memory and flush as batched JSON segment documents;
// Snapshot writes the full state and truncates the covered segments. Open
// replays snapshot + segments, so a reopened warehouse answers every query
// identically.
package tripstore

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"trips/internal/core"
	"trips/internal/obs/trace"
	"trips/internal/online"
	"trips/internal/position"
	"trips/internal/semantics"
)

// Trip is one warehoused mobility-semantics triplet. Seq is the triplet's
// position in its producer's output (the online engine's emission index,
// or the index within a batch result's final sequence); identity for
// dedupe is (Device, Triplet.From), since producer sequence numbers
// restart per epoch.
type Trip struct {
	Device  position.DeviceID `json:"device"`
	Seq     int               `json:"seq"`
	Triplet semantics.Triplet `json:"triplet"`
}

// key orders trips globally by (From, Device, Seq); every index shares this
// order, so pagination cursors remain valid across query plans.
type key struct {
	from time.Time
	dev  position.DeviceID
	seq  int
}

func (t *Trip) key() key { return key{t.Triplet.From, t.Device, t.Seq} }

func (k key) less(o key) bool {
	if !k.from.Equal(o.from) {
		return k.from.Before(o.from)
	}
	if k.dev != o.dev {
		return k.dev < o.dev
	}
	return k.seq < o.seq
}

// Options configures a Warehouse.
type Options struct {
	// Log enables the durability layer; nil keeps the warehouse
	// memory-only.
	Log *LogOptions

	// Metrics receives segment-write, snapshot, and query latency
	// observations; nil disables them.
	Metrics *Metrics

	// Tracer records a warehouse_append span for every traced emission the
	// Emitter files (see online.Emission.Trace); nil disables it.
	Tracer *trace.Tracer
}

// ErrClosed is returned by operations on a closed warehouse.
var ErrClosed = errors.New("tripstore: warehouse closed")

// Warehouse is the indexed trip store. Safe for concurrent use: ingest
// takes the write lock, queries the read lock.
type Warehouse struct {
	mu     sync.RWMutex
	closed bool

	parts    map[position.DeviceID]*partition
	byID     map[string]*posting // inverted: RegionID → trips
	byTag    map[string]*posting // inverted: semantic tag → trips
	byTime   posting             // interval index over all trips
	maxDur   time.Duration       // longest trip span seen (interval bound)
	total    int
	dupes    int
	inferred int
	// droppedEmits counts emitter deliveries lost to a closed warehouse
	// (the engine outlived it) — zero in a correctly ordered shutdown.
	droppedEmits int

	log     *segmentLog   // nil = memory-only
	metrics *Metrics      // nil = uninstrumented
	tracer  *trace.Tracer // nil = untraced
	// inflight counts detached batches whose disk write is still running;
	// Close waits for them so a failed write's requeued batch is retried
	// by Close itself rather than stranded after a nil return.
	inflight sync.WaitGroup
}

// New returns an open warehouse. With Options.Log set it opens the segment
// log and replays the persisted state (snapshot, then remaining segments).
func New(opts Options) (*Warehouse, error) {
	w := &Warehouse{
		parts:   make(map[position.DeviceID]*partition),
		byID:    make(map[string]*posting),
		byTag:   make(map[string]*posting),
		metrics: opts.Metrics,
		tracer:  opts.Tracer,
	}
	if opts.Log != nil {
		log, err := openSegmentLog(*opts.Log)
		if err != nil {
			return nil, err
		}
		w.log = log
		if err := log.replay(func(t Trip) { w.insert(t) }); err != nil {
			return nil, err
		}
	}
	return w, nil
}

// instant is the dedupe component of a trip's identity: an exact wall
// clock reading, overflow-free for any time.Time (unlike UnixNano).
type instant struct {
	sec  int64
	nsec int
}

func instantOf(t time.Time) instant { return instant{t.Unix(), t.Nanosecond()} }

// partition is one device's time-ordered triplet run.
type partition struct {
	posting
	seen map[instant]bool // start-instant dedupe
}

// Insert files one trip into every index and, when the log is enabled,
// appends it to the pending segment. A duplicate (Device, Triplet.From)
// is counted and dropped. Inserting into a closed warehouse returns
// ErrClosed. Disk writes (one per full batch) happen outside the
// warehouse lock, so queries never wait on I/O.
func (w *Warehouse) Insert(t Trip) error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return ErrClosed
	}
	if !w.insert(t) || w.log == nil {
		w.mu.Unlock()
		return nil
	}
	w.log.pending = append(w.log.pending, t)
	var batch []Trip
	var seq int
	if len(w.log.pending) >= w.log.batch {
		batch, seq = w.log.detach()
		w.inflight.Add(1)
	}
	w.mu.Unlock()
	if batch == nil {
		return nil
	}
	defer w.inflight.Done()
	return w.writeSegment(seq, batch)
}

// writeSegment performs the off-lock disk write of a detached batch,
// requeueing it for retry on failure. The live-segment counter tracks
// successful writes only, so abandoned segment numbers never inflate it.
func (w *Warehouse) writeSegment(seq int, batch []Trip) error {
	var start time.Time
	if w.metrics != nil {
		//trips:allow wallclock: segment-write latency metric
		start = time.Now()
	}
	err := w.log.writeSegment(seq, batch)
	if w.metrics != nil {
		w.metrics.SegmentWriteSeconds.ObserveSince(start)
	}
	w.mu.Lock()
	if err != nil {
		w.log.requeue(batch)
	} else {
		w.log.segments++
	}
	w.mu.Unlock()
	return err
}

// insert files the trip in memory only; callers hold the write lock. It
// reports whether the trip was new.
func (w *Warehouse) insert(t Trip) bool {
	p := w.parts[t.Device]
	if p == nil {
		p = &partition{seen: make(map[instant]bool)}
		w.parts[t.Device] = p
	}
	at := instantOf(t.Triplet.From)
	if p.seen[at] {
		w.dupes++
		return false
	}
	p.seen[at] = true

	tp := new(Trip)
	*tp = t
	p.add(tp)
	w.byTime.add(tp)
	if id := string(t.Triplet.RegionID); id != "" {
		w.postingFor(w.byID, id).add(tp)
	}
	if tag := t.Triplet.Region; tag != "" {
		w.postingFor(w.byTag, tag).add(tp)
	}
	if d := t.Triplet.Duration(); d > w.maxDur {
		w.maxDur = d
	}
	if t.Triplet.Inferred {
		w.inferred++
	}
	w.total++
	return true
}

func (w *Warehouse) postingFor(m map[string]*posting, k string) *posting {
	p := m[k]
	if p == nil {
		p = new(posting)
		m[k] = p
	}
	return p
}

// IngestResult files every triplet of a batch translation result,
// implementing core.ResultSink.
func (w *Warehouse) IngestResult(r core.Result) error {
	if r.Final == nil {
		return nil
	}
	return w.IngestSequence(r.Device, r.Final)
}

// IngestSequence files a whole semantics sequence for a device; Seq is the
// triplet's index within the sequence.
func (w *Warehouse) IngestSequence(dev position.DeviceID, s *semantics.Sequence) error {
	for i, t := range s.Triplets {
		if err := w.Insert(Trip{Device: dev, Seq: i, Triplet: t}); err != nil {
			return err
		}
	}
	return nil
}

// Emitter returns an online.Emitter that fans every sealed emission into
// the warehouse and forwards it to next (which may be nil). Closing the
// returned emitter — the online engine does on shutdown — flushes the
// warehouse's pending segment and closes next if it is closable; the
// warehouse itself stays open.
func (w *Warehouse) Emitter(next online.Emitter) online.Emitter {
	return &storeEmitter{w: w, next: next}
}

type storeEmitter struct {
	w    *Warehouse
	next online.Emitter
}

func (se *storeEmitter) Emit(e online.Emission) {
	// Inert unless the emission carries a sampled trace context (the
	// sealing flush's seal span).
	sp := se.w.tracer.Start(e.Trace, "warehouse_append")
	sp.SetDevice(string(e.Device))
	// The engine's contract has no error path. A failed segment write
	// requeues its batch (the data surfaces on a later Flush/Close), but
	// an emission after Warehouse.Close is genuinely lost — close the
	// engine before the warehouse; DroppedEmissions counts violations.
	if err := se.w.Insert(Trip{Device: e.Device, Seq: e.Seq, Triplet: e.Triplet}); err != nil {
		sp.SetErr()
		se.w.mu.Lock()
		se.w.droppedEmits++
		se.w.mu.Unlock()
	}
	sp.End()
	if se.next != nil {
		se.next.Emit(e)
	}
}

// FinalizeSession forwards the engine's idle-finalize signal down the tee
// chain (the analytics tee consumes it); the warehouse itself keeps every
// sealed trip regardless of whether its device is gone.
func (se *storeEmitter) FinalizeSession(dev position.DeviceID, at time.Time) {
	if f, ok := se.next.(online.SessionFinalizer); ok {
		f.FinalizeSession(dev, at)
	}
}

// Close implements io.Closer so online.Engine.Close flushes the warehouse's
// pending segment when the engine shuts down.
func (se *storeEmitter) Close() error {
	err := se.w.Flush()
	if c, ok := se.next.(interface{ Close() error }); ok {
		if cerr := c.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// Flush forces the pending segment to disk (outside the warehouse lock).
// A no-op for memory-only warehouses.
func (w *Warehouse) Flush() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return ErrClosed
	}
	if w.log == nil {
		w.mu.Unlock()
		return nil
	}
	batch, seq := w.log.detach()
	if batch != nil {
		w.inflight.Add(1)
	}
	w.mu.Unlock()
	if batch == nil {
		return nil
	}
	defer w.inflight.Done()
	return w.writeSegment(seq, batch)
}

// Snapshot persists the full warehouse state as one snapshot document and
// truncates the segments it covers, bounding replay work at the next
// Open. Only the in-memory dump happens under the warehouse lock; the
// disk writes do not block ingest or queries. Trips inserted while the
// snapshot is writing land in segments past the covered frontier and
// survive replay.
func (w *Warehouse) Snapshot() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return ErrClosed
	}
	if w.log == nil {
		w.mu.Unlock()
		return fmt.Errorf("tripstore: snapshot of a memory-only warehouse")
	}
	batch, seq := w.log.detach()
	if batch != nil {
		w.inflight.Add(1)
	}
	w.byTime.sorted() // snapshot in global order for deterministic files
	dump := make([]Trip, len(w.byTime.refs))
	for i, tp := range w.byTime.refs {
		dump[i] = *tp
	}
	covered := w.log.next - 1
	w.mu.Unlock()

	if batch != nil {
		err := w.writeSegment(seq, batch)
		w.inflight.Done()
		if err != nil {
			return err
		}
	}
	var snapStart time.Time
	if w.metrics != nil {
		//trips:allow wallclock: snapshot-write latency metric
		snapStart = time.Now()
	}
	deleted, err := w.log.writeSnapshot(covered, dump)
	if w.metrics != nil {
		w.metrics.SnapshotWriteSeconds.ObserveSince(snapStart)
	}
	if err != nil {
		return err
	}
	w.mu.Lock()
	// Truncation may also sweep leftovers from a pre-crash generation
	// that the counter never saw; clamp instead of going negative.
	if w.log.segments -= deleted; w.log.segments < 0 {
		w.log.segments = 0
	}
	w.mu.Unlock()
	return nil
}

// Close flushes pending writes and marks the warehouse closed. Further
// inserts, queries and flushes return ErrClosed. Close waits for in-flight
// segment writes first, so a batch requeued by a concurrent write failure
// is flushed (or reported) by Close itself, and Close is retryable: while
// any batch remains unwritten, Close keeps returning the write error
// rather than success over lost data.
func (w *Warehouse) Close() error {
	w.mu.Lock()
	w.closed = true
	if w.log == nil {
		w.mu.Unlock()
		return nil
	}
	w.mu.Unlock()
	w.inflight.Wait() // failed concurrent writes requeue before this returns
	w.mu.Lock()
	batch, seq := w.log.detach()
	w.mu.Unlock()
	if batch == nil {
		return nil
	}
	return w.writeSegment(seq, batch)
}

// Stats describes the warehouse contents.
type Stats struct {
	Trips      int `json:"trips"`
	Devices    int `json:"devices"`
	Regions    int `json:"regions"` // distinct region IDs indexed
	Inferred   int `json:"inferred"`
	Duplicates int `json:"duplicates"`
	// DroppedEmissions counts online emissions that arrived after Close
	// and were lost; nonzero means the engine outlived the warehouse.
	DroppedEmissions int `json:"droppedEmissions,omitempty"`
	// Segments is the number of un-snapshotted log segments on disk;
	// PendingLog the buffered trips not yet in any segment. Both are zero
	// for memory-only warehouses.
	Segments   int `json:"segments"`
	PendingLog int `json:"pendingLog"`
	// MaxTripSpan is the longest trip duration seen, the interval-index
	// search bound.
	MaxTripSpan time.Duration `json:"maxTripSpan"`
}

// Stats snapshots the warehouse counters.
func (w *Warehouse) Stats() Stats {
	w.mu.RLock()
	defer w.mu.RUnlock()
	st := Stats{
		Trips:            w.total,
		Devices:          len(w.parts),
		Regions:          len(w.byID),
		Inferred:         w.inferred,
		Duplicates:       w.dupes,
		DroppedEmissions: w.droppedEmits,
		MaxTripSpan:      w.maxDur,
	}
	if w.log != nil {
		st.Segments = w.log.segments
		st.PendingLog = len(w.log.pending)
	}
	return st
}

// Devices returns the warehoused device IDs, sorted.
func (w *Warehouse) Devices() []position.DeviceID {
	w.mu.RLock()
	defer w.mu.RUnlock()
	out := make([]position.DeviceID, 0, len(w.parts))
	//trips:commutative key collection; iteration order is erased by the sort below
	for dev := range w.parts {
		out = append(out, dev)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Regions returns the distinct region IDs with at least one trip, sorted.
func (w *Warehouse) Regions() []string {
	w.mu.RLock()
	defer w.mu.RUnlock()
	out := make([]string, 0, len(w.byID))
	//trips:commutative key collection; iteration order is erased by the sort below
	for id := range w.byID {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}
