package tripstore

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"trips/internal/dsm"
	"trips/internal/online"
	"trips/internal/position"
	"trips/internal/semantics"
	"trips/internal/storage"
)

var t0 = time.Date(2017, 1, 1, 10, 0, 0, 0, time.UTC)

// emitterFunc adapts a no-arg callback to online.Emitter for tee tests.
type emitterFunc func()

func (f emitterFunc) Emit(online.Emission) { f() }

// emission builds a minimal online emission.
func emission(dev string, seq int, from time.Duration) online.Emission {
	return online.Emission{
		Device: position.DeviceID(dev),
		Seq:    seq,
		Triplet: semantics.Triplet{
			Event:  semantics.EventStay,
			Region: "nike",
			From:   t0.Add(from),
			To:     t0.Add(from + 30*time.Second),
		},
	}
}

// trip builds a test trip: device dev, per-device seq, region tag/id r,
// period [t0+from, t0+from+dur).
func trip(dev string, seq int, r string, from, dur time.Duration) Trip {
	return Trip{
		Device: position.DeviceID(dev),
		Seq:    seq,
		Triplet: semantics.Triplet{
			Event:    semantics.EventStay,
			Region:   r,
			RegionID: dsm.RegionID("id-" + r),
			From:     t0.Add(from),
			To:       t0.Add(from + dur),
		},
	}
}

func mustInsert(t *testing.T, w *Warehouse, trips ...Trip) {
	t.Helper()
	for _, tr := range trips {
		if err := w.Insert(tr); err != nil {
			t.Fatal(err)
		}
	}
}

func memWarehouse(t *testing.T) *Warehouse {
	t.Helper()
	w, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// queryDevices extracts "dev/seq" keys from a page for compact assertions.
func keysOf(p Page) []string {
	if len(p.Trips) == 0 {
		return nil
	}
	out := make([]string, 0, len(p.Trips))
	for _, tr := range p.Trips {
		out = append(out, string(tr.Device)+"/"+string(rune('0'+tr.Seq)))
	}
	return out
}

func TestInsertDedupeAndStats(t *testing.T) {
	w := memWarehouse(t)
	a := trip("a", 0, "nike", 0, 5*time.Minute)
	mustInsert(t, w, a, trip("a", 1, "hall", 6*time.Minute, time.Minute), a) // dup
	mustInsert(t, w, trip("b", 0, "nike", 2*time.Minute, 10*time.Minute))

	st := w.Stats()
	if st.Trips != 3 || st.Devices != 2 || st.Duplicates != 1 {
		t.Errorf("stats = %+v, want 3 trips, 2 devices, 1 dup", st)
	}
	if st.Regions != 2 {
		t.Errorf("regions = %d, want 2", st.Regions)
	}
	if st.MaxTripSpan != 10*time.Minute {
		t.Errorf("maxTripSpan = %s, want 10m", st.MaxTripSpan)
	}
	if got := w.Devices(); !reflect.DeepEqual(got, []position.DeviceID{"a", "b"}) {
		t.Errorf("devices = %v", got)
	}
	if got := w.Regions(); !reflect.DeepEqual(got, []string{"id-hall", "id-nike"}) {
		t.Errorf("regions = %v", got)
	}
}

func TestQueryPredicates(t *testing.T) {
	w := memWarehouse(t)
	mustInsert(t, w,
		trip("a", 0, "nike", 0, 5*time.Minute),
		trip("a", 1, "hall", 6*time.Minute, time.Minute),
		trip("b", 0, "nike", 2*time.Minute, 10*time.Minute),
		trip("b", 1, "adidas", 15*time.Minute, 5*time.Minute),
	)
	inferred := trip("b", 2, "hall", 21*time.Minute, time.Minute)
	inferred.Triplet.Inferred = true
	inferred.Triplet.Event = semantics.EventPassBy
	mustInsert(t, w, inferred)

	cases := []struct {
		name string
		spec QuerySpec
		want []string
	}{
		{"all", QuerySpec{}, []string{"a/0", "b/0", "a/1", "b/1", "b/2"}},
		{"device", QuerySpec{Device: "a"}, []string{"a/0", "a/1"}},
		{"region-tag", QuerySpec{Region: "nike"}, []string{"a/0", "b/0"}},
		{"region-id", QuerySpec{RegionID: "id-nike"}, []string{"a/0", "b/0"}},
		{"event", QuerySpec{Event: semantics.EventPassBy}, []string{"b/2"}},
		{"inferred", QuerySpec{Inferred: boolPtr(true)}, []string{"b/2"}},
		{"observed-device", QuerySpec{Device: "b", Inferred: boolPtr(false)}, []string{"b/0", "b/1"}},
		// Overlap semantics: [4m, 7m) catches a/0 (ends 5m), b/0 (spans),
		// a/1 (starts 6m) but not b/1 (starts 15m).
		{"time-overlap", QuerySpec{Since: t0.Add(4 * time.Minute), Until: t0.Add(7 * time.Minute)},
			[]string{"a/0", "b/0", "a/1"}},
		{"time-exact-end-excluded", QuerySpec{Since: t0.Add(5 * time.Minute), Until: t0.Add(6 * time.Minute)},
			[]string{"b/0"}},
		{"since-only", QuerySpec{Since: t0.Add(16 * time.Minute)}, []string{"b/1", "b/2"}},
		{"until-only", QuerySpec{Until: t0.Add(2 * time.Minute)}, []string{"a/0"}},
		{"region-and-time", QuerySpec{Region: "nike", Since: t0.Add(6 * time.Minute)}, []string{"b/0"}},
		{"empty-range", QuerySpec{Since: t0.Add(time.Hour), Until: t0.Add(time.Hour)}, nil},
		{"unknown-device", QuerySpec{Device: "ghost"}, nil},
		{"unknown-region", QuerySpec{Region: "ghost"}, nil},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			page, err := w.Query(tc.spec)
			if err != nil {
				t.Fatal(err)
			}
			if got := keysOf(page); !reflect.DeepEqual(got, tc.want) {
				t.Errorf("got %v, want %v", got, tc.want)
			}
		})
	}
}

func boolPtr(b bool) *bool { return &b }

// TestDedupeByStartInstantNotSeq pins the identity rule: producer
// sequence numbers restart per epoch (the online engine after a restart,
// batch results starting at 0), so two trips sharing a seq but starting
// at different instants are both real, while re-translations of the same
// timeline dedupe on the start instant whatever their seq says.
func TestDedupeByStartInstantNotSeq(t *testing.T) {
	w := memWarehouse(t)
	mustInsert(t, w, trip("a", 0, "nike", 0, time.Minute)) // batch epoch
	// Online epoch for the same device: seq restarts at 0 but the trip is
	// genuinely new — it must be stored, not dropped as a duplicate.
	mustInsert(t, w, trip("a", 0, "hall", 10*time.Minute, time.Minute))
	if st := w.Stats(); st.Trips != 2 || st.Duplicates != 0 {
		t.Errorf("seq collision across epochs dropped a trip: %+v", st)
	}
	// Re-translation of the same timeline: same start instant, different
	// seq — a duplicate.
	mustInsert(t, w, trip("a", 7, "nike", 0, time.Minute))
	if st := w.Stats(); st.Trips != 2 || st.Duplicates != 1 {
		t.Errorf("same-instant re-translation not deduped: %+v", st)
	}
}

func TestQueryUsesIndexNotFullScan(t *testing.T) {
	w := memWarehouse(t)
	// 100 devices × 10 trips, one device in region "rare" once.
	for d := 0; d < 100; d++ {
		dev := position.DeviceID(fmt.Sprintf("d%02d", d))
		for s := 0; s < 10; s++ {
			tr := trip(string(dev), s, "common", time.Duration(s)*time.Minute, 30*time.Second)
			if d == 42 && s == 5 {
				tr.Triplet.Region = "rare"
				tr.Triplet.RegionID = "id-rare"
			}
			mustInsert(t, w, tr)
		}
	}
	page, err := w.Query(QuerySpec{Region: "rare"})
	if err != nil {
		t.Fatal(err)
	}
	if len(page.Trips) != 1 {
		t.Fatalf("got %d trips, want 1", len(page.Trips))
	}
	if page.Scanned != 1 {
		t.Errorf("region query scanned %d entries, want 1 (posting list, not full scan)", page.Scanned)
	}

	// Device query scans only that partition.
	page, err = w.Query(QuerySpec{Device: "d42"})
	if err != nil {
		t.Fatal(err)
	}
	if len(page.Trips) != 10 || page.Scanned != 10 {
		t.Errorf("device query: %d trips, scanned %d; want 10/10", len(page.Trips), page.Scanned)
	}

	// Time query scans only the candidate From-window, not all 1000.
	page, err = w.Query(QuerySpec{Since: t0.Add(9 * time.Minute), Until: t0.Add(10 * time.Minute)})
	if err != nil {
		t.Fatal(err)
	}
	if len(page.Trips) != 100 {
		t.Errorf("time query returned %d trips, want 100", len(page.Trips))
	}
	if page.Scanned >= 1000 {
		t.Errorf("time query scanned %d of 1000 entries — interval index not applied", page.Scanned)
	}
}

func TestQueryPagination(t *testing.T) {
	w := memWarehouse(t)
	// Interleave two devices so global order alternates.
	for s := 0; s < 5; s++ {
		mustInsert(t, w,
			trip("a", s, "nike", time.Duration(2*s)*time.Minute, time.Minute),
			trip("b", s, "nike", time.Duration(2*s+1)*time.Minute, time.Minute),
		)
	}
	var got []string
	spec := QuerySpec{Limit: 3}
	pages := 0
	for {
		page, err := w.Query(spec)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, keysOf(page)...)
		pages++
		if page.Next == "" {
			break
		}
		if len(page.Trips) != 3 {
			t.Fatalf("non-final page has %d trips, want 3", len(page.Trips))
		}
		spec.Cursor = page.Next
	}
	want := []string{"a/0", "b/0", "a/1", "b/1", "a/2", "b/2", "a/3", "b/3", "a/4", "b/4"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("paginated walk = %v, want %v", got, want)
	}
	if pages != 4 {
		t.Errorf("took %d pages, want 4 (3+3+3+1)", pages)
	}

	// Bad cursors error instead of restarting silently.
	if _, err := w.Query(QuerySpec{Cursor: "???"}); err == nil {
		t.Error("garbage cursor accepted")
	}
	if _, err := w.Query(QuerySpec{Cursor: "djJ8MXwxfGE"}); err == nil { // "v2|1|1|a"
		t.Error("wrong-version cursor accepted")
	}
}

// TestQueryOutOfOrderIngest exercises the amortized sort: trips inserted in
// reverse still query in global order.
func TestQueryOutOfOrderIngest(t *testing.T) {
	w := memWarehouse(t)
	for s := 4; s >= 0; s-- {
		mustInsert(t, w, trip("a", s, "nike", time.Duration(s)*time.Minute, time.Minute))
	}
	page, err := w.Query(QuerySpec{})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"a/0", "a/1", "a/2", "a/3", "a/4"}
	if got := keysOf(page); !reflect.DeepEqual(got, want) {
		t.Errorf("got %v, want %v", got, want)
	}
	// Mixed: more out-of-order inserts after the sort, then re-query.
	mustInsert(t, w, trip("b", 1, "nike", 30*time.Second, time.Minute))
	mustInsert(t, w, trip("b", 0, "nike", 10*time.Second, time.Minute))
	page, err = w.Query(QuerySpec{Region: "nike", Limit: 3})
	if err != nil {
		t.Fatal(err)
	}
	if got := keysOf(page); !reflect.DeepEqual(got, []string{"a/0", "b/0", "b/1"}) {
		t.Errorf("after reindex got %v", got)
	}
}

func TestIngestSequence(t *testing.T) {
	w := memWarehouse(t)
	seq := semantics.NewSequence("dev")
	seq.Append(semantics.Triplet{Event: semantics.EventStay, Region: "nike", From: t0, To: t0.Add(time.Minute)})
	seq.Append(semantics.Triplet{Event: semantics.EventPassBy, Region: "hall", From: t0.Add(2 * time.Minute), To: t0.Add(3 * time.Minute)})
	if err := w.IngestSequence("dev", seq); err != nil {
		t.Fatal(err)
	}
	page, err := w.Query(QuerySpec{Device: "dev"})
	if err != nil {
		t.Fatal(err)
	}
	if len(page.Trips) != 2 || page.Trips[0].Seq != 0 || page.Trips[1].Seq != 1 {
		t.Errorf("ingested sequence mismatch: %+v", page.Trips)
	}
	// Re-ingestion is idempotent.
	if err := w.IngestSequence("dev", seq); err != nil {
		t.Fatal(err)
	}
	if st := w.Stats(); st.Trips != 2 || st.Duplicates != 2 {
		t.Errorf("after re-ingest stats = %+v", st)
	}
}

func TestDurabilityReopen(t *testing.T) {
	dir := t.TempDir()
	open := func() *Warehouse {
		st, err := storage.Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		w, err := New(Options{Log: &LogOptions{Store: st, BatchSize: 4}})
		if err != nil {
			t.Fatal(err)
		}
		return w
	}

	w := open()
	var all []Trip
	for s := 0; s < 10; s++ { // 10 trips, batch 4 → 2 sealed segments + 2 pending
		tr := trip("a", s, "nike", time.Duration(s)*time.Minute, time.Minute)
		all = append(all, tr)
		mustInsert(t, w, tr)
	}
	if st := w.Stats(); st.Segments != 2 || st.PendingLog != 2 {
		t.Fatalf("stats = %+v, want 2 segments + 2 pending", st)
	}
	if err := w.Close(); err != nil { // Close flushes the pending tail
		t.Fatal(err)
	}
	if err := w.Insert(all[0]); err != ErrClosed {
		t.Errorf("insert after close = %v, want ErrClosed", err)
	}
	if _, err := w.Query(QuerySpec{}); err != ErrClosed {
		t.Errorf("query after close = %v, want ErrClosed", err)
	}

	spec := QuerySpec{Region: "nike", Since: t0.Add(3 * time.Minute), Until: t0.Add(8 * time.Minute)}
	w2 := open()
	page, err := w2.Query(spec)
	if err != nil {
		t.Fatal(err)
	}
	// Trips 3..7 overlap [3m, 8m): trip 2 ends exactly at 3m and the
	// range is half-open, so it is out.
	if len(page.Trips) != 5 {
		t.Fatalf("reopened query got %d trips, want 5: %v", len(page.Trips), keysOf(page))
	}
	if st := w2.Stats(); st.Trips != 10 || st.Duplicates != 0 {
		t.Errorf("reopened stats = %+v, want 10 trips, 0 dupes", st)
	}

	// Snapshot compacts: segments fold into the snapshot document.
	if err := w2.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if st := w2.Stats(); st.Segments != 0 {
		t.Errorf("segments after snapshot = %d, want 0", st.Segments)
	}
	mustInsert(t, w2, trip("b", 0, "adidas", 20*time.Minute, time.Minute))
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}

	// Third generation: snapshot + post-snapshot segment replay together.
	w3 := open()
	defer w3.Close()
	if st := w3.Stats(); st.Trips != 11 {
		t.Fatalf("third-generation trips = %d, want 11", st.Trips)
	}
	page3, err := w3.Query(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(page3.Trips, page.Trips) {
		t.Errorf("reopened warehouse answers differently:\nfirst:  %v\nsecond: %v",
			keysOf(page), keysOf(page3))
	}
}

func TestSnapshotMemoryOnlyErrors(t *testing.T) {
	w := memWarehouse(t)
	if err := w.Snapshot(); err == nil {
		t.Error("snapshot of memory-only warehouse succeeded")
	}
	if err := w.Flush(); err != nil {
		t.Errorf("flush of memory-only warehouse: %v", err)
	}
}

func TestEmitterTee(t *testing.T) {
	w := memWarehouse(t)
	var forwarded int
	em := w.Emitter(emitterFunc(func() { forwarded++ }))
	for s := 0; s < 3; s++ {
		em.Emit(emission("dev", s, time.Duration(s)*time.Minute))
	}
	if forwarded != 3 {
		t.Errorf("forwarded %d emissions, want 3", forwarded)
	}
	if st := w.Stats(); st.Trips != 3 {
		t.Errorf("warehoused %d trips, want 3", st.Trips)
	}
	if c, ok := em.(interface{ Close() error }); !ok {
		t.Error("store emitter is not closable")
	} else if err := c.Close(); err != nil {
		t.Error(err)
	}
	// Nil downstream works too.
	em2 := w.Emitter(nil)
	em2.Emit(emission("dev2", 0, 0))
	if st := w.Stats(); st.Trips != 4 {
		t.Errorf("nil-downstream emit lost: %+v", w.Stats())
	}
}

// TestQueryStartAfter covers the frontier-bounded replay predicate: only
// trips whose From is strictly later than the frontier come back, the
// index span is cut by binary search (no prefix scan), and the predicate
// composes with device partitions and pagination.
func TestQueryStartAfter(t *testing.T) {
	w, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	const n = 50
	for i := 0; i < n; i++ {
		mustInsert(t, w, trip("a", i, "nike", time.Duration(2*i)*time.Minute, time.Minute))
		mustInsert(t, w, trip("b", i, "hall", time.Duration(2*i+1)*time.Minute, time.Minute))
	}
	frontier := t0.Add(60 * time.Minute) // device a's trip 30 starts here

	// Device partition: strictly-after semantics resume past the frontier
	// trip itself.
	page, err := w.Query(QuerySpec{Device: "a", StartAfter: frontier})
	if err != nil {
		t.Fatal(err)
	}
	if len(page.Trips) != n-31 {
		t.Fatalf("device tail = %d trips, want %d", len(page.Trips), n-31)
	}
	for _, tr := range page.Trips {
		if !tr.Triplet.From.After(frontier) {
			t.Errorf("trip at %v not after the frontier", tr.Triplet.From)
		}
	}
	// The span cut does the work: nothing before the frontier is scanned.
	if page.Scanned != len(page.Trips) {
		t.Errorf("scanned %d entries for %d hits — frontier not applied by binary search", page.Scanned, len(page.Trips))
	}

	// Global order, paginated: both devices interleaved, all strictly past
	// the frontier, resuming correctly across pages.
	var got []Trip
	spec := QuerySpec{StartAfter: frontier, Limit: 7}
	for {
		page, err := w.Query(spec)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, page.Trips...)
		if page.Next == "" {
			break
		}
		spec.Cursor = page.Next
	}
	if want := (n - 31) + (n - 30); len(got) != want {
		t.Fatalf("global tail = %d trips, want %d", len(got), want)
	}
	for i := 1; i < len(got); i++ {
		if got[i].Triplet.From.Before(got[i-1].Triplet.From) {
			t.Fatal("tail not in global From order")
		}
	}

	// A frontier past everything returns the empty tail.
	page, err = w.Query(QuerySpec{StartAfter: t0.Add(24 * time.Hour)})
	if err != nil {
		t.Fatal(err)
	}
	if len(page.Trips) != 0 || page.Scanned != 0 {
		t.Errorf("post-everything frontier returned %d trips, scanned %d", len(page.Trips), page.Scanned)
	}
}
