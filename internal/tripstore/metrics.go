package tripstore

import "trips/internal/obs"

// Metrics are the warehouse's optional latency instruments. A nil *Metrics
// in Options disables them; individual nil histograms are safe too (a nil
// histogram discards observations).
type Metrics struct {
	// SegmentWriteSeconds times each batched segment write, fsync
	// included — the durability cost one full ingest batch pays.
	SegmentWriteSeconds *obs.Histogram
	// SnapshotWriteSeconds times full-state snapshot writes (dump, fsync,
	// and covered-segment truncation).
	SnapshotWriteSeconds *obs.Histogram
	// QuerySeconds times Query end to end, including any index re-sort a
	// dirty plan forces under the write lock.
	QuerySeconds *obs.Histogram
}

// NewMetrics registers the warehouse histograms on r under the
// trips_store_* names.
func NewMetrics(r *obs.Registry) *Metrics {
	return &Metrics{
		SegmentWriteSeconds: r.Histogram("trips_store_segment_write_seconds",
			"Segment-log batch write latency, fsync included.", nil),
		SnapshotWriteSeconds: r.Histogram("trips_store_snapshot_write_seconds",
			"Full-state snapshot write latency, fsync and truncation included.", nil),
		QuerySeconds: r.Histogram("trips_store_query_seconds",
			"Warehouse query latency, index re-sorts included.", nil),
	}
}
