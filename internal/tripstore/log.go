package tripstore

import (
	"errors"
	"fmt"
	"os"
	"strings"
	"sync"

	"trips/internal/storage"
)

// LogOptions configures the durability layer.
type LogOptions struct {
	// Store is the backend document store the log rides on. Required.
	Store *storage.Store
	// Collection prefixes the log's collections (default "warehouse"):
	// segments go to "<Collection>-segments", the snapshot to
	// "<Collection>-snapshot".
	Collection string
	// BatchSize is the number of buffered trips that triggers a segment
	// write (default 256). Smaller batches tighten the durability window;
	// larger ones amortize the fsync-ish rename cost.
	BatchSize int
}

// segmentDoc is one append-only log segment on disk.
type segmentDoc struct {
	Seq   int    `json:"seq"`
	Trips []Trip `json:"trips"`
}

// snapshotDoc is the full-state dump; segments with Seq <= Covered are
// folded in and deleted.
type snapshotDoc struct {
	Covered int    `json:"covered"`
	Trips   []Trip `json:"trips"`
}

const snapshotKey = "latest"

// segmentLog is the batched append-only segment log. Ownership is split
// so queries never wait on disk: the buffer state (pending, next,
// segments) is guarded by the owning Warehouse's write lock, which
// detaches full batches; the actual document writes run outside that lock,
// serialized by io. Replay happens before the warehouse is shared.
type segmentLog struct {
	store   *storage.Store
	segCol  string
	snapCol string
	batch   int

	// Guarded by the owning Warehouse's mutex.
	pending  []Trip
	next     int // next segment number to assign
	segments int // live (un-snapshotted) segments on disk

	io sync.Mutex // serializes segment/snapshot writes and truncation
}

func openSegmentLog(opts LogOptions) (*segmentLog, error) {
	if opts.Store == nil {
		return nil, errors.New("tripstore: LogOptions.Store is required")
	}
	col := opts.Collection
	if col == "" {
		col = "warehouse"
	}
	batch := opts.BatchSize
	if batch <= 0 {
		batch = 256
	}
	return &segmentLog{
		store:   opts.Store,
		segCol:  col + "-segments",
		snapCol: col + "-snapshot",
		batch:   batch,
		next:    1,
	}, nil
}

func segKey(n int) string { return fmt.Sprintf("seg-%08d", n) }

func parseSegKey(k string) (int, bool) {
	if !strings.HasPrefix(k, "seg-") {
		return 0, false
	}
	var n int
	if _, err := fmt.Sscanf(k, "seg-%d", &n); err != nil {
		return 0, false
	}
	return n, true
}

// replay feeds the persisted state — snapshot first, then every segment
// past it, in write order — to insert, and positions the log to append
// after the highest segment seen.
func (l *segmentLog) replay(insert func(Trip)) error {
	var snap snapshotDoc
	err := l.store.Get(l.snapCol, snapshotKey, &snap)
	switch {
	case err == nil:
		for _, t := range snap.Trips {
			insert(t)
		}
	case os.IsNotExist(err):
	default:
		return fmt.Errorf("tripstore: read snapshot: %w", err)
	}
	keys, err := l.store.List(l.segCol)
	if err != nil {
		return fmt.Errorf("tripstore: list segments: %w", err)
	}
	high := snap.Covered
	for _, k := range keys { // List returns keys sorted = segment order
		n, ok := parseSegKey(k)
		if !ok {
			continue
		}
		if n > high {
			high = n
		}
		if n <= snap.Covered {
			// Covered by the snapshot but not yet deleted (a crash
			// between snapshot write and truncation); skip, dedupe would
			// drop it anyway.
			continue
		}
		var seg segmentDoc
		if err := l.store.Get(l.segCol, k, &seg); err != nil {
			return fmt.Errorf("tripstore: read segment %s: %w", k, err)
		}
		for _, t := range seg.Trips {
			insert(t)
		}
		l.segments++
	}
	l.next = high + 1
	return nil
}

// detach hands the pending buffer over for writing and assigns it a
// segment number; callers hold the warehouse write lock. A nil batch
// means nothing is pending.
func (l *segmentLog) detach() ([]Trip, int) {
	if len(l.pending) == 0 {
		return nil, 0
	}
	batch := l.pending
	l.pending = nil
	seq := l.next
	l.next++
	return batch, seq
}

// requeue puts a batch whose write failed back at the head of the pending
// buffer; callers hold the warehouse write lock. Its segment number is
// abandoned (replay tolerates gaps) and the batch rides out with the next
// flush.
func (l *segmentLog) requeue(batch []Trip) {
	l.pending = append(batch, l.pending...)
}

// writeSegment persists one detached batch.
func (l *segmentLog) writeSegment(seq int, batch []Trip) error {
	l.io.Lock()
	defer l.io.Unlock()
	if err := l.store.Put(l.segCol, segKey(seq), segmentDoc{Seq: seq, Trips: batch}); err != nil {
		return fmt.Errorf("tripstore: write segment %d: %w", seq, err)
	}
	return nil
}

// writeSnapshot persists the full-state dump, truncates the covered
// segments, and reports how many it deleted. A segment write racing the
// truncation can land a document with Seq <= covered afterwards; replay
// skips those, and the next snapshot removes them.
func (l *segmentLog) writeSnapshot(covered int, dump []Trip) (int, error) {
	l.io.Lock()
	defer l.io.Unlock()
	if err := l.store.Put(l.snapCol, snapshotKey, snapshotDoc{Covered: covered, Trips: dump}); err != nil {
		return 0, fmt.Errorf("tripstore: write snapshot: %w", err)
	}
	keys, err := l.store.List(l.segCol)
	if err != nil {
		return 0, err
	}
	deleted := 0
	for _, k := range keys {
		if n, ok := parseSegKey(k); ok && n <= covered {
			if err := l.store.Delete(l.segCol, k); err != nil {
				return deleted, err
			}
			deleted++
		}
	}
	return deleted, nil
}
