package tripstore

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"trips/internal/position"
	"trips/internal/storage"
)

// TestWarehouseConcurrentIngestQuerySnapshot hammers the warehouse the way
// a live deployment does — online emitter goroutines (one per engine
// shard) fanning sealed triplets in, readers paginating queries, and a
// maintenance goroutine flushing and snapshotting — and then verifies
// nothing was lost and a reopened warehouse answers identically. Modeled
// on internal/position/stream_race_test.go; run with -race.
func TestWarehouseConcurrentIngestQuerySnapshot(t *testing.T) {
	dir := t.TempDir()
	st, err := storage.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	w, err := New(Options{Log: &LogOptions{Store: st, BatchSize: 32}})
	if err != nil {
		t.Fatal(err)
	}

	const (
		producers       = 4
		tripsPerDevice  = 50
		devicesPerShard = 3
	)
	em := w.Emitter(nil) // the engine-facing ingest path

	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for d := 0; d < devicesPerShard; d++ {
				dev := fmt.Sprintf("p%d-d%d", p, d)
				for s := 0; s < tripsPerDevice; s++ {
					em.Emit(emission(dev, s, time.Duration(s)*time.Minute))
				}
			}
		}(p)
	}

	// Readers: full-scan pagination, device queries, region + time
	// queries, stats — all while ingest is running.
	stop := make(chan struct{})
	var readers sync.WaitGroup
	for r := 0; r < 3; r++ {
		readers.Add(1)
		go func(r int) {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				spec := QuerySpec{Limit: 16}
				switch r {
				case 0:
					spec.Device = position.DeviceID("p0-d0")
				case 1:
					spec.Region = "nike"
					spec.Since = t0.Add(10 * time.Minute)
					spec.Until = t0.Add(30 * time.Minute)
				}
				for {
					page, err := w.Query(spec)
					if err != nil {
						t.Error(err)
						return
					}
					if page.Next == "" {
						break
					}
					spec.Cursor = page.Next
				}
				w.Stats()
			}
		}(r)
	}

	// Maintenance: periodic flush + snapshot racing the ingest.
	var maint sync.WaitGroup
	maint.Add(1)
	go func() {
		defer maint.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			var err error
			if i%2 == 0 {
				err = w.Flush()
			} else {
				err = w.Snapshot()
			}
			if err != nil {
				t.Error(err)
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()

	wg.Wait()
	close(stop)
	readers.Wait()
	maint.Wait()

	want := producers * devicesPerShard * tripsPerDevice
	if st := w.Stats(); st.Trips != want || st.Duplicates != 0 {
		t.Errorf("after concurrent ingest: %+v, want %d trips, 0 dupes", st, want)
	}
	ref, err := w.Query(QuerySpec{Region: "nike", Since: t0.Add(5 * time.Minute), Until: t0.Add(20 * time.Minute)})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// A reopened warehouse holds every trip and answers the same query
	// with the same page.
	st2, err := storage.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	w2, err := New(Options{Log: &LogOptions{Store: st2}})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if got := w2.Stats().Trips; got != want {
		t.Errorf("reopened warehouse has %d trips, want %d", got, want)
	}
	got, err := w2.Query(QuerySpec{Region: "nike", Since: t0.Add(5 * time.Minute), Until: t0.Add(20 * time.Minute)})
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Trips) != len(ref.Trips) {
		t.Errorf("reopened query: %d trips, want %d", len(got.Trips), len(ref.Trips))
	}
	for i := range got.Trips {
		if got.Trips[i] != ref.Trips[i] {
			t.Errorf("trip %d differs after reopen:\nlive:     %+v\nreopened: %+v", i, ref.Trips[i], got.Trips[i])
			break
		}
	}
}
