package tripstore

import (
	"encoding/base64"
	"fmt"
	"strconv"
	"strings"
	"time"

	"trips/internal/dsm"
	"trips/internal/position"
	"trips/internal/semantics"
)

// QuerySpec selects warehoused trips. Every predicate is optional;
// combined predicates intersect. Results come back in the global (From,
// Device, Seq) order, paginated by Limit + Cursor.
type QuerySpec struct {
	// Device restricts to one device's partition.
	Device position.DeviceID `json:"device,omitempty"`
	// RegionID restricts to trips whose triplet carries this region ID.
	RegionID dsm.RegionID `json:"regionId,omitempty"`
	// Region restricts by semantic tag (e.g. "Nike"); ignored when
	// RegionID is set.
	Region string `json:"region,omitempty"`
	// Event restricts by mobility event label ("stay", "pass-by", ...).
	Event semantics.Event `json:"event,omitempty"`
	// Since/Until select trips whose period overlaps [Since, Until); a
	// zero bound is open on that side.
	Since time.Time `json:"since,omitzero"`
	Until time.Time `json:"until,omitzero"`
	// StartAfter selects trips whose From (start instant) is strictly
	// later — the frontier-bounded replay predicate: a consumer that
	// already folded a device's timeline through some From resumes past
	// it without rescanning the prefix. Unlike Since it bounds the start
	// instant itself (dedupe identity), not period overlap, and it cuts
	// the index span by binary search, so the scan cost is O(log n +
	// matches) regardless of how much history precedes the frontier.
	StartAfter time.Time `json:"startAfter,omitzero"`
	// Inferred filters on the Complementor flag: nil = both, true = only
	// inferred, false = only observed.
	Inferred *bool `json:"inferred,omitempty"`
	// Limit caps the page size; <= 0 returns everything.
	Limit int `json:"limit,omitempty"`
	// Cursor resumes after the last trip of the previous page (Page.Next).
	Cursor string `json:"cursor,omitempty"`
}

// Page is one query result page.
type Page struct {
	Trips []Trip `json:"trips"`
	// Next is the cursor of the following page; empty when the result set
	// is exhausted.
	Next string `json:"next,omitempty"`
	// Scanned counts the index entries examined — the query-cost proxy
	// (it stays near len(Trips) when the planner found a narrow index).
	Scanned int `json:"scanned"`
}

// Query answers a spec from the narrowest applicable index: the device
// partition, else the region posting list, else the global interval index.
// It never scans trips outside the chosen index's candidate span.
func (w *Warehouse) Query(spec QuerySpec) (Page, error) {
	var start time.Time
	if w.metrics != nil {
		//trips:allow wallclock: query latency metric
		start = time.Now()
	}
	page, err := w.query(spec)
	if w.metrics != nil {
		w.metrics.QuerySeconds.ObserveSince(start)
	}
	return page, err
}

func (w *Warehouse) query(spec QuerySpec) (Page, error) {
	var after key
	hasCursor := spec.Cursor != ""
	if hasCursor {
		k, err := decodeCursor(spec.Cursor)
		if err != nil {
			return Page{}, err
		}
		after = k
	}
	if !spec.Since.IsZero() && !spec.Until.IsZero() && !spec.Since.Before(spec.Until) {
		return Page{}, nil
	}

	w.mu.RLock()
	if w.closed {
		w.mu.RUnlock()
		return Page{}, ErrClosed
	}
	p := w.plan(spec)
	if p == nil {
		// Provably empty (unknown device/region) — the hot polling case
		// for devices that haven't sealed a trip yet; never escalate.
		w.mu.RUnlock()
		return Page{}, nil
	}
	if !p.dirty() {
		page := w.collect(p, spec, after, hasCursor)
		w.mu.RUnlock()
		return page, nil
	}
	// The planned index has an unsorted suffix: upgrade to the write
	// lock, restore order, and answer under it — one bounded upgrade,
	// immune to concurrent inserts re-dirtying the index between sort
	// and collect.
	w.mu.RUnlock()
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return Page{}, ErrClosed
	}
	p = w.plan(spec)
	if p == nil {
		return Page{}, nil
	}
	p.sorted()
	return w.collect(p, spec, after, hasCursor), nil
}

// plan picks the narrowest index for the spec; callers hold a lock. Nil
// means the result set is provably empty.
func (w *Warehouse) plan(spec QuerySpec) *posting {
	switch {
	case spec.Device != "":
		p := w.parts[spec.Device]
		if p == nil {
			return nil
		}
		return &p.posting
	case spec.RegionID != "":
		return w.byID[string(spec.RegionID)]
	case spec.Region != "":
		return w.byTag[spec.Region]
	default:
		return &w.byTime
	}
}

// collect walks the sorted index span in global order, applies the residual
// predicates, and cuts one page. Callers hold a lock and guarantee the
// posting is sorted.
func (w *Warehouse) collect(p *posting, spec QuerySpec, after key, hasCursor bool) Page {
	lo, hi := p.span(spec.Since, spec.Until, w.maxDur)
	if !spec.StartAfter.IsZero() {
		if s := p.seekFrom(spec.StartAfter); s > lo {
			lo = s
		}
	}
	if hasCursor {
		if s := p.seek(after); s > lo {
			lo = s
		}
	}
	var page Page
	for i := lo; i < hi; i++ {
		t := p.refs[i]
		page.Scanned++
		if !matches(t, spec) {
			continue
		}
		if spec.Limit > 0 && len(page.Trips) == spec.Limit {
			page.Next = encodeCursor(page.Trips[len(page.Trips)-1])
			return page
		}
		page.Trips = append(page.Trips, *t)
	}
	return page
}

// matches applies the predicates the index span did not already guarantee.
func matches(t *Trip, spec QuerySpec) bool {
	if spec.Device != "" && t.Device != spec.Device {
		return false
	}
	if spec.RegionID != "" {
		if t.Triplet.RegionID != spec.RegionID {
			return false
		}
	} else if spec.Region != "" && t.Triplet.Region != spec.Region {
		return false
	}
	if spec.Event != "" && t.Triplet.Event != spec.Event {
		return false
	}
	if spec.Inferred != nil && t.Triplet.Inferred != *spec.Inferred {
		return false
	}
	if !spec.Since.IsZero() || !spec.Until.IsZero() {
		until := spec.Until
		if until.IsZero() {
			until = t.Triplet.From.Add(time.Nanosecond) // open end: From always qualifies
		}
		if !t.Triplet.Overlaps(spec.Since, until) {
			return false
		}
	}
	return true
}

// Cursor encoding: "v1|<From unix-secs>|<From nanos>|<seq>|<device>"
// base64url'd. Seconds and nanoseconds travel separately because
// UnixNano overflows for timestamps far outside the epoch, and ingested
// feeds may carry arbitrary times. The device comes last because DeviceID
// may contain the separator.
const cursorVersion = "v1"

func encodeCursor(t Trip) string {
	raw := fmt.Sprintf("%s|%d|%d|%d|%s", cursorVersion,
		t.Triplet.From.Unix(), t.Triplet.From.Nanosecond(), t.Seq, t.Device)
	return base64.RawURLEncoding.EncodeToString([]byte(raw))
}

func decodeCursor(s string) (key, error) {
	raw, err := base64.RawURLEncoding.DecodeString(s)
	if err != nil {
		return key{}, fmt.Errorf("tripstore: bad cursor: %w", err)
	}
	parts := strings.SplitN(string(raw), "|", 5)
	if len(parts) != 5 || parts[0] != cursorVersion {
		return key{}, fmt.Errorf("tripstore: bad cursor %q", s)
	}
	sec, err := strconv.ParseInt(parts[1], 10, 64)
	if err != nil {
		return key{}, fmt.Errorf("tripstore: bad cursor time: %w", err)
	}
	nsec, err := strconv.ParseInt(parts[2], 10, 64)
	if err != nil || nsec < 0 || nsec > 999_999_999 {
		return key{}, fmt.Errorf("tripstore: bad cursor nanos %q", parts[2])
	}
	seq, err := strconv.Atoi(parts[3])
	if err != nil {
		return key{}, fmt.Errorf("tripstore: bad cursor seq: %w", err)
	}
	return key{time.Unix(sec, nsec).UTC(), position.DeviceID(parts[4]), seq}, nil
}
