package loadgen

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"slices"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"trips/internal/obs"
	"trips/internal/obs/trace"
	"trips/internal/position"
)

// fakeServer imitates the trips-server surface the harness touches —
// /ingest with injected 429s, /metrics over a real obs registry, a
// blocking SSE /analytics/subscribe — so the closed-loop client contract
// (retry on 429 with Retry-After, count rejections, never error) is
// provable without booting the full pipeline.
type fakeServer struct {
	reg       *obs.Registry
	freshness *obs.Histogram
	ingested  atomic.Int64
	requests  atomic.Int64
	rejectNth int64 // every Nth /ingest request answers 429

	mu       sync.Mutex
	traceIDs []string // X-Trace-Id values seen on /ingest, in arrival order
}

func newFakeServer(rejectNth int64) (*fakeServer, http.Handler) {
	f := &fakeServer{reg: obs.NewRegistry(), rejectNth: rejectNth}
	obs.RegisterRuntimeMetrics(f.reg, "trips")
	f.freshness = f.reg.Histogram("trips_freshness_seconds", "test", obs.FreshnessBounds)
	f.reg.CounterFunc("trips_online_records_total", "test", f.ingested.Load)
	mux := http.NewServeMux()
	mux.HandleFunc("/ingest", func(w http.ResponseWriter, r *http.Request) {
		if tid := r.Header.Get("X-Trace-Id"); tid != "" {
			f.mu.Lock()
			f.traceIDs = append(f.traceIDs, tid)
			f.mu.Unlock()
		}
		if n := f.requests.Add(1); f.rejectNth > 0 && n%f.rejectNth == 0 {
			w.Header().Set("Retry-After", "0")
			http.Error(w, "ingest backlogged", http.StatusTooManyRequests)
			return
		}
		n, err := position.StreamCSV(r.Body, func(rec position.Record) error {
			f.ingested.Add(1)
			f.freshness.Observe(time.Duration(f.ingested.Load()%40) * 100 * time.Millisecond)
			return nil
		})
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		_ = n
		w.WriteHeader(http.StatusOK)
	})
	mux.Handle("/metrics", f.reg.Handler())
	// The trace debug surface, shaped like trips-server's: the list view
	// (spans omitted) and the per-trace span tree. Durations grow with
	// arrival order so the last forced trace is deterministically slowest.
	mux.HandleFunc("/debug/traces", func(w http.ResponseWriter, r *http.Request) {
		f.mu.Lock()
		ids := append([]string(nil), f.traceIDs...)
		f.mu.Unlock()
		views := make([]trace.TraceView, len(ids))
		for i, id := range ids {
			views[i] = trace.TraceView{ID: id, DurationMs: float64(i + 1), Complete: true}
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]any{"traces": views})
	})
	mux.HandleFunc("/debug/traces/", func(w http.ResponseWriter, r *http.Request) {
		id := strings.TrimPrefix(r.URL.Path, "/debug/traces/")
		f.mu.Lock()
		found := slices.Contains(f.traceIDs, id)
		f.mu.Unlock()
		if !found {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(trace.TraceView{
			ID: id, Complete: true, DurationMs: 42,
			Spans: []trace.SpanView{{ID: "0000000000000001", Name: "ingest"}},
		})
	})
	mux.HandleFunc("/analytics/subscribe", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/event-stream")
		w.Write([]byte("event: hello\ndata: {}\n\n"))
		if fl, ok := w.(http.Flusher); ok {
			fl.Flush()
		}
		<-r.Context().Done()
	})
	return f, mux
}

// testProfile is small enough to finish in seconds yet trips every client
// behavior: batching, shuffle, duplicates, reconnect redelivery, and the
// injected 429 path.
func testProfile() Profile {
	return Profile{
		Name:            "test",
		Devices:         2,
		Visits:          1,
		BatchSize:       16,
		ShuffleWindow:   4,
		DuplicateEvery:  7,
		ReconnectEvery:  3,
		SlowSubscribers: 1,
		Seed:            3,
		SettleTimeout:   3 * time.Second,
	}
}

// TestRunClosedLoop drives a full harness run against the fake server:
// every scheduled delivery must be acknowledged despite the injected
// 429s (retried, counted, never surfaced as an error), the metrics deltas
// must come back, and the report must carry a heap ceiling.
func TestRunClosedLoop(t *testing.T) {
	fake, handler := newFakeServer(5)
	srv := httptest.NewServer(handler)
	defer srv.Close()

	p := testProfile()
	r := &Runner{Addr: srv.URL, Profile: p, Logf: t.Logf}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	res, err := r.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}

	streams, err := BuildWorkload(p)
	if err != nil {
		t.Fatal(err)
	}
	var scheduled int64
	for _, s := range streams {
		scheduled += int64(len(s.Records))
	}
	if res.RecordsSent != scheduled {
		t.Errorf("records_sent = %d, want every scheduled delivery acked (%d)", res.RecordsSent, scheduled)
	}
	if res.HTTPErrors != 0 {
		t.Errorf("http_errors = %d; 429s must be retried, not surfaced", res.HTTPErrors)
	}
	if res.Rejected429 == 0 || res.Retries == 0 {
		t.Errorf("rejected=%d retries=%d; the injected 429s never exercised the retry path", res.Rejected429, res.Retries)
	}
	if res.Reconnects == 0 {
		t.Error("reconnect storm never fired")
	}
	// The server saw the acked records plus the reconnect redeliveries.
	if got := fake.ingested.Load(); got < res.RecordsSent {
		t.Errorf("server ingested %d < %d acked", got, res.RecordsSent)
	}
	if res.IngestRequests < res.Retries {
		t.Errorf("requests %d < retries %d", res.IngestRequests, res.Retries)
	}
	if res.FreshnessCount == 0 || res.FreshnessP99S <= 0 || res.FreshnessP50S <= 0 {
		t.Errorf("freshness not measured: count=%d p50=%v p99=%v", res.FreshnessCount, res.FreshnessP50S, res.FreshnessP99S)
	}
	if res.FreshnessP99S < res.FreshnessP50S {
		t.Errorf("p99 %.3fs < p50 %.3fs", res.FreshnessP99S, res.FreshnessP50S)
	}
	if res.HeapMaxBytes <= 0 {
		t.Error("no heap ceiling sampled")
	}
	if res.RecordsPerS <= 0 || res.ElapsedS <= 0 {
		t.Errorf("throughput not derived: %v records/s over %vs", res.RecordsPerS, res.ElapsedS)
	}
}

// TestRunTraceForcing drives a traced run: every TraceEvery-th batch must
// carry a deterministic X-Trace-Id, and the report must come back with the
// slowest kept trace's span tree.
func TestRunTraceForcing(t *testing.T) {
	fake, handler := newFakeServer(0)
	srv := httptest.NewServer(handler)
	defer srv.Close()

	p := testProfile()
	p.TraceEvery = 2
	p.ReconnectEvery = 0 // isolate the trace cadence from redeliveries
	r := &Runner{Addr: srv.URL, Profile: p, Logf: t.Logf}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	res, err := r.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}

	fake.mu.Lock()
	seen := append([]string(nil), fake.traceIDs...)
	fake.mu.Unlock()
	streams, err := BuildWorkload(p)
	if err != nil {
		t.Fatal(err)
	}
	var want []string
	for _, s := range streams {
		batches := (len(s.Records) + p.BatchSize - 1) / p.BatchSize
		for n := 0; n < batches; n += p.TraceEvery {
			want = append(want, syntheticTraceID(string(s.Device), n, p.Seed))
		}
	}
	if len(seen) != len(want) {
		t.Fatalf("server saw %d traced batches, want %d", len(seen), len(want))
	}
	for _, id := range want {
		if !slices.Contains(seen, id) {
			t.Errorf("expected trace id %s never arrived", id)
		}
	}
	if len(want[0]) != 32 {
		t.Errorf("synthetic trace id %q is not 32 hex digits", want[0])
	}

	if res.SlowestTrace == nil {
		t.Fatal("report missing slowest_trace")
	}
	// The fake ranks traces by arrival order, so the slowest is the last
	// one recorded.
	if res.SlowestTrace.ID != seen[len(seen)-1] {
		t.Errorf("slowest_trace = %s, want the last-arrived %s", res.SlowestTrace.ID, seen[len(seen)-1])
	}
	if len(res.SlowestTrace.Spans) == 0 || !res.SlowestTrace.Complete {
		t.Errorf("slowest_trace lacks its span tree: %+v", res.SlowestTrace)
	}
}

// TestSyntheticTraceIDDeterministic pins the forced-trace identity scheme.
func TestSyntheticTraceIDDeterministic(t *testing.T) {
	a := syntheticTraceID("load-000", 4, 7)
	if b := syntheticTraceID("load-000", 4, 7); a != b {
		t.Errorf("same inputs diverged: %s vs %s", a, b)
	}
	if b := syntheticTraceID("load-000", 6, 7); a == b {
		t.Error("different batches collided")
	}
	if len(a) != 32 {
		t.Errorf("id %q is not 32 hex digits", a)
	}
}

// TestRunReportRoundTrip writes a run's report and reads it back as a
// gate baseline.
func TestRunReportRoundTrip(t *testing.T) {
	f := NewFile(Smoke(), Results{RecordsSent: 10, RecordsPerS: 100, FreshnessCount: 3,
		FreshnessP99S: 1.5, HeapMaxBytes: 1 << 20})
	path := t.TempDir() + "/BENCH_system.json"
	if err := f.Write(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Suite != "system" || got.Results != f.Results || got.Config != f.Config {
		t.Errorf("round trip diverged:\nwrote %+v\nread  %+v", f, got)
	}
	if fails := Check(got, f, DefaultTolerances()); len(fails) != 0 {
		t.Errorf("self-comparison failed the gate: %v", fails)
	}
}

// TestBuildWorkloadDeterministic pins that the same profile always yields
// the same schedule — the property that makes two BENCH_system.json runs
// comparable.
func TestBuildWorkloadDeterministic(t *testing.T) {
	a, err := BuildWorkload(testProfile())
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildWorkload(testProfile())
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("device counts diverge: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Device != b[i].Device || len(a[i].Records) != len(b[i].Records) || a[i].Duplicates != b[i].Duplicates {
			t.Fatalf("stream %d diverges between identical builds", i)
		}
		for j := range a[i].Records {
			if a[i].Records[j] != b[i].Records[j] {
				t.Fatalf("stream %d record %d diverges", i, j)
			}
		}
	}
	if a[0].Duplicates == 0 {
		t.Error("schedule carries no duplicates; the at-least-once shape is missing")
	}
}
