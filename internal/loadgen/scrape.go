package loadgen

import (
	"context"
	"fmt"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"

	"trips/internal/obs"
)

// Sample is one scrape of /metrics, keyed exactly as rendered
// ("name" or `name{label="v"}`).
type Sample map[string]float64

// scrapeMetrics fetches and parses one exposition.
func scrapeMetrics(ctx context.Context, hc *http.Client, addr string) (Sample, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, addr+"/metrics", nil)
	if err != nil {
		return nil, err
	}
	resp, err := hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("loadgen: /metrics status %d", resp.StatusCode)
	}
	return obs.ParseExposition(resp.Body)
}

// Sub returns final−initial per key — the run's own contribution to every
// cumulative series, so pre-run history (a warm server) never pollutes
// the measurement. Keys absent from initial pass through unchanged;
// negative deltas (a counter reset under a restart) clamp to zero.
func Sub(final, initial Sample) Sample {
	out := make(Sample, len(final))
	for k, v := range final {
		d := v - initial[k]
		if d < 0 {
			d = 0
		}
		out[k] = d
	}
	return out
}

// HistogramQuantile estimates the q-quantile of a rendered histogram from
// its cumulative le-buckets, with linear interpolation inside the
// covering bucket — the same estimate obs.Histogram.Quantile computes
// in-process, minus the observed-max refinement (the exposition does not
// carry the max, so the open +Inf bucket clamps to the last finite
// bound). Returns 0 when the histogram has no observations.
func HistogramQuantile(s Sample, name string, q float64) float64 {
	type bucket struct {
		le  float64
		cum float64
	}
	prefix := name + `_bucket{le="`
	var buckets []bucket
	for k, v := range s {
		if !strings.HasPrefix(k, prefix) || !strings.HasSuffix(k, `"}`) {
			continue
		}
		le := strings.TrimSuffix(strings.TrimPrefix(k, prefix), `"}`)
		bound, err := parseLe(le)
		if err != nil {
			continue
		}
		buckets = append(buckets, bucket{le: bound, cum: v})
	}
	if len(buckets) == 0 {
		return 0
	}
	sort.Slice(buckets, func(i, j int) bool { return buckets[i].le < buckets[j].le })
	total := buckets[len(buckets)-1].cum
	if total <= 0 {
		return 0
	}
	target := q * total
	var lastFinite float64
	for i := range buckets {
		if buckets[i].le < posInf {
			lastFinite = buckets[i].le
		}
	}
	prevCum, prevBound := 0.0, 0.0
	for _, b := range buckets {
		if target <= b.cum && b.cum > prevCum {
			hi := b.le
			if hi >= posInf {
				hi = lastFinite // open bucket: clamp to the last bound
			}
			if hi < prevBound {
				hi = prevBound
			}
			frac := (target - prevCum) / (b.cum - prevCum)
			return prevBound + frac*(hi-prevBound)
		}
		prevCum, prevBound = b.cum, b.le
	}
	return lastFinite
}

var posInf = math.Inf(1)

func parseLe(s string) (float64, error) {
	if s == "+Inf" {
		return posInf, nil
	}
	return strconv.ParseFloat(s, 64)
}

// histogramCount reads a rendered histogram's _count sample.
func histogramCount(s Sample, name string) int64 {
	return int64(s[name+"_count"])
}
