// Package loadgen is the closed-loop load harness behind cmd/trips-load:
// it drives a real trips-server over HTTP with simulated mall shoppers
// under production-shaped stress — bursty batched arrivals, reconnect
// storms that redeliver unacked batches, bounded out-of-order and
// duplicate delivery, and deliberately slow SSE subscribers — while
// scraping GET /metrics for the system-level numbers that matter:
// ingest→seal→analytics-visible freshness quantiles, sustained records/s,
// push-back (429) rates, and the heap ceiling.
//
// The harness is closed-loop: every sender holds at most one request in
// flight and honors 429 + Retry-After before re-sending, so offered load
// adapts to what the server admits instead of stampeding an unbounded
// queue. The run's results serialize as BENCH_system.json (report.go) and
// gate.Check turns a baseline file plus tolerances into pass/fail SLO
// verdicts for CI.
package loadgen

import "time"

// Profile shapes one load run. The zero value is not useful; start from
// Smoke or Standard and override.
type Profile struct {
	// Name labels the profile in reports ("smoke", "standard", ...).
	Name string `json:"name"`
	// Devices is the number of concurrent simulated shoppers, each with
	// its own closed-loop sender connection.
	Devices int `json:"devices"`
	// Visits is the itinerary length per device (dwells between walks);
	// it controls per-device record volume.
	Visits int `json:"visits"`
	// BatchSize is the records per POST /ingest request.
	BatchSize int `json:"batch_size"`
	// ShuffleWindow bounds out-of-order delivery: records may be displaced
	// up to ShuffleWindow-1 positions within their device stream (0 or 1
	// disables shuffling).
	ShuffleWindow int `json:"shuffle_window"`
	// DuplicateEvery redelivers every Nth record a few positions later,
	// the at-least-once shape of a sender retrying a dropped ack
	// (0 disables).
	DuplicateEvery int `json:"duplicate_every"`
	// ReconnectEvery makes a sender drop its connection and re-send its
	// previous batch every Nth batch — a reconnect storm across the fleet
	// (0 disables).
	ReconnectEvery int `json:"reconnect_every"`
	// SlowSubscribers opens this many /analytics/subscribe streams that
	// never read, pressuring the delta hub's eviction path.
	SlowSubscribers int `json:"slow_subscribers"`
	// TraceEvery forces an end-to-end trace on every Nth batch per sender
	// by attaching a deterministic synthetic X-Trace-Id (0 disables).
	// Forced traces are pinned in the server's trace ring, so the run
	// leaves an inspectable lineage sample behind — the slowest one lands
	// in the report as slowest_trace.
	TraceEvery int `json:"trace_every"`
	// Seed makes the workload deterministic.
	Seed int64 `json:"seed"`
	// SettleTimeout caps how long the run waits after the last send for
	// in-flight records to seal and fold before the final scrape.
	SettleTimeout time.Duration `json:"settle_timeout_ns"`
}

// Smoke is the CI profile: small enough to finish well under a minute on
// one core, large enough to exercise every stress shape at least once.
func Smoke() Profile {
	return Profile{
		Name:            "smoke",
		Devices:         6,
		Visits:          3,
		BatchSize:       32,
		ShuffleWindow:   8,
		DuplicateEvery:  9,
		ReconnectEvery:  5,
		SlowSubscribers: 2,
		Seed:            7,
		SettleTimeout:   10 * time.Second,
	}
}

// Standard is the local soak profile: 4x the fleet, longer itineraries.
func Standard() Profile {
	return Profile{
		Name:            "standard",
		Devices:         24,
		Visits:          5,
		BatchSize:       64,
		ShuffleWindow:   8,
		DuplicateEvery:  9,
		ReconnectEvery:  5,
		SlowSubscribers: 4,
		Seed:            7,
		SettleTimeout:   20 * time.Second,
	}
}
