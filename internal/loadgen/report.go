package loadgen

import (
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"strings"
	"time"
)

// File is the BENCH_system.json schema: run metadata (what machine, what
// commit, what profile) plus the measured Results. It mirrors
// BENCH_online.json's framing so the two perf artifacts diff the same
// way.
type File struct {
	Suite      string  `json:"suite"` // always "system"
	Go         string  `json:"go"`
	Cpus       int     `json:"cpus"`
	Gomaxprocs int     `json:"gomaxprocs"`
	Commit     string  `json:"commit,omitempty"`
	Timestamp  string  `json:"timestamp"`
	Config     Profile `json:"config"`
	Results    Results `json:"results"`
}

// NewFile frames a run's results with the environment metadata that makes
// two artifacts comparable.
func NewFile(p Profile, res Results) *File {
	return &File{
		Suite:      "system",
		Go:         runtime.Version(),
		Cpus:       runtime.NumCPU(),
		Gomaxprocs: runtime.GOMAXPROCS(0),
		Commit:     benchCommit(),
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
		Config:     p,
		Results:    res,
	}
}

// benchCommit resolves the commit the numbers describe: git first, the CI
// environment as fallback for builds from an exported tree.
func benchCommit() string {
	if out, err := exec.Command("git", "rev-parse", "HEAD").Output(); err == nil {
		return strings.TrimSpace(string(out))
	}
	return os.Getenv("GITHUB_SHA")
}

// Write serializes the report to path.
func (f *File) Write(path string) error {
	out, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}

// ReadFile loads a previously written report (the -check baseline).
func ReadFile(path string) (*File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("loadgen: parse %s: %w", path, err)
	}
	if f.Suite != "system" {
		return nil, fmt.Errorf("loadgen: %s is a %q artifact, want suite \"system\"", path, f.Suite)
	}
	return &f, nil
}
