package loadgen

import (
	"context"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"net/http"
	"time"

	"trips/internal/obs/trace"
)

// syntheticTraceID derives a 32-hex-digit trace ID from the device, batch
// ordinal, and workload seed, so re-runs of the same profile force the same
// trace identities — two BENCH_system.json artifacts name the same traces.
func syntheticTraceID(dev string, batch int, seed int64) string {
	h := fnv.New128a()
	fmt.Fprintf(h, "%s#%d#%d", dev, batch, seed)
	sum := h.Sum(make([]byte, 0, 16))
	sum[0] |= 1 // never the zero ID, which the server would refuse to force
	return hex.EncodeToString(sum)
}

// fetchSlowestTrace pulls the server's kept-trace list and returns the
// slowest trace's full span tree. Right after the last send the run's
// traces may still be lingering toward finalization in the tracer's
// pending set, so an empty list polls briefly (past the tracer's default
// 5s linger window) before giving up.
func fetchSlowestTrace(ctx context.Context, hc *http.Client, addr string) (*trace.TraceView, error) {
	deadline := time.Now().Add(8 * time.Second)
	for {
		list, err := fetchTraceList(ctx, hc, addr)
		if err == nil && len(list) > 0 {
			slowest := list[0]
			for _, tv := range list[1:] {
				if tv.DurationMs > slowest.DurationMs {
					slowest = tv
				}
			}
			return fetchTrace(ctx, hc, addr, slowest.ID)
		}
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		if time.Now().After(deadline) {
			if err != nil {
				return nil, err
			}
			return nil, fmt.Errorf("loadgen: %s/debug/traces kept no traces", addr)
		}
		if !sleepCtx(ctx, 250*time.Millisecond) {
			return nil, ctx.Err()
		}
	}
}

func fetchTraceList(ctx context.Context, hc *http.Client, addr string) ([]trace.TraceView, error) {
	var body struct {
		Traces []trace.TraceView `json:"traces"`
	}
	if err := getJSON(ctx, hc, addr+"/debug/traces?limit=1000", &body); err != nil {
		return nil, err
	}
	return body.Traces, nil
}

func fetchTrace(ctx context.Context, hc *http.Client, addr, id string) (*trace.TraceView, error) {
	var tv trace.TraceView
	if err := getJSON(ctx, hc, addr+"/debug/traces/"+id, &tv); err != nil {
		return nil, err
	}
	return &tv, nil
}

func getJSON(ctx context.Context, hc *http.Client, url string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	resp, err := hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("loadgen: GET %s: status %d", url, resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}
