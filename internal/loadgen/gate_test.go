package loadgen

import (
	"strings"
	"testing"
)

// baselineFile is a plausible committed trajectory for the gate tests.
func baselineFile() *File {
	return &File{
		Suite:  "system",
		Config: Smoke(),
		Results: Results{
			RecordsSent:    1800,
			RecordsPerS:    9000,
			FreshnessP50S:  0.4,
			FreshnessP99S:  2.1,
			FreshnessCount: 35,
			HeapMaxBytes:   90 << 20,
		},
	}
}

// TestGatePassesOnBaseline is the -check green path: a run identical to
// the committed trajectory violates nothing.
func TestGatePassesOnBaseline(t *testing.T) {
	base := baselineFile()
	cur := baselineFile()
	if fails := Check(base, cur, DefaultTolerances()); len(fails) != 0 {
		t.Fatalf("identical run failed the gate: %v", fails)
	}
	// Drift inside the tolerances also passes: 20% slower, p99 a second
	// higher, heap 30% bigger.
	cur.Results.RecordsPerS = base.Results.RecordsPerS * 0.8
	cur.Results.FreshnessP99S = base.Results.FreshnessP99S + 1
	cur.Results.HeapMaxBytes = int64(float64(base.Results.HeapMaxBytes) * 1.3)
	if fails := Check(base, cur, DefaultTolerances()); len(fails) != 0 {
		t.Fatalf("in-tolerance drift failed the gate: %v", fails)
	}
}

// TestGateFailsOnRegression injects each regression class separately and
// demands the gate names it — the acceptance criterion that -check
// "demonstrably fails" on a regressed run.
func TestGateFailsOnRegression(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Results)
		expect string
	}{
		{"throughput collapse", func(r *Results) { r.RecordsPerS /= 2 }, "throughput"},
		{"freshness p99 blowup", func(r *Results) { r.FreshnessP99S = 30 }, "freshness p99"},
		{"heap blowup", func(r *Results) { r.HeapMaxBytes *= 4 }, "heap ceiling"},
		{"http errors", func(r *Results) { r.HTTPErrors = 3 }, "HTTP errors"},
		{"empty run", func(r *Results) { r.RecordsSent = 0 }, "measured nothing"},
		{"pipeline never completed", func(r *Results) { r.FreshnessCount = 0 }, "no freshness observations"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			base, cur := baselineFile(), baselineFile()
			tc.mutate(&cur.Results)
			fails := Check(base, cur, DefaultTolerances())
			if len(fails) == 0 {
				t.Fatalf("gate passed a run with a %s", tc.name)
			}
			found := false
			for _, f := range fails {
				if strings.Contains(f, tc.expect) {
					found = true
				}
			}
			if !found {
				t.Errorf("failures %v never mention %q", fails, tc.expect)
			}
		})
	}
}

// TestGateSlackAbsorbsTinyBaselines guards the absolute slack terms: on a
// near-instant baseline, doubling a 100ms p99 or adding 10MB of heap is
// noise, not a regression.
func TestGateSlackAbsorbsTinyBaselines(t *testing.T) {
	base, cur := baselineFile(), baselineFile()
	base.Results.FreshnessP99S = 0.1
	base.Results.HeapMaxBytes = 8 << 20
	cur.Results.FreshnessP99S = 0.9     // 9x, but under 0.1*1.5+2.0
	cur.Results.HeapMaxBytes = 40 << 20 // 5x, but under 8MB*1.5+64MB
	if fails := Check(base, cur, DefaultTolerances()); len(fails) != 0 {
		t.Fatalf("slack terms did not absorb tiny-baseline noise: %v", fails)
	}
}
