package loadgen

import "fmt"

// Tolerances bound how far a run may drift from its baseline before the
// SLO gate fails. Ratio fields are fractions (0.30 = 30%); the absolute
// slack fields keep tiny baselines from turning measurement noise into
// failures (50% of a 40ms p99 is not a regression budget).
type Tolerances struct {
	// Throughput fails when records_per_s drops more than this fraction
	// below the baseline.
	Throughput float64
	// P99Frac and P99SlackS fail when freshness p99 exceeds
	// base*(1+P99Frac) + P99SlackS seconds.
	P99Frac   float64
	P99SlackS float64
	// HeapFrac and HeapSlackBytes fail when the heap ceiling exceeds
	// base*(1+HeapFrac) + HeapSlackBytes.
	HeapFrac       float64
	HeapSlackBytes int64
}

// DefaultTolerances is the CI gate: generous enough for shared-runner
// noise, tight enough that a real regression (a leak, an O(n) slip in the
// ingest path, a stalled seal) cannot hide.
func DefaultTolerances() Tolerances {
	return Tolerances{
		Throughput:     0.30,
		P99Frac:        0.50,
		P99SlackS:      2.0,
		HeapFrac:       0.50,
		HeapSlackBytes: 64 << 20,
	}
}

// Check gates a fresh run against a committed baseline. It returns one
// message per violated SLO (empty = pass). Sanity violations — a run that
// sent nothing, returned HTTP errors, or never produced a freshness
// observation where the baseline did — fail regardless of tolerances:
// a harness that measured nothing must never green-light a regression.
func Check(baseline, current *File, tol Tolerances) []string {
	var fails []string
	cur, base := current.Results, baseline.Results
	if cur.RecordsSent == 0 {
		fails = append(fails, "no records were acknowledged: the run measured nothing")
	}
	if cur.HTTPErrors > 0 {
		fails = append(fails, fmt.Sprintf("%d HTTP errors: every non-429 failure is an SLO breach", cur.HTTPErrors))
	}
	if cur.FreshnessCount == 0 && base.FreshnessCount > 0 {
		fails = append(fails, "no freshness observations: the ingest→seal→fold pipeline never completed")
	}
	if base.RecordsPerS > 0 {
		floor := base.RecordsPerS * (1 - tol.Throughput)
		if cur.RecordsPerS < floor {
			fails = append(fails, fmt.Sprintf("throughput %.0f records/s is below the floor %.0f (baseline %.0f −%.0f%%)",
				cur.RecordsPerS, floor, base.RecordsPerS, tol.Throughput*100))
		}
	}
	if base.FreshnessCount > 0 && cur.FreshnessCount > 0 {
		ceil := base.FreshnessP99S*(1+tol.P99Frac) + tol.P99SlackS
		if cur.FreshnessP99S > ceil {
			fails = append(fails, fmt.Sprintf("freshness p99 %.2fs exceeds the ceiling %.2fs (baseline %.2fs +%.0f%% +%.1fs)",
				cur.FreshnessP99S, ceil, base.FreshnessP99S, tol.P99Frac*100, tol.P99SlackS))
		}
	}
	if base.HeapMaxBytes > 0 {
		ceil := int64(float64(base.HeapMaxBytes)*(1+tol.HeapFrac)) + tol.HeapSlackBytes
		if cur.HeapMaxBytes > ceil {
			fails = append(fails, fmt.Sprintf("heap ceiling %d bytes exceeds the limit %d (baseline %d +%.0f%% +%d)",
				cur.HeapMaxBytes, ceil, base.HeapMaxBytes, tol.HeapFrac*100, tol.HeapSlackBytes))
		}
	}
	return fails
}
