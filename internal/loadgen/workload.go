package loadgen

import (
	"fmt"
	"time"

	"trips/internal/position"
	"trips/internal/simul"
)

// DeviceStream is one simulated shopper's delivery schedule: the records
// in the exact order (including redeliveries) its sender will POST them.
type DeviceStream struct {
	Device  position.DeviceID
	Records []position.Record
	// Duplicates counts the redelivered records in the schedule, so a
	// harness consumer can separate offered load from distinct records.
	Duplicates int
}

// workloadStart is the event-time origin of generated journeys. It sits a
// day past the demo dataset's window so load devices never collide with
// the server's startup corpus, and it is fixed (not wall clock) so runs
// are reproducible record-for-record.
var workloadStart = time.Date(2017, 1, 2, 10, 0, 0, 0, time.UTC)

// BuildWorkload simulates the profile's shopper fleet over the same mall
// the demo server runs (3 floors × 6 shops) and shapes each device's
// observation sequence into an adversarial delivery schedule: bounded
// shuffle plus periodic duplicates. Reconnect redelivery happens at the
// sender (client.go) because it is a transport behavior, not a schedule.
func BuildWorkload(p Profile) ([]DeviceStream, error) {
	if p.Devices <= 0 || p.Visits <= 0 {
		return nil, fmt.Errorf("loadgen: profile needs devices and visits, got %d/%d", p.Devices, p.Visits)
	}
	model, err := simul.BuildMall(simul.MallSpec{Floors: 3, ShopsPerFloor: 6})
	if err != nil {
		return nil, err
	}
	sim := simul.NewSim(model, p.Seed)
	rng := lcg(uint64(p.Seed) ^ 0x9e3779b97f4a7c15)
	streams := make([]DeviceStream, 0, p.Devices)
	for i := 0; i < p.Devices; i++ {
		dev := position.DeviceID(fmt.Sprintf("load-%03d", i))
		start := workloadStart.Add(time.Duration(rng(20*60)) * time.Second)
		truth, err := sim.SimulateVisit(dev, start, sim.RandomItinerary(p.Visits))
		if err != nil {
			return nil, err
		}
		raw := sim.Observe(truth, simul.DefaultErrorModel())
		recs := append([]position.Record(nil), raw.Records...)
		sched, dups := shapeDelivery(recs, p, rng)
		streams = append(streams, DeviceStream{Device: dev, Records: sched, Duplicates: dups})
	}
	return streams, nil
}

// lcg returns a deterministic bounded-int source (same constants as the
// repo's test schedules), independent from the simulator's rand stream.
func lcg(seed uint64) func(mod int) int {
	st := seed
	return func(mod int) int {
		st = st*6364136223846793005 + 1442695040888963407
		return int((st >> 33) % uint64(mod))
	}
}

// shapeDelivery perturbs one device's in-order records into the
// production failure shape: a Fisher-Yates shuffle within disjoint
// windows (no record moves more than ShuffleWindow-1 positions), then a
// duplicate of every DuplicateEvery-th record reinserted ~5 positions
// later.
func shapeDelivery(recs []position.Record, p Profile, next func(int) int) (sched []position.Record, dups int) {
	sched = recs
	if w := p.ShuffleWindow; w > 1 {
		for base := 0; base < len(sched); base += w {
			end := min(base+w, len(sched))
			for i := end - 1; i > base; i-- {
				j := base + next(i-base+1)
				sched[i], sched[j] = sched[j], sched[i]
			}
		}
	}
	if p.DuplicateEvery > 0 {
		type insertion struct {
			pos int
			rec position.Record
		}
		var ins []insertion
		for i := len(sched) - 1; i >= 0; i -= p.DuplicateEvery {
			ins = append(ins, insertion{pos: i + 5, rec: sched[i]})
			dups++
		}
		for _, d := range ins { // highest position first: indexes stay valid
			pos := min(d.pos, len(sched))
			sched = append(sched[:pos], append([]position.Record{d.rec}, sched[pos:]...)...)
		}
	}
	return sched, dups
}
