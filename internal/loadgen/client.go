package loadgen

import (
	"bufio"
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"trips/internal/position"
)

// senderStats is one device sender's tally; Run sums them into Results.
type senderStats struct {
	sent       int64 // records acknowledged by a 200
	requests   int64 // POST /ingest attempts, retries included
	retries    int64 // re-sends after a 429
	rejected   int64 // 429 responses observed
	reconnects int64 // deliberate connection drops + batch redeliveries
	httpErrors int64 // non-200, non-429 responses and transport failures
}

func (s *senderStats) add(o senderStats) {
	s.sent += o.sent
	s.requests += o.requests
	s.retries += o.retries
	s.rejected += o.rejected
	s.reconnects += o.reconnects
	s.httpErrors += o.httpErrors
}

// maxRetryAfter caps how long a sender honors a Retry-After hint, so a
// misconfigured server cannot park the whole fleet.
const maxRetryAfter = 2 * time.Second

// runDevice streams one device's schedule closed-loop: one request in
// flight, batches of BatchSize records as CSV, retry the same batch after
// a 429 (honoring Retry-After), and — every ReconnectEvery-th batch — a
// reconnect storm contribution: drop the transport's idle connections and
// redeliver the previous batch, the at-least-once behavior of a client
// that lost its ack in the disconnect.
func runDevice(ctx context.Context, hc *http.Client, addr string, stream DeviceStream, p Profile) senderStats {
	var st senderStats
	batch := p.BatchSize
	if batch <= 0 {
		batch = 32
	}
	var prev []position.Record
	for n, i := 0, 0; i < len(stream.Records); n++ {
		end := min(i+batch, len(stream.Records))
		cur := stream.Records[i:end]
		i = end
		if p.ReconnectEvery > 0 && n > 0 && n%p.ReconnectEvery == 0 && prev != nil {
			hc.CloseIdleConnections()
			st.reconnects++
			sendBatch(ctx, hc, addr, prev, &st, true, "")
		}
		// Redeliveries stay untraced: the forced trace describes the batch's
		// first delivery, not the retry shape layered on top.
		var tid string
		if p.TraceEvery > 0 && n%p.TraceEvery == 0 {
			tid = syntheticTraceID(string(stream.Device), n, p.Seed)
		}
		if !sendBatch(ctx, hc, addr, cur, &st, false, tid) {
			return st // context canceled: stop offering load
		}
		prev = cur
	}
	return st
}

// sendBatch posts one CSV batch until acknowledged. Redeliveries don't
// count into sent: the server already acked those records once, so only
// distinct acked records feed the throughput number. A non-empty traceID
// rides every attempt as X-Trace-Id, forcing the server to keep the
// request's end-to-end trace. Returns false only when the context ends.
func sendBatch(ctx context.Context, hc *http.Client, addr string, recs []position.Record, st *senderStats, redelivery bool, traceID string) bool {
	ds := position.NewDataset()
	for _, r := range recs {
		ds.Add(r)
	}
	var body bytes.Buffer
	if err := position.WriteCSV(&body, ds); err != nil {
		st.httpErrors++
		return true
	}
	payload := body.Bytes()
	for attempt := 0; ; attempt++ {
		if ctx.Err() != nil {
			return false
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, addr+"/ingest", bytes.NewReader(payload))
		if err != nil {
			st.httpErrors++
			return true
		}
		req.Header.Set("Content-Type", "text/csv")
		if traceID != "" {
			req.Header.Set("X-Trace-Id", traceID)
		}
		st.requests++
		resp, err := hc.Do(req)
		if err != nil {
			if ctx.Err() != nil {
				return false
			}
			st.httpErrors++
			return true
		}
		code := resp.StatusCode
		ra := resp.Header.Get("Retry-After")
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		switch code {
		case http.StatusOK:
			if !redelivery {
				st.sent += int64(len(recs))
			}
			return true
		case http.StatusTooManyRequests:
			st.rejected++
			st.retries++
			if !sleepCtx(ctx, retryDelay(ra)) {
				return false
			}
		default:
			st.httpErrors++
			return true
		}
	}
}

// retryDelay turns a Retry-After header into a bounded wait; a missing or
// malformed hint backs off briefly rather than hot-looping.
func retryDelay(header string) time.Duration {
	if secs, err := strconv.Atoi(header); err == nil && secs >= 0 {
		return min(time.Duration(secs)*time.Second, maxRetryAfter)
	}
	return 50 * time.Millisecond
}

func sleepCtx(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return ctx.Err() == nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}

// slowSubscriber opens an /analytics/subscribe SSE stream and then reads
// nothing further — the misbehaving-consumer shape that must trip the
// delta hub's eviction (never stall ingest). It holds the connection
// until the context ends or the server evicts it.
func slowSubscriber(ctx context.Context, hc *http.Client, addr string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, addr+"/analytics/subscribe", nil)
	if err != nil {
		return err
	}
	resp, err := hc.Do(req)
	if err != nil {
		if ctx.Err() != nil {
			return nil
		}
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("subscribe status %d", resp.StatusCode)
	}
	// Read exactly one line to prove the stream is live, then stop
	// draining: the server's writes back up into the socket and the hub
	// buffer behind it.
	br := bufio.NewReader(resp.Body)
	if _, err := br.ReadString('\n'); err != nil {
		return nil // stream closed immediately; eviction or shutdown
	}
	<-ctx.Done()
	return nil
}
