package loadgen

import (
	"bytes"
	"math"
	"testing"
	"time"

	"trips/internal/obs"
)

// TestHistogramQuantileMatchesObs proves the scrape-side quantile — the
// one computed from rendered cumulative buckets — agrees with the
// in-process obs.Histogram.Quantile it mirrors, over the freshness bucket
// layout the harness actually reads.
func TestHistogramQuantileMatchesObs(t *testing.T) {
	reg := obs.NewRegistry()
	h := reg.Histogram("trips_freshness_seconds", "test", obs.FreshnessBounds)
	// A spread that lands in several finite buckets, sub-second to
	// minutes — none in the open bucket, where the scrape side clamps to
	// the last bound instead of the true max.
	for _, d := range []time.Duration{
		200 * time.Millisecond, 300 * time.Millisecond, 700 * time.Millisecond,
		2 * time.Second, 2 * time.Second, 4 * time.Second, 8 * time.Second,
		20 * time.Second, 45 * time.Second, 90 * time.Second,
	} {
		h.Observe(d)
	}
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	s, err := obs.ParseExposition(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range []float64{0.5, 0.9, 0.99} {
		want := h.Quantile(q).Seconds()
		got := HistogramQuantile(s, "trips_freshness_seconds", q)
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("q=%.2f: scraped %.6fs, in-process %.6fs", q, got, want)
		}
	}
	if got := histogramCount(s, "trips_freshness_seconds"); got != h.Count() {
		t.Errorf("scraped count %d, in-process %d", got, h.Count())
	}
}

// TestHistogramQuantileEmpty returns 0 for a histogram with no
// observations or one missing from the scrape entirely.
func TestHistogramQuantileEmpty(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Histogram("trips_freshness_seconds", "test", obs.FreshnessBounds)
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	s, err := obs.ParseExposition(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got := HistogramQuantile(s, "trips_freshness_seconds", 0.99); got != 0 {
		t.Errorf("empty histogram quantile = %v, want 0", got)
	}
	if got := HistogramQuantile(s, "no_such_metric", 0.5); got != 0 {
		t.Errorf("missing histogram quantile = %v, want 0", got)
	}
}

// TestSubClampsResets differences two scrapes and clamps counter resets
// to zero instead of reporting negative deltas.
func TestSubClampsResets(t *testing.T) {
	initial := Sample{"a_total": 10, "b_total": 5}
	final := Sample{"a_total": 25, "b_total": 2, "c_total": 7}
	d := Sub(final, initial)
	if d["a_total"] != 15 || d["b_total"] != 0 || d["c_total"] != 7 {
		t.Errorf("Sub = %v, want a=15 b=0 c=7", d)
	}
}
