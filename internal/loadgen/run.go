package loadgen

import (
	"context"
	"fmt"
	"net/http"
	"sync"
	"time"

	"trips/internal/obs/trace"
)

// Results is the measured outcome of one load run: client-side counters
// from the senders plus server-side deltas scraped from /metrics. Every
// cumulative server series is differenced against a pre-run scrape, so a
// warm server's history never leaks into the numbers.
type Results struct {
	RecordsSent int64   `json:"records_sent"`
	RecordsPerS float64 `json:"records_per_s"`
	ElapsedS    float64 `json:"elapsed_s"`

	// Freshness is the ingest→seal→analytics-visible pipeline delay
	// (trips_freshness_seconds), quantiles interpolated from the scraped
	// buckets over this run's observations only.
	FreshnessP50S  float64 `json:"freshness_p50_s"`
	FreshnessP99S  float64 `json:"freshness_p99_s"`
	FreshnessCount int64   `json:"freshness_count"`

	IngestRequests int64 `json:"ingest_requests"`
	Rejected429    int64 `json:"rejected_429"`
	Retries        int64 `json:"retries"`
	Reconnects     int64 `json:"reconnects"`
	HTTPErrors     int64 `json:"http_errors"`

	LateRecords         int64 `json:"late_records"`
	DuplicateRecords    int64 `json:"duplicate_records"`
	BackloggedRecords   int64 `json:"backlogged_records"`
	TripletsSealed      int64 `json:"triplets_sealed"`
	TripsFolded         int64 `json:"trips_folded"`
	SubscriberEvictions int64 `json:"subscriber_evictions"`

	// HeapMaxBytes is the largest trips_runtime_heap_alloc_bytes seen by
	// the 250ms sampler during the run — the memory ceiling the SLO gate
	// holds.
	HeapMaxBytes int64 `json:"heap_max_bytes"`

	// SlowestTrace is the slowest end-to-end trace the run left in the
	// server's trace ring (profiles with TraceEvery > 0): the worst
	// request's stage breakdown becomes part of the perf artifact. Omitted
	// on untraced runs.
	SlowestTrace *trace.TraceView `json:"slowest_trace,omitempty"`
}

// Runner drives one load run against a live server.
type Runner struct {
	// Addr is the server base URL, e.g. "http://127.0.0.1:8765".
	Addr    string
	Profile Profile
	// Client is the HTTP transport; nil uses a dedicated client with
	// sane timeouts. Slow subscribers always get their own client so
	// their unread bodies can't starve the sender pool's connections.
	Client *http.Client
	// Logf, when set, receives progress lines.
	Logf func(format string, args ...any)
}

func (r *Runner) logf(format string, args ...any) {
	if r.Logf != nil {
		r.Logf(format, args...)
	}
}

// Run executes the profile: wait for the server, scrape a baseline,
// unleash the fleet (senders + slow subscribers + heap sampler), wait for
// the pipeline to settle, scrape again, and difference. The context
// cancels the run early; whatever was measured so far still reports.
func (r *Runner) Run(ctx context.Context) (Results, error) {
	var res Results
	hc := r.Client
	if hc == nil {
		hc = &http.Client{Timeout: 30 * time.Second}
	}
	streams, err := BuildWorkload(r.Profile)
	if err != nil {
		return res, err
	}
	var offered int
	for _, s := range streams {
		offered += len(s.Records)
	}
	r.logf("workload: %d devices, %d scheduled deliveries", len(streams), offered)

	before, err := r.awaitServer(ctx, hc)
	if err != nil {
		return res, err
	}

	// Slow subscribers and the heap sampler live on their own context so
	// they stop as soon as measurement ends.
	bgCtx, bgStop := context.WithCancel(ctx)
	defer bgStop()
	var heapMax int64
	var bg sync.WaitGroup
	bg.Add(1)
	go func() {
		defer bg.Done()
		t := time.NewTicker(250 * time.Millisecond)
		defer t.Stop()
		for {
			select {
			case <-bgCtx.Done():
				return
			case <-t.C:
				if s, err := scrapeMetrics(bgCtx, hc, r.Addr); err == nil {
					if h := int64(s["trips_runtime_heap_alloc_bytes"]); h > heapMax {
						heapMax = h
					}
				}
			}
		}
	}()
	subClient := &http.Client{} // no timeout: the stream is held open deliberately
	for i := 0; i < r.Profile.SlowSubscribers; i++ {
		bg.Add(1)
		go func() {
			defer bg.Done()
			if err := slowSubscriber(bgCtx, subClient, r.Addr); err != nil {
				r.logf("slow subscriber: %v", err)
			}
		}()
	}

	start := time.Now()
	statsc := make(chan senderStats, len(streams))
	var senders sync.WaitGroup
	for _, stream := range streams {
		senders.Add(1)
		go func(st DeviceStream) {
			defer senders.Done()
			statsc <- runDevice(ctx, hc, r.Addr, st, r.Profile)
		}(stream)
	}
	senders.Wait()
	close(statsc)
	sendWindow := time.Since(start)
	var total senderStats
	for st := range statsc {
		total.add(st)
	}
	r.logf("senders done: %d records acked in %s (%d requests, %d retries, %d reconnects)",
		total.sent, sendWindow.Round(time.Millisecond), total.requests, total.retries, total.reconnects)

	after := r.settle(ctx, hc, before)
	bgStop()
	bg.Wait()
	// One final heap reading so a run shorter than the sampler period
	// still reports a ceiling.
	if h := int64(after["trips_runtime_heap_alloc_bytes"]); h > heapMax {
		heapMax = h
	}

	delta := Sub(after, before)
	res = Results{
		RecordsSent:         total.sent,
		ElapsedS:            sendWindow.Seconds(),
		FreshnessP50S:       HistogramQuantile(delta, "trips_freshness_seconds", 0.50),
		FreshnessP99S:       HistogramQuantile(delta, "trips_freshness_seconds", 0.99),
		FreshnessCount:      histogramCount(delta, "trips_freshness_seconds"),
		IngestRequests:      total.requests,
		Rejected429:         total.rejected,
		Retries:             total.retries,
		Reconnects:          total.reconnects,
		HTTPErrors:          total.httpErrors,
		LateRecords:         int64(delta["trips_online_late_records_total"]),
		DuplicateRecords:    int64(delta["trips_online_duplicate_records_total"]),
		BackloggedRecords:   int64(delta["trips_online_backlogged_total"]),
		TripletsSealed:      int64(delta["trips_online_triplets_total"]),
		TripsFolded:         int64(delta["trips_analytics_trips_folded_total"]),
		SubscriberEvictions: int64(delta["trips_analytics_subscriber_evictions_total"]),
		HeapMaxBytes:        heapMax,
	}
	if sendWindow > 0 {
		res.RecordsPerS = float64(total.sent) / sendWindow.Seconds()
	}
	if r.Profile.TraceEvery > 0 {
		tv, err := fetchSlowestTrace(ctx, hc, r.Addr)
		if err != nil {
			r.logf("slowest-trace fetch: %v", err)
		} else {
			res.SlowestTrace = tv
			r.logf("slowest kept trace %s: %.1f ms over %d spans (device %s)",
				tv.ID, tv.DurationMs, len(tv.Spans), tv.Device)
		}
	}
	return res, nil
}

// awaitServer polls /metrics until the server answers with a parseable
// exposition (readiness plus the run's baseline scrape in one).
func (r *Runner) awaitServer(ctx context.Context, hc *http.Client) (Sample, error) {
	deadline := time.Now().Add(30 * time.Second)
	for {
		s, err := scrapeMetrics(ctx, hc, r.Addr)
		if err == nil {
			return s, nil
		}
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("loadgen: server at %s never served /metrics: %w", r.Addr, err)
		}
		time.Sleep(200 * time.Millisecond)
	}
}

// settle waits (bounded by SettleTimeout) for the pipeline to drain after
// the last send: the shard backlog at zero and the warehouse trip count
// stable across consecutive polls. Once stable it waits out the server's
// 1s analytics stats cache before the final scrape, so the folded/eviction
// bridges reflect the run rather than a cached pre-fold snapshot. On
// timeout or cancellation it returns the most recent scrape.
func (r *Runner) settle(ctx context.Context, hc *http.Client, last Sample) Sample {
	timeout := r.Profile.SettleTimeout
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	deadline := time.Now().Add(timeout)
	prevTrips := -1.0
	for {
		s, err := scrapeMetrics(ctx, hc, r.Addr)
		if err == nil {
			last = s
			trips := s["trips_store_trips_total"]
			if s["trips_online_shard_backlog_records"] == 0 && trips == prevTrips {
				break
			}
			prevTrips = trips
		}
		if ctx.Err() != nil || time.Now().After(deadline) {
			return last
		}
		time.Sleep(200 * time.Millisecond)
	}
	if !sleepCtx(ctx, 1100*time.Millisecond) {
		return last
	}
	if s, err := scrapeMetrics(ctx, hc, r.Addr); err == nil {
		last = s
	}
	return last
}
