// Package viewer implements the Viewer backend of TRIPS: the Indoor Map
// Visualizer and the Mobility Data Visualizer (paper Sec. 2 and "Visual-
// ization of Mobility Data Sequences" in Sec. 3).
//
// The key idea is the abstraction of different mobility data: "we abstract
// each data sequence as a timeline of entries, each consists of a display
// point and a time range" — positioning records map to (location, instant),
// mobility semantics map to (selected source location, temporal annotation).
// One rendering path then draws raw, cleaned, ground-truth and semantics
// sequences uniformly, with a legend panel toggling source visibility, a
// floor switch, and a timeline whose primary navigator is the semantics
// sequence.
package viewer

import (
	"fmt"
	"sort"
	"time"

	"trips/internal/dsm"
	"trips/internal/geom"
	"trips/internal/position"
	"trips/internal/semantics"
)

// SourceKind identifies one of the mobility data sequences involved in the
// translation.
type SourceKind string

// The four sources the paper's Viewer renders.
const (
	SourceRaw       SourceKind = "raw"
	SourceCleaned   SourceKind = "cleaned"
	SourceTruth     SourceKind = "truth"
	SourceSemantics SourceKind = "semantics"
)

// Entry is the unified timeline element: a display point on a floor plus a
// time range. Records use their instant for both ends; semantics use their
// temporal annotation.
type Entry struct {
	Source   SourceKind      `json:"source"`
	Label    string          `json:"label,omitempty"`
	P        geom.Point      `json:"p"`
	Floor    dsm.FloorID     `json:"floor"`
	From     time.Time       `json:"from"`
	To       time.Time       `json:"to"`
	Event    semantics.Event `json:"event,omitempty"`
	Inferred bool            `json:"inferred,omitempty"`
}

// Covers reports whether the entry's range intersects [from, to).
func (e Entry) Covers(from, to time.Time) bool {
	return e.From.Before(to) && !e.To.Before(from)
}

// FromPositioning abstracts a positioning sequence into entries.
func FromPositioning(kind SourceKind, s *position.Sequence) []Entry {
	out := make([]Entry, 0, s.Len())
	for _, r := range s.Records {
		out = append(out, Entry{
			Source: kind, P: r.P, Floor: r.Floor, From: r.At, To: r.At,
		})
	}
	return out
}

// FromSemantics abstracts a mobility semantics sequence into entries. The
// display point policy was already applied by the Annotator; the entry
// reuses the triplet's display point.
func FromSemantics(s *semantics.Sequence) []Entry {
	out := make([]Entry, 0, s.Len())
	for _, t := range s.Triplets {
		out = append(out, Entry{
			Source: SourceSemantics,
			Label:  fmt.Sprintf("%s @ %s", t.Event, t.Region),
			P:      t.Display, Floor: t.Floor,
			From: t.From, To: t.To,
			Event: t.Event, Inferred: t.Inferred,
		})
	}
	return out
}

// View is the interactive state of the Viewer for one device: the venue
// map, the four data sources, per-source visibility, and the current floor.
type View struct {
	Model   *dsm.Model
	sources map[SourceKind][]Entry
	visible map[SourceKind]bool
	floor   dsm.FloorID
}

// NewView creates a view on the venue showing its lowest floor with every
// source visible.
func NewView(m *dsm.Model) *View {
	v := &View{
		Model:   m,
		sources: make(map[SourceKind][]Entry),
		visible: make(map[SourceKind]bool),
	}
	if fl := m.Floors(); len(fl) > 0 {
		v.floor = fl[0]
	}
	return v
}

// SetSource installs (or replaces) the entries of a source and makes it
// visible.
func (v *View) SetSource(kind SourceKind, entries []Entry) {
	v.sources[kind] = entries
	v.visible[kind] = true
}

// Toggle flips a source's visibility (the legend panel checkboxes) and
// returns the new state.
func (v *View) Toggle(kind SourceKind) bool {
	v.visible[kind] = !v.visible[kind]
	return v.visible[kind]
}

// Visible reports a source's visibility.
func (v *View) Visible(kind SourceKind) bool { return v.visible[kind] }

// Sources lists the installed sources in deterministic order.
func (v *View) Sources() []SourceKind {
	out := make([]SourceKind, 0, len(v.sources))
	for k := range v.sources {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Entries returns the entries of one source (visible or not).
func (v *View) Entries(kind SourceKind) []Entry { return v.sources[kind] }

// SwitchFloor changes the displayed floor ("allows a switch between
// different floors"); unknown floors are rejected.
func (v *View) SwitchFloor(f dsm.FloorID) error {
	if !v.Model.HasFloor(f) {
		return fmt.Errorf("viewer: no floor %v", f)
	}
	v.floor = f
	return nil
}

// Floor returns the displayed floor.
func (v *View) Floor() dsm.FloorID { return v.floor }

// VisibleAt returns the entries of visible sources on the current floor
// whose range intersects [from, to) — what the map view draws when the user
// selects a timeline span.
func (v *View) VisibleAt(from, to time.Time) []Entry {
	var out []Entry
	for _, kind := range v.Sources() {
		if !v.visible[kind] {
			continue
		}
		for _, e := range v.sources[kind] {
			if e.Floor == v.floor && e.Covers(from, to) {
				out = append(out, e)
			}
		}
	}
	return out
}

// Navigator returns the semantics entries in time order — "we use the
// mobility semantics as the primary navigator as it is the most concise".
func (v *View) Navigator() []Entry {
	nav := append([]Entry(nil), v.sources[SourceSemantics]...)
	sort.SliceStable(nav, func(i, j int) bool { return nav[i].From.Before(nav[j].From) })
	return nav
}

// SelectNavigator emulates clicking the i-th semantics entry on the
// timeline: the view switches to that entry's floor and returns all
// relevant entries covered by its time range.
func (v *View) SelectNavigator(i int) ([]Entry, error) {
	nav := v.Navigator()
	if i < 0 || i >= len(nav) {
		return nil, fmt.Errorf("viewer: navigator index %d of %d", i, len(nav))
	}
	sel := nav[i]
	if err := v.SwitchFloor(sel.Floor); err != nil {
		return nil, err
	}
	// The temporal annotation is inclusive of its end instant: a record
	// timestamped exactly at To belongs to the selection.
	return v.VisibleAt(sel.From, sel.To.Add(time.Nanosecond)), nil
}

// Frame is one step of the animated, semantics-enriched movement playback
// ("one can slide the timeline to play an animated ... movement").
type Frame struct {
	At      time.Time
	Entries []Entry
	// Current is the semantics entry active at the frame time, if any.
	Current *Entry
}

// Animate produces playback frames between the earliest and latest visible
// entries at the given step, each frame holding a sliding window of the
// trailing `window` duration.
func (v *View) Animate(step, window time.Duration) []Frame {
	if step <= 0 {
		step = 5 * time.Second
	}
	if window <= 0 {
		window = 30 * time.Second
	}
	var lo, hi time.Time
	for _, kind := range v.Sources() {
		for _, e := range v.sources[kind] {
			if lo.IsZero() || e.From.Before(lo) {
				lo = e.From
			}
			if hi.IsZero() || e.To.After(hi) {
				hi = e.To
			}
		}
	}
	if lo.IsZero() {
		return nil
	}
	nav := v.Navigator()
	var frames []Frame
	for t := lo; !t.After(hi); t = t.Add(step) {
		f := Frame{At: t, Entries: v.VisibleAt(t.Add(-window), t.Add(time.Nanosecond))}
		for i := range nav {
			if !t.Before(nav[i].From) && t.Before(nav[i].To) {
				f.Current = &nav[i]
				break
			}
		}
		frames = append(frames, f)
	}
	return frames
}

// Tooltip describes what the map shows at a location — the "necessary
// tooltips" of the Indoor Map Visualizer.
func (v *View) Tooltip(p geom.Point) string {
	if r := v.Model.RegionAt(p, v.floor); r != nil {
		return fmt.Sprintf("%s (%s)", r.Tag, r.Category)
	}
	if e := v.Model.Locate(p, v.floor); e != nil {
		if e.Name != "" {
			return e.Name
		}
		return string(e.ID)
	}
	return ""
}
