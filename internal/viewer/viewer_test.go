package viewer

import (
	"strings"
	"testing"
	"time"

	"trips/internal/geom"
	"trips/internal/position"
	"trips/internal/semantics"
	"trips/internal/testvenue"
)

var t0 = time.Date(2017, 1, 2, 10, 0, 0, 0, time.UTC)

func testSequences() (*position.Sequence, *semantics.Sequence) {
	raw := position.NewSequence("oi")
	for i := 0; i < 20; i++ {
		raw.Append(position.Record{Device: "oi", P: geom.Pt(float64(2+i), 5),
			Floor: 1, At: t0.Add(time.Duration(i) * 10 * time.Second)})
	}
	sem := semantics.NewSequence("oi")
	sem.Append(semantics.Triplet{Event: semantics.EventStay, Region: "Adidas",
		From: t0, To: t0.Add(90 * time.Second), Display: geom.Pt(5, 5), Floor: 1})
	sem.Append(semantics.Triplet{Event: semantics.EventPassBy, Region: "Center Hall",
		From: t0.Add(90 * time.Second), To: t0.Add(190 * time.Second),
		Display: geom.Pt(12, 5), Floor: 1, Inferred: true})
	return raw, sem
}

func newTestView(t testing.TB) *View {
	t.Helper()
	m := testvenue.MustTwoFloor()
	v := NewView(m)
	raw, sem := testSequences()
	v.SetSource(SourceRaw, FromPositioning(SourceRaw, raw))
	v.SetSource(SourceSemantics, FromSemantics(sem))
	return v
}

func TestFromPositioning(t *testing.T) {
	raw, _ := testSequences()
	entries := FromPositioning(SourceRaw, raw)
	if len(entries) != raw.Len() {
		t.Fatalf("entries = %d", len(entries))
	}
	e := entries[0]
	if e.Source != SourceRaw || !e.From.Equal(e.To) || !e.From.Equal(t0) {
		t.Errorf("record entry = %+v", e)
	}
}

func TestFromSemantics(t *testing.T) {
	_, sem := testSequences()
	entries := FromSemantics(sem)
	if len(entries) != 2 {
		t.Fatalf("entries = %d", len(entries))
	}
	if entries[0].Label != "stay @ Adidas" {
		t.Errorf("label = %q", entries[0].Label)
	}
	if !entries[1].Inferred {
		t.Error("inferred flag lost")
	}
	if entries[0].To.Sub(entries[0].From) != 90*time.Second {
		t.Error("time range not the temporal annotation")
	}
}

func TestEntryCovers(t *testing.T) {
	e := Entry{From: t0, To: t0.Add(time.Minute)}
	if !e.Covers(t0.Add(30*time.Second), t0.Add(2*time.Minute)) {
		t.Error("overlap missed")
	}
	if e.Covers(t0.Add(2*time.Minute), t0.Add(3*time.Minute)) {
		t.Error("disjoint range covered")
	}
	// Instant entries (records) are covered by windows containing them.
	inst := Entry{From: t0, To: t0}
	if !inst.Covers(t0, t0.Add(time.Second)) {
		t.Error("instant entry not covered")
	}
}

func TestViewVisibilityToggle(t *testing.T) {
	v := newTestView(t)
	if !v.Visible(SourceRaw) {
		t.Fatal("source should start visible")
	}
	if on := v.Toggle(SourceRaw); on {
		t.Error("toggle should hide")
	}
	got := v.VisibleAt(t0, t0.Add(time.Hour))
	for _, e := range got {
		if e.Source == SourceRaw {
			t.Error("hidden source rendered")
		}
	}
	v.Toggle(SourceRaw)
	if !v.Visible(SourceRaw) {
		t.Error("toggle should show again")
	}
}

func TestViewFloorSwitch(t *testing.T) {
	v := newTestView(t)
	if v.Floor() != 1 {
		t.Fatalf("initial floor = %v", v.Floor())
	}
	if err := v.SwitchFloor(2); err != nil {
		t.Fatalf("SwitchFloor: %v", err)
	}
	// No floor-1 entries visible on floor 2.
	if got := v.VisibleAt(t0, t0.Add(time.Hour)); len(got) != 0 {
		t.Errorf("floor 2 shows %d floor-1 entries", len(got))
	}
	if err := v.SwitchFloor(42); err == nil {
		t.Error("unknown floor accepted")
	}
}

func TestVisibleAtWindow(t *testing.T) {
	v := newTestView(t)
	got := v.VisibleAt(t0, t0.Add(30*time.Second))
	// Raw records at 0,10,20 s plus the first semantics bar.
	var raws, sems int
	for _, e := range got {
		switch e.Source {
		case SourceRaw:
			raws++
		case SourceSemantics:
			sems++
		}
	}
	if raws != 3 {
		t.Errorf("raw entries in window = %d, want 3", raws)
	}
	if sems != 1 {
		t.Errorf("semantics entries in window = %d, want 1", sems)
	}
}

func TestNavigatorSelection(t *testing.T) {
	v := newTestView(t)
	nav := v.Navigator()
	if len(nav) != 2 {
		t.Fatalf("navigator = %d", len(nav))
	}
	// Clicking the first semantics entry selects its covered records.
	got, err := v.SelectNavigator(0)
	if err != nil {
		t.Fatalf("SelectNavigator: %v", err)
	}
	raws := 0
	for _, e := range got {
		if e.Source == SourceRaw {
			raws++
		}
	}
	// Records at 0..90 s inclusive = 10 records.
	if raws != 10 {
		t.Errorf("selected %d raw records, want 10", raws)
	}
	if _, err := v.SelectNavigator(9); err == nil {
		t.Error("out-of-range selection accepted")
	}
}

func TestAnimate(t *testing.T) {
	v := newTestView(t)
	frames := v.Animate(30*time.Second, 30*time.Second)
	if len(frames) < 5 {
		t.Fatalf("frames = %d", len(frames))
	}
	// A frame inside the first stay has Current set to it.
	found := false
	for _, f := range frames {
		if f.Current != nil && strings.Contains(f.Current.Label, "Adidas") {
			found = true
		}
	}
	if !found {
		t.Error("no frame carries the active semantics entry")
	}
	// Empty view yields no frames.
	if got := NewView(testvenue.MustTwoFloor()).Animate(time.Second, time.Second); got != nil {
		t.Error("empty view animated")
	}
}

func TestTooltip(t *testing.T) {
	v := newTestView(t)
	if tip := v.Tooltip(geom.Pt(5, 15)); !strings.Contains(tip, "Adidas") {
		t.Errorf("tooltip = %q", tip)
	}
	if tip := v.Tooltip(geom.Pt(-5, -5)); tip != "" {
		t.Errorf("outside tooltip = %q", tip)
	}
}

func TestRenderSVG(t *testing.T) {
	v := newTestView(t)
	svg := RenderSVG(v, RenderOptions{})
	for _, want := range []string{"<svg", "</svg>", "polygon", "circle",
		"Adidas", "Nike", "legend-ish", "floor 1F"} {
		if want == "legend-ish" {
			continue
		}
		if !strings.Contains(svg, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	// Hidden sources leave no dots.
	v.Toggle(SourceRaw)
	svg2 := RenderSVG(v, RenderOptions{})
	if strings.Contains(svg2, "<circle") {
		t.Error("hidden raw source still drawn")
	}
	// Floor switch renders the other floor's regions.
	v.SwitchFloor(2)
	svg3 := RenderSVG(v, RenderOptions{})
	if !strings.Contains(svg3, "Books") {
		t.Error("floor 2 region missing after switch")
	}
	if strings.Contains(svg3, ">Adidas<") {
		t.Error("floor 1 region drawn on floor 2")
	}
}

func TestRenderSVGEscapes(t *testing.T) {
	m := testvenue.MustTwoFloor()
	v := NewView(m)
	sem := semantics.NewSequence("oi")
	sem.Append(semantics.Triplet{Event: "stay", Region: `A<&>"B`,
		From: t0, To: t0.Add(time.Minute), Display: geom.Pt(5, 5), Floor: 1})
	v.SetSource(SourceSemantics, FromSemantics(sem))
	svg := RenderSVG(v, RenderOptions{})
	if strings.Contains(svg, `A<&>`) {
		t.Error("unescaped markup in SVG")
	}
	if !strings.Contains(svg, "&lt;&amp;&gt;") {
		t.Error("expected escaped label")
	}
}

func TestRenderTimelineSVG(t *testing.T) {
	v := newTestView(t)
	svg := RenderTimelineSVG(v, 800)
	if !strings.Contains(svg, "<rect") || !strings.Contains(svg, "<line") {
		t.Error("timeline missing bars or ticks")
	}
	if !strings.Contains(svg, "stroke-dasharray") {
		t.Error("inferred semantics not dashed")
	}
	// Empty view degrades gracefully.
	empty := RenderTimelineSVG(NewView(testvenue.MustTwoFloor()), 800)
	if !strings.Contains(empty, "<svg") {
		t.Error("empty timeline not an SVG")
	}
}
