package viewer

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"trips/internal/dsm"
	"trips/internal/geom"
)

// SVG rendering of the map view and the timeline. The renderer draws the
// current floor's entities (styled by kind), the semantic regions with their
// tags, the visible entries of each source (records as dots joined by a
// faint path, semantics as labeled markers), and the legend panel.

// sourceColors styles the four sequences.
var sourceColors = map[SourceKind]string{
	SourceRaw:       "#d62728", // red
	SourceCleaned:   "#1f77b4", // blue
	SourceTruth:     "#2ca02c", // green
	SourceSemantics: "#9467bd", // purple
}

// kindFill styles entity polygons.
var kindFill = map[dsm.EntityKind]string{
	dsm.KindRoom:      "#f5f0e6",
	dsm.KindHallway:   "#ffffff",
	dsm.KindWall:      "#444444",
	dsm.KindDoor:      "#c8a85a",
	dsm.KindStaircase: "#d0e4f5",
	dsm.KindElevator:  "#d0f5e4",
	dsm.KindObstacle:  "#999999",
}

// RenderOptions size the SVG output.
type RenderOptions struct {
	// Scale is pixels per meter (default 12).
	Scale float64
	// Margin is the border in pixels (default 20).
	Margin float64
	// From/To restrict the drawn entries; zero values draw everything.
	From, To time.Time
}

// RenderSVG draws the view's current floor as a standalone SVG document.
func RenderSVG(v *View, opts RenderOptions) string {
	if opts.Scale <= 0 {
		opts.Scale = 12
	}
	if opts.Margin <= 0 {
		opts.Margin = 20
	}
	bounds := v.Model.FloorBounds(v.floor)
	if bounds.IsEmpty() {
		bounds = geom.NewRect(geom.Pt(0, 0), geom.Pt(10, 10))
	}
	sc := opts.Scale
	w := bounds.Width()*sc + 2*opts.Margin
	h := bounds.Height()*sc + 2*opts.Margin
	// Transform building coordinates to SVG pixels (y flipped so north is
	// up).
	tx := func(p geom.Point) (float64, float64) {
		return opts.Margin + (p.X-bounds.Min.X)*sc,
			opts.Margin + (bounds.Max.Y-p.Y)*sc
	}

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%.0f" height="%.0f" viewBox="0 0 %.0f %.0f">`+"\n", w, h, w, h)
	fmt.Fprintf(&b, `<rect width="%.0f" height="%.0f" fill="#fafafa"/>`+"\n", w, h)

	// Entities: draw walls and obstacles above walkable partitions.
	ents := append([]*dsm.Entity(nil), v.Model.Entities...)
	sort.SliceStable(ents, func(i, j int) bool { return entityZ(ents[i].Kind) < entityZ(ents[j].Kind) })
	for _, e := range ents {
		if e.Floor != v.floor {
			continue
		}
		fill := kindFill[e.Kind]
		if fill == "" {
			fill = "#eeeeee"
		}
		fmt.Fprintf(&b, `<polygon points="%s" fill="%s" stroke="#777" stroke-width="0.5"><title>%s</title></polygon>`+"\n",
			polyPoints(e.Shape, tx), fill, escape(entityTitle(e)))
	}

	// Semantic regions: outline + tag label at the centroid.
	for _, r := range v.Model.RegionsOnFloor(v.floor) {
		cx, cy := tx(r.Center())
		fmt.Fprintf(&b, `<polygon points="%s" fill="none" stroke="#b08030" stroke-width="1" stroke-dasharray="4,3"/>`+"\n",
			polyPoints(r.Shape, tx))
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-size="10" text-anchor="middle" fill="#7a5a20">%s</text>`+"\n",
			cx, cy, escape(r.Tag))
	}

	// Entries per source.
	from, to := opts.From, opts.To
	if from.IsZero() {
		from = time.Time{}
	}
	if to.IsZero() {
		to = time.Unix(1<<62-1, 0)
	}
	for _, kind := range v.Sources() {
		if !v.visible[kind] {
			continue
		}
		color := sourceColors[kind]
		var path []string
		for _, e := range v.sources[kind] {
			if e.Floor != v.floor || !e.Covers(from, to) {
				continue
			}
			x, y := tx(e.P)
			if kind == SourceSemantics {
				marker := "&#9632;" // filled square
				if e.Inferred {
					marker = "&#9633;" // hollow square for inferred
				}
				fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-size="12" fill="%s" text-anchor="middle">%s<title>%s</title></text>`+"\n",
					x, y, color, marker, escape(e.Label))
			} else {
				fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="2" fill="%s" fill-opacity="0.7"/>`+"\n", x, y, color)
				path = append(path, fmt.Sprintf("%.1f,%.1f", x, y))
			}
		}
		if len(path) > 1 {
			fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="0.8" stroke-opacity="0.4"/>`+"\n",
				strings.Join(path, " "), color)
		}
	}

	// Legend panel.
	y := opts.Margin
	for _, kind := range v.Sources() {
		mark := "☑"
		if !v.visible[kind] {
			mark = "☐"
		}
		fmt.Fprintf(&b, `<text x="6" y="%.1f" font-size="10" fill="%s">%s %s</text>`+"\n",
			y, sourceColors[kind], mark, kind)
		y += 12
	}
	fmt.Fprintf(&b, `<text x="6" y="%.1f" font-size="10" fill="#333">floor %s</text>`+"\n", y, v.floor)
	b.WriteString("</svg>\n")
	return b.String()
}

// RenderTimelineSVG draws the horizontal timeline: one lane per source,
// semantics entries as labeled bars (the primary navigator), records as
// ticks.
func RenderTimelineSVG(v *View, width float64) string {
	if width <= 0 {
		width = 800
	}
	var lo, hi time.Time
	for _, kind := range v.Sources() {
		for _, e := range v.sources[kind] {
			if lo.IsZero() || e.From.Before(lo) {
				lo = e.From
			}
			if hi.IsZero() || e.To.After(hi) {
				hi = e.To
			}
		}
	}
	if lo.IsZero() || !hi.After(lo) {
		return `<svg xmlns="http://www.w3.org/2000/svg" width="10" height="10"></svg>`
	}
	span := hi.Sub(lo).Seconds()
	tx := func(t time.Time) float64 { return 60 + (t.Sub(lo).Seconds()/span)*(width-80) }

	laneH := 24.0
	kinds := v.Sources()
	h := laneH*float64(len(kinds)) + 30
	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%.0f" height="%.0f">`+"\n", width, h)
	for i, kind := range kinds {
		y := 10 + laneH*float64(i)
		fmt.Fprintf(&b, `<text x="4" y="%.1f" font-size="9" fill="%s">%s</text>`+"\n", y+10, sourceColors[kind], kind)
		for _, e := range v.sources[kind] {
			x0 := tx(e.From)
			if kind == SourceSemantics {
				x1 := tx(e.To)
				if x1-x0 < 2 {
					x1 = x0 + 2
				}
				dash := ""
				if e.Inferred {
					dash = ` stroke-dasharray="3,2"`
				}
				fmt.Fprintf(&b, `<rect x="%.1f" y="%.1f" width="%.1f" height="12" fill="%s" fill-opacity="0.5" stroke="%s"%s><title>%s</title></rect>`+"\n",
					x0, y, x1-x0, sourceColors[kind], sourceColors[kind], dash, escape(e.Label))
			} else {
				fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="%s" stroke-opacity="0.6"/>`+"\n",
					x0, y, x0, y+12, sourceColors[kind])
			}
		}
	}
	fmt.Fprintf(&b, `<text x="60" y="%.1f" font-size="9" fill="#333">%s</text>`+"\n", h-6, lo.Format("15:04:05"))
	fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-size="9" text-anchor="end" fill="#333">%s</text>`+"\n", width-10, h-6, hi.Format("15:04:05"))
	b.WriteString("</svg>\n")
	return b.String()
}

func entityZ(k dsm.EntityKind) int {
	switch k {
	case dsm.KindHallway, dsm.KindRoom:
		return 0
	case dsm.KindStaircase, dsm.KindElevator:
		return 1
	case dsm.KindWall:
		return 2
	case dsm.KindDoor:
		return 3
	default:
		return 4
	}
}

func entityTitle(e *dsm.Entity) string {
	if e.Name != "" {
		return fmt.Sprintf("%s (%s)", e.Name, e.Kind)
	}
	return fmt.Sprintf("%s (%s)", e.ID, e.Kind)
}

func polyPoints(pg geom.Polygon, tx func(geom.Point) (float64, float64)) string {
	parts := make([]string, 0, len(pg.Vertices))
	for _, p := range pg.Vertices {
		x, y := tx(p)
		parts = append(parts, fmt.Sprintf("%.1f,%.1f", x, y))
	}
	return strings.Join(parts, " ")
}

func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
