package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ctxPkgPath/ctxTypeName identify the trace-context type that must travel
// by value: a Ctx shared behind a pointer or parked in a global turns the
// per-record context into cross-record shared state — exactly what the
// by-value shardMsg/Emission threading was built to rule out (aliasing
// races, and a hidden heap allocation on the zero-alloc ingest route).
const (
	ctxPkgPath  = "trips/internal/obs/trace"
	ctxTypeName = "Ctx"
)

// NewCtxValue returns the ctxvalue analyzer: trace.Ctx moves by value,
// never behind a pointer and never into a package-level variable.
func NewCtxValue() *Analyzer {
	an := &Analyzer{
		Name: "ctxvalue",
		Doc: "trace.Ctx must move by value: *trace.Ctx types, &ctx addresses, and " +
			"package-level trace.Ctx variables turn the per-record trace context " +
			"into shared mutable state and put allocations on the ingest route",
	}
	an.Run = func(pass *Pass) error {
		info := pass.Info()

		isCtx := func(t types.Type) bool {
			named, ok := t.(*types.Named)
			if !ok {
				return false
			}
			obj := named.Obj()
			return obj.Name() == ctxTypeName && obj.Pkg() != nil && obj.Pkg().Path() == ctxPkgPath
		}

		for _, f := range pass.Files() {
			// Package-level vars of type Ctx.
			for _, decl := range f.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok {
					continue
				}
				for _, spec := range gd.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					for _, name := range vs.Names {
						v, ok := info.Defs[name].(*types.Var)
						if !ok || !isCtx(v.Type()) {
							continue
						}
						if pass.Allowed(vs) {
							continue
						}
						pass.Reportf(name.Pos(),
							"package-level variable %s holds trace.Ctx: the context is per-record state and must move by value, not through a global",
							name.Name)
					}
				}
			}
			ast.Inspect(f, func(n ast.Node) bool {
				switch e := n.(type) {
				case *ast.StarExpr:
					// *trace.Ctx written as a type (param, result, field,
					// var, conversion, map/slice element...).
					tv, ok := info.Types[e]
					if !ok || !tv.IsType() {
						return true
					}
					ptr, ok := tv.Type.(*types.Pointer)
					if !ok || !isCtx(ptr.Elem()) {
						return true
					}
					if pass.Allowed(e) {
						return true
					}
					pass.Reportf(e.Pos(),
						"*trace.Ctx: the trace context must move by value; a pointer aliases per-record state and heap-allocates on the ingest route")
				case *ast.UnaryExpr:
					if e.Op != token.AND {
						return true
					}
					tv, ok := info.Types[e.X]
					if !ok || tv.Type == nil || !isCtx(tv.Type) {
						return true
					}
					if pass.Allowed(e) {
						return true
					}
					pass.Reportf(e.Pos(),
						"address of trace.Ctx taken: the context must move by value, never behind a pointer")
				}
				return true
			})
		}
		return nil
	}
	return an
}
