package lint

import (
	"go/ast"
	"go/types"
)

// mapiterScope is the set of determinism-critical import paths: packages
// whose output must be byte-identical across runs (the online ≡ batch ≡
// golden property, serialized snapshots, training-set construction). A
// range over a map there is nondeterministic by language spec and needs
// either sorted keys or a //trips:commutative justification. The exact bug
// class shipped in PR 1: refineByRegion's majority vote depended on map
// iteration order, making Annotate nondeterministic.
var mapiterScope = map[string]bool{
	"trips":                      true,
	"trips/internal/core":        true,
	"trips/internal/position":    true,
	"trips/internal/events":      true,
	"trips/internal/dsm":         true,
	"trips/internal/annotation":  true,
	"trips/internal/cleaning":    true,
	"trips/internal/complement":  true,
	"trips/internal/semantics":   true,
	"trips/internal/simul":       true,
	"trips/internal/analytics":   true,
	"trips/internal/tripstore":   true,
	"trips/internal/online":      true,
	"trips/internal/experiments": true,
	"trips/cmd/trips-gen":        true,
	"trips/cmd/trips-server":     true,
	"trips/cmd/trips-translate":  true,
}

// NewMapIter returns the mapiter analyzer: no unjustified range-over-map in
// determinism-critical packages.
func NewMapIter() *Analyzer {
	an := &Analyzer{
		Name: "mapiter",
		Doc: "flags range over maps in determinism-critical packages; map iteration " +
			"order is random, so it must not reach sealed output, serialized state, " +
			"or trained models — sort the keys first or justify the loop with " +
			"//trips:commutative <reason>",
	}
	an.Run = func(pass *Pass) error {
		if !mapiterScope[pass.Path()] {
			return nil
		}
		for _, f := range pass.Files() {
			ast.Inspect(f, func(n ast.Node) bool {
				rng, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				tv, ok := pass.Info().Types[rng.X]
				if !ok || tv.Type == nil {
					return true
				}
				if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
					return true
				}
				if _, ok := pass.SiteDirective(rng, dirCommutative); ok {
					return true
				}
				pass.Reportf(rng.For,
					"range over map %s in determinism-critical package %s: iteration order is random; iterate sorted keys, or justify with //trips:commutative <reason> directly above the loop",
					typeLabel(rng.X), pass.Path())
				return true
			})
		}
		return nil
	}
	return an
}

// typeLabel renders the ranged expression compactly for diagnostics.
func typeLabel(x ast.Expr) string {
	switch e := x.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return typeLabel(e.X) + "." + e.Sel.Name
	case *ast.CallExpr:
		return typeLabel(e.Fun) + "(...)"
	case *ast.IndexExpr:
		return typeLabel(e.X) + "[...]"
	default:
		return "expression"
	}
}
