package lint

import (
	"go/ast"
)

// wallclockScope is the set of packages whose core logic is event-time
// only: watermark, sealing, and admission decisions (online), fold
// frontiers and windowed views (analytics), batch translation (core), the
// warehouse (tripstore), and the server wiring that surfaces them. A bare
// wall-clock read there is how the seed's bug class happens: sealing
// decisions that depend on when the process ran instead of what the records
// say. Operational uses (latency metrics, snapshot timestamps, trace
// stamps) are legal but must say so with //trips:allow wallclock: <reason>;
// injected clocks (the engine's now field) and record timestamps need
// nothing.
var wallclockScope = map[string]bool{
	"trips/internal/online":    true,
	"trips/internal/analytics": true,
	"trips/internal/core":      true,
	"trips/internal/tripstore": true,
	"trips/cmd/trips-server":   true,
}

// wallclockFuncs are the time-package functions that read the wall clock.
var wallclockFuncs = map[string]bool{
	"Now":   true,
	"Since": true,
	"Until": true,
}

// NewWallClock returns the wallclock analyzer: no bare wall-clock reads in
// event-time packages.
func NewWallClock() *Analyzer {
	an := &Analyzer{
		Name: "wallclock",
		Doc: "forbids bare time.Now/Since/Until calls inside event-time packages " +
			"(watermark, sealing, admission, fold-frontier logic) where only record " +
			"timestamps or an injected clock are legal; operational uses carry " +
			"//trips:allow wallclock: <reason>",
	}
	an.Run = func(pass *Pass) error {
		if !wallclockScope[pass.Path()] {
			return nil
		}
		info := pass.Info()
		for _, f := range pass.Files() {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				obj := calleeObject(info, call)
				if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "time" || !wallclockFuncs[obj.Name()] {
					return true
				}
				if pass.Allowed(call) {
					return true
				}
				pass.Reportf(call.Pos(),
					"wall-clock read time.%s in event-time package %s: use record timestamps or the injected clock, or justify an operational use with //trips:allow wallclock: <reason>",
					obj.Name(), pass.Path())
				return true
			})
		}
		return nil
	}
	return an
}
