// Package lint is the TRIPS static-analysis suite: custom analyzers that
// enforce, at review time, the invariants this repo's runtime tests can only
// sample — byte-identical determinism (online ≡ batch ≡ golden), zero-alloc
// hot paths, event-time-only watermark logic, and by-value trace.Ctx
// threading. Every analyzer encodes a bug class the repo has actually hit
// (the PR 1 map-iteration nondeterminism in Annotate, wall-clock reads
// leaking into sealing logic, the cross-shard double count).
//
// The framework mirrors the golang.org/x/tools/go/analysis API shape —
// Analyzer, Pass, Diagnostic, testdata/src fixtures with // want comments —
// but is built on the standard library alone (go/ast, go/types, go list), so
// the suite carries no module dependencies. cmd/trips-vet is the
// multichecker binary; see its docs for the CI wiring.
//
// # Directives
//
// Four comment directives thread justification through the source:
//
//	//trips:commutative <reason>   — on (or directly above) a range-over-map
//	                                 statement in a determinism-critical
//	                                 package: iteration order provably cannot
//	                                 reach output (commutative fold, or
//	                                 collect-then-sort).
//	//trips:zeroalloc              — in a function's doc comment: opts the
//	                                 function into the zeroalloc analyzer's
//	                                 allocation-construct scan.
//	//trips:guards <func>          — in a _test.go file that calls
//	                                 testing.AllocsPerRun: names the function
//	                                 ("func" or "Recv.method") the guard pins;
//	                                 the allocguard analyzer requires the
//	                                 named function to carry //trips:zeroalloc.
//	//trips:allow <analyzer>: <reason> — site-level suppression for the other
//	                                 analyzers (wallclock, atomicfield,
//	                                 ctxvalue).
//
// A reason is mandatory where the syntax shows one; a directive that no
// analyzer consumed (stale justification, typo'd name, wrong line) is itself
// a diagnostic when the full suite runs.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one invariant check. Run is invoked once per
// package; Finish (optional) runs once after every package in the batch has
// been seen, for whole-program invariants like atomicfield's cross-package
// field-access consistency. Analyzer values carry per-batch state, so always
// use a fresh instance set (Analyzers) per run.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
	// Finish reports diagnostics that need the whole batch (may be nil).
	Finish func(report func(Diagnostic)) error
}

// Analyzers returns a fresh instance of the full suite, in fixed order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		NewMapIter(),
		NewZeroAlloc(),
		NewAllocGuard(),
		NewWallClock(),
		NewAtomicField(),
		NewCtxValue(),
	}
}

// AnalyzerNames returns the names of the full suite, in fixed order.
func AnalyzerNames() []string {
	var names []string
	for _, a := range Analyzers() {
		names = append(names, a.Name)
	}
	return names
}

// A Diagnostic is one reported violation.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// A Pass presents one package to one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Pkg      *Package
	report   func(Diagnostic)
	dirs     *directiveIndex
}

// Files returns the package's parsed syntax trees.
func (p *Pass) Files() []*ast.File { return p.Pkg.Syntax }

// Types returns the package's type-checked object.
func (p *Pass) Types() *types.Package { return p.Pkg.Types }

// Info returns the package's type information.
func (p *Pass) Info() *types.Info { return p.Pkg.Info }

// Path returns the package's import path.
func (p *Pass) Path() string { return p.Pkg.PkgPath }

// Reportf reports a diagnostic at pos under this analyzer's name.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{Pos: pos, Analyzer: p.Analyzer.Name, Message: fmt.Sprintf(format, args...)})
}

// Allowed reports whether node carries a consuming
// "//trips:allow <analyzer>: <reason>" suppression for this analyzer —
// trailing on the node's first line or in the comment block directly above.
func (p *Pass) Allowed(n ast.Node) bool {
	d := p.dirs.attached(p.Fset, n, dirAllow)
	if d == nil || d.allowFor != p.Analyzer.Name {
		return false
	}
	d.used = true
	return true
}

// SiteDirective looks up a site directive (e.g. "commutative") attached to
// the node and marks it consumed. The second result is false when absent.
func (p *Pass) SiteDirective(n ast.Node, name string) (reason string, ok bool) {
	d := p.dirs.attached(p.Fset, n, name)
	if d == nil {
		return "", false
	}
	d.used = true
	return d.arg, true
}

// FuncMarked reports whether the function's doc comment carries the given
// marker directive (e.g. "zeroalloc"), consuming it.
func (p *Pass) FuncMarked(fd *ast.FuncDecl, name string) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if d := p.dirs.byPos[c.Pos()]; d != nil && d.name == name {
			d.used = true
			return true
		}
	}
	return false
}

// Run executes the analyzers over the packages and returns the diagnostics
// sorted by position. When validateDirectives is true (the full-suite mode
// cmd/trips-vet uses), malformed, unknown, and unconsumed //trips:
// directives are reported under the pseudo-analyzer "directive"; partial
// runs (-run, single-analyzer fixtures) must disable it, since a directive
// consumed only by an analyzer that did not run would read as stale.
func Run(prog *Program, analyzers []*Analyzer, validateDirectives bool) ([]Diagnostic, error) {
	var diags []Diagnostic
	report := func(d Diagnostic) { diags = append(diags, d) }

	indexes := make([]*directiveIndex, len(prog.Pkgs))
	for i, pkg := range prog.Pkgs {
		indexes[i] = indexDirectives(prog.Fset, pkg.Syntax)
	}
	for _, an := range analyzers {
		for i, pkg := range prog.Pkgs {
			pass := &Pass{Analyzer: an, Fset: prog.Fset, Pkg: pkg, report: report, dirs: indexes[i]}
			if err := an.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", an.Name, pkg.PkgPath, err)
			}
		}
	}
	for _, an := range analyzers {
		if an.Finish == nil {
			continue
		}
		if err := an.Finish(report); err != nil {
			return nil, fmt.Errorf("%s: %w", an.Name, err)
		}
	}
	if validateDirectives {
		for _, idx := range indexes {
			idx.validate(report)
		}
	}
	sort.SliceStable(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	return diags, nil
}

// directive names.
const (
	dirCommutative = "commutative"
	dirZeroAlloc   = "zeroalloc"
	dirAllow       = "allow"
)

// directive is one parsed //trips:NAME comment.
type directive struct {
	name string // "commutative", "zeroalloc", "allow", or an unknown name
	arg  string // everything after the name, trimmed
	// allowFor / allowReason split an allow's "analyzer: reason" argument.
	allowFor    string
	allowReason string
	pos         token.Pos
	file        string // file the comment sits in
	line        int    // line the comment sits on
	groupEnd    int    // last line of the enclosing comment group
	used        bool
}

// lineKey addresses one source line. The file name matters: a package's
// files share line numbers, and a directive in one file must never attach
// to a statement at the same line number of a sibling file.
type lineKey struct {
	file string
	line int
}

// directiveIndex holds every //trips: directive of one package.
type directiveIndex struct {
	byPos  map[token.Pos]*directive
	byLine map[lineKey][]*directive // both the directive's own line and its group-end line
	all    []*directive
}

const dirPrefix = "//trips:"

// indexDirectives scans the files' comments for //trips: directives.
func indexDirectives(fset *token.FileSet, files []*ast.File) *directiveIndex {
	idx := &directiveIndex{byPos: map[token.Pos]*directive{}, byLine: map[lineKey][]*directive{}}
	for _, f := range files {
		for _, cg := range f.Comments {
			groupEnd := fset.Position(cg.End()).Line
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, dirPrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, dirPrefix)
				name, arg, _ := strings.Cut(rest, " ")
				cpos := fset.Position(c.Pos())
				d := &directive{
					name:     name,
					arg:      strings.TrimSpace(arg),
					pos:      c.Pos(),
					file:     cpos.Filename,
					line:     cpos.Line,
					groupEnd: groupEnd,
				}
				if d.name == dirAllow {
					who, why, ok := strings.Cut(d.arg, ":")
					d.allowFor = strings.TrimSpace(who)
					if ok {
						d.allowReason = strings.TrimSpace(why)
					}
				}
				idx.byPos[d.pos] = d
				idx.byLine[lineKey{d.file, d.line}] = append(idx.byLine[lineKey{d.file, d.line}], d)
				if groupEnd != d.line {
					idx.byLine[lineKey{d.file, groupEnd}] = append(idx.byLine[lineKey{d.file, groupEnd}], d)
				}
				idx.all = append(idx.all, d)
			}
		}
	}
	return idx
}

// attached finds a directive of the given name attached to node n: on n's
// first line (trailing comment), or in a comment group whose last line is
// the line directly above n.
func (idx *directiveIndex) attached(fset *token.FileSet, n ast.Node, name string) *directive {
	pos := fset.Position(n.Pos())
	for _, cand := range idx.byLine[lineKey{pos.Filename, pos.Line}] {
		if cand.name == name && cand.line == pos.Line {
			return cand
		}
	}
	for _, cand := range idx.byLine[lineKey{pos.Filename, pos.Line - 1}] {
		if cand.name == name && (cand.groupEnd == pos.Line-1 || cand.line == pos.Line-1) {
			return cand
		}
	}
	return nil
}

// validate reports malformed and unconsumed directives.
func (idx *directiveIndex) validate(report func(Diagnostic)) {
	known := map[string]bool{}
	for _, name := range AnalyzerNames() {
		known[name] = true
	}
	for _, d := range idx.all {
		switch d.name {
		case dirCommutative:
			if d.arg == "" {
				report(Diagnostic{Pos: d.pos, Analyzer: "directive",
					Message: "//trips:commutative needs a justification: //trips:commutative <why order cannot reach output>"})
				continue
			}
		case dirZeroAlloc:
			// no argument
		case dirGuards:
			// The loader only sees non-test sources, so any guards
			// directive reaching this index is misplaced: it belongs in a
			// _test.go file next to the AllocsPerRun call it annotates
			// (where the allocguard analyzer reads it).
			report(Diagnostic{Pos: d.pos, Analyzer: "directive",
				Message: "//trips:guards belongs in a _test.go file next to its testing.AllocsPerRun call"})
			continue
		case dirAllow:
			if !known[d.allowFor] || d.allowReason == "" {
				report(Diagnostic{Pos: d.pos, Analyzer: "directive",
					Message: fmt.Sprintf("malformed %sallow %q: want //trips:allow <analyzer>: <reason> with analyzer one of %s",
						dirPrefix, d.arg, strings.Join(AnalyzerNames(), ", "))})
				continue
			}
		default:
			report(Diagnostic{Pos: d.pos, Analyzer: "directive",
				Message: fmt.Sprintf("unknown directive %s%s", dirPrefix, d.name)})
			continue
		}
		if !d.used {
			report(Diagnostic{Pos: d.pos, Analyzer: "directive",
				Message: fmt.Sprintf("unused %s%s directive: nothing on the next code line consumes it", dirPrefix, d.name)})
		}
	}
}
