package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// NewZeroAlloc returns the zeroalloc analyzer: functions whose doc comment
// carries //trips:zeroalloc (the ingest route, shardOf, the untraced
// SpanRec path — everything an AllocsPerRun guard holds at zero) are
// statically scanned for allocation-risk constructs. The runtime guards
// catch a regression after the fact on one workload; this catches the
// construct itself, on every path, at review time.
func NewZeroAlloc() *Analyzer {
	an := &Analyzer{
		Name: "zeroalloc",
		Doc: "functions marked //trips:zeroalloc must avoid allocation-risk " +
			"constructs: fmt calls, string concatenation/conversion, closures, " +
			"map/slice/chan literals and makes, new, append, map writes, " +
			"goroutine launches, and interface boxing",
	}
	an.Run = func(pass *Pass) error {
		for _, f := range pass.Files() {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				if !pass.FuncMarked(fd, dirZeroAlloc) {
					continue
				}
				scanZeroAlloc(pass, fd)
			}
		}
		return nil
	}
	return an
}

func scanZeroAlloc(pass *Pass, fd *ast.FuncDecl) {
	info := pass.Info()
	flag := func(n ast.Node, format string, args ...any) {
		if !pass.Allowed(n) {
			pass.Reportf(n.Pos(), "//trips:zeroalloc function %s: "+format, append([]any{fd.Name.Name}, args...)...)
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.FuncLit:
			flag(e, "function literal may allocate (closure capture escapes)")
			return false // don't double-report its body
		case *ast.GoStmt:
			flag(e, "go statement allocates a goroutine")
		case *ast.CompositeLit:
			if t := typeOf(info, e); t != nil {
				switch t.Underlying().(type) {
				case *types.Map:
					flag(e, "map literal allocates")
				case *types.Slice:
					flag(e, "slice literal allocates")
				}
			}
		case *ast.BinaryExpr:
			if t := typeOf(info, e); e.Op == token.ADD && t != nil && isStringType(t) {
				flag(e, "string concatenation allocates")
			}
		case *ast.AssignStmt:
			if e.Tok == token.ADD_ASSIGN && len(e.Lhs) == 1 {
				if t := typeOf(info, e.Lhs[0]); t != nil && isStringType(t) {
					flag(e, "string concatenation allocates")
				}
			}
			for _, lhs := range e.Lhs {
				if ix, ok := lhs.(*ast.IndexExpr); ok {
					if t := typeOf(info, ix.X); t != nil {
						if _, isMap := t.Underlying().(*types.Map); isMap {
							flag(ix, "map write may grow the map")
						}
					}
				}
			}
			checkBoxing(pass, flag, e)
		case *ast.CallExpr:
			checkCall(pass, flag, e)
		}
		return true
	})
}

// checkCall classifies one call inside a zeroalloc function: builtins that
// allocate, conversions that copy, fmt, and interface-boxing arguments.
func checkCall(pass *Pass, flag func(ast.Node, string, ...any), call *ast.CallExpr) {
	info := pass.Info()

	// Conversions: T(x). Only the slice↔string pairs copy.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		to := tv.Type.Underlying()
		from := typeOf(info, call.Args[0])
		if from == nil {
			return
		}
		if isStringType(to) && isByteOrRuneSlice(from) {
			flag(call, "string(%s) conversion copies and allocates", typeLabel(call.Args[0]))
		}
		if isByteOrRuneSlice(to) && isStringType(from) {
			flag(call, "[]byte/[]rune(string) conversion copies and allocates")
		}
		return
	}

	// Builtins.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				flag(call, "make allocates")
			case "new":
				flag(call, "new allocates")
			case "append":
				flag(call, "append may grow its backing array")
			}
			return
		}
	}

	// fmt.* — formatting both allocates and boxes its operands.
	if obj := calleeObject(info, call); obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "fmt" {
		flag(call, "call to fmt.%s allocates", obj.Name())
		return
	}

	// Interface boxing: a concrete argument passed to an interface
	// parameter is heap-boxed (unless escape analysis saves it — which the
	// zero-alloc contract must not rely on).
	ft := typeOf(info, call.Fun)
	if ft == nil {
		return
	}
	sig, ok := ft.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			last := params.At(params.Len() - 1).Type()
			if sl, ok := last.Underlying().(*types.Slice); ok {
				pt = sl.Elem()
			}
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if pt != nil && boxes(info, pt, arg) {
			flag(arg, "argument %s boxes into interface parameter", typeLabel(arg))
		}
	}
}

// checkBoxing flags assignments whose LHS is an interface and RHS concrete.
func checkBoxing(pass *Pass, flag func(ast.Node, string, ...any), as *ast.AssignStmt) {
	info := pass.Info()
	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i, rhs := range as.Rhs {
		lt := typeOf(info, as.Lhs[i])
		if lt == nil {
			continue
		}
		if boxes(info, lt, rhs) {
			flag(rhs, "assignment boxes %s into interface", typeLabel(rhs))
		}
	}
}

// boxes reports whether assigning expr to a target of type dst heap-boxes a
// concrete value into an interface.
func boxes(info *types.Info, dst types.Type, expr ast.Expr) bool {
	if _, isIface := dst.Underlying().(*types.Interface); !isIface {
		return false
	}
	t := typeOf(info, expr)
	if t == nil {
		return false
	}
	if b, ok := t.(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return false
	}
	if _, already := t.Underlying().(*types.Interface); already {
		return false
	}
	return true
}

// typeOf is info.TypeOf: it falls back to Defs/Uses for bare identifiers,
// which the Types map does not always record, and returns nil when unknown.
func typeOf(info *types.Info, x ast.Expr) types.Type {
	return info.TypeOf(x)
}

func isStringType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune ||
		b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

// calleeObject resolves the function or method object a call invokes; nil
// for indirect calls through function values.
func calleeObject(info *types.Info, call *ast.CallExpr) types.Object {
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return info.Uses[fn]
	case *ast.SelectorExpr:
		return info.Uses[fn.Sel]
	}
	return nil
}
