package lint

import (
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// RunFixture loads the given package patterns from the fixture module rooted
// at testdata/src/trips, runs the analyzers over them, and checks every
// diagnostic against the fixtures' "// want" comments — the analysistest
// convention: a trailing comment
//
//	x := m[k] // want "regexp" "another regexp"
//
// declares that each quoted regexp must match a diagnostic reported on that
// line, and that no diagnostic may appear on a line without a matching
// expectation. Backquoted strings are accepted too.
func RunFixture(t *testing.T, analyzers []*Analyzer, validateDirectives bool, patterns ...string) {
	t.Helper()
	dir := filepath.Join("testdata", "src", "trips")
	prog, err := Load(dir, patterns...)
	if err != nil {
		t.Fatalf("loading fixtures %v: %v", patterns, err)
	}
	diags, err := Run(prog, analyzers, validateDirectives)
	if err != nil {
		t.Fatalf("running analyzers: %v", err)
	}
	checkWant(t, prog, diags)
}

type wantKey struct {
	file string
	line int
}

type expectation struct {
	re      *regexp.Regexp
	matched bool
}

// checkWant cross-checks diagnostics against // want expectations.
func checkWant(t *testing.T, prog *Program, diags []Diagnostic) {
	t.Helper()
	wants := map[wantKey][]*expectation{}
	for _, pkg := range prog.Pkgs {
		for _, f := range pkg.Syntax {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text := strings.TrimPrefix(c.Text, "//")
					text = strings.TrimSpace(text)
					if !strings.HasPrefix(text, "want ") {
						continue
					}
					pos := prog.Fset.Position(c.Pos())
					key := wantKey{file: pos.Filename, line: pos.Line}
					rest := strings.TrimSpace(strings.TrimPrefix(text, "want"))
					for rest != "" {
						q, err := strconv.QuotedPrefix(rest)
						if err != nil {
							t.Fatalf("%s: bad // want comment %q: %v", pos, c.Text, err)
						}
						pat, err := strconv.Unquote(q)
						if err != nil {
							t.Fatalf("%s: bad // want string %s: %v", pos, q, err)
						}
						re, err := regexp.Compile(pat)
						if err != nil {
							t.Fatalf("%s: bad // want regexp %q: %v", pos, pat, err)
						}
						wants[key] = append(wants[key], &expectation{re: re})
						rest = strings.TrimSpace(rest[len(q):])
					}
				}
			}
		}
	}

	for _, d := range diags {
		pos := prog.Fset.Position(d.Pos)
		key := wantKey{file: pos.Filename, line: pos.Line}
		matched := false
		for _, exp := range wants[key] {
			if exp.re.MatchString(d.Message) {
				exp.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic [%s]: %s", relFixture(pos.String()), d.Analyzer, d.Message)
		}
	}
	for key, exps := range wants {
		for _, exp := range exps {
			if !exp.matched {
				t.Errorf("%s:%d: no diagnostic matched // want %q",
					relFixture(key.file), key.line, exp.re.String())
			}
		}
	}
}

// relFixture trims the absolute testdata prefix for readable failures.
func relFixture(p string) string {
	if i := strings.Index(p, filepath.Join("testdata", "src")); i >= 0 {
		return p[i:]
	}
	return p
}
