package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// RunFixture loads the given package patterns from the fixture module rooted
// at testdata/src/trips, runs the analyzers over them, and checks every
// diagnostic against the fixtures' "// want" comments — the analysistest
// convention: a trailing comment
//
//	x := m[k] // want "regexp" "another regexp"
//
// declares that each quoted regexp must match a diagnostic reported on that
// line, and that no diagnostic may appear on a line without a matching
// expectation. Backquoted strings are accepted too.
func RunFixture(t *testing.T, analyzers []*Analyzer, validateDirectives bool, patterns ...string) {
	t.Helper()
	dir := filepath.Join("testdata", "src", "trips")
	prog, err := Load(dir, patterns...)
	if err != nil {
		t.Fatalf("loading fixtures %v: %v", patterns, err)
	}
	diags, err := Run(prog, analyzers, validateDirectives)
	if err != nil {
		t.Fatalf("running analyzers: %v", err)
	}
	checkWant(t, prog, diags)
}

type wantKey struct {
	file string
	line int
}

type expectation struct {
	re      *regexp.Regexp
	matched bool
}

// checkWant cross-checks diagnostics against // want expectations.
func checkWant(t *testing.T, prog *Program, diags []Diagnostic) {
	t.Helper()
	wants := map[wantKey][]*expectation{}
	addWants := func(filename string, comments []*ast.CommentGroup, fset *token.FileSet) {
		for _, cg := range comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				pos := fset.Position(c.Pos())
				key := wantKey{file: filename, line: pos.Line}
					rest := strings.TrimSpace(strings.TrimPrefix(text, "want"))
				for rest != "" {
					q, err := strconv.QuotedPrefix(rest)
					if err != nil {
						t.Fatalf("%s: bad // want comment %q: %v", filename, c.Text, err)
					}
					pat, err := strconv.Unquote(q)
					if err != nil {
						t.Fatalf("%s: bad // want string %s: %v", filename, q, err)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad // want regexp %q: %v", filename, pat, err)
					}
					wants[key] = append(wants[key], &expectation{re: re})
					rest = strings.TrimSpace(rest[len(q):])
				}
			}
		}
	}
	for _, pkg := range prog.Pkgs {
		for i, f := range pkg.Syntax {
			addWants(pkg.Files[i], f.Comments, prog.Fset)
		}
		// Fixture *_test.go files are invisible to the loader, but the
		// allocguard analyzer parses and reports into them; collect their
		// expectations too (positions key on filename+line, so a private
		// FileSet works).
		testFiles, _ := filepath.Glob(filepath.Join(pkg.Dir, "*_test.go"))
		for _, path := range testFiles {
			tfset := token.NewFileSet()
			f, err := parser.ParseFile(tfset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				t.Fatalf("parsing fixture test file %s: %v", path, err)
			}
			addWants(path, f.Comments, tfset)
		}
	}

	for _, d := range diags {
		pos := prog.Fset.Position(d.Pos)
		key := wantKey{file: pos.Filename, line: pos.Line}
		matched := false
		for _, exp := range wants[key] {
			if exp.re.MatchString(d.Message) {
				exp.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic [%s]: %s", relFixture(pos.String()), d.Analyzer, d.Message)
		}
	}
	for key, exps := range wants {
		for _, exp := range exps {
			if !exp.matched {
				t.Errorf("%s:%d: no diagnostic matched // want %q",
					relFixture(key.file), key.line, exp.re.String())
			}
		}
	}
}

// relFixture trims the absolute testdata prefix for readable failures.
func relFixture(p string) string {
	if i := strings.Index(p, filepath.Join("testdata", "src")); i >= 0 {
		return p[i:]
	}
	return p
}
