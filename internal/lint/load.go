package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
)

// Package is one loaded, type-checked package under analysis.
type Package struct {
	PkgPath string
	Dir     string
	Files   []string
	Syntax  []*ast.File
	Types   *types.Package
	Info    *types.Info
}

// Program is a batch of packages sharing one FileSet (diagnostic positions
// and cross-package object identity both depend on the sharing).
type Program struct {
	Fset *token.FileSet
	Pkgs []*Package
}

// listedPackage is the subset of `go list -json` output the loader reads.
type listedPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	DepOnly    bool
	Standard   bool
	Error      *struct{ Err string }
}

// Load lists the packages matching patterns under dir (a module directory),
// parses and type-checks the matched packages from source, and resolves
// their dependencies from compiler export data — fully offline, no module
// downloads. Only the matched (non-dependency) packages are returned for
// analysis; matched packages that import each other are type-checked in
// dependency order so every types.Object has exactly one identity across
// the whole batch (the atomicfield analyzer relies on this).
func Load(dir string, patterns ...string) (*Program, error) {
	args := append([]string{"list", "-export", "-deps",
		"-json=ImportPath,Dir,GoFiles,Export,DepOnly,Standard,Error"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	// Pure-Go builds only: cgo variants would need a C toolchain and make
	// export data host-dependent.
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.String())
	}

	var listed []*listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for dec.More() {
		lp := new(listedPackage)
		if err := dec.Decode(lp); err != nil {
			return nil, fmt.Errorf("go list output: %w", err)
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", lp.ImportPath, lp.Error.Err)
		}
		listed = append(listed, lp)
	}

	exports := make(map[string]string, len(listed))
	for _, lp := range listed {
		if lp.Export != "" {
			exports[lp.ImportPath] = lp.Export
		}
	}

	prog := &Program{Fset: token.NewFileSet()}
	imp := &hybridImporter{
		checked: map[string]*types.Package{},
		gc: importer.ForCompiler(prog.Fset, "gc", func(path string) (io.ReadCloser, error) {
			f, ok := exports[path]
			if !ok {
				return nil, fmt.Errorf("no export data for %q", path)
			}
			return os.Open(f)
		}),
	}
	conf := &types.Config{
		Importer: imp,
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
	}

	// go list -deps emits dependencies before dependents, so checking in
	// listed order always finds sibling imports already in imp.checked.
	for _, lp := range listed {
		if lp.DepOnly {
			continue
		}
		pkg, err := checkPackage(prog.Fset, conf, lp)
		if err != nil {
			return nil, err
		}
		imp.checked[lp.ImportPath] = pkg.Types
		prog.Pkgs = append(prog.Pkgs, pkg)
	}
	return prog, nil
}

// checkPackage parses and type-checks one listed package from source.
func checkPackage(fset *token.FileSet, conf *types.Config, lp *listedPackage) (*Package, error) {
	pkg := &Package{PkgPath: lp.ImportPath, Dir: lp.Dir}
	for _, name := range lp.GoFiles {
		path := filepath.Join(lp.Dir, name)
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("parse %s: %w", path, err)
		}
		pkg.Files = append(pkg.Files, path)
		pkg.Syntax = append(pkg.Syntax, f)
	}
	pkg.Info = newInfo()
	tpkg, err := conf.Check(lp.ImportPath, fset, pkg.Syntax, pkg.Info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %w", lp.ImportPath, err)
	}
	pkg.Types = tpkg
	return pkg, nil
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
}

// hybridImporter serves source-checked batch packages by identity and
// everything else from export data.
type hybridImporter struct {
	checked map[string]*types.Package
	gc      types.Importer
}

func (h *hybridImporter) Import(path string) (*types.Package, error) {
	if p, ok := h.checked[path]; ok {
		return p, nil
	}
	return h.gc.Import(path)
}
