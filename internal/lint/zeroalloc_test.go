package lint

import "testing"

func TestZeroAlloc(t *testing.T) {
	RunFixture(t, []*Analyzer{NewZeroAlloc()}, false, "trips/internal/zfix")
}
