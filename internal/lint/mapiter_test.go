package lint

import "testing"

func TestMapIter(t *testing.T) {
	RunFixture(t, []*Analyzer{NewMapIter()}, false,
		"trips/internal/annotation", "trips/internal/util")
}
