package lint

import (
	"path/filepath"
	"strings"
	"testing"
)

func TestAllocGuard(t *testing.T) {
	RunFixture(t, []*Analyzer{NewAllocGuard()}, false,
		"trips/internal/gfix", "trips/internal/gfix2")
}

// TestAllocGuardMalformed checks the diagnostics that anchor on directive
// comment lines (which the // want convention cannot annotate): a stale
// guard with no AllocsPerRun call, an unknown function name, and a missing
// argument.
func TestAllocGuardMalformed(t *testing.T) {
	prog, err := Load(filepath.Join("testdata", "src", "trips"), "trips/internal/gbad")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := Run(prog, []*Analyzer{NewAllocGuard()}, false)
	if err != nil {
		t.Fatal(err)
	}
	wants := []string{
		"no testing.AllocsPerRun call",
		"no such function or method in package gbad",
		"//trips:guards needs a function name",
	}
	for _, want := range wants {
		found := false
		for _, d := range diags {
			if strings.Contains(d.Message, want) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no diagnostic containing %q; got %v", want, diags)
		}
	}
	if len(diags) != len(wants) {
		for _, d := range diags {
			t.Logf("diag: %s", d.Message)
		}
		t.Errorf("got %d diagnostics, want %d", len(diags), len(wants))
	}
}
