package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"path/filepath"
	"strings"
)

// NewAllocGuard returns the allocguard analyzer: the coverage check that
// keeps the runtime testing.AllocsPerRun guards and the static
// //trips:zeroalloc markers in sync. The two pin the same contract from
// opposite sides — the guard measures one workload after the fact, the
// marker rejects allocation-risk constructs on every path at review time —
// and either alone decays: a marker without a guard is an unverified claim,
// a guard without a marker lets the construct land and only fails later, on
// one workload. The analyzer enforces the pairing:
//
//   - every test file that calls testing.AllocsPerRun must declare which
//     functions its guards pin, with //trips:guards <func> directives
//     ("func" or "Recv.method", unqualified);
//   - every function so named must exist in the package under test and
//     carry //trips:zeroalloc in its doc comment — deleting the marker (or
//     renaming the function) without retiring the guard is a diagnostic.
//
// The loader type-checks only non-test sources, so this analyzer parses the
// package directory's *_test.go files itself, syntax-only: directive
// comments and AllocsPerRun call sites need no type information.
func NewAllocGuard() *Analyzer {
	an := &Analyzer{
		Name: "allocguard",
		Doc: "test files using testing.AllocsPerRun must name the guarded " +
			"functions with //trips:guards, and every named function must " +
			"carry //trips:zeroalloc",
	}
	an.Run = runAllocGuard
	return an
}

const dirGuards = "guards"

func runAllocGuard(pass *Pass) error {
	if pass.Pkg.Dir == "" {
		return nil
	}
	testFiles, err := filepath.Glob(filepath.Join(pass.Pkg.Dir, "*_test.go"))
	if err != nil {
		return err
	}
	if len(testFiles) == 0 {
		return nil
	}

	// Index the package's function declarations: "name" for functions,
	// "Recv.name" for methods, with their zeroalloc-marked status.
	type declInfo struct {
		fd     *ast.FuncDecl
		marked bool
	}
	decls := map[string]declInfo{}
	for _, f := range pass.Files() {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok {
				continue
			}
			decls[funcKey(fd)] = declInfo{fd: fd, marked: zeroAllocMarked(fd)}
		}
	}

	for _, path := range testFiles {
		f, err := parser.ParseFile(pass.Fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return fmt.Errorf("allocguard: parse %s: %w", path, err)
		}
		// Only test files of this package (internal or external test
		// package): a sibling package's leftovers never match.
		base := strings.TrimSuffix(f.Name.Name, "_test")
		if base != pass.Types().Name() {
			continue
		}

		var guards []*directive
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, dirPrefix+dirGuards)
				if !ok {
					continue
				}
				guards = append(guards, &directive{
					name: dirGuards,
					arg:  strings.TrimSpace(rest),
					pos:  c.Pos(),
				})
			}
		}

		allocsPerRun := firstAllocsPerRunCall(f)
		if allocsPerRun != token.NoPos && len(guards) == 0 {
			pass.Reportf(allocsPerRun,
				"testing.AllocsPerRun guard without a //trips:guards <func> directive in %s: declare which function the guard pins",
				filepath.Base(path))
		}
		if allocsPerRun == token.NoPos && len(guards) > 0 {
			pass.Reportf(guards[0].pos,
				"//trips:guards in %s but no testing.AllocsPerRun call: retire the directive or restore the guard",
				filepath.Base(path))
		}

		for _, g := range guards {
			if g.arg == "" {
				pass.Reportf(g.pos, "//trips:guards needs a function name: //trips:guards <func> or //trips:guards <Recv.method>")
				continue
			}
			di, ok := decls[g.arg]
			if !ok {
				pass.Reportf(g.pos, "//trips:guards %s: no such function or method in package %s", g.arg, pass.Types().Name())
				continue
			}
			if !di.marked {
				// Report on the declaration, not the directive: the usual
				// failure is the marker being dropped during an edit of the
				// function, and the fix belongs there.
				pass.Reportf(di.fd.Pos(),
					"function %s is pinned by an AllocsPerRun guard (//trips:guards in %s) but its doc comment lacks //trips:zeroalloc",
					g.arg, filepath.Base(path))
			}
		}
	}
	return nil
}

// funcKey renders a FuncDecl's guard name: "name" or "Recv.name" with the
// receiver's base type identifier (pointers and generics stripped).
func funcKey(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	t := fd.Recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr:
			t = tt.X
		case *ast.IndexListExpr:
			t = tt.X
		default:
			if id, ok := t.(*ast.Ident); ok {
				return id.Name + "." + fd.Name.Name
			}
			return fd.Name.Name
		}
	}
}

// zeroAllocMarked reports whether the declaration's doc comment carries the
// //trips:zeroalloc marker. Checked textually: the pass's directive index
// covers only the analyzer's own package view, and consuming the directive
// here would double-claim it against the zeroalloc analyzer.
func zeroAllocMarked(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.TrimSpace(c.Text) == dirPrefix+dirZeroAlloc {
			return true
		}
	}
	return false
}

// firstAllocsPerRunCall returns the position of the first
// testing.AllocsPerRun call in the file, or NoPos. Syntactic: any selector
// named AllocsPerRun counts, which in practice only the testing package
// provides.
func firstAllocsPerRunCall(f *ast.File) token.Pos {
	found := token.NoPos
	ast.Inspect(f, func(n ast.Node) bool {
		if found != token.NoPos {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "AllocsPerRun" {
			found = call.Pos()
			return false
		}
		return true
	})
	return found
}
