// Package gbad is the allocguard fixture for malformed guard declarations:
// a stale directive (no AllocsPerRun call left), a name that resolves to
// nothing, and a directive missing its argument. Checked by direct
// assertion in allocguard_test.go — the diagnostics anchor on comment
// lines, which the // want convention cannot annotate.
package gbad

// Real exists so one directive has a valid target to contrast with.
//
//trips:zeroalloc
func Real() int { return 0 }
