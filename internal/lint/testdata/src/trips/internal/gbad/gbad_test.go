package gbad

import "testing"

//trips:guards Real
//trips:guards NoSuch
//trips:guards
func TestNothingMeasured(t *testing.T) {
	Real()
}

var _ = testing.Short
