// Package gfix is the allocguard fixture: functions pinned by AllocsPerRun
// guards in gfix_test.go, one with its //trips:zeroalloc marker intact and
// one that lost it.
package gfix

// Pinned is guarded and marked: in sync.
//
//trips:zeroalloc
func Pinned(xs []int) int {
	n := 0
	for _, x := range xs {
		n += x
	}
	return n
}

// Dropped is guarded but its marker was deleted.
func Dropped(xs []int) int { // want `function Dropped is pinned by an AllocsPerRun guard .* lacks //trips:zeroalloc`
	return len(xs)
}

// T carries the method-form guard target.
type T struct{ n int }

// Hit is guarded as T.Hit and marked: in sync.
//
//trips:zeroalloc
func (t *T) Hit() int { return t.n }
