package gfix

import "testing"

//trips:guards Pinned
//trips:guards Dropped
//trips:guards T.Hit
func TestZeroAllocGuards(t *testing.T) {
	var tt T
	if avg := testing.AllocsPerRun(10, func() {
		Pinned(nil)
		Dropped(nil)
		tt.Hit()
	}); avg != 0 {
		t.Errorf("allocates %.1f times, want 0", avg)
	}
}
