// Package annotation is the mapiter fixture: it sits on a
// determinism-critical import path, so every range-over-map here must be
// justified or rewritten. Vote reproduces the PR 1 refineByRegion bug shape.
package annotation

import "sort"

// Vote picks the majority label by ranging the tally map directly: with a
// tie, the winner depends on iteration order. This is the bug.
func Vote(votes map[string]int) string {
	best, bestN := "", -1
	for label, n := range votes { // want `range over map votes in determinism-critical package trips/internal/annotation`
		if n > bestN {
			best, bestN = label, n
		}
	}
	return best
}

// VoteSorted is the deterministic idiom: collect keys, sort, then scan. The
// collection loop itself ranges the map, but its order is erased by the sort.
func VoteSorted(votes map[string]int) string {
	labels := make([]string, 0, len(votes))
	//trips:commutative key collection; iteration order is erased by the sort below
	for label := range votes {
		labels = append(labels, label)
	}
	sort.Strings(labels)
	best, bestN := "", -1
	for _, label := range labels {
		if n := votes[label]; n > bestN {
			best, bestN = label, n
		}
	}
	return best
}

// Total shows the trailing-directive form on a genuinely commutative fold.
func Total(votes map[string]int) int {
	total := 0
	for _, n := range votes { //trips:commutative integer sum is order-independent
		total += n
	}
	return total
}

// FromCall ranges a map-typed call result without justification.
func FromCall() int {
	n := 0
	for range index() { // want `range over map index\(\.\.\.\) in determinism-critical package`
		n++
	}
	return n
}

func index() map[int]string { return map[int]string{1: "a"} }
