// This file exercises the cross-file line-collision regression:
// online.go carries a trailing //trips:allow on ITS line 29, and the
// bare wall-clock reads below sit on lines 29 and 30 of THIS file.
// Directive attachment is per-file — a directive must never suppress a
// diagnostic at the same line number of a sibling file, whether through
// the same-line (trailing) path or the line-above (comment group) path.
package online

import "time"

// pad 11: the functions below must land exactly on lines 29 and 30 so
// pad 12: their positions collide with online.go's trailing allow
// pad 13: directive (its line 29, comment group also ending on 29).
// pad 14: If online.go's Observe moves, keep these aligned with the
// pad 15: new directive line.
// pad 16
// pad 17
// pad 18
// pad 19
// pad 20
// pad 21
// pad 22
// pad 23
// pad 24
// pad 25
// pad 26
// pad 27
// pad 28
func Collide29() time.Time { return time.Now() } // want `wall-clock read time\.Now in event-time package`
func Collide30() time.Time { return time.Now() } // want `wall-clock read time\.Now in event-time package`
