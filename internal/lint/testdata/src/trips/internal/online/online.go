// Package online is the wallclock fixture: it sits on an event-time-only
// import path, so bare wall-clock reads are flagged while the injected-clock
// idiom and justified operational reads stay silent.
package online

import "time"

type engine struct {
	now func() time.Time
}

// Seal decides with the wall clock instead of record timestamps: the bug.
func Seal(last time.Time) bool {
	cutoff := time.Now()               // want `wall-clock read time\.Now in event-time package trips/internal/online`
	if time.Since(last) > time.Minute { // want `wall-clock read time\.Since in event-time package`
		return true
	}
	return last.Before(cutoff)
}

// NewEngine references time.Now without calling it — the sanctioned
// clock-injection idiom needs no annotation.
func NewEngine() *engine {
	return &engine{now: time.Now}
}

// Observe is an operational metric read, justified inline.
func Observe() time.Time {
	return time.Now() //trips:allow wallclock: ingest-latency metric, not event-time logic
}

// Epoch calls into package time but never reads the wall clock.
func Epoch() time.Time {
	return time.Unix(0, 0)
}
