// Package util is the negative-scope fixture: it is on none of the analyzer
// scope lists, so the map range and wall-clock read below are silent.
package util

import "time"

// Sum ranges a map outside the determinism-critical scope: no diagnostic.
func Sum(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// Stamp reads the wall clock outside the event-time scope: no diagnostic.
func Stamp() time.Time {
	return time.Now()
}
