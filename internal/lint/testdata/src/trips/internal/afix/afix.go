// Package afix is the atomicfield fixture: fields and package variables
// touched by sync/atomic must never see a plain access. N is exported so
// the cross-package case (package afixuse) can leak a plain read of it.
package afix

import "sync/atomic"

type Counter struct {
	n     int64
	N     int64
	plain int64
}

var state int64

func (c *Counter) Inc() {
	atomic.AddInt64(&c.n, 1)
	atomic.AddInt64(&c.N, 1)
}

// Racy mixes a plain read into an atomic-managed field: a data race.
func (c *Counter) Racy() int64 {
	return c.n // want `plain access to field n, which is accessed via sync/atomic`
}

// Safe reads through sync/atomic: silent.
func (c *Counter) Safe() int64 {
	return atomic.LoadInt64(&c.n)
}

// Plain never touches atomics, so ordinary access is fine.
func (c *Counter) Plain() int64 {
	c.plain++
	return c.plain
}

func Set() {
	atomic.StoreInt64(&state, 1)
}

// Get mixes a plain read of an atomic-managed package variable.
func Get() int64 {
	return state // want `plain access to variable state, which is accessed via sync/atomic`
}

// GetAllowed carries a justification for the mixed access.
func GetAllowed() int64 {
	return state //trips:allow atomicfield: read during single-threaded init, before any goroutine starts
}
