// Package trace is the fixture stub of trips/internal/obs/trace: just the
// Ctx type the ctxvalue analyzer keys on, at the import path it watches.
package trace

// Ctx mirrors the real trace context: a small value type that must move by
// value through the pipeline.
type Ctx struct {
	TraceID [16]byte
	Enq     int64
}
