// Package dirfix exercises directive validation: unknown names, missing
// reasons, malformed allows, and stale (unconsumed) directives. Checked
// programmatically by TestDirectiveValidation, not via // want comments —
// the diagnostics land on the directive comments themselves, which cannot
// also carry a want expectation.
package dirfix

import "time"

//trips:bogus
var X = 1

//trips:commutative
func noReason() { _ = X }

//trips:allow notananalyzer: some reason
func badAllow() { noReason() }

// stale carries a well-formed allow that nothing consumes: this package is
// outside the wallclock scope, so the suppression is dead weight.
func stale() time.Time {
	badAllow()
	//trips:allow wallclock: latency metric
	return time.Now()
}

//trips:zeroalloc
var floating = stale
