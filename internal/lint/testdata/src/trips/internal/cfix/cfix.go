// Package cfix is the ctxvalue fixture: trace.Ctx must move by value —
// pointer types, taken addresses, and package-level Ctx variables are all
// flagged.
package cfix

import "trips/internal/obs/trace"

var global trace.Ctx // want `package-level variable global holds trace\.Ctx`

type holder struct {
	p *trace.Ctx // want `\*trace\.Ctx: the trace context must move by value`
}

func byPtr(c *trace.Ctx) { // want `\*trace\.Ctx: the trace context must move by value`
	_ = c
}

func escape(c trace.Ctx) *holder {
	h := &holder{}
	h.p = &c // want `address of trace\.Ctx taken`
	return h
}

// byValue is the sanctioned shape: Ctx in, Ctx out, no aliasing.
func byValue(c trace.Ctx) trace.Ctx {
	_ = global
	_ = byPtr
	_ = escape
	return c
}

// allowed shows a justified local alias.
func allowed(c trace.Ctx) {
	p := &c //trips:allow ctxvalue: short-lived local alias inside a test helper
	_, _ = p, byValue
}
