package gfix2

import "testing"

func TestFastZeroAlloc(t *testing.T) {
	if avg := testing.AllocsPerRun(10, func() { // want `testing.AllocsPerRun guard without a //trips:guards <func> directive`
		Fast()
	}); avg != 0 {
		t.Errorf("allocates %.1f times, want 0", avg)
	}
}
