// Package gfix2 is the allocguard fixture for an unannotated guard file: a
// test calls testing.AllocsPerRun without declaring what it pins.
package gfix2

// Fast is measured by the guard but never named by a //trips:guards
// directive, so nothing ties marker and guard together.
func Fast() int { return 1 }
