// Package afixuse leaks a plain read of afix.Counter.N across the package
// boundary — the cross-file, cross-package shape reviews miss and the
// atomicfield analyzer's whole-program Finish pass exists to catch.
package afixuse

import "trips/internal/afix"

func Leak(c *afix.Counter) int64 {
	return c.N // want `plain access to field N, which is accessed via sync/atomic`
}
