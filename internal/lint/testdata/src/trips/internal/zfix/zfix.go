// Package zfix is the zeroalloc fixture: one function opted in via the
// //trips:zeroalloc marker exercising every flagged construct, one
// unmarked function showing the scan is opt-in, and one justified site.
package zfix

import "fmt"

// Hot is marked: every allocation-risk construct below is flagged.
//
//trips:zeroalloc
func Hot(m map[string]int, s []int, n int) int {
	msg := fmt.Sprintf("n=%d", n) // want `call to fmt.Sprintf allocates`
	msg += "!"                    // want `string concatenation allocates`
	two := msg + msg              // want `string concatenation allocates`
	b := make([]byte, n)          // want `make allocates`
	s = append(s, n)              // want `append may grow its backing array`
	m["k"] = n                    // want `map write may grow the map`
	mm := map[int]int{}           // want `map literal allocates`
	sl := []int{1, 2}             // want `slice literal allocates`
	f := func() int { return n }  // want `function literal may allocate`
	go work()                     // want `go statement allocates a goroutine`
	bs := []byte(two)             // want `conversion copies and allocates`
	str := string(b)              // want `string\(b\) conversion copies and allocates`
	box(n)                        // want `argument n boxes into interface parameter`
	var v any
	v = n // want `assignment boxes n into interface`
	v = nil
	_, _, _, _, _, _ = mm, sl, f, bs, str, v
	return len(s)
}

// Cold is not marked: the same constructs are fine here.
func Cold(n int) string {
	return fmt.Sprintf("n=%d", n)
}

// Warm shows a justified allocation inside a marked function.
//
//trips:zeroalloc
func Warm(n int) []byte {
	buf := make([]byte, n) //trips:allow zeroalloc: one-time buffer, amortized by caller pool
	return buf
}

func work() {}

func box(v any) { _ = v }
