module trips

go 1.24
