package lint

import "testing"

func TestCtxValue(t *testing.T) {
	RunFixture(t, []*Analyzer{NewCtxValue()}, false,
		"trips/internal/obs/trace", "trips/internal/cfix")
}
