package lint

import "testing"

func TestWallClock(t *testing.T) {
	RunFixture(t, []*Analyzer{NewWallClock()}, false,
		"trips/internal/online", "trips/internal/util")
}
