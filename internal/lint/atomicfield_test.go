package lint

import "testing"

// TestAtomicField loads both fixture packages in one batch: the Leak
// diagnostic in afixuse only exists because the analyzer correlates the
// atomic use in afix with the plain access across the package boundary.
func TestAtomicField(t *testing.T) {
	RunFixture(t, []*Analyzer{NewAtomicField()}, false,
		"trips/internal/afix", "trips/internal/afixuse")
}
