package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// NewAtomicField returns the atomicfield analyzer: a struct field (or
// package-level variable) whose address is ever passed to a sync/atomic
// function must be accessed through sync/atomic everywhere. A mixed plain
// read or write is a data race the -race detector only catches when the
// schedule happens to interleave the two — this catches it on every
// schedule. The analyzer is whole-program: the atomic use and the plain
// access are typically in different files or packages (that is exactly why
// reviews miss them), so it collects across every package of the batch and
// reports in a Finish pass.
func NewAtomicField() *Analyzer {
	type access struct {
		pos     token.Pos
		display string // file-agnostic description for the diagnostic
	}
	atomicUses := map[types.Object]access{} // first atomic use per object
	plainUses := map[types.Object][]access{}

	an := &Analyzer{
		Name: "atomicfield",
		Doc: "a struct field accessed via sync/atomic anywhere must be accessed " +
			"atomically everywhere; mixed plain/atomic access is a data race the " +
			"race detector only catches probabilistically",
	}
	an.Run = func(pass *Pass) error {
		info := pass.Info()

		// atomicArg reports whether expr is the &target pointer argument of
		// this call when the call is a sync/atomic function.
		isAtomicCall := func(call *ast.CallExpr) bool {
			obj := calleeObject(info, call)
			return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic"
		}

		// trackable resolves an expression to a watched object: a struct
		// field selection or a package-level variable.
		trackable := func(x ast.Expr) types.Object {
			switch e := ast.Unparen(x).(type) {
			case *ast.SelectorExpr:
				if sel, ok := info.Selections[e]; ok && sel.Kind() == types.FieldVal {
					return sel.Obj()
				}
				// Qualified package-level var (pkg.V).
				if v, ok := info.Uses[e.Sel].(*types.Var); ok && v.Parent() == v.Pkg().Scope() {
					return v
				}
			case *ast.Ident:
				if v, ok := info.Uses[e].(*types.Var); ok && !v.IsField() && v.Pkg() != nil &&
					v.Parent() == v.Pkg().Scope() {
					return v
				}
			}
			return nil
		}

		for _, f := range pass.Files() {
			// atomicArgs marks the &x.f nodes consumed by atomic calls so
			// the plain-access walk can skip them (and their children).
			atomicArgs := map[ast.Expr]bool{}
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || !isAtomicCall(call) {
					return true
				}
				for _, arg := range call.Args {
					un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
					if !ok || un.Op != token.AND {
						continue
					}
					obj := trackable(un.X)
					if obj == nil {
						continue
					}
					atomicArgs[arg] = true
					if _, seen := atomicUses[obj]; !seen {
						atomicUses[obj] = access{
							pos:     un.Pos(),
							display: pass.Fset.Position(un.Pos()).String(),
						}
					}
				}
				return true
			})
			ast.Inspect(f, func(n ast.Node) bool {
				x, ok := n.(ast.Expr)
				if !ok {
					return true
				}
				if atomicArgs[x] {
					return false // the sanctioned &x.f inside an atomic call
				}
				obj := trackable(x)
				if obj == nil {
					return true
				}
				if pass.Allowed(x) {
					return false
				}
				plainUses[obj] = append(plainUses[obj], access{
					pos:     x.Pos(),
					display: objLabel(obj),
				})
				return false // don't re-record the selector's children
			})
		}
		return nil
	}
	an.Finish = func(report func(Diagnostic)) error {
		var diags []Diagnostic
		for obj, first := range atomicUses {
			for _, plain := range plainUses[obj] {
				diags = append(diags, Diagnostic{
					Pos:      plain.pos,
					Analyzer: an.Name,
					Message: fmt.Sprintf(
						"plain access to %s, which is accessed via sync/atomic at %s: mixed plain/atomic access is a data race; use sync/atomic here too (or a typed atomic field), or justify with //trips:allow atomicfield: <reason>",
						plain.display, first.display),
				})
			}
		}
		sort.Slice(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
		for _, d := range diags {
			report(d)
		}
		return nil
	}
	return an
}

func objLabel(obj types.Object) string {
	if v, ok := obj.(*types.Var); ok && v.IsField() {
		return fmt.Sprintf("field %s", v.Name())
	}
	return fmt.Sprintf("variable %s", obj.Name())
}
