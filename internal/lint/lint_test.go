package lint

import (
	"path/filepath"
	"strings"
	"testing"
)

// TestFullSuiteFixtures runs every analyzer plus directive validation over
// all the well-formed fixture packages at once: the union of the per-analyzer
// expectations must hold, with no cross-analyzer interference and no stale
// or malformed directive reports.
func TestFullSuiteFixtures(t *testing.T) {
	RunFixture(t, Analyzers(), true,
		"trips/internal/annotation",
		"trips/internal/util",
		"trips/internal/zfix",
		"trips/internal/online",
		"trips/internal/afix",
		"trips/internal/afixuse",
		"trips/internal/obs/trace",
		"trips/internal/cfix",
	)
}

// TestDirectiveValidation checks the malformed/stale directive reports on
// the dirfix package. These land on the directive comments themselves, so
// they are asserted programmatically instead of via // want comments.
func TestDirectiveValidation(t *testing.T) {
	prog, err := Load(filepath.Join("testdata", "src", "trips"), "trips/internal/dirfix")
	if err != nil {
		t.Fatalf("loading dirfix: %v", err)
	}
	diags, err := Run(prog, Analyzers(), true)
	if err != nil {
		t.Fatalf("running suite: %v", err)
	}
	wantSubstrings := []string{
		"unknown directive //trips:bogus",
		"//trips:commutative needs a justification",
		`malformed //trips:allow "notananalyzer: some reason"`,
		"unused //trips:allow directive",
		"unused //trips:zeroalloc directive",
	}
	if len(diags) != len(wantSubstrings) {
		for _, d := range diags {
			t.Logf("got: [%s] %s", d.Analyzer, d.Message)
		}
		t.Fatalf("got %d diagnostics, want %d", len(diags), len(wantSubstrings))
	}
	for _, want := range wantSubstrings {
		found := false
		for _, d := range diags {
			if d.Analyzer == "directive" && strings.Contains(d.Message, want) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no directive diagnostic containing %q", want)
		}
	}
}

// TestAnalyzerNames pins the suite roster: CI flags and README docs refer to
// these names.
func TestAnalyzerNames(t *testing.T) {
	got := strings.Join(AnalyzerNames(), ",")
	want := "mapiter,zeroalloc,allocguard,wallclock,atomicfield,ctxvalue"
	if got != want {
		t.Fatalf("AnalyzerNames() = %s, want %s", got, want)
	}
}
