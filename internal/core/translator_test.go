package core

import (
	"testing"
	"time"

	"trips/internal/config"
	"trips/internal/events"
	"trips/internal/position"
	"trips/internal/semantics"
	"trips/internal/simul"
)

var t0 = time.Date(2017, 1, 2, 10, 0, 0, 0, time.UTC)

// fixture builds a small mall, a simulated population with ground truth,
// and a trained event model — the full substrate for pipeline tests.
type fixture struct {
	sim    *simul.Sim
	ds     *position.Dataset
	truths map[position.DeviceID]simul.Truth
	tr     *Translator
}

func newFixture(t testing.TB, devices int) *fixture {
	t.Helper()
	m, err := simul.BuildMall(simul.MallSpec{Floors: 2, ShopsPerFloor: 4})
	if err != nil {
		t.Fatal(err)
	}
	sim := simul.NewSim(m, 12345)
	ds, truths, err := sim.Population(devices, t0, time.Hour, simul.DefaultErrorModel())
	if err != nil {
		t.Fatal(err)
	}
	// Event training data derived from ground truth (the Event Editor
	// designation, done programmatically).
	ed := events.NewEditor()
	for _, es := range simul.TrainingSegments(ds, truths, 12) {
		for _, recs := range es.Segments {
			if err := ed.AddSegment(events.LabeledSegment{Event: es.Event, Device: recs[0].Device, Records: recs}); err != nil {
				t.Fatal(err)
			}
		}
	}
	em, err := TrainEventModel(ed.TrainingSet(), config.AnnotatorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := NewTranslator(m, em, config.CleanerConfig{}, config.AnnotatorConfig{}, config.ComplementorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	return &fixture{sim: sim, ds: ds, truths: truths, tr: tr}
}

func TestNewTranslatorValidation(t *testing.T) {
	if _, err := NewTranslator(nil, nil, config.CleanerConfig{}, config.AnnotatorConfig{}, config.ComplementorConfig{}); err == nil {
		t.Error("nil model accepted")
	}
}

func TestNewClassifier(t *testing.T) {
	for _, name := range []string{"", "gaussian-nb", "logistic-regression", "decision-tree"} {
		if _, err := NewClassifier(name); err != nil {
			t.Errorf("NewClassifier(%q): %v", name, err)
		}
	}
	if _, err := NewClassifier("svm"); err == nil {
		t.Error("unknown classifier accepted")
	}
}

func TestTranslateEndToEnd(t *testing.T) {
	f := newFixture(t, 6)
	results := f.tr.Translate(f.ds)
	if len(results) != 6 {
		t.Fatalf("results = %d", len(results))
	}
	devs := f.ds.Devices()
	for i, r := range results {
		if r.Device != devs[i] {
			t.Errorf("result %d device = %s, want %s (order)", i, r.Device, devs[i])
		}
		if r.Cleaned == nil || r.Cleaned.Len() != r.Raw.Len() {
			t.Errorf("%s: cleaned length %d vs raw %d", r.Device, r.Cleaned.Len(), r.Raw.Len())
		}
		if r.Original == nil || r.Final == nil {
			t.Fatalf("%s: missing semantics", r.Device)
		}
		if r.Final.Len() < r.Original.Len() {
			t.Errorf("%s: complementing removed triplets", r.Device)
		}
		if r.Final.Len() != r.Original.Len()+r.Inserted {
			t.Errorf("%s: inserted accounting %d + %d != %d", r.Device,
				r.Original.Len(), r.Inserted, r.Final.Len())
		}
		// Conciseness: triplets are far fewer than records.
		if r.Conciseness.RecordsPerTriplet < 2 {
			t.Errorf("%s: conciseness %.1f records/triplet", r.Device, r.Conciseness.RecordsPerTriplet)
		}
	}
}

func TestTranslateQualityAgainstTruth(t *testing.T) {
	f := newFixture(t, 8)
	results := f.tr.Translate(f.ds)
	var agg float64
	n := 0
	for _, r := range results {
		truth := f.truths[r.Device]
		rep := semantics.Compare(r.Final, truth.Semantics, 5*time.Second)
		agg += rep.TimeAgreement
		n++
	}
	mean := agg / float64(n)
	// With σ=2.5 m noise on 10 m shops the region-level agreement should
	// be solidly above chance (9 regions/floor → chance ≈ 0.11).
	if mean < 0.5 {
		t.Errorf("mean time agreement = %.2f, want ≥ 0.5", mean)
	}
}

func TestTranslateOneMatchesPipeline(t *testing.T) {
	f := newFixture(t, 3)
	dev := f.ds.Devices()[0]
	seq := f.ds.Sequence(dev)
	res := f.tr.TranslateOne(seq, nil)
	if res.Device != dev || res.Final == nil {
		t.Fatalf("TranslateOne = %+v", res)
	}
	if res.Original.Len() == 0 {
		t.Error("no semantics from TranslateOne")
	}
	if res.Elapsed <= 0 {
		t.Error("elapsed not measured")
	}
}

func TestTranslateComplementorDisabled(t *testing.T) {
	m, err := simul.BuildMall(simul.MallSpec{Floors: 1, ShopsPerFloor: 4})
	if err != nil {
		t.Fatal(err)
	}
	f := newFixture(t, 3)
	_ = m
	tr, err := NewTranslator(f.tr.Model, f.tr.Annotator.Events,
		config.CleanerConfig{}, config.AnnotatorConfig{}, config.ComplementorConfig{Disabled: true})
	if err != nil {
		t.Fatal(err)
	}
	results := tr.Translate(f.ds)
	for _, r := range results {
		if r.Inserted != 0 {
			t.Errorf("%s: disabled complementor inserted %d", r.Device, r.Inserted)
		}
		if r.Final.Len() != r.Original.Len() {
			t.Errorf("%s: final differs with complementor disabled", r.Device)
		}
	}
}

func TestTranslateWorkersDeterministic(t *testing.T) {
	f := newFixture(t, 5)
	f.tr.Workers = 1
	serial := f.tr.Translate(f.ds)
	f.tr.Workers = 4
	parallel := f.tr.Translate(f.ds)
	if len(serial) != len(parallel) {
		t.Fatal("result count differs")
	}
	for i := range serial {
		a, b := serial[i], parallel[i]
		if a.Device != b.Device || a.Final.Len() != b.Final.Len() || a.Clean.Modified() != b.Clean.Modified() {
			t.Errorf("device %s: serial and parallel runs differ (%d vs %d triplets)",
				a.Device, a.Final.Len(), b.Final.Len())
		}
	}
}

func TestTranslateEmptyDataset(t *testing.T) {
	f := newFixture(t, 2)
	if got := f.tr.Translate(position.NewDataset()); len(got) != 0 {
		t.Errorf("empty dataset yields %d results", len(got))
	}
}
