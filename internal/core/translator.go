// Package core orchestrates the TRIPS Translator: it wires the Cleaning,
// Annotation and Complementing layers into the three-layer translation
// framework of paper Fig. 3 and runs it over selected positioning
// sequences, "without manual interventions".
//
// Translation is two-phase. Phase one cleans and annotates every device
// sequence independently (concurrently across devices). Phase two builds
// the prior mobility knowledge from all phase-one semantics — "by referring
// to other generated mobility semantics sequences" — and complements each
// sequence's gaps by MAP inference.
package core

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"trips/internal/annotation"
	"trips/internal/cleaning"
	"trips/internal/complement"
	"trips/internal/config"
	"trips/internal/dsm"
	"trips/internal/events"
	"trips/internal/position"
	"trips/internal/semantics"
)

// Result is the full translation output for one device, carrying every
// intermediate the Viewer can trace ("the input, output and intermediate
// data involved in the translation").
type Result struct {
	Device position.DeviceID

	Raw     *position.Sequence
	Cleaned *position.Sequence
	Clean   cleaning.Report

	// Original is the pre-complement semantics sequence.
	Original *semantics.Sequence
	// Final is the complemented semantics sequence.
	Final *semantics.Sequence
	// Inserted counts the inferred triplets added by the Complementor.
	Inserted int

	Conciseness semantics.Conciseness
	Elapsed     time.Duration
}

// Translator is the configured three-layer pipeline.
type Translator struct {
	Model        *dsm.Model
	Cleaner      *cleaning.Cleaner
	Annotator    *annotation.Annotator
	Complementor *complement.Complementor // nil disables complementing
	// KnowledgeJoinGap is the gap threshold used when aggregating mobility
	// knowledge in phase two.
	KnowledgeJoinGap time.Duration
	// Workers bounds phase-one concurrency (default NumCPU).
	Workers int
}

// NewClassifier instantiates a classifier by config name; empty selects
// Gaussian naive Bayes.
func NewClassifier(name string) (annotation.Classifier, error) {
	switch name {
	case "", "gaussian-nb":
		return annotation.NewGaussianNB(), nil
	case "logistic-regression":
		return annotation.NewLogisticRegression(), nil
	case "decision-tree":
		return annotation.NewDecisionTree(), nil
	default:
		return nil, fmt.Errorf("core: unknown classifier %q", name)
	}
}

// TrainEventModel trains the identification model from Event Editor state
// using the configured classifier.
func TrainEventModel(ts events.TrainingSet, ac config.AnnotatorConfig) (*annotation.EventModel, error) {
	clf, err := NewClassifier(ac.Classifier)
	if err != nil {
		return nil, err
	}
	return annotation.TrainEventModel(ts, clf)
}

// NewTranslator builds the pipeline from the declarative configs.
func NewTranslator(m *dsm.Model, em *annotation.EventModel,
	cc config.CleanerConfig, ac config.AnnotatorConfig, xc config.ComplementorConfig) (*Translator, error) {
	if m == nil || !m.Frozen() {
		return nil, fmt.Errorf("core: translator needs a frozen DSM")
	}
	cl := cleaning.New(m)
	if cc.MaxSpeedMPS > 0 {
		cl.MaxSpeed = cc.MaxSpeedMPS
	}
	cl.UseEuclidean = cc.UseEuclidean

	cfg := annotation.DefaultConfig()
	if ac.EpsSpaceM > 0 {
		cfg.Split.EpsSpace = ac.EpsSpaceM
	}
	if ac.EpsTimeS > 0 {
		cfg.Split.EpsTime = time.Duration(ac.EpsTimeS) * time.Second
	}
	if ac.MinPts > 0 {
		cfg.Split.MinPts = ac.MinPts
	}
	if ac.MaxGapS > 0 {
		cfg.Split.MaxGap = time.Duration(ac.MaxGapS) * time.Second
	}
	if ac.MinSnippet > 0 {
		cfg.Split.MinSnippet = ac.MinSnippet
	}
	if ac.Display != "" {
		cfg.Display = annotation.DisplayPolicy(ac.Display)
	}
	cfg.MinConfidence = ac.MinConfidence
	switch {
	case ac.MergeGapS > 0:
		cfg.MergeGap = time.Duration(ac.MergeGapS) * time.Second
	case ac.MergeGapS < 0:
		cfg.MergeGap = 0
	}
	an := annotation.NewAnnotator(m, em, cfg)

	tr := &Translator{
		Model:            m,
		Cleaner:          cl,
		Annotator:        an,
		KnowledgeJoinGap: 2 * time.Minute,
	}
	if !xc.Disabled {
		comp := complement.NewComplementor(m, nil)
		if xc.MaxGapS > 0 {
			comp.MaxGap = time.Duration(xc.MaxGapS) * time.Second
		}
		if xc.MaxHops > 0 {
			comp.MaxHops = xc.MaxHops
		}
		comp.UniformPrior = xc.UniformPrior
		tr.Complementor = comp
	}
	return tr, nil
}

// TranslateOne runs the pipeline on a single sequence using the given
// knowledge (nil knowledge still cleans and annotates; complementing then
// uses the uniform prior only if the Complementor is configured so).
func (t *Translator) TranslateOne(s *position.Sequence, know *complement.Knowledge) Result {
	//trips:allow wallclock: per-sequence Elapsed is operational timing
	start := time.Now()
	res := Result{Device: s.Device, Raw: s}
	res.Cleaned, res.Clean = t.Cleaner.Clean(s)
	res.Original = t.Annotator.Annotate(res.Cleaned)
	res.Final = res.Original
	if t.Complementor != nil {
		comp := *t.Complementor // copy so Know can vary per call
		comp.Know = know
		if know == nil {
			comp.UniformPrior = true
		}
		res.Final, res.Inserted = comp.Complement(res.Original)
	}
	res.Conciseness = measure(res.Raw, res.Final)
	//trips:allow wallclock: per-sequence Elapsed is operational timing
	res.Elapsed = time.Since(start)
	return res
}

// Translate runs the full two-phase pipeline over a dataset and returns one
// result per device, in device order.
func (t *Translator) Translate(ds *position.Dataset) []Result {
	seqs := ds.Sequences()
	results := make([]Result, len(seqs))

	// Phase one: clean + annotate concurrently.
	workers := t.Workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > len(seqs) {
		workers = len(seqs)
	}
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	work := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				s := seqs[i]
				r := Result{Device: s.Device, Raw: s}
				//trips:allow wallclock: per-sequence Elapsed is operational timing
				start := time.Now()
				r.Cleaned, r.Clean = t.Cleaner.Clean(s)
				r.Original = t.Annotator.Annotate(r.Cleaned)
				//trips:allow wallclock: per-sequence Elapsed is operational timing
				r.Elapsed = time.Since(start)
				results[i] = r
			}
		}()
	}
	for i := range seqs {
		work <- i
	}
	close(work)
	wg.Wait()

	// Phase two: knowledge construction over all originals, then
	// per-sequence complementing.
	var know *complement.Knowledge
	if t.Complementor != nil {
		all := make([]*semantics.Sequence, 0, len(results))
		for i := range results {
			all = append(all, results[i].Original)
		}
		know = complement.BuildKnowledge(t.Model, all, t.KnowledgeJoinGap)
	}
	for i := range results {
		r := &results[i]
		r.Final = r.Original
		if t.Complementor != nil {
			comp := *t.Complementor
			comp.Know = know
			//trips:allow wallclock: per-sequence Elapsed is operational timing
			start := time.Now()
			r.Final, r.Inserted = comp.Complement(r.Original)
			//trips:allow wallclock: per-sequence Elapsed is operational timing
			r.Elapsed += time.Since(start)
		}
		r.Conciseness = measure(r.Raw, r.Final)
	}
	return results
}

// ResultSink consumes finalized translation results — the backend side of
// paper Sec. 4, where results are "stored in the backend for the reuse in
// other translation tasks". The trip warehouse (internal/tripstore)
// implements it.
type ResultSink interface {
	IngestResult(Result) error
}

// MultiSink fans every result to each sink in order, stopping on the first
// error. Nil sinks are skipped; with zero or one effective sink it degrades
// to that sink (so TranslateTo's nil fast path still applies). It lets one
// translation feed the warehouse and the analytics views in one pass.
func MultiSink(sinks ...ResultSink) ResultSink {
	eff := make(multiSink, 0, len(sinks))
	for _, s := range sinks {
		if s != nil {
			eff = append(eff, s)
		}
	}
	switch len(eff) {
	case 0:
		return nil
	case 1:
		return eff[0]
	default:
		return eff
	}
}

type multiSink []ResultSink

// IngestResult implements ResultSink.
func (m multiSink) IngestResult(r Result) error {
	for _, s := range m {
		if err := s.IngestResult(r); err != nil {
			return err
		}
	}
	return nil
}

// TranslateTo runs the full two-phase pipeline and forwards every result
// to the sink before returning them. A nil sink degrades to Translate.
func (t *Translator) TranslateTo(ds *position.Dataset, sink ResultSink) ([]Result, error) {
	results := t.Translate(ds)
	if sink == nil {
		return results, nil
	}
	for _, r := range results {
		if err := sink.IngestResult(r); err != nil {
			return results, fmt.Errorf("core: ingest result for %s: %w", r.Device, err)
		}
	}
	return results, nil
}

// measure computes the conciseness of translating raw into sem, using the
// CSV encoding size of the raw records as the baseline byte count.
func measure(raw *position.Sequence, sem *semantics.Sequence) semantics.Conciseness {
	// ≈58 bytes per CSV row (device,x,y,floor,RFC3339ms) — close enough
	// for a ratio without re-encoding every sequence.
	const rawRowBytes = 58
	return semantics.MeasureConciseness(raw.Len(), raw.Len()*rawRowBytes, sem)
}
