package core

import "trips/internal/online"

// NewOnline starts a streaming translation engine over this translator's
// trained components: the same cleaner, annotator, and complementor
// configuration runs incrementally per device instead of over a
// materialized dataset. The returned engine is live; feed it with Ingest
// or Consume and Close it to seal every open session.
func (t *Translator) NewOnline(cfg online.Config) (*online.Engine, error) {
	return online.NewEngine(online.Pipeline{
		Model:            t.Model,
		Cleaner:          t.Cleaner,
		Annotator:        t.Annotator,
		Complementor:     t.Complementor,
		KnowledgeJoinGap: t.KnowledgeJoinGap,
	}, cfg)
}
