package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func unitSquare() Polygon { return Poly(Pt(0, 0), Pt(4, 0), Pt(4, 4), Pt(0, 4)) }

// lShape is a concave polygon:
//
//	(0,4)──(2,4)
//	  │      │
//	  │      (2,2)──(4,2)
//	  │               │
//	(0,0)──────────(4,0)
func lShape() Polygon {
	return Poly(Pt(0, 0), Pt(4, 0), Pt(4, 2), Pt(2, 2), Pt(2, 4), Pt(0, 4))
}

func TestPolygonArea(t *testing.T) {
	if a := unitSquare().Area(); !almost(a, 16) {
		t.Errorf("square area = %v", a)
	}
	if a := lShape().Area(); !almost(a, 12) {
		t.Errorf("L area = %v", a)
	}
	// Winding direction must not affect the absolute area.
	rev := Poly(Pt(0, 4), Pt(4, 4), Pt(4, 0), Pt(0, 0))
	if a := rev.Area(); !almost(a, 16) {
		t.Errorf("cw square area = %v", a)
	}
	if sa := rev.SignedArea(); sa >= 0 {
		t.Errorf("cw signed area = %v, want negative", sa)
	}
}

func TestPolygonValidate(t *testing.T) {
	if err := unitSquare().Validate(); err != nil {
		t.Errorf("valid polygon rejected: %v", err)
	}
	if err := Poly(Pt(0, 0), Pt(1, 1)).Validate(); err == nil {
		t.Error("two-vertex polygon accepted")
	}
	if err := Poly(Pt(0, 0), Pt(1, 0), Pt(2, 0)).Validate(); err == nil {
		t.Error("zero-area polygon accepted")
	}
}

func TestPolygonPerimeter(t *testing.T) {
	if p := unitSquare().Perimeter(); !almost(p, 16) {
		t.Errorf("perimeter = %v", p)
	}
}

func TestPolygonCentroid(t *testing.T) {
	if c := unitSquare().Centroid(); !c.Eq(Pt(2, 2)) {
		t.Errorf("square centroid = %v", c)
	}
	// The L centroid is pulled toward the fat lower arm.
	c := lShape().Centroid()
	if !(c.X > 1 && c.X < 3 && c.Y > 1 && c.Y < 2.5) {
		t.Errorf("L centroid = %v outside plausible band", c)
	}
}

func TestPolygonContains(t *testing.T) {
	sq := unitSquare()
	inside := []Point{Pt(2, 2), Pt(0.1, 0.1), Pt(3.9, 3.9)}
	for _, p := range inside {
		if !sq.Contains(p) {
			t.Errorf("square should contain %v", p)
		}
	}
	outside := []Point{Pt(-1, 2), Pt(5, 2), Pt(2, -0.5), Pt(2, 4.5)}
	for _, p := range outside {
		if sq.Contains(p) {
			t.Errorf("square should not contain %v", p)
		}
	}
	// Boundary points count as inside.
	for _, p := range []Point{Pt(0, 0), Pt(2, 0), Pt(4, 4), Pt(0, 2)} {
		if !sq.Contains(p) {
			t.Errorf("boundary point %v should count as inside", p)
		}
	}
	// Concave case: the notch is outside.
	l := lShape()
	if l.Contains(Pt(3, 3)) {
		t.Error("L notch point (3,3) should be outside")
	}
	if !l.Contains(Pt(1, 3)) {
		t.Error("L arm point (1,3) should be inside")
	}
	if !l.Contains(Pt(3, 1)) {
		t.Error("L arm point (3,1) should be inside")
	}
}

func TestPolygonDistToPoint(t *testing.T) {
	sq := unitSquare()
	if d := sq.DistToPoint(Pt(2, 2)); d != 0 {
		t.Errorf("interior dist = %v", d)
	}
	if d := sq.DistToPoint(Pt(7, 4)); !almost(d, 3) {
		t.Errorf("exterior dist = %v, want 3", d)
	}
}

func TestPolygonClosestBoundaryPoint(t *testing.T) {
	sq := unitSquare()
	got := sq.ClosestBoundaryPoint(Pt(2, 10))
	if !got.Eq(Pt(2, 4)) {
		t.Errorf("ClosestBoundaryPoint = %v, want (2,4)", got)
	}
}

func TestPolygonIntersectsSegment(t *testing.T) {
	sq := unitSquare()
	if !sq.IntersectsSegment(Seg(Pt(-2, 2), Pt(6, 2))) {
		t.Error("crossing segment not detected")
	}
	if !sq.IntersectsSegment(Seg(Pt(1, 1), Pt(3, 3))) {
		t.Error("interior segment not detected")
	}
	if sq.IntersectsSegment(Seg(Pt(5, 5), Pt(6, 6))) {
		t.Error("exterior segment falsely detected")
	}
}

func TestPolygonIsConvex(t *testing.T) {
	if !unitSquare().IsConvex() {
		t.Error("square should be convex")
	}
	if lShape().IsConvex() {
		t.Error("L should not be convex")
	}
}

func TestPolygonTranslate(t *testing.T) {
	got := unitSquare().Translate(Pt(10, -1))
	if !got.Vertices[0].Eq(Pt(10, -1)) || !got.Vertices[2].Eq(Pt(14, 3)) {
		t.Errorf("Translate = %v", got.Vertices)
	}
	// Area invariant under translation.
	if !almost(got.Area(), 16) {
		t.Errorf("translated area = %v", got.Area())
	}
}

func TestPolygonEdges(t *testing.T) {
	edges := unitSquare().Edges()
	if len(edges) != 4 {
		t.Fatalf("edges = %d, want 4", len(edges))
	}
	if !edges[3].B.Eq(Pt(0, 0)) {
		t.Error("polygon edges should close the ring")
	}
}

func TestPolygonSamplePoints(t *testing.T) {
	sq := unitSquare()
	pts := sq.SamplePoints(10)
	if len(pts) != 10 {
		t.Fatalf("SamplePoints len = %d", len(pts))
	}
	for _, p := range pts {
		if !sq.Contains(p) {
			t.Errorf("sample %v outside polygon", p)
		}
	}
	if got := sq.SamplePoints(0); got != nil {
		t.Error("SamplePoints(0) should be nil")
	}
}

func TestPolygonPropertyCentroidInsideConvex(t *testing.T) {
	// For any rectangle (always convex) the centroid must lie inside.
	f := func(x, y, w, h float64) bool {
		w, h = math.Abs(clampF(w))+1, math.Abs(clampF(h))+1
		x, y = clampF(x), clampF(y)
		pg := NewRect(Pt(x, y), Pt(x+w, y+h)).ToPolygon()
		return pg.Contains(pg.Centroid())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPolygonPropertyContainsMatchesDist(t *testing.T) {
	// DistToPoint is zero iff Contains is true, for the concave L shape.
	l := lShape()
	f := func(px, py float64) bool {
		p := Pt(math.Mod(math.Abs(clampF(px)), 6)-1, math.Mod(math.Abs(clampF(py)), 6)-1)
		in := l.Contains(p)
		d := l.DistToPoint(p)
		if in {
			return d == 0
		}
		return d > 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
