package geom

import (
	"testing"
	"testing/quick"
)

func TestRectBasics(t *testing.T) {
	r := NewRect(Pt(4, 1), Pt(0, 5))
	if !r.Min.Eq(Pt(0, 1)) || !r.Max.Eq(Pt(4, 5)) {
		t.Errorf("NewRect normalization failed: %v", r)
	}
	if !almost(r.Width(), 4) || !almost(r.Height(), 4) || !almost(r.Area(), 16) {
		t.Errorf("dims: w=%v h=%v a=%v", r.Width(), r.Height(), r.Area())
	}
	if !r.Center().Eq(Pt(2, 3)) {
		t.Errorf("center = %v", r.Center())
	}
}

func TestRectEmpty(t *testing.T) {
	e := EmptyRect()
	if !e.IsEmpty() {
		t.Error("EmptyRect not empty")
	}
	if e.Width() != 0 || e.Area() != 0 {
		t.Error("empty rect should have zero extent")
	}
	r := NewRect(Pt(0, 0), Pt(1, 1))
	if got := e.Union(r); got != r {
		t.Errorf("empty union identity failed: %v", got)
	}
	if got := r.Union(e); got != r {
		t.Errorf("union with empty failed: %v", got)
	}
	if e.Intersects(r) {
		t.Error("empty rect should intersect nothing")
	}
}

func TestRectContains(t *testing.T) {
	r := NewRect(Pt(0, 0), Pt(4, 4))
	if !r.Contains(Pt(2, 2)) || !r.Contains(Pt(0, 0)) || !r.Contains(Pt(4, 4)) {
		t.Error("Contains failed for interior/corner")
	}
	if r.Contains(Pt(5, 2)) || r.Contains(Pt(2, -1)) {
		t.Error("Contains failed for exterior")
	}
	if !r.ContainsRect(NewRect(Pt(1, 1), Pt(3, 3))) {
		t.Error("ContainsRect inner failed")
	}
	if r.ContainsRect(NewRect(Pt(1, 1), Pt(5, 3))) {
		t.Error("ContainsRect overflow accepted")
	}
	if !r.ContainsRect(EmptyRect()) {
		t.Error("every rect contains the empty rect")
	}
}

func TestRectIntersects(t *testing.T) {
	a := NewRect(Pt(0, 0), Pt(4, 4))
	if !a.Intersects(NewRect(Pt(3, 3), Pt(6, 6))) {
		t.Error("overlapping rects should intersect")
	}
	if !a.Intersects(NewRect(Pt(4, 0), Pt(8, 4))) {
		t.Error("touching rects should intersect")
	}
	if a.Intersects(NewRect(Pt(5, 5), Pt(6, 6))) {
		t.Error("disjoint rects should not intersect")
	}
}

func TestRectExpandAndExtend(t *testing.T) {
	r := NewRect(Pt(1, 1), Pt(3, 3)).Expand(1)
	if !r.Min.Eq(Pt(0, 0)) || !r.Max.Eq(Pt(4, 4)) {
		t.Errorf("Expand = %v", r)
	}
	r = r.ExtendPoint(Pt(10, 2))
	if !almost(r.Max.X, 10) {
		t.Errorf("ExtendPoint = %v", r)
	}
}

func TestRectVerticesAndPolygon(t *testing.T) {
	r := NewRect(Pt(0, 0), Pt(2, 1))
	v := r.Vertices()
	if len(v) != 4 {
		t.Fatalf("vertices = %d", len(v))
	}
	pg := r.ToPolygon()
	if !almost(pg.Area(), 2) {
		t.Errorf("polygon area = %v", pg.Area())
	}
	if pg.SignedArea() <= 0 {
		t.Error("rect polygon should wind counter-clockwise")
	}
}

func TestBoundsOf(t *testing.T) {
	if !BoundsOf(nil).IsEmpty() {
		t.Error("BoundsOf(nil) should be empty")
	}
	b := BoundsOf([]Point{Pt(1, 5), Pt(-2, 3), Pt(4, -1)})
	if !b.Min.Eq(Pt(-2, -1)) || !b.Max.Eq(Pt(4, 5)) {
		t.Errorf("BoundsOf = %v", b)
	}
}

func TestRectPropertyUnionContainsBoth(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy, dx, dy float64) bool {
		r := NewRect(Pt(clampF(ax), clampF(ay)), Pt(clampF(bx), clampF(by)))
		s := NewRect(Pt(clampF(cx), clampF(cy)), Pt(clampF(dx), clampF(dy)))
		u := r.Union(s)
		return u.ContainsRect(r) && u.ContainsRect(s)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
