package geom

import "math"

// Polyline is an open chain of points, used for walls and for movement
// traces.
type Polyline struct {
	Points []Point `json:"points"`
}

// Line builds a polyline from the given points.
func Line(pts ...Point) Polyline { return Polyline{Points: pts} }

// Length returns the total chain length.
func (pl Polyline) Length() float64 {
	var s float64
	for i := 1; i < len(pl.Points); i++ {
		s += pl.Points[i-1].Dist(pl.Points[i])
	}
	return s
}

// Segments returns the consecutive segments of the chain.
func (pl Polyline) Segments() []Segment {
	if len(pl.Points) < 2 {
		return nil
	}
	segs := make([]Segment, 0, len(pl.Points)-1)
	for i := 1; i < len(pl.Points); i++ {
		segs = append(segs, Seg(pl.Points[i-1], pl.Points[i]))
	}
	return segs
}

// Bounds returns the bounding rectangle of the chain.
func (pl Polyline) Bounds() Rect { return BoundsOf(pl.Points) }

// DistToPoint returns the minimum distance from p to the chain; +Inf for an
// empty chain and point distance for a single-point chain.
func (pl Polyline) DistToPoint(p Point) float64 {
	switch len(pl.Points) {
	case 0:
		return math.Inf(1)
	case 1:
		return p.Dist(pl.Points[0])
	}
	d := math.Inf(1)
	for _, s := range pl.Segments() {
		if v := s.DistToPoint(p); v < d {
			d = v
		}
	}
	return d
}

// PointAt returns the point at arc-length distance d from the start of the
// chain, clamped to the chain ends.
func (pl Polyline) PointAt(d float64) Point {
	if len(pl.Points) == 0 {
		return Point{}
	}
	if d <= 0 {
		return pl.Points[0]
	}
	for i := 1; i < len(pl.Points); i++ {
		l := pl.Points[i-1].Dist(pl.Points[i])
		if d <= l {
			if l <= Eps {
				return pl.Points[i]
			}
			return pl.Points[i-1].Lerp(pl.Points[i], d/l)
		}
		d -= l
	}
	return pl.Points[len(pl.Points)-1]
}

// Resample returns the chain resampled to n points spaced evenly by
// arc length (endpoints included). n < 2 returns a copy of the endpoints
// available.
func (pl Polyline) Resample(n int) Polyline {
	if n <= 0 || len(pl.Points) == 0 {
		return Polyline{}
	}
	if n == 1 {
		return Line(pl.Points[0])
	}
	total := pl.Length()
	out := make([]Point, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, pl.PointAt(total*float64(i)/float64(n-1)))
	}
	return Polyline{Points: out}
}

// Simplify returns the chain simplified with the Douglas-Peucker algorithm
// using the given distance tolerance. Endpoints are always kept.
func (pl Polyline) Simplify(tol float64) Polyline {
	n := len(pl.Points)
	if n < 3 || tol <= 0 {
		cp := make([]Point, n)
		copy(cp, pl.Points)
		return Polyline{Points: cp}
	}
	keep := make([]bool, n)
	keep[0], keep[n-1] = true, true
	var rec func(lo, hi int)
	rec = func(lo, hi int) {
		if hi-lo < 2 {
			return
		}
		s := Seg(pl.Points[lo], pl.Points[hi])
		maxD, maxI := -1.0, -1
		for i := lo + 1; i < hi; i++ {
			if d := s.DistToPoint(pl.Points[i]); d > maxD {
				maxD, maxI = d, i
			}
		}
		if maxD > tol {
			keep[maxI] = true
			rec(lo, maxI)
			rec(maxI, hi)
		}
	}
	rec(0, n-1)
	out := make([]Point, 0, n)
	for i, k := range keep {
		if k {
			out = append(out, pl.Points[i])
		}
	}
	return Polyline{Points: out}
}

// TurnCount returns the number of direction changes along the chain whose
// turn angle exceeds minAngle radians. It is one of the movement features the
// Annotator extracts.
func (pl Polyline) TurnCount(minAngle float64) int {
	n := len(pl.Points)
	cnt := 0
	for i := 2; i < n; i++ {
		if TurnAngle(pl.Points[i-2], pl.Points[i-1], pl.Points[i]) > minAngle {
			cnt++
		}
	}
	return cnt
}
