package geom

import "math"

// Circle is a disk with a center and radius, used by the Space Modeler
// drawing tool (e.g. kiosks, pillars) and by covering-range features.
type Circle struct {
	Center Point   `json:"center"`
	Radius float64 `json:"radius"`
}

// Circ is shorthand for Circle{c, r}.
func Circ(c Point, r float64) Circle { return Circle{Center: c, Radius: r} }

// Area returns the disk area.
func (c Circle) Area() float64 { return math.Pi * c.Radius * c.Radius }

// Contains reports whether p lies inside or on the circle.
func (c Circle) Contains(p Point) bool {
	return c.Center.Dist(p) <= c.Radius+Eps
}

// DistToPoint returns the distance from p to the disk: zero when inside.
func (c Circle) DistToPoint(p Point) float64 {
	d := c.Center.Dist(p) - c.Radius
	if d < 0 {
		return 0
	}
	return d
}

// Bounds returns the bounding rectangle of the circle.
func (c Circle) Bounds() Rect {
	return Rect{
		Min: Point{c.Center.X - c.Radius, c.Center.Y - c.Radius},
		Max: Point{c.Center.X + c.Radius, c.Center.Y + c.Radius},
	}
}

// ToPolygon approximates the circle by a regular n-gon (n >= 3). The Space
// Modeler converts drawn circles to polygons when saving the DSM so that all
// entities share one geometry representation.
func (c Circle) ToPolygon(n int) Polygon {
	if n < 3 {
		n = 3
	}
	pts := make([]Point, 0, n)
	for i := 0; i < n; i++ {
		a := 2 * math.Pi * float64(i) / float64(n)
		pts = append(pts, Point{
			X: c.Center.X + c.Radius*math.Cos(a),
			Y: c.Center.Y + c.Radius*math.Sin(a),
		})
	}
	return Polygon{Vertices: pts}
}

// IntersectsCircle reports whether the two disks overlap or touch.
func (c Circle) IntersectsCircle(d Circle) bool {
	return c.Center.Dist(d.Center) <= c.Radius+d.Radius+Eps
}

// MinEnclosingCircle returns a small circle covering all pts. It uses the
// bounding-box center heuristic followed by a radius fix-up, which is exact
// enough for the covering-range movement feature (a few percent above the
// optimum in the worst case, deterministic, O(n)).
func MinEnclosingCircle(pts []Point) Circle {
	if len(pts) == 0 {
		return Circle{}
	}
	c := BoundsOf(pts).Center()
	var r float64
	for _, p := range pts {
		if d := c.Dist(p); d > r {
			r = d
		}
	}
	// One refinement pass: move toward the farthest point to shrink radius.
	for iter := 0; iter < 16; iter++ {
		var far Point
		r = 0
		for _, p := range pts {
			if d := c.Dist(p); d > r {
				r, far = d, p
			}
		}
		c = c.Lerp(far, 0.05)
	}
	for _, p := range pts {
		if d := c.Dist(p); d > r {
			r = d
		}
	}
	return Circle{Center: c, Radius: r}
}
