package geom

import (
	"errors"
	"math"
)

// Polygon is a simple polygon given by its vertices in order (either winding).
// The boundary closes implicitly from the last vertex back to the first.
type Polygon struct {
	Vertices []Point `json:"vertices"`
}

// Poly builds a polygon from the given vertices.
func Poly(pts ...Point) Polygon { return Polygon{Vertices: pts} }

// ErrDegeneratePolygon is returned by Validate for polygons with fewer than
// three vertices or (near-)zero area.
var ErrDegeneratePolygon = errors.New("geom: degenerate polygon")

// Validate checks that the polygon has at least three vertices and non-zero
// area.
func (pg Polygon) Validate() error {
	if len(pg.Vertices) < 3 || math.Abs(pg.SignedArea()) <= Eps {
		return ErrDegeneratePolygon
	}
	return nil
}

// SignedArea returns the area with positive sign for counter-clockwise
// winding (shoelace formula).
func (pg Polygon) SignedArea() float64 {
	n := len(pg.Vertices)
	if n < 3 {
		return 0
	}
	var s float64
	for i := 0; i < n; i++ {
		j := (i + 1) % n
		s += pg.Vertices[i].Cross(pg.Vertices[j])
	}
	return s / 2
}

// Area returns the absolute polygon area.
func (pg Polygon) Area() float64 { return math.Abs(pg.SignedArea()) }

// Perimeter returns the total boundary length.
func (pg Polygon) Perimeter() float64 {
	n := len(pg.Vertices)
	if n < 2 {
		return 0
	}
	var s float64
	for i := 0; i < n; i++ {
		s += pg.Vertices[i].Dist(pg.Vertices[(i+1)%n])
	}
	return s
}

// Centroid returns the area centroid of the polygon. For degenerate polygons
// it falls back to the vertex mean.
func (pg Polygon) Centroid() Point {
	n := len(pg.Vertices)
	a := pg.SignedArea()
	if n < 3 || math.Abs(a) <= Eps {
		return Centroid(pg.Vertices)
	}
	var cx, cy float64
	for i := 0; i < n; i++ {
		p, q := pg.Vertices[i], pg.Vertices[(i+1)%n]
		w := p.Cross(q)
		cx += (p.X + q.X) * w
		cy += (p.Y + q.Y) * w
	}
	k := 1 / (6 * a)
	return Point{cx * k, cy * k}
}

// Contains reports whether p is inside the polygon or on its boundary, using
// the even-odd ray casting rule with an explicit boundary check.
func (pg Polygon) Contains(p Point) bool {
	n := len(pg.Vertices)
	if n < 3 {
		return false
	}
	// Boundary counts as inside: rooms own their walls for matching purposes.
	if pg.OnBoundary(p) {
		return true
	}
	inside := false
	for i, j := 0, n-1; i < n; j, i = i, i+1 {
		vi, vj := pg.Vertices[i], pg.Vertices[j]
		if (vi.Y > p.Y) != (vj.Y > p.Y) {
			x := vj.X + (p.Y-vj.Y)/(vi.Y-vj.Y)*(vi.X-vj.X)
			if p.X < x {
				inside = !inside
			}
		}
	}
	return inside
}

// OnBoundary reports whether p lies on the polygon boundary within Eps.
func (pg Polygon) OnBoundary(p Point) bool {
	n := len(pg.Vertices)
	for i := 0; i < n; i++ {
		if Seg(pg.Vertices[i], pg.Vertices[(i+1)%n]).DistToPoint(p) <= Eps {
			return true
		}
	}
	return false
}

// Edges returns the boundary segments in vertex order.
func (pg Polygon) Edges() []Segment {
	n := len(pg.Vertices)
	if n < 2 {
		return nil
	}
	edges := make([]Segment, 0, n)
	for i := 0; i < n; i++ {
		edges = append(edges, Seg(pg.Vertices[i], pg.Vertices[(i+1)%n]))
	}
	return edges
}

// Bounds returns the axis-aligned bounding rectangle of the polygon.
func (pg Polygon) Bounds() Rect { return BoundsOf(pg.Vertices) }

// DistToPoint returns the distance from p to the polygon: zero when p is
// inside or on the boundary, otherwise the distance to the nearest edge.
// It iterates the edges in place rather than materializing Edges(): the
// cleaning hot path calls it for every snap candidate.
//
//trips:zeroalloc
func (pg Polygon) DistToPoint(p Point) float64 {
	if pg.Contains(p) {
		return 0
	}
	d := math.Inf(1)
	n := len(pg.Vertices)
	if n < 2 {
		return d
	}
	for i := 0; i < n; i++ {
		e := Seg(pg.Vertices[i], pg.Vertices[(i+1)%n])
		if v := e.DistToPoint(p); v < d {
			d = v
		}
	}
	return d
}

// ClosestBoundaryPoint returns the boundary point nearest to p.
//
//trips:zeroalloc
func (pg Polygon) ClosestBoundaryPoint(p Point) Point {
	best := p
	d := math.Inf(1)
	n := len(pg.Vertices)
	if n < 2 {
		return best
	}
	for i := 0; i < n; i++ {
		e := Seg(pg.Vertices[i], pg.Vertices[(i+1)%n])
		q, _ := e.ClosestPoint(p)
		if v := p.Dist(q); v < d {
			d, best = v, q
		}
	}
	return best
}

// IntersectsSegment reports whether s crosses or touches the polygon
// boundary, or lies entirely inside it.
func (pg Polygon) IntersectsSegment(s Segment) bool {
	n := len(pg.Vertices)
	for i := 0; i < n && n >= 2; i++ {
		if Seg(pg.Vertices[i], pg.Vertices[(i+1)%n]).Intersects(s) {
			return true
		}
	}
	return pg.Contains(s.A) // fully interior segment
}

// IsConvex reports whether the polygon is convex (collinear runs allowed).
func (pg Polygon) IsConvex() bool {
	n := len(pg.Vertices)
	if n < 4 {
		return n == 3
	}
	sign := 0
	for i := 0; i < n; i++ {
		o := Orientation(pg.Vertices[i], pg.Vertices[(i+1)%n], pg.Vertices[(i+2)%n])
		if o == 0 {
			continue
		}
		if sign == 0 {
			sign = o
		} else if o != sign {
			return false
		}
	}
	return true
}

// Translate returns a copy of the polygon shifted by d.
func (pg Polygon) Translate(d Point) Polygon {
	out := Polygon{Vertices: make([]Point, len(pg.Vertices))}
	for i, v := range pg.Vertices {
		out.Vertices[i] = v.Add(d)
	}
	return out
}

// SamplePoints returns n points approximately evenly spread inside the
// polygon by scanning its bounding box on a grid and keeping interior points.
// It is used for display-point selection and interpolation candidates. If the
// polygon is degenerate the centroid is repeated.
func (pg Polygon) SamplePoints(n int) []Point {
	if n <= 0 {
		return nil
	}
	b := pg.Bounds()
	if b.IsEmpty() || b.Area() <= Eps {
		out := make([]Point, n)
		c := pg.Centroid()
		for i := range out {
			out[i] = c
		}
		return out
	}
	// Grid resolution chosen so the box yields roughly 4n candidates.
	side := math.Sqrt(b.Area() / float64(4*n))
	if side <= Eps {
		side = 0.1
	}
	var out []Point
	for y := b.Min.Y + side/2; y < b.Max.Y; y += side {
		for x := b.Min.X + side/2; x < b.Max.X; x += side {
			p := Pt(x, y)
			if pg.Contains(p) {
				out = append(out, p)
			}
		}
	}
	if len(out) == 0 {
		out = append(out, pg.Centroid())
	}
	for len(out) < n {
		out = append(out, out[len(out)%len(out)])
	}
	// Down-sample evenly when over-full.
	if len(out) > n {
		step := float64(len(out)) / float64(n)
		sel := make([]Point, 0, n)
		for i := 0; i < n; i++ {
			sel = append(sel, out[int(float64(i)*step)])
		}
		out = sel
	}
	return out
}
