package geom

import (
	"math"
	"testing"
)

func TestCircleBasics(t *testing.T) {
	c := Circ(Pt(0, 0), 2)
	if !almost(c.Area(), 4*math.Pi) {
		t.Errorf("area = %v", c.Area())
	}
	if !c.Contains(Pt(1, 1)) || !c.Contains(Pt(2, 0)) {
		t.Error("Contains failed for interior/boundary")
	}
	if c.Contains(Pt(2.1, 0)) {
		t.Error("Contains accepted exterior point")
	}
	if d := c.DistToPoint(Pt(5, 0)); !almost(d, 3) {
		t.Errorf("dist = %v", d)
	}
	if d := c.DistToPoint(Pt(1, 0)); d != 0 {
		t.Errorf("interior dist = %v", d)
	}
	b := c.Bounds()
	if !b.Min.Eq(Pt(-2, -2)) || !b.Max.Eq(Pt(2, 2)) {
		t.Errorf("bounds = %v", b)
	}
}

func TestCircleToPolygon(t *testing.T) {
	c := Circ(Pt(3, 3), 1)
	pg := c.ToPolygon(64)
	if len(pg.Vertices) != 64 {
		t.Fatalf("vertices = %d", len(pg.Vertices))
	}
	// Polygon area approaches pi*r^2 from below.
	if a := pg.Area(); a > c.Area() || a < 0.98*c.Area() {
		t.Errorf("polygon area = %v vs circle %v", a, c.Area())
	}
	if !pg.Contains(Pt(3, 3)) {
		t.Error("polygonized circle should contain its center")
	}
	// Clamping of small n.
	if got := c.ToPolygon(2); len(got.Vertices) != 3 {
		t.Errorf("ToPolygon(2) vertices = %d, want 3", len(got.Vertices))
	}
}

func TestCircleIntersectsCircle(t *testing.T) {
	a := Circ(Pt(0, 0), 2)
	if !a.IntersectsCircle(Circ(Pt(3, 0), 1.5)) {
		t.Error("overlapping circles should intersect")
	}
	if !a.IntersectsCircle(Circ(Pt(3, 0), 1)) {
		t.Error("touching circles should intersect")
	}
	if a.IntersectsCircle(Circ(Pt(10, 0), 1)) {
		t.Error("distant circles should not intersect")
	}
}

func TestMinEnclosingCircle(t *testing.T) {
	if c := MinEnclosingCircle(nil); c.Radius != 0 {
		t.Errorf("empty MEC = %v", c)
	}
	pts := []Point{Pt(0, 0), Pt(4, 0), Pt(2, 3), Pt(2, 1)}
	c := MinEnclosingCircle(pts)
	for _, p := range pts {
		if !c.Contains(p) {
			t.Errorf("MEC does not contain %v (c=%v)", p, c)
		}
	}
	// Heuristic bound: the optimum for these points has radius about 2.17;
	// allow 15% slack.
	if c.Radius > 2.17*1.15 {
		t.Errorf("MEC radius %v too loose", c.Radius)
	}
}

func TestGridIndexQueryPoint(t *testing.T) {
	g := NewGridIndex(2)
	g.Insert(0, NewRect(Pt(0, 0), Pt(4, 4)))
	g.Insert(1, NewRect(Pt(3, 3), Pt(8, 8)))
	g.Insert(2, NewRect(Pt(20, 20), Pt(22, 22)))

	ids := g.QueryPoint(Pt(1, 1))
	if len(ids) != 1 || ids[0] != 0 {
		t.Errorf("QueryPoint(1,1) = %v", ids)
	}
	ids = g.QueryPoint(Pt(3.5, 3.5))
	if len(ids) != 2 {
		t.Errorf("QueryPoint overlap = %v", ids)
	}
	if ids := g.QueryPoint(Pt(-5, -5)); len(ids) != 0 {
		t.Errorf("QueryPoint outside = %v", ids)
	}
}

func TestGridIndexQueryRect(t *testing.T) {
	g := NewGridIndex(2)
	for i := 0; i < 10; i++ {
		x := float64(i * 5)
		g.Insert(i, NewRect(Pt(x, 0), Pt(x+2, 2)))
	}
	ids := g.QueryRect(NewRect(Pt(4, 0), Pt(13, 2)))
	// Items 1 (5..7), 2 (10..12) intersect; item 0 (0..2) does not reach 4.
	want := map[int]bool{1: true, 2: true}
	if len(ids) != len(want) {
		t.Fatalf("QueryRect = %v", ids)
	}
	for _, id := range ids {
		if !want[id] {
			t.Errorf("unexpected id %d", id)
		}
	}
	if ids := g.QueryRect(EmptyRect()); ids != nil {
		t.Error("QueryRect(empty) should be nil")
	}
	if g.Len() != 10 {
		t.Errorf("Len = %d", g.Len())
	}
}

func TestGridIndexZeroCellSize(t *testing.T) {
	g := NewGridIndex(0) // falls back to 1m cells
	g.Insert(0, NewRect(Pt(0, 0), Pt(1, 1)))
	if ids := g.QueryPoint(Pt(0.5, 0.5)); len(ids) != 1 {
		t.Errorf("fallback cell size broken: %v", ids)
	}
}
