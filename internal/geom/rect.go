package geom

import "math"

// Rect is an axis-aligned rectangle defined by its min and max corners.
// A Rect with Min components greater than Max components is empty.
type Rect struct {
	Min Point `json:"min"`
	Max Point `json:"max"`
}

// NewRect returns the rectangle spanning the two corner points in any order.
func NewRect(a, b Point) Rect {
	return Rect{
		Min: Point{math.Min(a.X, b.X), math.Min(a.Y, b.Y)},
		Max: Point{math.Max(a.X, b.X), math.Max(a.Y, b.Y)},
	}
}

// EmptyRect returns a rectangle that contains nothing and acts as the
// identity for Union.
func EmptyRect() Rect {
	inf := math.Inf(1)
	return Rect{Min: Point{inf, inf}, Max: Point{-inf, -inf}}
}

// IsEmpty reports whether the rectangle contains no points.
func (r Rect) IsEmpty() bool { return r.Min.X > r.Max.X || r.Min.Y > r.Max.Y }

// Width returns the X extent; zero for empty rectangles.
func (r Rect) Width() float64 {
	if r.IsEmpty() {
		return 0
	}
	return r.Max.X - r.Min.X
}

// Height returns the Y extent; zero for empty rectangles.
func (r Rect) Height() float64 {
	if r.IsEmpty() {
		return 0
	}
	return r.Max.Y - r.Min.Y
}

// Area returns the rectangle area.
func (r Rect) Area() float64 { return r.Width() * r.Height() }

// Center returns the rectangle center point.
func (r Rect) Center() Point { return Midpoint(r.Min, r.Max) }

// Contains reports whether p lies inside or on the boundary of r.
func (r Rect) Contains(p Point) bool {
	return p.X >= r.Min.X-Eps && p.X <= r.Max.X+Eps &&
		p.Y >= r.Min.Y-Eps && p.Y <= r.Max.Y+Eps
}

// ContainsRect reports whether s lies entirely within r.
func (r Rect) ContainsRect(s Rect) bool {
	if s.IsEmpty() {
		return true
	}
	return r.Contains(s.Min) && r.Contains(s.Max)
}

// Intersects reports whether r and s share any point.
func (r Rect) Intersects(s Rect) bool {
	if r.IsEmpty() || s.IsEmpty() {
		return false
	}
	return r.Min.X <= s.Max.X+Eps && s.Min.X <= r.Max.X+Eps &&
		r.Min.Y <= s.Max.Y+Eps && s.Min.Y <= r.Max.Y+Eps
}

// Union returns the smallest rectangle containing both r and s.
func (r Rect) Union(s Rect) Rect {
	if r.IsEmpty() {
		return s
	}
	if s.IsEmpty() {
		return r
	}
	return Rect{
		Min: Point{math.Min(r.Min.X, s.Min.X), math.Min(r.Min.Y, s.Min.Y)},
		Max: Point{math.Max(r.Max.X, s.Max.X), math.Max(r.Max.Y, s.Max.Y)},
	}
}

// Expand returns r grown by d on every side. A negative d shrinks it.
func (r Rect) Expand(d float64) Rect {
	return Rect{
		Min: Point{r.Min.X - d, r.Min.Y - d},
		Max: Point{r.Max.X + d, r.Max.Y + d},
	}
}

// ExtendPoint returns the smallest rectangle containing r and p.
func (r Rect) ExtendPoint(p Point) Rect {
	return r.Union(Rect{Min: p, Max: p})
}

// Vertices returns the four corners in counter-clockwise order starting at
// Min.
func (r Rect) Vertices() []Point {
	return []Point{
		r.Min,
		{r.Max.X, r.Min.Y},
		r.Max,
		{r.Min.X, r.Max.Y},
	}
}

// ToPolygon converts the rectangle to a Polygon with the same extent.
func (r Rect) ToPolygon() Polygon { return Polygon{Vertices: r.Vertices()} }

// BoundsOf returns the bounding rectangle of pts; empty for no points.
func BoundsOf(pts []Point) Rect {
	r := EmptyRect()
	for _, p := range pts {
		r = r.ExtendPoint(p)
	}
	return r
}
