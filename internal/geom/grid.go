package geom

import "math"

// GridIndex is a uniform spatial hash over the plane. The DSM uses it to
// answer "which entity contains this point" queries during cleaning and
// annotation without scanning every entity; the complexity of a lookup is
// proportional to the number of items whose bounds overlap the probed cell.
type GridIndex struct {
	cell  float64
	cells map[gridKey][]int
	boxes []Rect
}

type gridKey struct{ cx, cy int }

// NewGridIndex creates an index with the given cell size in meters.
// Cell sizes at roughly the median item diameter perform best; the DSM uses
// 4 m for room-scale entities.
func NewGridIndex(cellSize float64) *GridIndex {
	if cellSize <= 0 {
		cellSize = 1
	}
	return &GridIndex{cell: cellSize, cells: make(map[gridKey][]int)}
}

func (g *GridIndex) key(p Point) gridKey {
	return gridKey{int(math.Floor(p.X / g.cell)), int(math.Floor(p.Y / g.cell))}
}

// Insert adds an item identified by its index in the caller's collection,
// covering the given bounds. It returns the id for convenience.
func (g *GridIndex) Insert(id int, bounds Rect) int {
	for len(g.boxes) <= id {
		g.boxes = append(g.boxes, EmptyRect())
	}
	g.boxes[id] = bounds
	lo, hi := g.key(bounds.Min), g.key(bounds.Max)
	for cx := lo.cx; cx <= hi.cx; cx++ {
		for cy := lo.cy; cy <= hi.cy; cy++ {
			k := gridKey{cx, cy}
			g.cells[k] = append(g.cells[k], id)
		}
	}
	return id
}

// QueryPoint returns the ids of all items whose bounds contain p.
func (g *GridIndex) QueryPoint(p Point) []int {
	var out []int
	for _, id := range g.cells[g.key(p)] {
		if g.boxes[id].Contains(p) {
			out = append(out, id)
		}
	}
	return out
}

// QueryRect returns the ids of all items whose bounds intersect r,
// deduplicated, in unspecified order.
func (g *GridIndex) QueryRect(r Rect) []int {
	if r.IsEmpty() {
		return nil
	}
	seen := make(map[int]bool)
	var out []int
	lo, hi := g.key(r.Min), g.key(r.Max)
	for cx := lo.cx; cx <= hi.cx; cx++ {
		for cy := lo.cy; cy <= hi.cy; cy++ {
			for _, id := range g.cells[gridKey{cx, cy}] {
				if !seen[id] && g.boxes[id].Intersects(r) {
					seen[id] = true
					out = append(out, id)
				}
			}
		}
	}
	return out
}

// Len returns the number of indexed items.
func (g *GridIndex) Len() int { return len(g.boxes) }
