package geom

import "math"

// GridIndex is a uniform spatial hash over the plane. The DSM uses it to
// answer "which entity contains this point" queries during cleaning and
// annotation without scanning every entity; the complexity of a lookup is
// proportional to the number of items whose bounds overlap the probed cell.
type GridIndex struct {
	cell  float64
	cells map[gridKey][]int
	boxes []Rect
}

type gridKey struct{ cx, cy int }

// NewGridIndex creates an index with the given cell size in meters.
// Cell sizes at roughly the median item diameter perform best; the DSM uses
// 4 m for room-scale entities.
func NewGridIndex(cellSize float64) *GridIndex {
	if cellSize <= 0 {
		cellSize = 1
	}
	return &GridIndex{cell: cellSize, cells: make(map[gridKey][]int)}
}

func (g *GridIndex) key(p Point) gridKey {
	return gridKey{int(math.Floor(p.X / g.cell)), int(math.Floor(p.Y / g.cell))}
}

// Insert adds an item identified by its index in the caller's collection,
// covering the given bounds. It returns the id for convenience.
func (g *GridIndex) Insert(id int, bounds Rect) int {
	for len(g.boxes) <= id {
		g.boxes = append(g.boxes, EmptyRect())
	}
	g.boxes[id] = bounds
	lo, hi := g.key(bounds.Min), g.key(bounds.Max)
	for cx := lo.cx; cx <= hi.cx; cx++ {
		for cy := lo.cy; cy <= hi.cy; cy++ {
			k := gridKey{cx, cy}
			g.cells[k] = append(g.cells[k], id)
		}
	}
	return id
}

// QueryPoint returns the ids of all items whose bounds contain p.
func (g *GridIndex) QueryPoint(p Point) []int {
	var out []int
	for _, id := range g.cells[g.key(p)] {
		if g.boxes[id].Contains(p) {
			out = append(out, id)
		}
	}
	return out
}

// QueryRect returns the ids of all items whose bounds intersect r,
// deduplicated, in unspecified order.
func (g *GridIndex) QueryRect(r Rect) []int {
	if r.IsEmpty() {
		return nil
	}
	seen := make(map[int]bool)
	var out []int
	lo, hi := g.key(r.Min), g.key(r.Max)
	for cx := lo.cx; cx <= hi.cx; cx++ {
		for cy := lo.cy; cy <= hi.cy; cy++ {
			for _, id := range g.cells[gridKey{cx, cy}] {
				if !seen[id] && g.boxes[id].Intersects(r) {
					seen[id] = true
					out = append(out, id)
				}
			}
		}
	}
	return out
}

// Len returns the number of indexed items.
func (g *GridIndex) Len() int { return len(g.boxes) }

// Allocation-free query surface ------------------------------------------
//
// QueryPoint and QueryRect allocate their result slices, which made them
// the single largest object source on the online hot path (every cleaning
// speed check walks Locate → QueryPoint). The methods below expose the same
// candidates without allocating: callers range over an index-owned cell
// slice (point queries) or drive a value-type iterator (rect queries).

// PointCandidates returns the ids whose covering cells include p — a
// superset of QueryPoint(p); callers filter with Bounds(id).Contains(p).
// The returned slice is owned by the index: read-only, valid until the next
// Insert. It never allocates.
//
//trips:zeroalloc
func (g *GridIndex) PointCandidates(p Point) []int {
	return g.cells[g.key(p)]
}

// Bounds returns the indexed bounds of id, as passed to Insert.
//
//trips:zeroalloc
func (g *GridIndex) Bounds(id int) Rect { return g.boxes[id] }

// RectIter enumerates, without allocating, the ids whose bounds intersect a
// query rect — the same ids QueryRect returns, in the same order. Dedup is
// by home cell: an id spans every cell its bounds overlap, so it is emitted
// only from the first overlapping cell in scan order, which is exactly
// where the seen-map version would first encounter it.
type RectIter struct {
	g      *GridIndex
	r      Rect
	lo, hi gridKey
	cx, cy int
	i      int // next position within the current cell's id list
	done   bool
}

// QueryRectIter returns an iterator over the ids intersecting r. The
// iterator is a value; keeping it on the caller's stack makes the whole
// query allocation-free.
func (g *GridIndex) QueryRectIter(r Rect) RectIter {
	if r.IsEmpty() {
		return RectIter{done: true}
	}
	lo, hi := g.key(r.Min), g.key(r.Max)
	return RectIter{g: g, r: r, lo: lo, hi: hi, cx: lo.cx, cy: lo.cy}
}

// Next returns the next intersecting id; ok is false when exhausted.
//
//trips:zeroalloc
func (it *RectIter) Next() (id int, ok bool) {
	if it.done {
		return 0, false
	}
	for {
		ids := it.g.cells[gridKey{it.cx, it.cy}]
		for it.i < len(ids) {
			id := ids[it.i]
			it.i++
			b := it.g.boxes[id]
			if !b.Intersects(it.r) {
				continue
			}
			// Home-cell check: emit only in the first scanned cell
			// this id appears in.
			blo := it.g.key(b.Min)
			hcx, hcy := blo.cx, blo.cy
			if hcx < it.lo.cx {
				hcx = it.lo.cx
			}
			if hcy < it.lo.cy {
				hcy = it.lo.cy
			}
			if hcx == it.cx && hcy == it.cy {
				return id, true
			}
		}
		it.i = 0
		it.cy++
		if it.cy > it.hi.cy {
			it.cy = it.lo.cy
			it.cx++
			if it.cx > it.hi.cx {
				it.done = true
				return 0, false
			}
		}
	}
}
