package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPolylineLength(t *testing.T) {
	pl := Line(Pt(0, 0), Pt(3, 4), Pt(3, 10))
	if l := pl.Length(); !almost(l, 11) {
		t.Errorf("Length = %v, want 11", l)
	}
	if l := Line(Pt(1, 1)).Length(); l != 0 {
		t.Errorf("single-point length = %v", l)
	}
	if l := (Polyline{}).Length(); l != 0 {
		t.Errorf("empty length = %v", l)
	}
}

func TestPolylineSegments(t *testing.T) {
	if s := Line(Pt(0, 0)).Segments(); s != nil {
		t.Error("single point should have no segments")
	}
	s := Line(Pt(0, 0), Pt(1, 0), Pt(1, 1)).Segments()
	if len(s) != 2 {
		t.Fatalf("segments = %d", len(s))
	}
}

func TestPolylineDistToPoint(t *testing.T) {
	pl := Line(Pt(0, 0), Pt(10, 0))
	if d := pl.DistToPoint(Pt(5, 2)); !almost(d, 2) {
		t.Errorf("dist = %v", d)
	}
	if d := (Polyline{}).DistToPoint(Pt(0, 0)); !math.IsInf(d, 1) {
		t.Errorf("empty dist = %v", d)
	}
	if d := Line(Pt(1, 1)).DistToPoint(Pt(4, 5)); !almost(d, 5) {
		t.Errorf("single-point dist = %v", d)
	}
}

func TestPolylinePointAt(t *testing.T) {
	pl := Line(Pt(0, 0), Pt(10, 0), Pt(10, 10))
	cases := []struct {
		d    float64
		want Point
	}{
		{-1, Pt(0, 0)},
		{0, Pt(0, 0)},
		{5, Pt(5, 0)},
		{10, Pt(10, 0)},
		{15, Pt(10, 5)},
		{20, Pt(10, 10)},
		{99, Pt(10, 10)},
	}
	for _, c := range cases {
		if got := pl.PointAt(c.d); !got.Eq(c.want) {
			t.Errorf("PointAt(%v) = %v, want %v", c.d, got, c.want)
		}
	}
}

func TestPolylineResample(t *testing.T) {
	pl := Line(Pt(0, 0), Pt(10, 0))
	rs := pl.Resample(5)
	if len(rs.Points) != 5 {
		t.Fatalf("resample len = %d", len(rs.Points))
	}
	if !rs.Points[0].Eq(Pt(0, 0)) || !rs.Points[4].Eq(Pt(10, 0)) {
		t.Error("resample endpoints wrong")
	}
	if !rs.Points[2].Eq(Pt(5, 0)) {
		t.Errorf("resample midpoint = %v", rs.Points[2])
	}
	if got := pl.Resample(0); len(got.Points) != 0 {
		t.Error("Resample(0) should be empty")
	}
	if got := pl.Resample(1); len(got.Points) != 1 || !got.Points[0].Eq(Pt(0, 0)) {
		t.Errorf("Resample(1) = %v", got.Points)
	}
}

func TestPolylineSimplify(t *testing.T) {
	// Nearly straight middle points collapse.
	pl := Line(Pt(0, 0), Pt(5, 0.01), Pt(10, 0), Pt(10, 10))
	got := pl.Simplify(0.1)
	if len(got.Points) != 3 {
		t.Fatalf("simplified to %d points, want 3: %v", len(got.Points), got.Points)
	}
	// A sharp corner survives.
	if !got.Points[1].Eq(Pt(10, 0)) {
		t.Errorf("corner lost: %v", got.Points)
	}
	// Tolerance 0 means copy.
	cp := pl.Simplify(0)
	if len(cp.Points) != len(pl.Points) {
		t.Error("Simplify(0) should keep all points")
	}
	cp.Points[0] = Pt(99, 99)
	if pl.Points[0].Eq(Pt(99, 99)) {
		t.Error("Simplify must not alias the input slice")
	}
}

func TestPolylineTurnCount(t *testing.T) {
	zig := Line(Pt(0, 0), Pt(1, 0), Pt(1, 1), Pt(2, 1), Pt(2, 2))
	if c := zig.TurnCount(math.Pi / 4); c != 3 {
		t.Errorf("TurnCount = %d, want 3", c)
	}
	straight := Line(Pt(0, 0), Pt(1, 0), Pt(2, 0), Pt(3, 0))
	if c := straight.TurnCount(math.Pi / 4); c != 0 {
		t.Errorf("straight TurnCount = %d", c)
	}
}

func TestPolylinePropertySimplifyShorter(t *testing.T) {
	// Simplification never increases point count and never exceeds original
	// length.
	f := func(seed uint32) bool {
		pts := make([]Point, 0, 12)
		s := seed
		for i := 0; i < 12; i++ {
			s = s*1664525 + 1013904223
			pts = append(pts, Pt(float64(s%100), float64((s>>8)%100)))
		}
		pl := Polyline{Points: pts}
		sm := pl.Simplify(2.0)
		return len(sm.Points) <= len(pl.Points) && sm.Length() <= pl.Length()+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPolylinePropertyPointAtOnChain(t *testing.T) {
	pl := Line(Pt(0, 0), Pt(10, 0), Pt(10, 10), Pt(0, 10))
	f := func(d float64) bool {
		d = math.Mod(math.Abs(clampF(d)), 35)
		p := pl.PointAt(d)
		return pl.DistToPoint(p) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
