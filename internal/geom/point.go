// Package geom provides the 2-D geometry kernel used throughout TRIPS.
//
// The indoor space is modeled per floor in a planar metric coordinate system
// (meters). The kernel supplies the primitives the Digital Space Model and
// the translation framework need: points, segments, polylines, polygons and
// circles, together with distance computations, point-in-polygon tests,
// intersection tests, simplification and a uniform grid index.
//
// All types use float64 coordinates. Predicates use an epsilon of Eps to
// absorb floating-point noise; the scale of indoor coordinates (tens to a few
// hundred meters) makes 1e-9 a safe slack.
package geom

import (
	"fmt"
	"math"
)

// Eps is the tolerance used by geometric predicates.
const Eps = 1e-9

// Point is a location in the plane, in meters.
type Point struct {
	X float64 `json:"x"`
	Y float64 `json:"y"`
}

// Pt is shorthand for Point{x, y}.
func Pt(x, y float64) Point { return Point{X: x, Y: y} }

// Add returns p + q component-wise.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns p - q component-wise.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Scale returns p scaled by k.
func (p Point) Scale(k float64) Point { return Point{p.X * k, p.Y * k} }

// Dot returns the dot product p·q.
func (p Point) Dot(q Point) float64 { return p.X*q.X + p.Y*q.Y }

// Cross returns the z-component of the cross product p×q.
func (p Point) Cross(q Point) float64 { return p.X*q.Y - p.Y*q.X }

// Norm returns the Euclidean length of the vector p.
func (p Point) Norm() float64 { return math.Hypot(p.X, p.Y) }

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 { return math.Hypot(p.X-q.X, p.Y-q.Y) }

// Dist2 returns the squared Euclidean distance between p and q. It avoids the
// square root and is preferred in comparisons and accumulation loops.
func (p Point) Dist2(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return dx*dx + dy*dy
}

// Eq reports whether p and q coincide within Eps.
func (p Point) Eq(q Point) bool {
	return math.Abs(p.X-q.X) <= Eps && math.Abs(p.Y-q.Y) <= Eps
}

// Lerp returns the point at parameter t on the segment p→q, with t in [0,1]
// mapping to [p,q]. Values outside [0,1] extrapolate.
func (p Point) Lerp(q Point, t float64) Point {
	return Point{p.X + (q.X-p.X)*t, p.Y + (q.Y-p.Y)*t}
}

// Rotate returns p rotated by theta radians about the origin.
func (p Point) Rotate(theta float64) Point {
	s, c := math.Sincos(theta)
	return Point{p.X*c - p.Y*s, p.X*s + p.Y*c}
}

// Angle returns the angle of the vector p in radians, in (-pi, pi].
func (p Point) Angle() float64 { return math.Atan2(p.Y, p.X) }

// String formats the point with centimeter precision.
func (p Point) String() string { return fmt.Sprintf("(%.2f, %.2f)", p.X, p.Y) }

// Midpoint returns the midpoint of p and q.
func Midpoint(p, q Point) Point { return Point{(p.X + q.X) / 2, (p.Y + q.Y) / 2} }

// Centroid returns the arithmetic mean of pts. It returns the zero Point for
// an empty slice.
func Centroid(pts []Point) Point {
	if len(pts) == 0 {
		return Point{}
	}
	var c Point
	for _, p := range pts {
		c.X += p.X
		c.Y += p.Y
	}
	n := float64(len(pts))
	return Point{c.X / n, c.Y / n}
}

// Orientation classifies the turn a→b→c: +1 counter-clockwise, -1 clockwise,
// 0 collinear (within Eps).
func Orientation(a, b, c Point) int {
	v := b.Sub(a).Cross(c.Sub(a))
	switch {
	case v > Eps:
		return 1
	case v < -Eps:
		return -1
	default:
		return 0
	}
}

// TurnAngle returns the absolute change of heading, in radians within
// [0, pi], when moving a→b→c. Degenerate legs (zero length) yield 0.
func TurnAngle(a, b, c Point) float64 {
	u, v := b.Sub(a), c.Sub(b)
	nu, nv := u.Norm(), v.Norm()
	if nu <= Eps || nv <= Eps {
		return 0
	}
	cos := u.Dot(v) / (nu * nv)
	cos = math.Max(-1, math.Min(1, cos))
	return math.Acos(cos)
}
