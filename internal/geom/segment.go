package geom

import "math"

// Segment is the closed line segment between A and B.
type Segment struct {
	A Point `json:"a"`
	B Point `json:"b"`
}

// Seg is shorthand for Segment{a, b}.
func Seg(a, b Point) Segment { return Segment{A: a, B: b} }

// Length returns the segment length.
func (s Segment) Length() float64 { return s.A.Dist(s.B) }

// Midpoint returns the segment midpoint.
func (s Segment) Midpoint() Point { return Midpoint(s.A, s.B) }

// ClosestPoint returns the point on s closest to p, and the parameter
// t in [0,1] such that the point equals A.Lerp(B, t).
func (s Segment) ClosestPoint(p Point) (Point, float64) {
	d := s.B.Sub(s.A)
	l2 := d.Dot(d)
	if l2 <= Eps {
		return s.A, 0
	}
	t := p.Sub(s.A).Dot(d) / l2
	t = math.Max(0, math.Min(1, t))
	return s.A.Lerp(s.B, t), t
}

// DistToPoint returns the distance from p to the segment.
func (s Segment) DistToPoint(p Point) float64 {
	q, _ := s.ClosestPoint(p)
	return p.Dist(q)
}

// onSegment reports whether point q, known to be collinear with s, lies on s.
func (s Segment) onSegment(q Point) bool {
	return q.X <= math.Max(s.A.X, s.B.X)+Eps && q.X >= math.Min(s.A.X, s.B.X)-Eps &&
		q.Y <= math.Max(s.A.Y, s.B.Y)+Eps && q.Y >= math.Min(s.A.Y, s.B.Y)-Eps
}

// Intersects reports whether s and t share at least one point, including
// touching endpoints and collinear overlap.
func (s Segment) Intersects(t Segment) bool {
	o1 := Orientation(s.A, s.B, t.A)
	o2 := Orientation(s.A, s.B, t.B)
	o3 := Orientation(t.A, t.B, s.A)
	o4 := Orientation(t.A, t.B, s.B)

	if o1 != o2 && o3 != o4 {
		return true
	}
	// Collinear special cases.
	if o1 == 0 && s.onSegment(t.A) {
		return true
	}
	if o2 == 0 && s.onSegment(t.B) {
		return true
	}
	if o3 == 0 && t.onSegment(s.A) {
		return true
	}
	if o4 == 0 && t.onSegment(s.B) {
		return true
	}
	return false
}

// Intersection returns the single proper intersection point of s and t if the
// segments cross at exactly one point that is not a collinear overlap. The
// boolean is false for parallel, collinear or disjoint segments.
func (s Segment) Intersection(t Segment) (Point, bool) {
	r := s.B.Sub(s.A)
	d := t.B.Sub(t.A)
	denom := r.Cross(d)
	if math.Abs(denom) <= Eps {
		return Point{}, false
	}
	diff := t.A.Sub(s.A)
	u := diff.Cross(d) / denom
	v := diff.Cross(r) / denom
	if u < -Eps || u > 1+Eps || v < -Eps || v > 1+Eps {
		return Point{}, false
	}
	return s.A.Lerp(s.B, u), true
}

// DistToSegment returns the minimum distance between the two segments;
// zero when they intersect.
func (s Segment) DistToSegment(t Segment) float64 {
	if s.Intersects(t) {
		return 0
	}
	d := s.DistToPoint(t.A)
	if v := s.DistToPoint(t.B); v < d {
		d = v
	}
	if v := t.DistToPoint(s.A); v < d {
		d = v
	}
	if v := t.DistToPoint(s.B); v < d {
		d = v
	}
	return d
}

// Bounds returns the axis-aligned bounding rectangle of the segment.
func (s Segment) Bounds() Rect {
	return Rect{
		Min: Point{math.Min(s.A.X, s.B.X), math.Min(s.A.Y, s.B.Y)},
		Max: Point{math.Max(s.A.X, s.B.X), math.Max(s.A.Y, s.B.Y)},
	}
}
