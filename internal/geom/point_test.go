package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestPointArithmetic(t *testing.T) {
	p, q := Pt(1, 2), Pt(3, -4)
	if got := p.Add(q); got != Pt(4, -2) {
		t.Errorf("Add = %v", got)
	}
	if got := p.Sub(q); got != Pt(-2, 6) {
		t.Errorf("Sub = %v", got)
	}
	if got := p.Scale(2); got != Pt(2, 4) {
		t.Errorf("Scale = %v", got)
	}
	if got := p.Dot(q); !almost(got, 3-8) {
		t.Errorf("Dot = %v", got)
	}
	if got := p.Cross(q); !almost(got, -4-6) {
		t.Errorf("Cross = %v", got)
	}
}

func TestPointDist(t *testing.T) {
	if d := Pt(0, 0).Dist(Pt(3, 4)); !almost(d, 5) {
		t.Errorf("Dist = %v, want 5", d)
	}
	if d := Pt(0, 0).Dist2(Pt(3, 4)); !almost(d, 25) {
		t.Errorf("Dist2 = %v, want 25", d)
	}
	if !Pt(1, 1).Eq(Pt(1+1e-12, 1-1e-12)) {
		t.Error("Eq should tolerate sub-eps noise")
	}
	if Pt(1, 1).Eq(Pt(1.001, 1)) {
		t.Error("Eq should reject mm-scale difference")
	}
}

func TestLerp(t *testing.T) {
	a, b := Pt(0, 0), Pt(10, 20)
	if got := a.Lerp(b, 0); !got.Eq(a) {
		t.Errorf("Lerp(0) = %v", got)
	}
	if got := a.Lerp(b, 1); !got.Eq(b) {
		t.Errorf("Lerp(1) = %v", got)
	}
	if got := a.Lerp(b, 0.5); !got.Eq(Pt(5, 10)) {
		t.Errorf("Lerp(0.5) = %v", got)
	}
}

func TestRotate(t *testing.T) {
	got := Pt(1, 0).Rotate(math.Pi / 2)
	if !got.Eq(Pt(0, 1)) {
		t.Errorf("Rotate 90 = %v", got)
	}
}

func TestCentroid(t *testing.T) {
	if got := Centroid(nil); got != (Point{}) {
		t.Errorf("empty centroid = %v", got)
	}
	got := Centroid([]Point{Pt(0, 0), Pt(2, 0), Pt(2, 2), Pt(0, 2)})
	if !got.Eq(Pt(1, 1)) {
		t.Errorf("centroid = %v, want (1,1)", got)
	}
}

func TestOrientation(t *testing.T) {
	if o := Orientation(Pt(0, 0), Pt(1, 0), Pt(1, 1)); o != 1 {
		t.Errorf("ccw orientation = %d", o)
	}
	if o := Orientation(Pt(0, 0), Pt(1, 0), Pt(1, -1)); o != -1 {
		t.Errorf("cw orientation = %d", o)
	}
	if o := Orientation(Pt(0, 0), Pt(1, 0), Pt(2, 0)); o != 0 {
		t.Errorf("collinear orientation = %d", o)
	}
}

func TestTurnAngle(t *testing.T) {
	if a := TurnAngle(Pt(0, 0), Pt(1, 0), Pt(2, 0)); !almost(a, 0) {
		t.Errorf("straight turn = %v", a)
	}
	if a := TurnAngle(Pt(0, 0), Pt(1, 0), Pt(1, 1)); !almost(a, math.Pi/2) {
		t.Errorf("right-angle turn = %v", a)
	}
	if a := TurnAngle(Pt(0, 0), Pt(0, 0), Pt(1, 1)); a != 0 {
		t.Errorf("degenerate turn = %v", a)
	}
}

func TestPointPropertyDistSymmetric(t *testing.T) {
	f := func(ax, ay, bx, by float64) bool {
		a, b := Pt(clampF(ax), clampF(ay)), Pt(clampF(bx), clampF(by))
		return almost(a.Dist(b), b.Dist(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPointPropertyTriangleInequality(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy float64) bool {
		a := Pt(clampF(ax), clampF(ay))
		b := Pt(clampF(bx), clampF(by))
		c := Pt(clampF(cx), clampF(cy))
		return a.Dist(c) <= a.Dist(b)+b.Dist(c)+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// clampF maps arbitrary float64 quick-check inputs into a sane coordinate
// range so that NaN/Inf and astronomically large values do not dominate.
func clampF(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return math.Mod(v, 1000)
}
