package geom

import (
	"testing"
	"testing/quick"
)

func TestSegmentClosestPoint(t *testing.T) {
	s := Seg(Pt(0, 0), Pt(10, 0))
	cases := []struct {
		p, want Point
		t       float64
	}{
		{Pt(5, 3), Pt(5, 0), 0.5},
		{Pt(-4, 2), Pt(0, 0), 0},
		{Pt(14, -2), Pt(10, 0), 1},
	}
	for _, c := range cases {
		got, tp := s.ClosestPoint(c.p)
		if !got.Eq(c.want) || !almost(tp, c.t) {
			t.Errorf("ClosestPoint(%v) = %v,%v want %v,%v", c.p, got, tp, c.want, c.t)
		}
	}
}

func TestSegmentDegenerate(t *testing.T) {
	s := Seg(Pt(2, 2), Pt(2, 2))
	got, tp := s.ClosestPoint(Pt(5, 6))
	if !got.Eq(Pt(2, 2)) || tp != 0 {
		t.Errorf("degenerate ClosestPoint = %v,%v", got, tp)
	}
	if d := s.DistToPoint(Pt(5, 6)); !almost(d, 5) {
		t.Errorf("degenerate DistToPoint = %v", d)
	}
}

func TestSegmentIntersects(t *testing.T) {
	cases := []struct {
		a, b Segment
		want bool
	}{
		{Seg(Pt(0, 0), Pt(4, 4)), Seg(Pt(0, 4), Pt(4, 0)), true},   // proper cross
		{Seg(Pt(0, 0), Pt(4, 0)), Seg(Pt(4, 0), Pt(8, 0)), true},   // shared endpoint
		{Seg(Pt(0, 0), Pt(4, 0)), Seg(Pt(2, 0), Pt(6, 0)), true},   // collinear overlap
		{Seg(Pt(0, 0), Pt(4, 0)), Seg(Pt(5, 0), Pt(8, 0)), false},  // collinear disjoint
		{Seg(Pt(0, 0), Pt(4, 0)), Seg(Pt(0, 1), Pt(4, 1)), false},  // parallel
		{Seg(Pt(0, 0), Pt(1, 1)), Seg(Pt(2, 0), Pt(3, -5)), false}, // far apart
		{Seg(Pt(0, 0), Pt(4, 0)), Seg(Pt(2, -1), Pt(2, 1)), true},  // T cross
	}
	for i, c := range cases {
		if got := c.a.Intersects(c.b); got != c.want {
			t.Errorf("case %d: Intersects = %v, want %v", i, got, c.want)
		}
		if got := c.b.Intersects(c.a); got != c.want {
			t.Errorf("case %d (swapped): Intersects = %v, want %v", i, got, c.want)
		}
	}
}

func TestSegmentIntersection(t *testing.T) {
	p, ok := Seg(Pt(0, 0), Pt(4, 4)).Intersection(Seg(Pt(0, 4), Pt(4, 0)))
	if !ok || !p.Eq(Pt(2, 2)) {
		t.Errorf("Intersection = %v,%v want (2,2),true", p, ok)
	}
	if _, ok := Seg(Pt(0, 0), Pt(4, 0)).Intersection(Seg(Pt(0, 1), Pt(4, 1))); ok {
		t.Error("parallel segments should not intersect at one point")
	}
	if _, ok := Seg(Pt(0, 0), Pt(4, 0)).Intersection(Seg(Pt(1, 0), Pt(3, 0))); ok {
		t.Error("collinear overlap has no single intersection point")
	}
}

func TestSegmentDistToSegment(t *testing.T) {
	if d := Seg(Pt(0, 0), Pt(4, 4)).DistToSegment(Seg(Pt(0, 4), Pt(4, 0))); !almost(d, 0) {
		t.Errorf("crossing segments dist = %v", d)
	}
	if d := Seg(Pt(0, 0), Pt(4, 0)).DistToSegment(Seg(Pt(0, 3), Pt(4, 3))); !almost(d, 3) {
		t.Errorf("parallel segments dist = %v", d)
	}
}

func TestSegmentBounds(t *testing.T) {
	b := Seg(Pt(3, -1), Pt(1, 5)).Bounds()
	if !b.Min.Eq(Pt(1, -1)) || !b.Max.Eq(Pt(3, 5)) {
		t.Errorf("Bounds = %v", b)
	}
}

func TestSegmentPropertyClosestPointIsNearest(t *testing.T) {
	// The closest point must be at least as near as both endpoints and the
	// midpoint.
	f := func(ax, ay, bx, by, px, py float64) bool {
		s := Seg(Pt(clampF(ax), clampF(ay)), Pt(clampF(bx), clampF(by)))
		p := Pt(clampF(px), clampF(py))
		q, _ := s.ClosestPoint(p)
		d := p.Dist(q)
		return d <= p.Dist(s.A)+1e-6 && d <= p.Dist(s.B)+1e-6 && d <= p.Dist(s.Midpoint())+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
