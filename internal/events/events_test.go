package events

import (
	"bytes"
	"testing"
	"time"

	"trips/internal/geom"
	"trips/internal/position"
	"trips/internal/semantics"
)

var t0 = time.Date(2017, 1, 2, 10, 0, 0, 0, time.UTC)

func seq(dev string, n int, period time.Duration) *position.Sequence {
	s := position.NewSequence(position.DeviceID(dev))
	for i := 0; i < n; i++ {
		s.Append(position.Record{Device: s.Device, P: geom.Pt(float64(i), 0), Floor: 1,
			At: t0.Add(time.Duration(i) * period)})
	}
	return s
}

func TestBuiltinPatterns(t *testing.T) {
	e := NewEditor()
	if _, ok := e.Pattern(semantics.EventStay); !ok {
		t.Error("stay pattern missing")
	}
	if _, ok := e.Pattern(semantics.EventPassBy); !ok {
		t.Error("pass-by pattern missing")
	}
	ps := e.Patterns()
	if len(ps) != 2 {
		t.Errorf("patterns = %d", len(ps))
	}
	// Sorted by event name: pass-by < stay.
	if ps[0].Event != semantics.EventPassBy {
		t.Errorf("patterns order = %v", ps)
	}
}

func TestDefineAndRemovePattern(t *testing.T) {
	e := NewEditor()
	e.DefinePattern(Pattern{Event: "queue", Description: "waiting in line"})
	if _, ok := e.Pattern("queue"); !ok {
		t.Fatal("custom pattern not stored")
	}
	s := seq("d", 10, time.Minute)
	if err := e.Designate("queue", s, 0, 5); err != nil {
		t.Fatalf("Designate: %v", err)
	}
	e.RemovePattern("queue")
	if _, ok := e.Pattern("queue"); ok {
		t.Error("pattern not removed")
	}
	if len(e.Segments()) != 0 {
		t.Error("segments of removed pattern not dropped")
	}
}

func TestDesignateValidation(t *testing.T) {
	e := NewEditor()
	s := seq("d", 10, time.Minute) // spans 9 minutes

	if err := e.Designate("teleport", s, 0, 5); err == nil {
		t.Error("undefined pattern accepted")
	}
	if err := e.Designate(semantics.EventStay, s, -1, 5); err == nil {
		t.Error("negative from accepted")
	}
	if err := e.Designate(semantics.EventStay, s, 5, 5); err == nil {
		t.Error("empty range accepted")
	}
	if err := e.Designate(semantics.EventStay, s, 0, 99); err == nil {
		t.Error("overlong range accepted")
	}
	// Stay requires ≥ 2 minutes: a 1-minute segment fails.
	if err := e.Designate(semantics.EventStay, s, 0, 2); err == nil {
		t.Error("too-short stay accepted")
	}
	// Pass-by allows ≤ 5 minutes: a 9-minute segment fails.
	if err := e.Designate(semantics.EventPassBy, s, 0, 10); err == nil {
		t.Error("too-long pass-by accepted")
	}
	// Valid designation copies records.
	if err := e.Designate(semantics.EventStay, s, 0, 5); err != nil {
		t.Fatalf("valid stay rejected: %v", err)
	}
	seg := e.Segments()[0]
	s.Records[0].P = geom.Pt(99, 99)
	if seg.Records[0].P.Eq(geom.Pt(99, 99)) {
		t.Error("segment aliases source sequence")
	}
}

func TestAddSegment(t *testing.T) {
	e := NewEditor()
	err := e.AddSegment(LabeledSegment{Event: semantics.EventStay,
		Device: "d", Records: seq("d", 3, time.Minute).Records})
	if err != nil {
		t.Fatalf("AddSegment: %v", err)
	}
	if err := e.AddSegment(LabeledSegment{Event: "nope", Device: "d",
		Records: seq("d", 3, time.Minute).Records}); err == nil {
		t.Error("unknown event accepted")
	}
	if err := e.AddSegment(LabeledSegment{Event: semantics.EventStay, Device: "d"}); err == nil {
		t.Error("empty segment accepted")
	}
}

func TestTrainingSet(t *testing.T) {
	e := NewEditor()
	s := seq("d", 20, time.Minute)
	mustDesignate(t, e, semantics.EventStay, s, 0, 5)
	mustDesignate(t, e, semantics.EventStay, s, 5, 10)
	mustDesignate(t, e, semantics.EventPassBy, s, 10, 13)

	ts := e.TrainingSet()
	if len(ts.Segments) != 3 {
		t.Fatalf("segments = %d", len(ts.Segments))
	}
	by := ts.ByEvent()
	if len(by[semantics.EventStay]) != 2 || len(by[semantics.EventPassBy]) != 1 {
		t.Errorf("grouping = %v", ts.Counts())
	}
	counts := ts.Counts()
	if counts[semantics.EventStay] != 2 {
		t.Errorf("counts = %v", counts)
	}
	// The training set is a snapshot, not a live view.
	mustDesignate(t, e, semantics.EventPassBy, s, 13, 16)
	if len(ts.Segments) != 3 {
		t.Error("training set mutated after snapshot")
	}
}

func mustDesignate(t *testing.T, e *Editor, ev semantics.Event, s *position.Sequence, from, to int) {
	t.Helper()
	if err := e.Designate(ev, s, from, to); err != nil {
		t.Fatalf("Designate(%s, %d, %d): %v", ev, from, to, err)
	}
}

func TestEditorPersistence(t *testing.T) {
	e := NewEditor()
	e.DefinePattern(Pattern{Event: "queue", Description: "waiting", MinDuration: time.Minute})
	s := seq("d", 20, time.Minute)
	mustDesignate(t, e, semantics.EventStay, s, 0, 5)
	mustDesignate(t, e, "queue", s, 5, 10)

	var buf bytes.Buffer
	if _, err := e.WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	e2, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if _, ok := e2.Pattern("queue"); !ok {
		t.Error("custom pattern lost")
	}
	if len(e2.Segments()) != 2 {
		t.Errorf("segments after reload = %d", len(e2.Segments()))
	}
	if _, err := Read(bytes.NewBufferString("{oops")); err == nil {
		t.Error("garbage accepted")
	}
}

func TestEditorSaveLoadFile(t *testing.T) {
	e := NewEditor()
	s := seq("d", 20, time.Minute)
	mustDesignate(t, e, semantics.EventStay, s, 0, 5)
	path := t.TempDir() + "/events.json"
	if err := e.Save(path); err != nil {
		t.Fatalf("Save: %v", err)
	}
	e2, err := Load(path)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(e2.Segments()) != 1 {
		t.Errorf("segments = %d", len(e2.Segments()))
	}
	if _, err := Load(t.TempDir() + "/nope.json"); err == nil {
		t.Error("missing file accepted")
	}
}
