// Package events implements the Event Editor module of the TRIPS
// Configurator.
//
// The Event Editor "helps users work out the training data for the model
// that identifies the mobility events in the translation. It allows users to
// define mobility event patterns, and designate each defined pattern the
// corresponding positioning sequence segments on the map view. The
// designated data segments will be used to train a learning-based model"
// (paper Sec. 2).
//
// The package holds the pattern catalog, the labeled segments, and the
// training-set assembly, including JSON persistence so patterns and labels
// configured once are "stored in the backend for the reuse in other
// translation tasks in the same indoor space" (paper Sec. 4).
package events

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"trips/internal/position"
	"trips/internal/semantics"
)

// Pattern is a user-defined mobility event pattern. Description is free
// text shown in the editor; MinDuration/MaxDuration give the editor's
// plausibility hints when designating segments (zero means unconstrained).
type Pattern struct {
	Event       semantics.Event `json:"event"`
	Description string          `json:"description,omitempty"`
	MinDuration time.Duration   `json:"minDuration,omitempty"`
	MaxDuration time.Duration   `json:"maxDuration,omitempty"`
}

// LabeledSegment is a designated positioning-sequence segment carrying the
// pattern it exemplifies — one unit of training data.
type LabeledSegment struct {
	Event   semantics.Event   `json:"event"`
	Device  position.DeviceID `json:"device"`
	Records []position.Record `json:"records"`
}

// Editor manages patterns and labeled segments.
type Editor struct {
	patterns map[semantics.Event]Pattern
	segments []LabeledSegment
}

// NewEditor returns an editor preloaded with the built-in stay and pass-by
// patterns the paper's examples use.
func NewEditor() *Editor {
	e := &Editor{patterns: make(map[semantics.Event]Pattern)}
	e.DefinePattern(Pattern{
		Event:       semantics.EventStay,
		Description: "object remains within one or multiple semantic regions",
		MinDuration: 2 * time.Minute,
	})
	e.DefinePattern(Pattern{
		Event:       semantics.EventPassBy,
		Description: "object passes through a semantic region without dwelling",
		MaxDuration: 5 * time.Minute,
	})
	return e
}

// DefinePattern adds or replaces a pattern.
func (e *Editor) DefinePattern(p Pattern) { e.patterns[p.Event] = p }

// RemovePattern deletes a pattern and its labeled segments.
func (e *Editor) RemovePattern(ev semantics.Event) {
	delete(e.patterns, ev)
	kept := e.segments[:0]
	for _, s := range e.segments {
		if s.Event != ev {
			kept = append(kept, s)
		}
	}
	e.segments = kept
}

// Pattern returns the pattern for the event and whether it exists.
func (e *Editor) Pattern(ev semantics.Event) (Pattern, bool) {
	p, ok := e.patterns[ev]
	return p, ok
}

// Patterns returns all patterns sorted by event name.
func (e *Editor) Patterns() []Pattern {
	out := make([]Pattern, 0, len(e.patterns))
	//trips:commutative pattern collection; iteration order is erased by the sort below
	for _, p := range e.patterns {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Event < out[j].Event })
	return out
}

// Designate labels the records [from, to) of the sequence as an example of
// the event's pattern — the editor action of selecting a segment on the map
// view. It rejects unknown events, empty ranges and segments that violate
// the pattern's duration hints.
func (e *Editor) Designate(ev semantics.Event, s *position.Sequence, from, to int) error {
	p, ok := e.patterns[ev]
	if !ok {
		return fmt.Errorf("events: undefined pattern %q", ev)
	}
	if from < 0 || to > s.Len() || from >= to {
		return fmt.Errorf("events: bad segment range [%d, %d) of %d", from, to, s.Len())
	}
	seg := s.Records[from:to]
	dur := seg[len(seg)-1].At.Sub(seg[0].At)
	if p.MinDuration > 0 && dur < p.MinDuration {
		return fmt.Errorf("events: segment %s shorter than pattern minimum %s", dur, p.MinDuration)
	}
	if p.MaxDuration > 0 && dur > p.MaxDuration {
		return fmt.Errorf("events: segment %s longer than pattern maximum %s", dur, p.MaxDuration)
	}
	cp := make([]position.Record, len(seg))
	copy(cp, seg)
	e.segments = append(e.segments, LabeledSegment{Event: ev, Device: s.Device, Records: cp})
	return nil
}

// AddSegment appends a pre-built labeled segment (programmatic training
// data, e.g. from the simulator's ground truth).
func (e *Editor) AddSegment(seg LabeledSegment) error {
	if _, ok := e.patterns[seg.Event]; !ok {
		return fmt.Errorf("events: undefined pattern %q", seg.Event)
	}
	if len(seg.Records) == 0 {
		return fmt.Errorf("events: empty segment")
	}
	e.segments = append(e.segments, seg)
	return nil
}

// Segments returns all labeled segments.
func (e *Editor) Segments() []LabeledSegment { return e.segments }

// TrainingSet groups the labeled segments per event, the shape the
// identification model trains on.
type TrainingSet struct {
	Segments []LabeledSegment `json:"segments"`
}

// ByEvent returns the segments grouped per event.
func (ts TrainingSet) ByEvent() map[semantics.Event][]LabeledSegment {
	out := make(map[semantics.Event][]LabeledSegment)
	for _, s := range ts.Segments {
		out[s.Event] = append(out[s.Event], s)
	}
	return out
}

// Counts returns the number of segments per event, for editor display.
func (ts TrainingSet) Counts() map[semantics.Event]int {
	out := make(map[semantics.Event]int)
	for _, s := range ts.Segments {
		out[s.Event]++
	}
	return out
}

// TrainingSet assembles the current training set.
func (e *Editor) TrainingSet() TrainingSet {
	cp := make([]LabeledSegment, len(e.segments))
	copy(cp, e.segments)
	return TrainingSet{Segments: cp}
}

// Persistence ---------------------------------------------------------------

type editorJSON struct {
	Patterns []Pattern        `json:"patterns"`
	Segments []LabeledSegment `json:"segments"`
}

// WriteTo serializes the editor state as indented JSON.
func (e *Editor) WriteTo(w io.Writer) (int64, error) {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	state := editorJSON{Segments: e.segments}
	for _, p := range e.Patterns() {
		state.Patterns = append(state.Patterns, p)
	}
	return 0, enc.Encode(state)
}

// Save writes the editor state to a JSON file.
func (e *Editor) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if _, err := e.WriteTo(f); err != nil {
		return err
	}
	return f.Close()
}

// Read parses editor state from JSON. Patterns replace the built-ins.
func Read(r io.Reader) (*Editor, error) {
	var state editorJSON
	if err := json.NewDecoder(r).Decode(&state); err != nil {
		return nil, fmt.Errorf("events: decode: %w", err)
	}
	e := &Editor{patterns: make(map[semantics.Event]Pattern)}
	for _, p := range state.Patterns {
		e.patterns[p.Event] = p
	}
	for _, s := range state.Segments {
		if err := e.AddSegment(s); err != nil {
			return nil, err
		}
	}
	return e, nil
}

// Load reads editor state from a JSON file.
func Load(path string) (*Editor, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}
