// Package storage is the TRIPS backend store: configured artifacts — DSM
// files, event patterns and training data, selector configurations, and
// translation results — are "stored in the backend for the reuse in other
// translation tasks in the same indoor space" (paper Sec. 4).
//
// The store is a directory of JSON documents partitioned into collections.
// Writes are atomic (temp file + rename) and guarded by a process-wide
// mutex; the store is safe for concurrent use within one process, matching
// the single-backend deployment of the demo.
package storage

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Store is a JSON document store rooted at a directory.
type Store struct {
	root string
	mu   sync.RWMutex
}

// Open creates (if necessary) and opens a store rooted at dir.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("storage: open %s: %w", dir, err)
	}
	return &Store{root: dir}, nil
}

// Root returns the store directory.
func (s *Store) Root() string { return s.root }

// validName guards collection and key names: path separators and dot-dot
// would escape the store root.
func validName(name string) error {
	if name == "" || strings.ContainsAny(name, `/\`) || strings.Contains(name, "..") {
		return fmt.Errorf("storage: invalid name %q", name)
	}
	return nil
}

func (s *Store) path(collection, key string) (string, error) {
	if err := validName(collection); err != nil {
		return "", err
	}
	if err := validName(key); err != nil {
		return "", err
	}
	return filepath.Join(s.root, collection, key+".json"), nil
}

// Put marshals v into collection/key (indented, diff-friendly),
// overwriting atomically.
func (s *Store) Put(collection, key string, v interface{}) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return fmt.Errorf("storage: marshal %s/%s: %w", collection, key, err)
	}
	return s.putBytes(collection, key, data)
}

// PutCompact is Put without indentation — for machine-written documents
// (view snapshots, log segments) where the human-diff value of indenting
// doesn't justify the extra bytes.
func (s *Store) PutCompact(collection, key string, v interface{}) error {
	data, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("storage: marshal %s/%s: %w", collection, key, err)
	}
	return s.putBytes(collection, key, data)
}

// putBytes writes a marshaled document atomically (temp file + rename).
func (s *Store) putBytes(collection, key string, data []byte) error {
	p, err := s.path(collection, key)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(p), ".put-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	return os.Rename(tmpName, p)
}

// Get unmarshals collection/key into v. Missing documents return an error
// satisfying os.IsNotExist / errors.Is(err, os.ErrNotExist).
func (s *Store) Get(collection, key string, v interface{}) error {
	p, err := s.path(collection, key)
	if err != nil {
		return err
	}
	s.mu.RLock()
	data, err := os.ReadFile(p)
	s.mu.RUnlock()
	if err != nil {
		return err
	}
	if err := json.Unmarshal(data, v); err != nil {
		return fmt.Errorf("storage: unmarshal %s/%s: %w", collection, key, err)
	}
	return nil
}

// Exists reports whether collection/key is present.
func (s *Store) Exists(collection, key string) bool {
	p, err := s.path(collection, key)
	if err != nil {
		return false
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, err = os.Stat(p)
	return err == nil
}

// Delete removes collection/key; deleting a missing document is an error.
func (s *Store) Delete(collection, key string) error {
	p, err := s.path(collection, key)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return os.Remove(p)
}

// List returns the keys of a collection, sorted. A missing collection lists
// empty.
func (s *Store) List(collection string) ([]string, error) {
	if err := validName(collection); err != nil {
		return nil, err
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	entries, err := os.ReadDir(filepath.Join(s.root, collection))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var keys []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".json") || strings.HasPrefix(name, ".") {
			continue
		}
		keys = append(keys, strings.TrimSuffix(name, ".json"))
	}
	sort.Strings(keys)
	return keys, nil
}

// Collections returns the existing collection names, sorted.
func (s *Store) Collections() ([]string, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	entries, err := os.ReadDir(s.root)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, e := range entries {
		if e.IsDir() {
			out = append(out, e.Name())
		}
	}
	sort.Strings(out)
	return out, nil
}
