package storage

import (
	"os"
	"sync"
	"testing"
)

type doc struct {
	Name  string `json:"name"`
	Count int    `json:"count"`
}

func TestPutGetRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	want := doc{Name: "mall", Count: 7}
	if err := s.Put("dsm", "mall", want); err != nil {
		t.Fatalf("Put: %v", err)
	}
	var got doc
	if err := s.Get("dsm", "mall", &got); err != nil {
		t.Fatalf("Get: %v", err)
	}
	if got != want {
		t.Errorf("round trip = %+v", got)
	}
	// Overwrite.
	want.Count = 8
	if err := s.Put("dsm", "mall", want); err != nil {
		t.Fatal(err)
	}
	if err := s.Get("dsm", "mall", &got); err != nil || got.Count != 8 {
		t.Errorf("overwrite: %+v, %v", got, err)
	}
}

func TestGetMissing(t *testing.T) {
	s, _ := Open(t.TempDir())
	var got doc
	err := s.Get("dsm", "nope", &got)
	if err == nil || !os.IsNotExist(err) {
		t.Errorf("missing get error = %v", err)
	}
}

func TestExistsAndDelete(t *testing.T) {
	s, _ := Open(t.TempDir())
	s.Put("events", "patterns", doc{Name: "p"})
	if !s.Exists("events", "patterns") {
		t.Error("Exists false for present doc")
	}
	if err := s.Delete("events", "patterns"); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if s.Exists("events", "patterns") {
		t.Error("Exists true after delete")
	}
	if err := s.Delete("events", "patterns"); err == nil {
		t.Error("double delete accepted")
	}
}

func TestListAndCollections(t *testing.T) {
	s, _ := Open(t.TempDir())
	s.Put("tasks", "b", doc{})
	s.Put("tasks", "a", doc{})
	s.Put("dsm", "venue", doc{})
	keys, err := s.List("tasks")
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 2 || keys[0] != "a" || keys[1] != "b" {
		t.Errorf("keys = %v", keys)
	}
	// Missing collection lists empty.
	if keys, err := s.List("nothing"); err != nil || keys != nil {
		t.Errorf("missing collection = %v, %v", keys, err)
	}
	cols, err := s.Collections()
	if err != nil {
		t.Fatal(err)
	}
	if len(cols) != 2 || cols[0] != "dsm" || cols[1] != "tasks" {
		t.Errorf("collections = %v", cols)
	}
}

func TestInvalidNamesRejected(t *testing.T) {
	s, _ := Open(t.TempDir())
	bad := []string{"", "a/b", `a\b`, ".."}
	for _, name := range bad {
		if err := s.Put(name, "k", doc{}); err == nil {
			t.Errorf("collection %q accepted", name)
		}
		if err := s.Put("c", name, doc{}); err == nil {
			t.Errorf("key %q accepted", name)
		}
		if _, err := s.List(name); err == nil && name != "" {
			t.Errorf("List(%q) accepted", name)
		}
	}
}

func TestPutRejectsUnmarshalable(t *testing.T) {
	s, _ := Open(t.TempDir())
	if err := s.Put("c", "k", make(chan int)); err == nil {
		t.Error("channel marshaled")
	}
}

func TestConcurrentAccess(t *testing.T) {
	s, _ := Open(t.TempDir())
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			key := string(rune('a' + n%4))
			for j := 0; j < 20; j++ {
				s.Put("c", key, doc{Count: j})
				var d doc
				s.Get("c", key, &d)
				s.List("c")
			}
		}(i)
	}
	wg.Wait()
	keys, err := s.List("c")
	if err != nil || len(keys) != 4 {
		t.Errorf("after concurrency: %v, %v", keys, err)
	}
}
