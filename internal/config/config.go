// Package config implements the declarative side of the TRIPS Configurator:
// "a standard but concise means to configure multiple input sources,
// including the indoor positioning data, indoor space information and
// relevant contexts."
//
// A Config is one JSON document naming the dataset, the DSM, the event
// training data, the selection rules, and the translator parameters. It is
// the artifact an analyst saves and reuses across translation tasks.
package config

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"

	"trips/internal/dsm"
	"trips/internal/geom"
	"trips/internal/position"
	"trips/internal/selector"
)

// Config is the root document.
type Config struct {
	// Name labels the translation task.
	Name string `json:"name"`

	// Dataset is the positioning data source: a .csv or .jsonl path.
	Dataset string `json:"dataset,omitempty"`
	// DSM is the digital space model path (JSON produced by the Space
	// Modeler).
	DSM string `json:"dsm,omitempty"`
	// Events is the Event Editor state path (patterns + training data).
	Events string `json:"events,omitempty"`

	// Selector is the declarative selection rule applied to the dataset.
	Selector *RuleConfig `json:"selector,omitempty"`

	// Cleaner parameters.
	Cleaner CleanerConfig `json:"cleaner"`
	// Annotator parameters.
	Annotator AnnotatorConfig `json:"annotator"`
	// Complementor parameters.
	Complementor ComplementorConfig `json:"complementor"`
}

// CleanerConfig mirrors cleaning.Cleaner knobs.
type CleanerConfig struct {
	MaxSpeedMPS  float64 `json:"maxSpeedMps,omitempty"`
	UseEuclidean bool    `json:"useEuclidean,omitempty"`
}

// AnnotatorConfig mirrors annotation.Config knobs.
type AnnotatorConfig struct {
	// Classifier is gaussian-nb (default), logistic-regression or
	// decision-tree.
	Classifier    string  `json:"classifier,omitempty"`
	EpsSpaceM     float64 `json:"epsSpaceM,omitempty"`
	EpsTimeS      int     `json:"epsTimeS,omitempty"`
	MinPts        int     `json:"minPts,omitempty"`
	MaxGapS       int     `json:"maxGapS,omitempty"`
	MinSnippet    int     `json:"minSnippet,omitempty"`
	Display       string  `json:"display,omitempty"` // temporal-middle | spatial-central
	MinConfidence float64 `json:"minConfidence,omitempty"`
	// MergeGapS consolidates same-event same-region triplets separated by
	// at most this many seconds; 0 keeps the default (60), -1 disables.
	MergeGapS int `json:"mergeGapS,omitempty"`
}

// ComplementorConfig mirrors complement.Complementor knobs.
type ComplementorConfig struct {
	MaxGapS      int  `json:"maxGapS,omitempty"`
	MaxHops      int  `json:"maxHops,omitempty"`
	UniformPrior bool `json:"uniformPrior,omitempty"`
	Disabled     bool `json:"disabled,omitempty"`
}

// RuleConfig is the declarative form of a selector rule tree.
type RuleConfig struct {
	Kind string `json:"kind"`

	// Leaf parameters (the relevant subset per kind).
	Glob      string    `json:"glob,omitempty"`
	From      time.Time `json:"from,omitempty"`
	To        time.Time `json:"to,omitempty"`
	StartHour int       `json:"startHour,omitempty"`
	EndHour   int       `json:"endHour,omitempty"`
	MinX      float64   `json:"minX,omitempty"`
	MinY      float64   `json:"minY,omitempty"`
	MaxX      float64   `json:"maxX,omitempty"`
	MaxY      float64   `json:"maxY,omitempty"`
	Floor     int       `json:"floor,omitempty"`
	AnyFloor  bool      `json:"anyFloor,omitempty"`
	MinCount  int       `json:"minCount,omitempty"`
	Seconds   int       `json:"seconds,omitempty"`
	Days      int       `json:"days,omitempty"`

	// Children of and / or / not.
	Children []RuleConfig `json:"children,omitempty"`
}

// Build compiles the declarative rule into an executable selector.Rule.
func (rc *RuleConfig) Build() (selector.Rule, error) {
	if rc == nil {
		return selector.All{}, nil
	}
	switch rc.Kind {
	case "", "all":
		return selector.All{}, nil
	case "device":
		return selector.DevicePattern{Glob: rc.Glob}, nil
	case "timeRange":
		return selector.TimeRange{From: rc.From, To: rc.To}, nil
	case "dailyWindow":
		if rc.StartHour < 0 || rc.EndHour > 24 || rc.StartHour >= rc.EndHour {
			return nil, fmt.Errorf("config: bad daily window [%d, %d)", rc.StartHour, rc.EndHour)
		}
		return selector.DailyWindow{StartHour: rc.StartHour, EndHour: rc.EndHour}, nil
	case "spatial":
		return selector.SpatialRange{
			Rect:       geom.NewRect(geom.Pt(rc.MinX, rc.MinY), geom.Pt(rc.MaxX, rc.MaxY)),
			Floor:      dsm.FloorID(rc.Floor),
			AnyFloor:   rc.AnyFloor,
			MinRecords: rc.MinCount,
		}, nil
	case "minDuration":
		return selector.MinDuration{D: time.Duration(rc.Seconds) * time.Second}, nil
	case "frequency":
		return selector.Frequency{MaxPeriod: time.Duration(rc.Seconds) * time.Second}, nil
	case "minRecords":
		return selector.MinRecords{N: rc.MinCount}, nil
	case "periodic":
		return selector.Periodic{MinDays: rc.Days}, nil
	case "and", "or":
		if len(rc.Children) == 0 {
			return nil, fmt.Errorf("config: %s rule without children", rc.Kind)
		}
		rules := make([]selector.Rule, 0, len(rc.Children))
		for i := range rc.Children {
			r, err := rc.Children[i].Build()
			if err != nil {
				return nil, err
			}
			rules = append(rules, r)
		}
		if rc.Kind == "and" {
			return selector.And(rules), nil
		}
		return selector.Or(rules), nil
	case "not":
		if len(rc.Children) != 1 {
			return nil, fmt.Errorf("config: not rule needs exactly one child")
		}
		r, err := rc.Children[0].Build()
		if err != nil {
			return nil, err
		}
		return selector.Not{Rule: r}, nil
	default:
		return nil, fmt.Errorf("config: unknown rule kind %q", rc.Kind)
	}
}

// Validate checks the config for structural problems without touching the
// filesystem.
func (c *Config) Validate() error {
	if c.Name == "" {
		return fmt.Errorf("config: empty task name")
	}
	if c.Annotator.Classifier != "" {
		switch c.Annotator.Classifier {
		case "gaussian-nb", "logistic-regression", "decision-tree":
		default:
			return fmt.Errorf("config: unknown classifier %q", c.Annotator.Classifier)
		}
	}
	switch c.Annotator.Display {
	case "", "temporal-middle", "spatial-central":
	default:
		return fmt.Errorf("config: unknown display policy %q", c.Annotator.Display)
	}
	if _, err := c.Selector.Build(); err != nil {
		return err
	}
	return nil
}

// SelectDataset loads the dataset named by the config and applies the
// selection rule.
func (c *Config) SelectDataset() (*position.Dataset, error) {
	if c.Dataset == "" {
		return nil, fmt.Errorf("config: no dataset path")
	}
	ds, err := position.LoadFile(c.Dataset)
	if err != nil {
		return nil, err
	}
	rule, err := c.Selector.Build()
	if err != nil {
		return nil, err
	}
	return selector.Select(ds, rule), nil
}

// Write serializes the config as indented JSON.
func (c *Config) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(c)
}

// Save writes the config to a file.
func (c *Config) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := c.Write(f); err != nil {
		return err
	}
	return f.Close()
}

// Read parses and validates a config.
func Read(r io.Reader) (*Config, error) {
	var c Config
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&c); err != nil {
		return nil, fmt.Errorf("config: decode: %w", err)
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return &c, nil
}

// Load reads a config file.
func Load(path string) (*Config, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}
