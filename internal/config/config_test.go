package config

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"trips/internal/dsm"
	"trips/internal/geom"
	"trips/internal/position"
	"trips/internal/selector"
)

func TestRuleConfigBuildLeaves(t *testing.T) {
	cases := []struct {
		rc   RuleConfig
		want string // substring of Describe()
	}{
		{RuleConfig{Kind: "device", Glob: "3a.*"}, "3a.*"},
		{RuleConfig{Kind: "timeRange"}, "time in"},
		{RuleConfig{Kind: "dailyWindow", StartHour: 10, EndHour: 22}, "10:00"},
		{RuleConfig{Kind: "spatial", MaxX: 10, MaxY: 10, Floor: 1}, "records in"},
		{RuleConfig{Kind: "minDuration", Seconds: 3600}, "duration"},
		{RuleConfig{Kind: "frequency", Seconds: 10}, "period"},
		{RuleConfig{Kind: "minRecords", MinCount: 5}, "records"},
		{RuleConfig{Kind: "periodic", Days: 2}, "days"},
		{RuleConfig{Kind: "all"}, "all"},
		{RuleConfig{}, "all"},
	}
	for _, c := range cases {
		r, err := c.rc.Build()
		if err != nil {
			t.Errorf("Build(%q): %v", c.rc.Kind, err)
			continue
		}
		if !strings.Contains(r.Describe(), c.want) {
			t.Errorf("Build(%q).Describe() = %q, want ~%q", c.rc.Kind, r.Describe(), c.want)
		}
	}
	// Nil receiver → All.
	var nilRC *RuleConfig
	r, err := nilRC.Build()
	if err != nil || r.Describe() != "all" {
		t.Errorf("nil rule = %v, %v", r, err)
	}
}

func TestRuleConfigBuildTree(t *testing.T) {
	rc := RuleConfig{Kind: "and", Children: []RuleConfig{
		{Kind: "device", Glob: "3a.*"},
		{Kind: "or", Children: []RuleConfig{
			{Kind: "minRecords", MinCount: 10},
			{Kind: "not", Children: []RuleConfig{{Kind: "periodic", Days: 2}}},
		}},
	}}
	r, err := rc.Build()
	if err != nil {
		t.Fatalf("Build tree: %v", err)
	}
	d := r.Describe()
	for _, want := range []string{"AND", "OR", "NOT"} {
		if !strings.Contains(d, want) {
			t.Errorf("tree describe %q missing %q", d, want)
		}
	}
}

func TestRuleConfigBuildErrors(t *testing.T) {
	bad := []RuleConfig{
		{Kind: "quantum"},
		{Kind: "and"},
		{Kind: "or"},
		{Kind: "not"},
		{Kind: "not", Children: []RuleConfig{{Kind: "all"}, {Kind: "all"}}},
		{Kind: "dailyWindow", StartHour: 22, EndHour: 10},
		{Kind: "and", Children: []RuleConfig{{Kind: "quantum"}}},
	}
	for _, rc := range bad {
		if _, err := rc.Build(); err == nil {
			t.Errorf("rule %+v accepted", rc)
		}
	}
}

func TestConfigValidate(t *testing.T) {
	ok := Config{Name: "task"}
	if err := ok.Validate(); err != nil {
		t.Errorf("minimal config rejected: %v", err)
	}
	if err := (&Config{}).Validate(); err == nil {
		t.Error("empty name accepted")
	}
	if err := (&Config{Name: "x", Annotator: AnnotatorConfig{Classifier: "svm"}}).Validate(); err == nil {
		t.Error("unknown classifier accepted")
	}
	if err := (&Config{Name: "x", Annotator: AnnotatorConfig{Display: "hologram"}}).Validate(); err == nil {
		t.Error("unknown display accepted")
	}
	if err := (&Config{Name: "x", Selector: &RuleConfig{Kind: "nope"}}).Validate(); err == nil {
		t.Error("bad selector accepted")
	}
}

func TestConfigRoundTrip(t *testing.T) {
	c := &Config{
		Name:    "mall-task",
		Dataset: "/data/raw.csv",
		DSM:     "/data/mall.json",
		Events:  "/data/events.json",
		Selector: &RuleConfig{Kind: "and", Children: []RuleConfig{
			{Kind: "dailyWindow", StartHour: 10, EndHour: 22},
			{Kind: "minRecords", MinCount: 20},
		}},
		Cleaner:      CleanerConfig{MaxSpeedMPS: 2.8},
		Annotator:    AnnotatorConfig{Classifier: "decision-tree", Display: "spatial-central"},
		Complementor: ComplementorConfig{MaxGapS: 240, MaxHops: 6},
	}
	var buf bytes.Buffer
	if err := c.Write(&buf); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if got.Name != c.Name || got.Cleaner.MaxSpeedMPS != 2.8 ||
		got.Annotator.Classifier != "decision-tree" || got.Complementor.MaxGapS != 240 {
		t.Errorf("round trip = %+v", got)
	}
	if len(got.Selector.Children) != 2 {
		t.Errorf("selector children = %d", len(got.Selector.Children))
	}
}

func TestReadRejectsUnknownFieldsAndGarbage(t *testing.T) {
	if _, err := Read(strings.NewReader(`{"name":"x","warp":9}`)); err == nil {
		t.Error("unknown field accepted")
	}
	if _, err := Read(strings.NewReader(`{{{`)); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := Read(strings.NewReader(`{"name":""}`)); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestConfigSaveLoadAndSelectDataset(t *testing.T) {
	dir := t.TempDir()
	// A small dataset: two devices, one inside operating hours.
	ds := position.NewDataset()
	base := time.Date(2017, 1, 2, 11, 0, 0, 0, time.UTC)
	for i := 0; i < 5; i++ {
		ds.Add(position.Record{Device: "3a.x", P: geom.Pt(float64(i), 0), Floor: dsm.FloorID(1),
			At: base.Add(time.Duration(i) * time.Minute)})
		ds.Add(position.Record{Device: "zz.y", P: geom.Pt(float64(i), 0), Floor: dsm.FloorID(1),
			At: base.Add(time.Duration(i) * time.Minute)})
	}
	dataPath := dir + "/raw.csv"
	if err := position.SaveFile(dataPath, ds); err != nil {
		t.Fatal(err)
	}
	c := &Config{
		Name:     "t",
		Dataset:  dataPath,
		Selector: &RuleConfig{Kind: "device", Glob: "3a.*"},
	}
	cfgPath := dir + "/task.json"
	if err := c.Save(cfgPath); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(cfgPath)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	sel, err := loaded.SelectDataset()
	if err != nil {
		t.Fatalf("SelectDataset: %v", err)
	}
	if sel.NumDevices() != 1 || sel.Sequence("3a.x") == nil {
		t.Errorf("selected %v", sel.Devices())
	}
	// Missing dataset errors.
	if _, err := (&Config{Name: "x"}).SelectDataset(); err == nil {
		t.Error("no dataset path accepted")
	}
	if _, err := Load(dir + "/missing.json"); err == nil {
		t.Error("missing config accepted")
	}
	_ = selector.All{} // keep selector import obviously used
}
