// Package intern provides a concurrency-safe symbol table that maps strings
// to dense small-integer ids and back.
//
// The hot paths of the online engine compare and hash identifiers on every
// record: region ids during annotation, device ids during shard routing and
// session lookup. Interning turns those string operations into integer
// operations — an int32 compare instead of a memcmp, an array index instead
// of a map probe — and lets per-id state live in flat slices indexed by the
// id ("scan contiguous small integers, don't chase pointers"). Strings are
// materialized only at API/serialization boundaries, via String, which
// returns the original (shared, allocation-free) string header.
//
// Ids are assigned in Intern call order, starting at 0. Callers that need a
// specific order (e.g. dsm assigns region ids in sorted order so integer
// comparison reproduces lexicographic tie-breaks) simply intern in that
// order while the table is still private. ID -1 is reserved as "none" and is
// never assigned.
package intern

import (
	"strings"
	"sync"
)

// ID is a dense interned identifier. Valid ids are >= 0; None (-1) marks
// "no identifier".
type ID int32

// None is the id of the absent identifier. It is smaller than every valid
// id, mirroring how the empty string sorts before every non-empty one.
const None ID = -1

// Table maps strings to dense ids. The zero value is an empty table ready
// for use. A Table is safe for concurrent use; lookups of already-interned
// strings take a read lock only and do not allocate.
type Table struct {
	mu   sync.RWMutex
	ids  map[string]ID
	strs []string
}

// NewTable returns an empty table pre-sized for n entries.
func NewTable(n int) *Table {
	return &Table{ids: make(map[string]ID, n), strs: make([]string, 0, n)}
}

// Intern returns the id for s, assigning the next dense id on first sight.
// The table clones s before storing it, so callers may pass strings that
// alias transient parse buffers.
func (t *Table) Intern(s string) ID {
	t.mu.RLock()
	id, ok := t.ids[s]
	t.mu.RUnlock()
	if ok {
		return id
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if id, ok := t.ids[s]; ok {
		return id
	}
	if t.ids == nil {
		t.ids = make(map[string]ID)
	}
	s = strings.Clone(s)
	id = ID(len(t.strs))
	t.ids[s] = id
	t.strs = append(t.strs, s)
	return id
}

// Canonical interns s and returns the stored canonical string, so repeated
// occurrences of one identifier share a single allocation — the form the
// stream parsers use to stop allocating one device string per record. The
// hit path takes a read lock only and does not allocate.
//
//trips:zeroalloc
func (t *Table) Canonical(s string) string {
	t.mu.RLock()
	if id, ok := t.ids[s]; ok {
		cs := t.strs[id]
		t.mu.RUnlock()
		return cs
	}
	t.mu.RUnlock()
	// First sight of an identifier interns it: one allocation per distinct
	// symbol, amortized to zero over a stream.
	return t.String(t.Intern(s))
}

// Lookup returns the id for s without assigning one. The second result is
// false when s has never been interned. It never allocates.
//
//trips:zeroalloc
func (t *Table) Lookup(s string) (ID, bool) {
	t.mu.RLock()
	id, ok := t.ids[s]
	t.mu.RUnlock()
	return id, ok
}

// String returns the original string for id, sharing its backing bytes; it
// never allocates. It returns "" for None and panics on other out-of-range
// ids, which always indicate an id from a different table.
//
//trips:zeroalloc
func (t *Table) String(id ID) string {
	if id == None {
		return ""
	}
	t.mu.RLock()
	s := t.strs[id]
	t.mu.RUnlock()
	return s
}

// Len returns the number of interned strings; valid ids are [0, Len).
func (t *Table) Len() int {
	t.mu.RLock()
	n := len(t.strs)
	t.mu.RUnlock()
	return n
}
