package intern

import (
	"fmt"
	"sync"
	"testing"
)

func TestTableBasics(t *testing.T) {
	var tab Table
	if n := tab.Len(); n != 0 {
		t.Fatalf("zero table Len = %d, want 0", n)
	}
	if _, ok := tab.Lookup("a"); ok {
		t.Fatal("Lookup on empty table reported a hit")
	}
	// Ids assign densely in intern order.
	for i, s := range []string{"a", "b", "c"} {
		if id := tab.Intern(s); id != ID(i) {
			t.Fatalf("Intern(%q) = %d, want %d", s, id, i)
		}
	}
	// Re-interning is stable.
	if id := tab.Intern("b"); id != 1 {
		t.Fatalf("re-Intern(b) = %d, want 1", id)
	}
	if tab.Len() != 3 {
		t.Fatalf("Len = %d, want 3", tab.Len())
	}
	// Round trips.
	for i, want := range []string{"a", "b", "c"} {
		if got := tab.String(ID(i)); got != want {
			t.Fatalf("String(%d) = %q, want %q", i, got, want)
		}
	}
	if got := tab.String(None); got != "" {
		t.Fatalf("String(None) = %q, want empty", got)
	}
	if id, ok := tab.Lookup("c"); !ok || id != 2 {
		t.Fatalf("Lookup(c) = %d, %v", id, ok)
	}
}

func TestInternClonesTransientBuffers(t *testing.T) {
	var tab Table
	buf := []byte("device-1")
	id := tab.Intern(string(buf))
	// Mutate the buffer the way a reused parse buffer would be.
	copy(buf, "XXXXXXXX")
	if got := tab.String(id); got != "device-1" {
		t.Fatalf("stored string aliased the caller's buffer: %q", got)
	}
	if got := tab.Canonical("device-1"); got != "device-1" {
		t.Fatalf("Canonical = %q, want device-1", got)
	}
}

func TestStringPanicsOnForeignID(t *testing.T) {
	var tab Table
	tab.Intern("a")
	defer func() {
		if recover() == nil {
			t.Fatal("String(99) did not panic")
		}
	}()
	tab.String(99)
}

// TestConcurrent interleaves interning of an overlapping key set across
// goroutines (run under -race) and checks the table ends consistent: one
// dense id per distinct string, every id round-tripping.
func TestConcurrent(t *testing.T) {
	var tab Table
	const workers, keys = 8, 64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < keys; i++ {
				k := fmt.Sprintf("key-%d", (i+w)%keys)
				id := tab.Intern(k)
				if got := tab.String(id); got != k {
					t.Errorf("String(Intern(%q)) = %q", k, got)
					return
				}
				if got := tab.Canonical(k); got != k {
					t.Errorf("Canonical(%q) = %q", k, got)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if tab.Len() != keys {
		t.Fatalf("Len = %d, want %d", tab.Len(), keys)
	}
	seen := map[ID]bool{}
	for i := 0; i < keys; i++ {
		k := fmt.Sprintf("key-%d", i)
		id, ok := tab.Lookup(k)
		if !ok || id < 0 || int(id) >= keys || seen[id] {
			t.Fatalf("Lookup(%q) = %d, %v (dup or out of range)", k, id, ok)
		}
		seen[id] = true
	}
}

// TestHitPathZeroAlloc guards the interning contract the hot paths build
// on: once a symbol is in the table, Lookup, String, and Canonical are
// read-lock-only and allocation-free.
//
//trips:guards Table.Lookup
//trips:guards Table.String
//trips:guards Table.Canonical
func TestHitPathZeroAlloc(t *testing.T) {
	var tab Table
	id := tab.Intern("AA:BB:CC:DD:EE:FF")
	if avg := testing.AllocsPerRun(1000, func() {
		tab.Lookup("AA:BB:CC:DD:EE:FF")
		tab.String(id)
		tab.Canonical("AA:BB:CC:DD:EE:FF")
	}); avg != 0 {
		t.Errorf("intern hit path allocates %.2f times per op, want 0", avg)
	}
}
