package semantics

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

var t0 = time.Date(2017, 1, 2, 13, 2, 5, 0, time.UTC)

func trip(ev Event, region string, fromOff, toOff time.Duration) Triplet {
	return Triplet{Event: ev, Region: region, From: t0.Add(fromOff), To: t0.Add(toOff)}
}

func TestTripletString(t *testing.T) {
	tr := trip(EventStay, "Adidas", 0, 16*time.Minute+10*time.Second)
	got := tr.String()
	if !strings.Contains(got, "stay") || !strings.Contains(got, "Adidas") {
		t.Errorf("String = %q", got)
	}
	if !strings.Contains(got, "1:02:05") {
		t.Errorf("String should carry the start time: %q", got)
	}
}

func TestTripletOverlaps(t *testing.T) {
	tr := trip(EventStay, "A", 0, 10*time.Minute)
	if !tr.Overlaps(t0.Add(5*time.Minute), t0.Add(15*time.Minute)) {
		t.Error("overlap missed")
	}
	if tr.Overlaps(t0.Add(10*time.Minute), t0.Add(20*time.Minute)) {
		t.Error("touching intervals should not overlap (half-open)")
	}
	if tr.Overlaps(t0.Add(-5*time.Minute), t0) {
		t.Error("preceding interval should not overlap")
	}
}

func TestSequenceAppendOrdered(t *testing.T) {
	s := NewSequence("oi")
	s.Append(trip(EventStay, "B", 10*time.Minute, 20*time.Minute))
	s.Append(trip(EventStay, "A", 0, 10*time.Minute))
	s.Append(trip(EventPassBy, "C", 25*time.Minute, 26*time.Minute))
	if s.Len() != 3 {
		t.Fatalf("len = %d", s.Len())
	}
	if s.Triplets[0].Region != "A" || s.Triplets[2].Region != "C" {
		t.Errorf("order wrong: %v", s.Triplets)
	}
	if !s.Start().Equal(t0) {
		t.Errorf("start = %v", s.Start())
	}
	if !s.End().Equal(t0.Add(26 * time.Minute)) {
		t.Errorf("end = %v", s.End())
	}
}

func TestSequenceAt(t *testing.T) {
	s := NewSequence("oi")
	s.Append(trip(EventStay, "A", 0, 10*time.Minute))
	s.Append(trip(EventPassBy, "B", 12*time.Minute, 13*time.Minute))
	if got := s.At(t0.Add(5 * time.Minute)); got == nil || got.Region != "A" {
		t.Errorf("At(5m) = %v", got)
	}
	if got := s.At(t0.Add(11 * time.Minute)); got != nil {
		t.Errorf("At(gap) = %v", got)
	}
	if got := s.At(t0.Add(10 * time.Minute)); got != nil {
		t.Error("To is exclusive")
	}
}

func TestSequenceGaps(t *testing.T) {
	s := NewSequence("oi")
	s.Append(trip(EventStay, "A", 0, 10*time.Minute))
	s.Append(trip(EventStay, "B", 11*time.Minute, 20*time.Minute))
	s.Append(trip(EventStay, "C", 40*time.Minute, 50*time.Minute))
	gaps := s.Gaps(5 * time.Minute)
	if len(gaps) != 1 || gaps[0] != [2]int{1, 2} {
		t.Errorf("gaps = %v", gaps)
	}
	if g := s.Gaps(30 * time.Minute); len(g) != 0 {
		t.Errorf("wide threshold gaps = %v", g)
	}
}

func TestSequenceObserved(t *testing.T) {
	s := NewSequence("oi")
	s.Append(trip(EventStay, "A", 0, 10*time.Minute))
	inf := trip(EventPassBy, "H", 10*time.Minute, 11*time.Minute)
	inf.Inferred = true
	s.Append(inf)
	obs := s.Observed()
	if len(obs) != 1 || obs[0].Region != "A" {
		t.Errorf("observed = %v", obs)
	}
}

func TestSequenceString(t *testing.T) {
	s := NewSequence("oi")
	s.Append(trip(EventStay, "Adidas", 0, 16*time.Minute))
	got := s.String()
	if !strings.HasPrefix(got, "oi:\n") || !strings.Contains(got, "Adidas") {
		t.Errorf("String = %q", got)
	}
}

func TestMeasureConciseness(t *testing.T) {
	s := NewSequence("oi")
	s.Append(trip(EventStay, "A", 0, 10*time.Minute))
	s.Append(trip(EventPassBy, "B", 10*time.Minute, 11*time.Minute))
	c := MeasureConciseness(200, 20000, s)
	if c.RecordsPerTriplet != 100 {
		t.Errorf("records per triplet = %v", c.RecordsPerTriplet)
	}
	if c.SemBytes <= 0 || c.ByteRatio <= 0 {
		t.Errorf("byte metrics = %+v", c)
	}
	// Empty sequence does not divide by zero.
	c = MeasureConciseness(0, 0, NewSequence("x"))
	if c.RecordsPerTriplet != 0 || c.ByteRatio != 0 {
		t.Errorf("empty conciseness = %+v", c)
	}
}

func TestSequenceSaveLoad(t *testing.T) {
	s := NewSequence("oi")
	s.Append(trip(EventStay, "A", 0, 10*time.Minute))
	path := t.TempDir() + "/sem.json"
	if err := s.Save(path); err != nil {
		t.Fatalf("Save: %v", err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if got.Device != "oi" || got.Len() != 1 || got.Triplets[0].Region != "A" {
		t.Errorf("loaded = %+v", got)
	}
	if _, err := Load(t.TempDir() + "/missing.json"); err == nil {
		t.Error("missing file accepted")
	}
}

func TestSequenceJSONShape(t *testing.T) {
	s := NewSequence("oi")
	s.Append(trip(EventStay, "A", 0, time.Minute))
	var buf bytes.Buffer
	if _, err := s.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	var m map[string]interface{}
	if err := json.Unmarshal(buf.Bytes(), &m); err != nil {
		t.Fatalf("output not JSON: %v", err)
	}
	if m["device"] != "oi" {
		t.Errorf("device field = %v", m["device"])
	}
}

func TestCompareExactMatch(t *testing.T) {
	truth := NewSequence("oi")
	truth.Append(trip(EventStay, "A", 0, 10*time.Minute))
	truth.Append(trip(EventPassBy, "B", 10*time.Minute, 12*time.Minute))

	rep := Compare(truth, truth, time.Second)
	if rep.TimeAgreement < 0.999 || rep.EventAgreement < 0.999 {
		t.Errorf("self agreement = %+v", rep)
	}
	if rep.F1 != 1 || rep.Matched != 2 {
		t.Errorf("self F1 = %+v", rep)
	}
}

func TestCompareMismatches(t *testing.T) {
	truth := NewSequence("oi")
	truth.Append(trip(EventStay, "A", 0, 10*time.Minute))
	truth.Append(trip(EventStay, "B", 10*time.Minute, 20*time.Minute))

	// Got the first region right but the second wrong.
	got := NewSequence("oi")
	got.Append(trip(EventStay, "A", 0, 10*time.Minute))
	got.Append(trip(EventStay, "C", 10*time.Minute, 20*time.Minute))

	rep := Compare(got, truth, time.Second)
	if rep.TimeAgreement < 0.45 || rep.TimeAgreement > 0.55 {
		t.Errorf("time agreement = %v, want ≈0.5", rep.TimeAgreement)
	}
	if rep.Matched != 1 || rep.Precision != 0.5 || rep.Recall != 0.5 {
		t.Errorf("triplet scores = %+v", rep)
	}

	// Same region, wrong event: counts for region agreement only.
	got2 := NewSequence("oi")
	got2.Append(trip(EventPassBy, "A", 0, 10*time.Minute))
	got2.Append(trip(EventStay, "B", 10*time.Minute, 20*time.Minute))
	rep2 := Compare(got2, truth, time.Second)
	if rep2.TimeAgreement < 0.99 {
		t.Errorf("region agreement = %v", rep2.TimeAgreement)
	}
	if rep2.EventAgreement < 0.45 || rep2.EventAgreement > 0.55 {
		t.Errorf("event agreement = %v", rep2.EventAgreement)
	}
}

func TestCompareEmpty(t *testing.T) {
	rep := Compare(NewSequence("a"), NewSequence("b"), time.Second)
	if rep.F1 != 0 || rep.TimeAgreement != 0 {
		t.Errorf("empty compare = %+v", rep)
	}
}

func TestCompareOverlapRule(t *testing.T) {
	truth := NewSequence("oi")
	truth.Append(trip(EventStay, "A", 0, 10*time.Minute))
	// Shifted by 4 minutes: overlap 6 of 10 minutes ≥ half — matches.
	got := NewSequence("oi")
	got.Append(trip(EventStay, "A", 4*time.Minute, 14*time.Minute))
	if rep := Compare(got, truth, time.Second); rep.Matched != 1 {
		t.Errorf("60%% overlap should match: %+v", rep)
	}
	// Shifted by 8 minutes: overlap 2 of 10 < half — no match.
	got2 := NewSequence("oi")
	got2.Append(trip(EventStay, "A", 8*time.Minute, 18*time.Minute))
	if rep := Compare(got2, truth, time.Second); rep.Matched != 0 {
		t.Errorf("20%% overlap should not match: %+v", rep)
	}
}
