// Package semantics models the output side of TRIPS: mobility semantics.
//
// A mobility semantics is a triplet of an event annotation (a mobility event
// such as stay or pass-by), a spatial annotation (a semantic region), and a
// temporal annotation (a time period) — the right-hand side of the paper's
// Table 1. The package also provides sequence containers, serialization,
// the conciseness metric the paper motivates ("very concise to process as
// they use a more condensed form"), and the assessment tooling (alignment
// against a ground-truth semantics sequence) that the demo performs
// visually.
package semantics

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"

	"trips/internal/dsm"
	"trips/internal/geom"
)

// Event names a mobility event pattern: "a generic movement pattern of some
// particular interest". Stay and PassBy ship with the system (the paper's
// running examples); analysts define more through the Event Editor.
type Event string

// Built-in events.
const (
	// EventStay: the object remains within one region for a period.
	EventStay Event = "stay"
	// EventPassBy: the object crosses a region without dwelling.
	EventPassBy Event = "pass-by"
	// EventUnknown marks snippets the identifier could not classify.
	EventUnknown Event = "unknown"
)

// Triplet is one mobility semantics: (event, region, period). Origin
// indexes, when present, tie the triplet back to the positioning records it
// was derived from so the Viewer can map semantics entries to raw entries.
type Triplet struct {
	Event    Event        `json:"event"`
	Region   string       `json:"region"` // semantic tag, e.g. "Nike"
	RegionID dsm.RegionID `json:"regionId,omitempty"`
	From     time.Time    `json:"from"`
	To       time.Time    `json:"to"`

	// Inferred marks triplets produced by the Complementor rather than
	// observed in the data.
	Inferred bool `json:"inferred,omitempty"`

	// FirstIdx and LastIdx are the indexes of the first and last cleaned
	// positioning records this triplet covers; -1 when inferred.
	FirstIdx int `json:"firstIdx"`
	LastIdx  int `json:"lastIdx"`

	// Display is the representative point the Viewer renders (temporally
	// middle or spatially central source location, per user configuration).
	Display geom.Point  `json:"display"`
	Floor   dsm.FloorID `json:"floor"`

	// Confidence in [0,1] from the event identification model, or the MAP
	// posterior for inferred triplets.
	Confidence float64 `json:"confidence,omitempty"`
}

// Duration returns the length of the temporal annotation.
func (t Triplet) Duration() time.Duration { return t.To.Sub(t.From) }

// Overlaps reports whether the triplet's period intersects [from, to).
func (t Triplet) Overlaps(from, to time.Time) bool {
	return t.From.Before(to) && from.Before(t.To)
}

// String formats the triplet the way the paper prints it:
// "(stay, Adidas, 1:02:05-1:18:15pm)".
func (t Triplet) String() string {
	return fmt.Sprintf("(%s, %s, %s-%s)", t.Event, t.Region,
		t.From.Format("3:04:05"), t.To.Format("3:04:05pm"))
}

// Sequence is the mobility semantics of one device, time-ordered.
type Sequence struct {
	Device   string    `json:"device"`
	Triplets []Triplet `json:"triplets"`
}

// NewSequence returns an empty semantics sequence for a device.
func NewSequence(device string) *Sequence { return &Sequence{Device: device} }

// Append adds a triplet keeping the sequence ordered by From time.
func (s *Sequence) Append(t Triplet) {
	n := len(s.Triplets)
	if n == 0 || !t.From.Before(s.Triplets[n-1].From) {
		s.Triplets = append(s.Triplets, t)
		return
	}
	i := sort.Search(n, func(i int) bool { return s.Triplets[i].From.After(t.From) })
	s.Triplets = append(s.Triplets, Triplet{})
	copy(s.Triplets[i+1:], s.Triplets[i:])
	s.Triplets[i] = t
}

// Len returns the number of triplets.
func (s *Sequence) Len() int { return len(s.Triplets) }

// Start returns the earliest From; zero when empty.
func (s *Sequence) Start() time.Time {
	if s.Len() == 0 {
		return time.Time{}
	}
	return s.Triplets[0].From
}

// End returns the latest To; zero when empty.
func (s *Sequence) End() time.Time {
	var end time.Time
	for _, t := range s.Triplets {
		if t.To.After(end) {
			end = t.To
		}
	}
	return end
}

// At returns the triplet covering the instant, or nil. Ties resolve to the
// earliest triplet.
func (s *Sequence) At(when time.Time) *Triplet {
	for i := range s.Triplets {
		t := &s.Triplets[i]
		if !when.Before(t.From) && when.Before(t.To) {
			return t
		}
	}
	return nil
}

// Gaps returns the index pairs (i, i+1) of consecutive triplets separated by
// more than maxGap, the discontinuities the Complementing layer fills.
func (s *Sequence) Gaps(maxGap time.Duration) [][2]int {
	var out [][2]int
	for i := 1; i < len(s.Triplets); i++ {
		if s.Triplets[i].From.Sub(s.Triplets[i-1].To) > maxGap {
			out = append(out, [2]int{i - 1, i})
		}
	}
	return out
}

// Observed returns the triplets that were annotated from data (not
// inferred).
func (s *Sequence) Observed() []Triplet {
	out := make([]Triplet, 0, len(s.Triplets))
	for _, t := range s.Triplets {
		if !t.Inferred {
			out = append(out, t)
		}
	}
	return out
}

// String renders the sequence the way Table 1 does, one triplet per line
// under the device header.
func (s *Sequence) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s:\n", s.Device)
	for _, t := range s.Triplets {
		fmt.Fprintf(&b, "  %s\n", t)
	}
	return b.String()
}

// Conciseness metrics ------------------------------------------------------

// Conciseness quantifies the compression the translation achieves: the
// number of raw records represented per semantics triplet, and the byte
// ratio of the two representations.
type Conciseness struct {
	RawRecords        int     `json:"rawRecords"`
	Triplets          int     `json:"triplets"`
	RecordsPerTriplet float64 `json:"recordsPerTriplet"`
	RawBytes          int     `json:"rawBytes"`
	SemBytes          int     `json:"semBytes"`
	ByteRatio         float64 `json:"byteRatio"` // rawBytes / semBytes
}

// MeasureConciseness computes the metric for a translation of rawCount
// records into the sequence. Byte sizes use the JSON wire encodings.
func MeasureConciseness(rawCount int, rawBytes int, s *Sequence) Conciseness {
	c := Conciseness{RawRecords: rawCount, Triplets: s.Len(), RawBytes: rawBytes}
	if b, err := json.Marshal(s); err == nil {
		c.SemBytes = len(b)
	}
	if c.Triplets > 0 {
		c.RecordsPerTriplet = float64(c.RawRecords) / float64(c.Triplets)
	}
	if c.SemBytes > 0 {
		c.ByteRatio = float64(c.RawBytes) / float64(c.SemBytes)
	}
	return c
}

// Serialization -------------------------------------------------------------

// WriteTo encodes the sequence as indented JSON.
func (s *Sequence) WriteTo(w io.Writer) (int64, error) {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return 0, enc.Encode(s)
}

// Save writes the sequence to a JSON file — the "translation result file"
// the analyst exports in the demo walk-through.
func (s *Sequence) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if _, err := s.WriteTo(f); err != nil {
		return err
	}
	return f.Close()
}

// Load reads a sequence from a JSON file.
func Load(path string) (*Sequence, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var s Sequence
	if err := json.NewDecoder(f).Decode(&s); err != nil {
		return nil, fmt.Errorf("semantics: decode %s: %w", path, err)
	}
	return &s, nil
}
