package semantics

import (
	"time"
)

// Assessment tooling: the paper argues the translation result "needs to be
// assessed properly" and offers visual comparison; here we add the
// quantitative counterpart used by the E1/E4 experiments — an alignment of a
// generated semantics sequence against a ground-truth sequence, scored by
// time-weighted agreement and by triplet-level precision/recall.

// MatchReport scores a generated sequence against the ground truth.
type MatchReport struct {
	// TimeAgreement is the fraction of the evaluated timespan during which
	// the generated sequence names the same region as the truth.
	TimeAgreement float64 `json:"timeAgreement"`
	// EventAgreement is the fraction of the timespan with the same region
	// AND the same event.
	EventAgreement float64 `json:"eventAgreement"`
	// Precision/Recall/F1 at triplet granularity: a generated triplet
	// matches a truth triplet when regions agree, events agree, and their
	// periods overlap by at least half of the shorter period.
	Precision float64 `json:"precision"`
	Recall    float64 `json:"recall"`
	F1        float64 `json:"f1"`
	// Matched counts matching pairs; Generated/Truth are the totals.
	Matched   int `json:"matched"`
	Generated int `json:"generated"`
	Truth     int `json:"truth"`
}

// Compare aligns got against want. step controls the sampling resolution of
// the time-weighted scores; 1s–5s is appropriate for indoor data.
func Compare(got, want *Sequence, step time.Duration) MatchReport {
	rep := MatchReport{Generated: got.Len(), Truth: want.Len()}
	if step <= 0 {
		step = time.Second
	}

	// Time-weighted agreement over the union span of the truth.
	start, end := want.Start(), want.End()
	if !start.IsZero() && end.After(start) {
		var total, regionOK, eventOK int
		for ts := start; ts.Before(end); ts = ts.Add(step) {
			w := want.At(ts)
			if w == nil {
				continue
			}
			total++
			g := got.At(ts)
			if g == nil {
				continue
			}
			if g.Region == w.Region {
				regionOK++
				if g.Event == w.Event {
					eventOK++
				}
			}
		}
		if total > 0 {
			rep.TimeAgreement = float64(regionOK) / float64(total)
			rep.EventAgreement = float64(eventOK) / float64(total)
		}
	}

	// Triplet-level matching, greedy in time order; each truth triplet can
	// be claimed once.
	used := make([]bool, want.Len())
	for _, g := range got.Triplets {
		for i, w := range want.Triplets {
			if used[i] || g.Region != w.Region || g.Event != w.Event {
				continue
			}
			if overlapAtLeastHalf(g, w) {
				used[i] = true
				rep.Matched++
				break
			}
		}
	}
	if rep.Generated > 0 {
		rep.Precision = float64(rep.Matched) / float64(rep.Generated)
	}
	if rep.Truth > 0 {
		rep.Recall = float64(rep.Matched) / float64(rep.Truth)
	}
	if rep.Precision+rep.Recall > 0 {
		rep.F1 = 2 * rep.Precision * rep.Recall / (rep.Precision + rep.Recall)
	}
	return rep
}

// overlapAtLeastHalf reports whether the periods of a and b overlap by at
// least half the shorter period.
func overlapAtLeastHalf(a, b Triplet) bool {
	lo := a.From
	if b.From.After(lo) {
		lo = b.From
	}
	hi := a.To
	if b.To.Before(hi) {
		hi = b.To
	}
	ov := hi.Sub(lo)
	if ov <= 0 {
		return false
	}
	short := a.Duration()
	if d := b.Duration(); d < short {
		short = d
	}
	return ov*2 >= short
}
