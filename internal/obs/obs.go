// Package obs is the observability core of TRIPS: dependency-free metric
// primitives (atomic counters, gauges, and fixed-bucket latency histograms
// with quantile snapshots), a registry that renders them in the Prometheus
// text exposition format, and HTTP plumbing (metrics handler, health
// handlers, an access-log middleware) for trips-server.
//
// # Design
//
// The hot paths this package instruments — the online engine's ingest
// route, per-flush stage timings, warehouse segment writes, analytics
// folds — are allocation-guarded (see online's TestIngestRouteZeroAlloc),
// so every write-side operation (Counter.Add, Gauge.Set,
// Histogram.Observe) is a handful of atomic instructions and never
// allocates. Aggregation cost is paid at scrape time instead: rendering
// walks the registered series under a read lock and cumulates histogram
// buckets on the fly.
//
// Every write method is nil-receiver-safe, so instrumented packages hold
// plain metric pointers and skip registration entirely when observability
// is disabled — no interface indirection, no "noop metric" objects, and
// the nil check is the only cost on uninstrumented runs.
//
// Histograms use fixed bucket bounds (the same shape as the analytics
// dwell view): merging is a vector add, rendering is cumulative sums, and
// Quantile interpolates linearly inside the covering bucket, toward the
// observed maximum in the open last bucket.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing metric. The zero value is ready to
// use; all methods are nil-safe no-ops so optional instrumentation needs no
// guards.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
//
//trips:zeroalloc
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n (negative deltas are a programming error; Prometheus counters
// only go up, and rendering does not re-check).
//
//trips:zeroalloc
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count (0 for a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float64 metric that can go up and down. The zero value is
// ready to use; methods are nil-safe.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
//
//trips:zeroalloc
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Value returns the current value (0 for a nil gauge).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// DefLatencyBounds is the default histogram layout for operation
// latencies: 50µs to 10s with roughly 1-2-5 spacing, fine enough to
// resolve µs-scale index queries and wide enough for multi-second segment
// writes on a slow disk. The last bucket is open-ended.
var DefLatencyBounds = []time.Duration{
	50 * time.Microsecond, 100 * time.Microsecond, 250 * time.Microsecond,
	500 * time.Microsecond, time.Millisecond, 2500 * time.Microsecond,
	5 * time.Millisecond, 10 * time.Millisecond, 25 * time.Millisecond,
	50 * time.Millisecond, 100 * time.Millisecond, 250 * time.Millisecond,
	500 * time.Millisecond, time.Second, 2500 * time.Millisecond,
	5 * time.Second, 10 * time.Second,
}

// FreshnessBounds is the histogram layout for pipeline-freshness metrics
// (ingest→analytics-visible): sealing waits out the watermark horizon
// (minutes), so the resolution runs 100ms through 30 minutes.
var FreshnessBounds = []time.Duration{
	100 * time.Millisecond, 250 * time.Millisecond, 500 * time.Millisecond,
	time.Second, 2500 * time.Millisecond, 5 * time.Second, 10 * time.Second,
	30 * time.Second, time.Minute, 2 * time.Minute, 5 * time.Minute,
	10 * time.Minute, 30 * time.Minute,
}

// Histogram is a fixed-bucket latency histogram: durations are counted
// into the first bucket whose bound covers them (the implicit last bucket
// is open-ended), with exact sum/count/max kept alongside for means and
// open-bucket quantile interpolation. Observe is lock-free and
// allocation-free; all methods are nil-safe.
type Histogram struct {
	bounds  []time.Duration
	buckets []atomic.Int64 // len(bounds)+1; non-cumulative
	count   atomic.Int64
	sum     atomic.Int64 // nanoseconds
	max     atomic.Int64 // nanoseconds, CAS-max
	ex      atomic.Pointer[Exemplar]
}

// Exemplar links a histogram to the trace behind one of its recent extreme
// observations, so a latency spike on /metrics resolves to a concrete
// /debug/traces/{id} span tree. The slowest traced observation wins until
// it ages out (exemplarTTL), at which point any traced observation may
// replace it — keeping the exemplar both extreme and fresh.
type Exemplar struct {
	TraceID string
	Value   time.Duration
	At      time.Time
}

// exemplarTTL bounds how long a historical maximum can pin the exemplar.
const exemplarTTL = time.Minute

// ObserveTraced is Observe plus an exemplar-candidate update. Only traced
// (sampled) observations should pass a non-empty traceID; the update path
// allocates one small Exemplar, which is fine because sampled requests
// allocate anyway — the untraced path must keep calling Observe.
func (h *Histogram) ObserveTraced(d time.Duration, traceID string) {
	h.Observe(d)
	if h == nil || traceID == "" {
		return
	}
	now := time.Now()
	e := &Exemplar{TraceID: traceID, Value: d, At: now}
	for {
		cur := h.ex.Load()
		if cur != nil && d < cur.Value && now.Sub(cur.At) < exemplarTTL {
			return
		}
		if h.ex.CompareAndSwap(cur, e) {
			return
		}
	}
}

// Exemplar returns the current exemplar, if any traced observation set one.
func (h *Histogram) Exemplar() (Exemplar, bool) {
	if h == nil {
		return Exemplar{}, false
	}
	e := h.ex.Load()
	if e == nil {
		return Exemplar{}, false
	}
	return *e, true
}

// newHistogram validates the bounds (ascending, positive) and builds the
// bucket array. Registries call it; there is no unregistered constructor
// because a histogram that is never rendered has no reason to exist.
func newHistogram(bounds []time.Duration) *Histogram {
	if len(bounds) == 0 {
		bounds = DefLatencyBounds
	}
	for i, b := range bounds {
		if b <= 0 || (i > 0 && b <= bounds[i-1]) {
			panic(fmt.Sprintf("obs: histogram bounds must ascend and be positive, got %v", bounds))
		}
	}
	return &Histogram{
		bounds:  bounds,
		buckets: make([]atomic.Int64, len(bounds)+1),
	}
}

// Observe counts one duration. Negative observations clamp to zero (clock
// adjustments mid-measurement).
//
//trips:zeroalloc
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	if d < 0 {
		d = 0
	}
	i := 0
	for i < len(h.bounds) && d > h.bounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.Add(int64(d))
	for {
		cur := h.max.Load()
		if int64(d) <= cur || h.max.CompareAndSwap(cur, int64(d)) {
			break
		}
	}
}

// ObserveSince observes the elapsed wall time since start.
func (h *Histogram) ObserveSince(start time.Time) {
	if h != nil {
		h.Observe(time.Since(start))
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the exact sum of all observations.
func (h *Histogram) Sum() time.Duration {
	if h == nil {
		return 0
	}
	return time.Duration(h.sum.Load())
}

// Quantile estimates the q-quantile (0 < q < 1) by linear interpolation
// inside the covering bucket; the open last bucket interpolates toward the
// observed maximum. The estimate is taken over a point-in-time bucket
// snapshot, so it is consistent under concurrent Observe calls up to the
// usual histogram quantization error.
func (h *Histogram) Quantile(q float64) time.Duration {
	if h == nil {
		return 0
	}
	counts := make([]int64, len(h.buckets))
	var total int64
	for i := range h.buckets {
		counts[i] = h.buckets[i].Load()
		total += counts[i]
	}
	if total == 0 {
		return 0
	}
	max := time.Duration(h.max.Load())
	target := q * float64(total)
	var cum float64
	for i, n := range counts {
		if n == 0 {
			continue
		}
		next := cum + float64(n)
		if target <= next {
			lo := time.Duration(0)
			if i > 0 {
				lo = h.bounds[i-1]
			}
			hi := max
			if i < len(h.bounds) {
				hi = h.bounds[i]
			}
			if hi < lo {
				hi = lo
			}
			frac := (target - cum) / float64(n)
			return lo + time.Duration(frac*float64(hi-lo))
		}
		cum = next
	}
	return max
}

// HistogramSnapshot is a point-in-time summary of a histogram — the
// p50/p99 view the /stats-style JSON endpoints embed.
type HistogramSnapshot struct {
	Count int64         `json:"count"`
	Mean  time.Duration `json:"mean"`
	P50   time.Duration `json:"p50"`
	P99   time.Duration `json:"p99"`
	Max   time.Duration `json:"max"`
}

// Snapshot summarizes the histogram (zero value for nil or empty).
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	n := h.count.Load()
	if n == 0 {
		return HistogramSnapshot{}
	}
	return HistogramSnapshot{
		Count: n,
		Mean:  time.Duration(h.sum.Load() / n),
		P50:   h.Quantile(0.50),
		P99:   h.Quantile(0.99),
		Max:   time.Duration(h.max.Load()),
	}
}

// metricKind discriminates family types for TYPE lines and rendering.
type metricKind uint8

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// series is one labeled instance of a family: exactly one of the value
// fields is set. Func-backed series read through their closure at render
// time — the bridge for pre-existing atomic stats (engine counters) that
// should not be double-counted into new metric objects.
type series struct {
	labels string // rendered `k1="v1",k2="v2"` body, "" for unlabeled
	c      *Counter
	g      *Gauge
	h      *Histogram
	cf     func() int64   // counter func
	gf     func() float64 // gauge func
}

// family is every series sharing one metric name (and therefore one HELP
// and TYPE line).
type family struct {
	name   string
	help   string
	kind   metricKind
	series []*series
}

// Registry holds registered metrics and renders them. Registration
// happens at wiring time (it takes a lock and validates names); the
// returned metric objects are then written to without touching the
// registry again. The zero value is not usable; call NewRegistry.
type Registry struct {
	mu       sync.RWMutex
	families []*family
	byName   map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

// metricNameValid is the Prometheus metric-name grammar.
func metricNameValid(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		alpha := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')
		if !alpha && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return true
}

// renderLabels formats variadic k,v pairs deterministically (sorted by
// key) with Prometheus escaping. Registration-time only.
func renderLabels(kv []string) string {
	if len(kv) == 0 {
		return ""
	}
	if len(kv)%2 != 0 {
		panic("obs: labels must be key,value pairs")
	}
	type pair struct{ k, v string }
	pairs := make([]pair, 0, len(kv)/2)
	for i := 0; i < len(kv); i += 2 {
		if !metricNameValid(kv[i]) || strings.Contains(kv[i], ":") {
			panic(fmt.Sprintf("obs: bad label name %q", kv[i]))
		}
		pairs = append(pairs, pair{kv[i], kv[i+1]})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	var b strings.Builder
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p.k)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(p.v))
		b.WriteByte('"')
	}
	return b.String()
}

func escapeLabelValue(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// register files one series under name, creating or extending its family.
// Mismatched kinds or duplicate label sets under one name are programming
// errors and panic at wiring time.
func (r *Registry) register(name, help string, kind metricKind, s *series) {
	if !metricNameValid(name) {
		panic(fmt.Sprintf("obs: bad metric name %q", name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.byName[name]
	if f == nil {
		f = &family{name: name, help: help, kind: kind}
		r.byName[name] = f
		r.families = append(r.families, f)
	} else if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %s re-registered as %s, was %s", name, kind, f.kind))
	}
	for _, prev := range f.series {
		if prev.labels == s.labels {
			panic(fmt.Sprintf("obs: duplicate series %s{%s}", name, s.labels))
		}
	}
	f.series = append(f.series, s)
}

// Counter registers and returns a counter. labels are optional k,v pairs
// rendered on every sample (constant per series; register one counter per
// label combination).
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	c := new(Counter)
	r.register(name, help, kindCounter, &series{labels: renderLabels(labels), c: c})
	return c
}

// CounterFunc registers a counter whose value is read through fn at
// render time — the bridge for counters that already exist as atomic
// fields elsewhere (engine stats) and must not be double-maintained.
func (r *Registry) CounterFunc(name, help string, fn func() int64, labels ...string) {
	r.register(name, help, kindCounter, &series{labels: renderLabels(labels), cf: fn})
}

// Gauge registers and returns a gauge.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	g := new(Gauge)
	r.register(name, help, kindGauge, &series{labels: renderLabels(labels), g: g})
	return g
}

// GaugeFunc registers a gauge read through fn at render time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...string) {
	r.register(name, help, kindGauge, &series{labels: renderLabels(labels), gf: fn})
}

// Histogram registers and returns a histogram with the given bucket
// bounds (nil selects DefLatencyBounds).
func (r *Registry) Histogram(name, help string, bounds []time.Duration, labels ...string) *Histogram {
	h := newHistogram(bounds)
	r.register(name, help, kindHistogram, &series{labels: renderLabels(labels), h: h})
	return h
}
