package obs

import (
	"log/slog"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"trips/internal/obs/trace"
)

func testRegistry(t *testing.T) (*Registry, *Counter, *Gauge, *Histogram) {
	t.Helper()
	r := NewRegistry()
	c := r.Counter("test_ops_total", "Operations.", "kind", "write")
	g := r.Gauge("test_depth", "Queue depth.")
	h := r.Histogram("test_op_seconds", "Operation latency.", nil)
	return r, c, g, h
}

// TestPrometheusTextFormat renders a populated registry and checks the
// output through the strict parser: every sample typed, labels
// well-formed, values parseable, histogram series complete.
func TestPrometheusTextFormat(t *testing.T) {
	r, c, g, h := testRegistry(t)
	r.CounterFunc("test_derived_total", "Bridged counter.", func() int64 { return 42 })
	r.GaugeFunc("test_watermark_seconds", "Bridged gauge.", func() float64 { return 1483264800.5 })
	r.Counter("test_ops_total", "Operations.", "kind", "read")
	r.Histogram("test_stage_seconds", "Stage latency.", nil, "stage", "clean")
	r.Histogram("test_stage_seconds", "Stage latency.", nil, "stage", "annotate")

	c.Add(7)
	g.Set(3.5)
	for _, d := range []time.Duration{time.Microsecond, time.Millisecond, 40 * time.Millisecond, 3 * time.Second, time.Hour} {
		h.Observe(d)
	}

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	samples, err := ParseExposition(strings.NewReader(out))
	if err != nil {
		t.Fatalf("output does not parse: %v\n%s", err, out)
	}
	for key, want := range map[string]float64{
		`test_ops_total{kind="write"}`:      7,
		`test_ops_total{kind="read"}`:       0,
		"test_depth":                        3.5,
		"test_derived_total":                42,
		"test_watermark_seconds":            1483264800.5,
		"test_op_seconds_count":             5,
		`test_op_seconds_bucket{le="+Inf"}`: 5,
	} {
		if got, ok := samples[key]; !ok {
			t.Errorf("missing sample %s\n%s", key, out)
		} else if got != want {
			t.Errorf("%s = %v, want %v", key, got, want)
		}
	}
	// Cumulative buckets are monotone and end at the count.
	var prev float64
	for _, bound := range DefLatencyBounds {
		key := `test_op_seconds_bucket{le="` + formatFloat(bound.Seconds()) + `"}`
		v, ok := samples[key]
		if !ok {
			t.Fatalf("missing bucket %s", key)
		}
		if v < prev {
			t.Errorf("bucket %s = %v < previous %v (not cumulative)", key, v, prev)
		}
		prev = v
	}
	if samples[`test_op_seconds_bucket{le="+Inf"}`] < prev {
		t.Error("+Inf bucket below the last bounded bucket")
	}
	// The labeled histogram families must render under one TYPE line each.
	if n := strings.Count(out, "# TYPE test_stage_seconds "); n != 1 {
		t.Errorf("test_stage_seconds has %d TYPE lines, want 1", n)
	}
}

// TestHistogramQuantilesMonotone feeds a random workload and requires the
// quantile estimates to be ordered and bounded by the observed extremes.
func TestHistogramQuantilesMonotone(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_q_seconds", "q", nil)
	rng := rand.New(rand.NewSource(7))
	var max time.Duration
	for i := 0; i < 5000; i++ {
		d := time.Duration(rng.Int63n(int64(12 * time.Second)))
		if d > max {
			max = d
		}
		h.Observe(d)
	}
	qs := []float64{0.01, 0.10, 0.50, 0.90, 0.99, 0.999}
	var prev time.Duration
	for _, q := range qs {
		v := h.Quantile(q)
		if v < prev {
			t.Errorf("quantile(%v) = %v < quantile below it = %v", q, v, prev)
		}
		if v < 0 || v > max {
			t.Errorf("quantile(%v) = %v outside [0, %v]", q, v, max)
		}
		prev = v
	}
	snap := h.Snapshot()
	if snap.Count != 5000 || snap.P50 > snap.P99 || snap.P99 > snap.Max {
		t.Errorf("snapshot not ordered: %+v", snap)
	}
}

// TestWriteSideZeroAlloc guards the hot-path contract: observing and
// counting must not allocate (the ingest route's AllocsPerRun test depends
// on it).
//
//trips:guards Counter.Inc
//trips:guards Counter.Add
//trips:guards Gauge.Set
//trips:guards Histogram.Observe
func TestWriteSideZeroAlloc(t *testing.T) {
	_, c, g, h := testRegistry(t)
	if avg := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(3)
		g.Set(4.2)
		h.Observe(87 * time.Millisecond)
	}); avg != 0 {
		t.Errorf("write side allocates %.1f times per op, want 0", avg)
	}
	// Nil metrics are free too — disabled instrumentation must cost only
	// the nil checks.
	var nc *Counter
	var ng *Gauge
	var nh *Histogram
	if avg := testing.AllocsPerRun(1000, func() {
		nc.Inc()
		ng.Set(1)
		nh.Observe(time.Second)
	}); avg != 0 {
		t.Errorf("nil metrics allocate %.1f times per op, want 0", avg)
	}
	if nc.Value() != 0 || ng.Value() != 0 || nh.Count() != 0 || nh.Quantile(0.5) != 0 {
		t.Error("nil metric reads are not zero")
	}
	if (nh.Snapshot() != HistogramSnapshot{}) {
		t.Error("nil histogram snapshot not zero")
	}
}

// TestConcurrentObserveAndScrape hammers every primitive from writer
// goroutines while scraping; run under -race this is the concurrency
// proof, and the final render must still parse.
func TestConcurrentObserveAndScrape(t *testing.T) {
	r, c, g, h := testRegistry(t)
	r.GaugeFunc("test_fn", "fn", func() float64 { return float64(c.Value()) })
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				c.Inc()
				g.Set(rng.Float64())
				h.Observe(time.Duration(rng.Int63n(int64(time.Second))))
			}
		}(int64(i))
	}
	for i := 0; i < 50; i++ {
		var b strings.Builder
		if err := r.WritePrometheus(&b); err != nil {
			t.Fatal(err)
		}
		if _, err := ParseExposition(strings.NewReader(b.String())); err != nil {
			t.Fatalf("scrape %d does not parse: %v", i, err)
		}
	}
	close(stop)
	wg.Wait()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	samples, err := ParseExposition(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if samples[`test_ops_total{kind="write"}`] != float64(c.Value()) {
		t.Error("final render out of sync with counter")
	}
}

// TestRegistryPanics locks the wiring-time misuse diagnostics.
func TestRegistryPanics(t *testing.T) {
	expectPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	r := NewRegistry()
	r.Counter("dup_total", "d")
	expectPanic("kind mismatch", func() { r.Gauge("dup_total", "d") })
	expectPanic("duplicate series", func() { r.Counter("dup_total", "d") })
	expectPanic("bad name", func() { r.Counter("bad name", "d") })
	expectPanic("odd labels", func() { r.Counter("odd_total", "d", "k") })
	expectPanic("bad bounds", func() {
		r.Histogram("h_seconds", "d", []time.Duration{time.Second, time.Millisecond})
	})
}

// TestMiddlewareAndHealth drives the HTTP plumbing: status classes
// counted, latency observed, access line logged, health endpoints answer.
func TestMiddlewareAndHealth(t *testing.T) {
	r := NewRegistry()
	m := NewHTTPMetrics(r, "test")
	var logBuf strings.Builder
	logger := slog.New(slog.NewTextHandler(&logBuf, nil))
	inner := http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path == "/missing" {
			http.NotFound(w, req)
			return
		}
		w.Write([]byte("hello"))
	})
	h := Middleware(m, logger, nil, inner)

	for _, path := range []string{"/", "/missing", "/"} {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
	}
	if got := m.ByClass[2].Value(); got != 2 {
		t.Errorf("2xx count = %d, want 2", got)
	}
	if got := m.ByClass[4].Value(); got != 1 {
		t.Errorf("4xx count = %d, want 1", got)
	}
	if m.Latency.Count() != 3 {
		t.Errorf("latency count = %d, want 3", m.Latency.Count())
	}
	logs := logBuf.String()
	for _, want := range []string{"method=GET", "path=/missing", "status=404", "duration=", "bytes="} {
		if !strings.Contains(logs, want) {
			t.Errorf("access log missing %q:\n%s", want, logs)
		}
	}

	rec := httptest.NewRecorder()
	HealthHandler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusOK {
		t.Errorf("healthz = %d", rec.Code)
	}
	ready := false
	rh := ReadyHandler(func() bool { return ready })
	rec = httptest.NewRecorder()
	rh.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/readyz", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Errorf("readyz before ready = %d, want 503", rec.Code)
	}
	ready = true
	rec = httptest.NewRecorder()
	rh.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/readyz", nil))
	if rec.Code != http.StatusOK {
		t.Errorf("readyz after ready = %d, want 200", rec.Code)
	}
}

// TestMetricsHandler scrapes the registry over HTTP.
func TestMetricsHandler(t *testing.T) {
	r, c, _, _ := testRegistry(t)
	c.Add(5)
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Errorf("content type = %q", ct)
	}
	samples, err := ParseExposition(rec.Body)
	if err != nil {
		t.Fatal(err)
	}
	if samples[`test_ops_total{kind="write"}`] != 5 {
		t.Error("scrape missing counter value")
	}
	rec = httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/metrics", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("POST /metrics = %d, want 405", rec.Code)
	}
}

// TestParseExpositionRejects locks the validator's strictness — the
// format guarantees the /metrics tests rely on.
func TestParseExpositionRejects(t *testing.T) {
	bad := map[string]string{
		"untyped sample":    "some_total 3\n",
		"bad value":         "# TYPE x_total counter\nx_total three\n",
		"bad name":          "# TYPE x_total counter\n3x{a=\"b\"} 1\n",
		"unterminated":      "# TYPE x gauge\nx{a=\"b 1\n",
		"duplicate sample":  "# TYPE x gauge\nx 1\nx 2\n",
		"duplicate TYPE":    "# TYPE x gauge\n# TYPE x counter\nx 1\n",
		"bad TYPE":          "# TYPE x matrix\nx 1\n",
		"junk after labels": "# TYPE x gauge\nx{a=\"b\"c} 1\n",
	}
	for name, in := range bad {
		if _, err := ParseExposition(strings.NewReader(in)); err == nil {
			t.Errorf("%s accepted:\n%s", name, in)
		}
	}
	good := "# HELP y_seconds histogram with labels\n" +
		"# TYPE y_seconds histogram\n" +
		"y_seconds_bucket{stage=\"clean\",le=\"0.005\"} 1\n" +
		"y_seconds_bucket{stage=\"clean\",le=\"+Inf\"} 2\n" +
		"y_seconds_sum{stage=\"clean\"} 0.01\n" +
		"y_seconds_count{stage=\"clean\"} 2\n"
	if _, err := ParseExposition(strings.NewReader(good)); err != nil {
		t.Errorf("valid histogram exposition rejected: %v", err)
	}
}

// TestHistogramExemplar locks the metrics→trace link: a traced observation
// sets the exemplar, the slowest traced observation wins, the rendered
// bucket line carries the OpenMetrics-style suffix on the covering bucket,
// and the strict parser both tolerates well-formed exemplars and rejects
// malformed ones.
func TestHistogramExemplar(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_ex_seconds", "Exemplar carrier.", nil)

	h.ObserveTraced(3*time.Millisecond, "aaaabbbbccccddddaaaabbbbccccdddd")
	h.ObserveTraced(80*time.Millisecond, "00112233445566778899aabbccddeeff")
	h.ObserveTraced(2*time.Millisecond, "eeeeffff0000111122223333444455aa") // slower exemplar wins
	h.Observe(time.Second)                                                  // untraced: never an exemplar

	ex, ok := h.Exemplar()
	if !ok || ex.TraceID != "00112233445566778899aabbccddeeff" || ex.Value != 80*time.Millisecond {
		t.Fatalf("exemplar = %+v ok=%v, want the 80ms trace", ex, ok)
	}

	var buf strings.Builder
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// 80ms falls in the le="0.1" bucket; that line must carry the suffix.
	want := `le="0.1"`
	var bucketLine string
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, want) && strings.HasPrefix(line, "test_ex_seconds_bucket") {
			bucketLine = line
		}
	}
	if !strings.Contains(bucketLine, `# {trace_id="00112233445566778899aabbccddeeff"} 0.08`) {
		t.Fatalf("covering bucket has no exemplar:\n%s", bucketLine)
	}
	if got := strings.Count(out, "# {trace_id="); got != 1 {
		t.Fatalf("exemplar count in exposition = %d, want 1:\n%s", got, out)
	}
	if _, err := ParseExposition(strings.NewReader(out)); err != nil {
		t.Fatalf("exposition with exemplar does not parse: %v", err)
	}

	// Nil and empty-ID paths stay inert.
	var nilH *Histogram
	nilH.ObserveTraced(time.Second, "x")
	if _, ok := nilH.Exemplar(); ok {
		t.Fatal("nil histogram has exemplar")
	}
	h2 := r.Histogram("test_ex2_seconds", "No exemplar.", nil)
	h2.ObserveTraced(time.Second, "")
	if _, ok := h2.Exemplar(); ok {
		t.Fatal("empty trace id set an exemplar")
	}

	// Malformed exemplars are rejected by the parser.
	for name, in := range map[string]string{
		"unbraced exemplar":     "# TYPE x gauge\nx 1 # trace_id 0.5\n",
		"unterminated exemplar": "# TYPE x gauge\nx 1 # {trace_id=\"a\" 0.5\n",
		"bad exemplar value":    "# TYPE x gauge\nx 1 # {trace_id=\"a\"} fast\n",
		"bad exemplar labels":   "# TYPE x gauge\nx 1 # {trace id} 0.5\n",
	} {
		if _, err := ParseExposition(strings.NewReader(in)); err == nil {
			t.Errorf("%s accepted:\n%s", name, in)
		}
	}
}

// TestMiddlewareTracing drives the trace side of the middleware: forced
// inbound X-Trace-Id, head sampling, context injection, the response
// header echo, and trace_id on the access-log line.
func TestMiddlewareTracing(t *testing.T) {
	r := NewRegistry()
	m := NewHTTPMetrics(r, "test")
	tracer := trace.New(trace.Config{SampleRate: 0, Terminal: "handler"})
	var logBuf strings.Builder
	logger := slog.New(slog.NewTextHandler(&logBuf, nil))
	var sawCtx trace.Ctx
	inner := http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		sawCtx = trace.FromContext(req.Context())
		sp := tracer.Start(sawCtx, "handler")
		defer sp.End()
		w.Write([]byte("ok"))
	})
	h := Middleware(m, logger, tracer, inner)

	// Forced: the inbound ID is honored, sampled, echoed, and logged.
	const tid = "00112233445566778899aabbccddeeff"
	req := httptest.NewRequest(http.MethodGet, "/x", nil)
	req.Header.Set("X-Trace-Id", tid)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if !sawCtx.Sampled() || !sawCtx.Forced() || sawCtx.Trace.String() != tid {
		t.Fatalf("handler ctx = %+v, want forced %s", sawCtx, tid)
	}
	if got := rec.Header().Get("X-Trace-Id"); got != tid {
		t.Errorf("response X-Trace-Id = %q, want %q", got, tid)
	}
	if !strings.Contains(logBuf.String(), "trace_id="+tid) {
		t.Errorf("access log missing trace_id:\n%s", logBuf.String())
	}
	id, _ := trace.ParseTraceID(tid)
	if got, ok := tracer.Get(id); !ok || !got.Complete || len(got.Spans) != 1 {
		t.Fatalf("forced trace not kept: ok=%v %+v", ok, got)
	}
	// The latency histogram picked up the forced trace as its exemplar.
	if ex, ok := m.Latency.Exemplar(); !ok || ex.TraceID != tid {
		t.Errorf("latency exemplar = %+v ok=%v, want %s", ex, ok, tid)
	}

	// Unsampled (rate 0, no header): an ID is still issued for the log and
	// the header, but nothing records.
	logBuf.Reset()
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/y", nil))
	if sawCtx.Sampled() {
		t.Fatal("rate-0 request sampled")
	}
	if sawCtx.Trace.IsZero() {
		t.Fatal("unsampled request has no correlation id")
	}
	if got := rec.Header().Get("X-Trace-Id"); got != sawCtx.Trace.String() {
		t.Errorf("response X-Trace-Id = %q, want %q", got, sawCtx.Trace.String())
	}
	if !strings.Contains(logBuf.String(), "trace_id="+sawCtx.Trace.String()) {
		t.Errorf("access log missing correlation id:\n%s", logBuf.String())
	}
	if s := tracer.Stats(); s.Sampled != 1 {
		t.Errorf("sampled count = %d, want only the forced trace", s.Sampled)
	}

	// A malformed inbound header falls back to the sampling roll.
	req = httptest.NewRequest(http.MethodGet, "/z", nil)
	req.Header.Set("X-Trace-Id", "not-a-trace-id")
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if sawCtx.Sampled() {
		t.Error("malformed header forced sampling")
	}
}
