package obs

import (
	"bytes"
	"testing"
)

// TestRuntimeMetrics: the runtime gauges render as valid exposition with
// sane values — a live process has a non-zero heap, goroutines, and sys.
func TestRuntimeMetrics(t *testing.T) {
	r := NewRegistry()
	RegisterRuntimeMetrics(r, "trips")
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	samples, err := ParseExposition(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("runtime metrics render invalid exposition: %v\n%s", err, buf.String())
	}
	for _, name := range []string{
		"trips_runtime_heap_alloc_bytes",
		"trips_runtime_heap_sys_bytes",
		"trips_runtime_sys_bytes",
		"trips_runtime_goroutines",
	} {
		v, ok := samples[name]
		if !ok {
			t.Errorf("missing %s in exposition", name)
			continue
		}
		if v <= 0 {
			t.Errorf("%s = %v, want > 0", name, v)
		}
	}
	if _, ok := samples["trips_runtime_gc_total"]; !ok {
		t.Error("missing trips_runtime_gc_total in exposition")
	}
}
