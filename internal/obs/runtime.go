package obs

import (
	"runtime"
	"sync"
	"time"
)

// RegisterRuntimeMetrics exposes the Go runtime's memory and scheduler
// state as pull-time gauges under the given prefix:
//
//	<prefix>_runtime_heap_alloc_bytes   live heap bytes (MemStats.HeapAlloc)
//	<prefix>_runtime_heap_sys_bytes    heap address space held from the OS
//	<prefix>_runtime_sys_bytes         total runtime-managed bytes
//	<prefix>_runtime_goroutines        current goroutine count
//	<prefix>_runtime_gc_total          completed GC cycles
//
// These are the load harness's memory-ceiling source: trips-load scrapes
// heap_alloc across a run and reports the maximum, so a leak on the ingest
// or fold path shows up as a trajectory regression rather than a prod
// incident. runtime.ReadMemStats stops the world; the samples share one
// read per second so a scrape costs at most one pause regardless of how
// many of these gauges it renders.
func RegisterRuntimeMetrics(r *Registry, prefix string) {
	var (
		mu   sync.Mutex
		at   time.Time
		stat runtime.MemStats
	)
	read := func() runtime.MemStats {
		mu.Lock()
		defer mu.Unlock()
		if at.IsZero() || time.Since(at) > time.Second {
			runtime.ReadMemStats(&stat)
			at = time.Now()
		}
		return stat
	}
	r.GaugeFunc(prefix+"_runtime_heap_alloc_bytes",
		"Live heap bytes (runtime.MemStats.HeapAlloc).",
		func() float64 { m := read(); return float64(m.HeapAlloc) })
	r.GaugeFunc(prefix+"_runtime_heap_sys_bytes",
		"Heap address space obtained from the OS (runtime.MemStats.HeapSys).",
		func() float64 { m := read(); return float64(m.HeapSys) })
	r.GaugeFunc(prefix+"_runtime_sys_bytes",
		"Total bytes of memory managed by the Go runtime (runtime.MemStats.Sys).",
		func() float64 { m := read(); return float64(m.Sys) })
	r.GaugeFunc(prefix+"_runtime_goroutines",
		"Current number of goroutines.",
		func() float64 { return float64(runtime.NumGoroutine()) })
	r.CounterFunc(prefix+"_runtime_gc_total",
		"Completed garbage-collection cycles.",
		func() int64 { m := read(); return int64(m.NumGC) })
}
