package obs

import (
	"log/slog"
	"net/http"
	"time"

	"trips/internal/obs/trace"
)

// HTTPMetrics are the server-wide request instruments the Middleware
// maintains: one latency histogram over every request plus per-status-class
// counters (1xx..5xx; index 0 collects the classes that should not exist).
type HTTPMetrics struct {
	Latency *Histogram
	ByClass [6]*Counter
}

// NewHTTPMetrics registers the request metrics under
// <prefix>_http_request_seconds and <prefix>_http_requests_total{code}.
func NewHTTPMetrics(r *Registry, prefix string) *HTTPMetrics {
	m := &HTTPMetrics{
		Latency: r.Histogram(prefix+"_http_request_seconds",
			"HTTP request latency from header receipt to handler return.", nil),
	}
	classes := [6]string{"other", "1xx", "2xx", "3xx", "4xx", "5xx"}
	for i, code := range classes {
		m.ByClass[i] = r.Counter(prefix+"_http_requests_total",
			"HTTP requests served, by status class.", "code", code)
	}
	return m
}

// statusWriter captures the status code and body size of a response. It
// forwards Flush so streaming handlers (the SSE subscription endpoint
// asserts http.Flusher) keep working behind the middleware.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (sw *statusWriter) WriteHeader(code int) {
	if sw.status == 0 {
		sw.status = code
	}
	sw.ResponseWriter.WriteHeader(code)
}

func (sw *statusWriter) Write(p []byte) (int, error) {
	if sw.status == 0 {
		sw.status = http.StatusOK
	}
	n, err := sw.ResponseWriter.Write(p)
	sw.bytes += int64(n)
	return n, err
}

// Flush implements http.Flusher when the underlying writer does.
func (sw *statusWriter) Flush() {
	if f, ok := sw.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Middleware wraps next with request accounting: every request is timed
// and counted into m, and logged to logger at Info as one structured
// access-log line (method, path, status, duration, bytes, trace_id). A nil
// logger disables logging, a nil m disables metrics, a nil tracer disables
// tracing; with all three nil next is returned unwrapped.
//
// With a tracer, the middleware makes the per-request head-sampling
// decision: an inbound well-formed X-Trace-Id header forces the trace
// (sampled and pinned), otherwise Tracer.Sample rolls. The resulting
// context rides in the request context (trace.FromContext) for handlers to
// start spans under, the trace ID is echoed in the X-Trace-Id response
// header and on the access-log line, and sampled requests stamp the
// latency histogram's exemplar.
func Middleware(m *HTTPMetrics, logger *slog.Logger, tracer *trace.Tracer, next http.Handler) http.Handler {
	if m == nil && logger == nil && tracer == nil {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var tc trace.Ctx
		if tracer != nil {
			if id, ok := trace.ParseTraceID(r.Header.Get("X-Trace-Id")); ok {
				tc = tracer.Force(id)
			} else {
				tc = tracer.Sample()
			}
			r = r.WithContext(trace.NewContext(r.Context(), tc))
			w.Header().Set("X-Trace-Id", tc.Trace.String())
		}
		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		next.ServeHTTP(sw, r)
		elapsed := time.Since(start)
		if sw.status == 0 {
			sw.status = http.StatusOK
		}
		if m != nil {
			if tc.Sampled() {
				m.Latency.ObserveTraced(elapsed, tc.Trace.String())
			} else {
				m.Latency.Observe(elapsed)
			}
			class := sw.status / 100
			if class < 1 || class > 5 {
				class = 0
			}
			m.ByClass[class].Inc()
		}
		if logger != nil {
			attrs := []slog.Attr{
				slog.String("method", r.Method),
				slog.String("path", r.URL.Path),
				slog.Int("status", sw.status),
				slog.Duration("duration", elapsed),
				slog.Int64("bytes", sw.bytes),
			}
			if !tc.Trace.IsZero() {
				attrs = append(attrs, slog.String("trace_id", tc.Trace.String()))
			}
			logger.LogAttrs(r.Context(), slog.LevelInfo, "request", attrs...)
		}
	})
}

// HealthHandler answers liveness probes: the process is up and serving.
func HealthHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write([]byte("ok\n"))
	})
}

// ReadyHandler answers readiness probes: 200 once ready() reports true
// (trips-server: dataset translated, warehouse replayed, analytics views
// bootstrapped), 503 before that, so orchestrators hold traffic until the
// views can answer.
func ReadyHandler(ready func() bool) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if ready == nil || ready() {
			w.Write([]byte("ready\n"))
			return
		}
		w.WriteHeader(http.StatusServiceUnavailable)
		w.Write([]byte("starting\n"))
	})
}
