package obs

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
)

// WritePrometheus renders every registered family in the Prometheus text
// exposition format (version 0.0.4): one HELP and TYPE line per family,
// then each series' samples. Histograms render cumulative le-buckets plus
// _sum and _count, with bucket bounds in seconds. Rendering takes the
// registry read lock (registration is wiring-time only, so contention is
// nil) and reads each atomic exactly once per sample; a histogram scraped
// mid-Observe may transiently show count ahead of its +Inf bucket by the
// in-flight observation, which Prometheus tolerates (the next scrape
// converges).
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, f := range r.families {
		if f.help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.kind)
		for _, s := range f.series {
			switch {
			case s.c != nil:
				writeSample(bw, f.name, s.labels, "", float64(s.c.Value()))
			case s.cf != nil:
				writeSample(bw, f.name, s.labels, "", float64(s.cf()))
			case s.g != nil:
				writeSample(bw, f.name, s.labels, "", s.g.Value())
			case s.gf != nil:
				writeSample(bw, f.name, s.labels, "", s.gf())
			case s.h != nil:
				writeHistogram(bw, f.name, s)
			}
		}
	}
	return bw.Flush()
}

// writeHistogram renders one histogram series: cumulative buckets in
// ascending le order, the +Inf bucket, then _sum (seconds) and _count.
// When a traced observation set an exemplar, the covering bucket line
// carries an OpenMetrics-style exemplar suffix — `# {trace_id="..."} v` —
// linking the histogram's extreme to a /debug/traces entry.
func writeHistogram(w io.Writer, name string, s *series) {
	h := s.h
	ex, exOK := h.Exemplar()
	exBucket := -1
	if exOK {
		exBucket = len(h.bounds) // open +Inf bucket unless a bound covers it
		for i, b := range h.bounds {
			if ex.Value <= b {
				exBucket = i
				break
			}
		}
	}
	exSuffix := func(i int) string {
		if i != exBucket {
			return ""
		}
		return ` # {trace_id="` + ex.TraceID + `"} ` + formatFloat(ex.Value.Seconds())
	}
	var cum int64
	for i, b := range h.bounds {
		cum += h.buckets[i].Load()
		writeSampleExemplar(w, name+"_bucket", s.labels,
			`le="`+formatFloat(b.Seconds())+`"`, float64(cum), exSuffix(i))
	}
	cum += h.buckets[len(h.bounds)].Load()
	writeSampleExemplar(w, name+"_bucket", s.labels, `le="+Inf"`, float64(cum),
		exSuffix(len(h.bounds)))
	writeSample(w, name+"_sum", s.labels, "", h.Sum().Seconds())
	writeSample(w, name+"_count", s.labels, "", float64(cum))
}

// writeSample writes one sample line, joining up to two pre-rendered label
// fragments. Counters and bucket counts format without an exponent so
// grep-based CI assertions read them naturally.
func writeSample(w io.Writer, name, l1, l2 string, v float64) {
	writeSampleExemplar(w, name, l1, l2, v, "")
}

// writeSampleExemplar is writeSample with an optional pre-rendered exemplar
// suffix appended after the value.
func writeSampleExemplar(w io.Writer, name, l1, l2 string, v float64, ex string) {
	labels := l1
	if l2 != "" {
		if labels != "" {
			labels += ","
		}
		labels += l2
	}
	if labels != "" {
		fmt.Fprintf(w, "%s{%s} %s%s\n", name, labels, formatFloat(v), ex)
		return
	}
	fmt.Fprintf(w, "%s %s%s\n", name, formatFloat(v), ex)
}

// formatFloat renders a value the shortest way that round-trips; integral
// values under 2^53 render as plain integers.
func formatFloat(v float64) string {
	if v == float64(int64(v)) && v < 1e15 && v > -1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(s string) string {
	return strings.NewReplacer(`\`, `\\`, "\n", `\n`).Replace(s)
}

// Handler returns the GET /metrics endpoint over this registry.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet && req.Method != http.MethodHead {
			http.Error(w, "GET only", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}

// ParseExposition is a strict parser for the Prometheus text format, used
// by the test suites (and scriptable smoke checks) to prove /metrics
// output is well-formed without importing a Prometheus client. It returns
// every sample keyed by "name{labels}" exactly as rendered, and errors on:
// samples without a preceding TYPE, malformed metric names or label
// syntax, unparseable values, and duplicate sample keys.
func ParseExposition(r io.Reader) (map[string]float64, error) {
	samples := make(map[string]float64)
	typed := make(map[string]string) // family name → type
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		if text == "" {
			continue
		}
		if strings.HasPrefix(text, "#") {
			kind, name, rest, err := parseComment(text)
			if err != nil {
				return nil, fmt.Errorf("line %d: %w", line, err)
			}
			if kind == "TYPE" {
				switch rest {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return nil, fmt.Errorf("line %d: bad TYPE %q", line, rest)
				}
				if _, dup := typed[name]; dup {
					return nil, fmt.Errorf("line %d: duplicate TYPE for %s", line, name)
				}
				typed[name] = rest
			}
			continue
		}
		name, labels, value, err := parseSample(text)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", line, err)
		}
		base := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(name,
			"_bucket"), "_sum"), "_count")
		if _, ok := typed[name]; !ok {
			if _, ok := typed[base]; !ok {
				return nil, fmt.Errorf("line %d: sample %s has no TYPE", line, name)
			}
		}
		key := name
		if labels != "" {
			key += "{" + labels + "}"
		}
		if _, dup := samples[key]; dup {
			return nil, fmt.Errorf("line %d: duplicate sample %s", line, key)
		}
		samples[key] = value
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return samples, nil
}

func parseComment(text string) (kind, name, rest string, err error) {
	fields := strings.SplitN(text, " ", 4)
	if len(fields) < 3 || fields[0] != "#" {
		return "", "", "", fmt.Errorf("bad comment %q", text)
	}
	kind = fields[1]
	if kind != "HELP" && kind != "TYPE" {
		return "", "", "", fmt.Errorf("bad comment kind %q", kind)
	}
	name = fields[2]
	if !metricNameValid(name) {
		return "", "", "", fmt.Errorf("bad metric name %q", name)
	}
	if len(fields) == 4 {
		rest = fields[3]
	}
	return kind, name, rest, nil
}

func parseSample(text string) (name, labels string, value float64, err error) {
	rest := text
	// An OpenMetrics-style exemplar suffix (` # {labels} value`) must be
	// cut before label extraction — its braces would otherwise corrupt the
	// first-{ / last-} scan below. The suffix itself is validated: braced
	// well-formed labels followed by a parseable value. (Our label values
	// never contain " # ", so the first occurrence is the boundary.)
	if i := strings.Index(rest, " # "); i >= 0 {
		ex := strings.TrimSpace(rest[i+3:])
		if !strings.HasPrefix(ex, "{") {
			return "", "", 0, fmt.Errorf("bad exemplar in %q", text)
		}
		j := strings.IndexByte(ex, '}')
		if j < 0 {
			return "", "", 0, fmt.Errorf("unterminated exemplar in %q", text)
		}
		if err := checkLabelSyntax(ex[1:j]); err != nil {
			return "", "", 0, fmt.Errorf("bad exemplar labels: %w in %q", err, text)
		}
		if _, perr := strconv.ParseFloat(strings.TrimSpace(ex[j+1:]), 64); perr != nil {
			return "", "", 0, fmt.Errorf("bad exemplar value in %q: %v", text, perr)
		}
		rest = rest[:i]
	}
	if i := strings.IndexByte(rest, '{'); i >= 0 {
		name = rest[:i]
		j := strings.LastIndexByte(rest, '}')
		if j < i {
			return "", "", 0, fmt.Errorf("unterminated labels in %q", text)
		}
		labels = rest[i+1 : j]
		if err := checkLabelSyntax(labels); err != nil {
			return "", "", 0, fmt.Errorf("%w in %q", err, text)
		}
		rest = strings.TrimSpace(rest[j+1:])
	} else {
		fields := strings.Fields(rest)
		if len(fields) != 2 {
			return "", "", 0, fmt.Errorf("bad sample %q", text)
		}
		name, rest = fields[0], fields[1]
	}
	if !metricNameValid(name) {
		return "", "", 0, fmt.Errorf("bad metric name %q", name)
	}
	v, perr := strconv.ParseFloat(strings.TrimSpace(rest), 64)
	if perr != nil {
		return "", "", 0, fmt.Errorf("bad value in %q: %v", text, perr)
	}
	return name, labels, v, nil
}

// checkLabelSyntax validates a rendered label body: name="value" pairs,
// comma-separated, with closed quotes.
func checkLabelSyntax(labels string) error {
	rest := labels
	for rest != "" {
		eq := strings.IndexByte(rest, '=')
		if eq <= 0 {
			return fmt.Errorf("bad label pair %q", rest)
		}
		lname := rest[:eq]
		// le="+Inf" etc: label names share the metric grammar minus colons.
		if !metricNameValid(lname) || strings.Contains(lname, ":") {
			return fmt.Errorf("bad label name %q", lname)
		}
		rest = rest[eq+1:]
		if len(rest) < 2 || rest[0] != '"' {
			return fmt.Errorf("unquoted label value after %q", lname)
		}
		rest = rest[1:]
		end := -1
		for i := 0; i < len(rest); i++ {
			if rest[i] == '\\' {
				i++
				continue
			}
			if rest[i] == '"' {
				end = i
				break
			}
		}
		if end < 0 {
			return fmt.Errorf("unterminated label value for %q", lname)
		}
		rest = rest[end+1:]
		if rest != "" {
			if rest[0] != ',' {
				return fmt.Errorf("junk after label %q", lname)
			}
			rest = rest[1:]
		}
	}
	return nil
}
