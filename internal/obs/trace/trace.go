// Package trace is the in-process distributed-tracing core of TRIPS:
// 128-bit trace IDs, sampled span recording over lock-free per-slot
// buffers, and a bounded in-memory ring of completed traces with
// tail-based keep decisions. It is dependency-free (stdlib only) and — by
// design — imports nothing else from this repository, so every layer a
// record crosses (HTTP ingest, the online engine's shards, the warehouse,
// the analytics fold) can carry a Ctx without import cycles.
//
// # Sampling model
//
// The keep/drop decision is made once per request at ingest admission
// (head sampling): Tracer.Sample rolls against the configured rate, and an
// inbound X-Trace-Id header forces sampling (Tracer.Force) so a client or
// a CI smoke test can always get its trace back. Unsampled requests still
// receive a trace ID — logs correlate either way — but their Ctx carries
// no Sampled flag, Start returns an inert SpanRec, and nothing is written
// to any buffer: the untraced hot path stays allocation-free.
//
// On top of head sampling sits a tail-based always-keep: a completed trace
// is pinned against ring eviction when it was slow (total duration over
// Config.KeepOver), hit an error (429 push-back, a failed warehouse
// append, a late-record drop), or was forced. The ring therefore holds a
// rolling window of recent traces in which the pathological ones survive
// longest — exactly the ones an SLO regression needs to explain itself.
//
// # Concurrency
//
// Span recording is lock-free: the finished span is published into one of
// a few fixed-size slot buffers by an atomic index reservation plus an
// atomic pointer swap (overwriting the oldest unread span when a slot
// laps, counted as a drop). Assembly — draining the slots, grouping spans
// by trace, deciding completion and keep — runs under one mutex, triggered
// by queries and opportunistically by recording; the hot path never waits
// on it (it only TryLocks).
package trace

import (
	"encoding/binary"
	"encoding/hex"
	"sync"
	"sync/atomic"
	"time"
)

// TraceID is a 128-bit trace identifier, rendered as 32 hex digits.
type TraceID [16]byte

// IsZero reports whether the ID is unset.
func (id TraceID) IsZero() bool { return id == TraceID{} }

// String renders the ID as 32 lowercase hex digits.
func (id TraceID) String() string {
	var b [32]byte
	hex.Encode(b[:], id[:])
	return string(b[:])
}

// ParseTraceID parses a 32-hex-digit trace ID (the X-Trace-Id wire form).
// The all-zero ID is rejected: it is the "no trace" sentinel.
func ParseTraceID(s string) (TraceID, bool) {
	var id TraceID
	if len(s) != 32 {
		return TraceID{}, false
	}
	if _, err := hex.Decode(id[:], []byte(s)); err != nil || id.IsZero() {
		return TraceID{}, false
	}
	return id, true
}

// SpanID is a 64-bit span identifier within a trace.
type SpanID [8]byte

// IsZero reports whether the ID is unset.
func (id SpanID) IsZero() bool { return id == SpanID{} }

// String renders the ID as 16 lowercase hex digits.
func (id SpanID) String() string {
	var b [16]byte
	hex.Encode(b[:], id[:])
	return string(b[:])
}

// Ctx flag bits.
const (
	// FlagSampled marks a context whose spans are recorded. Contexts
	// without it are log-correlation-only: they carry an ID but no span
	// ever records under them.
	FlagSampled uint8 = 1 << iota
	// FlagForced marks a trace pinned by the caller (inbound X-Trace-Id);
	// forced traces are always kept in the completed ring.
	FlagForced
)

// Ctx is the trace context that travels with a record through the
// pipeline. It is a small value type — no pointers, no allocation — so it
// rides inside the online engine's by-value shard messages and emissions
// without putting a heap allocation on the ingest route. The zero Ctx
// means "untraced" and makes every operation on it a no-op.
type Ctx struct {
	Trace TraceID
	// Span is the parent span for anything started from this context.
	Span  SpanID
	Flags uint8
	// Enq is a UnixNano enqueue stamp set when the context enters an
	// asynchronous hop (the shard inbox); the dequeuing side turns it into
	// an explicit queue-wait span. Zero when unused.
	Enq int64
}

// Sampled reports whether spans under this context are recorded.
func (c Ctx) Sampled() bool { return c.Flags&FlagSampled != 0 }

// Forced reports whether the trace was pinned by the caller.
func (c Ctx) Forced() bool { return c.Flags&FlagForced != 0 }

// Span is one recorded operation of a trace.
type Span struct {
	Trace  TraceID
	ID     SpanID
	Parent SpanID
	Name   string
	// Device and Shard attribute the span to the pipeline entity that ran
	// it; Shard is -1 when not applicable.
	Device string
	Shard  int
	// Err marks a failed operation; Keep requests tail-keep for the whole
	// trace (errors imply it).
	Err  bool
	Keep bool
	Start,
	End time.Time
}

// Duration is the span's wall-clock extent.
func (s Span) Duration() time.Duration { return s.End.Sub(s.Start) }

// Config parameterizes a Tracer. The zero value of every field selects a
// sensible default; a zero SampleRate disables head sampling (forced
// traces still record).
type Config struct {
	// SampleRate is the head-sampling probability in [0, 1].
	SampleRate float64

	// Slots is the number of independent lock-free span buffers recording
	// fans across; SlotSpans is each buffer's capacity. Defaults 8 × 256.
	Slots     int
	SlotSpans int

	// RingSize bounds the completed-trace ring. Default 256.
	RingSize int

	// KeepOver is the tail-keep latency threshold: a completed trace at
	// least this slow end-to-end is pinned against ring eviction. Default
	// 250ms.
	KeepOver time.Duration

	// Linger is how long an incomplete trace may stay quiet before it is
	// finalized as-is (its terminal span never arrived — a record that
	// sealed nothing, a fold that never happened). Default 5s.
	Linger time.Duration

	// Terminal is the span name whose completion finalizes a trace
	// immediately at the next drain. Default "analytics_fold", the last
	// synchronous stage of the ingest pipeline.
	Terminal string
}

func (c *Config) applyDefaults() {
	if c.Slots <= 0 {
		c.Slots = 8
	}
	if c.SlotSpans <= 0 {
		c.SlotSpans = 256
	}
	if c.RingSize <= 0 {
		c.RingSize = 256
	}
	if c.KeepOver <= 0 {
		c.KeepOver = 250 * time.Millisecond
	}
	if c.Linger <= 0 {
		c.Linger = 5 * time.Second
	}
	if c.Terminal == "" {
		c.Terminal = "analytics_fold"
	}
}

// Tracer records sampled spans and assembles them into completed traces.
// All recording methods are nil-receiver-safe no-ops, so instrumented
// packages hold a plain *Tracer and skip every guard.
type Tracer struct {
	cfg Config
	// threshold is the head-sampling cut on a uniform uint64 roll; all
	// short-circuits rate >= 1 so tests get deterministic full sampling.
	threshold uint64
	all       bool
	rng       atomic.Uint64

	slots []slot

	sampled      atomic.Int64 // traces started (head-sampled or forced)
	droppedSpans atomic.Int64 // spans overwritten in a lapped slot
	kept         atomic.Int64 // completed traces that entered the ring
	evicted      atomic.Int64 // completed traces evicted from the ring

	mu      sync.Mutex
	pending map[TraceID]*pendingTrace
	ring    []*Trace // completed traces, oldest first
	index   map[TraceID]*Trace
}

// slot is one lock-free span buffer: writers reserve a position with an
// atomic add and publish the span with an atomic pointer swap; the drainer
// swaps cells back to nil. A non-nil pointer displaced by a writer is a
// span the drainer never saw — a drop, counted but harmless.
type slot struct {
	n   atomic.Uint64
	buf []atomic.Pointer[Span]
}

// New returns a Tracer with the given configuration.
func New(cfg Config) *Tracer {
	cfg.applyDefaults()
	t := &Tracer{
		cfg:     cfg,
		all:     cfg.SampleRate >= 1,
		pending: make(map[TraceID]*pendingTrace),
		index:   make(map[TraceID]*Trace),
		slots:   make([]slot, cfg.Slots),
	}
	if cfg.SampleRate > 0 && !t.all {
		t.threshold = uint64(cfg.SampleRate * float64(^uint64(0)))
	}
	for i := range t.slots {
		t.slots[i].buf = make([]atomic.Pointer[Span], cfg.SlotSpans)
	}
	t.rng.Store(uint64(time.Now().UnixNano()) | 1)
	return t
}

// rand64 is a splitmix64 step over an atomic state: statistically fine for
// sampling and ID generation, and allocation-free.
func (t *Tracer) rand64() uint64 {
	x := t.rng.Add(0x9e3779b97f4a7c15)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Sample makes the head-sampling decision for one request. The returned
// context always carries a fresh trace ID — access logs correlate even for
// unsampled requests — but only a winning roll sets the Sampled flag, and
// only sampled contexts ever write to the span buffers. Allocation-free.
//
//trips:zeroalloc
func (t *Tracer) Sample() Ctx {
	if t == nil {
		return Ctx{}
	}
	roll := t.rand64()
	var c Ctx
	binary.BigEndian.PutUint64(c.Trace[0:8], roll)
	binary.BigEndian.PutUint64(c.Trace[8:16], t.rand64())
	if t.all || (t.threshold > 0 && roll < t.threshold) {
		c.Flags = FlagSampled
		t.sampled.Add(1)
	}
	return c
}

// Force returns a sampled, pinned context on the given trace ID — the
// inbound X-Trace-Id path. Forced traces bypass the sampling roll and are
// always kept in the completed ring.
//
//trips:zeroalloc
func (t *Tracer) Force(id TraceID) Ctx {
	if t == nil || id.IsZero() {
		return Ctx{}
	}
	t.sampled.Add(1)
	return Ctx{Trace: id, Flags: FlagSampled | FlagForced}
}

// SpanRec is an in-progress span. The zero value (returned for unsampled
// contexts or a nil tracer) is inert: every method is a no-op, so call
// sites need no sampling guards. End (or EndAt) records the span; a
// SpanRec that is never ended is silently discarded — the mechanism the
// engine uses to drop stage spans of flushes that sealed nothing.
type SpanRec struct {
	t *Tracer
	s Span
}

// Start opens a span under parent. Inert when the tracer is nil or the
// parent is unsampled.
//
//trips:zeroalloc
func (t *Tracer) Start(parent Ctx, name string) SpanRec {
	if t == nil || !parent.Sampled() {
		return SpanRec{}
	}
	sr := SpanRec{t: t, s: Span{
		Trace:  parent.Trace,
		Parent: parent.Span,
		Name:   name,
		Shard:  -1,
		Keep:   parent.Forced(),
		Start:  time.Now(),
	}}
	binary.BigEndian.PutUint64(sr.s.ID[:], t.rand64())
	return sr
}

// Active reports whether the span will record.
//
//trips:zeroalloc
func (sr *SpanRec) Active() bool { return sr.t != nil }

// Ctx returns the context for child spans of this one, preserving the
// forced pin.
//
//trips:zeroalloc
func (sr *SpanRec) Ctx() Ctx {
	if sr.t == nil {
		return Ctx{}
	}
	f := FlagSampled
	if sr.s.Keep {
		f |= FlagForced
	}
	return Ctx{Trace: sr.s.Trace, Span: sr.s.ID, Flags: f}
}

// SetDevice attributes the span to a device.
//
//trips:zeroalloc
func (sr *SpanRec) SetDevice(dev string) {
	if sr.t != nil {
		sr.s.Device = dev
	}
}

// SetShard attributes the span to a worker shard.
//
//trips:zeroalloc
func (sr *SpanRec) SetShard(id int) {
	if sr.t != nil {
		sr.s.Shard = id
	}
}

// SetErr marks the span failed; an errored span pins its whole trace.
//
//trips:zeroalloc
func (sr *SpanRec) SetErr() {
	if sr.t != nil {
		sr.s.Err = true
		sr.s.Keep = true
	}
}

// SetKeep pins the trace without marking an error (force-seal and similar
// noteworthy-but-not-failed events).
//
//trips:zeroalloc
func (sr *SpanRec) SetKeep() {
	if sr.t != nil {
		sr.s.Keep = true
	}
}

// SetStart back-dates the span (queue-wait spans whose extent was measured
// before the span object existed).
//
//trips:zeroalloc
func (sr *SpanRec) SetStart(at time.Time) {
	if sr.t != nil && !at.IsZero() {
		sr.s.Start = at
	}
}

// End records the span now. Idempotent: the second End is a no-op.
func (sr *SpanRec) End() {
	if sr.t == nil {
		return
	}
	sr.EndAt(time.Now())
}

// EndAt records the span with an explicit end instant.
func (sr *SpanRec) EndAt(at time.Time) {
	if sr.t == nil {
		return
	}
	sr.s.End = at
	sr.t.record(sr.s)
	sr.t = nil
}

// record publishes one finished span into a slot buffer. Lock-free: the
// only coordination is the atomic reservation and pointer swap. Every so
// often it opportunistically tries to drain, so traces complete even when
// nobody queries — but only tries, never waits.
func (t *Tracer) record(s Span) {
	sl := &t.slots[uint(s.Trace[15])%uint(len(t.slots))]
	pos := sl.n.Add(1) - 1
	sp := new(Span)
	*sp = s
	if old := sl.buf[pos%uint64(len(sl.buf))].Swap(sp); old != nil {
		t.droppedSpans.Add(1)
	}
	if (pos+1)%uint64(len(sl.buf)/2) == 0 {
		t.tryDrain()
	}
}

func (t *Tracer) tryDrain() {
	if t.mu.TryLock() {
		t.drainLocked(time.Now())
		t.mu.Unlock()
	}
}

// Drain flushes every slot buffer into the assembly state and finalizes
// traces that completed or exceeded the linger window. Queries drain
// implicitly; tests call it to make completion deterministic.
func (t *Tracer) Drain() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.drainLocked(time.Now())
	t.mu.Unlock()
}
