package trace

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestTraceIDParseFormat(t *testing.T) {
	id, ok := ParseTraceID("00112233445566778899aabbccddeeff")
	if !ok {
		t.Fatal("valid trace id rejected")
	}
	if got := id.String(); got != "00112233445566778899aabbccddeeff" {
		t.Fatalf("round trip = %q", got)
	}
	for _, bad := range []string{
		"",
		"0011",
		"00112233445566778899aabbccddeefg",   // non-hex
		"00000000000000000000000000000000",   // zero sentinel
		"00112233445566778899aabbccddeeff00", // too long
		"X0112233445566778899aabbccddeeff",   // non-hex first
	} {
		if _, ok := ParseTraceID(bad); ok {
			t.Errorf("ParseTraceID(%q) accepted", bad)
		}
	}
}

func TestSamplingRates(t *testing.T) {
	// Rate 0: IDs are still issued (log correlation) but nothing samples.
	tr := New(Config{SampleRate: 0})
	for i := 0; i < 100; i++ {
		c := tr.Sample()
		if c.Trace.IsZero() {
			t.Fatal("unsampled context has no trace id")
		}
		if c.Sampled() {
			t.Fatal("rate 0 produced a sampled context")
		}
	}
	if s := tr.Stats(); s.Sampled != 0 {
		t.Fatalf("sampled count at rate 0 = %d", s.Sampled)
	}
	// A span started from an unsampled context must be inert.
	sp := tr.Start(tr.Sample(), "noop")
	if sp.Active() {
		t.Fatal("span active under unsampled context")
	}
	sp.End()
	tr.Drain()
	if s := tr.Stats(); s.Kept != 0 || s.Pending != 0 {
		t.Fatalf("inert span reached assembly: %+v", s)
	}

	// Rate 1: every roll samples.
	tr = New(Config{SampleRate: 1})
	for i := 0; i < 100; i++ {
		if !tr.Sample().Sampled() {
			t.Fatal("rate 1 produced an unsampled context")
		}
	}

	// Force: sampled and pinned regardless of rate.
	tr = New(Config{SampleRate: 0})
	id, _ := ParseTraceID("00112233445566778899aabbccddeeff")
	c := tr.Force(id)
	if !c.Sampled() || !c.Forced() || c.Trace != id {
		t.Fatalf("Force = %+v", c)
	}
	if _, ok := ParseTraceID(TraceID{}.String()); ok {
		t.Fatal("zero id parsed")
	}

	// Nil tracer: everything is a no-op.
	var nilT *Tracer
	if c := nilT.Sample(); c.Sampled() || !c.Trace.IsZero() {
		t.Fatalf("nil Sample = %+v", c)
	}
	nsp := nilT.Start(Ctx{Flags: FlagSampled}, "x")
	nsp.SetErr()
	nsp.End()
	nilT.Drain()
	if got := nilT.Stats(); got != (Stats{}) {
		t.Fatalf("nil Stats = %+v", got)
	}
}

// endTrace records a terminal span so the trace finalizes at next drain.
func endTrace(tr *Tracer, c Ctx) {
	sp := tr.Start(c, tr.cfg.Terminal)
	sp.End()
}

func TestRingEvictionOrder(t *testing.T) {
	tr := New(Config{SampleRate: 1, RingSize: 4, Terminal: "done"})
	mkTrace := func(dev string, pin bool) TraceID {
		c := tr.Sample()
		sp := tr.Start(c, "work")
		sp.SetDevice(dev)
		if pin {
			sp.SetErr()
		}
		sp.End()
		done := tr.Start(c, "done")
		done.End()
		tr.Drain()
		return c.Trace
	}

	var ids []TraceID
	for i := 0; i < 6; i++ {
		ids = append(ids, mkTrace(fmt.Sprintf("dev-%d", i), false))
	}
	// Unpinned FIFO: the 4 newest survive, oldest two evicted.
	for _, id := range ids[:2] {
		if _, ok := tr.Get(id); ok {
			t.Errorf("evicted trace %s still present", id)
		}
	}
	got := tr.Traces(Filter{})
	if len(got) != 4 {
		t.Fatalf("ring size = %d, want 4", len(got))
	}
	// Newest first.
	for i, want := range []TraceID{ids[5], ids[4], ids[3], ids[2]} {
		if got[i].ID != want {
			t.Errorf("ring[%d] = %s, want %s", i, got[i].ID, want)
		}
	}
	if s := tr.Stats(); s.Evicted != 2 || s.Kept != 6 {
		t.Fatalf("stats = %+v, want evicted 2 kept 6", s)
	}

	// A pinned trace outlives younger unpinned ones.
	pinned := mkTrace("pin-dev", true) // evicts ids[2]
	for i := 0; i < 3; i++ {
		mkTrace(fmt.Sprintf("later-%d", i), false)
	}
	if p, ok := tr.Get(pinned); !ok || !p.Pinned || !p.Err {
		t.Fatalf("pinned trace gone or unpinned: ok=%v %+v", ok, p)
	}

	// All pinned: the oldest pinned is evicted.
	small := New(Config{SampleRate: 1, RingSize: 2, Terminal: "done"})
	var pinnedIDs []TraceID
	for i := 0; i < 3; i++ {
		c := small.Sample()
		sp := small.Start(c, "work")
		sp.SetErr()
		sp.End()
		endTrace(small, c)
		small.Drain()
		pinnedIDs = append(pinnedIDs, c.Trace)
	}
	if _, ok := small.Get(pinnedIDs[0]); ok {
		t.Error("oldest pinned trace survived a fully-pinned eviction")
	}
	if _, ok := small.Get(pinnedIDs[2]); !ok {
		t.Error("newest pinned trace missing")
	}
}

func TestTailKeepDecisions(t *testing.T) {
	tr := New(Config{SampleRate: 1, KeepOver: 10 * time.Millisecond, Terminal: "done"})
	now := time.Now()

	// Fast, clean, unforced: not pinned.
	fast := tr.Sample()
	sp := tr.Start(fast, "work")
	sp.SetStart(now)
	sp.EndAt(now.Add(time.Millisecond))
	done := tr.Start(fast, "done")
	done.SetStart(now.Add(time.Millisecond))
	done.EndAt(now.Add(2 * time.Millisecond))
	tr.Drain()
	if got, ok := tr.Get(fast.Trace); !ok || got.Pinned {
		t.Fatalf("fast trace: ok=%v pinned=%v, want kept unpinned", ok, got.Pinned)
	}

	// Slow: pinned by the latency threshold.
	slow := tr.Sample()
	sp = tr.Start(slow, "work")
	sp.SetStart(now)
	sp.EndAt(now.Add(50 * time.Millisecond))
	done = tr.Start(slow, "done")
	done.SetStart(now.Add(50 * time.Millisecond))
	done.EndAt(now.Add(51 * time.Millisecond))
	tr.Drain()
	if got, ok := tr.Get(slow.Trace); !ok || !got.Pinned {
		t.Fatalf("slow trace not pinned: ok=%v %+v", ok, got)
	}

	// Errored: pinned and flagged.
	errc := tr.Sample()
	sp = tr.Start(errc, "work")
	sp.SetStart(now)
	sp.SetErr()
	sp.EndAt(now.Add(time.Millisecond))
	endTrace(tr, errc)
	tr.Drain()
	if got, ok := tr.Get(errc.Trace); !ok || !got.Pinned || !got.Err {
		t.Fatalf("errored trace: ok=%v %+v", ok, got)
	}

	// Forced (inbound X-Trace-Id): pinned even when fast and clean.
	id, _ := ParseTraceID("00112233445566778899aabbccddeeff")
	fc := tr.Force(id)
	sp = tr.Start(fc, "work")
	sp.SetStart(now)
	sp.EndAt(now.Add(time.Millisecond))
	endTrace(tr, fc)
	tr.Drain()
	if got, ok := tr.Get(id); !ok || !got.Pinned || !got.Forced {
		t.Fatalf("forced trace: ok=%v %+v", ok, got)
	}
}

func TestLingerFinalizesIncompleteTraces(t *testing.T) {
	tr := New(Config{SampleRate: 1, Linger: 5 * time.Millisecond, Terminal: "done"})
	c := tr.Sample()
	sp := tr.Start(c, "orphan")
	sp.End()
	tr.Drain() // pending now, too fresh to finalize
	if got, ok := tr.Get(c.Trace); !ok || got.Complete {
		t.Fatalf("pre-linger: ok=%v complete=%v, want pending snapshot", ok, got.Complete)
	}
	if s := tr.Stats(); s.Kept != 0 {
		t.Fatalf("trace finalized before linger: %+v", s)
	}
	time.Sleep(10 * time.Millisecond)
	tr.Drain()
	got, ok := tr.Get(c.Trace)
	if !ok || got.Complete {
		t.Fatalf("post-linger: ok=%v complete=%v, want finalized incomplete", ok, got.Complete)
	}
	if s := tr.Stats(); s.Kept != 1 || s.Pending != 0 {
		t.Fatalf("post-linger stats = %+v", s)
	}
}

// TestLateSpanJoinsCompletedTrace: a span drained after its trace finalized
// (SSE delivery after the fold) is appended to the completed entry.
func TestLateSpanJoinsCompletedTrace(t *testing.T) {
	tr := New(Config{SampleRate: 1, Terminal: "done"})
	c := tr.Sample()
	root := tr.Start(c, "work")
	root.End()
	endTrace(tr, c)
	tr.Drain()

	late := tr.Start(c, "sse_deliver")
	late.End()
	tr.Drain()
	got, ok := tr.Get(c.Trace)
	if !ok {
		t.Fatal("trace missing")
	}
	names := map[string]bool{}
	for _, s := range got.Spans {
		names[s.Name] = true
	}
	if !names["sse_deliver"] {
		t.Fatalf("late span not absorbed: %v", names)
	}
}

// TestConcurrentRecordDrain is the -race assertion for the lock-free span
// buffers: many writers record while readers drain and query concurrently.
func TestConcurrentRecordDrain(t *testing.T) {
	tr := New(Config{SampleRate: 1, Slots: 4, SlotSpans: 64, RingSize: 64, Terminal: "done"})
	const writers = 8
	const perWriter = 200

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				c := tr.Sample()
				sp := tr.Start(c, "work")
				sp.SetDevice(fmt.Sprintf("dev-%d", w))
				sp.SetShard(w)
				sp.End()
				endTrace(tr, c)
			}
		}(w)
	}
	stop := make(chan struct{})
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					tr.Drain()
					tr.Traces(Filter{Limit: 8})
					tr.Stats()
				}
			}
		}()
	}
	// Wait for writers by counting completed work through stats.
	deadline := time.After(10 * time.Second)
	for {
		s := tr.Stats()
		if s.Sampled >= writers*perWriter {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("writers did not finish: %+v", s)
		case <-time.After(time.Millisecond):
		}
	}
	close(stop)
	wg.Wait()
	tr.Drain()

	s := tr.Stats()
	// Conservation: every started trace either completed into the ring or
	// lost spans to slot overwrites (still pending until linger).
	if s.Kept+int64(s.Pending)+s.DroppedSpans < writers*perWriter {
		t.Fatalf("trace accounting hole: %+v", s)
	}
	if s.Ring > 64 {
		t.Fatalf("ring overflow: %+v", s)
	}
}

func TestViewStages(t *testing.T) {
	tr := New(Config{SampleRate: 1, Terminal: "done"})
	c := tr.Sample()
	now := time.Now()
	for i, name := range []string{"clean", "clean", "done"} {
		sp := tr.Start(c, name)
		sp.SetStart(now.Add(time.Duration(i) * 10 * time.Millisecond))
		sp.EndAt(now.Add(time.Duration(i)*10*time.Millisecond + 5*time.Millisecond))
	}
	tr.Drain()
	got, ok := tr.Get(c.Trace)
	if !ok {
		t.Fatal("trace missing")
	}
	v := got.View()
	if len(v.Spans) != 3 {
		t.Fatalf("spans = %d", len(v.Spans))
	}
	if v.Stages["clean"] < 9.9 || v.Stages["clean"] > 10.1 {
		t.Fatalf("clean stage sum = %v ms, want ~10", v.Stages["clean"])
	}
	if !v.Complete {
		t.Fatal("view not complete")
	}
	if v.ID != c.Trace.String() {
		t.Fatalf("view id = %s", v.ID)
	}
}

func BenchmarkSampleUnsampled(b *testing.B) {
	tr := New(Config{SampleRate: 0})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c := tr.Sample()
		sp := tr.Start(c, "work")
		sp.End()
	}
}

func BenchmarkRecordSampled(b *testing.B) {
	tr := New(Config{SampleRate: 1})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c := tr.Sample()
		sp := tr.Start(c, "work")
		sp.End()
	}
}
