package trace

import (
	"context"
	"sort"
	"time"
)

// pendingTrace accumulates drained spans for a trace that has not yet
// finalized.
type pendingTrace struct {
	spans []Span
	// last is the drain instant of the most recent span — the linger clock.
	last time.Time
	// terminal is set once the configured terminal span has been seen.
	terminal bool
}

// Trace is a completed trace in the ring.
type Trace struct {
	ID     TraceID
	Device string
	Start  time.Time
	End    time.Time
	// Err is set when any span errored; Forced when the trace was pinned
	// by the caller or an explicit keep; Complete when the terminal span
	// was observed (as opposed to a linger-window finalize).
	Err      bool
	Forced   bool
	Complete bool
	// Pinned traces survive ring eviction until only pinned traces remain.
	Pinned bool
	Spans  []Span
}

// Duration is the wall-clock extent from first span start to last span end.
func (tr *Trace) Duration() time.Duration { return tr.End.Sub(tr.Start) }

// snapshot returns a copy whose span slice is detached from the ring, so
// callers can read it outside the tracer's lock.
func (tr *Trace) snapshot() Trace {
	out := *tr
	out.Spans = append([]Span(nil), tr.Spans...)
	return out
}

// drainLocked swaps every slot cell into the assembly state and then
// finalizes what can be finalized. Caller holds t.mu.
func (t *Tracer) drainLocked(now time.Time) {
	for i := range t.slots {
		sl := &t.slots[i]
		for j := range sl.buf {
			if sp := sl.buf[j].Swap(nil); sp != nil {
				t.addSpanLocked(*sp, now)
			}
		}
	}
	t.finalizeLocked(now)
}

// addSpanLocked routes one drained span: into the matching completed trace
// if its trace already finalized (late spans — SSE delivery lands after
// the fold that completed the trace), otherwise into the pending set.
func (t *Tracer) addSpanLocked(s Span, now time.Time) {
	if tr, ok := t.index[s.Trace]; ok {
		tr.Spans = append(tr.Spans, s)
		sortSpans(tr.Spans)
		tr.absorb(s)
		if tr.Duration() >= t.cfg.KeepOver {
			tr.Pinned = true
		}
		return
	}
	p := t.pending[s.Trace]
	if p == nil {
		p = &pendingTrace{}
		t.pending[s.Trace] = p
	}
	p.spans = append(p.spans, s)
	p.last = now
	if s.Name == t.cfg.Terminal {
		p.terminal = true
	}
}

// absorb folds one span's attributes into the trace-level summary.
func (tr *Trace) absorb(s Span) {
	if tr.Device == "" {
		tr.Device = s.Device
	}
	if s.Err {
		tr.Err = true
		tr.Pinned = true
	}
	if s.Keep {
		tr.Forced = true
		tr.Pinned = true
	}
	if tr.Start.IsZero() || s.Start.Before(tr.Start) {
		tr.Start = s.Start
	}
	if s.End.After(tr.End) {
		tr.End = s.End
	}
}

// finalizeLocked promotes pending traces into the completed ring: those
// whose terminal span arrived, and those quiet past the linger window.
func (t *Tracer) finalizeLocked(now time.Time) {
	for id, p := range t.pending {
		if !p.terminal && now.Sub(p.last) < t.cfg.Linger {
			continue
		}
		t.completeLocked(id, p)
		delete(t.pending, id)
	}
}

func (t *Tracer) completeLocked(id TraceID, p *pendingTrace) {
	sortSpans(p.spans)
	tr := &Trace{ID: id, Complete: p.terminal, Spans: p.spans}
	for _, s := range p.spans {
		tr.absorb(s)
	}
	if tr.Duration() >= t.cfg.KeepOver {
		tr.Pinned = true
	}
	t.insertLocked(tr)
}

// insertLocked appends to the ring, evicting the oldest unpinned trace when
// full — or the oldest outright when everything is pinned.
func (t *Tracer) insertLocked(tr *Trace) {
	t.kept.Add(1)
	if len(t.ring) >= t.cfg.RingSize {
		victim := -1
		for i, old := range t.ring {
			if !old.Pinned {
				victim = i
				break
			}
		}
		if victim < 0 {
			victim = 0
		}
		delete(t.index, t.ring[victim].ID)
		t.ring = append(t.ring[:victim], t.ring[victim+1:]...)
		t.evicted.Add(1)
	}
	t.ring = append(t.ring, tr)
	t.index[tr.ID] = tr
}

func sortSpans(spans []Span) {
	sort.SliceStable(spans, func(i, j int) bool {
		return spans[i].Start.Before(spans[j].Start)
	})
}

// Filter selects traces from the completed ring.
type Filter struct {
	// MinDuration keeps only traces at least this slow end to end.
	MinDuration time.Duration
	// Device keeps only traces attributed to this device.
	Device string
	// Err keeps only traces with an errored span.
	Err bool
	// Limit caps the result count; 0 means 50.
	Limit int
}

// Traces drains and returns completed traces matching f, newest first.
func (t *Tracer) Traces(f Filter) []Trace {
	if t == nil {
		return nil
	}
	limit := f.Limit
	if limit <= 0 {
		limit = 50
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.drainLocked(time.Now())
	out := make([]Trace, 0, min(limit, len(t.ring)))
	for i := len(t.ring) - 1; i >= 0 && len(out) < limit; i-- {
		tr := t.ring[i]
		if f.Device != "" && tr.Device != f.Device {
			continue
		}
		if f.Err && !tr.Err {
			continue
		}
		if f.MinDuration > 0 && tr.Duration() < f.MinDuration {
			continue
		}
		out = append(out, tr.snapshot())
	}
	return out
}

// Get drains and returns the trace by ID — completed if finalized, else an
// in-flight snapshot of its pending spans (Complete false).
func (t *Tracer) Get(id TraceID) (Trace, bool) {
	if t == nil {
		return Trace{}, false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.drainLocked(time.Now())
	if tr, ok := t.index[id]; ok {
		return tr.snapshot(), true
	}
	if p, ok := t.pending[id]; ok {
		sortSpans(p.spans)
		tr := Trace{ID: id, Spans: append([]Span(nil), p.spans...)}
		for _, s := range tr.Spans {
			tr.absorb(s)
		}
		return tr, true
	}
	return Trace{}, false
}

// Stats is a point-in-time summary of tracer activity, cheap enough to
// bridge into /metrics on every scrape (it does not drain).
type Stats struct {
	Sampled      int64 `json:"sampled"`
	Kept         int64 `json:"kept"`
	Evicted      int64 `json:"evicted"`
	DroppedSpans int64 `json:"droppedSpans"`
	Ring         int   `json:"ring"`
	Pending      int   `json:"pending"`
}

// Stats reports cumulative counters and current ring/pending sizes.
func (t *Tracer) Stats() Stats {
	if t == nil {
		return Stats{}
	}
	t.mu.Lock()
	ring, pending := len(t.ring), len(t.pending)
	t.mu.Unlock()
	return Stats{
		Sampled:      t.sampled.Load(),
		Kept:         t.kept.Load(),
		Evicted:      t.evicted.Load(),
		DroppedSpans: t.droppedSpans.Load(),
		Ring:         ring,
		Pending:      pending,
	}
}

// SpanView is the JSON rendering of one span.
type SpanView struct {
	ID     string `json:"id"`
	Parent string `json:"parent,omitempty"`
	Name   string `json:"name"`
	Device string `json:"device,omitempty"`
	// Shard is -1 when the span is not attributed to a worker shard.
	Shard      int       `json:"shard"`
	Err        bool      `json:"err,omitempty"`
	Start      time.Time `json:"start"`
	DurationMs float64   `json:"duration_ms"`
}

// TraceView is the JSON rendering of a trace: the span tree plus a
// per-stage duration rollup (Stages sums spans by name, in milliseconds)
// that CI assertions and the load harness consume without walking spans.
type TraceView struct {
	ID         string             `json:"id"`
	Device     string             `json:"device,omitempty"`
	Start      time.Time          `json:"start"`
	DurationMs float64            `json:"duration_ms"`
	Err        bool               `json:"err,omitempty"`
	Pinned     bool               `json:"pinned,omitempty"`
	Complete   bool               `json:"complete"`
	Stages     map[string]float64 `json:"stages_ms,omitempty"`
	Spans      []SpanView         `json:"spans,omitempty"`
}

// View renders the trace for JSON serving.
func (tr Trace) View() TraceView {
	v := TraceView{
		ID:         tr.ID.String(),
		Device:     tr.Device,
		Start:      tr.Start,
		DurationMs: ms(tr.Duration()),
		Err:        tr.Err,
		Pinned:     tr.Pinned,
		Complete:   tr.Complete,
	}
	if len(tr.Spans) > 0 {
		v.Stages = make(map[string]float64, 8)
		v.Spans = make([]SpanView, len(tr.Spans))
		for i, s := range tr.Spans {
			sv := SpanView{
				ID:         s.ID.String(),
				Name:       s.Name,
				Device:     s.Device,
				Shard:      s.Shard,
				Err:        s.Err,
				Start:      s.Start,
				DurationMs: ms(s.Duration()),
			}
			if !s.Parent.IsZero() {
				sv.Parent = s.Parent.String()
			}
			v.Spans[i] = sv
			v.Stages[s.Name] += sv.DurationMs
		}
	}
	return v
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

type ctxKey struct{}

// NewContext attaches a trace context to a request context.
func NewContext(parent context.Context, c Ctx) context.Context {
	return context.WithValue(parent, ctxKey{}, c)
}

// FromContext extracts the trace context, zero if absent.
func FromContext(ctx context.Context) Ctx {
	c, _ := ctx.Value(ctxKey{}).(Ctx)
	return c
}
