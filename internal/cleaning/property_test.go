package cleaning

import (
	"testing"
	"testing/quick"
	"time"

	"trips/internal/dsm"
	"trips/internal/geom"
	"trips/internal/position"
	"trips/internal/testvenue"
)

// Property: for arbitrary (bounded) raw sequences, cleaning (1) preserves
// record count and timestamps, (2) never outputs an unwalkable location,
// and (3) leaves every consecutive pair satisfying the speed constraint
// whenever the pair is reachable.
func TestCleanProperties(t *testing.T) {
	m := testvenue.MustTwoFloor()
	c := New(m)
	f := func(seed uint32, n uint8) bool {
		count := int(n%40) + 2
		s := position.NewSequence("p")
		st := seed
		next := func(mod uint32) float64 {
			st = st*1664525 + 1013904223
			return float64(st % mod)
		}
		at := t0
		for i := 0; i < count; i++ {
			floor := dsm.FloorID(1 + int(st%2))
			s.Append(position.Record{
				Device: "p",
				P:      geom.Pt(next(45)-2, next(24)-2),
				Floor:  floor,
				At:     at,
			})
			at = at.Add(time.Duration(2+int(next(8))) * time.Second)
		}
		out, rep := c.Clean(s)
		if out.Len() != s.Len() {
			return false
		}
		for i := range out.Records {
			if !out.Records[i].At.Equal(s.Records[i].At) {
				return false
			}
			if m.Locate(out.Records[i].P, out.Records[i].Floor) == nil {
				return false
			}
		}
		// The speed guarantee is exact for records the detector accepted
		// (the greedy anchor chain checks consecutive accepted records
		// pairwise). Interpolated records satisfy the constraint along
		// their generating walking path; re-measuring them point-to-point
		// through the connector-discretized metric can inflate (a mid-leg
		// point "pays again" to rejoin the graph), so repaired pairs are
		// exempt here — TestInterpolationOfOutlier and friends cover their
		// placement directly.
		repaired := make(map[int]bool)
		for _, ch := range rep.Changes {
			if ch.Kind == RepairInterpolate || ch.Kind == RepairFloor {
				repaired[ch.Index] = true
			}
		}
		for i := 1; i < out.Len(); i++ {
			if repaired[i-1] || repaired[i] {
				continue
			}
			a, b := out.Records[i-1], out.Records[i]
			d, ok := m.WalkingDistance(a.Location(), b.Location())
			if !ok {
				return false
			}
			dt := b.At.Sub(a.At).Seconds()
			// 1.3× absorbs snap displacement (≤ ~0.5 m) at short periods.
			if dt > 0 && d/dt > c.MaxSpeed*1.3 {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 30}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: cleaning is a fixed point — Clean(Clean(s)) ≡ Clean(s), with
// the second pass reporting no repairs. Clean iterates its repair sweep
// until nothing moves (bounded by maxCleanPasses), so this holds even for
// adversarial all-teleport walks where a single sweep's interpolation
// re-anchors on records the same sweep moved. The seed set is a fixed
// range plus 0xc132185, the walk that historically broke single-pass
// cleaning (tracked by the retired TestCleanIdempotentKnownBadSeed).
func TestCleanIdempotent(t *testing.T) {
	m := testvenue.MustTwoFloor()
	c := New(m)
	seeds := []uint32{0xc132185}
	for s := uint32(0); s < 200; s++ {
		seeds = append(seeds, s)
	}
	for _, seed := range seeds {
		st := seed
		next := func(mod uint32) float64 {
			st = st*1664525 + 1013904223
			return float64(st % mod)
		}
		s := position.NewSequence("p")
		at := t0
		for i := 0; i < 20; i++ {
			s.Append(position.Record{Device: "p",
				P: geom.Pt(next(45)-2, next(24)-2), Floor: 1, At: at})
			at = at.Add(5 * time.Second)
		}
		once, _ := c.Clean(s)
		twice, rep := c.Clean(once)
		// The second clean may still *flag* records (a permanently
		// suspect record — say, unreachable from its anchor — re-derives
		// to its own value every pass, and the report keeps saying so
		// because the online engine's invalid-run tracking needs it), but
		// it must not move anything.
		for _, ch := range rep.Changes {
			if !ch.After.P.Eq(ch.Before.P) || ch.After.Floor != ch.Before.Floor {
				t.Errorf("seed %#x: second clean moved record %d: %v → %v",
					seed, ch.Index, ch.Before, ch.After)
			}
		}
		for i := range twice.Records {
			if !twice.Records[i].P.Eq(once.Records[i].P) ||
				twice.Records[i].Floor != once.Records[i].Floor {
				t.Errorf("seed %#x: record %d moves on the second pass (%v → %v)",
					seed, i, once.Records[i], twice.Records[i])
				break
			}
		}
	}
}
