package cleaning

import (
	"testing"
	"time"

	"trips/internal/geom"
	"trips/internal/position"
	"trips/internal/testvenue"
)

// TestCleanFromSteadyStateZeroAlloc guards the incremental cleaner's
// steady state: with the change-list materialization off (NoChanges, the
// online engine's posture) and the cache warm, re-cleaning an unchanged
// sequence must not allocate — every buffer the suffix re-clean touches is
// State-owned scratch sized on earlier calls. This is what holds the
// per-flush clean stage at amortized zero allocations on a long session.
//
//trips:guards State.Repaired
//trips:guards stableCut
func TestCleanFromSteadyStateZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation inhibits inlining and distorts allocation counts")
	}
	m := testvenue.MustTwoFloor()
	c := New(m)

	// A noisy walk with teleport glitches so the cleaner has real repairs
	// to carry in its cache, not a no-op pass.
	st := uint32(11)
	next := func(mod uint32) uint32 { st = st*1664525 + 1013904223; return (st >> 8) % mod }
	s := position.NewSequence("d")
	at := time.Date(2017, 1, 2, 10, 0, 0, 0, time.UTC)
	x, y := 5.0, 5.0
	for i := 0; i < 400; i++ {
		x += float64(next(5)) - 2
		y += float64(next(5)) - 2
		p := geom.Pt(x, y)
		if next(12) == 0 {
			p = geom.Pt(float64(next(45))-2, float64(next(24))-2) // teleport
		}
		s.Append(position.Record{Device: "d", P: p, Floor: 1, At: at})
		at = at.Add(time.Duration(2+int(next(6))) * time.Second)
	}

	var cs State
	cs.NoChanges = true
	floor := s.End().Add(-40 * time.Second)
	// Warm the cache: the first call is the full clean, the second sizes
	// every suffix buffer.
	c.CleanFrom(&cs, s, floor)
	c.CleanFrom(&cs, s, floor)
	if cs.Stable() == 0 {
		t.Fatal("stable prefix never advanced; the steady state under test never forms")
	}

	if avg := testing.AllocsPerRun(200, func() {
		c.CleanFrom(&cs, s, floor)
	}); avg != 0 {
		t.Errorf("steady-state CleanFrom allocates %.2f times per call, want 0", avg)
	}
}
