package cleaning

import (
	"fmt"
	"sort"
	"testing"
	"time"

	"trips/internal/dsm"
	"trips/internal/geom"
	"trips/internal/position"
	"trips/internal/testvenue"
)

// changeKeys renders a report's changes as a sorted multiset for
// order-insensitive comparison: CleanFrom lists prefix repairs before
// suffix repairs instead of interleaved by pass, and guarantees only set
// equality.
func changeKeys(rep Report) []string {
	keys := make([]string, len(rep.Changes))
	for i, ch := range rep.Changes {
		keys[i] = fmt.Sprintf("%d/%s/%v/%v", ch.Index, ch.Kind, ch.Before, ch.After)
	}
	sort.Strings(keys)
	return keys
}

func assertSameClean(t *testing.T, step int, inc *position.Sequence, incRep Report, full *position.Sequence, fullRep Report) {
	t.Helper()
	if inc.Len() != full.Len() {
		t.Fatalf("step %d: incremental len %d, full %d", step, inc.Len(), full.Len())
	}
	for i := range full.Records {
		a, b := inc.Records[i], full.Records[i]
		if a.P != b.P || a.Floor != b.Floor || !a.At.Equal(b.At) {
			t.Fatalf("step %d: record %d differs:\nincremental: (%.17g, %.17g) floor %d\nfull:        (%.17g, %.17g) floor %d",
				step, i, a.P.X, a.P.Y, a.Floor, b.P.X, b.P.Y, b.Floor)
		}
	}
	if incRep.Total != fullRep.Total || incRep.Snapped != fullRep.Snapped ||
		incRep.FloorFixed != fullRep.FloorFixed || incRep.Interpolated != fullRep.Interpolated {
		t.Fatalf("step %d: report counts differ:\nincremental: %+v\nfull:        %+v", step, incRep, fullRep)
	}
	ik, fk := changeKeys(incRep), changeKeys(fullRep)
	if len(ik) != len(fk) {
		t.Fatalf("step %d: %d changes vs %d", step, len(ik), len(fk))
	}
	for i := range ik {
		if ik[i] != fk[i] {
			t.Fatalf("step %d: change sets differ at %d:\nincremental: %s\nfull:        %s", step, i, ik[i], fk[i])
		}
	}
}

// TestCleanFromMatchesClean drives randomized growing sequences — noisy
// walks with teleport glitches, floor flips, and bounded out-of-order
// inserts — through CleanFrom and asserts that after every growth step the
// stitched output is identical to a from-scratch Clean of the same
// sequence.
func TestCleanFromMatchesClean(t *testing.T) {
	m := testvenue.MustTwoFloor()
	c := New(m)
	for seed := uint32(1); seed <= 12; seed++ {
		st := seed
		next := func(mod uint32) uint32 {
			st = st*1664525 + 1013904223
			return (st >> 8) % mod
		}
		s := position.NewSequence("d")
		var cs State
		at := t0
		x, y := 5.0, 5.0
		// insertFloor trails the sequence end by a fixed lag, the way the
		// online engine's seal frontier trails its watermark.
		const lag = 40 * time.Second
		floor := time.Time{}
		for step := 0; step < 30; step++ {
			burst := int(next(6)) + 1
			for i := 0; i < burst; i++ {
				// Mostly a noisy walk; sometimes a glitch.
				x += float64(next(5)) - 2
				y += float64(next(5)) - 2
				p := geom.Pt(x, y)
				fl := dsm.FloorID(1)
				switch next(12) {
				case 0:
					p = geom.Pt(float64(next(45))-2, float64(next(24))-2) // teleport
				case 1:
					fl = 2 // floor flip
				}
				rt := at
				if next(7) == 0 && !floor.IsZero() {
					// Out-of-order insert, still after the admission floor.
					back := time.Duration(next(uint32(lag/time.Second))) * time.Second
					if cand := at.Add(-back); cand.After(floor) {
						rt = cand
					}
				}
				s.Append(position.Record{Device: "d", P: p, Floor: fl, At: rt})
				at = at.Add(time.Duration(2+int(next(6))) * time.Second)
			}
			if s.End().Sub(t0) > lag {
				floor = s.End().Add(-lag)
			}
			inc, incRep := c.CleanFrom(&cs, s, floor)
			full, fullRep := c.Clean(s)
			assertSameClean(t, step, inc, incRep, full, fullRep)
			if cs.Stable() > 0 && cs.StableSince() > cs.Stable() {
				t.Fatalf("step %d: StableSince %d > Stable %d", step, cs.StableSince(), cs.Stable())
			}
		}
		if cs.Stable() == 0 {
			t.Errorf("seed %d: stable prefix never advanced; the incremental path went untested", seed)
		}
	}
}

// TestCleanFromZeroFloor: with no admission guarantee every call must be a
// full re-clean (stable prefix pinned at 0) and still match Clean.
func TestCleanFromZeroFloor(t *testing.T) {
	c := New(testvenue.MustTwoFloor())
	s := position.NewSequence("d")
	var cs State
	for i := 0; i < 50; i++ {
		s.Append(rec(float64(2+i%20), 5, 1, time.Duration(i)*5*time.Second))
		inc, incRep := c.CleanFrom(&cs, s, time.Time{})
		full, fullRep := c.Clean(s)
		assertSameClean(t, i, inc, incRep, full, fullRep)
		if cs.Stable() != 0 {
			t.Fatalf("step %d: stable = %d with a zero insert floor", i, cs.Stable())
		}
	}
}

// TestCleanFromReset: a State reused after Reset (and one fed a shrunk
// sequence, the trim case) recovers with a full re-clean.
func TestCleanFromReset(t *testing.T) {
	c := New(testvenue.MustTwoFloor())
	var cs State
	s := position.NewSequence("d")
	for i := 0; i < 40; i++ {
		s.Append(rec(float64(2+i%10), 5, 1, time.Duration(i)*5*time.Second))
	}
	c.CleanFrom(&cs, s, s.End())

	// Shrink: a trimmed tail must fall back to a full clean, not stitch
	// against stale indexes.
	trimmed := &position.Sequence{Device: "d", Records: append([]position.Record(nil), s.Records[30:]...)}
	inc, incRep := c.CleanFrom(&cs, trimmed, trimmed.End())
	full, fullRep := c.Clean(trimmed)
	assertSameClean(t, 0, inc, incRep, full, fullRep)

	cs.Reset()
	if cs.Stable() != 0 || cs.StableSince() != 0 {
		t.Fatal("Reset left a stable prefix")
	}
	inc, incRep = c.CleanFrom(&cs, trimmed, trimmed.End())
	assertSameClean(t, 1, inc, incRep, full, fullRep)
}
