package cleaning

import (
	"sort"
	"time"

	"trips/internal/position"
)

// State carries the incremental cleaning cache of one growing sequence
// between CleanFrom calls. The zero value is ready for use; Reset reuses the
// allocated buffers for a fresh sequence.
//
// The cache exploits that cleaning is anchor-local: the speed-constraint
// chain anchors forward, a floor fix consults at most the nearest valid
// record on each side, and an invalid run interpolates between its two
// surrounding anchors. Once the sequence extends past a record that every
// sweep pass detected as valid, the cleaned values before it can never
// change again — unless a record is later *inserted* before it, which the
// caller rules out through the insertFloor argument of CleanFrom.
type State struct {
	// n is the number of raw records covered by the last call.
	n int

	// stable is the index below which cleaned values are final: cleaned
	// [0, stable) ends at a valid anchor (cleaned[stable-1]), contains no
	// trailing speed-suspect run, and holds only records the caller
	// guarantees are safe from out-of-order inserts.
	stable int

	// prevStable is the value of stable when the last call started — the
	// index below which that call rewrote nothing. Downstream per-record
	// caches (the incremental annotator's) key their own invalidation on
	// it via StableSince.
	prevStable int

	// cleaned is the full cleaned output of the last call. Indexes below
	// stable are final; the rest is rewritten every call. The backing
	// array is reused across calls, so callers must not hold the returned
	// sequence across CleanFrom calls expecting immutability beyond the
	// stable prefix.
	cleaned []position.Record

	// invalid marks, per cleaned record, whether any sweep pass detected
	// it as a speed-constraint violation. Repaired records keep final
	// values once both their anchors are in the prefix, but they are not
	// valid chain anchors themselves: the stable cut must always end on an
	// unmarked record, or the suffix re-clean would anchor its chain (and
	// its interpolations) on a record the full computation treats as
	// invalid.
	invalid []bool

	// prefixChanges are the report changes with Index < stable, final like
	// the records they describe.
	prefixChanges                                       []Change
	prefixSnapped, prefixFloorFixed, prefixInterpolated int

	// sub and inv are reused scratch: the anchor+suffix sub-sequence each
	// incremental call recleans, and its accumulated-invalid marks.
	sub position.Sequence
	inv []bool

	// out is the reused output sequence header CleanFrom returns (its
	// Records alias cleaned); like cleaned itself it is valid only until
	// the next call.
	out position.Sequence

	// NoChanges, when set before the first call, suppresses the merged
	// Report.Changes assembly: CleanFrom returns reports with correct
	// counters but nil Changes, and answers per-index repair queries through
	// Repaired instead. The online engine sets it — materializing the
	// full change list was O(total repairs) per flush, the dominant
	// per-flush cost on long sessions — while callers that persist reports
	// leave it off.
	NoChanges bool

	// repaired marks, per cleaned record, whether the record carries a
	// floor fix or an interpolation (snap-only repairs are position-local
	// and don't count). It is the columnar replacement for scanning
	// Report.Changes: [0, stable) is frozen, the suffix is rewritten every
	// call.
	repaired []bool

	// chBuf backs the per-call sub-report change list.
	chBuf []Change

	// scratch is the sweep working state reused across calls.
	scratch cleanScratch
}

// Reset clears the cache for a fresh sequence, keeping allocated buffers.
func (st *State) Reset() {
	st.n, st.stable, st.prevStable = 0, 0, 0
	st.cleaned = st.cleaned[:0]
	st.invalid = st.invalid[:0]
	st.repaired = st.repaired[:0]
	st.prefixChanges = st.prefixChanges[:0]
	st.prefixSnapped, st.prefixFloorFixed, st.prefixInterpolated = 0, 0, 0
}

// Repaired reports whether cleaned record i carries a floor fix or an
// interpolation from the last call — the per-index view of the report that
// NoChanges suppresses (it is maintained either way).
//
//trips:zeroalloc
func (st *State) Repaired(i int) bool {
	return i >= 0 && i < len(st.repaired) && st.repaired[i]
}

// Stable returns the index below which the cached cleaned values are final.
func (st *State) Stable() int { return st.stable }

// StableSince returns the index below which the last CleanFrom call left
// the cleaned values untouched — the frozen-prefix hint for downstream
// incremental stages: everything at or past it may have been rewritten
// (even to identical values) by the last call.
func (st *State) StableSince() int { return st.prevStable }

// CleanFrom is the incremental Clean for a sequence that grows between
// calls: it re-cleans only from the last stable anchor forward and stitches
// the suffix onto the cached cleaned prefix, so a flush over a long session
// tail pays for the new suffix instead of the whole tail. The result — the
// cleaned sequence and its report — is the same as Clean(s) would produce
// (change ordering aside: the report lists the cached prefix's repairs
// before the suffix's instead of interleaved by pass).
//
// insertFloor is the caller's admission guarantee: every record appended to
// s after this call will carry At strictly after insertFloor, so records at
// or before it can never be displaced by an out-of-order insert. The stable
// prefix never extends past that point; a zero insertFloor promises nothing
// and keeps every call a full re-clean.
//
// The contract on s across calls with one State: records below the previous
// call's Stable() index are unchanged; new records are appended or inserted
// after insertFloor. A sequence that shrank or changed under the cache is
// detected and re-cleaned from scratch.
func (c *Cleaner) CleanFrom(st *State, s *position.Sequence, insertFloor time.Time) (*position.Sequence, Report) {
	if s.Len() == 0 {
		st.Reset()
		return position.NewSequence(s.Device), Report{}
	}
	if st.stable == 0 || s.Len() < st.n || st.stable > s.Len() ||
		!s.Records[st.stable-1].At.Equal(st.cleaned[st.stable-1].At) {
		return c.cleanFull(st, s, insertFloor)
	}
	st.prevStable = st.stable

	// Re-clean the cached anchor plus the raw suffix. The anchor is the
	// last stable cleaned record: it is walkable, valid in every sweep
	// pass, and therefore the exact chain state the full computation would
	// carry into the suffix.
	anchor := st.stable - 1
	sub := &st.sub
	sub.Device = s.Device
	sub.Records = append(sub.Records[:0], st.cleaned[anchor])
	sub.Records = append(sub.Records, s.Records[st.stable:]...)
	subRep := Report{Total: sub.Len(), Changes: st.chBuf[:0]}
	inv := resizeBools(&st.inv, sub.Len())
	c.cleanInto(sub, c.maxSpeed(), &subRep, inv, &st.scratch)
	st.chBuf = subRep.Changes[:0]
	for _, ch := range subRep.Changes {
		if ch.Index == 0 {
			// The sub-run touched the anchor: the stability premise failed
			// (it cannot, by construction — this is a safety valve).
			return c.cleanFull(st, s, insertFloor)
		}
	}

	// Stitch the suffix onto the cached prefix; the backing arrays are
	// reused, values are copied. Sub index i is global anchor+i, so the
	// sub's entries from 1 on land at global st.stable on.
	st.cleaned = append(st.cleaned[:st.stable], sub.Records[1:]...)
	st.invalid = append(st.invalid[:st.stable], inv[1:]...)
	st.n = s.Len()
	st.out = position.Sequence{Device: s.Device, Records: st.cleaned}
	out := &st.out

	// Remap the suffix changes to global indexes in place, and rewrite the
	// repaired column for the suffix span.
	for i := range subRep.Changes {
		subRep.Changes[i].Index += anchor
	}
	st.markRepaired(st.stable, s.Len(), subRep.Changes)

	// Assemble the full report: cached prefix repairs plus the suffix's —
	// unless the caller opted out of change materialization, which turns
	// the per-flush report cost from O(total repairs) into O(suffix
	// repairs).
	rep := Report{
		Total:        s.Len(),
		Snapped:      st.prefixSnapped + subRep.Snapped,
		FloorFixed:   st.prefixFloorFixed + subRep.FloorFixed,
		Interpolated: st.prefixInterpolated + subRep.Interpolated,
	}
	if !st.NoChanges {
		rep.Changes = make([]Change, 0, len(st.prefixChanges)+len(subRep.Changes))
		rep.Changes = append(rep.Changes, st.prefixChanges...)
		rep.Changes = append(rep.Changes, subRep.Changes...)
	}

	st.advance(subRep.Changes, anchor+stableCut(inv), s, insertFloor)
	return out, rep
}

// markRepaired rewrites the repaired column over [from, n) from this call's
// suffix changes (global indexes).
func (st *State) markRepaired(from, n int, changes []Change) {
	if cap(st.repaired) < n {
		grown := make([]bool, n)
		copy(grown, st.repaired[:from])
		st.repaired = grown
	} else {
		st.repaired = st.repaired[:n]
		for i := from; i < n; i++ {
			st.repaired[i] = false
		}
	}
	for _, ch := range changes {
		if ch.Index >= from && (ch.Kind == RepairFloor || ch.Kind == RepairInterpolate) {
			st.repaired[ch.Index] = true
		}
	}
}

// cleanFull is the from-scratch path: clean the whole sequence, then prime
// the cache with its stable prefix.
func (c *Cleaner) cleanFull(st *State, s *position.Sequence, insertFloor time.Time) (*position.Sequence, Report) {
	rep := Report{Total: s.Len()}
	if st.NoChanges {
		// Accumulate into the reusable buffer; the returned report carries
		// nil Changes either way.
		rep.Changes = st.chBuf[:0]
	}
	st.cleaned = append(st.cleaned[:0], s.Records...)
	st.out = position.Sequence{Device: s.Device, Records: st.cleaned}
	out := &st.out
	inv := resizeBools(&st.inv, s.Len())
	c.cleanInto(out, c.maxSpeed(), &rep, inv, &st.scratch)

	st.n = s.Len()
	st.stable, st.prevStable = 0, 0
	st.invalid = append(st.invalid[:0], inv...)
	st.repaired = st.repaired[:0]
	st.markRepaired(0, s.Len(), rep.Changes)
	st.prefixChanges = st.prefixChanges[:0]
	st.prefixSnapped, st.prefixFloorFixed, st.prefixInterpolated = 0, 0, 0
	st.advance(rep.Changes, stableCut(inv), s, insertFloor)
	if st.NoChanges {
		st.chBuf = rep.Changes[:0]
		rep.Changes = nil
	}
	return out, rep
}

// advance grows the stable prefix to cut (capped by the insert-safe record
// count) and files the newly stable changes into the prefix buckets.
// newChanges are this call's not-yet-filed changes, with global indexes.
func (st *State) advance(newChanges []Change, cut int, s *position.Sequence, insertFloor time.Time) {
	if insertFloor.IsZero() {
		cut = 0
	} else if safe := sort.Search(s.Len(), func(i int) bool {
		return s.Records[i].At.After(insertFloor)
	}); safe < cut {
		cut = safe
	}
	// The prefix must end on a record no sweep pass suspected: a repaired
	// record's value is final here, but re-anchoring the suffix chain on
	// it would diverge from the full computation, which anchors past it.
	for cut > 0 && st.invalid[cut-1] {
		cut--
	}
	if cut < st.stable {
		// The anchor-stability and insert floors are both monotone, so the
		// stable prefix never regresses; keep it if a non-converged sweep
		// declined to advance it.
		cut = st.stable
	}
	for _, ch := range newChanges {
		if ch.Index >= cut {
			continue
		}
		if !st.NoChanges {
			st.prefixChanges = append(st.prefixChanges, ch)
		}
		switch ch.Kind {
		case RepairSnap:
			st.prefixSnapped++
		case RepairFloor:
			st.prefixFloorFixed++
		case RepairInterpolate:
			st.prefixInterpolated++
		}
	}
	st.stable = cut
}

// stableCut returns the index (into the cleaned run inv describes) after
// which values may still change: the start of the trailing run of records
// that any sweep pass detected as speed-constraint violations — their
// repairs anchored on nothing ahead and will re-derive once later records
// arrive. Suspect records before the trailing run keep final values (their
// repairs anchored on both sides inside the sequence), including segments
// the pass cap stopped mid-oscillation: any longer re-clean replays the
// identical capped passes over them.
//
//trips:zeroalloc
func stableCut(inv []bool) int {
	cut := len(inv)
	for cut > 0 && inv[cut-1] {
		cut--
	}
	return cut
}

// resizeBools returns *buf resized to n entries, all false.
func resizeBools(buf *[]bool, n int) []bool {
	b := *buf
	if cap(b) < n {
		b = make([]bool, n)
	} else {
		b = b[:n]
		for i := range b {
			b[i] = false
		}
	}
	*buf = b
	return b
}
