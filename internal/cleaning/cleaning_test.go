package cleaning

import (
	"testing"
	"time"

	"trips/internal/dsm"
	"trips/internal/geom"
	"trips/internal/position"
	"trips/internal/testvenue"
)

var t0 = time.Date(2017, 1, 2, 10, 0, 0, 0, time.UTC)

func rec(x, y float64, floor int, off time.Duration) position.Record {
	return position.Record{Device: "d", P: geom.Pt(x, y), Floor: dsm.FloorID(floor), At: t0.Add(off)}
}

func seq(recs ...position.Record) *position.Sequence {
	s := position.NewSequence("d")
	for _, r := range recs {
		s.Append(r)
	}
	return s
}

func TestCleanEmptyAndCleanInput(t *testing.T) {
	c := New(testvenue.MustTwoFloor())
	out, rep := c.Clean(position.NewSequence("d"))
	if out.Len() != 0 || rep.Modified() != 0 {
		t.Errorf("empty clean = %v, %+v", out.Len(), rep)
	}
	// A well-behaved walk in the hallway is untouched.
	s := seq(
		rec(2, 5, 1, 0),
		rec(6, 5, 1, 4*time.Second),
		rec(10, 5, 1, 8*time.Second),
	)
	out, rep = c.Clean(s)
	if rep.Modified() != 0 {
		t.Errorf("clean input modified: %+v", rep.Changes)
	}
	for i := range s.Records {
		if !out.Records[i].P.Eq(s.Records[i].P) {
			t.Errorf("record %d moved", i)
		}
	}
}

func TestCleanDoesNotMutateInput(t *testing.T) {
	c := New(testvenue.MustTwoFloor())
	s := seq(rec(2, 5, 1, 0), rec(200, 200, 1, time.Second))
	orig := s.Records[1].P
	c.Clean(s)
	if !s.Records[1].P.Eq(orig) {
		t.Error("Clean mutated its input")
	}
}

func TestSnapIntoWalkable(t *testing.T) {
	c := New(testvenue.MustTwoFloor())
	// (8, 10.2) is inside the dividing wall; it must be snapped out.
	s := seq(rec(2, 9, 1, 0), rec(8, 10.2, 1, 4*time.Second))
	out, rep := c.Clean(s)
	if rep.Snapped == 0 {
		t.Fatalf("wall point not snapped: %+v", rep)
	}
	if m := c.Model.Locate(out.Records[1].P, out.Records[1].Floor); m == nil {
		t.Errorf("snapped point %v still unwalkable", out.Records[1].P)
	}
}

func TestFloorCorrection(t *testing.T) {
	c := New(testvenue.MustTwoFloor())
	// Steady hallway walk with one record flashing to floor 2 — the
	// classic barometric/AP-mismatch floor misread.
	s := seq(
		rec(2, 5, 1, 0),
		rec(4, 5, 1, 4*time.Second),
		rec(6, 5, 2, 8*time.Second), // wrong floor
		rec(8, 5, 1, 12*time.Second),
		rec(10, 5, 1, 16*time.Second),
	)
	out, rep := c.Clean(s)
	if rep.FloorFixed != 1 {
		t.Fatalf("floor fixes = %d, report %+v", rep.FloorFixed, rep)
	}
	if out.Records[2].Floor != 1 {
		t.Errorf("floor not corrected: %v", out.Records[2])
	}
	// XY stays put (the reading was fine planarly).
	if out.Records[2].P.Dist(geom.Pt(6, 5)) > 0.5 {
		t.Errorf("floor fix moved the point to %v", out.Records[2].P)
	}
}

func TestInterpolationOfOutlier(t *testing.T) {
	c := New(testvenue.MustTwoFloor())
	// Walking along the hallway; one record jumps 30 m in one second.
	s := seq(
		rec(2, 5, 1, 0),
		rec(4, 5, 1, 4*time.Second),
		rec(34, 5, 1, 5*time.Second), // outlier: 30 m in 1 s
		rec(8, 5, 1, 12*time.Second),
		rec(10, 5, 1, 16*time.Second),
	)
	out, rep := c.Clean(s)
	if rep.Interpolated != 1 {
		t.Fatalf("interpolated = %d (%+v)", rep.Interpolated, rep)
	}
	got := out.Records[2].P
	// The repaired point lies between the anchors (4,5) and (8,5),
	// time-proportionally at 1/8 of the way.
	if got.X < 4 || got.X > 8 || got.Dist(geom.Pt(4.5, 5)) > 1.5 {
		t.Errorf("interpolated point = %v, want ≈(4.5, 5)", got)
	}
	// All repaired records satisfy the speed constraint afterwards.
	assertSpeedOK(t, c, out)
}

func assertSpeedOK(t *testing.T, c *Cleaner, s *position.Sequence) {
	t.Helper()
	for i := 1; i < s.Len(); i++ {
		a, b := s.Records[i-1], s.Records[i]
		d, ok := c.Model.WalkingDistance(a.Location(), b.Location())
		if !ok {
			t.Errorf("records %d-%d unreachable after cleaning", i-1, i)
			continue
		}
		dt := b.At.Sub(a.At).Seconds()
		if dt > 0 && d/dt > c.MaxSpeed*1.05 {
			t.Errorf("speed %0.2f m/s between %d and %d exceeds constraint", d/dt, i-1, i)
		}
	}
}

func TestInterpolationRunOfSeveral(t *testing.T) {
	c := New(testvenue.MustTwoFloor())
	s := seq(
		rec(2, 5, 1, 0),
		rec(35, 18, 1, 2*time.Second), // garbage
		rec(38, 2, 1, 4*time.Second),  // garbage (plausible from prev garbage, but not from anchor)
		rec(4, 5, 1, 8*time.Second),
	)
	out, rep := c.Clean(s)
	if rep.Interpolated < 2 {
		t.Fatalf("interpolated = %d, want ≥2 (%+v)", rep.Interpolated, rep.Changes)
	}
	assertSpeedOK(t, c, out)
}

func TestTrailingInvalidHeldAtAnchor(t *testing.T) {
	c := New(testvenue.MustTwoFloor())
	s := seq(
		rec(2, 5, 1, 0),
		rec(4, 5, 1, 4*time.Second),
		rec(38, 18, 1, 5*time.Second), // trailing garbage, no later anchor
	)
	out, rep := c.Clean(s)
	if rep.Interpolated != 1 {
		t.Fatalf("interpolated = %d", rep.Interpolated)
	}
	if !out.Records[2].P.Eq(out.Records[1].P) {
		t.Errorf("trailing invalid should hold at anchor, got %v", out.Records[2].P)
	}
}

func TestCrossFloorTeleportInterpolated(t *testing.T) {
	c := New(testvenue.MustTwoFloor())
	// Jumping from floor 1 hallway to floor 2 room in 2 s is impossible
	// (the only stair is ~30 m away); with a later consistent anchor the
	// record is repaired rather than trusted.
	s := seq(
		rec(2, 5, 1, 0),
		rec(5, 15, 2, 2*time.Second), // impossible jump
		rec(6, 5, 1, 6*time.Second),
	)
	out, rep := c.Clean(s)
	if rep.Modified() == 0 {
		t.Fatal("impossible cross-floor jump left untouched")
	}
	if out.Records[1].Floor != 1 {
		t.Errorf("repaired record floor = %v, want 1", out.Records[1].Floor)
	}
	assertSpeedOK(t, c, out)
}

func TestLegitimateFloorChangeKept(t *testing.T) {
	c := New(testvenue.MustTwoFloor())
	// A slow, genuine stair climb: hallway → stairs → floor 2 hallway.
	s := seq(
		rec(30, 4, 1, 0),
		rec(37, 2, 1, 10*time.Second), // at the stairs
		rec(37, 2, 2, 40*time.Second), // emerged on floor 2
		rec(30, 4, 2, 50*time.Second),
	)
	_, rep := c.Clean(s)
	if rep.FloorFixed != 0 || rep.Interpolated != 0 {
		t.Errorf("legitimate floor change repaired: %+v", rep.Changes)
	}
}

func TestEuclideanAblationMissesWallCrossing(t *testing.T) {
	m := testvenue.MustTwoFloor()
	// Hop between adjacent rooms through the wall: Euclidean distance is
	// tiny (2 m in 4 s) but the walking distance via doors is ≈20 m.
	s := seq(
		rec(9, 15, 1, 0),
		rec(11, 15, 1, 4*time.Second),
		rec(9, 15, 1, 8*time.Second),
		rec(11, 15, 1, 12*time.Second),
	)
	walk := &Cleaner{Model: m, MaxSpeed: 3.0}
	_, repWalk := walk.Clean(s)
	euclid := &Cleaner{Model: m, MaxSpeed: 3.0, UseEuclidean: true}
	_, repEuclid := euclid.Clean(s)
	if repWalk.Interpolated == 0 {
		t.Error("walking-distance check should flag the wall-crossing hops")
	}
	if repEuclid.Interpolated != 0 || repEuclid.FloorFixed != 0 {
		t.Error("euclidean ablation unexpectedly repaired the hops")
	}
}

func TestZeroTimeDeltaDuplicate(t *testing.T) {
	c := New(testvenue.MustTwoFloor())
	// Identical timestamp, different position: the second reading is
	// invalid and repairable.
	s := seq(
		rec(2, 5, 1, 0),
		rec(20, 5, 1, 0),
		rec(3, 5, 1, 4*time.Second),
	)
	out, rep := c.Clean(s)
	if rep.Interpolated != 1 {
		t.Fatalf("duplicate-time record not repaired: %+v", rep)
	}
	if out.Records[1].P.X > 4 {
		t.Errorf("repaired duplicate at %v", out.Records[1].P)
	}
}

func TestReportChangesComplete(t *testing.T) {
	c := New(testvenue.MustTwoFloor())
	s := seq(
		rec(2, 5, 1, 0),
		rec(6, 5, 2, 4*time.Second),  // floor error
		rec(34, 5, 1, 5*time.Second), // outlier
		rec(8, 5, 1, 12*time.Second),
	)
	_, rep := c.Clean(s)
	if rep.Total != 4 {
		t.Errorf("total = %d", rep.Total)
	}
	if got := rep.FloorFixed + rep.Interpolated + rep.Snapped; got != len(rep.Changes) {
		t.Errorf("change accounting: %d kinds vs %d changes", got, len(rep.Changes))
	}
	for _, ch := range rep.Changes {
		if ch.Index < 0 || ch.Index >= 4 {
			t.Errorf("change index out of range: %+v", ch)
		}
		if ch.Kind == "" {
			t.Errorf("change without kind: %+v", ch)
		}
	}
}
