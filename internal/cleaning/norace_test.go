//go:build !race

package cleaning

// raceEnabled reports that the race detector is instrumenting this build.
const raceEnabled = false
