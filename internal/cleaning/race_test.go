//go:build race

package cleaning

// raceEnabled reports that the race detector is instrumenting this build.
// Race instrumentation inhibits inlining, which makes allocation counts
// differ from production builds — the zero-alloc guards skip under it.
const raceEnabled = true
