// Package cleaning implements the Cleaning layer of the TRIPS three-layer
// translation framework (paper Fig. 3) — the Raw Data Cleaner module.
//
// "The Cleaning layer identifies and repairs the distinct raw data errors
// that result from the indoor positioning. Considering the speed constraint
// that people cannot move too fast indoors, the invalid positioning records
// are identified by checking the speeds between consecutive positioning
// records based on the minimum indoor walking distance [13]. An invalid
// positioning record is repaired in two steps. A floor value correction
// fixes an error in that record's floor value. If the speed constraint
// violation still occurs after the correction, a location interpolation is
// performed by deriving the possible locations at the time of that record
// based on the indoor geometrical and topological information captured by
// the DSM."
//
// The implementation follows that order exactly: speed-constraint detection
// against the DSM walking distance, then per-record floor correction, then
// location interpolation along the DSM walking path between the surrounding
// valid anchors. Records outside walkable space (inside walls, beyond the
// building) are snapped to the nearest partition first.
package cleaning

import (
	"math"
	"time"

	"trips/internal/dsm"
	"trips/internal/geom"
	"trips/internal/position"
)

// Cleaner cleans raw positioning sequences against a frozen DSM.
type Cleaner struct {
	// Model is the digital space model; required.
	Model *dsm.Model

	// MaxSpeed is the speed constraint in m/s. Indoor pedestrians rarely
	// exceed 2.5 m/s; the default 3.0 leaves headroom for brisk walking.
	MaxSpeed float64

	// UseEuclidean switches the speed check from the minimum indoor
	// walking distance to straight-line distance. It exists for the
	// ablation experiment (E4 in DESIGN.md) showing that Euclidean
	// distance under-detects wall-crossing errors; production use keeps
	// it false.
	UseEuclidean bool

	// DisableSnap keeps out-of-walkable records in place instead of
	// snapping them to the nearest partition. Ablation switch.
	DisableSnap bool
}

// New returns a Cleaner with the default speed constraint.
func New(m *dsm.Model) *Cleaner { return &Cleaner{Model: m, MaxSpeed: 3.0} }

// Repair kinds recorded per modified record.
const (
	RepairSnap        = "snap"
	RepairFloor       = "floor"
	RepairInterpolate = "interpolate"
)

// Change describes one repaired record.
type Change struct {
	Index  int             `json:"index"`
	Kind   string          `json:"kind"`
	Before position.Record `json:"before"`
	After  position.Record `json:"after"`
}

// Report summarizes a cleaning run.
type Report struct {
	Total        int      `json:"total"`
	Snapped      int      `json:"snapped"`
	FloorFixed   int      `json:"floorFixed"`
	Interpolated int      `json:"interpolated"`
	Changes      []Change `json:"changes,omitempty"`
}

// Modified returns the number of records altered in any way.
func (r Report) Modified() int { return len(r.Changes) }

// maxCleanPasses caps the fixed-point iteration of Clean. Adversarial
// walks occasionally need a second or third pass (a repair anchored on a
// record that a later repair moves); anything still oscillating after five
// passes is returned as-is rather than looping forever.
const maxCleanPasses = 5

// Clean returns a repaired copy of the sequence and the report of what was
// changed. The input is never mutated.
//
// A single snap → detect → repair sweep is not idempotent: interpolating an
// invalid run against an anchor that a repair itself moved can leave a
// residual speed violation that only the next sweep sees. Clean therefore
// iterates the sweep until a pass moves no record (the fixed point — so
// Clean(Clean(s)) ≡ Clean(s)), bounded by maxCleanPasses. The report
// accumulates every pass's repairs, so a record repaired twice appears
// twice.
func (c *Cleaner) Clean(s *position.Sequence) (*position.Sequence, Report) {
	out := s.Clone()
	rep := Report{Total: s.Len()}
	if out.Len() == 0 {
		return out, rep
	}
	var sc cleanScratch
	c.cleanInto(out, c.maxSpeed(), &rep, nil, &sc)
	return out, rep
}

// cleanScratch is reusable working state for one cleaning run: the
// detection masks and the interpolation path buffer. CleanFrom threads the
// per-session instance held in State through every sweep, so a steady-state
// incremental flush allocates nothing here; the batch Clean uses a
// throwaway one.
type cleanScratch struct {
	valid []bool
	fresh []bool
	path  []dsm.Location
}

// maxSpeed returns the effective speed constraint.
func (c *Cleaner) maxSpeed() float64 {
	if c.MaxSpeed <= 0 {
		return 3.0
	}
	return c.MaxSpeed
}

// cleanInto iterates the snap → detect → repair sweep over out to its fixed
// point (bounded by maxCleanPasses), appending repairs to rep. When inv is
// non-nil it must have out.Len() entries; every index detected as a
// speed-constraint violation in any pass is marked true — the precise
// "this record's final value depended on repair anchoring" set that the
// incremental CleanFrom uses to bound its stable prefix.
//
// A run that hits the pass cap mid-oscillation is still deterministic:
// every run over the same records executes the identical passes, and an
// oscillating segment whose anchors lie inside the sequence replays the
// identical capped oscillation in any longer re-clean — which is why
// CleanFrom's stability rules need the invalid marks but not the
// convergence outcome.
func (c *Cleaner) cleanInto(out *position.Sequence, maxSpeed float64, rep *Report, inv []bool, sc *cleanScratch) {
	for pass := 0; pass < maxCleanPasses; pass++ {
		start := len(rep.Changes)
		c.cleanPass(out, maxSpeed, rep, pass == 0, inv, sc)
		moved := false
		for _, ch := range rep.Changes[start:] {
			if !ch.After.P.Eq(ch.Before.P) || ch.After.Floor != ch.Before.Floor {
				moved = true
				break
			}
		}
		if !moved {
			return
		}
	}
}

// cleanPass runs one in-place snap → detect → floor-fix → interpolate
// sweep, appending repairs to the report. The first sweep also records
// no-op interpolations (a suspect record re-derived to its own value) —
// the online engine's invalid-run tracking needs those flagged — while
// later sweeps record only records that actually moved, so converged
// verification passes don't inflate the counters. inv, when non-nil,
// accumulates every index detected invalid this pass.
func (c *Cleaner) cleanPass(out *position.Sequence, maxSpeed float64, rep *Report, noops bool, inv []bool, sc *cleanScratch) {
	// Step 0: snap every record into walkable space. Positioning noise
	// routinely places points inside walls; all later geometry assumes
	// walkable coordinates.
	if !c.DisableSnap {
		for i := range out.Records {
			r := &out.Records[i]
			p, _, ok := c.Model.SnapToWalkable(r.P, r.Floor)
			if ok && !p.Eq(r.P) {
				before := *r
				r.P = p
				rep.Snapped++
				rep.Changes = append(rep.Changes, Change{i, RepairSnap, before, *r})
			}
		}
	}

	// Step 1: speed-constraint detection. valid[i] marks records that are
	// consistent with the last valid anchor before them.
	valid := c.detectValid(out, maxSpeed, &sc.valid)
	markInvalid(inv, valid)

	// Step 2: floor value correction. A record rejected only because of a
	// wrong floor becomes valid once its floor is replaced by a plausible
	// neighbor floor.
	floorFixed := 0
	for i := range out.Records {
		if valid[i] {
			continue
		}
		if fixed, nf := c.tryFloorFix(out, valid, i, maxSpeed); fixed {
			before := out.Records[i]
			out.Records[i].Floor = nf
			// Re-snap on the corrected floor.
			if !c.DisableSnap {
				if p, _, ok := c.Model.SnapToWalkable(out.Records[i].P, nf); ok {
					out.Records[i].P = p
				}
			}
			valid[i] = true
			floorFixed++
			rep.FloorFixed++
			rep.Changes = append(rep.Changes, Change{i, RepairFloor, before, out.Records[i]})
		}
	}

	// Re-detect after floor fixes: fixes were validated against their
	// anchors, but two adjacent fixed records may still be mutually
	// inconsistent; the fresh pass demotes such records to interpolation.
	if floorFixed > 0 {
		fresh := c.detectValid(out, maxSpeed, &sc.fresh)
		for i := range valid {
			valid[i] = fresh[i]
		}
		markInvalid(inv, valid)
	}

	// Step 3: location interpolation for the remaining invalid runs.
	rep.Interpolated += c.interpolateRuns(out, valid, rep, noops, sc)
}

// detectValid walks the sequence keeping a "last valid" anchor: record i is
// valid when the speed needed to reach it from the anchor does not exceed
// maxSpeed. The first record is the initial anchor. The mask is written
// into *buf, reused across calls.
func (c *Cleaner) detectValid(s *position.Sequence, maxSpeed float64, buf *[]bool) []bool {
	valid := resizeBools(buf, s.Len())
	valid[0] = true
	anchor := 0
	for i := 1; i < s.Len(); i++ {
		if c.speedOK(s.Records[anchor], s.Records[i], maxSpeed) {
			valid[i] = true
			anchor = i
		}
	}
	return valid
}

// speedOK reports whether moving a→b satisfies the speed constraint using
// the configured distance.
func (c *Cleaner) speedOK(a, b position.Record, maxSpeed float64) bool {
	dt := b.At.Sub(a.At).Seconds()
	if dt <= 0 {
		return a.P.Eq(b.P) && a.Floor == b.Floor
	}
	var d float64
	if c.UseEuclidean {
		if a.Floor != b.Floor {
			// Straight-line distance cannot price a floor change; charge
			// the storey height so cross-floor teleports still register.
			d = a.P.Dist(b.P) + c.Model.FloorHeight*math.Abs(float64(b.Floor-a.Floor))
		} else {
			d = a.P.Dist(b.P)
		}
	} else {
		var ok bool
		d, ok = c.Model.WalkingDistance(a.Location(), b.Location())
		if !ok {
			return false // unreachable: cannot be a genuine movement
		}
	}
	return d/dt <= maxSpeed
}

// tryFloorFix tests whether replacing record i's floor with a neighbor's
// floor resolves the violation in both directions. It returns the fixing
// floor on success.
func (c *Cleaner) tryFloorFix(s *position.Sequence, valid []bool, i int, maxSpeed float64) (bool, dsm.FloorID) {
	prev := prevValid(valid, i)
	next := nextValid(valid, i)

	var candidates [2]dsm.FloorID
	nc := 0
	if prev >= 0 && s.Records[prev].Floor != s.Records[i].Floor {
		candidates[nc] = s.Records[prev].Floor
		nc++
	}
	if next >= 0 && s.Records[next].Floor != s.Records[i].Floor {
		f := s.Records[next].Floor
		if nc == 0 || candidates[0] != f {
			candidates[nc] = f
			nc++
		}
	}
	for _, f := range candidates[:nc] {
		if !c.Model.HasFloor(f) {
			continue
		}
		trial := s.Records[i]
		trial.Floor = f
		if p, _, ok := c.Model.SnapToWalkable(trial.P, f); ok {
			trial.P = p
		}
		okPrev := prev < 0 || c.speedOK(s.Records[prev], trial, maxSpeed)
		okNext := next < 0 || c.speedOK(trial, s.Records[next], maxSpeed)
		if okPrev && okNext {
			return true, f
		}
	}
	return false, 0
}

// markInvalid accumulates the currently-invalid indexes into inv.
func markInvalid(inv, valid []bool) {
	if inv == nil {
		return
	}
	for i, v := range valid {
		if !v {
			inv[i] = true
		}
	}
}

func prevValid(valid []bool, i int) int {
	for j := i - 1; j >= 0; j-- {
		if valid[j] {
			return j
		}
	}
	return -1
}

func nextValid(valid []bool, i int) int {
	for j := i + 1; j < len(valid); j++ {
		if valid[j] {
			return j
		}
	}
	return -1
}

// interpolateRuns repairs every maximal run of invalid records by placing
// them on the DSM walking path between the surrounding valid anchors,
// proportionally to their timestamps. Runs without a following anchor are
// held at the previous anchor's location (the object is assumed to have
// lingered); runs without a preceding anchor mirror from the next anchor.
// With noops false, a repair that derives the record's existing value is
// applied but not reported.
func (c *Cleaner) interpolateRuns(s *position.Sequence, valid []bool, rep *Report, noops bool, sc *cleanScratch) int {
	n := s.Len()
	count := 0
	for i := 0; i < n; {
		if valid[i] {
			i++
			continue
		}
		j := i
		for j < n && !valid[j] {
			j++
		}
		// Invalid run [i, j).
		prev := i - 1 // valid or -1
		next := -1
		if j < n {
			next = j
		}
		for k := i; k < j; k++ {
			before := s.Records[k]
			s.Records[k] = c.interpolateOne(s, prev, next, k, sc)
			valid[k] = true
			if !noops && s.Records[k].P.Eq(before.P) && s.Records[k].Floor == before.Floor {
				continue
			}
			count++
			rep.Changes = append(rep.Changes, Change{k, RepairInterpolate, before, s.Records[k]})
		}
		i = j
	}
	return count
}

// interpolateOne derives the possible location of record k between anchors
// prev and next (either may be absent, not both — the first record is
// always a valid anchor).
func (c *Cleaner) interpolateOne(s *position.Sequence, prev, next, k int, sc *cleanScratch) position.Record {
	r := s.Records[k]
	switch {
	case prev >= 0 && next >= 0:
		a, b := s.Records[prev], s.Records[next]
		path, ok := c.Model.AppendWalkingPath(sc.path[:0], a.Location(), b.Location())
		sc.path = path[:0]
		if !ok {
			// Disconnected anchors: hold at the earlier one.
			r.P, r.Floor = a.P, a.Floor
			return r
		}
		total := pathLength(path, c.Model.FloorHeight)
		frac := timeFrac(a.At, b.At, r.At)
		p, f := pathAt(path, total*frac, c.Model.FloorHeight)
		r.P, r.Floor = p, f
		// Path legs pass through door centers inside wall bands; the
		// derived location must itself be walkable or a second cleaning
		// pass would re-touch it.
		if !c.DisableSnap {
			if sp, _, ok := c.Model.SnapToWalkable(r.P, r.Floor); ok {
				r.P = sp
			}
		}
	case prev >= 0:
		a := s.Records[prev]
		r.P, r.Floor = a.P, a.Floor
	case next >= 0:
		b := s.Records[next]
		r.P, r.Floor = b.P, b.Floor
	}
	return r
}

func timeFrac(a, b, t time.Time) float64 {
	den := b.Sub(a).Seconds()
	if den <= 0 {
		return 0
	}
	f := t.Sub(a).Seconds() / den
	return math.Max(0, math.Min(1, f))
}

// verticalLegFactor mirrors the DSM's pricing of floor changes in the
// walking distance: interpolation must budget travel the same way the speed
// constraint measures it, or interpolated records straddling a floor change
// would violate the very constraint they were derived from.
const verticalLegFactor = 3.0

// legLength prices one path leg: planar distance plus the vertical cost of
// any floor change.
func legLength(a, b dsm.Location, floorHeight float64) float64 {
	d := a.P.Dist(b.P)
	if df := float64(b.Floor - a.Floor); df != 0 {
		d += floorHeight * verticalLegFactor * math.Abs(df)
	}
	return d
}

// pathLength sums the priced lengths of the walking path legs.
func pathLength(path []dsm.Location, floorHeight float64) float64 {
	var d float64
	for i := 1; i < len(path); i++ {
		d += legLength(path[i-1], path[i], floorHeight)
	}
	return d
}

// pathAt returns the point and floor at priced arc-length dist along the
// path. On a floor-changing leg, the planar position interpolates while the
// floor flips at the leg midpoint (the walker is in the shaft).
func pathAt(path []dsm.Location, dist float64, floorHeight float64) (geom.Point, dsm.FloorID) {
	if len(path) == 0 {
		return geom.Point{}, 0
	}
	if dist <= 0 {
		return path[0].P, path[0].Floor
	}
	for i := 1; i < len(path); i++ {
		l := legLength(path[i-1], path[i], floorHeight)
		if dist <= l {
			if l <= geom.Eps {
				return path[i].P, path[i].Floor
			}
			t := dist / l
			f := path[i-1].Floor
			if t > 0.5 {
				f = path[i].Floor
			}
			return path[i-1].P.Lerp(path[i].P, t), f
		}
		dist -= l
	}
	last := path[len(path)-1]
	return last.P, last.Floor
}
