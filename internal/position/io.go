package position

import (
	"bufio"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"strings"
	"time"

	"trips/internal/dsm"
	"trips/internal/geom"
	"trips/internal/intern"
)

// The Data Selector "accepts the indoor positioning data from multi-sources
// (e.g., text files, database tables, and streams APIs)". This file covers
// the text formats: CSV with header `device,x,y,floor,time` and JSON lines.
// Timestamps accept RFC3339 or unix milliseconds; floors accept "3F", "B1"
// or a bare integer.

// ParseFloor parses "3F", "B2" or "-2"/"3" into a FloorID.
func ParseFloor(s string) (dsm.FloorID, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, fmt.Errorf("position: empty floor")
	}
	up := strings.ToUpper(s)
	switch {
	case strings.HasSuffix(up, "F"):
		n, err := strconv.Atoi(up[:len(up)-1])
		if err != nil {
			return 0, fmt.Errorf("position: bad floor %q", s)
		}
		return dsm.FloorID(n), nil
	case strings.HasPrefix(up, "B"):
		n, err := strconv.Atoi(up[1:])
		if err != nil || n <= 0 {
			return 0, fmt.Errorf("position: bad floor %q", s)
		}
		return dsm.FloorID(-n), nil
	default:
		n, err := strconv.Atoi(up)
		if err != nil {
			return 0, fmt.Errorf("position: bad floor %q", s)
		}
		return dsm.FloorID(n), nil
	}
}

// ParseTime parses RFC3339 or unix milliseconds.
func ParseTime(s string) (time.Time, error) {
	s = strings.TrimSpace(s)
	if ms, err := strconv.ParseInt(s, 10, 64); err == nil {
		return time.UnixMilli(ms).UTC(), nil
	}
	t, err := time.Parse(time.RFC3339, s)
	if err != nil {
		return time.Time{}, fmt.Errorf("position: bad time %q", s)
	}
	return t, nil
}

// StreamCSV parses records from CSV and hands each to fn as soon as its
// row parses, holding O(1) memory regardless of input size — the form the
// server's ingest endpoint feeds straight into the online engine. It
// returns the number of records delivered. The first row may be a header
// (detected by a non-numeric x column). A malformed row or an fn error
// stops the stream with a row-numbered error; records already delivered
// stay delivered, and the count says how many.
func StreamCSV(r io.Reader, fn func(Record) error) (int, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 5
	cr.ReuseRecord = true // parseCSVRow copies what it keeps
	// Device ids repeat on almost every row; interning them shares one
	// string allocation per distinct device instead of one per record.
	var devs intern.Table
	n, row := 0, 0
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			return n, nil
		}
		if err != nil {
			return n, fmt.Errorf("position: csv row %d: %w", row+1, err)
		}
		row++
		if row == 1 && !isNumeric(rec[1]) {
			continue // header
		}
		pr, err := parseCSVRow(rec, &devs)
		if err != nil {
			return n, fmt.Errorf("position: csv row %d: %w", row, err)
		}
		if err := fn(pr); err != nil {
			return n, fmt.Errorf("position: csv row %d: %w", row, err)
		}
		n++
	}
}

// ReadCSV parses records from CSV into a dataset. Malformed rows abort
// with a row-numbered error: positioning logs are machine-written, so
// corruption indicates the wrong file rather than a few bad rows.
func ReadCSV(r io.Reader) (*Dataset, error) {
	ds := NewDataset()
	if _, err := StreamCSV(r, func(pr Record) error {
		ds.Add(pr)
		return nil
	}); err != nil {
		return nil, err
	}
	return ds, nil
}

func isNumeric(s string) bool {
	_, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
	return err == nil
}

// parseCoord parses a planar coordinate, rejecting NaN and infinities:
// they poison every downstream distance and density computation, so a
// non-finite coordinate means a corrupt feed, not a position.
func parseCoord(axis, s string) (float64, error) {
	v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
	if err != nil {
		return 0, fmt.Errorf("bad %s %q", axis, s)
	}
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0, fmt.Errorf("non-finite %s %q", axis, s)
	}
	return v, nil
}

func parseCSVRow(rec []string, devs *intern.Table) (Record, error) {
	x, err := parseCoord("x", rec[1])
	if err != nil {
		return Record{}, err
	}
	y, err := parseCoord("y", rec[2])
	if err != nil {
		return Record{}, err
	}
	f, err := ParseFloor(rec[3])
	if err != nil {
		return Record{}, err
	}
	at, err := ParseTime(rec[4])
	if err != nil {
		return Record{}, err
	}
	return Record{
		Device: DeviceID(devs.Canonical(strings.TrimSpace(rec[0]))),
		P:      geom.Pt(x, y),
		Floor:  f,
		At:     at,
	}, nil
}

// WriteCSV writes the dataset with a header, devices in sorted order,
// records in time order, timestamps as RFC3339 with millisecond precision.
func WriteCSV(w io.Writer, ds *Dataset) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"device", "x", "y", "floor", "time"}); err != nil {
		return err
	}
	for _, s := range ds.Sequences() {
		for _, r := range s.Records {
			err := cw.Write([]string{
				string(r.Device),
				strconv.FormatFloat(r.P.X, 'f', 3, 64),
				strconv.FormatFloat(r.P.Y, 'f', 3, 64),
				r.Floor.String(),
				r.At.UTC().Format("2006-01-02T15:04:05.000Z07:00"),
			})
			if err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// jsonRecord is the JSON-lines wire format.
type jsonRecord struct {
	Device string  `json:"device"`
	X      float64 `json:"x"`
	Y      float64 `json:"y"`
	Floor  string  `json:"floor"`
	Time   string  `json:"time"`
}

// StreamJSONL parses one JSON object per line, handing each record to fn
// as soon as its line parses — the O(1)-memory counterpart of StreamCSV,
// with the same error contract: a malformed line or an fn error stops the
// stream with a line-numbered error and the count of records already
// delivered.
func StreamJSONL(r io.Reader, fn func(Record) error) (int, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	// See StreamCSV: one device-string allocation per distinct device.
	var devs intern.Table
	n, line := 0, 0
	for sc.Scan() {
		line++
		raw := strings.TrimSpace(sc.Text())
		if raw == "" {
			continue
		}
		var jr jsonRecord
		if err := json.Unmarshal([]byte(raw), &jr); err != nil {
			return n, fmt.Errorf("position: jsonl line %d: %w", line, err)
		}
		// JSON cannot encode NaN/Inf literals, but keep the reader's
		// contract identical to CSV: only finite coordinates pass.
		if math.IsNaN(jr.X) || math.IsInf(jr.X, 0) || math.IsNaN(jr.Y) || math.IsInf(jr.Y, 0) {
			return n, fmt.Errorf("position: jsonl line %d: non-finite coordinates", line)
		}
		f, err := ParseFloor(jr.Floor)
		if err != nil {
			return n, fmt.Errorf("position: jsonl line %d: %w", line, err)
		}
		at, err := ParseTime(jr.Time)
		if err != nil {
			return n, fmt.Errorf("position: jsonl line %d: %w", line, err)
		}
		if err := fn(Record{Device: DeviceID(devs.Canonical(jr.Device)), P: geom.Pt(jr.X, jr.Y), Floor: f, At: at}); err != nil {
			return n, fmt.Errorf("position: jsonl line %d: %w", line, err)
		}
		n++
	}
	if err := sc.Err(); err != nil {
		return n, err
	}
	return n, nil
}

// ReadJSONL parses one JSON object per line into a dataset.
func ReadJSONL(r io.Reader) (*Dataset, error) {
	ds := NewDataset()
	if _, err := StreamJSONL(r, func(pr Record) error {
		ds.Add(pr)
		return nil
	}); err != nil {
		return nil, err
	}
	return ds, nil
}

// WriteJSONL writes one JSON object per line, device then time order.
func WriteJSONL(w io.Writer, ds *Dataset) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, s := range ds.Sequences() {
		for _, r := range s.Records {
			jr := jsonRecord{
				Device: string(r.Device),
				X:      r.P.X, Y: r.P.Y,
				Floor: r.Floor.String(),
				Time:  r.At.UTC().Format("2006-01-02T15:04:05.000Z07:00"),
			}
			if err := enc.Encode(jr); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// LoadFile reads a dataset from a .csv or .jsonl file by extension.
func LoadFile(path string) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	switch {
	case strings.HasSuffix(path, ".csv"):
		return ReadCSV(f)
	case strings.HasSuffix(path, ".jsonl"), strings.HasSuffix(path, ".ndjson"):
		return ReadJSONL(f)
	default:
		return nil, fmt.Errorf("position: unknown dataset extension in %q", path)
	}
}

// SaveFile writes a dataset to a .csv or .jsonl file by extension.
func SaveFile(path string, ds *Dataset) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	switch {
	case strings.HasSuffix(path, ".csv"):
		err = WriteCSV(f, ds)
	case strings.HasSuffix(path, ".jsonl"), strings.HasSuffix(path, ".ndjson"):
		err = WriteJSONL(f, ds)
	default:
		err = fmt.Errorf("position: unknown dataset extension in %q", path)
	}
	if err != nil {
		return err
	}
	return f.Close()
}
