// Package position is the raw indoor positioning data substrate of TRIPS.
//
// It models the left-hand side of the paper's Table 1: raw positioning
// records of the form (object, (x, y, floor), timestamp), grouped into
// per-device sequences and datasets, with readers and writers for the
// multi-source inputs the Data Selector accepts (CSV files, JSON lines,
// and stream APIs).
package position

import (
	"fmt"
	"math"
	"time"

	"trips/internal/dsm"
	"trips/internal/geom"
)

// DeviceID identifies a positioned object (an anonymized device MAC in the
// paper's dataset).
type DeviceID string

// Record is one raw positioning record: a device seen at a geometric point
// on a floor at a timestamp. Records are value types; sequences copy them
// freely.
type Record struct {
	Device DeviceID    `json:"device"`
	P      geom.Point  `json:"p"`
	Floor  dsm.FloorID `json:"floor"`
	At     time.Time   `json:"at"`
}

// Location returns the record's location as a DSM location.
func (r Record) Location() dsm.Location { return dsm.Location{P: r.P, Floor: r.Floor} }

// String formats the record the way the paper prints it:
// "oi, (5.1, 12.7, 3F), 1:02:05pm".
func (r Record) String() string {
	return fmt.Sprintf("%s, (%.1f, %.1f, %s), %s",
		r.Device, r.P.X, r.P.Y, r.Floor, r.At.Format("3:04:05pm"))
}

// SpeedTo returns the speed in m/s required to move straight from r to next,
// using Euclidean distance (the cleaning layer substitutes the indoor
// walking distance for the numerator). It returns +Inf for non-positive
// time deltas between distinct points and 0 for identical records.
func (r Record) SpeedTo(next Record) float64 {
	d := r.P.Dist(next.P)
	dt := next.At.Sub(r.At).Seconds()
	if dt <= 0 {
		if d == 0 && r.Floor == next.Floor {
			return 0
		}
		return math.Inf(1)
	}
	return d / dt
}
