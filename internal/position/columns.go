package position

import (
	"time"

	"trips/internal/dsm"
	"trips/internal/geom"
)

// Columns is a struct-of-arrays projection of a record run. The per-record
// scans of the translation pipeline — density neighborhoods, cut detection —
// read one or two fields per record; scanning them as parallel columns pulls
// a fraction of the memory through the cache that the full Record rows
// (device string included) would, and the incremental annotator keeps one
// Columns synced with its growing tail so the projection is paid only for
// the new suffix.
type Columns struct {
	At    []time.Time
	Floor []dsm.FloorID
	P     []geom.Point
}

// Sync resizes the columns to recs and rewrites entries [from:], keeping the
// prefix — the incremental form for a tail whose records below from are
// unchanged since the last call. Sync(recs, 0) projects from scratch.
func (c *Columns) Sync(recs []Record, from int) {
	n := len(recs)
	c.At = growCol(c.At, n)
	c.Floor = growCol(c.Floor, n)
	c.P = growCol(c.P, n)
	for i := from; i < n; i++ {
		r := &recs[i]
		c.At[i], c.Floor[i], c.P[i] = r.At, r.Floor, r.P
	}
}

// Len returns the number of projected records.
func (c *Columns) Len() int { return len(c.At) }

// growCol resizes buf to n entries, keeping existing values. Growth doubles
// capacity: a session tail grows by a few records per flush, and exact-size
// growth would reallocate-and-copy every column on every flush.
func growCol[T any](buf []T, n int) []T {
	if cap(buf) < n {
		grown := make([]T, n, 2*n)
		copy(grown, buf)
		return grown
	}
	return buf[:n]
}
