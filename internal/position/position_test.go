package position

import (
	"bytes"
	"context"
	"math"
	"runtime"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"trips/internal/dsm"
	"trips/internal/geom"
)

var t0 = time.Date(2017, 1, 2, 10, 0, 0, 0, time.UTC)

func rec(dev string, x, y float64, floor int, offset time.Duration) Record {
	return Record{Device: DeviceID(dev), P: geom.Pt(x, y), Floor: dsm.FloorID(floor), At: t0.Add(offset)}
}

func TestRecordString(t *testing.T) {
	r := Record{Device: "oi", P: geom.Pt(5.1, 12.7), Floor: 3,
		At: time.Date(2017, 1, 2, 13, 2, 5, 0, time.UTC)}
	want := "oi, (5.1, 12.7, 3F), 1:02:05pm"
	if got := r.String(); got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
}

func TestRecordSpeedTo(t *testing.T) {
	a := rec("d", 0, 0, 1, 0)
	b := rec("d", 3, 4, 1, 5*time.Second)
	if v := a.SpeedTo(b); !almost(v, 1) {
		t.Errorf("speed = %v, want 1", v)
	}
	// Zero time delta, distinct points: infinite speed.
	c := rec("d", 10, 0, 1, 0)
	if v := a.SpeedTo(c); !math.IsInf(v, 1) {
		t.Errorf("speed over zero dt = %v", v)
	}
	// Identical record: zero speed.
	if v := a.SpeedTo(a); v != 0 {
		t.Errorf("self speed = %v", v)
	}
}

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestSequenceAppendKeepsOrder(t *testing.T) {
	s := NewSequence("d")
	s.Append(rec("d", 0, 0, 1, 10*time.Second))
	s.Append(rec("d", 1, 0, 1, 30*time.Second))
	s.Append(rec("d", 2, 0, 1, 20*time.Second)) // out of order
	if s.Len() != 3 {
		t.Fatalf("len = %d", s.Len())
	}
	for i := 1; i < s.Len(); i++ {
		if s.Records[i].At.Before(s.Records[i-1].At) {
			t.Fatalf("records out of order at %d", i)
		}
	}
	if s.Records[1].P.X != 2 {
		t.Errorf("inserted record misplaced: %v", s.Records)
	}
}

func TestSequenceStats(t *testing.T) {
	s := NewSequence("d")
	if !s.Start().IsZero() || !s.End().IsZero() || s.Duration() != 0 {
		t.Error("empty sequence stats should be zero")
	}
	s.Append(rec("d", 0, 0, 1, 0))
	s.Append(rec("d", 3, 4, 1, 10*time.Second))
	s.Append(rec("d", 3, 4, 2, 40*time.Second)) // floor change
	if s.Duration() != 40*time.Second {
		t.Errorf("duration = %v", s.Duration())
	}
	if d := s.TravelDistance(); !almost(d, 5) {
		t.Errorf("travel distance = %v, want 5 (floor change free)", d)
	}
	if mp := s.MeanPeriod(); mp != 20*time.Second {
		t.Errorf("mean period = %v", mp)
	}
	if g := s.MaxGap(); g != 30*time.Second {
		t.Errorf("max gap = %v", g)
	}
	fl := s.Floors()
	if len(fl) != 2 || fl[0] != 1 || fl[1] != 2 {
		t.Errorf("floors = %v", fl)
	}
	b := s.Bounds()
	if !b.Min.Eq(geom.Pt(0, 0)) || !b.Max.Eq(geom.Pt(3, 4)) {
		t.Errorf("bounds = %v", b)
	}
}

func TestSequenceTimeWindow(t *testing.T) {
	s := NewSequence("d")
	for i := 0; i < 10; i++ {
		s.Append(rec("d", float64(i), 0, 1, time.Duration(i)*time.Minute))
	}
	w := s.TimeWindow(t0.Add(2*time.Minute), t0.Add(5*time.Minute))
	if w.Len() != 3 {
		t.Fatalf("window len = %d", w.Len())
	}
	if w.Records[0].P.X != 2 || w.Records[2].P.X != 4 {
		t.Errorf("window contents wrong: %v", w.Records)
	}
}

func TestSequenceSplitByGap(t *testing.T) {
	s := NewSequence("d")
	offsets := []time.Duration{0, 5 * time.Second, 10 * time.Second,
		5 * time.Minute, 5*time.Minute + 8*time.Second,
		20 * time.Minute}
	for i, off := range offsets {
		s.Append(rec("d", float64(i), 0, 1, off))
	}
	runs := s.SplitByGap(time.Minute)
	if len(runs) != 3 {
		t.Fatalf("runs = %d, want 3", len(runs))
	}
	if runs[0].Len() != 3 || runs[1].Len() != 2 || runs[2].Len() != 1 {
		t.Errorf("run lengths = %d %d %d", runs[0].Len(), runs[1].Len(), runs[2].Len())
	}
	if (&Sequence{}).SplitByGap(time.Minute) != nil {
		t.Error("empty split should be nil")
	}
}

func TestSequenceCloneIndependent(t *testing.T) {
	s := NewSequence("d")
	s.Append(rec("d", 1, 1, 1, 0))
	c := s.Clone()
	c.Records[0].P = geom.Pt(9, 9)
	if s.Records[0].P.Eq(geom.Pt(9, 9)) {
		t.Error("clone aliases original")
	}
}

func TestDatasetBasics(t *testing.T) {
	ds := NewDataset()
	ds.Add(rec("b", 0, 0, 1, time.Minute))
	ds.Add(rec("a", 1, 1, 1, 0))
	ds.Add(rec("a", 2, 2, 1, 2*time.Minute))
	if ds.NumDevices() != 2 || ds.NumRecords() != 3 {
		t.Fatalf("counts = %d devices, %d records", ds.NumDevices(), ds.NumRecords())
	}
	devs := ds.Devices()
	if len(devs) != 2 || devs[0] != "a" || devs[1] != "b" {
		t.Errorf("devices = %v", devs)
	}
	lo, hi := ds.TimeRange()
	if !lo.Equal(t0) || !hi.Equal(t0.Add(2*time.Minute)) {
		t.Errorf("time range = %v..%v", lo, hi)
	}
	st := ds.Summarize()
	if st.MeanLength != 1.5 {
		t.Errorf("mean length = %v", st.MeanLength)
	}
	if !strings.Contains(st.String(), "2 devices") {
		t.Errorf("stats string = %q", st.String())
	}
	if ds.Sequence("missing") != nil {
		t.Error("missing device should be nil")
	}
}

func TestParseFloor(t *testing.T) {
	cases := []struct {
		in   string
		want dsm.FloorID
		ok   bool
	}{
		{"3F", 3, true}, {"3f", 3, true}, {"B2", -2, true},
		{"7", 7, true}, {"-1", -1, true}, {" 2F ", 2, true},
		{"", 0, false}, {"xF", 0, false}, {"B0", 0, false}, {"Bx", 0, false},
	}
	for _, c := range cases {
		got, err := ParseFloor(c.in)
		if (err == nil) != c.ok || (c.ok && got != c.want) {
			t.Errorf("ParseFloor(%q) = %v,%v want %v,%v", c.in, got, err, c.want, c.ok)
		}
	}
}

func TestParseTime(t *testing.T) {
	if _, err := ParseTime("2017-01-02T10:00:00Z"); err != nil {
		t.Errorf("RFC3339 rejected: %v", err)
	}
	got, err := ParseTime("1483351200000")
	if err != nil || got.Year() != 2017 {
		t.Errorf("unix ms = %v, %v", got, err)
	}
	if _, err := ParseTime("yesterday"); err == nil {
		t.Error("garbage time accepted")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	ds := NewDataset()
	ds.Add(rec("dev-1", 5.125, 12.75, 3, 0))
	ds.Add(rec("dev-1", 6.5, 11.875, 3, 7*time.Second))
	ds.Add(rec("dev-2", 1, 2, -1, time.Second))

	var buf bytes.Buffer
	if err := WriteCSV(&buf, ds); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatalf("ReadCSV: %v", err)
	}
	if got.NumRecords() != 3 || got.NumDevices() != 2 {
		t.Fatalf("round trip counts: %d/%d", got.NumDevices(), got.NumRecords())
	}
	r := got.Sequence("dev-1").Records[0]
	if !almost(r.P.X, 5.125) || r.Floor != 3 || !r.At.Equal(t0) {
		t.Errorf("round trip record = %+v", r)
	}
	b1 := got.Sequence("dev-2").Records[0]
	if b1.Floor != -1 {
		t.Errorf("basement floor = %v", b1.Floor)
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader("device,x,y,floor,time\nd,notnum,2,1F,2017-01-02T10:00:00Z\n")); err == nil {
		t.Error("bad x accepted")
	}
	if _, err := ReadCSV(strings.NewReader("d,1,2,1F\n")); err == nil {
		t.Error("short row accepted")
	}
	if _, err := ReadCSV(strings.NewReader("d,1,2,1F,not-a-time\n")); err == nil {
		t.Error("bad time accepted")
	}
	// Header-less numeric data parses fine.
	ds, err := ReadCSV(strings.NewReader("d,1,2,1F,2017-01-02T10:00:00Z\n"))
	if err != nil || ds.NumRecords() != 1 {
		t.Errorf("headerless csv: %v, %d", err, ds.NumRecords())
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	ds := NewDataset()
	ds.Add(rec("j1", 3.5, 4.5, 2, 0))
	ds.Add(rec("j2", 1, 1, 1, time.Minute))
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, ds); err != nil {
		t.Fatalf("WriteJSONL: %v", err)
	}
	got, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatalf("ReadJSONL: %v", err)
	}
	if got.NumRecords() != 2 {
		t.Fatalf("records = %d", got.NumRecords())
	}
	if _, err := ReadJSONL(strings.NewReader("{bad json\n")); err == nil {
		t.Error("bad jsonl accepted")
	}
	// Blank lines are skipped.
	got, err = ReadJSONL(strings.NewReader("\n\n"))
	if err != nil || got.NumRecords() != 0 {
		t.Errorf("blank jsonl: %v %d", err, got.NumRecords())
	}
}

func TestLoadSaveFile(t *testing.T) {
	dir := t.TempDir()
	ds := NewDataset()
	ds.Add(rec("f1", 1, 2, 1, 0))
	for _, name := range []string{"/a.csv", "/a.jsonl"} {
		path := dir + name
		if err := SaveFile(path, ds); err != nil {
			t.Fatalf("SaveFile(%s): %v", name, err)
		}
		got, err := LoadFile(path)
		if err != nil || got.NumRecords() != 1 {
			t.Fatalf("LoadFile(%s): %v, %d", name, err, got.NumRecords())
		}
	}
	if err := SaveFile(dir+"/a.xml", ds); err == nil {
		t.Error("unknown extension accepted on save")
	}
	if _, err := LoadFile(dir + "/a.xml"); err == nil {
		t.Error("unknown extension accepted on load")
	}
}

func TestStreamPublishSubscribe(t *testing.T) {
	st := NewStream()
	ch, cancel := st.Subscribe(4)
	defer cancel()
	go func() {
		st.Publish(rec("s1", 1, 1, 1, 0))
		st.Publish(rec("s1", 2, 2, 1, time.Second))
		st.Close()
	}()
	var got []Record
	for r := range ch {
		got = append(got, r)
	}
	if len(got) != 2 {
		t.Fatalf("received %d records", len(got))
	}
	// Publish after close is a no-op, not a panic.
	st.Publish(rec("s1", 3, 3, 1, 2*time.Second))
	// Subscribe after close yields a closed channel.
	ch2, cancel2 := st.Subscribe(1)
	defer cancel2()
	if _, ok := <-ch2; ok {
		t.Error("subscribe after close should be drained")
	}
}

func TestStreamCancelDetaches(t *testing.T) {
	st := NewStream()
	ch, cancel := st.Subscribe(1)
	cancel()
	cancel() // idempotent
	if _, ok := <-ch; ok {
		t.Error("canceled channel should be closed")
	}
	st.Publish(rec("x", 1, 1, 1, 0)) // must not block on the dead subscriber
	st.Close()
}

func TestCollect(t *testing.T) {
	st := NewStream()
	go func() {
		// Wait for Collect's subscription so no records are lost.
		for st.NumSubscribers() == 0 {
			runtime.Gosched()
		}
		for i := 0; i < 10; i++ {
			st.Publish(rec("c", float64(i), 0, 1, time.Duration(i)*time.Second))
		}
		st.Close()
	}()
	ds := Collect(context.Background(), st, 0)
	if ds.NumRecords() != 10 {
		t.Errorf("collected %d", ds.NumRecords())
	}

	// Bounded collection: the publisher floods the stream; Collect stops
	// at its cap and its cancel unblocks the publisher.
	st2 := NewStream()
	pubDone := make(chan struct{})
	go func() {
		defer close(pubDone)
		for st2.NumSubscribers() == 0 {
			runtime.Gosched()
		}
		for i := 0; i < 500; i++ {
			st2.Publish(rec("c", float64(i), 0, 1, time.Duration(i)*time.Second))
		}
		st2.Close()
	}()
	got := Collect(context.Background(), st2, 3)
	if got.NumRecords() != 3 {
		t.Errorf("bounded collect = %d", got.NumRecords())
	}
	<-pubDone

	// Context cancellation stops collection.
	st3 := NewStream()
	ctx, cancelCtx := context.WithCancel(context.Background())
	cancelCtx()
	if ds := Collect(ctx, st3, 0); ds.NumRecords() != 0 {
		t.Error("canceled collect should be empty")
	}
	st3.Close()
}

func TestSequencePropertyAppendSorted(t *testing.T) {
	// Whatever the insertion order, records end up time-sorted.
	f := func(offsets []int16) bool {
		s := NewSequence("p")
		for i, off := range offsets {
			s.Append(rec("p", float64(i), 0, 1, time.Duration(off)*time.Second))
		}
		for i := 1; i < s.Len(); i++ {
			if s.Records[i].At.Before(s.Records[i-1].At) {
				return false
			}
		}
		return s.Len() == len(offsets)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSplitByGapPropertyPreservesRecords(t *testing.T) {
	f := func(offsets []uint16) bool {
		s := NewSequence("p")
		for i, off := range offsets {
			s.Append(rec("p", float64(i), 0, 1, time.Duration(off)*time.Second))
		}
		runs := s.SplitByGap(30 * time.Second)
		total := 0
		for _, r := range runs {
			total += r.Len()
		}
		return total == s.Len()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
