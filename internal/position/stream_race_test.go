package position

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// streamRecord builds a minimal record for stream tests.
func streamRecord(i int) Record {
	return Record{Device: "s", At: time.Unix(int64(i), 0)}
}

// TestStreamPublishRacesClose hammers Publish from several goroutines
// while Close runs concurrently: no send on closed channel, no deadlock,
// and every subscriber channel terminates. Run with -race.
func TestStreamPublishRacesClose(t *testing.T) {
	for round := 0; round < 20; round++ {
		st := NewStream()
		var subs []<-chan Record
		for i := 0; i < 3; i++ {
			ch, _ := st.Subscribe(4)
			subs = append(subs, ch)
		}
		var wg sync.WaitGroup
		for p := 0; p < 4; p++ {
			wg.Add(1)
			go func(p int) {
				defer wg.Done()
				for i := 0; i < 50; i++ {
					st.Publish(streamRecord(p*100 + i))
				}
			}(p)
		}
		// Drain concurrently so publishers are not permanently blocked on
		// full buffers, and close midway through the publishing burst.
		var drained sync.WaitGroup
		for _, ch := range subs {
			drained.Add(1)
			go func(ch <-chan Record) {
				defer drained.Done()
				for range ch {
				}
			}(ch)
		}
		go st.Close()
		wg.Wait()
		st.Close() // idempotent
		drained.Wait()
	}
}

// TestStreamCancelDuringBlockedSend cancels a subscriber whose buffers are
// full while a publisher is blocked handing it a record: the publisher
// must unblock via the subscriber's dead channel.
func TestStreamCancelDuringBlockedSend(t *testing.T) {
	st := NewStream()
	defer st.Close()
	_, cancel := st.Subscribe(1)

	published := make(chan struct{})
	go func() {
		// The consumer never reads: in (1) + out (1) + the forwarder's
		// hand fill up, then Publish blocks until cancel.
		for i := 0; i < 8; i++ {
			st.Publish(streamRecord(i))
		}
		close(published)
	}()

	select {
	case <-published:
		t.Fatal("publisher never blocked on a full subscriber")
	case <-time.After(50 * time.Millisecond):
	}
	cancel()
	select {
	case <-published:
	case <-time.After(2 * time.Second):
		t.Fatal("publisher still blocked after cancel")
	}
	cancel() // idempotent
	// The forwarder deregisters asynchronously after cancel.
	deadline := time.Now().Add(2 * time.Second)
	for st.NumSubscribers() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("NumSubscribers after cancel = %d, want 0", st.NumSubscribers())
		}
		time.Sleep(time.Millisecond)
	}
}

// TestStreamBackpressure verifies a full subscriber buffer blocks the
// publisher (no drops, no reordering) and that draining releases it.
func TestStreamBackpressure(t *testing.T) {
	st := NewStream()
	defer st.Close()
	ch, cancel := st.Subscribe(2)
	defer cancel()

	const total = 12
	var published atomic.Int64
	go func() {
		for i := 0; i < total; i++ {
			st.Publish(streamRecord(i))
			published.Add(1)
		}
	}()

	// Without a consumer the publisher must stall well short of total.
	deadline := time.Now().Add(2 * time.Second)
	var stalled int64
	for {
		cur := published.Load()
		time.Sleep(50 * time.Millisecond)
		if published.Load() == cur {
			stalled = cur
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("publisher never stalled")
		}
	}
	if stalled >= total {
		t.Fatalf("published all %d records with no consumer; backpressure missing", total)
	}

	// Draining releases the publisher and delivers everything in order.
	for i := 0; i < total; i++ {
		select {
		case r := <-ch:
			if r.At != time.Unix(int64(i), 0) {
				t.Fatalf("record %d out of order: %v", i, r.At)
			}
		case <-time.After(2 * time.Second):
			t.Fatalf("timed out waiting for record %d", i)
		}
	}
	if got := published.Load(); got != total {
		t.Errorf("published = %d, want %d", got, total)
	}
}
