package position

import (
	"fmt"
	"sort"
	"time"
)

// Dataset groups per-device sequences, the unit the Data Selector filters
// and the Translator consumes ("the framework takes each individual
// positioning sequence as input").
type Dataset struct {
	seqs map[DeviceID]*Sequence
}

// NewDataset returns an empty dataset.
func NewDataset() *Dataset { return &Dataset{seqs: make(map[DeviceID]*Sequence)} }

// Add appends a record to its device's sequence, creating the sequence on
// first sight.
func (d *Dataset) Add(r Record) {
	s, ok := d.seqs[r.Device]
	if !ok {
		s = NewSequence(r.Device)
		d.seqs[r.Device] = s
	}
	s.Append(r)
}

// AddSequence inserts or replaces a whole sequence.
func (d *Dataset) AddSequence(s *Sequence) { d.seqs[s.Device] = s }

// Sequence returns the sequence of the device, or nil.
func (d *Dataset) Sequence(dev DeviceID) *Sequence { return d.seqs[dev] }

// Devices returns the device IDs sorted lexicographically, so iteration
// order is deterministic across runs.
func (d *Dataset) Devices() []DeviceID {
	out := make([]DeviceID, 0, len(d.seqs))
	//trips:commutative key collection; iteration order is erased by the sort below
	for dev := range d.seqs {
		out = append(out, dev)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Sequences returns all sequences in device order.
func (d *Dataset) Sequences() []*Sequence {
	devs := d.Devices()
	out := make([]*Sequence, 0, len(devs))
	for _, dev := range devs {
		out = append(out, d.seqs[dev])
	}
	return out
}

// NumDevices returns the number of devices.
func (d *Dataset) NumDevices() int { return len(d.seqs) }

// NumRecords returns the total number of records.
func (d *Dataset) NumRecords() int {
	n := 0
	//trips:commutative record-count sum; order-independent
	for _, s := range d.seqs {
		n += s.Len()
	}
	return n
}

// TimeRange returns the earliest start and the latest end over all
// sequences; zero times for an empty dataset.
func (d *Dataset) TimeRange() (time.Time, time.Time) {
	var lo, hi time.Time
	//trips:commutative min/max over sequences; order-independent
	for _, s := range d.seqs {
		if s.Empty() {
			continue
		}
		if lo.IsZero() || s.Start().Before(lo) {
			lo = s.Start()
		}
		if hi.IsZero() || s.End().After(hi) {
			hi = s.End()
		}
	}
	return lo, hi
}

// Stats summarizes a dataset for display and for selector diagnostics.
type Stats struct {
	Devices    int
	Records    int
	From, To   time.Time
	MeanLength float64 // records per device
}

// Summarize computes dataset statistics.
func (d *Dataset) Summarize() Stats {
	st := Stats{Devices: d.NumDevices(), Records: d.NumRecords()}
	st.From, st.To = d.TimeRange()
	if st.Devices > 0 {
		st.MeanLength = float64(st.Records) / float64(st.Devices)
	}
	return st
}

// String renders the stats in one line.
func (st Stats) String() string {
	return fmt.Sprintf("%d devices, %d records, %.1f rec/dev, %s – %s",
		st.Devices, st.Records, st.MeanLength,
		st.From.Format(time.RFC3339), st.To.Format(time.RFC3339))
}
