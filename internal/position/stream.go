package position

import (
	"context"
	"sync"
)

// Stream is the third input source kind the Data Selector accepts: a live
// feed of positioning records. Producers Publish records; consumers
// Subscribe and receive them on a channel until the stream closes or they
// cancel. Collect drains a stream into a Dataset, which is how the
// Configurator materializes a bounded window of a feed for translation.
//
// Concurrency design: the publisher never sends on a channel that anyone
// else closes. Each subscriber owns a forwarder goroutine; Publish hands
// records to the forwarder's inbox guarded by the subscriber's and the
// stream's done channels, and only the forwarder closes the consumer-facing
// channel. Slow subscribers exert backpressure through their buffer.
type Stream struct {
	mu     sync.Mutex
	subs   map[int]*subscriber
	nextID int
	done   chan struct{}
	closed bool
}

type subscriber struct {
	in   chan Record   // publisher → forwarder; never closed
	out  chan Record   // forwarder → consumer; closed by the forwarder only
	dead chan struct{} // closed once by cancel
	once sync.Once
}

// NewStream returns an open stream with no subscribers.
func NewStream() *Stream {
	return &Stream{subs: make(map[int]*subscriber), done: make(chan struct{})}
}

// Publish delivers r to every current subscriber, blocking on full
// subscriber buffers (backpressure rather than drops: positioning feeds are
// low-rate relative to consumers). Publishing on a closed stream is a no-op;
// canceled subscribers are skipped.
func (st *Stream) Publish(r Record) {
	st.mu.Lock()
	if st.closed {
		st.mu.Unlock()
		return
	}
	snapshot := make([]*subscriber, 0, len(st.subs))
	//trips:commutative each subscriber receives every record in publish order; inter-subscriber order is unobservable
	for _, s := range st.subs {
		snapshot = append(snapshot, s)
	}
	st.mu.Unlock()
	for _, s := range snapshot {
		select {
		case s.in <- r:
		case <-s.dead:
		case <-st.done:
		}
	}
}

// Subscribe registers a consumer with the given buffer size. The returned
// channel closes when the stream closes or the cancel function is called;
// cancel is idempotent.
func (st *Stream) Subscribe(buf int) (<-chan Record, func()) {
	if buf < 1 {
		buf = 1
	}
	s := &subscriber{
		in:   make(chan Record, buf),
		out:  make(chan Record, buf),
		dead: make(chan struct{}),
	}
	cancel := func() { s.once.Do(func() { close(s.dead) }) }

	st.mu.Lock()
	if st.closed {
		st.mu.Unlock()
		close(s.out)
		return s.out, cancel
	}
	id := st.nextID
	st.nextID++
	st.subs[id] = s
	st.mu.Unlock()

	go func() {
		defer func() {
			st.mu.Lock()
			delete(st.subs, id)
			st.mu.Unlock()
			close(s.out)
		}()
		for {
			select {
			case <-s.dead:
				return
			case <-st.done:
				// Drain anything the publisher already queued.
				for {
					select {
					case r := <-s.in:
						select {
						case s.out <- r:
						case <-s.dead:
							return
						}
					default:
						return
					}
				}
			case r := <-s.in:
				// Deliver even if the stream closes meanwhile: Close stops
				// new input, it does not abandon records already accepted.
				select {
				case s.out <- r:
				case <-s.dead:
					return
				}
			}
		}
	}()
	return s.out, cancel
}

// NumSubscribers returns the number of active subscriptions.
func (st *Stream) NumSubscribers() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return len(st.subs)
}

// Close terminates the stream; all subscriber channels close after their
// queued records drain. Close is idempotent.
func (st *Stream) Close() {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.closed {
		return
	}
	st.closed = true
	close(st.done)
}

// Collect consumes the stream into a Dataset until the stream closes, the
// context is canceled, or max records arrive (max <= 0 means unbounded).
func Collect(ctx context.Context, st *Stream, max int) *Dataset {
	ch, cancel := st.Subscribe(256)
	defer cancel()
	ds := NewDataset()
	n := 0
	for {
		select {
		case <-ctx.Done():
			return ds
		case r, ok := <-ch:
			if !ok {
				return ds
			}
			ds.Add(r)
			n++
			if max > 0 && n >= max {
				return ds
			}
		}
	}
}
