package position

import (
	"sort"
	"time"

	"trips/internal/dsm"
	"trips/internal/geom"
)

// Sequence is the time-ordered positioning records of one device. The zero
// value is an empty sequence ready for Append.
type Sequence struct {
	Device  DeviceID `json:"device"`
	Records []Record `json:"records"`
}

// NewSequence returns an empty sequence for the device.
func NewSequence(dev DeviceID) *Sequence { return &Sequence{Device: dev} }

// Append adds a record, keeping the sequence sorted by time. Appending in
// time order is O(1); out-of-order records trigger a binary-search insert.
func (s *Sequence) Append(r Record) {
	r.Device = s.Device
	n := len(s.Records)
	if n == 0 || !r.At.Before(s.Records[n-1].At) {
		s.Records = append(s.Records, r)
		return
	}
	i := sort.Search(n, func(i int) bool { return s.Records[i].At.After(r.At) })
	s.Records = append(s.Records, Record{})
	copy(s.Records[i+1:], s.Records[i:])
	s.Records[i] = r
}

// Len returns the number of records.
func (s *Sequence) Len() int { return len(s.Records) }

// Empty reports whether the sequence has no records.
func (s *Sequence) Empty() bool { return len(s.Records) == 0 }

// Start returns the first timestamp; the zero time when empty.
func (s *Sequence) Start() time.Time {
	if s.Empty() {
		return time.Time{}
	}
	return s.Records[0].At
}

// End returns the last timestamp; the zero time when empty.
func (s *Sequence) End() time.Time {
	if s.Empty() {
		return time.Time{}
	}
	return s.Records[len(s.Records)-1].At
}

// Duration returns End minus Start.
func (s *Sequence) Duration() time.Duration { return s.End().Sub(s.Start()) }

// Bounds returns the planar bounding box over all records.
func (s *Sequence) Bounds() geom.Rect {
	b := geom.EmptyRect()
	for _, r := range s.Records {
		b = b.ExtendPoint(r.P)
	}
	return b
}

// Floors returns the distinct floors visited, ascending.
func (s *Sequence) Floors() []dsm.FloorID {
	seen := make(map[dsm.FloorID]bool)
	for _, r := range s.Records {
		seen[r.Floor] = true
	}
	out := make([]dsm.FloorID, 0, len(seen))
	//trips:commutative key collection; iteration order is erased by the sort below
	for f := range seen {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Path returns the record locations as a polyline, ignoring floors.
func (s *Sequence) Path() geom.Polyline {
	pts := make([]geom.Point, len(s.Records))
	for i, r := range s.Records {
		pts[i] = r.P
	}
	return geom.Polyline{Points: pts}
}

// TravelDistance returns the summed Euclidean distance between consecutive
// same-floor records. Floor changes contribute nothing (the vertical move is
// priced by the DSM, not by raw coordinates).
func (s *Sequence) TravelDistance() float64 {
	var d float64
	for i := 1; i < len(s.Records); i++ {
		if s.Records[i-1].Floor == s.Records[i].Floor {
			d += s.Records[i-1].P.Dist(s.Records[i].P)
		}
	}
	return d
}

// MeanPeriod returns the average sampling period, or zero for fewer than two
// records. The Data Selector's frequency rule uses it.
func (s *Sequence) MeanPeriod() time.Duration {
	if len(s.Records) < 2 {
		return 0
	}
	return s.Duration() / time.Duration(len(s.Records)-1)
}

// MaxGap returns the largest time gap between consecutive records.
func (s *Sequence) MaxGap() time.Duration {
	var g time.Duration
	for i := 1; i < len(s.Records); i++ {
		if d := s.Records[i].At.Sub(s.Records[i-1].At); d > g {
			g = d
		}
	}
	return g
}

// Slice returns a shallow sub-sequence covering records [i, j).
func (s *Sequence) Slice(i, j int) *Sequence {
	return &Sequence{Device: s.Device, Records: s.Records[i:j]}
}

// TimeWindow returns the records with At in [from, to) as a new sequence
// sharing the underlying array.
func (s *Sequence) TimeWindow(from, to time.Time) *Sequence {
	lo := sort.Search(len(s.Records), func(i int) bool { return !s.Records[i].At.Before(from) })
	hi := sort.Search(len(s.Records), func(i int) bool { return !s.Records[i].At.Before(to) })
	return s.Slice(lo, hi)
}

// SplitByGap cuts the sequence wherever consecutive records are more than
// maxGap apart and returns the resulting runs. Runs share the underlying
// array.
func (s *Sequence) SplitByGap(maxGap time.Duration) []*Sequence {
	if s.Empty() {
		return nil
	}
	var out []*Sequence
	start := 0
	for i := 1; i < len(s.Records); i++ {
		if s.Records[i].At.Sub(s.Records[i-1].At) > maxGap {
			out = append(out, s.Slice(start, i))
			start = i
		}
	}
	return append(out, s.Slice(start, len(s.Records)))
}

// Clone returns a deep copy of the sequence.
func (s *Sequence) Clone() *Sequence {
	cp := &Sequence{Device: s.Device, Records: make([]Record, len(s.Records))}
	copy(cp.Records, s.Records)
	return cp
}

// Sort re-sorts the records by time; readers call it after bulk loads.
func (s *Sequence) Sort() {
	sort.SliceStable(s.Records, func(i, j int) bool {
		return s.Records[i].At.Before(s.Records[j].At)
	})
}
