package position

import (
	"math"
	"strings"
	"testing"
)

// FuzzParseRecord fuzzes both record parsers (CSV rows and JSON lines)
// with one invariant: any input either errors cleanly or produces records
// with finite coordinates — never a panic, never a NaN smuggled into the
// pipeline. Run continuously with
//
//	go test -fuzz FuzzParseRecord ./internal/position
func FuzzParseRecord(f *testing.F) {
	seeds := []string{
		"device,x,y,floor,time",
		"o1,5.1,12.7,3F,2017-01-01T13:02:05Z",
		"o1,5.1,12.7,B2,1483275725000",
		"o1,-0.0,1e300,7,0",
		`o1,"5,1",12.7,3F,2017-01-01T13:02:05Z`,
		"o1,NaN,12.7,3F,2017-01-01T13:02:05Z",
		"o1,5.1,+Inf,3F,2017-01-01T13:02:05Z",
		"o1,5.1,12.7,3F,not-a-time",
		"o1,5.1,12.7,3F,2017-13-45T99:99:99Z",
		"o1,5.1,12.7,XF,0",
		"o1,5.1,12.7", // truncated row
		"o1,5.1",
		",,,,",
		"",
		"\x00\xff\xfe",
		`{"device":"o1","x":5.1,"y":12.7,"floor":"3F","time":"2017-01-01T13:02:05Z"}`,
		`{"device":"o1","x":5e308,"y":5e308,"floor":"1","time":"1"}`,
		`{"device":"o1","x":1,"y":2,"floor":"","time":""}`,
		`{"device":"o1"`, // truncated object
		`{}`,
		"header,line\no1,5.1,12.7,3F,2017-01-01T13:02:05Z",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, line string) {
		if ds, err := ReadCSV(strings.NewReader(line)); err == nil {
			checkParsed(t, "csv", ds)
		}
		if ds, err := ReadJSONL(strings.NewReader(line)); err == nil {
			checkParsed(t, "jsonl", ds)
		}
	})
}

func checkParsed(t *testing.T, format string, ds *Dataset) {
	t.Helper()
	for _, seq := range ds.Sequences() {
		for _, r := range seq.Records {
			if math.IsNaN(r.P.X) || math.IsInf(r.P.X, 0) ||
				math.IsNaN(r.P.Y) || math.IsInf(r.P.Y, 0) {
				t.Fatalf("%s accepted non-finite coordinates: %+v", format, r)
			}
		}
	}
}

// TestParseRecordRejects pins the malformed-input contract the fuzz target
// asserts probabilistically: these must all error (not panic, not pass).
func TestParseRecordRejects(t *testing.T) {
	csvCases := []string{
		"o1,NaN,12.7,3F,2017-01-01T13:02:05Z",      // NaN x
		"o1,5.1,nan,3F,2017-01-01T13:02:05Z",       // NaN y
		"o1,Inf,12.7,3F,2017-01-01T13:02:05Z",      // +Inf
		"o1,5.1,-Infinity,3F,2017-01-01T13:02:05Z", // -Inf
		"o1,5.1,1e999,3F,2017-01-01T13:02:05Z",     // overflow
		"o1,5.1,12.7,3F,not-a-time",                // malformed time
		"o1,5.1,12.7,3F,2017-01-01T25:61:00Z",      // invalid time fields
		"o1,5.1,12.7,floor,0",                      // bad floor
		"o1,5.1,12.7,BX,0",
		"o2,5.1,12.7",    // truncated line
		"o2,5.1,12.7,3F", // missing time field
	}
	for _, in := range csvCases {
		// A valid first row keeps the header heuristic out of the way.
		input := "o0,1.0,2.0,1F,2017-01-01T10:00:00Z\n" + in
		if _, err := ReadCSV(strings.NewReader(input)); err == nil {
			t.Errorf("ReadCSV accepted %q", in)
		}
	}

	jsonlCases := []string{
		`{"device":"o1","x":5.1,"y":12.7,"floor":"3F","time":"nope"}`,
		`{"device":"o1","x":5.1,"y":12.7,"floor":"","time":"0"}`,
		`{"device":"o1","x":5.1,"y":12.7,"floor":"3F","time":"0"`,    // truncated
		`{"device":"o1","x":"NaN","y":12.7,"floor":"3F","time":"0"}`, // wrong type
	}
	for _, in := range jsonlCases {
		if _, err := ReadJSONL(strings.NewReader(in)); err == nil {
			t.Errorf("ReadJSONL accepted %q", in)
		}
	}
}
