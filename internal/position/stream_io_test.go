package position

import (
	"errors"
	"strings"
	"testing"
)

const streamCSVBody = `device,x,y,floor,time
d1,1.0,2.0,1F,2017-01-01T10:00:00Z
d2,3.5,4.5,B1,1483264800000
d1,1.1,2.1,1F,2017-01-01T10:00:05Z
`

func TestStreamCSVDeliversInOrder(t *testing.T) {
	var got []Record
	n, err := StreamCSV(strings.NewReader(streamCSVBody), func(r Record) error {
		got = append(got, r)
		return nil
	})
	if err != nil || n != 3 {
		t.Fatalf("StreamCSV = %d, %v; want 3, nil", n, err)
	}
	if got[0].Device != "d1" || got[1].Device != "d2" || got[1].Floor != -1 {
		t.Errorf("unexpected records: %+v", got)
	}
	// Retained strings must survive the reader's buffer reuse.
	if got[0].Device != "d1" || got[2].Device != "d1" {
		t.Errorf("device strings corrupted by row reuse: %+v", got)
	}
}

func TestStreamCSVErrorAccounting(t *testing.T) {
	bad := "d1,1.0,2.0,1F,2017-01-01T10:00:00Z\nd2,not-a-number,2,1F,2017-01-01T10:00:05Z\n"
	n, err := StreamCSV(strings.NewReader(bad), func(Record) error { return nil })
	if err == nil || !strings.Contains(err.Error(), "row 2") {
		t.Fatalf("err = %v, want row-2 error", err)
	}
	if n != 1 {
		t.Errorf("delivered %d records before the error, want 1", n)
	}
}

func TestStreamCSVCallbackErrorStops(t *testing.T) {
	sentinel := errors.New("sink full")
	calls := 0
	n, err := StreamCSV(strings.NewReader(streamCSVBody), func(Record) error {
		calls++
		if calls == 2 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want the callback's", err)
	}
	if n != 1 || calls != 2 {
		t.Errorf("n = %d calls = %d, want 1 delivered and the stream stopped at call 2", n, calls)
	}
}

func TestStreamJSONLErrorAccounting(t *testing.T) {
	body := `{"device":"d1","x":1,"y":2,"floor":"1F","time":"2017-01-01T10:00:00Z"}
{"device":"d2","x":1,"y":2,"floor":"??","time":"2017-01-01T10:00:05Z"}`
	n, err := StreamJSONL(strings.NewReader(body), func(Record) error { return nil })
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("err = %v, want line-2 error", err)
	}
	if n != 1 {
		t.Errorf("delivered %d records before the error, want 1", n)
	}
}
