package analytics

import (
	"reflect"
	"testing"
	"time"

	"trips/internal/dsm"
)

// additiveEntries counts the per-key additive view state a shard holds —
// the memory weight snapshot restore is responsible for placing.
func additiveEntries(sh *shard) int {
	n := len(sh.visits) + len(sh.tags) + len(sh.flows) + len(sh.dwell)
	for _, b := range sh.ring {
		n += len(b)
	}
	return n
}

// TestSnapshotRestoreSpreadsShards pins the fix for the restore imbalance:
// loading a snapshot used to park every additive aggregate (visits, tags,
// flows, dwell, the whole popularity ring) on shard 0, so a restored
// process carried its entire history's map weight behind one shard mutex
// while the other shards started empty. Restore must spread the entries
// across shards — and, since every query merges shards by sum, answer
// queries identically to the engine that was saved.
func TestSnapshotRestoreSpreadsShards(t *testing.T) {
	st := testStore(t)
	e := New(snapCfg)
	for _, a := range arrivalOrder(synthTrips(12, 40)) {
		e.Ingest(a.dev, a.tr)
	}
	if err := e.SaveSnapshot(StoreOptions{Store: st}); err != nil {
		t.Fatal(err)
	}

	loaded := New(snapCfg)
	if ok, err := loaded.LoadSnapshot(StoreOptions{Store: st}); err != nil || !ok {
		t.Fatalf("LoadSnapshot = %v, %v", ok, err)
	}

	total, populated, max := 0, 0, 0
	for i, sh := range loaded.shards {
		n := additiveEntries(sh)
		t.Logf("shard %d: %d additive entries", i, n)
		total += n
		if n > 0 {
			populated++
		}
		if n > max {
			max = n
		}
	}
	if total == 0 {
		t.Fatal("restored engine holds no additive view state")
	}
	if populated < 2 {
		t.Errorf("restore populated %d of %d shards; the load must spread", populated, len(loaded.shards))
	}
	if max == total {
		t.Error("one shard holds every additive entry after restore — the shard-0 imbalance is back")
	}

	// Placement is an implementation detail; answers must not move.
	if want, got := e.Snapshot(), loaded.Snapshot(); !reflect.DeepEqual(want, got) {
		t.Errorf("restored views diverge from saved:\nsaved:  %+v\nloaded: %+v", want, got)
	}
	if want, got := e.Occupancy(0), loaded.Occupancy(0); !reflect.DeepEqual(want, got) {
		t.Errorf("Occupancy diverges after restore:\nsaved:  %+v\nloaded: %+v", want, got)
	}
	if want, got := e.Flows("", 100), loaded.Flows("", 100); !reflect.DeepEqual(want, got) {
		t.Errorf("Flows diverge after restore:\nsaved:  %+v\nloaded: %+v", want, got)
	}
	if want, got := e.TopK(8, time.Hour), loaded.TopK(8, time.Hour); !reflect.DeepEqual(want, got) {
		t.Errorf("TopK diverges after restore:\nsaved:  %+v\nloaded: %+v", want, got)
	}
	for _, r := range []string{"r0", "r3", "r7"} {
		want, okW := e.Dwell(dsm.RegionID(r))
		got, okG := loaded.Dwell(dsm.RegionID(r))
		if okW != okG || !reflect.DeepEqual(want, got) {
			t.Errorf("Dwell(%s) diverges after restore: (%+v, %v) vs (%+v, %v)", r, want, okW, got, okG)
		}
	}
}
