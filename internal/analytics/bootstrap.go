package analytics

import (
	"fmt"
	"time"

	"trips/internal/position"
	"trips/internal/tripstore"
)

// Bootstrap replays an existing warehouse into the views: every device's
// timeline, paged in From order, folds through the same path the live
// emitter uses — so a cold start over a persisted store reaches exactly
// the state live ingestion would have built (the property
// TestBootstrapMatchesLive locks down).
//
// The replay is frontier-bounded: each device resumes strictly past its
// fold frontier (the From of its last folded triplet), so on a fresh
// engine it is a full replay, while on an engine pre-populated from a
// durable snapshot (LoadSnapshot) it replays only the warehouse tail the
// snapshot missed — boot cost O(tail), not O(stored trips). Re-delivered
// trips at or behind a frontier are skipped silently (they are replay
// overlap, not backfill), so Bootstrap never inflates OutOfOrder.
//
// Call it before attaching the engine to a live feed; trips arriving
// during the replay are deduplicated upstream by the warehouse, not here,
// so the caller sequences bootstrap before tee-ingest
// (trips.System.AttachAnalytics does).
func (e *Engine) Bootstrap(w *tripstore.Warehouse) error {
	const pageSize = 1024
	for _, dev := range w.Devices() {
		spec := tripstore.QuerySpec{
			Device:     dev,
			StartAfter: e.deviceFrontier(dev),
			Limit:      pageSize,
		}
		for {
			page, err := w.Query(spec)
			if err != nil {
				return fmt.Errorf("analytics: bootstrap %s: %w", dev, err)
			}
			for _, tr := range page.Trips {
				e.IngestReplay(tr.Device, tr.Triplet)
			}
			if page.Next == "" {
				break
			}
			spec.Cursor = page.Next
		}
	}
	return nil
}

// deviceFrontier returns the From of the device's last folded triplet —
// the replay resume point; zero for a device the views have never seen.
func (e *Engine) deviceFrontier(dev position.DeviceID) (frontier time.Time) {
	sh := e.shardOf(dev)
	sh.mu.Lock()
	if d := sh.devices[dev]; d != nil {
		frontier = d.lastFrom
	}
	sh.mu.Unlock()
	return frontier
}

// Rebuild returns a fresh engine with the same configuration that has
// re-bootstrapped from w, adopting e's live subscription hub so existing
// subscribers keep receiving deltas from the replacement — the recovery
// path for RebuildRecommended (a backfill the incremental fold had to
// drop). The bootstrap replays into the fresh engine before the hub moves
// over, so subscribers see no historical delta storm; the caller swaps the
// returned engine in for e (POST /analytics/rebuild on trips-server does,
// buffering concurrent live emissions across the swap).
func (e *Engine) Rebuild(w *tripstore.Warehouse) (*Engine, error) {
	fresh := New(e.cfg)
	if err := fresh.Bootstrap(w); err != nil {
		return nil, err
	}
	fresh.hub = e.hub
	return fresh, nil
}
