package analytics

import (
	"fmt"

	"trips/internal/tripstore"
)

// Bootstrap replays an existing warehouse into the views: every device's
// timeline, paged in From order, folds through the same Ingest path the
// live emitter uses — so a cold start over a persisted store reaches
// exactly the state live ingestion would have built (the property
// TestBootstrapMatchesLive locks down). Call it before attaching the
// engine to a live feed; trips arriving during the replay are deduplicated
// upstream by the warehouse, not here, so the caller sequences bootstrap
// before tee-ingest (trips.System.AttachAnalytics does).
func (e *Engine) Bootstrap(w *tripstore.Warehouse) error {
	const pageSize = 1024
	for _, dev := range w.Devices() {
		cursor := ""
		for {
			page, err := w.Query(tripstore.QuerySpec{Device: dev, Limit: pageSize, Cursor: cursor})
			if err != nil {
				return fmt.Errorf("analytics: bootstrap %s: %w", dev, err)
			}
			for _, tr := range page.Trips {
				e.Ingest(tr.Device, tr.Triplet)
			}
			if page.Next == "" {
				break
			}
			cursor = page.Next
		}
	}
	return nil
}
