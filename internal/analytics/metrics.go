package analytics

import "trips/internal/obs"

// Metrics are the analytics engine's optional instruments. A nil *Metrics
// in Config disables them; individual nil histograms are safe (a nil
// histogram discards observations). The same *Metrics survives
// Engine.Rebuild — the rebuilt engine copies its predecessor's Config — so
// the histograms accumulate across view generations.
type Metrics struct {
	// FoldSeconds times each per-triplet view fold, delta publication
	// included.
	FoldSeconds *obs.Histogram
	// Freshness is the pipeline's headline SLO: wall-clock time from a
	// record's arrival at ingest to its sealed triplet becoming visible in
	// the analytics views. Observed by the emitter tee from
	// Emission.ArrivedAt; emissions without an arrival stamp (close or
	// idle finalization flushes) are skipped.
	Freshness *obs.Histogram
}

// NewMetrics registers the analytics histograms on r. Freshness uses the
// wide obs.FreshnessBounds (100ms–30min): it is dominated by the seal
// horizon and flush cadence, not by compute.
func NewMetrics(r *obs.Registry) *Metrics {
	return &Metrics{
		FoldSeconds: r.Histogram("trips_analytics_fold_seconds",
			"Per-triplet view fold latency, delta publication included.", nil),
		Freshness: r.Histogram("trips_freshness_seconds",
			"Ingest-to-analytics-visible freshness: record arrival to view fold of its sealed triplet.",
			obs.FreshnessBounds),
	}
}
