package analytics

import (
	"errors"
	"fmt"
	"os"
	"sort"
	"sync"
	"time"

	"trips/internal/dsm"
	"trips/internal/position"
	"trips/internal/storage"
)

// This file is the durability layer of the views: a deterministic
// serialized form for every view plus atomic save/load on the backend
// store, so a restart boots from the snapshot and replays only the
// warehouse tail past the recorded fold frontiers (Bootstrap) instead of
// re-folding the whole store.
//
// # Format
//
// One JSON document (collection "<Collection>-snapshot", key "latest",
// written atomically by internal/storage's temp-file + rename) holding a
// versioned header — format version, the ring geometry the bucket indexes
// were computed under, the save wall time — and one section per view, each
// carrying its own fold frontier. Today every view folds the same sealed
// stream, so the per-view frontiers are equal (the max folded From); they
// are serialized per view so a future view with its own fold cadence stays
// format-compatible. The authoritative replay resume points are finer
// still: the device section records each device's lastFrom, and Bootstrap
// resumes each device strictly past it — exact regardless of cross-device
// arrival skew at capture time.
//
// Everything is rendered in a deterministic order (devices, regions, flow
// pairs, buckets all sorted), so identical view state always serializes to
// identical bytes.
//
// # Consistency
//
// Capture locks every shard (in index order — ingest only ever holds one
// shard lock, so this cannot deadlock) and copies the state, giving a
// consistent cut even under live ingestion; the disk write happens after
// the locks drop. The optional Sync hook runs between capture and write:
// callers pass the warehouse's Flush so the persisted views never run
// ahead of the durable trip log they would need to replay against — a
// crash that loses the warehouse's pending batch then also "loses" those
// trips from the snapshot, keeping snapshot-boot ≡ full rebuild.

// snapshotVersion is the durable format version; incompatible layout
// changes (bucket bounds, section shapes) must bump it.
const snapshotVersion = 1

// ErrIncompatibleSnapshot is returned by LoadSnapshot when a persisted
// snapshot exists but cannot seed this engine: written by a different
// format version, under a different ring geometry (BucketWidth/Buckets),
// with different dwell bounds, or simply corrupt. The caller falls back to
// a full Bootstrap (trips.OpenAnalytics does).
var ErrIncompatibleSnapshot = errors.New("analytics: incompatible snapshot")

// ErrEngineNotEmpty is returned by LoadSnapshot on an engine that has
// already folded state; snapshots load only into fresh engines.
var ErrEngineNotEmpty = errors.New("analytics: snapshot load into non-empty engine")

// StoreOptions locates the durable snapshot on a backend store.
type StoreOptions struct {
	// Store is the backend document store. Required.
	Store *storage.Store
	// Collection prefixes the snapshot collection (default "analytics"):
	// the document goes to "<Collection>-snapshot" / "latest".
	Collection string
	// Sync, when set, runs after the in-memory state capture and before
	// the disk write. Pass the warehouse's Flush here: it pins the
	// invariant that every trip the snapshot covers is already durable in
	// the trip log, so crash recovery (snapshot + tail replay) can never
	// know more than a full rebuild would.
	Sync func() error
}

func (o *StoreOptions) collection() string {
	c := o.Collection
	if c == "" {
		c = "analytics"
	}
	return c + "-snapshot"
}

const snapshotDocKey = "latest"

// snapshotDoc is the on-disk form.
type snapshotDoc struct {
	Version int       `json:"version"`
	SavedAt time.Time `json:"savedAt"`
	// BucketWidth/Buckets are the ring geometry the bucket indexes were
	// computed under; a mismatch invalidates the snapshot.
	BucketWidth time.Duration `json:"bucketWidth"`
	Buckets     int           `json:"buckets"`
	// DwellBounds fingerprints the histogram layout.
	DwellBounds int `json:"dwellBounds"`

	Watermark time.Time   `json:"watermark,omitzero"`
	Counters  countersDoc `json:"counters"`

	Devices devicesViewDoc `json:"devices"`
	Regions regionsViewDoc `json:"regions"`
	Flows   flowsViewDoc   `json:"flows"`
	Dwell   dwellViewDoc   `json:"dwell"`
	Ring    ringViewDoc    `json:"ring"`
}

type countersDoc struct {
	Trips       int64 `json:"trips"`
	Inferred    int64 `json:"inferred"`
	Regionless  int64 `json:"regionless"`
	OutOfOrder  int64 `json:"outOfOrder"`
	LateBuckets int64 `json:"lateBuckets"`
	Leaves      int64 `json:"leaves"`
}

// devicesViewDoc is the occupancy view's canonical source: per-device fold
// state, sorted by device ID. Occupancy counts are derived from it on load
// (each state with a region counts one occupant), so they can never
// disagree with the device states.
type devicesViewDoc struct {
	Frontier time.Time   `json:"frontier,omitzero"`
	States   []deviceDoc `json:"states"`
}

type deviceDoc struct {
	Device     position.DeviceID `json:"device"`
	Region     dsm.RegionID      `json:"region,omitempty"`
	PrevRegion dsm.RegionID      `json:"prevRegion,omitempty"`
	LastFrom   time.Time         `json:"lastFrom"`
	LastTo     time.Time         `json:"lastTo"`
}

type regionsViewDoc struct {
	Frontier time.Time   `json:"frontier,omitzero"`
	Rows     []regionDoc `json:"rows"`
}

type regionDoc struct {
	Region dsm.RegionID `json:"region"`
	Tag    string       `json:"tag,omitempty"`
	Visits int64        `json:"visits"`
}

type flowsViewDoc struct {
	Frontier time.Time `json:"frontier,omitzero"`
	Rows     []flowDoc `json:"rows"`
}

type flowDoc struct {
	From  dsm.RegionID `json:"from"`
	To    dsm.RegionID `json:"to"`
	Count int64        `json:"count"`
}

type dwellViewDoc struct {
	Frontier time.Time  `json:"frontier,omitzero"`
	Rows     []dwellDoc `json:"rows"`
}

type dwellDoc struct {
	Region  dsm.RegionID  `json:"region"`
	Buckets []int64       `json:"buckets"`
	Count   int64         `json:"count"`
	Sum     time.Duration `json:"sum"`
	Max     time.Duration `json:"max"`
}

type ringViewDoc struct {
	Frontier time.Time `json:"frontier,omitzero"`
	// MinRetained is the pruning frontier at capture; buckets below it
	// were excluded from the dump and the loaded shards resume pruning
	// from it.
	MinRetained int64           `json:"minRetained"`
	Buckets     []ringBucketDoc `json:"buckets"`
}

type ringBucketDoc struct {
	Index   int64            `json:"index"`
	Regions []regionCountDoc `json:"regions"`
}

type regionCountDoc struct {
	Region dsm.RegionID `json:"region"`
	Count  int64        `json:"count"`
}

// capture renders the full engine state as a snapshot document under a
// consistent cut: all shard locks held, in order.
func (e *Engine) capture() *snapshotDoc {
	for _, sh := range e.shards {
		sh.mu.Lock()
	}
	defer func() {
		for _, sh := range e.shards {
			sh.mu.Unlock()
		}
	}()

	doc := &snapshotDoc{
		Version:     snapshotVersion,
		BucketWidth: e.cfg.BucketWidth,
		Buckets:     e.cfg.Buckets,
		DwellBounds: len(dwellBounds),
	}

	visits := make(map[dsm.RegionID]int64)
	tags := make(map[dsm.RegionID]string)
	flows := make(map[flowKey]int64)
	dwell := make(map[dsm.RegionID]*histogram)
	ring := make(map[int64]map[dsm.RegionID]int64)
	minRetained := e.globalMinRetained()
	var frontier time.Time

	for _, sh := range e.shards {
		doc.Counters.Trips += sh.trips
		doc.Counters.Inferred += sh.inferred
		doc.Counters.Regionless += sh.regionless
		doc.Counters.OutOfOrder += sh.outOfOrder
		doc.Counters.LateBuckets += sh.lateBucket
		doc.Counters.Leaves += sh.leaves
		if sh.watermark.After(doc.Watermark) {
			doc.Watermark = sh.watermark
		}
		//trips:commutative devices are disjoint across shards; merge is keyed by device
		for dev, d := range sh.devices {
			doc.Devices.States = append(doc.Devices.States, deviceDoc{
				Device:     dev,
				Region:     d.region,
				PrevRegion: d.prevRegion,
				LastFrom:   d.lastFrom,
				LastTo:     d.lastTo,
			})
			if d.lastFrom.After(frontier) {
				frontier = d.lastFrom
			}
		}
		//trips:commutative per-shard counts merge by addition; order-independent
		for r, n := range sh.visits {
			visits[r] += n
		}
		//trips:commutative every shard stores the same tag for a region; last write wins identically
		for r, tag := range sh.tags {
			if tag != "" {
				tags[r] = tag
			}
		}
		//trips:commutative per-shard counts merge by addition; order-independent
		for k, n := range sh.flows {
			flows[k] += n
		}
		//trips:commutative dwell stats merge by addition; order-independent
		for r, h := range sh.dwell {
			dst := dwell[r]
			if dst == nil {
				dst = new(histogram)
				dwell[r] = dst
			}
			dst.merge(h)
		}
		//trips:commutative bucket merge by addition; order-independent
		for idx, b := range sh.ring {
			if idx < minRetained {
				continue // lingering below the global frontier; see Snapshot
			}
			dst := ring[idx]
			if dst == nil {
				dst = make(map[dsm.RegionID]int64)
				ring[idx] = dst
			}
			//trips:commutative per-shard counts merge by addition; order-independent
			for r, n := range b {
				dst[r] += n
			}
		}
	}

	doc.Devices.Frontier = frontier
	doc.Regions.Frontier = frontier
	doc.Flows.Frontier = frontier
	doc.Dwell.Frontier = frontier
	doc.Ring.Frontier = frontier
	doc.Ring.MinRetained = minRetained

	sort.Slice(doc.Devices.States, func(i, j int) bool {
		return doc.Devices.States[i].Device < doc.Devices.States[j].Device
	})
	for _, r := range sortedRegions(visits) {
		doc.Regions.Rows = append(doc.Regions.Rows, regionDoc{Region: r, Tag: tags[r], Visits: visits[r]})
	}
	//trips:commutative row collection; iteration order is erased by the sort below
	for k := range flows {
		doc.Flows.Rows = append(doc.Flows.Rows, flowDoc{From: k.from, To: k.to, Count: flows[k]})
	}
	sort.Slice(doc.Flows.Rows, func(i, j int) bool {
		a, b := doc.Flows.Rows[i], doc.Flows.Rows[j]
		if a.From != b.From {
			return a.From < b.From
		}
		return a.To < b.To
	})
	for _, r := range sortedRegions(dwell) {
		h := dwell[r]
		doc.Dwell.Rows = append(doc.Dwell.Rows, dwellDoc{
			Region:  r,
			Buckets: append([]int64(nil), h.buckets[:]...),
			Count:   h.count,
			Sum:     h.sum,
			Max:     h.max,
		})
	}
	idxs := make([]int64, 0, len(ring))
	//trips:commutative row collection; iteration order is erased by the sort below
	for idx := range ring {
		idxs = append(idxs, idx)
	}
	sort.Slice(idxs, func(i, j int) bool { return idxs[i] < idxs[j] })
	for _, idx := range idxs {
		rb := ringBucketDoc{Index: idx}
		for _, r := range sortedRegions(ring[idx]) {
			rb.Regions = append(rb.Regions, regionCountDoc{Region: r, Count: ring[idx][r]})
		}
		doc.Ring.Buckets = append(doc.Ring.Buckets, rb)
	}
	return doc
}

func sortedRegions[V any](m map[dsm.RegionID]V) []dsm.RegionID {
	out := make([]dsm.RegionID, 0, len(m))
	//trips:commutative key collection; iteration order is erased by the sort below
	for r := range m {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// SaveSnapshot captures the views under a consistent cut, runs opts.Sync
// (flush the warehouse log here — see StoreOptions), and writes the
// snapshot document atomically. Safe to call concurrently with ingestion
// and queries; concurrent saves serialize on the backend store.
func (e *Engine) SaveSnapshot(opts StoreOptions) (err error) {
	defer func() {
		if err != nil {
			e.snapshotErrors.Add(1)
		}
	}()
	if opts.Store == nil {
		return errors.New("analytics: StoreOptions.Store is required")
	}
	doc := e.capture()
	//trips:allow wallclock: SavedAt is a provenance stamp on the snapshot file, not event time
	doc.SavedAt = time.Now().UTC()
	if opts.Sync != nil {
		if err := opts.Sync(); err != nil {
			return fmt.Errorf("analytics: snapshot sync: %w", err)
		}
	}
	if err := opts.Store.PutCompact(opts.collection(), snapshotDocKey, doc); err != nil {
		return fmt.Errorf("analytics: write snapshot: %w", err)
	}
	e.lastSnapshot.Store(doc.SavedAt.UnixMilli())
	return nil
}

// LoadSnapshot restores the persisted snapshot into a fresh engine and
// reports whether one was found. After a successful load, Bootstrap
// replays only the warehouse tail past the restored fold frontiers. A
// snapshot written under a different format version or view geometry (or
// one that fails to decode) returns ErrIncompatibleSnapshot — fall back to
// a full Bootstrap.
func (e *Engine) LoadSnapshot(opts StoreOptions) (bool, error) {
	if opts.Store == nil {
		return false, errors.New("analytics: StoreOptions.Store is required")
	}
	var doc snapshotDoc
	err := opts.Store.Get(opts.collection(), snapshotDocKey, &doc)
	switch {
	case err == nil:
	case os.IsNotExist(err):
		return false, nil
	default:
		if _, ok := err.(*os.PathError); ok {
			return false, fmt.Errorf("analytics: read snapshot: %w", err)
		}
		// A document that exists but does not decode is an incompatible
		// (or corrupt) snapshot, not an I/O failure.
		return false, fmt.Errorf("%w: %v", ErrIncompatibleSnapshot, err)
	}
	if doc.Version != snapshotVersion ||
		doc.BucketWidth != e.cfg.BucketWidth ||
		doc.Buckets != e.cfg.Buckets ||
		doc.DwellBounds != len(dwellBounds) {
		return false, fmt.Errorf("%w: version %d geometry (%v, %d, %d) vs engine (%d, %v, %d, %d)",
			ErrIncompatibleSnapshot, doc.Version, doc.BucketWidth, doc.Buckets, doc.DwellBounds,
			snapshotVersion, e.cfg.BucketWidth, e.cfg.Buckets, len(dwellBounds))
	}
	if err := e.restore(&doc); err != nil {
		return false, err
	}
	return true, nil
}

// restore populates a fresh engine from a decoded snapshot. Per-device
// fold states land on their hash shard (the fold guard needs them there)
// and occupancy is re-derived from them. The purely additive aggregates —
// visits, tags, flows, dwell, ring — are spread across shards by region
// hash: any placement is observationally identical (every query merges
// shards by sum and nothing ever decrements), but loading them all into
// one shard would leave that shard holding the entire history's map
// weight while the others start empty — a memory imbalance that persists
// for the life of the process because entries are never rebalanced. Only
// the scalar diagnostic counters stay on shard 0; they carry no per-key
// state to balance.
func (e *Engine) restore(doc *snapshotDoc) error {
	for _, sh := range e.shards {
		sh.mu.Lock()
	}
	defer func() {
		for _, sh := range e.shards {
			sh.mu.Unlock()
		}
	}()
	for _, sh := range e.shards {
		if len(sh.devices) > 0 || sh.trips > 0 {
			return ErrEngineNotEmpty
		}
	}
	// Validate every section before touching the engine: a partial restore
	// would leave device frontiers installed, and the caller's full-rebuild
	// fallback would then silently skip everything behind them.
	for _, d := range doc.Dwell.Rows {
		if len(d.Buckets) != len(dwellBounds)+1 {
			return fmt.Errorf("%w: dwell row %s has %d buckets", ErrIncompatibleSnapshot, d.Region, len(d.Buckets))
		}
	}

	for _, d := range doc.Devices.States {
		sh := e.shardOf(d.Device)
		sh.devices[d.Device] = &deviceState{
			region:     d.Region,
			prevRegion: d.PrevRegion,
			lastFrom:   d.LastFrom,
			lastTo:     d.LastTo,
		}
		if d.Region != "" {
			sh.occupancy[d.Region]++
		}
		if d.LastTo.After(sh.watermark) {
			sh.watermark = d.LastTo
		}
	}

	s0 := e.shards[0]
	s0.trips = doc.Counters.Trips
	s0.inferred = doc.Counters.Inferred
	s0.regionless = doc.Counters.Regionless
	s0.outOfOrder = doc.Counters.OutOfOrder
	s0.lateBucket = doc.Counters.LateBuckets
	s0.leaves = doc.Counters.Leaves
	for _, r := range doc.Regions.Rows {
		sh := e.shardForRegion(r.Region)
		sh.visits[r.Region] = r.Visits
		if r.Tag != "" {
			sh.tags[r.Region] = r.Tag
		}
	}
	for _, f := range doc.Flows.Rows {
		sh := e.shardForRegion(f.From)
		sh.flows[flowKey{f.From, f.To}] = f.Count
	}
	for _, d := range doc.Dwell.Rows {
		h := new(histogram)
		copy(h.buckets[:], d.Buckets)
		h.count, h.sum, h.max = d.Count, d.Sum, d.Max
		e.shardForRegion(d.Region).dwell[d.Region] = h
	}
	for _, b := range doc.Ring.Buckets {
		for _, r := range b.Regions {
			sh := e.shardForRegion(r.Region)
			dst := sh.ring[b.Index]
			if dst == nil {
				dst = make(map[dsm.RegionID]int64)
				sh.ring[b.Index] = dst
			}
			dst[r.Region] = r.Count
		}
	}
	for _, sh := range e.shards {
		sh.minRetained = doc.Ring.MinRetained
	}
	if !doc.Watermark.IsZero() {
		e.maxToBucket.Store(e.bucketIndex(doc.Watermark))
	}
	if !doc.SavedAt.IsZero() {
		e.lastSnapshot.Store(doc.SavedAt.UnixMilli())
	}
	return nil
}

// StartAutoSnapshot writes a snapshot every interval (default 1 minute)
// until the returned stop function runs; stop writes one final snapshot —
// call it during shutdown after the online engine has closed, so the last
// sealed triplets are covered — and returns its error (stop is
// idempotent). Periodic save failures are counted in
// Stats.SnapshotErrors and retried next tick.
func (e *Engine) StartAutoSnapshot(opts StoreOptions, interval time.Duration) (stop func() error) {
	return AutoSnapshot(func() *Engine { return e }, opts, interval)
}

// AutoSnapshot is StartAutoSnapshot over an indirection: current is read
// at every tick, so a caller that swaps engines (trips-server's
// /analytics/rebuild) keeps snapshotting the live one rather than a
// discarded predecessor.
func AutoSnapshot(current func() *Engine, opts StoreOptions, interval time.Duration) (stop func() error) {
	if interval <= 0 {
		interval = time.Minute
	}
	done := make(chan struct{})
	exited := make(chan struct{})
	go func() {
		defer close(exited)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				current().SaveSnapshot(opts) // failures count in Stats.SnapshotErrors
			}
		}
	}()
	var once sync.Once
	var finalErr error
	return func() error {
		once.Do(func() {
			close(done)
			<-exited
			finalErr = current().SaveSnapshot(opts)
		})
		return finalErr
	}
}
