package analytics

import (
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"trips/internal/position"
	"trips/internal/semantics"
	"trips/internal/storage"
	"trips/internal/tripstore"
)

var snapCfg = Config{Shards: 4, BucketWidth: 30 * time.Second, Buckets: 100}

func testStore(t *testing.T) *storage.Store {
	t.Helper()
	st, err := storage.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// arrivalOrder flattens a per-device corpus into one globally
// time-interleaved delivery sequence, the shape live ingestion has.
func arrivalOrder(corpus map[position.DeviceID][]semantics.Triplet) []arrival {
	var out []arrival
	idx := make(map[position.DeviceID]int)
	for {
		var pick position.DeviceID
		for dev, ts := range corpus {
			if idx[dev] >= len(ts) {
				continue
			}
			if pick == "" || ts[idx[dev]].From.Before(corpus[pick][idx[pick]].From) {
				pick = dev
			}
		}
		if pick == "" {
			return out
		}
		out = append(out, arrival{pick, corpus[pick][idx[pick]]})
		idx[pick]++
	}
}

type arrival struct {
	dev position.DeviceID
	tr  semantics.Triplet
}

func TestSnapshotSaveLoadRoundTrip(t *testing.T) {
	st := testStore(t)
	e := New(snapCfg)
	for _, a := range arrivalOrder(synthTrips(12, 40)) {
		e.Ingest(a.dev, a.tr)
	}
	e.DeviceLeft("dev-03", e.Watermark()) // leaves must survive the round trip
	if err := e.SaveSnapshot(StoreOptions{Store: st}); err != nil {
		t.Fatal(err)
	}

	loaded := New(snapCfg)
	ok, err := loaded.LoadSnapshot(StoreOptions{Store: st})
	if err != nil || !ok {
		t.Fatalf("LoadSnapshot = %v, %v", ok, err)
	}
	if want, got := e.Snapshot(), loaded.Snapshot(); !reflect.DeepEqual(want, got) {
		t.Errorf("round-tripped views diverge:\nsaved:  %+v\nloaded: %+v", want, got)
	}
	// The diagnostic counters ride along too (snapshot age differs).
	want, got := e.Stats(), loaded.Stats()
	want.LastSnapshot, got.LastSnapshot = time.Time{}, time.Time{}
	want.SnapshotAgeSeconds, got.SnapshotAgeSeconds = 0, 0
	if !reflect.DeepEqual(want, got) {
		t.Errorf("round-tripped stats diverge:\nsaved:  %+v\nloaded: %+v", want, got)
	}
	if loaded.Stats().LastSnapshot.IsZero() {
		t.Error("loaded engine does not report the snapshot time")
	}

	// Loading over folded state is refused.
	if _, err := loaded.LoadSnapshot(StoreOptions{Store: st}); !errors.Is(err, ErrEngineNotEmpty) {
		t.Errorf("second load = %v, want ErrEngineNotEmpty", err)
	}
	// A missing snapshot is not an error.
	if ok, err := New(snapCfg).LoadSnapshot(StoreOptions{Store: testStore(t)}); ok || err != nil {
		t.Errorf("missing snapshot = %v, %v", ok, err)
	}
	// A geometry change invalidates the snapshot.
	other := New(Config{Shards: 4, BucketWidth: time.Minute, Buckets: 100})
	if _, err := other.LoadSnapshot(StoreOptions{Store: st}); !errors.Is(err, ErrIncompatibleSnapshot) {
		t.Errorf("mismatched geometry load = %v, want ErrIncompatibleSnapshot", err)
	}
}

// TestSnapshotBootMatchesFullRebuild is the recovery property: a boot from
// snapshot + frontier-bounded tail replay reaches exactly the state a full
// warehouse Bootstrap builds — including when the crash happened between
// the snapshot and later (un-synced) tail writes, in which case both sides
// lose the same trips.
func TestSnapshotBootMatchesFullRebuild(t *testing.T) {
	for _, tc := range []struct {
		name      string
		flushTail bool
	}{
		// Tail segments made it to disk before the crash: the snapshot
		// boot must replay exactly that tail.
		{"tail-durable", true},
		// Crash between the snapshot and the tail flush: the warehouse
		// lost the tail, and because SaveSnapshot syncs the log *before*
		// persisting (StoreOptions.Sync), the snapshot cannot know more
		// than the surviving log either.
		{"tail-lost", false},
	} {
		t.Run(tc.name, func(t *testing.T) {
			whStore, anStore := testStore(t), testStore(t)
			w, err := tripstore.New(tripstore.Options{Log: &tripstore.LogOptions{Store: whStore, BatchSize: 1 << 20}})
			if err != nil {
				t.Fatal(err)
			}
			deliveries := arrivalOrder(synthTrips(10, 30))
			seq := make(map[position.DeviceID]int)
			insert := func(a arrival) {
				if err := w.Insert(tripstore.Trip{Device: a.dev, Seq: seq[a.dev], Triplet: a.tr}); err != nil {
					t.Fatal(err)
				}
				seq[a.dev]++
			}

			live := New(snapCfg)
			cut := 2 * len(deliveries) / 3
			for _, a := range deliveries[:cut] {
				insert(a)
				live.Ingest(a.dev, a.tr)
			}
			if err := live.SaveSnapshot(StoreOptions{Store: anStore, Sync: w.Flush}); err != nil {
				t.Fatal(err)
			}
			for _, a := range deliveries[cut:] {
				insert(a)
				live.Ingest(a.dev, a.tr)
			}
			if tc.flushTail {
				if err := w.Flush(); err != nil {
					t.Fatal(err)
				}
			}
			// Crash: no Close, no final snapshot — w and live are abandoned
			// with the tail either flushed or lost.

			reopened, err := tripstore.New(tripstore.Options{Log: &tripstore.LogOptions{Store: whStore, BatchSize: 1 << 20}})
			if err != nil {
				t.Fatal(err)
			}
			wantTrips := cut
			if tc.flushTail {
				wantTrips = len(deliveries)
			}
			if st := reopened.Stats(); st.Trips != wantTrips {
				t.Fatalf("reopened warehouse has %d trips, want %d", st.Trips, wantTrips)
			}

			boot := New(snapCfg)
			if ok, err := boot.LoadSnapshot(StoreOptions{Store: anStore}); err != nil || !ok {
				t.Fatalf("LoadSnapshot = %v, %v", ok, err)
			}
			preReplay := boot.Stats().Trips
			if err := boot.Bootstrap(reopened); err != nil {
				t.Fatal(err)
			}
			full := New(snapCfg)
			if err := full.Bootstrap(reopened); err != nil {
				t.Fatal(err)
			}
			if want, got := full.Snapshot(), boot.Snapshot(); !reflect.DeepEqual(want, got) {
				t.Errorf("snapshot boot diverges from full rebuild:\nfull: %+v\nboot: %+v", want, got)
			}
			if replayed := boot.Stats().Trips - preReplay; tc.flushTail {
				if want := int64(len(deliveries) - cut); replayed != want {
					t.Errorf("tail replay folded %d trips, want the %d-trip tail", replayed, want)
				}
			} else if replayed != 0 {
				t.Errorf("replayed %d trips from a warehouse that lost the tail", replayed)
			}
		})
	}
}

// TestSnapshotUnderConcurrentIngest saves while producers are folding —
// the consistent-cut path under -race — then proves a final snapshot
// round-trips the settled state.
func TestSnapshotUnderConcurrentIngest(t *testing.T) {
	st := testStore(t)
	e := New(Config{Shards: 4, BucketWidth: time.Second, Buckets: 3600})
	const producers, perProducer = 8, 150

	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			dev := position.DeviceID(fmt.Sprintf("dev-%d", p))
			at := t0
			for i := 0; i < perProducer; i++ {
				e.Ingest(dev, trip(fmt.Sprintf("r%d", (p+i)%5), at, 10*time.Second))
				at = at.Add(15 * time.Second)
			}
		}(p)
	}
	for i := 0; i < 5; i++ {
		if err := e.SaveSnapshot(StoreOptions{Store: st}); err != nil {
			t.Error(err)
		}
	}
	wg.Wait()

	if err := e.SaveSnapshot(StoreOptions{Store: st}); err != nil {
		t.Fatal(err)
	}
	loaded := New(Config{Shards: 4, BucketWidth: time.Second, Buckets: 3600})
	if ok, err := loaded.LoadSnapshot(StoreOptions{Store: st}); err != nil || !ok {
		t.Fatalf("LoadSnapshot = %v, %v", ok, err)
	}
	if want, got := e.Snapshot(), loaded.Snapshot(); !reflect.DeepEqual(want, got) {
		t.Error("final snapshot does not round-trip the settled state")
	}
}

// TestAutoSnapshot drives the periodic writer: snapshots appear without
// explicit saves, and stop writes a final one covering late folds.
func TestAutoSnapshot(t *testing.T) {
	st := testStore(t)
	e := New(snapCfg)
	e.Ingest("dev", trip("r1", t0, time.Minute))
	stop := e.StartAutoSnapshot(StoreOptions{Store: st}, 5*time.Millisecond)

	deadline := time.Now().Add(5 * time.Second)
	for e.Stats().LastSnapshot.IsZero() {
		if time.Now().After(deadline) {
			t.Fatal("periodic snapshot never written")
		}
		time.Sleep(time.Millisecond)
	}
	e.Ingest("dev", trip("r2", t0.Add(2*time.Minute), time.Minute))
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil { // idempotent
		t.Fatal(err)
	}
	loaded := New(snapCfg)
	if ok, err := loaded.LoadSnapshot(StoreOptions{Store: st}); err != nil || !ok {
		t.Fatalf("LoadSnapshot = %v, %v", ok, err)
	}
	if st := loaded.Stats(); st.Trips != 2 {
		t.Errorf("final snapshot covers %d trips, want 2 (the post-tick fold included)", st.Trips)
	}
}

// TestCorruptSectionLeavesEngineUntouched: a snapshot that passes the
// header check but fails section validation (a dwell row with the wrong
// bucket count) must not half-restore — in particular it must not install
// device frontiers, or the caller's full-Bootstrap fallback would silently
// skip everything behind them.
func TestCorruptSectionLeavesEngineUntouched(t *testing.T) {
	st := testStore(t)
	e := New(snapCfg)
	for _, a := range arrivalOrder(synthTrips(4, 10)) {
		e.Ingest(a.dev, a.tr)
	}
	if err := e.SaveSnapshot(StoreOptions{Store: st}); err != nil {
		t.Fatal(err)
	}
	// Corrupt one dwell row's bucket vector in place.
	var doc map[string]any
	if err := st.Get("analytics-snapshot", "latest", &doc); err != nil {
		t.Fatal(err)
	}
	rows := doc["dwell"].(map[string]any)["rows"].([]any)
	if len(rows) == 0 {
		t.Fatal("no dwell rows to corrupt")
	}
	row := rows[0].(map[string]any)
	row["buckets"] = row["buckets"].([]any)[:2]
	if err := st.PutCompact("analytics-snapshot", "latest", doc); err != nil {
		t.Fatal(err)
	}

	fresh := New(snapCfg)
	if _, err := fresh.LoadSnapshot(StoreOptions{Store: st}); !errors.Is(err, ErrIncompatibleSnapshot) {
		t.Fatalf("corrupt section load = %v, want ErrIncompatibleSnapshot", err)
	}
	if stats := fresh.Stats(); stats.Trips != 0 || stats.Devices != 0 {
		t.Fatalf("rejected load mutated the engine: %+v", stats)
	}
	// The engine is still fresh: a full bootstrap fallback sees every trip
	// (zero frontiers), exactly what trips.OpenAnalytics relies on.
	w, err := tripstore.New(tripstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	seq := 0
	for _, a := range arrivalOrder(synthTrips(4, 10)) {
		if err := w.Insert(tripstore.Trip{Device: a.dev, Seq: seq, Triplet: a.tr}); err != nil {
			t.Fatal(err)
		}
		seq++
	}
	if err := fresh.Bootstrap(w); err != nil {
		t.Fatal(err)
	}
	if want, got := e.Snapshot(), fresh.Snapshot(); !reflect.DeepEqual(want, got) {
		t.Error("fallback bootstrap after rejected load diverges from the original views")
	}
}
