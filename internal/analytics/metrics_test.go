package analytics

import (
	"strings"
	"testing"
	"time"

	"trips/internal/obs"
	"trips/internal/online"
	"trips/internal/semantics"
	"trips/internal/tripstore"
)

// TestMetricsFoldAndFreshness proves the engine's instruments fill through
// the emitter tee: every fold observes FoldSeconds, and emissions carrying
// an arrival stamp close the ingest→visible freshness loop while unstamped
// ones (close/idle flushes) are skipped.
func TestMetricsFoldAndFreshness(t *testing.T) {
	reg := obs.NewRegistry()
	m := NewMetrics(reg)
	e := New(Config{Shards: 2, Metrics: m})
	tee := e.Emitter(nil)

	base := time.Date(2017, 1, 9, 9, 0, 0, 0, time.UTC)
	trip := func(i int) semantics.Triplet {
		return semantics.Triplet{
			Event:    semantics.EventStay,
			Region:   "Nike",
			RegionID: "r1",
			From:     base.Add(time.Duration(i) * time.Minute),
			To:       base.Add(time.Duration(i)*time.Minute + 30*time.Second),
		}
	}
	tee.Emit(online.Emission{Device: "d1", Seq: 0, Triplet: trip(0),
		ArrivedAt: time.Now().Add(-250 * time.Millisecond)})
	tee.Emit(online.Emission{Device: "d1", Seq: 1, Triplet: trip(1)}) // no stamp

	if got := m.FoldSeconds.Count(); got != 2 {
		t.Errorf("FoldSeconds count = %d, want 2", got)
	}
	if got := m.Freshness.Count(); got != 1 {
		t.Errorf("Freshness count = %d, want 1 (unstamped emission must be skipped)", got)
	}
	if q := m.Freshness.Quantile(0.5); q < 250*time.Millisecond {
		t.Errorf("freshness p50 = %v, want >= the 250ms the stamp was backdated", q)
	}

	// The metrics survive a rebuild: the fresh engine copies cfg, so folds
	// keep landing in the same histograms.
	wh, err := tripstore.New(tripstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := wh.Insert(tripstore.Trip{Device: "d1", Seq: 0, Triplet: trip(0)}); err != nil {
		t.Fatal(err)
	}
	re, err := e.Rebuild(wh)
	if err != nil {
		t.Fatal(err)
	}
	re.Ingest("d2", trip(2))
	if got := m.FoldSeconds.Count(); got < 4 {
		t.Errorf("FoldSeconds count after rebuild = %d, want >= 4", got)
	}

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	samples, err := obs.ParseExposition(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("exposition does not parse: %v", err)
	}
	if samples["trips_freshness_seconds_count"] != 1 {
		t.Errorf("trips_freshness_seconds_count = %v, want 1", samples["trips_freshness_seconds_count"])
	}
}
