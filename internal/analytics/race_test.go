package analytics

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"trips/internal/dsm"
	"trips/internal/position"
)

// TestConcurrentIngestQuerySubscribe hammers the engine from every side at
// once — parallel producers (as the online engine's shards would), query
// readers, and subscribers churning on and off — and then checks the folded
// totals. Run under -race, this is the concurrency-safety proof for the
// shard locks and the hub.
func TestConcurrentIngestQuerySubscribe(t *testing.T) {
	e := New(Config{Shards: 4, SubscriberBuffer: 8, BucketWidth: time.Second, Buckets: 3600})
	const producers, perProducer = 8, 200

	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			dev := position.DeviceID(fmt.Sprintf("dev-%d", p))
			at := t0
			for i := 0; i < perProducer; i++ {
				r := fmt.Sprintf("r%d", (p+i)%5)
				e.Ingest(dev, trip(r, at, 10*time.Second))
				at = at.Add(15 * time.Second)
			}
		}(p)
	}

	stop := make(chan struct{})
	var readers sync.WaitGroup
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				e.Occupancy(0)
				e.Flows("", 10)
				e.TopK(3, time.Minute)
				e.Dwell("r1")
				e.Stats()
				e.Snapshot()
			}
		}()
	}

	// Subscriber churn: connect, read a little or nothing, disconnect. Some
	// get evicted as slow consumers, some close themselves; both paths must
	// be safe against concurrent publishes.
	var churn sync.WaitGroup
	for c := 0; c < 6; c++ {
		churn.Add(1)
		go func(c int) {
			defer churn.Done()
			for i := 0; i < 20; i++ {
				var sub *Subscription
				if c%2 == 0 {
					sub = e.Subscribe(nil)
				} else {
					sub = e.Subscribe([]dsm.RegionID{"r1", "r3"})
				}
				if c%3 == 0 {
					// Slow consumer: never reads; eviction races Close.
					time.Sleep(time.Millisecond)
				} else {
					for j := 0; j < 4; j++ {
						select {
						case _, ok := <-sub.C():
							if !ok {
								break
							}
						default:
						}
					}
				}
				sub.Close()
			}
		}(c)
	}

	wg.Wait()
	close(stop)
	readers.Wait()
	churn.Wait()

	st := e.Stats()
	if want := int64(producers * perProducer); st.Trips != want {
		t.Errorf("Trips = %d, want %d", st.Trips, want)
	}
	if st.Devices != producers || st.OutOfOrder != 0 {
		t.Errorf("stats = %+v", st)
	}
	var visits int64
	for _, o := range e.Occupancy(0) {
		visits += o.Visits
	}
	if visits != st.Trips {
		t.Errorf("visit sum %d ≠ trips %d", visits, st.Trips)
	}
	if st.Subscribers != 0 {
		t.Errorf("%d subscribers leaked after churn", st.Subscribers)
	}
}
