package analytics

import (
	"testing"
	"time"

	"trips/internal/dsm"
	"trips/internal/position"
	"trips/internal/semantics"
)

// TestFoldSteadyStateZeroAlloc guards the analytics fold's steady state:
// once a device and its regions are known to the views — device state
// struct allocated, histogram and ring bucket in place, every map key
// present — folding one more sealed triplet must not allocate. New devices,
// new regions, and ring-bucket rollover each pay a one-time allocation that
// amortizes to zero over a stream; the per-trip path is index updates on
// pre-sized maps behind one shard lock.
//
//trips:guards fnvHash
//trips:guards Engine.shardOf
func TestFoldSteadyStateZeroAlloc(t *testing.T) {
	e := New(Config{BucketWidth: time.Hour, Buckets: 8})
	// Aligned to the bucket grid so the measured folds stay inside one ring
	// bucket instead of allocating a fresh bucket map mid-run.
	base := time.Date(2017, 1, 2, 10, 0, 0, 0, time.UTC)
	regions := []dsm.RegionID{"r-nike", "r-adidas"}
	tags := []string{"Nike", "Adidas"}

	n := 0
	fold := func() {
		from := base.Add(time.Duration(n) * time.Second)
		e.Ingest("dev-1", semantics.Triplet{
			Event:    semantics.EventStay,
			Region:   tags[n%2],
			RegionID: regions[n%2],
			From:     from,
			To:       from.Add(time.Second / 2),
		})
		n++
	}
	// Warm: allocate the device state, both histograms, both flow
	// directions, the ring bucket.
	for i := 0; i < 16; i++ {
		fold()
	}
	if st := e.Stats(); st.Trips != 16 || st.Flows != 2 {
		t.Fatalf("warm-up folds not all applied: %+v", st)
	}

	if avg := testing.AllocsPerRun(500, func() {
		fold()
	}); avg != 0 {
		t.Errorf("steady-state fold allocates %.2f times per triplet, want 0", avg)
	}

	var dev position.DeviceID = "dev-1"
	if avg := testing.AllocsPerRun(500, func() {
		e.shardOf(dev)
	}); avg != 0 {
		t.Errorf("shardOf allocates %.2f times per call, want 0", avg)
	}
}
