package analytics

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"trips/internal/core"
	"trips/internal/dsm"
	"trips/internal/online"
	"trips/internal/position"
	"trips/internal/semantics"
	"trips/internal/tripstore"
)

var t0 = time.Date(2017, 1, 2, 10, 0, 0, 0, time.UTC)

// trip builds a stay triplet in region r (tag = upper-cased id for
// visibility) covering [start, start+dur).
func trip(r string, start time.Time, dur time.Duration) semantics.Triplet {
	return semantics.Triplet{
		Event:    semantics.EventStay,
		Region:   "tag-" + r,
		RegionID: dsm.RegionID(r),
		From:     start,
		To:       start.Add(dur),
	}
}

func TestOccupancyMovesDevices(t *testing.T) {
	e := New(Config{Shards: 4})
	e.Ingest("a", trip("nike", t0, time.Minute))
	e.Ingest("b", trip("nike", t0.Add(time.Minute), time.Minute))
	e.Ingest("c", trip("hall", t0, 30*time.Second))

	occ := e.Occupancy(0)
	byID := map[dsm.RegionID]RegionOccupancy{}
	for _, o := range occ {
		byID[o.RegionID] = o
	}
	if byID["nike"].Occupancy != 2 || byID["nike"].Visits != 2 {
		t.Errorf("nike = %+v, want occupancy 2, visits 2", byID["nike"])
	}
	if byID["nike"].Region != "tag-nike" {
		t.Errorf("nike tag = %q", byID["nike"].Region)
	}
	if byID["hall"].Occupancy != 1 {
		t.Errorf("hall = %+v", byID["hall"])
	}

	// Device a moves on: occupancy shifts, visits accumulate.
	e.Ingest("a", trip("hall", t0.Add(2*time.Minute), time.Minute))
	occ = e.Occupancy(0)
	byID = map[dsm.RegionID]RegionOccupancy{}
	for _, o := range occ {
		byID[o.RegionID] = o
	}
	if byID["nike"].Occupancy != 1 || byID["hall"].Occupancy != 2 {
		t.Errorf("after move: nike=%+v hall=%+v", byID["nike"], byID["hall"])
	}

	// A region-less triplet takes the device out of every region.
	e.Ingest("a", semantics.Triplet{Event: semantics.EventUnknown,
		From: t0.Add(3 * time.Minute), To: t0.Add(4 * time.Minute)})
	byID = map[dsm.RegionID]RegionOccupancy{}
	for _, o := range e.Occupancy(0) {
		byID[o.RegionID] = o
	}
	if byID["hall"].Occupancy != 1 {
		t.Errorf("region-less triplet did not vacate: hall=%+v", byID["hall"])
	}
	if st := e.Stats(); st.Regionless != 1 {
		t.Errorf("Regionless = %d, want 1", st.Regionless)
	}
}

func TestOccupancyActiveWithin(t *testing.T) {
	e := New(Config{Shards: 2})
	e.Ingest("old", trip("nike", t0, time.Minute))
	e.Ingest("new", trip("nike", t0.Add(time.Hour), time.Minute))
	if occ := e.Occupancy(0); occ[0].Occupancy != 2 {
		t.Fatalf("unfiltered occupancy = %+v", occ)
	}
	// Only "new" ended within 10 minutes of the watermark.
	occ := e.Occupancy(10 * time.Minute)
	if len(occ) != 1 || occ[0].Occupancy != 1 {
		t.Errorf("staleness-filtered occupancy = %+v, want 1 device", occ)
	}
}

func TestFlows(t *testing.T) {
	e := New(Config{Shards: 4})
	at := t0
	path := []string{"a", "b", "a", "b", "c"}
	for _, r := range path {
		e.Ingest("dev", trip(r, at, time.Minute))
		at = at.Add(2 * time.Minute)
	}
	// A region-less triplet must not break the chain: c → d still counts.
	e.Ingest("dev", semantics.Triplet{From: at, To: at.Add(time.Minute)})
	at = at.Add(2 * time.Minute)
	e.Ingest("dev", trip("d", at, time.Minute))
	// Consecutive same-region triplets are not transitions.
	e.Ingest("dev", trip("d", at.Add(2*time.Minute), time.Minute))

	flows := e.Flows("", 0)
	got := map[string]int64{}
	for _, f := range flows {
		got[string(f.From)+">"+string(f.To)] = f.Count
	}
	want := map[string]int64{"a>b": 2, "b>a": 1, "b>c": 1, "c>d": 1}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("flows = %v, want %v", got, want)
	}

	// Region filter keeps transitions touching either side.
	cOnly := e.Flows("c", 0)
	if len(cOnly) != 2 {
		t.Errorf("Flows(c) = %+v, want b>c and c>d", cOnly)
	}
	if top := e.Flows("", 1); len(top) != 1 || top[0].Count != 2 {
		t.Errorf("Flows limit=1 = %+v", top)
	}
}

func TestDwellQuantiles(t *testing.T) {
	e := New(Config{Shards: 4})
	at := t0
	// 100 stays of 10s and one 30-minute outlier, spread across devices so
	// every shard contributes to the merge.
	for i := 0; i < 100; i++ {
		dev := position.DeviceID(fmt.Sprintf("d%02d", i%8))
		e.Ingest(dev, trip("nike", at, 10*time.Second))
		at = at.Add(time.Minute)
	}
	e.Ingest("outlier", trip("nike", at, 30*time.Minute))

	st, ok := e.Dwell("nike")
	if !ok {
		t.Fatal("no dwell stats for nike")
	}
	if st.Count != 101 {
		t.Errorf("Count = %d", st.Count)
	}
	if st.P50 > 15*time.Second {
		t.Errorf("P50 = %v, want ≈10s", st.P50)
	}
	if st.P99 < 10*time.Second || st.P99 > 30*time.Minute {
		t.Errorf("P99 = %v out of range", st.P99)
	}
	if st.Max != 30*time.Minute {
		t.Errorf("Max = %v", st.Max)
	}
	wantMean := (100*10*time.Second + 30*time.Minute) / 101
	if st.Mean != wantMean {
		t.Errorf("Mean = %v, want %v", st.Mean, wantMean)
	}
	var total int64
	for _, b := range st.Buckets {
		total += b.Count
	}
	if total != st.Count {
		t.Errorf("bucket sum %d ≠ count %d", total, st.Count)
	}
	if _, ok := e.Dwell("ghost"); ok {
		t.Error("Dwell found a region never ingested")
	}
}

func TestTopKWindow(t *testing.T) {
	e := New(Config{Shards: 2, BucketWidth: time.Minute, Buckets: 120})
	// Hour one: region "early" is hot. Hour two: region "late".
	for i := 0; i < 30; i++ {
		e.Ingest(position.DeviceID(fmt.Sprintf("e%d", i)), trip("early", t0.Add(time.Duration(i)*time.Minute), 30*time.Second))
	}
	for i := 0; i < 10; i++ {
		e.Ingest(position.DeviceID(fmt.Sprintf("l%d", i)), trip("late", t0.Add(time.Hour+time.Duration(i)*time.Minute), 30*time.Second))
	}

	// Whole retained span: both regions, "early" on top.
	all := e.TopK(0, 0)
	if len(all) != 2 || all[0].RegionID != "early" || all[0].Count != 30 {
		t.Fatalf("TopK full = %+v", all)
	}
	// Last 15 minutes of event time: only "late".
	recent := e.TopK(5, 15*time.Minute)
	if len(recent) != 1 || recent[0].RegionID != "late" || recent[0].Count != 10 {
		t.Errorf("TopK 15m = %+v", recent)
	}
	// k truncates.
	if top1 := e.TopK(1, 0); len(top1) != 1 {
		t.Errorf("TopK k=1 = %+v", top1)
	}
}

func TestRingPrunesBeyondRetention(t *testing.T) {
	e := New(Config{Shards: 1, BucketWidth: time.Minute, Buckets: 10})
	e.Ingest("a", trip("old", t0, 30*time.Second))
	// Advance the watermark far past the ring span.
	e.Ingest("a", trip("new", t0.Add(time.Hour), 30*time.Second))
	if all := e.TopK(0, 0); len(all) != 1 || all[0].RegionID != "new" {
		t.Errorf("TopK after pruning = %+v, want only new", all)
	}
	// A triplet landing below the pruning frontier is dropped and counted.
	e.Ingest("b", trip("old", t0, 30*time.Second))
	if st := e.Stats(); st.LateBuckets != 1 {
		t.Errorf("LateBuckets = %d, want 1", st.LateBuckets)
	}
	if all := e.TopK(0, 0); len(all) != 1 {
		t.Errorf("late bucket resurrected: %+v", all)
	}
	// The visits counter still saw it: pruning bounds the ring, not totals.
	occ := e.Occupancy(0)
	var visits int64
	for _, o := range occ {
		visits += o.Visits
	}
	if visits != 3 {
		t.Errorf("total visits = %d, want 3", visits)
	}
}

func TestOutOfOrderAndDuplicatesSkipped(t *testing.T) {
	e := New(Config{Shards: 1})
	e.Ingest("a", trip("r2", t0.Add(time.Hour), time.Minute))
	e.Ingest("a", trip("r1", t0, time.Minute))                // behind the device frontier
	e.Ingest("a", trip("r2", t0.Add(time.Hour), time.Minute)) // duplicate (device, From)
	st := e.Stats()
	if st.OutOfOrder != 2 || st.Trips != 1 {
		t.Errorf("stats = %+v, want 2 dropped, 1 trip", st)
	}
	if occ := e.Occupancy(0); len(occ) != 1 || occ[0].RegionID != "r2" || occ[0].Visits != 1 {
		t.Errorf("dropped triplets mutated views: %+v", occ)
	}
}

// synthTrips builds a deterministic multi-device corpus: devices walk
// pseudo-random region paths with varying dwell times, including inferred
// and region-less triplets.
func synthTrips(devices, perDevice int) map[position.DeviceID][]semantics.Triplet {
	regions := []string{"r0", "r1", "r2", "r3", "r4", "r5", "r6", "r7"}
	out := make(map[position.DeviceID][]semantics.Triplet)
	st := uint64(1)
	next := func(mod int) int {
		st = st*6364136223846793005 + 1442695040888963407
		return int((st >> 33) % uint64(mod))
	}
	for d := 0; d < devices; d++ {
		dev := position.DeviceID(fmt.Sprintf("dev-%02d", d))
		at := t0.Add(time.Duration(next(600)) * time.Second)
		for i := 0; i < perDevice; i++ {
			dur := time.Duration(5+next(600)) * time.Second
			tr := trip(regions[next(len(regions))], at, dur)
			switch next(10) {
			case 0:
				tr.Inferred = true
			case 1:
				tr.Region, tr.RegionID = "", ""
			}
			out[dev] = append(out[dev], tr)
			at = tr.To.Add(time.Duration(next(120)) * time.Second)
		}
	}
	return out
}

// TestBootstrapMatchesLive is the equivalence property at the package
// level: folding the corpus per-device through a warehouse replay
// (Bootstrap) reaches exactly the state that live, interleaved ingestion
// builds — including ring pruning, whose frontier only depends on the
// final watermark.
func TestBootstrapMatchesLive(t *testing.T) {
	corpus := synthTrips(12, 40)

	// Live: globally time-interleaved arrival, as the online engine's
	// shards would deliver.
	type arrival struct {
		dev position.DeviceID
		tr  semantics.Triplet
	}
	var live []arrival
	idx := make(map[position.DeviceID]int)
	for {
		var pick position.DeviceID
		for dev, ts := range corpus {
			if idx[dev] >= len(ts) {
				continue
			}
			if pick == "" || ts[idx[dev]].From.Before(corpus[pick][idx[pick]].From) {
				pick = dev
			}
		}
		if pick == "" {
			break
		}
		live = append(live, arrival{pick, corpus[pick][idx[pick]]})
		idx[pick]++
	}
	liveEng := New(Config{Shards: 4, BucketWidth: 30 * time.Second, Buckets: 100})
	for _, a := range live {
		liveEng.Ingest(a.dev, a.tr)
	}

	// Bootstrap: warehouse replay, device by device.
	w, err := tripstore.New(tripstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for dev, ts := range corpus {
		for i, tr := range ts {
			if err := w.Insert(tripstore.Trip{Device: dev, Seq: i, Triplet: tr}); err != nil {
				t.Fatal(err)
			}
		}
	}
	bootEng := New(Config{Shards: 4, BucketWidth: 30 * time.Second, Buckets: 100})
	if err := bootEng.Bootstrap(w); err != nil {
		t.Fatal(err)
	}

	liveSnap, bootSnap := liveEng.Snapshot(), bootEng.Snapshot()
	if !reflect.DeepEqual(liveSnap, bootSnap) {
		t.Errorf("bootstrap state diverges from live ingestion:\nlive: %+v\nboot: %+v", liveSnap, bootSnap)
	}
	// The corpus must actually exercise the views.
	if liveSnap.Trips == 0 || len(liveSnap.Flows) == 0 || len(liveSnap.Ring) == 0 || len(liveSnap.Dwell) == 0 {
		t.Errorf("degenerate corpus: %+v", liveSnap)
	}
	// Ring pruning must have happened for the property to mean anything:
	// the corpus spans hours of event time, far more than the 100 × 30s
	// retention, so the earliest buckets cannot have survived. (Retention
	// is per shard against its own watermark, so the earliest retained
	// bucket can trail the global watermark by more than the ring span.)
	earliest := liveSnap.Watermark
	for _, ts := range corpus {
		if ts[0].From.Before(earliest) {
			earliest = ts[0].From
		}
	}
	if first := liveSnap.Ring[0].Start; !first.After(earliest) {
		t.Errorf("ring never pruned: first bucket %v at corpus start %v", first, earliest)
	}
}

func TestSubscriptionFilterAndDelta(t *testing.T) {
	e := New(Config{Shards: 2, SubscriberBuffer: 16})
	all := e.Subscribe(nil)
	nikeOnly := e.Subscribe([]dsm.RegionID{"nike"})
	defer all.Close()
	defer nikeOnly.Close()

	e.Ingest("a", trip("nike", t0, time.Minute))
	e.Ingest("a", trip("hall", t0.Add(2*time.Minute), time.Minute))

	d1 := <-all.C()
	if d1.RegionID != "nike" || d1.Occupancy != 1 || d1.Device != "a" {
		t.Errorf("delta 1 = %+v", d1)
	}
	d2 := <-all.C()
	if d2.RegionID != "hall" || d2.PrevRegionID != "nike" || d2.PrevOccupancy != 0 {
		t.Errorf("delta 2 = %+v", d2)
	}

	// The filtered subscriber sees the entry and the departure (nike is the
	// previous region of delta 2) — then nothing for foreign regions.
	<-nikeOnly.C()
	d := <-nikeOnly.C()
	if d.PrevRegionID != "nike" {
		t.Errorf("filtered delta = %+v", d)
	}
	e.Ingest("b", trip("hall", t0.Add(5*time.Minute), time.Minute))
	select {
	case d := <-nikeOnly.C():
		t.Errorf("filtered subscriber got foreign delta %+v", d)
	default:
	}
}

func TestSlowSubscriberEvicted(t *testing.T) {
	e := New(Config{Shards: 1, SubscriberBuffer: 4})
	slow := e.Subscribe(nil)
	for i := 0; i < 10; i++ {
		e.Ingest("a", trip("nike", t0.Add(time.Duration(i)*time.Minute), 30*time.Second))
	}
	// Buffer 4 < 10 deltas: the subscriber must have been evicted and its
	// channel closed after the buffered prefix.
	n := 0
	for range slow.C() {
		n++
	}
	if n != 4 {
		t.Errorf("drained %d deltas before close, want the 4 buffered", n)
	}
	if !slow.Evicted() {
		t.Error("Evicted() = false after forced close")
	}
	st := e.Stats()
	if st.Subscribers != 0 || st.Evicted != 1 {
		t.Errorf("hub stats = %+v", st)
	}
	// Close after eviction must not panic.
	slow.Close()
}

func TestIngestResultAndEmitterTee(t *testing.T) {
	e := New(Config{Shards: 2})
	seq := semantics.NewSequence("dev")
	seq.Append(trip("a", t0, time.Minute))
	seq.Append(trip("b", t0.Add(2*time.Minute), time.Minute))
	if err := e.IngestResult(core.Result{Device: "dev", Final: seq}); err != nil {
		t.Fatal(err)
	}
	if st := e.Stats(); st.Trips != 2 {
		t.Fatalf("IngestResult folded %d trips", st.Trips)
	}
	if err := e.IngestResult(core.Result{Device: "empty"}); err != nil {
		t.Fatal(err)
	}

	// The emitter tee folds and forwards.
	next := online.NewChanEmitter(4)
	em := e.Emitter(next)
	em.Emit(online.Emission{Device: "dev", Seq: 2, Triplet: trip("c", t0.Add(4*time.Minute), time.Minute)})
	if st := e.Stats(); st.Trips != 3 {
		t.Errorf("tee did not fold: %d trips", st.Trips)
	}
	if fw := <-next.Results(); fw.Triplet.RegionID != "c" {
		t.Errorf("tee did not forward: %+v", fw)
	}
	// Closing the tee closes the downstream emitter.
	if err := em.(interface{ Close() error }).Close(); err != nil {
		t.Fatal(err)
	}
	if _, ok := <-next.Results(); ok {
		t.Error("downstream emitter not closed by tee")
	}
	// A tee with no downstream is fine.
	e.Emitter(nil).Emit(online.Emission{Device: "dev", Triplet: trip("d", t0.Add(6*time.Minute), time.Minute)})
}

// devicesOnDistinctShards returns two device IDs that hash to different
// shards of e, so a test can make one shard lag the other deliberately.
func devicesOnDistinctShards(t *testing.T, e *Engine) (a, b position.DeviceID) {
	t.Helper()
	a = position.DeviceID("dev-a")
	for i := 0; i < 1000; i++ {
		b = position.DeviceID(fmt.Sprintf("dev-b%d", i))
		if e.shardOf(b) != e.shardOf(a) {
			return a, b
		}
	}
	t.Fatal("no device pair on distinct shards")
	return
}

// TestRingPrunesAgainstGlobalWatermark is the regression test for the
// per-shard pruning bug: a shard whose devices lag must prune (and drop)
// popularity buckets relative to the engine-wide watermark, not its own,
// or it retains more history than the configured window.
func TestRingPrunesAgainstGlobalWatermark(t *testing.T) {
	e := New(Config{Shards: 2, BucketWidth: time.Minute, Buckets: 10})
	ahead, lagging := devicesOnDistinctShards(t, e)

	// The lagging shard folds one old bucket, then the other shard races
	// three hours ahead — far beyond the 10-minute ring span.
	e.Ingest(lagging, trip("old", t0, 30*time.Second))
	e.Ingest(ahead, trip("new", t0.Add(3*time.Hour), 30*time.Second))

	// The lagging shard's next fold is still near t0. Its own watermark
	// would retain both of its buckets; the global watermark says both are
	// ancient history: the retained one must be pruned and the new arrival
	// dropped as a late bucket.
	e.Ingest(lagging, trip("old", t0.Add(2*time.Minute), 30*time.Second))

	if st := e.Stats(); st.LateBuckets != 1 {
		t.Errorf("LateBuckets = %d, want 1 (arrival below the global frontier)", st.LateBuckets)
	}
	min := e.globalMinRetained()
	for i, sh := range e.shards {
		sh.mu.Lock()
		for idx := range sh.ring {
			if idx < min {
				t.Errorf("shard %d retains bucket %d below the global frontier %d", i, idx, min)
			}
		}
		sh.mu.Unlock()
	}
	snap := e.Snapshot()
	if len(snap.Ring) != 1 || snap.Ring[0].Regions[0].RegionID != "new" {
		t.Errorf("dump ring = %+v, want only the ahead bucket", snap.Ring)
	}
	// TopK agrees: only the ahead region is inside any window.
	if all := e.TopK(0, 0); len(all) != 1 || all[0].RegionID != "new" {
		t.Errorf("TopK = %+v", all)
	}
}

// TestDeviceLeftDecaysOccupancy covers the explicit departure signal: it
// vacates the device's region by evidence, publishes a delta, is
// idempotent, and leaves the sealed-trip fold untouched (the frontier
// does not move, so duplicates still dedupe and the next trip folds
// normally).
func TestDeviceLeftDecaysOccupancy(t *testing.T) {
	e := New(Config{Shards: 2})
	sub := e.Subscribe(nil)
	defer sub.Close()

	e.Ingest("a", trip("nike", t0, time.Minute))
	e.Ingest("b", trip("hall", t0.Add(time.Minute), time.Minute))
	<-sub.C()
	<-sub.C()

	at := t0.Add(10 * time.Minute)
	e.DeviceLeft("a", at)
	byID := map[dsm.RegionID]RegionOccupancy{}
	for _, o := range e.Occupancy(0) {
		byID[o.RegionID] = o
	}
	if byID["nike"].Occupancy != 0 || byID["nike"].Visits != 1 || byID["hall"].Occupancy != 1 {
		t.Fatalf("occupancy after leave = %+v, want nike vacated, visits intact", byID)
	}
	d := <-sub.C()
	if d.Event != EventDeviceLeft || d.Device != "a" || d.PrevRegionID != "nike" ||
		d.PrevOccupancy != 0 || !d.From.Equal(at) {
		t.Errorf("leave delta = %+v", d)
	}
	if st := e.Stats(); st.DeviceLeaves != 1 {
		t.Errorf("DeviceLeaves = %d, want 1", st.DeviceLeaves)
	}

	// Idempotent: the device is already nowhere; so is a ghost device.
	e.DeviceLeft("a", at.Add(time.Minute))
	e.DeviceLeft("ghost", at)
	if st := e.Stats(); st.DeviceLeaves != 1 {
		t.Errorf("repeated leave counted: DeviceLeaves = %d", st.DeviceLeaves)
	}

	// The sealed-trip fold stays idempotent around the signal: the same
	// trip re-delivered is still a duplicate, and a genuinely new trip
	// moves the device back in.
	e.Ingest("a", trip("nike", t0, time.Minute))
	if st := e.Stats(); st.OutOfOrder != 1 {
		t.Errorf("duplicate after leave not dropped: %+v", st)
	}
	e.Ingest("a", trip("hall", t0.Add(20*time.Minute), time.Minute))
	byID = map[dsm.RegionID]RegionOccupancy{}
	for _, o := range e.Occupancy(0) {
		byID[o.RegionID] = o
	}
	if byID["hall"].Occupancy != 2 || byID["nike"].Occupancy != 0 {
		t.Errorf("occupancy after return = %+v", byID)
	}
}

// TestIngestReplaySkipsSilently: replay-path re-deliveries are dropped
// without raising OutOfOrder (and so without recommending a rebuild).
func TestIngestReplaySkipsSilently(t *testing.T) {
	e := New(Config{Shards: 1})
	e.Ingest("a", trip("r1", t0, time.Minute))
	e.IngestReplay("a", trip("r1", t0, time.Minute))                 // duplicate
	e.IngestReplay("a", trip("r0", t0.Add(-time.Hour), time.Minute)) // behind frontier
	st := e.Stats()
	if st.Trips != 1 || st.OutOfOrder != 0 || st.RebuildRecommended {
		t.Errorf("stats = %+v, want 1 trip, no out-of-order", st)
	}
	e.Ingest("a", trip("r0", t0.Add(-time.Minute), time.Minute)) // live backfill
	if st := e.Stats(); st.OutOfOrder != 1 || !st.RebuildRecommended {
		t.Errorf("live backfill not flagged: %+v", st)
	}
}

// TestRebuildKeepsSubscribers: Rebuild returns a freshly bootstrapped
// engine whose folds keep flowing to the old engine's subscribers.
func TestRebuildKeepsSubscribers(t *testing.T) {
	w, err := tripstore.New(tripstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i, tr := range []semantics.Triplet{
		trip("r1", t0, time.Minute),
		trip("r2", t0.Add(2*time.Minute), time.Minute),
	} {
		if err := w.Insert(tripstore.Trip{Device: "dev", Seq: i, Triplet: tr}); err != nil {
			t.Fatal(err)
		}
	}

	old := New(Config{Shards: 2})
	// Fold out of order so the old engine drops a trip and recommends a
	// rebuild — the situation Rebuild exists for.
	old.Ingest("dev", trip("r2", t0.Add(2*time.Minute), time.Minute))
	old.Ingest("dev", trip("r1", t0, time.Minute))
	if st := old.Stats(); !st.RebuildRecommended || st.Trips != 1 {
		t.Fatalf("setup: %+v", st)
	}
	sub := old.Subscribe(nil)
	defer sub.Close()

	fresh, err := old.Rebuild(w)
	if err != nil {
		t.Fatal(err)
	}
	st := fresh.Stats()
	if st.Trips != 2 || st.OutOfOrder != 0 || st.RebuildRecommended {
		t.Errorf("rebuilt stats = %+v, want both trips, nothing dropped", st)
	}
	// The bootstrap replay published nothing to the adopted hub...
	select {
	case d := <-sub.C():
		t.Fatalf("subscriber saw a historical delta during rebuild: %+v", d)
	default:
	}
	// ...but a live fold into the fresh engine reaches the old subscriber.
	fresh.Ingest("dev", trip("r3", t0.Add(10*time.Minute), time.Minute))
	select {
	case d := <-sub.C():
		if d.RegionID != "r3" {
			t.Errorf("post-rebuild delta = %+v", d)
		}
	case <-time.After(2 * time.Second):
		t.Error("subscriber lost across rebuild")
	}
}
