package analytics

import (
	"time"

	"trips/internal/dsm"
)

// dwellBounds are the fixed upper bounds of the dwell histogram buckets
// (the last bucket is open-ended). Exponential-ish spacing keeps short
// pass-bys and multi-hour stays both resolvable with a handful of buckets,
// and a fixed layout makes shard merging a vector add.
var dwellBounds = [...]time.Duration{
	5 * time.Second, 15 * time.Second, 30 * time.Second,
	time.Minute, 2 * time.Minute, 5 * time.Minute, 10 * time.Minute,
	20 * time.Minute, 30 * time.Minute, time.Hour, 2 * time.Hour,
}

// histogram is one region's dwell-time distribution: fixed buckets plus the
// exact sum/count for the mean. The zero value is an empty histogram.
type histogram struct {
	buckets [len(dwellBounds) + 1]int64
	count   int64
	sum     time.Duration
	max     time.Duration
}

func bucketFor(d time.Duration) int {
	for i, b := range dwellBounds {
		if d <= b {
			return i
		}
	}
	return len(dwellBounds)
}

func (h *histogram) observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.buckets[bucketFor(d)]++
	h.count++
	h.sum += d
	if d > h.max {
		h.max = d
	}
}

func (h *histogram) merge(o *histogram) {
	for i := range h.buckets {
		h.buckets[i] += o.buckets[i]
	}
	h.count += o.count
	h.sum += o.sum
	if o.max > h.max {
		h.max = o.max
	}
}

// quantile estimates the q-quantile (0 < q < 1) by linear interpolation
// inside the covering bucket. The open last bucket interpolates toward the
// observed maximum.
func (h *histogram) quantile(q float64) time.Duration {
	if h.count == 0 {
		return 0
	}
	target := q * float64(h.count)
	var cum float64
	for i, n := range h.buckets {
		if n == 0 {
			continue
		}
		next := cum + float64(n)
		if target <= next {
			lo := time.Duration(0)
			if i > 0 {
				lo = dwellBounds[i-1]
			}
			hi := h.max
			if i < len(dwellBounds) {
				hi = dwellBounds[i]
			}
			if hi < lo {
				hi = lo
			}
			frac := (target - cum) / float64(n)
			return lo + time.Duration(frac*float64(hi-lo))
		}
		cum = next
	}
	return h.max
}

// DwellBucket is one histogram bucket of the dwell view.
type DwellBucket struct {
	// UpTo is the bucket's inclusive upper bound; zero marks the open
	// last bucket.
	UpTo  time.Duration `json:"upTo"`
	Count int64         `json:"count"`
}

// DwellStats is the dwell-time summary of one region.
type DwellStats struct {
	RegionID dsm.RegionID  `json:"regionId"`
	Region   string        `json:"region,omitempty"`
	Count    int64         `json:"count"`
	Mean     time.Duration `json:"mean"`
	P50      time.Duration `json:"p50"`
	P90      time.Duration `json:"p90"`
	P99      time.Duration `json:"p99"`
	Max      time.Duration `json:"max"`
	Buckets  []DwellBucket `json:"buckets"`
}

func (h *histogram) stats(region dsm.RegionID, tag string) DwellStats {
	st := DwellStats{
		RegionID: region,
		Region:   tag,
		Count:    h.count,
		Mean:     h.sum / time.Duration(h.count),
		P50:      h.quantile(0.50),
		P90:      h.quantile(0.90),
		P99:      h.quantile(0.99),
		Max:      h.max,
	}
	for i, n := range h.buckets {
		if n == 0 {
			continue
		}
		var upTo time.Duration
		if i < len(dwellBounds) {
			upTo = dwellBounds[i]
		}
		st.Buckets = append(st.Buckets, DwellBucket{UpTo: upTo, Count: n})
	}
	return st
}
