// Package analytics is the incremental mobility-analytics engine of TRIPS:
// materialized aggregate views over the stream of sealed mobility-semantics
// triplets, maintained as the triplets arrive instead of recomputed by
// rescanning the warehouse.
//
// The warehouse (internal/tripstore) answers point lookups — one device's
// timeline, one region's visits — but every aggregate question (how many
// people are in Nike right now, where do Adidas visitors go next, how long
// do shoppers dwell at the Cashier, which shops were hottest in the last
// quarter hour) would force a full scan. This package keeps those answers
// as first-class state:
//
//   - per-region live occupancy — which region each device is currently in,
//     folded into per-region device counts,
//   - region→region transition (flow) matrices — consecutive region-carrying
//     triplets of one device count one directed transition,
//   - per-region dwell-time histograms with quantile estimation — fixed
//     exponential buckets, so merging and querying are O(buckets),
//   - windowed region popularity — a time-bucketed ring keyed by triplet
//     start time, answering top-k over "the last N minutes/hours" by summing
//     the covered buckets.
//
// # Determinism
//
// Both producers feed the same Ingest path: the online engine's sealed
// emissions (via the Emitter tee) and a warehouse replay (Bootstrap), so a
// cold start over an existing store reaches the same state as live
// ingestion. That equivalence is by construction: every view is a fold that
// depends only on each device's own triplet order (which both producers
// deliver in timeline order) combined across devices by commutative sums.
// The ring prunes buckets strictly by the high-watermark, which has the
// same final value under any interleaving, so pruned state is identical
// too; only the diagnostic counters (late-bucket drops) may differ.
//
// # Concurrency
//
// Devices are hashed across shards; each shard guards its own device states
// and additive view fragments with one mutex, so ingest from many engine
// shards rarely contends. Queries take every shard lock briefly, merge the
// fragments, and return — O(view), never O(trips). Live subscribers attach
// through a Hub (see subscribe.go) that fans per-ingest deltas to buffered
// per-subscriber channels and evicts consumers that stop draining.
package analytics

import (
	"io"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"trips/internal/core"
	"trips/internal/dsm"
	"trips/internal/obs/trace"
	"trips/internal/online"
	"trips/internal/position"
	"trips/internal/semantics"
)

// Config parameterizes the engine. The zero value of every field selects a
// sensible default.
type Config struct {
	// Shards is the number of independently locked view fragments devices
	// are hashed across. Default min(NumCPU, 8).
	Shards int

	// BucketWidth is the time-bucket width of the popularity ring (event
	// time, rounded up to whole seconds). Default 1 minute.
	BucketWidth time.Duration

	// Buckets is the ring length: how many buckets of history the windowed
	// top-k can cover. Older buckets are pruned as the watermark advances.
	// Default 360 (six hours at the default width).
	Buckets int

	// SubscriberBuffer is the per-subscriber delta channel depth before a
	// slow consumer is evicted. Default 64.
	SubscriberBuffer int

	// Metrics receives fold-latency and freshness observations; nil
	// disables them. Carried across Rebuild, so histograms accumulate over
	// view generations.
	Metrics *Metrics

	// Tracer records an analytics_fold span for every traced fold (see
	// IngestTraced) — the terminal span that completes an end-to-end
	// request trace; nil disables it.
	Tracer *trace.Tracer
}

func (c *Config) applyDefaults() {
	if c.Shards <= 0 {
		c.Shards = runtime.NumCPU()
		if c.Shards > 8 {
			c.Shards = 8
		}
	}
	if c.BucketWidth <= 0 {
		c.BucketWidth = time.Minute
	}
	if c.BucketWidth < time.Second {
		c.BucketWidth = time.Second
	}
	c.BucketWidth = c.BucketWidth.Round(time.Second)
	if c.Buckets <= 0 {
		c.Buckets = 360
	}
	if c.SubscriberBuffer <= 0 {
		c.SubscriberBuffer = 64
	}
}

// Engine maintains the materialized views. Create with New, feed it with
// Ingest / the Emitter tee / Bootstrap, and read it with the query methods.
// Safe for concurrent use.
type Engine struct {
	cfg    Config
	shards []*shard
	hub    *Hub

	// maxToBucket is the bucket index of the engine-wide watermark (the
	// max triplet To folded into any shard), maintained as a CAS-max so
	// every shard prunes its popularity ring against the same global
	// retention frontier — a lagging shard must not retain more history
	// than the window covers. math.MinInt64 = nothing folded yet.
	maxToBucket atomic.Int64

	// lastSnapshot is the UnixMilli of the newest durable snapshot written
	// (SaveSnapshot) or loaded (LoadSnapshot); 0 = none. snapshotErrors
	// counts failed periodic saves (see StartAutoSnapshot).
	lastSnapshot   atomic.Int64
	snapshotErrors atomic.Int64
}

// New returns an engine with empty views.
func New(cfg Config) *Engine {
	cfg.applyDefaults()
	e := &Engine{cfg: cfg, shards: make([]*shard, cfg.Shards)}
	e.hub = newHub(cfg.SubscriberBuffer)
	e.maxToBucket.Store(math.MinInt64)
	for i := range e.shards {
		e.shards[i] = newShard()
	}
	return e
}

// Config returns the effective (defaulted) configuration.
func (e *Engine) Config() Config { return e.cfg }

// deviceState is the per-device fold: where the device currently is and the
// last region-carrying triplet for flow counting.
type deviceState struct {
	region   dsm.RegionID // current region; "" = in no region
	lastFrom time.Time    // ordering guard
	lastTo   time.Time    // staleness filter input
	// prevRegion is the most recent region-carrying triplet's region — the
	// flow predecessor. Tracked separately from region because region-less
	// triplets must not break a→b transition chains (mirroring the online
	// engine's knowledge aggregation).
	prevRegion dsm.RegionID
}

// shard is one independently locked view fragment.
type shard struct {
	mu sync.Mutex

	devices   map[position.DeviceID]*deviceState
	occupancy map[dsm.RegionID]int   // devices currently in region
	visits    map[dsm.RegionID]int64 // lifetime triplet count per region
	tags      map[dsm.RegionID]string
	flows     map[flowKey]int64
	dwell     map[dsm.RegionID]*histogram
	ring      map[int64]map[dsm.RegionID]int64 // bucket index → region → count
	// minRetained is the ring's pruned frontier: every bucket below it has
	// been deleted, so prune only touches the indexes the frontier newly
	// crossed — amortized O(1) per ingest. MinInt64 = never pruned.
	minRetained int64
	watermark   time.Time // max triplet To seen

	trips      int64
	inferred   int64
	regionless int64
	outOfOrder int64
	lateBucket int64
	leaves     int64
}

// newShard pre-sizes every view map for a working venue — a few dozen
// regions, a few hundred devices per shard — so the steady-state fold never
// pays an incremental map growth (rehash + bucket allocation) mid-ingest.
func newShard() *shard {
	return &shard{
		devices:     make(map[position.DeviceID]*deviceState, 256),
		occupancy:   make(map[dsm.RegionID]int, 64),
		visits:      make(map[dsm.RegionID]int64, 64),
		tags:        make(map[dsm.RegionID]string, 64),
		flows:       make(map[flowKey]int64, 256),
		dwell:       make(map[dsm.RegionID]*histogram, 64),
		ring:        make(map[int64]map[dsm.RegionID]int64, 64),
		minRetained: math.MinInt64,
	}
}

type flowKey struct {
	from, to dsm.RegionID
}

// fnvHash is an inlined FNV-1a over a string: identical bits to
// fnv.New32a().Write(...).Sum32() without materializing a hash.Hash32 on the
// heap — shard routing runs on every fold.
//
//trips:zeroalloc
func fnvHash(s string) uint32 {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= prime32
	}
	return h
}

//trips:zeroalloc
func (e *Engine) shardOf(dev position.DeviceID) *shard {
	return e.shards[fnvHash(string(dev))%uint32(len(e.shards))]
}

// shardForRegion picks a shard by region hash. Live ingest never uses it —
// additive view entries land on the folding device's shard — but snapshot
// restore does, so a loaded engine spreads the historical map weight
// instead of parking it all on shard 0.
func (e *Engine) shardForRegion(r dsm.RegionID) *shard {
	return e.shards[fnvHash(string(r))%uint32(len(e.shards))]
}

// Ingest folds one sealed triplet into the views and publishes a delta to
// matching subscribers. Triplets must arrive in per-device timeline order
// (both producers guarantee it) with strictly increasing start instants —
// the same (device, From) identity the warehouse dedupes on — so an
// out-of-order or duplicate delivery is counted and skipped, keeping the
// fold deterministic and idempotent against at-least-once producers.
func (e *Engine) Ingest(dev position.DeviceID, t semantics.Triplet) {
	e.fold(dev, t, false, trace.Ctx{})
}

// IngestTraced is Ingest carrying a trace context: a sampled tc records the
// fold as an analytics_fold span parented under the producer's seal span —
// the terminal span of an end-to-end trace. The Emitter tee uses it with
// each emission's context; a zero tc is exactly Ingest.
func (e *Engine) IngestTraced(dev position.DeviceID, t semantics.Triplet, tc trace.Ctx) {
	e.fold(dev, t, false, tc)
}

// IngestReplay folds a triplet that may already be in the views: a trip at
// or behind the device's fold frontier is skipped silently instead of
// counting OutOfOrder. The replay paths use it — Bootstrap's tail replay
// over a warehouse the views partially cover, and a rebuild draining
// emissions that overlapped the re-bootstrap — where a re-delivery is
// expected, not a backfill that warrants RebuildRecommended.
func (e *Engine) IngestReplay(dev position.DeviceID, t semantics.Triplet) {
	e.fold(dev, t, true, trace.Ctx{})
}

func (e *Engine) fold(dev position.DeviceID, t semantics.Triplet, replay bool, tc trace.Ctx) {
	var start time.Time
	if e.cfg.Metrics != nil {
		//trips:allow wallclock: fold latency metric
		start = time.Now()
		defer func() { e.cfg.Metrics.FoldSeconds.ObserveSince(start) }()
	}
	// Inert unless tc is sampled. Ending this span completes the trace (it
	// is the tracer's terminal span name); later SSE-delivery spans absorb
	// into the completed entry.
	sp := e.cfg.Tracer.Start(tc, "analytics_fold")
	sp.SetDevice(string(dev))
	sh := e.shardOf(dev)
	sh.mu.Lock()
	d := sh.devices[dev]
	if d == nil {
		d = &deviceState{}
		sh.devices[dev] = d
	} else if !t.From.After(d.lastFrom) {
		if !replay {
			sh.outOfOrder++
		}
		sh.mu.Unlock()
		if !replay {
			// A dropped fold means the views are missing this trip: flag the
			// trace so the anomaly is kept and inspectable.
			sp.SetErr()
		}
		sp.End()
		return
	}
	d.lastFrom = t.From
	if t.To.After(d.lastTo) {
		d.lastTo = t.To
	}
	sh.trips++
	if t.Inferred {
		sh.inferred++
	}
	if t.To.After(sh.watermark) {
		sh.watermark = t.To
		e.advanceMaxBucket(e.bucketIndex(t.To))
	}

	prev := d.region
	region := t.RegionID
	if region == "" {
		sh.regionless++
	} else if t.Region != "" {
		sh.tags[region] = t.Region
	}

	// Occupancy: move the device from its previous region to the new one.
	if prev != region {
		if prev != "" {
			if sh.occupancy[prev]--; sh.occupancy[prev] <= 0 {
				delete(sh.occupancy, prev)
			}
		}
		if region != "" {
			sh.occupancy[region]++
		}
		d.region = region
	}

	if region != "" {
		sh.visits[region]++
		// Flows: one directed transition per consecutive pair of distinct
		// region-carrying triplets.
		if d.prevRegion != "" && d.prevRegion != region {
			sh.flows[flowKey{d.prevRegion, region}]++
		}
		d.prevRegion = region

		// Dwell histogram.
		h := sh.dwell[region]
		if h == nil {
			h = new(histogram)
			sh.dwell[region] = h
		}
		h.observe(t.Duration())

		// Popularity ring, keyed by the triplet's start bucket. Buckets
		// older than the retained span are pruned by the engine-wide
		// watermark (not the shard's own — a shard whose devices lag must
		// not retain more history than the global window); a triplet
		// landing below the pruning frontier is dropped (it would be
		// pruned immediately anyway), keeping state deterministic across
		// ingest orders.
		idx := e.bucketIndex(t.From)
		min := e.globalMinRetained()
		if idx < min {
			sh.lateBucket++
		} else {
			b := sh.ring[idx]
			if b == nil {
				b = make(map[dsm.RegionID]int64)
				sh.ring[idx] = b
			}
			b[region]++
		}
		// Prune on every region-carrying fold, including late-dropped ones:
		// a lagging shard's stale buckets must go as soon as it learns the
		// global frontier moved, not only when it folds something new.
		sh.prune(min, e.cfg.Buckets)
	}
	occ := sh.occupancy[region]
	// The prev fields describe a departure; a device staying put (or a
	// duplicate region) reports none.
	var prevID dsm.RegionID
	prevOcc := 0
	if prev != region {
		prevID = prev
		if prev != "" {
			prevOcc = sh.occupancy[prev]
		}
	}
	sh.mu.Unlock()

	e.hub.publish(Delta{
		Device:        dev,
		Event:         t.Event,
		Region:        t.Region,
		RegionID:      region,
		PrevRegionID:  prevID,
		From:          t.From,
		To:            t.To,
		Inferred:      t.Inferred,
		Occupancy:     occ,
		PrevOccupancy: prevOcc,
		Trace:         sp.Ctx(),
	})
	sp.End()
}

// prune drops ring buckets below the retention frontier; callers hold the
// shard lock. Buckets below the previous frontier are already gone, so
// only the newly crossed indexes need deleting; a frontier jump wider than
// the ring itself (first prune, or a watermark leap) falls back to one map
// scan instead of walking the empty index range.
func (sh *shard) prune(min int64, ringLen int) {
	if min <= sh.minRetained {
		return
	}
	if sh.minRetained == math.MinInt64 || min-sh.minRetained > int64(ringLen) {
		//trips:commutative prune deletes by predicate; the surviving set is order-independent
		for idx := range sh.ring {
			if idx < min {
				delete(sh.ring, idx)
			}
		}
	} else {
		for idx := sh.minRetained; idx < min; idx++ {
			delete(sh.ring, idx)
		}
	}
	sh.minRetained = min
}

// bucketIndex floors a time onto the ring's bucket grid.
func (e *Engine) bucketIndex(t time.Time) int64 {
	ws := int64(e.cfg.BucketWidth / time.Second)
	sec := t.Unix()
	idx := sec / ws
	if sec%ws < 0 { // floor division for pre-epoch times
		idx--
	}
	return idx
}

// advanceMaxBucket CAS-maxes the engine-wide watermark bucket; callers pass
// the bucket index of a folded triplet's To.
func (e *Engine) advanceMaxBucket(idx int64) {
	for {
		cur := e.maxToBucket.Load()
		if idx <= cur || e.maxToBucket.CompareAndSwap(cur, idx) {
			return
		}
	}
}

// globalMinRetained is the engine-wide ring retention frontier: the lowest
// bucket index the window still covers, derived from the watermark bucket
// shared by every shard. Before anything folds it sits far below any real
// bucket so nothing is dropped or pruned.
func (e *Engine) globalMinRetained() int64 {
	max := e.maxToBucket.Load()
	if max == math.MinInt64 {
		return -1 << 62
	}
	return max - int64(e.cfg.Buckets) + 1
}

// IngestTrip folds one warehoused trip — the Bootstrap unit.
func (e *Engine) IngestTrip(dev position.DeviceID, t semantics.Triplet) {
	e.Ingest(dev, t)
}

// IngestResult folds every triplet of a batch translation result,
// implementing core.ResultSink so the batch Translator can feed the views
// directly.
func (e *Engine) IngestResult(r core.Result) error {
	if r.Final == nil {
		return nil
	}
	for _, t := range r.Final.Triplets {
		e.Ingest(r.Device, t)
	}
	return nil
}

// EventDeviceLeft labels the Delta published by DeviceLeft: a departure
// signal, not a sealed triplet.
const EventDeviceLeft = semantics.Event("device-left")

// DeviceLeft folds an explicit departure signal into the views: the online
// engine's idle finalizer knows when a device's session died, and this
// drops the device out of its current region so occupancy decays by
// evidence instead of only the query-time activeWithin filter. The signal
// is idempotent — a device already in no region is a no-op — and does not
// advance the device's fold frontier, so sealed-trip folds (including a
// later warehouse replay) behave identically with or without it: the next
// triplet simply moves the device from "nowhere" into its region. at is
// the departure's event time (the To of the device's last sealed triplet).
//
// Departures are ephemeral: they are not warehoused, so a fresh Bootstrap
// cannot reconstruct them. A durable snapshot taken after the signal does
// preserve it.
func (e *Engine) DeviceLeft(dev position.DeviceID, at time.Time) {
	sh := e.shardOf(dev)
	sh.mu.Lock()
	d := sh.devices[dev]
	if d == nil || d.region == "" {
		sh.mu.Unlock()
		return
	}
	prev := d.region
	d.region = ""
	if sh.occupancy[prev]--; sh.occupancy[prev] <= 0 {
		delete(sh.occupancy, prev)
	}
	prevOcc := sh.occupancy[prev]
	sh.leaves++
	sh.mu.Unlock()

	e.hub.publish(Delta{
		Device:        dev,
		Event:         EventDeviceLeft,
		PrevRegionID:  prev,
		From:          at,
		To:            at,
		PrevOccupancy: prevOcc,
	})
}

// Emitter returns an online.Emitter that folds every sealed emission into
// the views and forwards it to next (which may be nil). It also implements
// online.SessionFinalizer, translating the engine's idle finalization into
// a DeviceLeft signal (and forwarding it when next is a finalizer too).
// Closing the returned emitter closes next if it is closable; the engine
// itself has no close state.
func (e *Engine) Emitter(next online.Emitter) online.Emitter {
	return &teeEmitter{e: e, next: next}
}

type teeEmitter struct {
	e    *Engine
	next online.Emitter
}

func (t *teeEmitter) Emit(em online.Emission) {
	t.e.IngestTraced(em.Device, em.Triplet, em.Trace)
	// The triplet is now visible in the views; the arrival stamp closes the
	// ingest→visible freshness loop. Close/idle flushes emit without one.
	if m := t.e.cfg.Metrics; m != nil && !em.ArrivedAt.IsZero() {
		m.Freshness.ObserveSince(em.ArrivedAt)
	}
	if t.next != nil {
		t.next.Emit(em)
	}
}

func (t *teeEmitter) FinalizeSession(dev position.DeviceID, at time.Time) {
	t.e.DeviceLeft(dev, at)
	if f, ok := t.next.(online.SessionFinalizer); ok {
		f.FinalizeSession(dev, at)
	}
}

func (t *teeEmitter) Close() error {
	if c, ok := t.next.(io.Closer); ok {
		return c.Close()
	}
	return nil
}

// Stats are the engine's diagnostic counters, summed across shards.
type Stats struct {
	Trips    int64 `json:"trips"`
	Inferred int64 `json:"inferred"`
	Devices  int   `json:"devices"`
	Regions  int   `json:"regions"`
	Flows    int   `json:"flows"` // distinct directed region pairs
	// Regionless counts triplets without a region annotation (they advance
	// occupancy to "nowhere" but index no region view).
	Regionless int64 `json:"regionless"`
	// OutOfOrder counts triplets dropped for violating the per-device
	// strictly-increasing start order — out-of-order or duplicate
	// (device, From) deliveries, mirroring the warehouse's dedupe key.
	OutOfOrder int64 `json:"outOfOrder"`
	// RebuildRecommended is set once any fold was dropped OutOfOrder: the
	// views are missing warehoused trips (a backfill landed behind a
	// device's fold frontier) and only a re-bootstrap recovers them —
	// Engine.Rebuild, or POST /analytics/rebuild on trips-server.
	RebuildRecommended bool `json:"rebuildRecommended,omitempty"`
	// LateBuckets counts triplets that arrived below the ring's pruning
	// frontier (their bucket was already expired).
	LateBuckets int64 `json:"lateBuckets"`
	// DeviceLeaves counts explicit departure signals folded (DeviceLeft —
	// the online engine's idle finalizer decaying occupancy by evidence).
	DeviceLeaves int64 `json:"deviceLeaves"`
	// Subscribers / Evicted describe the live-subscription hub.
	Subscribers int   `json:"subscribers"`
	Evicted     int64 `json:"evicted"`
	// Watermark is the latest triplet end time folded into any view.
	Watermark time.Time `json:"watermark,omitzero"`
	// LastSnapshot is when the newest durable view snapshot was written or
	// loaded; SnapshotAgeSeconds is its age at the time of this Stats call
	// (0 when no snapshot exists). SnapshotErrors counts failed periodic
	// saves.
	LastSnapshot       time.Time `json:"lastSnapshot,omitzero"`
	SnapshotAgeSeconds float64   `json:"snapshotAgeSeconds,omitempty"`
	SnapshotErrors     int64     `json:"snapshotErrors,omitempty"`
}

// Stats sums the shard counters.
func (e *Engine) Stats() Stats {
	var st Stats
	regions := make(map[dsm.RegionID]bool)
	flows := make(map[flowKey]bool)
	for _, sh := range e.shards {
		sh.mu.Lock()
		st.Trips += sh.trips
		st.Inferred += sh.inferred
		st.Devices += len(sh.devices)
		st.Regionless += sh.regionless
		st.OutOfOrder += sh.outOfOrder
		st.LateBuckets += sh.lateBucket
		st.DeviceLeaves += sh.leaves
		// Distinct pairs merge across shards: the same transition folded on
		// two shards is one flow, exactly as Flows() reports it.
		//trips:commutative set union across shards; order-independent
		for k := range sh.flows {
			flows[k] = true
		}
		//trips:commutative set union across shards; order-independent
		for r := range sh.visits {
			regions[r] = true
		}
		if sh.watermark.After(st.Watermark) {
			st.Watermark = sh.watermark
		}
		sh.mu.Unlock()
	}
	st.Regions = len(regions)
	st.Flows = len(flows)
	st.Subscribers, st.Evicted = e.hub.stats()
	st.RebuildRecommended = st.OutOfOrder > 0
	if ms := e.lastSnapshot.Load(); ms != 0 {
		st.LastSnapshot = time.UnixMilli(ms).UTC()
		//trips:allow wallclock: snapshot freshness gauge, operational only
		st.SnapshotAgeSeconds = time.Since(st.LastSnapshot).Seconds()
	}
	st.SnapshotErrors = e.snapshotErrors.Load()
	return st
}

// Watermark returns the latest triplet end time folded into any view.
func (e *Engine) Watermark() time.Time {
	var w time.Time
	for _, sh := range e.shards {
		sh.mu.Lock()
		if sh.watermark.After(w) {
			w = sh.watermark
		}
		sh.mu.Unlock()
	}
	return w
}

// RegionOccupancy is one row of the occupancy view.
type RegionOccupancy struct {
	RegionID  dsm.RegionID `json:"regionId"`
	Region    string       `json:"region,omitempty"` // semantic tag
	Occupancy int          `json:"occupancy"`        // devices currently in the region
	Visits    int64        `json:"visits"`           // lifetime triplet count
}

// Occupancy merges the per-shard occupancy and visit counters, sorted by
// occupancy (then visits, then ID) descending. activeWithin > 0 drops
// devices whose last triplet ended more than that long before the
// watermark — a staleness filter for venues where devices vanish without a
// closing triplet; it walks device states instead of the folded counters,
// so it is O(devices) rather than O(regions).
func (e *Engine) Occupancy(activeWithin time.Duration) []RegionOccupancy {
	occ := make(map[dsm.RegionID]int)
	visits := make(map[dsm.RegionID]int64)
	tags := make(map[dsm.RegionID]string)
	var cutoff time.Time
	if activeWithin > 0 {
		if w := e.Watermark(); !w.IsZero() {
			cutoff = w.Add(-activeWithin)
		}
	}
	for _, sh := range e.shards {
		sh.mu.Lock()
		//trips:commutative per-shard counts merge by addition; order-independent
		for r, n := range sh.visits {
			visits[r] += n
		}
		//trips:commutative every shard stores the same tag for a region; last write wins identically
		for r, tag := range sh.tags {
			tags[r] = tag
		}
		if cutoff.IsZero() {
			//trips:commutative per-shard counts merge by addition; order-independent
			for r, n := range sh.occupancy {
				occ[r] += n
			}
		} else {
			//trips:commutative per-device occupancy increments sum; order-independent
			for _, d := range sh.devices {
				if d.region != "" && !d.lastTo.Before(cutoff) {
					occ[d.region]++
				}
			}
		}
		sh.mu.Unlock()
	}
	out := make([]RegionOccupancy, 0, len(visits))
	//trips:commutative row collection; iteration order is erased by the sort below
	for r, v := range visits {
		out = append(out, RegionOccupancy{RegionID: r, Region: tags[r], Occupancy: occ[r], Visits: v})
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Occupancy != b.Occupancy {
			return a.Occupancy > b.Occupancy
		}
		if a.Visits != b.Visits {
			return a.Visits > b.Visits
		}
		return a.RegionID < b.RegionID
	})
	return out
}

// Flow is one directed region transition with its lifetime count.
type Flow struct {
	From    dsm.RegionID `json:"from"`
	FromTag string       `json:"fromTag,omitempty"`
	To      dsm.RegionID `json:"to"`
	ToTag   string       `json:"toTag,omitempty"`
	Count   int64        `json:"count"`
}

// Flows merges the transition matrices, optionally restricted to
// transitions touching region (either side; "" = all), sorted by count
// descending then (From, To). limit <= 0 returns everything.
func (e *Engine) Flows(region dsm.RegionID, limit int) []Flow {
	sum := make(map[flowKey]int64)
	tags := make(map[dsm.RegionID]string)
	for _, sh := range e.shards {
		sh.mu.Lock()
		//trips:commutative per-shard counts merge by addition; order-independent
		for k, n := range sh.flows {
			if region == "" || k.from == region || k.to == region {
				sum[k] += n
			}
		}
		//trips:commutative every shard stores the same tag for a region; last write wins identically
		for r, tag := range sh.tags {
			tags[r] = tag
		}
		sh.mu.Unlock()
	}
	out := make([]Flow, 0, len(sum))
	//trips:commutative row collection; iteration order is erased by the sort below
	for k, n := range sum {
		out = append(out, Flow{From: k.from, FromTag: tags[k.from], To: k.to, ToTag: tags[k.to], Count: n})
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Count != b.Count {
			return a.Count > b.Count
		}
		if a.From != b.From {
			return a.From < b.From
		}
		return a.To < b.To
	})
	if limit > 0 && len(out) > limit {
		out = out[:limit]
	}
	return out
}

// Dwell merges the region's dwell histograms and derives the summary
// statistics. ok is false for a region with no folded triplets.
func (e *Engine) Dwell(region dsm.RegionID) (DwellStats, bool) {
	var merged histogram
	tag := ""
	for _, sh := range e.shards {
		sh.mu.Lock()
		if h := sh.dwell[region]; h != nil {
			merged.merge(h)
		}
		if t := sh.tags[region]; t != "" {
			tag = t
		}
		sh.mu.Unlock()
	}
	if merged.count == 0 {
		return DwellStats{}, false
	}
	return merged.stats(region, tag), true
}

// RegionCount is one row of the windowed popularity view.
type RegionCount struct {
	RegionID dsm.RegionID `json:"regionId"`
	Region   string       `json:"region,omitempty"`
	Count    int64        `json:"count"` // triplets starting inside the window
}

// TopK sums the popularity ring over the last window of event time (ending
// at the watermark) and returns the k busiest regions. window <= 0 or wider
// than the ring covers the whole retained span; k <= 0 returns every region
// seen in the window. The cost is O(window buckets × regions), independent
// of the number of trips folded.
func (e *Engine) TopK(k int, window time.Duration) []RegionCount {
	w := e.Watermark()
	if w.IsZero() {
		return nil
	}
	span := int64(e.cfg.Buckets)
	if window > 0 {
		if b := int64((window + e.cfg.BucketWidth - 1) / e.cfg.BucketWidth); b < span {
			span = b
		}
	}
	min := e.bucketIndex(w) - span + 1
	sum := make(map[dsm.RegionID]int64)
	tags := make(map[dsm.RegionID]string)
	for _, sh := range e.shards {
		sh.mu.Lock()
		//trips:commutative per-shard counts merge by addition; order-independent
		for idx, b := range sh.ring {
			if idx < min {
				continue
			}
			//trips:commutative per-shard counts merge by addition; order-independent
			for r, n := range b {
				sum[r] += n
			}
		}
		//trips:commutative every shard stores the same tag for a region; last write wins identically
		for r, tag := range sh.tags {
			tags[r] = tag
		}
		sh.mu.Unlock()
	}
	out := make([]RegionCount, 0, len(sum))
	//trips:commutative row collection; iteration order is erased by the sort below
	for r, n := range sum {
		out = append(out, RegionCount{RegionID: r, Region: tags[r], Count: n})
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Count != b.Count {
			return a.Count > b.Count
		}
		return a.RegionID < b.RegionID
	})
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}

// Subscribe attaches a live subscriber to the delta feed; see Hub.Subscribe.
func (e *Engine) Subscribe(regions []dsm.RegionID) *Subscription {
	return e.hub.subscribe(regions)
}

// Snapshot is the canonical full-view dump: every view rendered in a
// deterministic order, for the bootstrap-equivalence property test and for
// debugging. Diagnostic counters that legitimately depend on arrival
// interleaving (late buckets, subscriber stats) are excluded.
type Snapshot struct {
	Watermark time.Time         `json:"watermark,omitzero"`
	Occupancy []RegionOccupancy `json:"occupancy"`
	Flows     []Flow            `json:"flows"`
	Dwell     []DwellStats      `json:"dwell"`
	Ring      []RingBucket      `json:"ring"`
	Trips     int64             `json:"trips"`
	Inferred  int64             `json:"inferred"`
}

// RingBucket is one retained popularity bucket.
type RingBucket struct {
	Start   time.Time     `json:"start"` // bucket start (event time)
	Regions []RegionCount `json:"regions"`
}

// Snapshot renders every view deterministically.
func (e *Engine) Snapshot() Snapshot {
	snap := Snapshot{
		Watermark: e.Watermark(),
		Occupancy: e.Occupancy(0),
		Flows:     e.Flows("", 0),
	}
	st := e.Stats()
	snap.Trips, snap.Inferred = st.Trips, st.Inferred

	regions := make(map[dsm.RegionID]bool)
	buckets := make(map[int64]map[dsm.RegionID]int64)
	// Render only the buckets the window still covers: a shard prunes
	// lazily (on its own next ingest), so buckets below the global
	// retention frontier may linger in memory, and whether they do depends
	// on ingest interleaving — excluding them keeps the dump deterministic.
	minRetained := e.globalMinRetained()
	for _, sh := range e.shards {
		sh.mu.Lock()
		//trips:commutative set union across shards; order-independent
		for r := range sh.dwell {
			regions[r] = true
		}
		//trips:commutative bucket merge by addition; order-independent
		for idx, b := range sh.ring {
			if idx < minRetained {
				continue
			}
			dst := buckets[idx]
			if dst == nil {
				dst = make(map[dsm.RegionID]int64)
				buckets[idx] = dst
			}
			//trips:commutative per-shard counts merge by addition; order-independent
			for r, n := range b {
				dst[r] += n
			}
		}
		sh.mu.Unlock()
	}
	ids := make([]dsm.RegionID, 0, len(regions))
	//trips:commutative key collection; iteration order is erased by the sort below
	for r := range regions {
		ids = append(ids, r)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, r := range ids {
		if st, ok := e.Dwell(r); ok {
			snap.Dwell = append(snap.Dwell, st)
		}
	}
	idxs := make([]int64, 0, len(buckets))
	//trips:commutative key collection; iteration order is erased by the sort below
	for idx := range buckets {
		idxs = append(idxs, idx)
	}
	sort.Slice(idxs, func(i, j int) bool { return idxs[i] < idxs[j] })
	ws := int64(e.cfg.BucketWidth / time.Second)
	for _, idx := range idxs {
		rb := RingBucket{Start: time.Unix(idx*ws, 0).UTC()}
		rs := make([]dsm.RegionID, 0, len(buckets[idx]))
		//trips:commutative key collection; iteration order is erased by the sort below
		for r := range buckets[idx] {
			rs = append(rs, r)
		}
		sort.Slice(rs, func(i, j int) bool { return rs[i] < rs[j] })
		for _, r := range rs {
			rb.Regions = append(rb.Regions, RegionCount{RegionID: r, Count: buckets[idx][r]})
		}
		snap.Ring = append(snap.Ring, rb)
	}
	return snap
}

var _ core.ResultSink = (*Engine)(nil)
