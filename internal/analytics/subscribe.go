package analytics

import (
	"fmt"
	"sync"
	"time"

	"trips/internal/dsm"
	"trips/internal/obs/trace"
	"trips/internal/position"
	"trips/internal/semantics"
)

// Delta is one view update pushed to live subscribers: the triplet that was
// folded plus the occupancy it produced — enough for a dashboard to update
// without re-querying.
type Delta struct {
	Device   position.DeviceID `json:"device"`
	Event    semantics.Event   `json:"event"`
	Region   string            `json:"region,omitempty"`
	RegionID dsm.RegionID      `json:"regionId,omitempty"`
	// PrevRegionID is the region the device left ("" when it was nowhere).
	PrevRegionID dsm.RegionID `json:"prevRegionId,omitempty"`
	From         time.Time    `json:"from"`
	To           time.Time    `json:"to"`
	Inferred     bool         `json:"inferred,omitempty"`
	// Occupancy is the entered region's device count after this update;
	// PrevOccupancy the left region's.
	//
	// Both counts are fold-shard-local: devices are hashed across
	// independently locked shards and a fold reads only its own shard's
	// counter, so a region visited by devices on several shards reports
	// only the folding shard's share here — by design, because merging
	// every shard on every delta would serialize ingest. Dashboards that
	// need the true region-wide count should query /analytics/occupancy
	// (Engine.Occupancy), which merges all shards; the engine-wide total
	// is also exported as the trips_analytics_occupancy_devices gauge on
	// /metrics. Treat these fields as change signals, not absolute values.
	Occupancy     int `json:"occupancy"`
	PrevOccupancy int `json:"prevOccupancy,omitempty"`
	// Trace is the fold span's context when the fold carried a sampled
	// trace; SSE delivery starts its span under it. Process-local, excluded
	// from the wire form.
	Trace trace.Ctx `json:"-"`
}

// String renders the delta the way the paper prints triplets.
func (d Delta) String() string {
	return fmt.Sprintf("%s: (%s, %s, %s-%s) occ=%d",
		d.Device, d.Event, d.Region,
		d.From.Format("3:04:05"), d.To.Format("3:04:05pm"), d.Occupancy)
}

// matches reports whether the delta touches any of the subscribed regions.
func (d Delta) matches(regions map[dsm.RegionID]bool) bool {
	if len(regions) == 0 {
		return true
	}
	return (d.RegionID != "" && regions[d.RegionID]) ||
		(d.PrevRegionID != "" && regions[d.PrevRegionID])
}

// Hub fans view deltas out to many concurrent subscribers. Each subscriber
// owns a buffered channel; publishing never blocks — a subscriber whose
// buffer is full is evicted (its channel closes), because a consumer that
// cannot keep up with the view stream would otherwise stall every ingest.
type Hub struct {
	mu      sync.RWMutex
	subs    map[*Subscription]bool
	buf     int
	nextID  int64
	evicted int64
}

func newHub(buf int) *Hub {
	return &Hub{subs: make(map[*Subscription]bool), buf: buf}
}

// Subscription is one live subscriber. Receive deltas from C; the channel
// closes when the subscriber is evicted as a slow consumer. Close detaches
// (idempotent, safe concurrently with eviction).
type Subscription struct {
	hub     *Hub
	id      int64
	regions map[dsm.RegionID]bool
	ch      chan Delta
	once    sync.Once
	// evicted is set under the hub write lock before the channel closes.
	evicted bool
}

// C returns the delta channel. It closes on eviction or Close.
func (s *Subscription) C() <-chan Delta { return s.ch }

// Evicted reports whether the hub dropped this subscriber for not keeping
// up (meaningful once C is closed).
func (s *Subscription) Evicted() bool {
	s.hub.mu.RLock()
	defer s.hub.mu.RUnlock()
	return s.evicted
}

// Close detaches the subscription and closes its channel.
func (s *Subscription) Close() {
	s.hub.mu.Lock()
	s.detachLocked()
	s.hub.mu.Unlock()
}

// detachLocked removes the subscription and closes its channel exactly
// once; callers hold the hub write lock (which excludes publishers, so no
// send can race the close).
func (s *Subscription) detachLocked() {
	delete(s.hub.subs, s)
	s.once.Do(func() { close(s.ch) })
}

// subscribe attaches a subscriber filtered to the given regions (empty =
// every region).
func (h *Hub) subscribe(regions []dsm.RegionID) *Subscription {
	s := &Subscription{hub: h, ch: make(chan Delta, h.buf)}
	if len(regions) > 0 {
		s.regions = make(map[dsm.RegionID]bool, len(regions))
		for _, r := range regions {
			s.regions[r] = true
		}
	}
	h.mu.Lock()
	h.nextID++
	s.id = h.nextID
	h.subs[s] = true
	h.mu.Unlock()
	return s
}

// publish delivers a delta to every matching subscriber without blocking,
// then evicts the subscribers whose buffers were full.
func (h *Hub) publish(d Delta) {
	h.mu.RLock()
	if len(h.subs) == 0 {
		h.mu.RUnlock()
		return
	}
	var full []*Subscription
	//trips:commutative delivery to independent per-subscriber channels; inter-subscriber order is unobservable
	for s := range h.subs {
		if !d.matches(s.regions) {
			continue
		}
		select {
		case s.ch <- d:
		default:
			full = append(full, s)
		}
	}
	h.mu.RUnlock()
	if full == nil {
		return
	}
	h.mu.Lock()
	for _, s := range full {
		if h.subs[s] {
			s.evicted = true
			h.evicted++
			s.detachLocked()
		}
	}
	h.mu.Unlock()
}

// stats returns the live subscriber count and the lifetime eviction count.
func (h *Hub) stats() (subscribers int, evicted int64) {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return len(h.subs), h.evicted
}
