package simul

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"trips/internal/dsm"
	"trips/internal/geom"
	"trips/internal/position"
	"trips/internal/semantics"
)

// Visit is one itinerary leg: dwell in a region for a duration.
type Visit struct {
	Region dsm.RegionID
	Stay   time.Duration
}

// Truth is a simulated device's ground truth: the dense true trajectory and
// the true mobility semantics — the "ground truth positioning sequence" the
// paper's Viewer renders for assessment.
type Truth struct {
	Records   *position.Sequence
	Semantics *semantics.Sequence
}

// Sim simulates shoppers over a frozen venue model.
type Sim struct {
	Model *dsm.Model
	rng   *rand.Rand

	// WalkSpeed is the agent speed in m/s (default 1.3).
	WalkSpeed float64
	// TruthPeriod is the sampling period of the ground-truth trace
	// (default 1 s).
	TruthPeriod time.Duration
	// MinStayForTruth is the dwell threshold distinguishing stay from
	// pass-by in the true semantics (default 90 s).
	MinStayForTruth time.Duration
}

// NewSim creates a simulator with the given deterministic seed.
func NewSim(m *dsm.Model, seed int64) *Sim {
	return &Sim{
		Model:           m,
		rng:             rand.New(rand.NewSource(seed)),
		WalkSpeed:       1.3,
		TruthPeriod:     time.Second,
		MinStayForTruth: 90 * time.Second,
	}
}

// RandomItinerary draws n visits over the shop regions with Zipf-like
// popularity (earlier shops are more popular, making the learned mobility
// knowledge informative) and dwell times between 2 and 15 minutes.
func (s *Sim) RandomItinerary(n int) []Visit {
	shops := ShopRegions(s.Model)
	if len(shops) == 0 || n <= 0 {
		return nil
	}
	// Zipf weights 1/(rank+1).
	weights := make([]float64, len(shops))
	var total float64
	for i := range shops {
		weights[i] = 1 / float64(i+2)
		total += weights[i]
	}
	visits := make([]Visit, 0, n)
	last := -1
	for len(visits) < n {
		x := s.rng.Float64() * total
		idx := 0
		for i, w := range weights {
			if x < w {
				idx = i
				break
			}
			x -= w
		}
		if idx == last {
			continue // no self-transitions
		}
		last = idx
		stay := 2*time.Minute + time.Duration(s.rng.Float64()*13*float64(time.Minute))
		visits = append(visits, Visit{Region: shops[idx].ID, Stay: stay})
	}
	return visits
}

// SimulateVisit produces a device's ground truth for an itinerary starting
// at the given time: the agent spawns at the first region, dwells, walks
// the DSM shortest path to the next region at WalkSpeed, and so on.
func (s *Sim) SimulateVisit(dev position.DeviceID, start time.Time, visits []Visit) (Truth, error) {
	truth := Truth{
		Records:   position.NewSequence(dev),
		Semantics: semantics.NewSequence(string(dev)),
	}
	if len(visits) == 0 {
		return truth, nil
	}
	now := start
	var nextAnchor *geom.Point // set by the preceding walk's arrival point
	for i, v := range visits {
		reg := s.Model.Region(v.Region)
		if reg == nil {
			return truth, fmt.Errorf("simul: unknown region %q", v.Region)
		}
		anchor := s.dwellPoint(reg)
		if nextAnchor != nil {
			anchor = *nextAnchor
		}
		// Dwell: a slow bounded random walk around the anchor — a browsing
		// shopper drifts, but never teleports.
		dwellEnd := now.Add(v.Stay)
		cur := anchor
		for t := now; t.Before(dwellEnd); t = t.Add(s.TruthPeriod) {
			truth.Records.Append(position.Record{Device: dev, P: cur, Floor: reg.Floor, At: t})
			next := s.jitterInside(reg, cur, 0.3)
			if next.Dist(anchor) > 3 {
				next = cur.Lerp(anchor, 0.3) // drift back toward the anchor
			}
			cur = next
		}
		truth.Semantics.Append(semantics.Triplet{
			Event: semantics.EventStay, Region: reg.Tag, RegionID: reg.ID,
			From: now, To: dwellEnd,
			Display: anchor, Floor: reg.Floor, Confidence: 1,
			FirstIdx: -1, LastIdx: -1,
		})
		now = dwellEnd

		// Walk to the next region; the arrival point anchors the next dwell.
		if i+1 < len(visits) {
			next := s.Model.Region(visits[i+1].Region)
			if next == nil {
				return truth, fmt.Errorf("simul: unknown region %q", visits[i+1].Region)
			}
			var arrived geom.Point
			var err error
			now, arrived, err = s.walk(&truth, dev, cur, reg, next, now)
			if err != nil {
				return truth, err
			}
			nextAnchor = &arrived
		}
	}
	return truth, nil
}

// dwellPoint picks a stable point inside the region to dwell around,
// preferring points with clearance from the region boundary — shoppers
// browse the interior, and anchors hugging a wall would not be where a
// person stands.
func (s *Sim) dwellPoint(reg *dsm.SemanticRegion) geom.Point {
	b := reg.Shape.Bounds()
	clearance := 2.0
	if m := math.Min(b.Width(), b.Height()) / 4; m < clearance {
		clearance = m
	}
	for tries := 0; tries < 48; tries++ {
		p := geom.Pt(
			b.Min.X+s.rng.Float64()*b.Width(),
			b.Min.Y+s.rng.Float64()*b.Height(),
		)
		if !reg.Shape.Contains(p) || s.Model.Locate(p, reg.Floor) == nil {
			continue
		}
		if tries < 32 && p.Dist(reg.Shape.ClosestBoundaryPoint(p)) < clearance {
			continue // first pass insists on interior clearance
		}
		return p
	}
	return reg.Center()
}

// jitterInside returns anchor plus bounded Gaussian jitter, kept inside the
// region.
func (s *Sim) jitterInside(reg *dsm.SemanticRegion, anchor geom.Point, sigma float64) geom.Point {
	for tries := 0; tries < 8; tries++ {
		p := geom.Pt(anchor.X+s.rng.NormFloat64()*sigma, anchor.Y+s.rng.NormFloat64()*sigma)
		if reg.Shape.Contains(p) {
			return p
		}
	}
	return anchor
}

// walk moves the agent from `from` in region a to a dwell point in region b
// along the DSM walking path, appending truth records and pass-by semantics
// for regions traversed on the way. It returns the arrival time and point.
func (s *Sim) walk(truth *Truth, dev position.DeviceID, from geom.Point, a, b *dsm.SemanticRegion, now time.Time) (time.Time, geom.Point, error) {
	target := s.dwellPoint(b)
	path := s.Model.WalkingPath(
		dsm.Location{P: from, Floor: a.Floor},
		dsm.Location{P: target, Floor: b.Floor},
	)
	if path == nil {
		return now, from, fmt.Errorf("simul: no path %s → %s", a.ID, b.ID)
	}
	// Sample the path at WalkSpeed every TruthPeriod.
	type sample struct {
		p geom.Point
		f dsm.FloorID
	}
	var samples []sample
	for leg := 1; leg < len(path); leg++ {
		p0, p1 := path[leg-1], path[leg]
		planar := p0.P.Dist(p1.P)
		legLen := planar
		if p0.Floor != p1.Floor {
			// Vertical leg: time is priced by the shaft length.
			legLen = s.Model.FloorHeight * 3 * math.Abs(float64(p1.Floor-p0.Floor))
		}
		steps := int(legLen/(s.WalkSpeed*s.TruthPeriod.Seconds())) + 1
		for i := 1; i <= steps; i++ {
			t := float64(i) / float64(steps)
			f := p0.Floor
			if t > 0.5 {
				f = p1.Floor
			}
			p := p0.P.Lerp(p1.P, t)
			// Path legs connect door centers, which sit inside wall bands;
			// a real walker swings into the adjoining partition. Snap.
			if sp, _, ok := s.Model.SnapToWalkable(p, f); ok {
				p = sp
			}
			samples = append(samples, sample{p, f})
		}
	}
	// Emit records and track region traversal for true pass-by semantics.
	var curRegion *dsm.SemanticRegion
	var curStart time.Time
	flush := func(end time.Time) {
		if curRegion == nil {
			return
		}
		// Only regions distinct from the endpoints are pass-bys.
		if curRegion.ID != a.ID && curRegion.ID != b.ID && end.Sub(curStart) >= 2*s.TruthPeriod {
			truth.Semantics.Append(semantics.Triplet{
				Event: semantics.EventPassBy, Region: curRegion.Tag, RegionID: curRegion.ID,
				From: curStart, To: end,
				Display: curRegion.Center(), Floor: curRegion.Floor, Confidence: 1,
				FirstIdx: -1, LastIdx: -1,
			})
		}
		curRegion = nil
	}
	arrived := target
	for _, sp := range samples {
		now = now.Add(s.TruthPeriod)
		truth.Records.Append(position.Record{Device: dev, P: sp.p, Floor: sp.f, At: now})
		arrived = sp.p
		reg := s.Model.RegionAt(sp.p, sp.f)
		switch {
		case reg == nil:
			flush(now)
		case curRegion == nil || reg.ID != curRegion.ID:
			flush(now)
			curRegion, curStart = reg, now
		}
	}
	flush(now)
	return now, arrived, nil
}

// ErrorModel degrades ground truth into raw positioning records with Wi-Fi
// error characteristics. All rates are per-record unless stated.
type ErrorModel struct {
	// NoiseSigma is the planar Gaussian noise in meters (default 2.5).
	NoiseSigma float64
	// OutlierProb replaces a record with a uniform point on the floor.
	OutlierProb float64
	// FloorErrProb shifts a record's floor by ±1 (clamped to the venue).
	FloorErrProb float64
	// MinPeriod and MaxPeriod bound the jittered sampling period.
	MinPeriod, MaxPeriod time.Duration
	// DropoutProb is the chance, evaluated once per emitted record, of
	// entering a dropout lasting DropoutMin..DropoutMax.
	DropoutProb            float64
	DropoutMin, DropoutMax time.Duration
}

// DefaultErrorModel matches the DESIGN.md error-model defaults.
func DefaultErrorModel() ErrorModel {
	return ErrorModel{
		NoiseSigma:   2.5,
		OutlierProb:  0.05,
		FloorErrProb: 0.03,
		MinPeriod:    3 * time.Second,
		MaxPeriod:    10 * time.Second,
		DropoutProb:  0.006,
		DropoutMin:   time.Minute,
		DropoutMax:   6 * time.Minute,
	}
}

// Observe samples the truth through the error model, producing the raw
// positioning sequence a Wi-Fi system would report.
func (s *Sim) Observe(truth Truth, em ErrorModel) *position.Sequence {
	raw := position.NewSequence(truth.Records.Device)
	if truth.Records.Empty() {
		return raw
	}
	if em.MinPeriod <= 0 {
		em.MinPeriod = 3 * time.Second
	}
	if em.MaxPeriod < em.MinPeriod {
		em.MaxPeriod = em.MinPeriod
	}
	floors := s.Model.Floors()
	start, end := truth.Records.Start(), truth.Records.End()
	for t := start; !t.After(end); {
		// Dropout?
		if em.DropoutProb > 0 && s.rng.Float64() < em.DropoutProb {
			d := em.DropoutMin + time.Duration(s.rng.Float64()*float64(em.DropoutMax-em.DropoutMin))
			t = t.Add(d)
			continue
		}
		tr := truthAt(truth.Records, t)
		r := position.Record{Device: raw.Device, At: t, Floor: tr.Floor}
		switch {
		case em.OutlierProb > 0 && s.rng.Float64() < em.OutlierProb:
			b := s.Model.FloorBounds(tr.Floor)
			r.P = geom.Pt(b.Min.X+s.rng.Float64()*b.Width(), b.Min.Y+s.rng.Float64()*b.Height())
		default:
			r.P = geom.Pt(tr.P.X+s.rng.NormFloat64()*em.NoiseSigma, tr.P.Y+s.rng.NormFloat64()*em.NoiseSigma)
		}
		if em.FloorErrProb > 0 && s.rng.Float64() < em.FloorErrProb && len(floors) > 1 {
			shift := dsm.FloorID(1)
			if s.rng.Float64() < 0.5 {
				shift = -1
			}
			nf := r.Floor + shift
			if nf < floors[0] {
				nf = r.Floor + 1
			}
			if nf > floors[len(floors)-1] {
				nf = r.Floor - 1
			}
			r.Floor = nf
		}
		raw.Append(r)
		period := em.MinPeriod + time.Duration(s.rng.Float64()*float64(em.MaxPeriod-em.MinPeriod))
		t = t.Add(period)
	}
	return raw
}

// truthAt returns the truth record nearest in time to t (binary search over
// the 1 Hz trace).
func truthAt(s *position.Sequence, t time.Time) position.Record {
	recs := s.Records
	lo, hi := 0, len(recs)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if recs[mid].At.Before(t) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo > 0 && t.Sub(recs[lo-1].At) < recs[lo].At.Sub(t) {
		return recs[lo-1]
	}
	return recs[lo]
}

// Population generates a full synthetic dataset: count devices, each with a
// random itinerary of 3–6 visits starting at a random moment within the
// window. It returns the raw dataset and the per-device truth.
func (s *Sim) Population(count int, windowStart time.Time, window time.Duration, em ErrorModel) (*position.Dataset, map[position.DeviceID]Truth, error) {
	ds := position.NewDataset()
	truths := make(map[position.DeviceID]Truth, count)
	for i := 0; i < count; i++ {
		dev := position.DeviceID(fmt.Sprintf("3a.%02x.%02d", s.rng.Intn(256), i))
		start := windowStart.Add(time.Duration(s.rng.Float64() * float64(window)))
		visits := s.RandomItinerary(3 + s.rng.Intn(4))
		truth, err := s.SimulateVisit(dev, start, visits)
		if err != nil {
			return nil, nil, err
		}
		truths[dev] = truth
		ds.AddSequence(s.Observe(truth, em))
	}
	return ds, truths, nil
}

// EventSegments groups one event's labeled training segments.
type EventSegments struct {
	Event    semantics.Event
	Segments [][]position.Record
}

// TrainingSegments converts the truth of a population into labeled event
// segments usable as Event Editor training data: for each true triplet, the
// covered raw records become a designated segment (mirroring an analyst
// designating segments on the map view against known behavior).
//
// Devices are visited in sorted order and the result is sorted by event, so
// both which segments fill the perEvent quota and the order they reach the
// Event Editor (and from there events.json and the trained model) are
// deterministic. An earlier version ranged the truths map directly: with
// more candidate triplets than perEvent, the training set itself depended on
// map iteration order — the same bug class as PR 1's refineByRegion vote.
func TrainingSegments(raw *position.Dataset, truths map[position.DeviceID]Truth, perEvent int) []EventSegments {
	devs := make([]position.DeviceID, 0, len(truths))
	//trips:commutative key collection; iteration order is erased by the sort below
	for dev := range truths {
		devs = append(devs, dev)
	}
	sort.Slice(devs, func(i, j int) bool { return devs[i] < devs[j] })

	byEvent := make(map[semantics.Event][][]position.Record)
	for _, dev := range devs {
		seq := raw.Sequence(dev)
		if seq == nil {
			continue
		}
		for _, tr := range truths[dev].Semantics.Triplets {
			if len(byEvent[tr.Event]) >= perEvent {
				continue
			}
			w := seq.TimeWindow(tr.From, tr.To)
			if w.Len() < 4 {
				continue
			}
			cp := make([]position.Record, w.Len())
			copy(cp, w.Records)
			byEvent[tr.Event] = append(byEvent[tr.Event], cp)
		}
	}

	events := make([]semantics.Event, 0, len(byEvent))
	//trips:commutative key collection; iteration order is erased by the sort below
	for ev := range byEvent {
		events = append(events, ev)
	}
	sort.Slice(events, func(i, j int) bool { return events[i] < events[j] })
	out := make([]EventSegments, 0, len(events))
	for _, ev := range events {
		out = append(out, EventSegments{Event: ev, Segments: byEvent[ev]})
	}
	return out
}
