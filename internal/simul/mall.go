// Package simul synthesizes the experimental substrate the paper's demo
// uses but does not publish: a multi-floor shopping-mall venue and a Wi-Fi
// indoor positioning feed over it.
//
// The paper evaluates on "a dataset obtained from a Wi-Fi based positioning
// system in a 7-floor shopping mall in Hangzhou" — proprietary data. This
// package generates the closest synthetic equivalent: a configurable mall
// DSM, ground-truth shopper trajectories that walk the mall's topology, and
// an error model that degrades the truth into raw positioning records with
// the error characteristics of Wi-Fi positioning (Gaussian planar noise,
// floor misreads, outliers, sampling jitter, dropouts). Ground truth is
// retained so experiments can score the translation quantitatively.
package simul

import (
	"fmt"

	"trips/internal/dsm"
	"trips/internal/geom"
)

// shopNames label the generated shop regions; the first few echo the
// paper's running example. Names cycle with a floor suffix when a mall has
// more shops than names.
var shopNames = []string{
	"Adidas", "Nike", "Cashier", "Uniqlo", "Starbucks", "Lego",
	"Sephora", "Muji", "Zara", "Apple", "H&M", "Watsons",
	"BookCity", "KFC", "Pandora", "Swatch",
}

// shopCategories cycle over the generated shops.
var shopCategories = []string{"shop", "shop", "service", "shop", "restaurant", "shop"}

// MallSpec configures the generated venue.
type MallSpec struct {
	// Floors is the number of storeys (the paper's mall has 7).
	Floors int
	// ShopsPerFloor is the number of shops in the row above the hallway.
	ShopsPerFloor int
	// ShopWidth and ShopDepth size each shop in meters.
	ShopWidth, ShopDepth float64
	// HallDepth is the hallway depth in meters.
	HallDepth float64
}

// DefaultMallSpec mirrors the scale of the paper's venue: 7 floors, 8 shops
// per floor.
func DefaultMallSpec() MallSpec {
	return MallSpec{Floors: 7, ShopsPerFloor: 8, ShopWidth: 10, ShopDepth: 10, HallDepth: 12}
}

// BuildMall generates a frozen mall DSM: per floor a hallway, a row of
// shops behind a wall with one door each, staircases at both hallway ends
// and an elevator in the middle, plus semantic regions for every shop and
// hall.
func BuildMall(spec MallSpec) (*dsm.Model, error) {
	if spec.Floors <= 0 || spec.ShopsPerFloor <= 0 {
		return nil, fmt.Errorf("simul: bad mall spec %+v", spec)
	}
	if spec.ShopWidth <= 0 {
		spec.ShopWidth = 10
	}
	if spec.ShopDepth <= 0 {
		spec.ShopDepth = 10
	}
	if spec.HallDepth <= 0 {
		spec.HallDepth = 12
	}

	m := dsm.New("synthetic-mall")
	width := float64(spec.ShopsPerFloor) * spec.ShopWidth
	wallY0 := spec.HallDepth
	wallY1 := spec.HallDepth + 0.4

	rect := func(x0, y0, x1, y1 float64) geom.Polygon {
		return geom.NewRect(geom.Pt(x0, y0), geom.Pt(x1, y1)).ToPolygon()
	}

	nameIdx := 0
	for f := 1; f <= spec.Floors; f++ {
		fid := dsm.FloorID(f)
		hallID := dsm.EntityID(fmt.Sprintf("H%d", f))
		m.AddEntity(&dsm.Entity{
			ID: hallID, Kind: dsm.KindHallway, Floor: fid,
			Name:  fmt.Sprintf("Hall %s", fid),
			Shape: rect(0, 0, width, spec.HallDepth),
		})
		m.AddEntity(&dsm.Entity{
			ID: dsm.EntityID(fmt.Sprintf("W%d", f)), Kind: dsm.KindWall, Floor: fid,
			Name:  fmt.Sprintf("shop wall %s", fid),
			Shape: rect(0, wallY0, width, wallY1),
		})
		for i := 0; i < spec.ShopsPerFloor; i++ {
			x0 := float64(i) * spec.ShopWidth
			x1 := x0 + spec.ShopWidth
			shopID := dsm.EntityID(fmt.Sprintf("S%d-%d", f, i))
			name := shopNames[nameIdx%len(shopNames)]
			if nameIdx >= len(shopNames) {
				name = fmt.Sprintf("%s %s", name, fid)
			}
			cat := shopCategories[i%len(shopCategories)]
			nameIdx++
			m.AddEntity(&dsm.Entity{
				ID: shopID, Kind: dsm.KindRoom, Floor: fid, Name: name,
				Shape: rect(x0, wallY1, x1, wallY1+spec.ShopDepth),
			})
			doorX := x0 + spec.ShopWidth/2 - 1
			m.AddEntity(&dsm.Entity{
				ID:   dsm.EntityID(fmt.Sprintf("D%d-%d", f, i)),
				Kind: dsm.KindDoor, Floor: fid,
				Name:  fmt.Sprintf("door %s", shopID),
				Shape: rect(doorX, wallY0, doorX+2, wallY1),
			})
			m.AddRegion(&dsm.SemanticRegion{
				ID:  dsm.RegionID(fmt.Sprintf("rg-%s-%d", shopID, f)),
				Tag: name, Category: cat, Floor: fid,
				Shape:    rect(x0, wallY1, x1, wallY1+spec.ShopDepth),
				Entities: []dsm.EntityID{shopID},
			})
		}
		// Vertical connectors: stairs at both ends, elevator mid-hall.
		m.AddEntity(&dsm.Entity{
			ID: dsm.EntityID(fmt.Sprintf("ST-A-%d", f)), Kind: dsm.KindStaircase,
			Floor: fid, Name: "Stairs A", VerticalGroup: "stairs-a",
			Shape: rect(0, 0, 4, 4),
		})
		m.AddEntity(&dsm.Entity{
			ID: dsm.EntityID(fmt.Sprintf("ST-B-%d", f)), Kind: dsm.KindStaircase,
			Floor: fid, Name: "Stairs B", VerticalGroup: "stairs-b",
			Shape: rect(width-4, 0, width, 4),
		})
		m.AddEntity(&dsm.Entity{
			ID: dsm.EntityID(fmt.Sprintf("EL-%d", f)), Kind: dsm.KindElevator,
			Floor: fid, Name: "Elevator", VerticalGroup: "elevator-1",
			Shape: rect(width/2-2, 0, width/2+2, 3),
		})
		// Hall region; the ground floor hall echoes the paper's
		// "Center Hall". The vertical shafts open into the hall, so the
		// hall region covers them — that is what links hall regions of
		// consecutive floors in the region-adjacency graph.
		hallTag := fmt.Sprintf("Hall %s", fid)
		if f == 1 {
			hallTag = "Center Hall"
		}
		m.AddRegion(&dsm.SemanticRegion{
			ID:  dsm.RegionID(fmt.Sprintf("rg-hall-%d", f)),
			Tag: hallTag, Category: "hall", Floor: fid,
			Shape: rect(0, 0, width, spec.HallDepth),
			Entities: []dsm.EntityID{
				hallID,
				dsm.EntityID(fmt.Sprintf("ST-A-%d", f)),
				dsm.EntityID(fmt.Sprintf("ST-B-%d", f)),
				dsm.EntityID(fmt.Sprintf("EL-%d", f)),
			},
		})
	}
	if err := m.Freeze(); err != nil {
		return nil, fmt.Errorf("simul: freeze mall: %w", err)
	}
	return m, nil
}

// ShopRegions returns the shop/service/restaurant regions of the model (the
// itinerary candidates), in deterministic order.
func ShopRegions(m *dsm.Model) []*dsm.SemanticRegion {
	var out []*dsm.SemanticRegion
	for _, f := range m.Floors() {
		for _, r := range m.RegionsOnFloor(f) {
			if r.Category != "hall" {
				out = append(out, r)
			}
		}
	}
	return out
}
