package simul

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"trips/internal/dsm"
	"trips/internal/position"
	"trips/internal/semantics"
)

var t0 = time.Date(2017, 1, 2, 10, 0, 0, 0, time.UTC)

func mall(t testing.TB, floors, shops int) *dsm.Model {
	t.Helper()
	m, err := BuildMall(MallSpec{Floors: floors, ShopsPerFloor: shops})
	if err != nil {
		t.Fatalf("BuildMall: %v", err)
	}
	return m
}

func TestBuildMallStructure(t *testing.T) {
	m := mall(t, 7, 8)
	if got := len(m.Floors()); got != 7 {
		t.Fatalf("floors = %d", got)
	}
	// Per floor: hall + wall + 8 shops + 8 doors + 2 stairs + 1 elevator.
	if got, want := len(m.Entities), 7*(1+1+8+8+2+1); got != want {
		t.Errorf("entities = %d, want %d", got, want)
	}
	// Regions: per floor 8 shops + 1 hall.
	if got, want := len(m.Regions), 7*9; got != want {
		t.Errorf("regions = %d, want %d", got, want)
	}
	// Paper names present on the ground floor.
	for _, tag := range []string{"Adidas", "Nike", "Cashier", "Center Hall"} {
		if m.RegionByTag(tag) == nil {
			t.Errorf("region %q missing", tag)
		}
	}
	// Full vertical connectivity: ground-floor hall to top-floor hall.
	top := dsm.FloorID(7)
	if !m.Reachable(
		dsm.Location{P: m.RegionByTag("Center Hall").Center(), Floor: 1},
		dsm.Location{P: m.RegionsOnFloor(top)[0].Center(), Floor: top},
	) {
		t.Error("mall floors not connected")
	}
}

func TestBuildMallRejectsBadSpec(t *testing.T) {
	if _, err := BuildMall(MallSpec{Floors: 0, ShopsPerFloor: 8}); err == nil {
		t.Error("zero floors accepted")
	}
	if _, err := BuildMall(MallSpec{Floors: 1, ShopsPerFloor: 0}); err == nil {
		t.Error("zero shops accepted")
	}
}

func TestShopRegionsExcludeHalls(t *testing.T) {
	m := mall(t, 2, 4)
	shops := ShopRegions(m)
	if len(shops) != 8 {
		t.Fatalf("shops = %d", len(shops))
	}
	for _, r := range shops {
		if r.Category == "hall" {
			t.Errorf("hall region %s in shop list", r.ID)
		}
	}
}

func TestRandomItinerary(t *testing.T) {
	m := mall(t, 2, 4)
	s := NewSim(m, 1)
	visits := s.RandomItinerary(5)
	if len(visits) != 5 {
		t.Fatalf("visits = %d", len(visits))
	}
	for i, v := range visits {
		if m.Region(v.Region) == nil {
			t.Errorf("visit %d region %q unknown", i, v.Region)
		}
		if v.Stay < 2*time.Minute || v.Stay > 15*time.Minute {
			t.Errorf("visit %d stay %v out of range", i, v.Stay)
		}
		if i > 0 && visits[i-1].Region == v.Region {
			t.Errorf("self-transition at %d", i)
		}
	}
	if got := s.RandomItinerary(0); got != nil {
		t.Error("zero-visit itinerary should be nil")
	}
}

func TestSimulateVisitTruth(t *testing.T) {
	m := mall(t, 2, 4)
	s := NewSim(m, 2)
	shops := ShopRegions(m)
	visits := []Visit{
		{Region: shops[0].ID, Stay: 3 * time.Minute},
		{Region: shops[2].ID, Stay: 2 * time.Minute},
	}
	truth, err := s.SimulateVisit("dev", t0, visits)
	if err != nil {
		t.Fatalf("SimulateVisit: %v", err)
	}
	if truth.Records.Empty() {
		t.Fatal("no truth records")
	}
	// The true semantics contain the two stays, in order.
	var stays []semantics.Triplet
	for _, tr := range truth.Semantics.Triplets {
		if tr.Event == semantics.EventStay {
			stays = append(stays, tr)
		}
	}
	if len(stays) != 2 {
		t.Fatalf("stays = %d (%v)", len(stays), truth.Semantics)
	}
	if stays[0].RegionID != shops[0].ID || stays[1].RegionID != shops[2].ID {
		t.Errorf("stay regions = %s, %s", stays[0].RegionID, stays[1].RegionID)
	}
	if d := stays[0].Duration(); d != 3*time.Minute {
		t.Errorf("first stay duration = %v", d)
	}
	// The walk between two shops on one floor passes the hall.
	foundHallPass := false
	for _, tr := range truth.Semantics.Triplets {
		if tr.Event == semantics.EventPassBy && tr.Region == "Center Hall" {
			foundHallPass = true
		}
	}
	if !foundHallPass {
		t.Error("no hall pass-by in truth semantics")
	}
	// Truth records move at walking speed: no consecutive jump over 3 m.
	recs := truth.Records.Records
	for i := 1; i < len(recs); i++ {
		if recs[i-1].Floor == recs[i].Floor {
			if d := recs[i-1].P.Dist(recs[i].P); d > 3 {
				t.Errorf("truth jump of %.1f m at %d", d, i)
			}
		}
	}
	// All truth records are in walkable space.
	for i, r := range recs {
		if m.Locate(r.P, r.Floor) == nil {
			t.Errorf("truth record %d at %v floor %v unwalkable", i, r.P, r.Floor)
		}
	}
}

func TestSimulateVisitCrossFloor(t *testing.T) {
	m := mall(t, 3, 4)
	s := NewSim(m, 3)
	shops := ShopRegions(m)
	var floor1, floor3 *dsm.SemanticRegion
	for _, r := range shops {
		if r.Floor == 1 && floor1 == nil {
			floor1 = r
		}
		if r.Floor == 3 && floor3 == nil {
			floor3 = r
		}
	}
	truth, err := s.SimulateVisit("dev", t0, []Visit{
		{Region: floor1.ID, Stay: 2 * time.Minute},
		{Region: floor3.ID, Stay: 2 * time.Minute},
	})
	if err != nil {
		t.Fatalf("SimulateVisit: %v", err)
	}
	floors := truth.Records.Floors()
	if len(floors) < 2 {
		t.Errorf("cross-floor truth visits floors %v", floors)
	}
	if truth.Records.Start().Before(t0) {
		t.Error("truth starts before itinerary start")
	}
}

func TestSimulateVisitUnknownRegion(t *testing.T) {
	m := mall(t, 1, 2)
	s := NewSim(m, 4)
	if _, err := s.SimulateVisit("dev", t0, []Visit{{Region: "nope", Stay: time.Minute}}); err == nil {
		t.Error("unknown region accepted")
	}
}

func TestObserveErrorModel(t *testing.T) {
	m := mall(t, 2, 4)
	s := NewSim(m, 5)
	shops := ShopRegions(m)
	truth, err := s.SimulateVisit("dev", t0, []Visit{
		{Region: shops[0].ID, Stay: 5 * time.Minute},
		{Region: shops[1].ID, Stay: 5 * time.Minute},
	})
	if err != nil {
		t.Fatal(err)
	}
	em := DefaultErrorModel()
	raw := s.Observe(truth, em)
	if raw.Empty() {
		t.Fatal("no raw records")
	}
	// The raw sequence is sparser than the 1 Hz truth.
	if raw.Len() >= truth.Records.Len() {
		t.Errorf("raw %d records vs truth %d", raw.Len(), truth.Records.Len())
	}
	// Period bounds respected outside dropouts.
	if mp := raw.MeanPeriod(); mp < em.MinPeriod {
		t.Errorf("mean period %v below min", mp)
	}
	// Noise present: most raw points differ from the nearest truth point.
	moved := 0
	for _, r := range raw.Records {
		tr := truthAt(truth.Records, r.At)
		if r.P.Dist(tr.P) > 0.2 {
			moved++
		}
	}
	if moved < raw.Len()/2 {
		t.Errorf("only %d/%d raw records show noise", moved, raw.Len())
	}
	// Deterministic with the same seed.
	s2 := NewSim(m, 5)
	truth2, _ := s2.SimulateVisit("dev", t0, []Visit{
		{Region: shops[0].ID, Stay: 5 * time.Minute},
		{Region: shops[1].ID, Stay: 5 * time.Minute},
	})
	raw2 := s2.Observe(truth2, em)
	if raw2.Len() != raw.Len() {
		t.Errorf("same seed, different raw lengths: %d vs %d", raw2.Len(), raw.Len())
	}
}

func TestObserveFloorErrors(t *testing.T) {
	m := mall(t, 3, 4)
	s := NewSim(m, 6)
	shops := ShopRegions(m)
	truth, err := s.SimulateVisit("dev", t0, []Visit{{Region: shops[0].ID, Stay: 20 * time.Minute}})
	if err != nil {
		t.Fatal(err)
	}
	em := ErrorModel{NoiseSigma: 0.5, FloorErrProb: 0.2, MinPeriod: 3 * time.Second, MaxPeriod: 3 * time.Second}
	raw := s.Observe(truth, em)
	wrong := 0
	for _, r := range raw.Records {
		if r.Floor != 1 {
			wrong++
			if r.Floor < 1 || r.Floor > 3 {
				t.Errorf("floor error out of venue: %v", r.Floor)
			}
		}
	}
	if wrong == 0 {
		t.Error("no floor errors injected at 20% rate")
	}
}

func TestPopulationAndTrainingSegments(t *testing.T) {
	m := mall(t, 2, 4)
	s := NewSim(m, 7)
	ds, truths, err := s.Population(5, t0, 2*time.Hour, DefaultErrorModel())
	if err != nil {
		t.Fatalf("Population: %v", err)
	}
	if ds.NumDevices() != 5 || len(truths) != 5 {
		t.Fatalf("population = %d devices, %d truths", ds.NumDevices(), len(truths))
	}
	for dev, truth := range truths {
		if ds.Sequence(dev) == nil {
			t.Errorf("device %s has truth but no raw data", dev)
		}
		if truth.Semantics.Len() == 0 {
			t.Errorf("device %s has empty true semantics", dev)
		}
	}
	segs := TrainingSegments(ds, truths, 10)
	stays := 0
	for _, es := range segs {
		if es.Event == semantics.EventStay {
			stays = len(es.Segments)
		}
		if len(es.Segments) > 10 {
			t.Errorf("%s: %d segments exceeds perEvent", es.Event, len(es.Segments))
		}
		for _, recs := range es.Segments {
			if len(recs) < 4 {
				t.Errorf("%s: undersized segment", es.Event)
			}
		}
	}
	if stays == 0 {
		t.Error("no stay training segments")
	}
}

func TestTruthAt(t *testing.T) {
	s := position.NewSequence("d")
	for i := 0; i < 10; i++ {
		s.Append(position.Record{Device: "d", P: position.Record{}.P.Add(position.Record{}.P), Floor: 1,
			At: t0.Add(time.Duration(i) * time.Second)})
	}
	r := truthAt(s, t0.Add(3500*time.Millisecond))
	if want := t0.Add(4 * time.Second); !r.At.Equal(want) && !r.At.Equal(t0.Add(3*time.Second)) {
		t.Errorf("truthAt = %v", r.At)
	}
	// Before start and after end clamp.
	if r := truthAt(s, t0.Add(-time.Hour)); !r.At.Equal(t0) {
		t.Errorf("before-start = %v", r.At)
	}
	if r := truthAt(s, t0.Add(time.Hour)); !r.At.Equal(t0.Add(9 * time.Second)) {
		t.Errorf("after-end = %v", r.At)
	}
}

// TrainingSegments draws a per-event quota from a map of device truths;
// before the selection was forced through sorted device order, which
// devices filled the quota — and the order of the returned events —
// depended on map iteration, so two runs over the same population could
// train on different segments. Regression: repeated calls must agree
// byte-for-byte, and the events must come back sorted.
func TestTrainingSegmentsDeterministic(t *testing.T) {
	m := mall(t, 2, 4)
	s := NewSim(m, 7)
	raw, truths, err := s.Population(10, t0, 2*time.Hour, DefaultErrorModel())
	if err != nil {
		t.Fatalf("Population: %v", err)
	}
	// A tight quota forces the selection to actually drop candidates, the
	// regime where the old map-order bug changed the chosen set.
	first := TrainingSegments(raw, truths, 3)
	if len(first) == 0 {
		t.Fatal("no training segments")
	}
	for i := 1; i < len(first); i++ {
		if first[i-1].Event >= first[i].Event {
			t.Fatalf("events out of order: %s before %s", first[i-1].Event, first[i].Event)
		}
	}
	a, err := json.Marshal(first)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	for run := 0; run < 5; run++ {
		b, err := json.Marshal(TrainingSegments(raw, truths, 3))
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		if !bytes.Equal(a, b) {
			t.Fatalf("run %d selected different training segments", run+1)
		}
	}
}
