package online

import (
	"sort"
	"time"

	"trips/internal/annotation"
	"trips/internal/cleaning"
	"trips/internal/obs/trace"
	"trips/internal/position"
	"trips/internal/semantics"
)

// session is the per-device state machine: the raw record tail still under
// translation, the emission frontier into that tail, and the last emitted
// triplet for gap complementing.
type session struct {
	dev  position.DeviceID
	tail *position.Sequence

	// base counts the records trimmed or finalized away before tail[0];
	// emitted triplet indexes are offset by it so they keep matching the
	// batch Translator's.
	base int

	// emittedInTail is how many leading triplets of the tail's current
	// annotation have already been emitted.
	emittedInTail int

	// seq is the per-device emission counter.
	seq int

	// last is the most recently emitted triplet (for gap complementing);
	// valid when hasLast.
	last    semantics.Triplet
	hasLast bool

	// lastKnow is the most recently emitted region-carrying triplet —
	// the knowledge-aggregation predecessor. Tracked separately from
	// last because BuildKnowledge skips region-less triplets without
	// resetting its predecessor, and the online aggregation must count
	// the same transitions.
	lastKnow    semantics.Triplet
	hasLastKnow bool

	// sealedThrough is the To of the last sealed triplet: the point of no
	// return. Records at or before sealedThrough+horizon are late.
	sealedThrough time.Time

	// frozenThrough is the To of the latest unsealed triplet whose frozen
	// membership a seal decision relied on; records at or before
	// frozenThrough+freezeGap are late (they could re-open that
	// membership).
	frozenThrough time.Time

	// pending counts records ingested since the last flush.
	pending int

	// lastArrival is the wall-clock time of the last ingested record,
	// for the idle timeout.
	lastArrival time.Time

	// firstPending is the wall-clock arrival of the oldest record ingested
	// since the last flush; zero while nothing is pending. It feeds the
	// freshness metric without per-record bookkeeping: one IsZero check per
	// ingest, reusing the clock read lastArrival already pays for.
	firstPending time.Time

	// emitArrival stamps Emission.ArrivedAt for every triplet emitted by
	// the current flush: the firstPending value swapped in when the flush
	// started. Downstream sinks turn it into ingest→visible latency.
	emitArrival time.Time

	// trace is the sampled trace context adopted by this session (the first
	// traced request whose record was admitted while no trace was active).
	// The flush that seals commits the trace's stage spans and clears it;
	// non-sealing flushes keep it so the spans land on the flush that
	// actually finalized the request's data. Zero when untraced.
	trace trace.Ctx

	// dropSpan remembers the root span of the last traced request that had
	// a record dropped, deduplicating drop spans per request.
	dropSpan trace.SpanID

	// emitTC is the trace context emissions carry during a flush (the seal
	// span's context, so downstream warehouse/analytics spans nest under
	// it); zero outside a traced flush.
	emitTC trace.Ctx

	// lastFlush* hold the stage breakdown of the most recent instrumented
	// flush, served by Engine.Lineage. Populated only when stage timing ran
	// (engine Metrics configured or the session traced).
	lastFlushAt  time.Time
	lastClean    time.Duration
	lastAnnotate time.Duration
	lastSeal     time.Duration
	lastSealed   int

	// clean and ann are the incremental recompute caches: the cleaning
	// layer's stable-prefix state and the annotator's staged caches. They
	// make flush cost proportional to the tail's unstable suffix instead
	// of the whole tail, and they reset whenever the tail epoch changes
	// (trim, force-seal, seal-all) — the trimmed suffix recomputes from
	// scratch once and caches from there.
	clean cleaning.State
	ann   *annotation.Incremental
}

func newSession(dev position.DeviceID) *session {
	return &session{dev: dev, tail: position.NewSequence(dev)}
}

// admit is the outcome of a session ingest attempt.
type admit uint8

const (
	admitOK admit = iota
	admitLate
	admitDuplicate
)

// ingest buffers one record, dropping it as late when it cannot be
// admitted without touching sealed output. The drop predicate IS the
// admission floor: admitting anything the floor rejects would let an
// out-of-order record land inside the cleaning cache's stable prefix.
func (ss *session) ingest(e *Engine, r position.Record) admit {
	if floor := ss.admissionFloor(e); !floor.IsZero() && !r.At.After(floor) {
		return admitLate
	}
	// A record timestamped at or before the current tail end is either a
	// bounded out-of-order arrival or a redelivery. Redeliveries collapse
	// to exactly-once here: a duplicated record would double-count as a
	// density neighbor and change sealed output, so at-least-once upstream
	// delivery (reconnect storms, retried ingest batches) must not reach
	// the translation layers. The device model is one position per instant,
	// so timestamp equality is the identity. In-order feeds never take the
	// search: strictly increasing timestamps skip it entirely.
	if n := ss.tail.Len(); n > 0 && !r.At.After(ss.tail.Records[n-1].At) {
		i := sort.Search(n, func(i int) bool { return !ss.tail.Records[i].At.Before(r.At) })
		if i < n && ss.tail.Records[i].At.Equal(r.At) {
			return admitDuplicate
		}
	}
	ss.tail.Append(r)
	ss.pending++
	ss.lastArrival = e.now()
	if ss.firstPending.IsZero() {
		ss.firstPending = ss.lastArrival
	}
	return admitOK
}

// admissionFloor is the earliest instant a future record of this session
// can carry: ingest drops anything at or before both lateness frontiers, so
// records at or before the floor can never be displaced by an out-of-order
// arrival — the insert-safety guarantee the incremental cleaning cache
// keys on. Zero while nothing has sealed or frozen.
func (ss *session) admissionFloor(e *Engine) time.Time {
	var floor time.Time
	if !ss.sealedThrough.IsZero() {
		floor = ss.sealedThrough.Add(e.horizon)
	}
	if !ss.frozenThrough.IsZero() {
		if f := ss.frozenThrough.Add(e.freezeGap); f.After(floor) {
			floor = f
		}
	}
	return floor
}

// stageStamps captures the clock reads bracketing the clean and annotate
// stages of one flush; the flush turns them into histogram observations,
// trace spans, and the lineage breakdown. A nil *stageStamps (provisional
// snapshot queries, instrumentation fully disabled) keeps the path free of
// clock reads.
type stageStamps struct {
	start, afterClean, afterAnnotate time.Time
}

// translateTail runs clean+annotate over the tail: incrementally through
// the session's caches — re-cleaning from the last stable anchor and
// re-annotating the unstable suffix window — or from scratch when the
// engine's differential-shadow knob disables the caches. A non-nil st
// stamps the stage boundaries; flushes pass one when metrics or tracing
// consume the timings, provisional snapshot queries pass nil so the
// flush-stage instruments stay clean.
func (ss *session) translateTail(e *Engine, st *stageStamps) (cleaning.Report, *semantics.Sequence) {
	if e.cfg.fullRecompute {
		if st != nil {
			//trips:allow wallclock: stage latency stamp, operational telemetry
			st.start = time.Now()
		}
		cleaned, rep := e.pl.Cleaner.Clean(ss.tail)
		if st != nil {
			//trips:allow wallclock: stage latency stamp, operational telemetry
			st.afterClean = time.Now()
		}
		sem := e.annotatorFor(ss).Annotate(cleaned)
		if st != nil {
			//trips:allow wallclock: stage latency stamp, operational telemetry
			st.afterAnnotate = time.Now()
		}
		return rep, sem
	}
	if st != nil {
		//trips:allow wallclock: stage latency stamp, operational telemetry
		st.start = time.Now()
	}
	// The online path never reads Report.Changes — it queries per-index
	// repairs through State.Repaired — so suppress the merged change-list
	// assembly, which costs O(total repairs) per flush.
	ss.clean.NoChanges = true
	cleaned, rep := e.pl.Cleaner.CleanFrom(&ss.clean, ss.tail, ss.admissionFloor(e))
	if st != nil {
		//trips:allow wallclock: stage latency stamp, operational telemetry
		st.afterClean = time.Now()
	}
	if a := e.annotatorFor(ss); ss.ann == nil || !ss.ann.BoundTo(a) {
		ss.ann = a.NewIncremental()
	}
	sem := ss.ann.Annotate(cleaned, ss.clean.StableSince())
	if st != nil {
		//trips:allow wallclock: stage latency stamp, operational telemetry
		st.afterAnnotate = time.Now()
	}
	return rep, sem
}

// resetTranslation invalidates the incremental caches; the next flush
// recomputes the (new) tail from scratch. Called on every tail epoch
// change, because the caches are keyed by record index into the tail.
func (ss *session) resetTranslation() {
	ss.clean.Reset()
	if ss.ann != nil {
		// Keep the annotator cache's buffers across tail epochs; Reset makes
		// the next Annotate a full recompute over the new record indexes.
		// translateTail still swaps the cache out wholesale when the session
		// graduates to the trimmed-tail annotator variant.
		ss.ann.Reset()
	}
}

// restartTail begins a new tail epoch: consumed records leave the tail
// (they fold into base so emitted indexes keep matching the batch
// Translator's), rest becomes the new tail (nil for an empty one), and the
// index-keyed incremental caches invalidate. Tail replacement and cache
// reset must never separate — a stale stable prefix applied to a different
// record array would silently corrupt output.
func (ss *session) restartTail(rest []position.Record, consumed int) {
	ss.base += consumed
	if rest == nil {
		ss.tail = position.NewSequence(ss.dev)
	} else {
		ss.tail = &position.Sequence{Device: ss.dev, Records: rest}
	}
	ss.emittedInTail = 0
	ss.resetTranslation()
}

// flush recomputes clean+annotate over the tail and emits every newly
// sealed triplet. With sealAll (close or idle finalize) everything seals
// and the tail resets; otherwise sealed records may trim across a hard
// break.
func (ss *session) flush(e *Engine, sealAll bool) {
	ss.pending = 0
	ss.emitArrival = ss.firstPending
	ss.firstPending = time.Time{}
	if ss.tail.Len() == 0 {
		return
	}
	e.stats.Flushes.Add(1)

	m := e.cfg.Metrics
	traced := e.tracer != nil && ss.trace.Sampled()
	var stamps stageStamps
	var st *stageStamps
	if m != nil || traced {
		st = &stamps
	}
	rep, sem := ss.translateTail(e, st)
	if ss.clean.StableSince() > 0 {
		// This flush re-cleaned only from the stable anchor forward. The
		// counter lives here rather than in translateTail so provisional
		// snapshot queries don't inflate the flush cache-hit rate.
		e.stats.IncrementalFlushes.Add(1)
	}
	var sealSp trace.SpanRec
	if traced {
		// The seal span opens before emission so warehouse/analytics spans
		// can nest under it via the Emission's trace context. If this flush
		// ends up sealing nothing the span is discarded unended (inert) and
		// the session keeps its trace for the flush that does seal.
		sealSp = e.tracer.Start(ss.trace, "seal")
		sealSp.SetDevice(string(ss.dev))
		ss.emitTC = sealSp.Ctx()
	}
	seq0 := ss.seq
	watermark := ss.tail.End()

	// Trailing invalid run: cleaned values there still depend on a future
	// anchor, so triplets touching it cannot seal.
	invalid := ss.invalidView(e, rep)
	unstable := ss.tail.Len()
	for unstable > 0 && invalid.has(unstable-1) {
		unstable--
	}

	sealBefore := watermark.Add(-e.horizon)
	frozenBefore := watermark.Add(-e.freezeGap)
	mergeGap := e.pl.Annotator.Cfg.MergeGap

	n := 0
	for i := ss.emittedInTail; i < len(sem.Triplets); i++ {
		t := sem.Triplets[i]
		if !sealAll {
			if t.To.After(sealBefore) || t.LastIdx >= unstable {
				break
			}
			// A successor within consolidation reach must have frozen
			// membership (tag, region, density all final) before t's
			// extent is final.
			if i+1 < len(sem.Triplets) && mergeGap > 0 {
				next := sem.Triplets[i+1]
				if next.From.Sub(t.To) <= mergeGap {
					if next.To.After(frozenBefore) || next.LastIdx >= unstable {
						break
					}
					if next.To.After(ss.frozenThrough) {
						ss.frozenThrough = next.To
					}
				}
			}
		}
		ss.emit(e, t, watermark)
		n++
	}
	ss.emittedInTail += n

	if sealAll {
		ss.restartTail(nil, ss.tail.Len())
	} else {
		ss.maybeTrim(e, sem, invalid)
	}
	// Count after trimming so force-seal emissions show in the breakdown.
	sealed := ss.seq - seq0

	if st != nil {
		//trips:allow wallclock: stage latency stamp, operational telemetry
		sealEnd := time.Now()
		dClean := stamps.afterClean.Sub(stamps.start)
		dAnnotate := stamps.afterAnnotate.Sub(stamps.afterClean)
		dSeal := sealEnd.Sub(stamps.afterAnnotate)
		if m != nil {
			if traced {
				tid := ss.trace.Trace.String()
				m.CleanSeconds.ObserveTraced(dClean, tid)
				m.AnnotateSeconds.ObserveTraced(dAnnotate, tid)
				m.SealSeconds.ObserveTraced(dSeal, tid)
			} else {
				m.CleanSeconds.Observe(dClean)
				m.AnnotateSeconds.Observe(dAnnotate)
				m.SealSeconds.Observe(dSeal)
			}
		}
		ss.lastFlushAt = sealEnd
		ss.lastClean = dClean
		ss.lastAnnotate = dAnnotate
		ss.lastSeal = dSeal
		ss.lastSealed = sealed
	}

	if traced {
		if sealed > 0 || sealAll {
			// This flush finalized the traced request's data: commit the
			// stage spans, close the seal span, and release the session's
			// trace so the next sampled request can adopt it.
			cl := e.tracer.Start(ss.trace, "clean")
			cl.SetDevice(string(ss.dev))
			cl.SetStart(stamps.start)
			cl.EndAt(stamps.afterClean)
			an := e.tracer.Start(ss.trace, "annotate")
			an.SetDevice(string(ss.dev))
			an.SetStart(stamps.afterClean)
			an.EndAt(stamps.afterAnnotate)
			sealSp.End()
			ss.trace = trace.Ctx{}
		}
		// else: sealSp is dropped unended (never recorded) and ss.trace
		// survives for the sealing flush.
	}
	ss.emitTC = trace.Ctx{}
}

// emit finalizes one triplet: complement the gap from the previously
// emitted triplet, feed the shared knowledge, and hand both the inferred
// and the observed triplets to the sink.
func (ss *session) emit(e *Engine, t semantics.Triplet, watermark time.Time) {
	t.FirstIdx += ss.base
	t.LastIdx += ss.base
	if ss.hasLast && e.pl.Complementor != nil {
		for _, inf := range e.know.inferGap(e.pl.Complementor, ss.dev, ss.last, t) {
			e.send(Emission{Device: ss.dev, Seq: ss.seq, Triplet: inf, Watermark: watermark, ArrivedAt: ss.emitArrival, Trace: ss.emitTC})
			ss.seq++
			e.stats.Inferred.Add(1)
		}
	}
	if t.RegionID != "" {
		if ss.hasLastKnow {
			e.know.observe(ss.lastKnow, t)
		}
		ss.lastKnow, ss.hasLastKnow = t, true
	}
	e.send(Emission{Device: ss.dev, Seq: ss.seq, Triplet: t, Watermark: watermark, ArrivedAt: ss.emitArrival, Trace: ss.emitTC})
	ss.seq++
	ss.last, ss.hasLast = t, true
	if t.To.After(ss.sealedThrough) {
		ss.sealedThrough = t.To
	}
}

// maybeTrim drops fully sealed records from the tail. An exact trim
// requires a hard break — a gap wider than the horizon whose successor was
// a valid cleaning anchor — after which the suffix recomputes identically.
// A tail beyond MaxTail is force-trimmed at the seal boundary regardless,
// and when there is no seal boundary at all it is force-sealed at the
// horizon.
func (ss *session) maybeTrim(e *Engine, sem *semantics.Sequence, invalid invalidView) {
	if ss.emittedInTail == 0 {
		// No triplet has sealed from this tail, so there is no trim
		// boundary — the case of a stationary device dwelling in one
		// region forever: its single growing stay never falls behind the
		// watermark, so without intervention memory and per-flush
		// recompute grow without bound exactly when MaxTail is supposed
		// to bite. Force-seal at the horizon instead.
		if e.cfg.MaxTail > 0 && ss.tail.Len() > e.cfg.MaxTail {
			ss.forceSeal(e, sem)
		}
		return
	}
	// sem indexes are tail-relative (emit adjusts copies, not sem).
	b := sem.Triplets[ss.emittedInTail-1].LastIdx + 1 // first unsealed record
	if b <= 0 || b > ss.tail.Len() {
		return
	}
	if b == ss.tail.Len() {
		// Everything in the tail is sealed; the next admitted record is
		// beyond the horizon by the lateness rule, so this is a break.
		ss.restartTail(nil, ss.tail.Len())
		e.stats.Trims.Add(1)
		return
	}
	gap := ss.tail.Records[b].At.Sub(ss.tail.Records[b-1].At)
	hard := gap > e.horizon && !invalid.has(b)
	forced := e.cfg.MaxTail > 0 && ss.tail.Len() > e.cfg.MaxTail
	if !hard && !forced {
		return
	}
	if hard {
		e.stats.Trims.Add(1)
	} else {
		e.stats.ForcedTrims.Add(1)
	}
	// Slide the surviving suffix to the front of the same backing array:
	// the record values are identical and every index-keyed cache resets
	// with the epoch, so no fresh allocation is needed.
	rest := ss.tail.Records[:copy(ss.tail.Records, ss.tail.Records[b:])]
	ss.restartTail(rest, b)
}

// forceSeal bounds a tail that cannot seal naturally: it emits the
// triplets covering the records older than watermark−horizon — truncating
// the straddling triplet at that boundary — then trims those records and
// restarts the tail epoch. Cutting at the horizon rather than at the
// covering triplet's end keeps the session alive: emit advances
// sealedThrough, and ingest drops records at or before
// sealedThrough+horizon, so sealing up to the watermark would turn the
// device's entire ongoing feed late. The cost is exactness, as documented
// on Config.MaxTail: one long dwell emits as consecutive shorter stays,
// and repairs or merges that would have reached across the cut are lost.
// Because everything within the horizon must stay buffered, the effective
// tail bound is max(MaxTail, arrival rate × horizon) records.
func (ss *session) forceSeal(e *Engine, sem *semantics.Sequence) {
	watermark := ss.tail.End()
	sealBefore := watermark.Add(-e.horizon)
	// First record younger than the horizon; everything before it seals.
	cut := sort.Search(ss.tail.Len(), func(i int) bool {
		return ss.tail.Records[i].At.After(sealBefore)
	})
	if cut == 0 {
		return // the whole overflow is within the horizon; nothing to free
	}
	for _, t := range sem.Triplets {
		if t.FirstIdx >= cut {
			break
		}
		if t.LastIdx >= cut {
			// The straddling triplet: emit the prefix ending at the cut.
			// The continuation re-annotates from the trimmed tail and
			// emits later as its own triplet.
			t.LastIdx = cut - 1
			t.To = ss.tail.Records[cut-1].At
			ss.emit(e, t, watermark)
			break
		}
		ss.emit(e, t, watermark)
	}
	rest := ss.tail.Records[:copy(ss.tail.Records, ss.tail.Records[cut:])]
	ss.restartTail(rest, cut)
	e.stats.ForcedSeals.Add(1)
	if e.tracer != nil && ss.emitTC.Sampled() {
		// A forced seal truncated the traced request's dwell: mark the trace
		// kept so the exactness loss is inspectable after the fact.
		sp := e.tracer.Start(ss.emitTC, "force_seal")
		sp.SetDevice(string(ss.dev))
		sp.SetKeep()
		sp.End()
	}
}

// provisional recomputes the tail and returns the not-yet-sealed triplets,
// index-adjusted — the live view of a device between seals.
func (ss *session) provisional(e *Engine) []semantics.Triplet {
	if ss.tail.Len() == 0 {
		return nil
	}
	_, sem := ss.translateTail(e, nil)
	if ss.emittedInTail >= len(sem.Triplets) {
		return nil
	}
	out := make([]semantics.Triplet, 0, len(sem.Triplets)-ss.emittedInTail)
	for _, t := range sem.Triplets[ss.emittedInTail:] {
		t.FirstIdx += ss.base
		t.LastIdx += ss.base
		out = append(out, t)
	}
	return out
}

// invalidIndexes collects the record indexes the cleaner repaired for a
// speed-constraint violation (floor fix or interpolation); snap-only
// repairs don't count, they are position-local.
func invalidIndexes(rep cleaning.Report) map[int]bool {
	out := make(map[int]bool, len(rep.Changes))
	for _, ch := range rep.Changes {
		if ch.Kind == cleaning.RepairFloor || ch.Kind == cleaning.RepairInterpolate {
			out[ch.Index] = true
		}
	}
	return out
}

// invalidView answers "was record i floor-fixed or interpolated?" for one
// flush without materializing a per-flush map: the incremental path reads
// the cleaning State's repaired column directly; the differential-shadow
// path (fullRecompute, batch Clean with a materialized report) falls back
// to the map.
type invalidView struct {
	m  map[int]bool
	st *cleaning.State
}

func (v invalidView) has(i int) bool {
	if v.st != nil {
		return v.st.Repaired(i)
	}
	return v.m[i]
}

func (ss *session) invalidView(e *Engine, rep cleaning.Report) invalidView {
	if e.cfg.fullRecompute {
		return invalidView{m: invalidIndexes(rep)}
	}
	return invalidView{st: &ss.clean}
}
