package online

import (
	"sort"
	"time"

	"trips/internal/cleaning"
	"trips/internal/position"
	"trips/internal/semantics"
)

// session is the per-device state machine: the raw record tail still under
// translation, the emission frontier into that tail, and the last emitted
// triplet for gap complementing.
type session struct {
	dev  position.DeviceID
	tail *position.Sequence

	// base counts the records trimmed or finalized away before tail[0];
	// emitted triplet indexes are offset by it so they keep matching the
	// batch Translator's.
	base int

	// emittedInTail is how many leading triplets of the tail's current
	// annotation have already been emitted.
	emittedInTail int

	// seq is the per-device emission counter.
	seq int

	// last is the most recently emitted triplet (for gap complementing);
	// valid when hasLast.
	last    semantics.Triplet
	hasLast bool

	// lastKnow is the most recently emitted region-carrying triplet —
	// the knowledge-aggregation predecessor. Tracked separately from
	// last because BuildKnowledge skips region-less triplets without
	// resetting its predecessor, and the online aggregation must count
	// the same transitions.
	lastKnow    semantics.Triplet
	hasLastKnow bool

	// sealedThrough is the To of the last sealed triplet: the point of no
	// return. Records at or before sealedThrough+horizon are late.
	sealedThrough time.Time

	// frozenThrough is the To of the latest unsealed triplet whose frozen
	// membership a seal decision relied on; records at or before
	// frozenThrough+freezeGap are late (they could re-open that
	// membership).
	frozenThrough time.Time

	// pending counts records ingested since the last flush.
	pending int

	// lastArrival is the wall-clock time of the last ingested record,
	// for the idle timeout.
	lastArrival time.Time
}

func newSession(dev position.DeviceID) *session {
	return &session{dev: dev, tail: position.NewSequence(dev)}
}

// ingest buffers one record, dropping it as late when it cannot be
// admitted without touching sealed output.
func (ss *session) ingest(e *Engine, r position.Record) bool {
	if !ss.sealedThrough.IsZero() && !r.At.After(ss.sealedThrough.Add(e.horizon)) {
		return false
	}
	if !ss.frozenThrough.IsZero() && !r.At.After(ss.frozenThrough.Add(e.freezeGap)) {
		return false
	}
	ss.tail.Append(r)
	ss.pending++
	ss.lastArrival = e.now()
	return true
}

// flush recomputes clean+annotate over the tail and emits every newly
// sealed triplet. With sealAll (close or idle finalize) everything seals
// and the tail resets; otherwise sealed records may trim across a hard
// break.
func (ss *session) flush(e *Engine, sealAll bool) {
	ss.pending = 0
	if ss.tail.Len() == 0 {
		return
	}
	e.stats.Flushes.Add(1)

	cleaned, rep := e.pl.Cleaner.Clean(ss.tail)
	sem := e.annotatorFor(ss).Annotate(cleaned)
	watermark := ss.tail.End()

	// Trailing invalid run: cleaned values there still depend on a future
	// anchor, so triplets touching it cannot seal.
	invalid := invalidIndexes(rep)
	unstable := ss.tail.Len()
	for unstable > 0 && invalid[unstable-1] {
		unstable--
	}

	sealBefore := watermark.Add(-e.horizon)
	frozenBefore := watermark.Add(-e.freezeGap)
	mergeGap := e.pl.Annotator.Cfg.MergeGap

	n := 0
	for i := ss.emittedInTail; i < len(sem.Triplets); i++ {
		t := sem.Triplets[i]
		if !sealAll {
			if t.To.After(sealBefore) || t.LastIdx >= unstable {
				break
			}
			// A successor within consolidation reach must have frozen
			// membership (tag, region, density all final) before t's
			// extent is final.
			if i+1 < len(sem.Triplets) && mergeGap > 0 {
				next := sem.Triplets[i+1]
				if next.From.Sub(t.To) <= mergeGap {
					if next.To.After(frozenBefore) || next.LastIdx >= unstable {
						break
					}
					if next.To.After(ss.frozenThrough) {
						ss.frozenThrough = next.To
					}
				}
			}
		}
		ss.emit(e, t, watermark)
		n++
	}
	ss.emittedInTail += n

	if sealAll {
		ss.base += ss.tail.Len()
		ss.tail = position.NewSequence(ss.dev)
		ss.emittedInTail = 0
		return
	}
	ss.maybeTrim(e, sem, invalid)
}

// emit finalizes one triplet: complement the gap from the previously
// emitted triplet, feed the shared knowledge, and hand both the inferred
// and the observed triplets to the sink.
func (ss *session) emit(e *Engine, t semantics.Triplet, watermark time.Time) {
	t.FirstIdx += ss.base
	t.LastIdx += ss.base
	if ss.hasLast && e.pl.Complementor != nil {
		for _, inf := range e.know.inferGap(e.pl.Complementor, ss.dev, ss.last, t) {
			e.send(Emission{Device: ss.dev, Seq: ss.seq, Triplet: inf, Watermark: watermark})
			ss.seq++
			e.stats.Inferred.Add(1)
		}
	}
	if t.RegionID != "" {
		if ss.hasLastKnow {
			e.know.observe(ss.lastKnow, t)
		}
		ss.lastKnow, ss.hasLastKnow = t, true
	}
	e.send(Emission{Device: ss.dev, Seq: ss.seq, Triplet: t, Watermark: watermark})
	ss.seq++
	ss.last, ss.hasLast = t, true
	if t.To.After(ss.sealedThrough) {
		ss.sealedThrough = t.To
	}
}

// maybeTrim drops fully sealed records from the tail. An exact trim
// requires a hard break — a gap wider than the horizon whose successor was
// a valid cleaning anchor — after which the suffix recomputes identically.
// A tail beyond MaxTail is force-trimmed at the seal boundary regardless,
// and when there is no seal boundary at all it is force-sealed at the
// horizon.
func (ss *session) maybeTrim(e *Engine, sem *semantics.Sequence, invalid map[int]bool) {
	if ss.emittedInTail == 0 {
		// No triplet has sealed from this tail, so there is no trim
		// boundary — the case of a stationary device dwelling in one
		// region forever: its single growing stay never falls behind the
		// watermark, so without intervention memory and per-flush
		// recompute grow without bound exactly when MaxTail is supposed
		// to bite. Force-seal at the horizon instead.
		if e.cfg.MaxTail > 0 && ss.tail.Len() > e.cfg.MaxTail {
			ss.forceSeal(e, sem)
		}
		return
	}
	// sem indexes are tail-relative (emit adjusts copies, not sem).
	b := sem.Triplets[ss.emittedInTail-1].LastIdx + 1 // first unsealed record
	if b <= 0 || b > ss.tail.Len() {
		return
	}
	if b == ss.tail.Len() {
		// Everything in the tail is sealed; the next admitted record is
		// beyond the horizon by the lateness rule, so this is a break.
		ss.base += ss.tail.Len()
		ss.tail = position.NewSequence(ss.dev)
		ss.emittedInTail = 0
		e.stats.Trims.Add(1)
		return
	}
	gap := ss.tail.Records[b].At.Sub(ss.tail.Records[b-1].At)
	hard := gap > e.horizon && !invalid[b]
	forced := e.cfg.MaxTail > 0 && ss.tail.Len() > e.cfg.MaxTail
	if !hard && !forced {
		return
	}
	if hard {
		e.stats.Trims.Add(1)
	} else {
		e.stats.ForcedTrims.Add(1)
	}
	rest := make([]position.Record, ss.tail.Len()-b)
	copy(rest, ss.tail.Records[b:])
	ss.tail = &position.Sequence{Device: ss.dev, Records: rest}
	ss.base += b
	ss.emittedInTail = 0
}

// forceSeal bounds a tail that cannot seal naturally: it emits the
// triplets covering the records older than watermark−horizon — truncating
// the straddling triplet at that boundary — then trims those records and
// restarts the tail epoch. Cutting at the horizon rather than at the
// covering triplet's end keeps the session alive: emit advances
// sealedThrough, and ingest drops records at or before
// sealedThrough+horizon, so sealing up to the watermark would turn the
// device's entire ongoing feed late. The cost is exactness, as documented
// on Config.MaxTail: one long dwell emits as consecutive shorter stays,
// and repairs or merges that would have reached across the cut are lost.
// Because everything within the horizon must stay buffered, the effective
// tail bound is max(MaxTail, arrival rate × horizon) records.
func (ss *session) forceSeal(e *Engine, sem *semantics.Sequence) {
	watermark := ss.tail.End()
	sealBefore := watermark.Add(-e.horizon)
	// First record younger than the horizon; everything before it seals.
	cut := sort.Search(ss.tail.Len(), func(i int) bool {
		return ss.tail.Records[i].At.After(sealBefore)
	})
	if cut == 0 {
		return // the whole overflow is within the horizon; nothing to free
	}
	for _, t := range sem.Triplets {
		if t.FirstIdx >= cut {
			break
		}
		if t.LastIdx >= cut {
			// The straddling triplet: emit the prefix ending at the cut.
			// The continuation re-annotates from the trimmed tail and
			// emits later as its own triplet.
			t.LastIdx = cut - 1
			t.To = ss.tail.Records[cut-1].At
			ss.emit(e, t, watermark)
			break
		}
		ss.emit(e, t, watermark)
	}
	rest := make([]position.Record, ss.tail.Len()-cut)
	copy(rest, ss.tail.Records[cut:])
	ss.tail = &position.Sequence{Device: ss.dev, Records: rest}
	ss.base += cut
	ss.emittedInTail = 0
	e.stats.ForcedSeals.Add(1)
}

// provisional recomputes the tail and returns the not-yet-sealed triplets,
// index-adjusted — the live view of a device between seals.
func (ss *session) provisional(e *Engine) []semantics.Triplet {
	if ss.tail.Len() == 0 {
		return nil
	}
	cleaned, _ := e.pl.Cleaner.Clean(ss.tail)
	sem := e.annotatorFor(ss).Annotate(cleaned)
	if ss.emittedInTail >= len(sem.Triplets) {
		return nil
	}
	out := make([]semantics.Triplet, 0, len(sem.Triplets)-ss.emittedInTail)
	for _, t := range sem.Triplets[ss.emittedInTail:] {
		t.FirstIdx += ss.base
		t.LastIdx += ss.base
		out = append(out, t)
	}
	return out
}

// invalidIndexes collects the record indexes the cleaner repaired for a
// speed-constraint violation (floor fix or interpolation); snap-only
// repairs don't count, they are position-local.
func invalidIndexes(rep cleaning.Report) map[int]bool {
	out := make(map[int]bool, len(rep.Changes))
	for _, ch := range rep.Changes {
		if ch.Kind == cleaning.RepairFloor || ch.Kind == cleaning.RepairInterpolate {
			out[ch.Index] = true
		}
	}
	return out
}
