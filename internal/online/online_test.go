package online

import (
	"reflect"
	"sort"
	"sync"
	"testing"
	"time"

	"trips/internal/annotation"
	"trips/internal/cleaning"
	"trips/internal/complement"
	"trips/internal/dsm"
	"trips/internal/events"
	"trips/internal/geom"
	"trips/internal/position"
	"trips/internal/semantics"
	"trips/internal/testvenue"
)

var t0 = time.Date(2017, 1, 2, 10, 0, 0, 0, time.UTC)

// lcg is a tiny deterministic generator for test jitter.
type lcg uint64

func (g *lcg) next() float64 {
	*g = *g*6364136223846793005 + 1442695040888963407
	return float64(*g>>11) / float64(1<<53)
}

func stayRecords(g *lcg, dev position.DeviceID, center geom.Point, floor dsm.FloorID, start time.Time, n int, period time.Duration) []position.Record {
	out := make([]position.Record, 0, n)
	for i := 0; i < n; i++ {
		p := geom.Pt(center.X+(g.next()-0.5)*2, center.Y+(g.next()-0.5)*2)
		out = append(out, position.Record{Device: dev, P: p, Floor: floor,
			At: start.Add(time.Duration(i) * period)})
	}
	return out
}

func walkRecords(g *lcg, dev position.DeviceID, a, b geom.Point, floor dsm.FloorID, start time.Time, period time.Duration) []position.Record {
	dist := a.Dist(b)
	steps := int(dist/(1.4*period.Seconds())) + 1
	out := make([]position.Record, 0, steps+1)
	for i := 0; i <= steps; i++ {
		t := float64(i) / float64(steps)
		p := a.Lerp(b, t)
		p = geom.Pt(p.X+(g.next()-0.5)*0.8, p.Y+(g.next()-0.5)*0.8)
		out = append(out, position.Record{Device: dev, P: p, Floor: floor,
			At: start.Add(time.Duration(i) * period)})
	}
	return out
}

// testPipeline trains a stay/pass-by model on the two-floor test venue and
// assembles the full three-layer pipeline.
func testPipeline(t testing.TB) Pipeline {
	t.Helper()
	m := testvenue.MustTwoFloor()
	g := lcg(42)
	ed := events.NewEditor()
	base := t0
	for i := 0; i < 8; i++ {
		stay := stayRecords(&g, "tr", geom.Pt(5, 15), 1, base, 40, 5*time.Second)
		if err := ed.AddSegment(events.LabeledSegment{Event: semantics.EventStay, Device: "tr", Records: stay}); err != nil {
			t.Fatal(err)
		}
		pass := walkRecords(&g, "tr", geom.Pt(2, 5), geom.Pt(30, 5), 1, base, 5*time.Second)
		if err := ed.AddSegment(events.LabeledSegment{Event: semantics.EventPassBy, Device: "tr", Records: pass}); err != nil {
			t.Fatal(err)
		}
		base = base.Add(time.Hour)
	}
	em, err := annotation.TrainEventModel(ed.TrainingSet(), annotation.NewGaussianNB())
	if err != nil {
		t.Fatal(err)
	}
	return Pipeline{
		Model:        m,
		Cleaner:      cleaning.New(m),
		Annotator:    annotation.NewAnnotator(m, em, annotation.DefaultConfig()),
		Complementor: complement.NewComplementor(m, nil),
	}
}

// journey emits a shopper dwelling in Adidas, crossing the hall, and
// dwelling at the Cashier: roughly 20 minutes of records yielding a
// stay → pass-by → stay semantics sequence.
func journey(g *lcg, dev position.DeviceID, start time.Time) []position.Record {
	var out []position.Record
	add := func(rs []position.Record) {
		out = append(out, rs...)
		start = rs[len(rs)-1].At.Add(5 * time.Second)
	}
	add(stayRecords(g, dev, geom.Pt(5, 15), 1, start, 120, 5*time.Second))
	add(walkRecords(g, dev, geom.Pt(5, 7), geom.Pt(27, 7), 1, start, 2*time.Second))
	add(stayRecords(g, dev, geom.Pt(25, 15), 1, start, 120, 5*time.Second))
	return out
}

// batchTranslate runs the same components the way core.Translator's
// TranslateOne does (uniform-prior complementing), the baseline online
// output must reproduce.
func batchTranslate(pl Pipeline, recs []position.Record) []semantics.Triplet {
	seq := position.NewSequence(recs[0].Device)
	for _, r := range recs {
		seq.Append(r)
	}
	cleaned, _ := pl.Cleaner.Clean(seq)
	sem := pl.Annotator.Annotate(cleaned)
	if pl.Complementor != nil {
		comp := *pl.Complementor
		comp.UniformPrior = true
		sem, _ = comp.Complement(sem)
	}
	return sem.Triplets
}

// collectEmitter accumulates emissions per device; safe because tests use
// one shard per device of interest or read after Close.
type collectEmitter struct {
	byDev map[position.DeviceID][]semantics.Triplet
}

func newCollect() *collectEmitter {
	return &collectEmitter{byDev: make(map[position.DeviceID][]semantics.Triplet)}
}

func (c *collectEmitter) Emit(e Emission) {
	c.byDev[e.Device] = append(c.byDev[e.Device], e.Triplet)
}

// manualConfig disables timers so tests drive flushing explicitly.
func manualConfig(em Emitter, shards int) Config {
	return Config{
		Shards:        shards,
		FlushEvery:    16,
		FlushInterval: -1,
		IdleTimeout:   -1,
		Emitter:       em,
	}
}

func TestEngineValidation(t *testing.T) {
	pl := testPipeline(t)
	if _, err := NewEngine(pl, Config{}); err == nil {
		t.Error("nil emitter accepted")
	}
	bad := pl
	bad.Cleaner = nil
	if _, err := NewEngine(bad, manualConfig(newCollect(), 1)); err == nil {
		t.Error("nil cleaner accepted")
	}
	if _, err := NewEngine(Pipeline{}, manualConfig(newCollect(), 1)); err == nil {
		t.Error("empty pipeline accepted")
	}
}

func TestOnlineMatchesBatchSingleDevice(t *testing.T) {
	pl := testPipeline(t)
	g := lcg(7)
	recs := journey(&g, "dev-1", t0)
	want := batchTranslate(pl, recs)
	if len(want) < 3 {
		t.Fatalf("batch produced only %d triplets", len(want))
	}

	sink := newCollect()
	eng, err := NewEngine(pl, manualConfig(sink, 1))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if err := eng.Ingest(r); err != nil {
			t.Fatal(err)
		}
	}
	eng.Flush()
	mid := eng.Stats()
	eng.Close()

	got := sink.byDev["dev-1"]
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("online/batch mismatch:\nonline: %v\nbatch:  %v", got, want)
	}
	// The 25-minute journey spans several horizons, so part of the output
	// must have sealed before Close.
	if mid.TripletsOut == 0 {
		t.Error("no triplet sealed before Close; incremental path untested")
	}
	if mid.TripletsOut >= int64(len(want)) {
		t.Errorf("all %d triplets sealed before Close; final-flush path untested", len(want))
	}
	st := eng.Stats()
	if st.RecordsIn != int64(len(recs)) || st.Late != 0 {
		t.Errorf("stats = %+v, want %d records, 0 late", st, len(recs))
	}
}

func TestHardBreakTrimsAndComplements(t *testing.T) {
	pl := testPipeline(t)
	g := lcg(9)
	first := journey(&g, "dev-1", t0)
	// A 30-minute dropout, then a second visit: wider than the horizon
	// (trim) and wider than the complementor's MaxGap (gap inference).
	second := journey(&g, "dev-1", first[len(first)-1].At.Add(30*time.Minute))
	recs := append(append([]position.Record{}, first...), second...)
	want := batchTranslate(pl, recs)

	sink := newCollect()
	eng, err := NewEngine(pl, manualConfig(sink, 1))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if err := eng.Ingest(r); err != nil {
			t.Fatal(err)
		}
	}
	eng.Flush()
	if st := eng.Stats(); st.Trims == 0 {
		t.Error("no trim across a 30-minute break")
	}
	eng.Close()

	got := sink.byDev["dev-1"]
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("online/batch mismatch across break:\nonline: %v\nbatch:  %v", got, want)
	}
	inferred := 0
	for _, tr := range got {
		if tr.Inferred {
			inferred++
		}
	}
	if st := eng.Stats(); st.Inferred != int64(inferred) {
		t.Errorf("Inferred stat = %d, emitted %d inferred triplets", st.Inferred, inferred)
	}
}

func TestLateRecordsDropped(t *testing.T) {
	pl := testPipeline(t)
	g := lcg(11)
	recs := journey(&g, "dev-1", t0)

	sink := newCollect()
	eng, err := NewEngine(pl, manualConfig(sink, 1))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		eng.Ingest(r)
	}
	eng.Flush()
	if st := eng.Stats(); st.TripletsOut == 0 {
		t.Fatal("nothing sealed; late test needs a seal frontier")
	}
	// A record at the very start is far behind the seal frontier.
	late := recs[0]
	late.At = t0.Add(-time.Minute)
	eng.Ingest(late)
	eng.Flush()
	if st := eng.Stats(); st.Late != 1 {
		t.Errorf("Late = %d, want 1", st.Late)
	}
	eng.Close()
}

func TestIdleTimeoutSealsFinalTriplet(t *testing.T) {
	pl := testPipeline(t)
	g := lcg(13)
	recs := journey(&g, "dev-1", t0)
	want := batchTranslate(pl, recs)

	sink := newCollect()
	eng, err := NewEngine(pl, Config{
		Shards:        1,
		FlushInterval: 5 * time.Millisecond,
		IdleTimeout:   25 * time.Millisecond,
		Emitter:       sink,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		eng.Ingest(r)
	}
	// The watermark stalls at the last record, yet the idle timer must
	// finalize the session without Close.
	deadline := time.Now().Add(5 * time.Second)
	for eng.Stats().IdleFinalized == 0 {
		if time.Now().After(deadline) {
			t.Fatal("idle timeout never finalized the session")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if got := eng.Stats().TripletsOut; got != int64(len(want)) {
		t.Errorf("TripletsOut after idle finalize = %d, want %d", got, len(want))
	}
	eng.Close()
	if !reflect.DeepEqual(sink.byDev["dev-1"], want) {
		t.Error("idle-finalized output differs from batch")
	}
}

func TestSnapshotAndProvisional(t *testing.T) {
	pl := testPipeline(t)
	g := lcg(17)
	recs := journey(&g, "dev-1", t0)

	sink := newCollect()
	eng, err := NewEngine(pl, manualConfig(sink, 2))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		eng.Ingest(r)
	}
	eng.Flush()
	snap, ok := eng.Snapshot("dev-1")
	if !ok {
		t.Fatal("Snapshot: device not found")
	}
	if snap.TailRecords == 0 || len(snap.Provisional) == 0 {
		t.Errorf("snapshot has empty tail/provisional: %+v", snap)
	}
	if snap.Watermark != recs[len(recs)-1].At {
		t.Errorf("watermark = %v, want %v", snap.Watermark, recs[len(recs)-1].At)
	}
	if _, ok := eng.Snapshot("ghost"); ok {
		t.Error("Snapshot found a device that never reported")
	}
	eng.Close()
}

func TestCloseSemantics(t *testing.T) {
	pl := testPipeline(t)
	sink := NewChanEmitter(64)
	eng, err := NewEngine(pl, manualConfig(sink, 2))
	if err != nil {
		t.Fatal(err)
	}
	g := lcg(19)
	for _, r := range journey(&g, "dev-1", t0) {
		eng.Ingest(r)
	}
	done := make(chan int)
	go func() {
		n := 0
		for range sink.Results() {
			n++
		}
		done <- n
	}()
	eng.Close()
	eng.Close() // idempotent
	if n := <-done; n == 0 {
		t.Error("channel emitter saw no emissions before close")
	}
	if err := eng.Ingest(position.Record{Device: "dev-1", At: t0}); err != ErrClosed {
		t.Errorf("Ingest after Close = %v, want ErrClosed", err)
	}
	if _, ok := eng.Snapshot("dev-1"); ok {
		t.Error("Snapshot after Close succeeded")
	}
	eng.Flush() // must not panic or hang
}

// TestMaxTailBoundsStationaryDevice is the regression test for the
// ROADMAP's unbounded-session bug: a device dwelling in one region forever
// never seals a triplet (its single stay keeps extending to the
// watermark), so before the horizon force-seal, MaxTail never fired and
// the tail — and every flush's recompute — grew without bound. The test
// streams hours of a stationary device and asserts the tail stays bounded,
// the feed never turns late, and the emitted stays still cover the dwell.
func TestMaxTailBoundsStationaryDevice(t *testing.T) {
	pl := testPipeline(t)
	g := lcg(29)
	sink := newCollect()
	cfg := manualConfig(sink, 1)
	cfg.MaxTail = 200
	eng, err := NewEngine(pl, cfg)
	if err != nil {
		t.Fatal(err)
	}

	const n = 3000 // 5s period → ~4.2 hours pinned to one spot
	recs := stayRecords(&g, "couch", geom.Pt(5, 15), 1, t0, n, 5*time.Second)
	maxTail := 0
	for i, r := range recs {
		if err := eng.Ingest(r); err != nil {
			t.Fatal(err)
		}
		if i%50 == 49 {
			eng.Flush()
			if snap, ok := eng.Snapshot("couch"); ok && snap.TailRecords > maxTail {
				maxTail = snap.TailRecords
			}
		}
	}
	eng.Flush()
	st := eng.Stats()
	eng.Close()

	// The bound: MaxTail plus at most one flush batch of slack before the
	// force-seal runs. Without the fix the tail reaches n.
	if limit := cfg.MaxTail + cfg.FlushEvery; maxTail > limit {
		t.Errorf("tail reached %d records (limit %d): MaxTail does not bound a stationary session", maxTail, limit)
	}
	if st.ForcedSeals == 0 {
		t.Error("no forced seal on a session that never seals naturally")
	}
	// Force-sealing must not push the live feed behind the lateness
	// frontier — that would silently disconnect the device.
	if st.Late != 0 {
		t.Errorf("Late = %d: force-seal made the ongoing feed late", st.Late)
	}
	if st.RecordsIn != int64(n) {
		t.Errorf("RecordsIn = %d, want %d", st.RecordsIn, n)
	}

	// The dwell still emits, as consecutive stays covering the whole span
	// (the documented MaxTail exactness trade).
	got := sink.byDev["couch"]
	if len(got) < 2 {
		t.Fatalf("got %d triplets, want the dwell split into several stays", len(got))
	}
	span := recs[n-1].At.Sub(recs[0].At)
	var covered time.Duration
	for i, tr := range got {
		covered += tr.To.Sub(tr.From)
		if i > 0 && tr.From.Before(got[i-1].To) {
			t.Errorf("triplet %d overlaps its predecessor: %v < %v", i, tr.From, got[i-1].To)
		}
	}
	if covered < span*9/10 {
		t.Errorf("emitted stays cover %v of the %v dwell", covered, span)
	}
}

func TestShardingPreservesPerDeviceOrder(t *testing.T) {
	pl := testPipeline(t)
	devs := []position.DeviceID{"a", "b", "c", "d", "e", "f"}
	g := lcg(23)
	perDev := make(map[position.DeviceID][]position.Record)
	var all []position.Record
	for i, dev := range devs {
		rs := journey(&g, dev, t0.Add(time.Duration(i)*time.Minute))
		perDev[dev] = rs
		all = append(all, rs...)
	}
	// Interleave across devices in global time order, as a venue feed
	// would deliver.
	sort.SliceStable(all, func(i, j int) bool { return all[i].At.Before(all[j].At) })

	var mu sync.Mutex
	got := make(map[position.DeviceID][]Emission)
	eng, err := NewEngine(pl, Config{
		Shards:        4,
		FlushEvery:    16,
		FlushInterval: -1,
		IdleTimeout:   -1,
		Emitter: EmitterFunc(func(e Emission) {
			mu.Lock()
			got[e.Device] = append(got[e.Device], e)
			mu.Unlock()
		}),
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range all {
		if err := eng.Ingest(r); err != nil {
			t.Fatal(err)
		}
	}
	eng.Close()

	for _, dev := range devs {
		want := batchTranslate(pl, perDev[dev])
		ems := got[dev]
		if len(ems) != len(want) {
			t.Fatalf("device %s: %d emissions, want %d", dev, len(ems), len(want))
		}
		for i, em := range ems {
			if em.Seq != i {
				t.Fatalf("device %s: emission %d has Seq %d", dev, i, em.Seq)
			}
			if !reflect.DeepEqual(em.Triplet, want[i]) {
				t.Fatalf("device %s triplet %d mismatch:\nonline: %v\nbatch:  %v", dev, i, em.Triplet, want[i])
			}
		}
	}
}

// finalizeCollect is a collectEmitter that also records SessionFinalizer
// calls — the contract the analytics tee consumes.
type finalizeCollect struct {
	*collectEmitter
	mu        sync.Mutex
	finalized map[position.DeviceID]time.Time
}

func (f *finalizeCollect) FinalizeSession(dev position.DeviceID, at time.Time) {
	f.mu.Lock()
	f.finalized[dev] = at
	f.mu.Unlock()
}

func (f *finalizeCollect) get(dev position.DeviceID) (time.Time, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	at, ok := f.finalized[dev]
	return at, ok
}

// TestIdleFinalizeSignalsSessionFinalizer: the idle eviction notifies a
// finalizer-aware sink once, with the To of the device's last sealed
// triplet, after that triplet emitted; a plain Close must not.
func TestIdleFinalizeSignalsSessionFinalizer(t *testing.T) {
	pl := testPipeline(t)
	g := lcg(13)
	recs := journey(&g, "dev-1", t0)

	sink := &finalizeCollect{collectEmitter: newCollect(), finalized: make(map[position.DeviceID]time.Time)}
	eng, err := NewEngine(pl, Config{
		Shards:        1,
		FlushInterval: 5 * time.Millisecond,
		IdleTimeout:   25 * time.Millisecond,
		Emitter:       sink,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		eng.Ingest(r)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, ok := sink.get("dev-1"); ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("idle finalize never signaled the sink")
		}
		time.Sleep(5 * time.Millisecond)
	}
	at, _ := sink.get("dev-1")
	sink.mu.Lock()
	emitted := append([]semantics.Triplet(nil), sink.byDev["dev-1"]...)
	sink.mu.Unlock()
	if len(emitted) == 0 {
		t.Fatal("finalize signaled before any triplet emitted")
	}
	if last := emitted[len(emitted)-1].To; !at.Equal(last) {
		t.Errorf("finalize at %v, want the last sealed To %v", at, last)
	}
	eng.Close()
	if n := len(sink.finalized); n != 1 {
		t.Errorf("%d finalizations after Close, want 1 — Close must not signal departures", n)
	}
}
