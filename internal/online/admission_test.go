package online

import (
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"
)

// TestTryIngestBacklogPressure pins the bounded-admission contract: with a
// stalled shard worker (the emitter blocks mid-seal) and a full inbox,
// TryIngest returns ErrBacklogged instead of blocking — the signal the
// server's ingest endpoint turns into 429 + Retry-After. Ingest, by
// contrast, would park the caller on the channel; unbounded queueing is
// exactly what the load harness exists to forbid.
func TestTryIngestBacklogPressure(t *testing.T) {
	pl := testPipeline(t)
	release := make(chan struct{})
	emitting := make(chan struct{})
	var once sync.Once
	em := EmitterFunc(func(Emission) {
		once.Do(func() { close(emitting) })
		<-release // stall the shard worker inside the seal
	})
	eng, err := NewEngine(pl, Config{
		Shards: 1, QueueLen: 1, FlushEvery: 4,
		FlushInterval: -1, IdleTimeout: -1, Emitter: em,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { close(release); eng.Close() }()

	// Feed the journey until the first seal stalls the worker. TryIngest is
	// used for the feed too: a blocking Ingest could park this goroutine on
	// the 1-slot inbox at the very moment the worker stops draining it.
	g := lcg(7)
	recs := journey(&g, "bp", t0)
	i, stalled := 0, false
feed:
	for ; i < len(recs) && !stalled; i++ {
		for {
			select {
			case <-emitting:
				stalled = true
				break feed
			default:
			}
			err := eng.TryIngest(recs[i])
			if err == nil {
				break
			}
			if !errors.Is(err, ErrBacklogged) {
				t.Fatal(err)
			}
			runtime.Gosched() // transient backlog: the worker is mid-flush
		}
	}
	select {
	case <-emitting:
	case <-time.After(30 * time.Second):
		t.Fatal("journey never sealed a triplet; the workload must cross the horizon")
	}
	if i >= len(recs)-2 {
		t.Fatalf("seal happened only at record %d of %d; no records left to overflow with", i, len(recs))
	}

	// Worker blocked, inbox capacity 1: at most one more record is
	// admitted, then the engine must refuse rather than queue.
	var rejected bool
	for attempt := 0; attempt < 2; attempt++ {
		err := eng.TryIngest(recs[i])
		i++
		if errors.Is(err, ErrBacklogged) {
			rejected = true
			break
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if !rejected {
		t.Fatal("full shard inbox with a stalled worker did not return ErrBacklogged")
	}
	if got := eng.Stats().Backlogged; got < 1 {
		t.Errorf("Stats().Backlogged = %d, want >= 1", got)
	}
}

// TestTryIngestClosed: TryIngest mirrors Ingest's closed-engine contract.
func TestTryIngestClosed(t *testing.T) {
	pl := testPipeline(t)
	eng, err := NewEngine(pl, manualConfig(newCollect(), 1))
	if err != nil {
		t.Fatal(err)
	}
	eng.Close()
	g := lcg(3)
	if err := eng.TryIngest(journey(&g, "c", t0)[0]); !errors.Is(err, ErrClosed) {
		t.Errorf("TryIngest after Close = %v, want ErrClosed", err)
	}
}

// TestDuplicateRecordsCollapse pins at-least-once → exactly-once: a feed
// whose records are partially redelivered (same device, same instant, a few
// positions later — the reconnect-storm shape) must translate identically
// to the clean feed, with every redelivery counted in Stats().Duplicates.
func TestDuplicateRecordsCollapse(t *testing.T) {
	pl := testPipeline(t)
	g := lcg(11)
	recs := journey(&g, "dup", t0)
	want := batchTranslate(pl, recs)

	// Redeliver every 7th record 3 positions later (well inside the seal
	// horizon, so none of the duplicates can be dropped as late instead).
	type delivery struct {
		idx int
		dup bool
	}
	var schedule []delivery
	for i := range recs {
		schedule = append(schedule, delivery{idx: i})
		if i%7 == 0 && i+3 < len(recs) {
			schedule = append(schedule, delivery{idx: i, dup: true})
		}
	}
	// Move each duplicate 3 slots later.
	for s := len(schedule) - 1; s >= 3; s-- {
		if schedule[s-3].dup {
			schedule[s-3], schedule[s] = schedule[s], schedule[s-3]
		}
	}

	sink := newCollect()
	eng, err := NewEngine(pl, manualConfig(sink, 1))
	if err != nil {
		t.Fatal(err)
	}
	dups := 0
	for _, d := range schedule {
		if d.dup {
			dups++
		}
		if err := eng.Ingest(recs[d.idx]); err != nil {
			t.Fatal(err)
		}
	}
	eng.Close()

	st := eng.Stats()
	if st.Duplicates != int64(dups) {
		t.Errorf("Stats().Duplicates = %d, want %d", st.Duplicates, dups)
	}
	if st.Late != 0 {
		t.Errorf("Stats().Late = %d; the duplicate schedule was meant to stay within the horizon", st.Late)
	}
	got := sink.byDev["dup"]
	if len(got) != len(want) {
		t.Fatalf("duplicated feed emitted %d triplets, clean feed %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Errorf("triplet %d:\n  got  %+v\n  want %+v", i, got[i], want[i])
		}
	}
}
