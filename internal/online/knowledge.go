package online

import (
	"sync"
	"time"

	"trips/internal/complement"
	"trips/internal/dsm"
	"trips/internal/position"
	"trips/internal/semantics"
)

// knowledgeStore is the engine-wide mobility knowledge, grown incrementally
// from emitted triplets. All shards feed it, so access is lock-guarded —
// the online substitute for the batch Translator's phase-two
// BuildKnowledge pass.
type knowledgeStore struct {
	mu      sync.RWMutex
	know    *complement.Knowledge
	joinGap time.Duration
	minObs  int
}

func newKnowledgeStore(m *dsm.Model, joinGap time.Duration, minObs int) *knowledgeStore {
	if joinGap <= 0 {
		joinGap = 2 * time.Minute
	}
	return &knowledgeStore{know: complement.NewKnowledge(m), joinGap: joinGap, minObs: minObs}
}

// observe aggregates the transition between two consecutively emitted
// triplets of one device.
func (ks *knowledgeStore) observe(prev, next semantics.Triplet) {
	ks.mu.Lock()
	ks.know.Observe(prev, next, ks.joinGap)
	ks.mu.Unlock()
}

// observations returns the number of aggregated transitions.
func (ks *knowledgeStore) observations() int {
	ks.mu.RLock()
	defer ks.mu.RUnlock()
	return ks.know.Observations()
}

// inferGap runs the MAP gap inference between two emitted triplets under
// the current knowledge (uniform prior until minObs transitions have
// accumulated) and returns the inferred interior triplets.
func (ks *knowledgeStore) inferGap(comp *complement.Complementor, dev position.DeviceID, a, b semantics.Triplet) []semantics.Triplet {
	maxGap := comp.MaxGap
	if maxGap <= 0 {
		maxGap = 3 * time.Minute
	}
	if a.RegionID == "" || b.RegionID == "" || b.From.Sub(a.To) <= maxGap {
		return nil
	}
	c := *comp
	ks.mu.RLock()
	defer ks.mu.RUnlock()
	if ks.know.Observations() >= ks.minObs {
		c.Know = ks.know
	} else {
		c.Know = nil
		c.UniformPrior = true
	}
	tmp := semantics.NewSequence(string(dev))
	tmp.Append(a)
	tmp.Append(b)
	out, inserted := c.Complement(tmp)
	if inserted == 0 {
		return nil
	}
	return out.Triplets[1 : out.Len()-1]
}
