package online

import "trips/internal/obs"

// Metrics are the engine's optional flush-stage latency instruments. All
// fields are nil-safe (a nil histogram discards observations), and with
// both Metrics and Tracer nil in Config the stage timing is disabled
// entirely — including the time.Now calls around each stage — so the
// uninstrumented engine runs exactly the pre-instrumentation code path.
// (A traced flush times its stages even without Metrics: the spans need
// the same stamps.)
//
// The three stages partition a flush: "clean" is the incremental topology
// cleaning pass, "annotate" the density split + learned annotation over the
// unstable suffix, and "seal" everything after annotation — the seal-rule
// scan, gap complementing, emission into the configured sink (so a slow
// downstream Emitter shows up here, by design: that latency is on the
// pipeline's critical path), and tail trimming. Provisional snapshot
// queries run clean+annotate too but are never timed; the histograms
// describe flushes only.
type Metrics struct {
	CleanSeconds    *obs.Histogram
	AnnotateSeconds *obs.Histogram
	SealSeconds     *obs.Histogram
}

// NewMetrics registers the flush-stage histograms on r as
// trips_online_flush_stage_seconds{stage="clean"|"annotate"|"seal"}.
func NewMetrics(r *obs.Registry) *Metrics {
	const (
		name = "trips_online_flush_stage_seconds"
		help = "Per-flush wall-clock latency of each online translation stage; " +
			"seal includes downstream emitter fan-out."
	)
	return &Metrics{
		CleanSeconds:    r.Histogram(name, help, nil, "stage", "clean"),
		AnnotateSeconds: r.Histogram(name, help, nil, "stage", "annotate"),
		SealSeconds:     r.Histogram(name, help, nil, "stage", "seal"),
	}
}
