package online

import (
	"hash/fnv"
	"io"
	"testing"
	"time"

	"trips/internal/obs"
	"trips/internal/obs/trace"
	"trips/internal/position"
)

// TestShardOfMatchesFNV locks the inlined FNV-1a to hash/fnv's New32a:
// shard assignment must not change across the inlining.
func TestShardOfMatchesFNV(t *testing.T) {
	pl := testPipeline(t)
	eng, err := NewEngine(pl, manualConfig(newCollect(), 7))
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	for _, dev := range []position.DeviceID{"", "a", "dev-1", "AA:BB:CC:DD:EE:FF", "日本語", "x\x00y"} {
		h := fnv.New32a()
		io.WriteString(h, string(dev))
		want := eng.shards[h.Sum32()%uint32(len(eng.shards))]
		if got := eng.shardOf(dev); got != want {
			t.Errorf("shardOf(%q) = shard %d, fnv.New32a says %d", dev, got.id, want.id)
		}
	}
}

// TestIngestRouteZeroAlloc is the hot-path guard: routing one record —
// shardOf, the RLock, the channel send, and the shard-side drop of a late
// record — must not allocate. The records are late on purpose so the
// shard-side handling is deterministic O(1) work; admitted records
// additionally pay (amortized) tail growth, which is the session's cost,
// not the route's.
//
//trips:guards Engine.Ingest
//trips:guards Engine.IngestTraced
//trips:guards Engine.shardOf
func TestIngestRouteZeroAlloc(t *testing.T) {
	pl := testPipeline(t)
	g := lcg(3)
	sink := newCollect()
	cfg := manualConfig(sink, 2)
	cfg.QueueLen = 4096
	eng, err := NewEngine(pl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	// Seal something so a backdated record is dropped as late.
	for _, r := range journey(&g, "dev-1", t0) {
		if err := eng.Ingest(r); err != nil {
			t.Fatal(err)
		}
	}
	eng.Flush()
	if eng.Stats().TripletsOut == 0 {
		t.Fatal("nothing sealed; the late-drop path needs a seal frontier")
	}
	late := position.Record{Device: "dev-1", At: t0.Add(-time.Hour)}
	if avg := testing.AllocsPerRun(500, func() {
		if err := eng.Ingest(late); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Errorf("Ingest route path allocates %.1f times per record, want 0", avg)
	}
	if avg := testing.AllocsPerRun(500, func() {
		eng.shardOf("AA:BB:CC:DD:EE:FF")
	}); avg != 0 {
		t.Errorf("shardOf allocates %.1f times per call, want 0", avg)
	}
}

// TestIngestRouteZeroAllocInstrumented re-runs the hot-path guard with the
// full observability stack enabled: stage-timing metrics on the engine, a
// tracer wired in (sampling at 0, the production default posture), and a
// freshness-observing sink. Instrumentation lives at flush granularity and
// tracing gates everything on the record's sampled flag, so the per-record
// route — including IngestTraced with the zero (unsampled) context that
// every untraced request carries — must stay at zero allocations; this
// test is the contract that keeps it there. (AllocsPerRun reads the global
// allocation counter, so like the plain guard it measures the
// deterministic late-drop route; admitted records trigger concurrent
// shard-side flush work whose legitimate allocations would drown the
// signal.)
func TestIngestRouteZeroAllocInstrumented(t *testing.T) {
	pl := testPipeline(t)
	g := lcg(9)
	fresh := obs.NewRegistry().Histogram("test_freshness_seconds", "f", obs.FreshnessBounds)
	sink := EmitterFunc(func(em Emission) {
		if !em.ArrivedAt.IsZero() {
			fresh.ObserveSince(em.ArrivedAt)
		}
	})
	cfg := manualConfig(sink, 2)
	cfg.QueueLen = 8192
	cfg.Metrics = NewMetrics(obs.NewRegistry())
	cfg.Tracer = trace.New(trace.Config{SampleRate: 0})
	eng, err := NewEngine(pl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	recs := journey(&g, "dev-1", t0)
	for _, r := range recs {
		if err := eng.Ingest(r); err != nil {
			t.Fatal(err)
		}
	}
	eng.Flush()
	if eng.Stats().TripletsOut == 0 {
		t.Fatal("nothing sealed; the late-drop path needs a seal frontier")
	}
	late := position.Record{Device: "dev-1", At: t0.Add(-time.Hour)}
	if avg := testing.AllocsPerRun(500, func() {
		if err := eng.Ingest(late); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Errorf("instrumented late-record route allocates %.1f times per record, want 0", avg)
	}
	// The traced entry point with an unsampled context is the same route:
	// tracing must cost nothing until a request is actually sampled.
	unsampled := cfg.Tracer.Sample()
	if unsampled.Sampled() {
		t.Fatal("sample rate 0 produced a sampled context")
	}
	if avg := testing.AllocsPerRun(500, func() {
		if err := eng.IngestTraced(late, unsampled); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Errorf("IngestTraced unsampled route allocates %.1f times per record, want 0", avg)
	}
	// Stage histograms filled during the seal-inducing preamble, and every
	// sealed emission carried an arrival stamp the sink turned into a
	// freshness observation.
	if cfg.Metrics.CleanSeconds.Count() == 0 || cfg.Metrics.AnnotateSeconds.Count() == 0 ||
		cfg.Metrics.SealSeconds.Count() == 0 {
		t.Error("flush-stage histograms saw no observations")
	}
	if fresh.Count() == 0 {
		t.Error("freshness histogram saw no ArrivedAt-stamped emissions")
	}
}
