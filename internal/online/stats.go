package online

import "sync/atomic"

// engineStats are the engine's lifetime counters, updated from shard
// goroutines.
type engineStats struct {
	Records            atomic.Int64
	Late               atomic.Int64
	Duplicates         atomic.Int64
	Backlogged         atomic.Int64
	Triplets           atomic.Int64
	Inferred           atomic.Int64
	Flushes            atomic.Int64
	IncrementalFlushes atomic.Int64
	Trims              atomic.Int64
	ForcedTrims        atomic.Int64
	ForcedSeals        atomic.Int64
	IdleFinalized      atomic.Int64
	Sessions           atomic.Int64
}

// Stats is a point-in-time snapshot of the engine's counters and per-shard
// lag.
type Stats struct {
	// RecordsIn counts admitted records; Late counts records dropped for
	// arriving behind the seal frontier. Duplicates counts redelivered
	// records (same device, same instant) collapsed to exactly-once.
	// Backlogged counts TryIngest rejections on a full shard inbox — the
	// records the server's admission control turned into 429s.
	RecordsIn  int64 `json:"recordsIn"`
	Late       int64 `json:"late"`
	Duplicates int64 `json:"duplicates"`
	Backlogged int64 `json:"backlogged"`
	// TripletsOut counts every emission; Inferred the complemented subset.
	TripletsOut int64 `json:"tripletsOut"`
	Inferred    int64 `json:"inferred"`
	// Flushes, Trims, ForcedTrims, IdleFinalized count session
	// maintenance events. IncrementalFlushes counts the recomputes that
	// reused a stable cleaned prefix instead of re-translating the whole
	// tail. ForcedSeals counts MaxTail horizon seals of sessions that
	// never sealed naturally (stationary devices).
	Flushes            int64 `json:"flushes"`
	IncrementalFlushes int64 `json:"incrementalFlushes"`
	Trims              int64 `json:"trims"`
	ForcedTrims        int64 `json:"forcedTrims"`
	ForcedSeals        int64 `json:"forcedSeals"`
	IdleFinalized      int64 `json:"idleFinalized"`
	// Sessions is the number of devices ever seen.
	Sessions int64 `json:"sessions"`
	// KnowledgeObservations is the size of the shared mobility knowledge.
	KnowledgeObservations int `json:"knowledgeObservations"`
	// ShardDepth is the current inbox backlog per shard — the lag proxy:
	// a persistently deep shard is falling behind its feed.
	ShardDepth []int `json:"shardDepth"`
}

// Stats snapshots the engine counters. Safe to call concurrently with
// ingestion.
func (e *Engine) Stats() Stats {
	st := Stats{
		RecordsIn:             e.stats.Records.Load(),
		Late:                  e.stats.Late.Load(),
		Duplicates:            e.stats.Duplicates.Load(),
		Backlogged:            e.stats.Backlogged.Load(),
		TripletsOut:           e.stats.Triplets.Load(),
		Inferred:              e.stats.Inferred.Load(),
		Flushes:               e.stats.Flushes.Load(),
		IncrementalFlushes:    e.stats.IncrementalFlushes.Load(),
		Trims:                 e.stats.Trims.Load(),
		ForcedTrims:           e.stats.ForcedTrims.Load(),
		ForcedSeals:           e.stats.ForcedSeals.Load(),
		IdleFinalized:         e.stats.IdleFinalized.Load(),
		Sessions:              e.stats.Sessions.Load(),
		KnowledgeObservations: e.know.observations(),
		ShardDepth:            make([]int, len(e.shards)),
	}
	for i, sh := range e.shards {
		st.ShardDepth[i] = len(sh.ch)
	}
	return st
}
