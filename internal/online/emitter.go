package online

import (
	"time"

	"trips/internal/obs/trace"
	"trips/internal/position"
	"trips/internal/semantics"
)

// Emission is one finalized triplet leaving the engine. Per device, Seq
// increases by one per emission and triplets arrive in timeline order; no
// ordering holds across devices. Seq restarts at 0 when a device returns
// after idle eviction (a fresh session epoch), so it is not a durable
// per-device identity — key durable state on (Device, Triplet.From), as
// the trip warehouse does.
type Emission struct {
	Device position.DeviceID `json:"device"`
	// Seq is the per-device emission index, counting inferred triplets.
	Seq     int               `json:"seq"`
	Triplet semantics.Triplet `json:"triplet"`
	// Watermark is the device's latest record time when the triplet
	// sealed; Watermark − Triplet.To is the sealing latency in event
	// time.
	Watermark time.Time `json:"watermark"`
	// ArrivedAt is the wall-clock arrival of the oldest record that was
	// pending at the flush that sealed this triplet; zero when that flush
	// had no pending intake (close or idle finalization). time.Since of it
	// at a sink approximates the pipeline's ingest→visible freshness. It
	// is process-local context, not part of the durable record, so it is
	// excluded from the JSON form.
	ArrivedAt time.Time `json:"-"`
	// Trace is the sealing flush's span context when the flush carried a
	// sampled trace; downstream sinks (warehouse append, analytics fold)
	// start their spans under it. Zero — and ignored by sinks — on untraced
	// flushes. Process-local like ArrivedAt, so excluded from JSON.
	Trace trace.Ctx `json:"-"`
}

// Emitter is the engine's output sink. Emit is called from shard
// goroutines, one call at a time per device but concurrently across
// devices; implementations must be safe for concurrent use.
type Emitter interface {
	Emit(Emission)
}

// SessionFinalizer is an optional Emitter extension: when the configured
// emitter (or a tee in its chain) implements it, the engine calls
// FinalizeSession after the idle timeout finalizes and evicts a device's
// session — an explicit "this device is gone" signal, delivered after the
// session's last triplets emitted. at is the To of the device's final
// sealed triplet (event time); sessions that never sealed anything are
// evicted silently. Engine.Close does NOT finalize sessions this way: a
// shutdown seals every session but is no evidence the devices left.
// Like Emit, calls arrive from shard goroutines concurrently across
// devices.
type SessionFinalizer interface {
	FinalizeSession(dev position.DeviceID, at time.Time)
}

// EmitterFunc adapts a function to the Emitter interface (the callback
// sink).
type EmitterFunc func(Emission)

// Emit implements Emitter.
func (f EmitterFunc) Emit(e Emission) { f(e) }

// ChanEmitter is the channel sink: emissions are delivered on a buffered
// channel, exerting backpressure on the shards when the consumer lags. The
// engine closes the channel when it shuts down.
type ChanEmitter struct {
	ch chan Emission
}

// NewChanEmitter returns a channel sink with the given buffer (minimum 1).
func NewChanEmitter(buf int) *ChanEmitter {
	if buf < 1 {
		buf = 1
	}
	return &ChanEmitter{ch: make(chan Emission, buf)}
}

// Emit implements Emitter.
func (c *ChanEmitter) Emit(e Emission) { c.ch <- e }

// Results returns the receive side of the sink. The channel closes when
// the owning engine closes.
func (c *ChanEmitter) Results() <-chan Emission { return c.ch }

// Close closes the result channel. Engine.Close calls it for the emitter
// it was configured with; don't call it while the engine is running.
func (c *ChanEmitter) Close() error {
	close(c.ch)
	return nil
}
