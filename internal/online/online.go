// Package online is the streaming translation engine of TRIPS: it runs the
// three-layer pipeline (topology cleaning → density split + learned
// annotation → Markov/MAP complementing) incrementally over live
// positioning feeds, emitting finalized mobility semantics triplets as soon
// as their window seals instead of after a full batch.
//
// # Design
//
// Devices are sharded across a fixed worker pool (hash(DeviceID) mod N, one
// goroutine per shard), so per-device ordering needs no locks. Each device
// owns a Session: the raw record tail not yet sealed away, the count of
// triplets already emitted from that tail, and the last emitted triplet for
// gap complementing. A flush recomputes clean+annotate over the tail — the
// same code path as the batch Translator, so a flush at end-of-stream
// reproduces the batch output exactly — and emits the prefix of triplets
// that are sealed: provably unreachable by any future record.
//
// # Sealing
//
// A triplet t is sealed when the session watermark W (the latest record
// time seen) has advanced past t.To by more than the seal horizon
//
//	horizon = 2·EpsTime + max(Split.MaxGap, TinyJoinGap, MergeGap) + 1s
//
// and t's records are outside the cleaner's trailing invalid run (whose
// repairs still depend on a future anchor). The horizon covers every
// backward-reaching rule of the pipeline: the density neighborhood
// (EpsTime, twice for the majority smoothing), the unconditional split gap
// (MaxGap), the tiny-snippet backward merge (TinyJoinGap), and the
// same-region consolidation (MergeGap). When a sealed triplet is followed
// within MergeGap by the next triplet, sealing additionally waits until
// that neighbor is membership-frozen (its end more than MaxGap+2·EpsTime
// behind the watermark), freezing the consolidation decision without
// requiring the neighbor itself to seal. Records arriving behind these
// frontiers are counted as late and dropped — in-order feeds never
// trigger this.
//
// # Trimming
//
// Sealed records are trimmed from the tail only across a hard break: a gap
// wider than the horizon whose successor record was a valid cleaning
// anchor. The suffix then recomputes identically to the batch suffix (the
// cleaner re-anchors on a record that was genuinely valid, and no density,
// merge, or consolidation rule reaches across a gap that wide), except that
// the tiny-head forward-merge rule is suppressed via
// SplitConfig.DisableHeadMerge because the trimmed tail's first snippet is
// not the true sequence head. One theoretical divergence remains: the
// density smoothing filter is time-blind, so the smoothed class of the
// single record adjacent to a trim point can differ from the batch value.
// Sessions that never see a hard break keep their whole tail (bounded by
// Config.MaxTail), and their output is bit-identical to the batch
// Translator's.
//
// # Complementing
//
// The batch Translator builds mobility knowledge from all devices in a
// second phase; an online engine cannot see the future, so it aggregates
// knowledge incrementally from the triplets it has already emitted (all
// shards feed one shared store) and fills gaps at emission time by the same
// MAP inference, falling back to the uniform topology prior until enough
// transitions accumulate.
package online

import (
	"fmt"
	"runtime"
	"time"

	"trips/internal/annotation"
	"trips/internal/cleaning"
	"trips/internal/complement"
	"trips/internal/dsm"
	"trips/internal/obs/trace"
)

// Pipeline bundles the trained translation components the engine runs.
// Build one from a configured core.Translator (Translator.NewOnline) or by
// hand for tests.
type Pipeline struct {
	Model     *dsm.Model
	Cleaner   *cleaning.Cleaner
	Annotator *annotation.Annotator
	// Complementor enables gap inference; nil disables complementing.
	Complementor *complement.Complementor
	// KnowledgeJoinGap is the admission gap for knowledge aggregation
	// (default 2 minutes, matching the batch Translator).
	KnowledgeJoinGap time.Duration
}

func (p Pipeline) validate() error {
	if p.Model == nil || !p.Model.Frozen() {
		return fmt.Errorf("online: pipeline needs a frozen DSM")
	}
	if p.Cleaner == nil || p.Annotator == nil {
		return fmt.Errorf("online: pipeline needs a cleaner and an annotator")
	}
	return nil
}

// Config parameterizes the engine. The zero value of every field selects a
// sensible default; only Emitter is required.
type Config struct {
	// Shards is the number of worker goroutines devices are hashed
	// across. Default min(NumCPU, 8).
	Shards int

	// FlushEvery is the number of buffered records per session that
	// triggers an incremental flush. Default 64.
	FlushEvery int

	// FlushInterval is the period of the per-shard timer that flushes
	// pending sessions and applies the idle timeout. Default 500ms;
	// negative disables the timer (flushing then happens only on
	// FlushEvery, Flush, and Close).
	FlushInterval time.Duration

	// IdleTimeout finalizes a session that has received nothing for this
	// long (wall clock): its remaining triplets seal and emit even though
	// the watermark stalled. Default = the seal horizon; negative
	// disables.
	IdleTimeout time.Duration

	// Horizon overrides the derived seal horizon. Shortening it below the
	// derived value trades exactness for latency.
	Horizon time.Duration

	// MaxTail force-trims a session tail that exceeds this many records
	// even without a hard break (sacrificing bit-exactness for bounded
	// memory). A session that has sealed nothing — a stationary device
	// dwelling in one region forever — is force-sealed at the horizon
	// instead, so its long dwell emits as consecutive shorter stays;
	// records inside the horizon always stay buffered, making the
	// effective bound max(MaxTail, arrival rate × horizon). 0 keeps tails
	// unbounded.
	MaxTail int

	// QueueLen is the per-shard inbox buffer. Default 1024.
	QueueLen int

	// MinKnowledge is the number of aggregated transitions required
	// before gap inference switches from the uniform topology prior to
	// the learned knowledge. Default 8.
	MinKnowledge int

	// Emitter receives every finalized triplet. Required.
	Emitter Emitter

	// Metrics receives flush-stage latency observations (see Metrics); with
	// both Metrics and Tracer nil, stage timing is disabled entirely,
	// leaving the flush path free of clock reads.
	Metrics *Metrics

	// Tracer records spans for sampled records threaded in through
	// IngestTraced/TryIngestTraced: shard enqueue, the flush stages of the
	// flush that seals them, and drop/force-seal events. Untraced records
	// (zero trace context) never touch it. Nil disables tracing.
	Tracer *trace.Tracer

	// fullRecompute disables the sessions' incremental clean+annotate
	// caches, recomputing the whole tail on every flush — the shadow path
	// the differential tests lock the incremental path against. Package-
	// internal: it exists to prove equivalence, not to be configured.
	fullRecompute bool
}

func (c *Config) applyDefaults(horizon time.Duration) {
	if c.Shards <= 0 {
		c.Shards = runtime.NumCPU()
		if c.Shards > 8 {
			c.Shards = 8
		}
	}
	if c.FlushEvery <= 0 {
		c.FlushEvery = 64
	}
	if c.FlushInterval == 0 {
		c.FlushInterval = 500 * time.Millisecond
	}
	if c.IdleTimeout == 0 {
		c.IdleTimeout = horizon
	}
	if c.QueueLen <= 0 {
		c.QueueLen = 1024
	}
	if c.MinKnowledge <= 0 {
		c.MinKnowledge = 8
	}
}

// deriveWindows computes the seal horizon and the snippet freeze gap from
// the annotator's split and consolidation configuration; see the package
// comment for the rules. The freeze gap is how far behind the watermark a
// snippet's end must be before no future record can extend its membership
// (MaxGap continuity) or flip a member's density class (EpsTime
// neighborhood, twice for the majority smoothing).
func deriveWindows(cfg annotation.Config) (horizon, freezeGap time.Duration) {
	split := cfg.Split
	if split.EpsSpace <= 0 || split.MinPts <= 0 {
		split = annotation.DefaultSplitConfig() // Split falls back the same way
	}
	h := annotation.TinyJoinGap
	if split.MaxGap > h {
		h = split.MaxGap
	}
	if cfg.MergeGap > h {
		h = cfg.MergeGap
	}
	return 2*split.EpsTime + h + time.Second,
		2*split.EpsTime + split.MaxGap + time.Second
}
