package online

import (
	"context"
	"errors"
	"io"
	"sync"
	"time"

	"trips/internal/annotation"
	"trips/internal/intern"
	"trips/internal/obs/trace"
	"trips/internal/position"
	"trips/internal/semantics"
)

// ErrClosed is returned by Ingest after Close.
var ErrClosed = errors.New("online: engine closed")

// ErrBacklogged is returned by TryIngest when the record's shard inbox is
// full: the engine is not keeping up with the feed and the caller should
// shed load upstream (the server's ingest endpoint turns this into
// 429 + Retry-After) instead of queueing unboundedly.
var ErrBacklogged = errors.New("online: shard inbox full")

// Engine is the online translation engine: it shards devices across a
// fixed worker pool and runs a Session per device. Create with NewEngine
// (or core.Translator.NewOnline), feed it with Ingest or Consume, and
// Close it to seal every open session.
type Engine struct {
	pl        Pipeline
	cfg       Config
	horizon   time.Duration
	freezeGap time.Duration
	emitter   Emitter
	know      *knowledgeStore
	anTail    annotation.Annotator // head-merge-suppressed copy for trimmed tails
	tracer    *trace.Tracer        // nil disables span recording

	// devs interns device ids engine-wide: sessions key their shard map by
	// the dense id (integer hash and compare on every record) and per-device
	// state can live in flat slices. Strings survive on the session for the
	// API/serialization boundaries.
	devs intern.Table

	shards []*shard
	wg     sync.WaitGroup
	mu     sync.RWMutex
	closed bool

	stats engineStats

	// now is stubbed in tests to drive the idle timeout.
	now func() time.Time
}

// shard owns a subset of devices; its single goroutine serializes every
// session mutation, so per-device ordering is free. Sessions are keyed by
// the engine-wide interned device id: the per-record map probe hashes an
// int32 instead of the id string.
type shard struct {
	id       int
	ch       chan shardMsg
	sessions map[intern.ID]*session
}

// shardMsg is the shard inbox protocol, discriminated by kind. Records
// travel by value: the ingest route path must not allocate per record, and
// boxing the record behind a pointer would put one heap allocation on every
// ingested record. The trace context rides by value for the same reason —
// a zero tc (the untraced common case) costs nothing.
type shardMsg struct {
	kind  msgKind
	rec   position.Record
	tc    trace.Ctx
	query *queryMsg
	flush chan struct{} // flush barrier: run a seal pass, then close
}

type msgKind uint8

const (
	msgRecord msgKind = iota
	msgQuery
	msgFlush
)

// queryMsg is a per-device query: exactly one of reply (Snapshot) or
// lineage (Lineage) is non-nil and selects the view.
type queryMsg struct {
	dev     position.DeviceID
	reply   chan Snapshot
	lineage chan Lineage
}

// NewEngine validates the pipeline and starts the shard pool.
func NewEngine(pl Pipeline, cfg Config) (*Engine, error) {
	if err := pl.validate(); err != nil {
		return nil, err
	}
	if cfg.Emitter == nil {
		return nil, errors.New("online: Config.Emitter is required")
	}
	horizon, freezeGap := deriveWindows(pl.Annotator.Cfg)
	if cfg.Horizon > 0 {
		horizon = cfg.Horizon
		if freezeGap > horizon {
			freezeGap = horizon
		}
	}
	cfg.applyDefaults(horizon)

	e := &Engine{
		pl:        pl,
		cfg:       cfg,
		horizon:   horizon,
		freezeGap: freezeGap,
		emitter:   cfg.Emitter,
		know:      newKnowledgeStore(pl.Model, pl.KnowledgeJoinGap, cfg.MinKnowledge),
		anTail:    *pl.Annotator,
		tracer:    cfg.Tracer,
		now:       time.Now,
	}
	e.anTail.Cfg.Split.DisableHeadMerge = true

	e.shards = make([]*shard, cfg.Shards)
	for i := range e.shards {
		e.shards[i] = &shard{
			id:       i,
			ch:       make(chan shardMsg, cfg.QueueLen),
			sessions: make(map[intern.ID]*session),
		}
		e.wg.Add(1)
		go e.runShard(e.shards[i])
	}
	return e, nil
}

// Horizon returns the effective seal horizon.
func (e *Engine) Horizon() time.Duration { return e.horizon }

// annotatorFor returns the annotator variant for a session: the configured
// one for a pristine tail, the head-merge-suppressed copy once the tail is
// a trimmed suffix.
func (e *Engine) annotatorFor(ss *session) *annotation.Annotator {
	if ss.base == 0 {
		return e.pl.Annotator
	}
	return &e.anTail
}

// shardOf routes a device to its shard by FNV-1a over the ID bytes,
// inlined: hash.Hash32 plus io.WriteString on this path cost two heap
// allocations per ingested record. The constants and fold order match
// hash/fnv's New32a exactly, so shard assignment is unchanged.
//
//trips:zeroalloc
func (e *Engine) shardOf(dev position.DeviceID) *shard {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(dev); i++ {
		h ^= uint32(dev[i])
		h *= prime32
	}
	// Unsigned modulo: int(h) goes negative for half the hash space on
	// 32-bit ints, and a negative index panics.
	return e.shards[h%uint32(len(e.shards))]
}

func (e *Engine) send(em Emission) {
	e.emitter.Emit(em)
	e.stats.Triplets.Add(1)
}

// Ingest routes one record to its device's shard, blocking when the shard
// inbox is full (backpressure rather than drops).
//
//trips:zeroalloc
func (e *Engine) Ingest(r position.Record) error {
	return e.IngestTraced(r, trace.Ctx{})
}

// IngestTraced is Ingest carrying a trace context. A sampled context gets
// an enqueue stamp so the shard side can record the inbox wait as a span;
// the zero context (the untraced common case) adds no clock read and no
// allocation — the unsampled path is byte-for-byte the old Ingest.
//
//trips:zeroalloc
func (e *Engine) IngestTraced(r position.Record, tc trace.Ctx) error {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.closed {
		return ErrClosed
	}
	if tc.Sampled() {
		//trips:allow wallclock: trace enqueue stamp, operational telemetry
		tc.Enq = time.Now().UnixNano()
	}
	e.shardOf(r.Device).ch <- shardMsg{kind: msgRecord, rec: r, tc: tc}
	return nil
}

// TryIngest routes one record to its device's shard without ever blocking:
// a full shard inbox returns ErrBacklogged instead of queueing, so a caller
// with its own backpressure channel (an HTTP ingest endpoint answering 429)
// can bound admission rather than letting blocked requests pile up. The
// non-blocking send keeps the zero-allocation ingest route.
//
//trips:zeroalloc
func (e *Engine) TryIngest(r position.Record) error {
	return e.TryIngestTraced(r, trace.Ctx{})
}

// TryIngestTraced is TryIngest carrying a trace context; see IngestTraced.
//
//trips:zeroalloc
func (e *Engine) TryIngestTraced(r position.Record, tc trace.Ctx) error {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.closed {
		return ErrClosed
	}
	if tc.Sampled() {
		//trips:allow wallclock: trace enqueue stamp, operational telemetry
		tc.Enq = time.Now().UnixNano()
	}
	select {
	case e.shardOf(r.Device).ch <- shardMsg{kind: msgRecord, rec: r, tc: tc}:
		return nil
	default:
		e.stats.Backlogged.Add(1)
		return ErrBacklogged
	}
}

// Consume subscribes to a live feed and ingests it until the stream
// closes, the context is canceled, or the engine closes. It returns the
// number of records ingested.
func (e *Engine) Consume(ctx context.Context, st *position.Stream, buf int) int {
	if buf <= 0 {
		buf = 256
	}
	ch, cancel := st.Subscribe(buf)
	defer cancel()
	return e.ConsumeChan(ctx, ch)
}

// ConsumeChan ingests records from an already-open channel until it
// closes, the context is canceled, or the engine closes. Callers that must
// not miss records subscribe first and hand the channel over.
func (e *Engine) ConsumeChan(ctx context.Context, ch <-chan position.Record) int {
	n := 0
	for {
		select {
		case <-ctx.Done():
			return n
		case r, ok := <-ch:
			if !ok {
				return n
			}
			if e.Ingest(r) != nil {
				return n
			}
			n++
		}
	}
}

// Flush makes every shard drain its inbox and run a seal pass, then
// returns. It does not force-seal anything: only watermark-sealed triplets
// emit. Mostly useful for tests and benchmarks that disabled the timer.
func (e *Engine) Flush() {
	e.mu.RLock()
	if e.closed {
		e.mu.RUnlock()
		return
	}
	barriers := make([]chan struct{}, len(e.shards))
	for i, sh := range e.shards {
		barriers[i] = make(chan struct{})
		sh.ch <- shardMsg{kind: msgFlush, flush: barriers[i]}
	}
	e.mu.RUnlock()
	for _, b := range barriers {
		<-b
	}
}

// Close stops intake, seals and emits every open session, and shuts the
// shard pool down. If the configured Emitter implements io.Closer (the
// channel sink does), it is closed last. Close is idempotent.
func (e *Engine) Close() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	e.closed = true
	e.mu.Unlock()
	for _, sh := range e.shards {
		close(sh.ch)
	}
	e.wg.Wait()
	if c, ok := e.emitter.(io.Closer); ok {
		c.Close()
	}
}

// Snapshot is the live view of one device: what has been emitted and what
// the open window currently looks like.
type Snapshot struct {
	Device position.DeviceID `json:"device"`
	// Emitted is the number of emissions so far (Seq of the next one).
	Emitted       int       `json:"emitted"`
	SealedThrough time.Time `json:"sealedThrough,omitzero"`
	Watermark     time.Time `json:"watermark,omitzero"`
	TailRecords   int       `json:"tailRecords"`
	// Provisional is the annotation of the open window: triplets that
	// exist now but may still change before sealing.
	Provisional []semantics.Triplet `json:"provisional,omitempty"`
}

// Snapshot queries a device's session on its owning shard. ok is false for
// a device the engine has never seen or after Close.
func (e *Engine) Snapshot(dev position.DeviceID) (Snapshot, bool) {
	e.mu.RLock()
	if e.closed {
		e.mu.RUnlock()
		return Snapshot{}, false
	}
	q := &queryMsg{dev: dev, reply: make(chan Snapshot, 1)}
	e.shardOf(dev).ch <- shardMsg{kind: msgQuery, query: q}
	e.mu.RUnlock()
	snap := <-q.reply
	return snap, snap.Device != ""
}

// runShard is a shard's worker loop: it serializes ingest, flush, and
// query handling for its devices, and its ticker drives watermark and
// idle-timeout flushing so quiescent devices still seal their final
// triplet.
func (e *Engine) runShard(sh *shard) {
	defer e.wg.Done()
	var tick <-chan time.Time
	if e.cfg.FlushInterval > 0 {
		t := time.NewTicker(e.cfg.FlushInterval)
		defer t.Stop()
		tick = t.C
	}
	for {
		select {
		case m, ok := <-sh.ch:
			if !ok {
				//trips:commutative sessions are per-device; flushes land in per-device partitions and commutative folds
				for _, ss := range sh.sessions {
					ss.flush(e, true)
				}
				return
			}
			switch m.kind {
			case msgRecord:
				sh.ingest(e, m.rec, m.tc)
			case msgQuery:
				if m.query.lineage != nil {
					m.query.lineage <- sh.lineage(e, m.query.dev)
				} else {
					m.query.reply <- sh.snapshot(e, m.query.dev)
				}
			case msgFlush:
				//trips:commutative sessions are per-device; flushes land in per-device partitions and commutative folds
				for _, ss := range sh.sessions {
					if ss.pending > 0 {
						ss.flush(e, false)
					}
				}
				close(m.flush)
			}
		case <-tick:
			now := e.now()
			//trips:commutative sessions are per-device; flush and idle expiry are per-device decisions
			for id, ss := range sh.sessions {
				if ss.pending > 0 {
					ss.flush(e, false)
				}
				if e.cfg.IdleTimeout > 0 &&
					now.Sub(ss.lastArrival) > e.cfg.IdleTimeout {
					if ss.tail.Len() > 0 {
						ss.flush(e, true)
						e.stats.IdleFinalized.Add(1)
					}
					// Evict the quiescent session so churning device IDs
					// (MAC randomization) don't grow the map forever. A
					// returning device starts a fresh epoch. (The intern
					// table keeps the id: it is the engine-wide identity,
					// not per-session state.)
					delete(sh.sessions, id)
					// The eviction is positive evidence the device is gone;
					// tell a finalizer-aware sink (the analytics tee uses it
					// to decay occupancy) after the final triplets emitted.
					if f, ok := e.emitter.(SessionFinalizer); ok && !ss.sealedThrough.IsZero() {
						f.FinalizeSession(ss.dev, ss.sealedThrough)
					}
				}
			}
		}
	}
}

func (sh *shard) ingest(e *Engine, r position.Record, tc trace.Ctx) {
	id := e.devs.Intern(string(r.Device))
	ss := sh.sessions[id]
	if ss == nil {
		ss = newSession(r.Device)
		ss.lastArrival = e.now()
		sh.sessions[id] = ss
		e.stats.Sessions.Add(1)
	}
	outcome := ss.ingest(e, r)
	if tc.Sampled() && e.tracer != nil {
		sh.traceAdmit(e, ss, tc, outcome)
	}
	switch outcome {
	case admitLate:
		e.stats.Late.Add(1)
		return
	case admitDuplicate:
		e.stats.Duplicates.Add(1)
		return
	}
	e.stats.Records.Add(1)
	if ss.pending >= e.cfg.FlushEvery {
		ss.flush(e, false)
	}
}

// traceAdmit records the shard-side fate of a sampled record: on admission
// the session adopts the request's trace (with an explicit queue-wait span
// from the ingest enqueue stamp to now), on a drop it records a drop span.
// Both record at most once per traced request — a traced batch of
// thousands of records contributes a handful of spans, not thousands — and
// a session holding an earlier trace keeps it until its sealing flush
// commits the stage spans.
func (sh *shard) traceAdmit(e *Engine, ss *session, tc trace.Ctx, outcome admit) {
	if outcome == admitOK {
		if ss.trace.Sampled() {
			return
		}
		ss.trace = tc
		sp := e.tracer.Start(tc, "enqueue")
		sp.SetDevice(string(ss.dev))
		sp.SetShard(sh.id)
		if tc.Enq > 0 {
			sp.SetStart(time.Unix(0, tc.Enq))
		}
		sp.End()
		return
	}
	// Dedupe drop spans by the request's root span; a parentless context
	// (tests feeding the engine directly) records every drop.
	if !tc.Span.IsZero() {
		if ss.dropSpan == tc.Span {
			return
		}
		ss.dropSpan = tc.Span
	}
	name := "drop_duplicate"
	if outcome == admitLate {
		name = "drop_late"
	}
	sp := e.tracer.Start(tc, name)
	sp.SetDevice(string(ss.dev))
	sp.SetShard(sh.id)
	if outcome == admitLate {
		// A late drop is data loss downstream of sealing — pin the trace so
		// the affected request is inspectable after the fact.
		sp.SetErr()
	}
	sp.End()
}

func (sh *shard) snapshot(e *Engine, dev position.DeviceID) Snapshot {
	ss := sh.lookup(e, dev)
	if ss == nil {
		return Snapshot{}
	}
	return Snapshot{
		Device:        dev,
		Emitted:       ss.seq,
		SealedThrough: ss.sealedThrough,
		Watermark:     ss.tail.End(),
		TailRecords:   ss.tail.Len(),
		Provisional:   ss.provisional(e),
	}
}

// Lineage is the per-device debugging view behind GET /debug/device/{id}:
// where the device's live session sits in the pipeline right now — tail and
// admission state, the owning shard and its inbox depth, the stage
// breakdown of the most recent instrumented flush, and the trace (if any)
// waiting for its sealing flush.
type Lineage struct {
	Device         position.DeviceID `json:"device"`
	Shard          int               `json:"shard"`
	TailRecords    int               `json:"tailRecords"`
	PendingRecords int               `json:"pendingRecords"`
	Emitted        int               `json:"emitted"`
	SealedThrough  time.Time         `json:"sealedThrough,omitzero"`
	Watermark      time.Time         `json:"watermark,omitzero"`
	AdmissionFloor time.Time         `json:"admissionFloor,omitzero"`
	// BacklogDepth is the owning shard's inbox depth when the query was
	// served: records admitted by ingest but not yet applied.
	BacklogDepth int `json:"backlogDepth"`
	// ActiveTrace is the sampled trace adopted by the session and awaiting
	// the flush that seals it, empty when none.
	ActiveTrace string          `json:"activeTrace,omitempty"`
	LastFlush   *FlushBreakdown `json:"lastFlush,omitempty"`
}

// FlushBreakdown is the stage timing of a session's most recent
// instrumented flush. Stage timing runs when the engine has Metrics or the
// session carries a sampled trace; engines with neither never populate it.
type FlushBreakdown struct {
	At         time.Time `json:"at"`
	CleanMs    float64   `json:"clean_ms"`
	AnnotateMs float64   `json:"annotate_ms"`
	SealMs     float64   `json:"seal_ms"`
	// Sealed is how many emissions that flush produced.
	Sealed int `json:"sealed"`
}

// Lineage queries a device's pipeline lineage on its owning shard. ok is
// false for a device with no live session or after Close.
func (e *Engine) Lineage(dev position.DeviceID) (Lineage, bool) {
	e.mu.RLock()
	if e.closed {
		e.mu.RUnlock()
		return Lineage{}, false
	}
	q := &queryMsg{dev: dev, lineage: make(chan Lineage, 1)}
	e.shardOf(dev).ch <- shardMsg{kind: msgQuery, query: q}
	e.mu.RUnlock()
	l := <-q.lineage
	return l, l.Device != ""
}

// lookup resolves a device's live session without growing the intern table:
// a query for a never-seen device must stay a miss, not mint an id.
func (sh *shard) lookup(e *Engine, dev position.DeviceID) *session {
	id, ok := e.devs.Lookup(string(dev))
	if !ok {
		return nil
	}
	return sh.sessions[id]
}

func (sh *shard) lineage(e *Engine, dev position.DeviceID) Lineage {
	ss := sh.lookup(e, dev)
	if ss == nil {
		return Lineage{}
	}
	l := Lineage{
		Device:         dev,
		Shard:          sh.id,
		TailRecords:    ss.tail.Len(),
		PendingRecords: ss.pending,
		Emitted:        ss.seq,
		SealedThrough:  ss.sealedThrough,
		Watermark:      ss.tail.End(),
		AdmissionFloor: ss.admissionFloor(e),
		BacklogDepth:   len(sh.ch),
	}
	if ss.trace.Sampled() {
		l.ActiveTrace = ss.trace.Trace.String()
	}
	if !ss.lastFlushAt.IsZero() {
		l.LastFlush = &FlushBreakdown{
			At:         ss.lastFlushAt,
			CleanMs:    float64(ss.lastClean) / float64(time.Millisecond),
			AnnotateMs: float64(ss.lastAnnotate) / float64(time.Millisecond),
			SealMs:     float64(ss.lastSeal) / float64(time.Millisecond),
			Sealed:     ss.lastSealed,
		}
	}
	return l
}
